(* fbbd: the concurrent bias-optimization daemon and its client tools.

   Subcommands:
     serve   - run the daemon (line-delimited JSON over TCP), optionally
               with a live telemetry endpoint (/metrics, /requests,
               /slo.json, ...) and injected faults at the serve.accept /
               serve.read sites
     request - send one request (solve, ping or stats) and print the
               response line
     load    - closed-loop deterministic load generator; exits non-zero
               on protocol errors, a breached p99 gate or (--slo) a
               breached SLO burn rate
     tail    - live request log: follow the daemon's flight recorder
               over its telemetry endpoint *)

open Cmdliner
module Serve = Fbb_serve
module P = Fbb_serve.Protocol

(* ----- shared arguments ------------------------------------------------- *)

let port_arg ~default =
  let doc = "Daemon TCP port (0 = ephemeral when serving)." in
  Arg.(value & opt int default & info [ "p"; "port" ] ~docv:"PORT" ~doc)

let design_arg =
  let doc = "Built-in benchmark workload (see $(b,fbbopt list))." in
  Arg.(value & opt (some string) None & info [ "d"; "design" ] ~docv:"NAME" ~doc)

let gen_arg =
  let doc = "Generated workload: seed, gate count and row count." in
  Arg.(
    value
    & opt (some (t3 ~sep:',' int int int)) None
    & info [ "gen" ] ~docv:"SEED,GATES,ROWS" ~doc)

let workload ~design ~gen =
  match (design, gen) with
  | Some _, Some _ -> Error "--design and --gen are mutually exclusive"
  | Some name, None -> Ok (P.Benchmark name)
  | None, Some (seed, gates, rows) -> Ok (P.Generated { seed; gates; rows })
  | None, None -> Ok (P.Generated { seed = 11; gates = 400; rows = 6 })

let beta_arg =
  let doc = "Slowdown coefficient in percent (the paper's beta)." in
  Arg.(value & opt float 5.0 & info [ "b"; "beta" ] ~docv:"PCT" ~doc)

let clusters_arg =
  let doc = "Cluster budget C (distinct bias levels incl. NBB)." in
  Arg.(value & opt int 4 & info [ "C"; "clusters" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc = "Per-request wall deadline in milliseconds (measured from \
             admission)." in
  Arg.(
    value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let work_arg =
  let doc = "Per-request deterministic work-tick budget." in
  Arg.(value & opt (some int) None & info [ "work" ] ~docv:"TICKS" ~doc)

let jobs_arg =
  let doc =
    "Width of the parallel domain pool (default: $(b,FBB_JOBS), else the \
     machine's available cores). Payloads are bit-identical at any width."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let set_jobs = Option.iter Fbb_par.Pool.set_jobs

(* ----- serve ------------------------------------------------------------ *)

let metrics_port_arg =
  let doc =
    "Also serve live telemetry ($(b,GET /metrics), $(b,GET /snapshot.json), \
     $(b,GET /requests), $(b,GET /request/<trace-id>.json), \
     $(b,GET /slo.json), $(b,GET /healthz)) on 127.0.0.1:$(docv); 0 picks an \
     ephemeral port. Enables the request flight recorder."
  in
  Arg.(
    value & opt (some int) None & info [ "metrics-port" ] ~docv:"PORT" ~doc)

let slo_p99_arg =
  let doc =
    "Latency threshold for the default $(b,latency_p99) SLO: a telemetry \
     tick is bad when the per-tick serve.latency p99 exceeds $(docv) ms."
  in
  Arg.(value & opt float 5000.0 & info [ "slo-p99-ms" ] ~docv:"MS" ~doc)

(* Default objectives for the daemon: tick-level p99 latency, shed
   rate and error rate, each on the standard 5m/1h window pair. The
   burn limits mean "breached when >2x the budgeted bad fraction is
   sustained across both windows". *)
let register_default_slos ~p99_ms =
  let open Fbb_obs.Slo in
  register
    {
      slo_name = "latency_p99";
      kind =
        Latency_p
          {
            series = "hist.serve.latency.p99_s";
            threshold_s = p99_ms /. 1000.0;
          };
      target = 0.9;
      windows = default_windows;
      burn_limit = 2.0;
    };
  register
    {
      slo_name = "shed_rate";
      kind =
        Ratio
          {
            bad =
              [ "counter.serve.shed.overload"; "counter.serve.shed.draining" ];
            total = "counter.serve.requests";
          };
      target = 0.9;
      windows = default_windows;
      burn_limit = 2.0;
    };
  register
    {
      slo_name = "error_rate";
      kind =
        Ratio
          {
            bad =
              [ "counter.serve.request_faults"; "counter.serve.protocol_errors" ];
            total = "counter.serve.requests";
          };
      target = 0.99;
      windows = default_windows;
      burn_limit = 2.0;
    }

let queue_cap_arg =
  let doc = "Admission queue capacity; requests beyond it are shed with a \
             typed overload reject." in
  Arg.(value & opt int 64 & info [ "queue-cap" ] ~docv:"N" ~doc)

let batch_max_arg =
  let doc = "Max same-netlist requests sharing one prepared problem context." in
  Arg.(value & opt int 16 & info [ "batch-max" ] ~docv:"N" ~doc)

let duration_arg =
  let doc = "Drain and exit after $(docv) seconds (0 = run until SIGINT)." in
  Arg.(value & opt float 0.0 & info [ "duration-s" ] ~docv:"S" ~doc)

let faults_arg =
  let doc =
    "Inject deterministic faults at rate $(b,RATE) with seed $(b,SEED) at \
     the $(b,serve.accept) and $(b,serve.read) sites: affected \
     connections/requests degrade to typed rejects, the daemon stays live."
  in
  Arg.(
    value
    & opt (some (pair ~sep:',' float int)) None
    & info [ "faults" ] ~docv:"RATE,SEED" ~doc)

let fault_site_arg =
  let doc =
    "Override the injection rate at one fault site (repeatable), e.g. \
     $(b,--fault-site serve.solver_crash=0.3). Overrides apply on top of \
     $(b,--faults) and also alone (with the global rate at 0); the seed \
     comes from $(b,--faults), default 1. The solver sites \
     ($(b,serve.solver_crash), $(b,serve.solver_stall)) are healed by \
     the watchdog: affected batches return typed $(b,Faulted) rejects \
     and the solver restarts."
  in
  Arg.(
    value
    & opt_all (pair ~sep:'=' string float) []
    & info [ "fault-site" ] ~docv:"SITE=RATE" ~doc)

let store_arg =
  let doc =
    "Persistent prepared-context store directory (created if missing): \
     prepared problem contexts are spilled on build and reloaded after a \
     restart, so a warm daemon reaches its first $(b,Solved) without \
     rebuilding. Corrupt or version-skewed entries are discarded and \
     rebuilt; store failures degrade to in-memory operation."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let idle_timeout_arg =
  let doc =
    "Evict a connection that parks a half-written frame for more than \
     $(docv) seconds (slow-loris hygiene); unset disables eviction."
  in
  Arg.(
    value & opt (some float) None & info [ "idle-timeout-s" ] ~docv:"S" ~doc)

let stall_threshold_arg =
  let doc =
    "Treat a solver heartbeat older than $(docv) seconds (with work in \
     flight) as a stall: the watchdog fails the batch as typed \
     $(b,Faulted) and restarts the solver. Unset disables stall \
     detection (crash detection is always on)."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "stall-threshold-s" ] ~docv:"S" ~doc)

let breaker_limit_arg =
  let doc =
    "Consecutive solver restarts (no completed request in between) that \
     open the circuit breaker."
  in
  Arg.(value & opt int 5 & info [ "breaker-limit" ] ~docv:"N" ~doc)

let interrupted = ref false

let serve port metrics_port queue_cap batch_max default_deadline_ms
    default_work duration_s faults fault_sites store_dir idle_timeout_s
    stall_threshold_s breaker_limit slo_p99_ms jobs =
  set_jobs jobs;
  (match faults with
  | Some (rate, seed) -> Fbb_fault.Fault.configure ~rate ~seed
  | None ->
    if fault_sites <> [] then Fbb_fault.Fault.configure ~rate:0.0 ~seed:1);
  (* Site overrides must land after [configure] (it resets them). *)
  List.iter
    (fun (site, rate) -> Fbb_fault.Fault.set_site_rate site rate)
    fault_sites;
  let telemetry =
    match metrics_port with
    | None -> Ok None
    | Some mp -> (
      (* Spans only fire while a sink is installed; the flight
         recorder's sink both enables them and captures each request's
         tree for /requests and /request/<id>.json. *)
      Fbb_obs.Sink.install (Fbb_obs.Flight.sink ());
      register_default_slos ~p99_ms:slo_p99_ms;
      let sampler = Fbb_obs.Telemetry.start () in
      match Fbb_obs.Telemetry.serve ~port:mp () with
      | Ok srv -> Ok (Some (sampler, srv))
      | Error msg ->
        Fbb_obs.Telemetry.stop sampler;
        Fbb_obs.Sink.clear ();
        Error msg)
  in
  match telemetry with
  | Error msg -> Error msg
  | Ok telemetry -> (
    let config =
      {
        Serve.Server.default_config with
        port;
        queue_capacity = queue_cap;
        batch_max;
        default_deadline_ms;
        default_work;
        store_dir;
        idle_timeout_s;
        stall_threshold_s;
        breaker_limit;
      }
    in
    match Serve.Server.start ~config () with
    | Error msg ->
      (match telemetry with
      | Some (sampler, srv) ->
        Fbb_obs.Telemetry.shutdown srv;
        Fbb_obs.Telemetry.stop sampler;
        Fbb_obs.Sink.clear ()
      | None -> ());
      Error msg
    | Ok server ->
      Printf.printf "fbbd listening on 127.0.0.1:%d (queue %d, batch %d, \
                     jobs %d)\n%!"
        (Serve.Server.port server) queue_cap batch_max (Fbb_par.Pool.jobs ());
      (match telemetry with
      | Some (_, srv) ->
        Printf.printf "metrics on http://127.0.0.1:%d/metrics\n%!"
          (Fbb_obs.Telemetry.port srv)
      | None -> ());
      let handle = Sys.Signal_handle (fun _ -> interrupted := true) in
      let prev_int = Sys.signal Sys.sigint handle in
      let prev_term = Sys.signal Sys.sigterm handle in
      let stop_at =
        if duration_s > 0.0 then Some (Fbb_obs.Clock.now_s () +. duration_s)
        else None
      in
      let keep_going () =
        (not !interrupted)
        &&
        match stop_at with
        | Some t -> Fbb_obs.Clock.now_s () < t
        | None -> true
      in
      while keep_going () do
        Unix.sleepf 0.1
      done;
      Printf.printf "fbbd: draining...\n%!";
      Serve.Server.stop server;
      Sys.set_signal Sys.sigint prev_int;
      Sys.set_signal Sys.sigterm prev_term;
      let s = Serve.Server.stats server in
      Printf.printf "fbbd: served %d, shed %d\n%!" s.P.served s.P.shed;
      if Fbb_fault.Fault.active () then begin
        Printf.printf "fault stats (injected/evaluated):\n%!";
        List.iter
          (fun (site, evals, injections) ->
            Printf.printf "  %-16s %d/%d\n%!" site injections evals)
          (Fbb_fault.Fault.stats ());
        Fbb_fault.Fault.clear ()
      end;
      (match telemetry with
      | Some (sampler, srv) ->
        Fbb_obs.Telemetry.shutdown srv;
        Fbb_obs.Telemetry.stop sampler;
        Fbb_obs.Sink.clear ()
      | None -> ());
      Ok ())

let serve_cmd =
  let run port metrics queue_cap batch_max deadline work duration faults
      fault_sites store idle_timeout stall_threshold breaker_limit slo_p99
      jobs =
    match
      serve port metrics queue_cap batch_max deadline work duration faults
        fault_sites store idle_timeout stall_threshold breaker_limit slo_p99
        jobs
    with
    | Ok () -> `Ok ()
    | Error m -> `Error (false, m)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the bias-optimization daemon: line-delimited JSON requests \
          over TCP, multiplexed over the domain pool through the anytime \
          cascade, with per-tenant fair admission, same-netlist batching, \
          a supervised solver and an optional persistent context store")
    Term.(
      ret
        (const run $ port_arg ~default:9620 $ metrics_port_arg $ queue_cap_arg
        $ batch_max_arg $ deadline_arg $ work_arg $ duration_arg $ faults_arg
        $ fault_site_arg $ store_arg $ idle_timeout_arg $ stall_threshold_arg
        $ breaker_limit_arg $ slo_p99_arg $ jobs_arg))

(* ----- request ---------------------------------------------------------- *)

let op_arg =
  let doc = "Request kind: $(b,solve), $(b,ping) or $(b,stats)." in
  Arg.(
    value
    & opt (enum [ ("solve", `Solve); ("ping", `Ping); ("stats", `Stats) ])
        `Solve
    & info [ "op" ] ~docv:"OP" ~doc)

let id_arg =
  let doc = "Request id echoed on the response." in
  Arg.(value & opt string "cli" & info [ "id" ] ~docv:"ID" ~doc)

let client_arg =
  let doc =
    "Tenant id sent with the request; the daemon's fair admission queues \
     requests per tenant (absent: the connection is its own tenant)."
  in
  Arg.(value & opt (some string) None & info [ "client" ] ~docv:"TENANT" ~doc)

let retries_arg =
  let doc =
    "Retry an $(b,Overload) reject up to $(docv) times with exponential \
     backoff and jitter, honouring the server's retry-after hint."
  in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)

let retry_budget_arg =
  let doc = "Total backoff-sleep budget across retries, in milliseconds." in
  Arg.(
    value & opt float 1000.0 & info [ "retry-budget-ms" ] ~docv:"MS" ~doc)

let request port op id client_id design gen beta_pct clusters deadline_ms work
    retries retry_budget_ms =
  let ( let* ) = Result.bind in
  let* req =
    match op with
    | `Ping -> Ok (P.Ping { id })
    | `Stats -> Ok (P.Stats { id })
    | `Solve ->
      let* workload = workload ~design ~gen in
      Ok
        (P.Solve
           {
             id;
             client = client_id;
             workload;
             beta = beta_pct /. 100.0;
             max_clusters = clusters;
             deadline_ms;
             work_budget = work;
           })
  in
  let* client = Serve.Client.connect ~port () in
  let result, attempts =
    Serve.Client.rpc_retry ~retries ~retry_budget_ms client req
  in
  Serve.Client.close client;
  let* resp = result in
  print_endline (P.encode_response resp);
  if attempts > 1 then
    Printf.eprintf "fbbd request: %d attempts\n%!" attempts;
  match resp with
  | P.Rejected _ -> Error "request rejected"
  | P.Solved _ | P.Infeasible _ | P.Pong _ | P.Stats_reply _ -> Ok ()

let request_cmd =
  let run port op id client design gen beta clusters deadline work retries
      budget =
    match
      request port op id client design gen beta clusters deadline work retries
        budget
    with
    | Ok () -> `Ok ()
    | Error m -> `Error (false, m)
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:"Send one request to a running daemon and print the response line")
    Term.(
      ret
        (const run $ port_arg ~default:9620 $ op_arg $ id_arg $ client_arg
        $ design_arg $ gen_arg $ beta_arg $ clusters_arg $ deadline_arg
        $ work_arg $ retries_arg $ retry_budget_arg))

(* ----- load ------------------------------------------------------------- *)

let connections_arg =
  let doc = "Concurrent closed-loop connections." in
  Arg.(value & opt int 4 & info [ "c"; "connections" ] ~docv:"N" ~doc)

let requests_arg =
  let doc = "Total requests across all connections." in
  Arg.(value & opt int 40 & info [ "n"; "requests" ] ~docv:"N" ~doc)

let rate_arg =
  let doc =
    "Per-connection mean arrival rate in Hz (exponential gaps, \
     deterministic from --seed); 0 sends back-to-back."
  in
  Arg.(value & opt float 0.0 & info [ "rate-hz" ] ~docv:"HZ" ~doc)

let seed_arg =
  let doc = "Load-script seed: same seed, same request script." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let max_p99_arg =
  let doc = "Exit non-zero when the observed p99 exceeds $(docv) ms." in
  Arg.(value & opt (some float) None & info [ "max-p99-ms" ] ~docv:"MS" ~doc)

let json_arg =
  let doc = "Print the report as one JSON object." in
  Arg.(value & flag & info [ "json" ] ~doc)

let slo_url_arg =
  let doc =
    "After the run, fetch $(docv)/slo.json from the daemon's telemetry \
     endpoint and exit non-zero when any objective's burn rate is breached."
  in
  Arg.(value & opt (some string) None & info [ "slo" ] ~docv:"URL" ~doc)

let tenants_arg =
  let doc =
    "Tenant count for the load mix: requests carry $(b,client) ids \
     $(b,t0)..$(b,tN-1) and the report breaks percentiles down per \
     tenant. 1 (the default) sends no client ids — the pre-tenant \
     script, byte-identical."
  in
  Arg.(value & opt int 1 & info [ "tenants" ] ~docv:"N" ~doc)

let hot_tenant_weight_arg =
  let doc =
    "Requests per cycle for tenant $(b,t0); every other tenant gets one. \
     $(b,--tenants 2 --hot-tenant-weight 10) is the 10:1 starvation mix."
  in
  Arg.(value & opt int 1 & info [ "hot-tenant-weight" ] ~docv:"W" ~doc)

(* Fetch /slo.json and fold it into a pass/fail verdict listing the
   breached objectives by name. *)
let slo_gate base_url =
  let module J = Fbb_util.Json in
  let url =
    let base =
      let n = String.length base_url in
      if n > 0 && base_url.[n - 1] = '/' then String.sub base_url 0 (n - 1)
      else base_url
    in
    base ^ "/slo.json"
  in
  match Fbb_obs.Telemetry.http_get url with
  | Error msg -> Error ("slo gate: " ^ msg)
  | Ok body -> (
    match J.parse_opt body with
    | None -> Error "slo gate: malformed /slo.json"
    | Some j -> (
      match (J.member "ok" j, J.member_arr "objectives" j) with
      | Some (J.Bool true), Some _ -> Ok ()
      | Some (J.Bool false), Some objectives ->
        let breached =
          List.filter_map
            (fun o ->
              match (J.member "ok" o, J.member_str "name" o) with
              | Some (J.Bool false), Some name ->
                Some
                  (Printf.sprintf "%s (burn fast %.2f / slow %.2f)" name
                     (Option.value ~default:Float.nan (J.member_num "burn_fast" o))
                     (Option.value ~default:Float.nan (J.member_num "burn_slow" o)))
              | _ -> None)
            objectives
        in
        Error ("slo gate breached: " ^ String.concat ", " breached)
      | _ -> Error "slo gate: /slo.json missing ok/objectives"))

let load port connections requests rate_hz seed design gen beta_pct clusters
    deadline_ms work max_p99_ms json slo_url tenants hot_tenant_weight =
  let ( let* ) = Result.bind in
  let* wl = workload ~design ~gen in
  let cfg =
    {
      (Serve.Loadgen.default ~port) with
      connections;
      requests;
      rate_hz;
      seed;
      workloads = [ wl ];
      beta = beta_pct /. 100.0;
      max_clusters = clusters;
      deadline_ms;
      work_budget = work;
      tenants;
      hot_tenant_weight;
    }
  in
  let* report = Serve.Loadgen.run cfg in
  if json then
    print_endline (Fbb_util.Json.to_string (Serve.Loadgen.report_to_json report))
  else Format.printf "%a@." Serve.Loadgen.pp_report report;
  let* () =
    if report.Serve.Loadgen.errors > 0 then
      Error (Printf.sprintf "%d protocol/transport errors" report.errors)
    else Ok ()
  in
  let* () =
    match max_p99_ms with
    | Some gate when report.Serve.Loadgen.p99_ms > gate ->
      Error
        (Printf.sprintf "p99 %.1f ms exceeds gate %.1f ms" report.p99_ms gate)
    | _ -> Ok ()
  in
  match slo_url with Some url -> slo_gate url | None -> Ok ()

let load_cmd =
  let run port conns reqs rate seed design gen beta clusters deadline work gate
      json slo tenants hot_weight =
    match
      load port conns reqs rate seed design gen beta clusters deadline work
        gate json slo tenants hot_weight
    with
    | Ok () -> `Ok ()
    | Error m -> `Error (false, m)
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Closed-loop deterministic load generator: exponential arrivals \
          from a seeded RNG, an optional weighted per-tenant mix, latency \
          percentiles from the histogram plane; exits non-zero on protocol \
          errors, a breached p99 gate or a breached SLO burn rate (--slo)")
    Term.(
      ret
        (const run $ port_arg ~default:9620 $ connections_arg $ requests_arg
        $ rate_arg $ seed_arg $ design_arg $ gen_arg $ beta_arg $ clusters_arg
        $ deadline_arg $ work_arg $ max_p99_arg $ json_arg $ slo_url_arg
        $ tenants_arg $ hot_tenant_weight_arg))

(* ----- tail ------------------------------------------------------------- *)

let tail_url_arg =
  let doc = "Base URL of the daemon's telemetry endpoint." in
  Arg.(
    value
    & opt string "http://127.0.0.1:9621"
    & info [ "url" ] ~docv:"URL" ~doc)

let tail_interval_arg =
  let doc = "Poll interval in milliseconds." in
  Arg.(value & opt int 500 & info [ "interval-ms" ] ~docv:"MS" ~doc)

let tail_once_arg =
  let doc = "Print the current index once and exit (no following)." in
  Arg.(value & flag & info [ "once" ] ~doc)

(* Follow the flight recorder: poll /requests and print every entry
   with a sequence number above the last one seen. The recorder's seq
   is process-monotone, so eviction never replays an old entry. *)
let tail url interval_ms once =
  let ( let* ) = Result.bind in
  let module J = Fbb_util.Json in
  let base =
    let n = String.length url in
    if n > 0 && url.[n - 1] = '/' then String.sub url 0 (n - 1) else url
  in
  let print_entry e =
    let num name = Option.value ~default:0.0 (J.member_num name e) in
    let str name = Option.value ~default:"" (J.member_str name e) in
    let exhausted =
      match J.member "exhausted" e with Some (J.Bool true) -> " exhausted" | _ -> ""
    in
    let detail = match str "detail" with "" -> "" | d -> " " ^ d in
    Printf.printf "#%-5d %-24s %-10s%s  wait %6.1fms  total %8.1fms%s\n%!"
      (int_of_float (num "seq"))
      (str "trace") (str "outcome") detail (num "queue_wait_ms")
      (num "latency_ms") exhausted
  in
  let last_seq = ref 0 in
  let poll () =
    match Fbb_obs.Telemetry.http_get (base ^ "/requests") with
    | Error msg -> Error msg
    | Ok body -> (
      match Option.bind (J.parse_opt body) (J.member_arr "requests") with
      | None -> Error "malformed /requests index"
      | Some entries ->
        (* The index is newest-first; replay the new tail oldest-first. *)
        let fresh =
          List.filter
            (fun e ->
              match J.member_num "seq" e with
              | Some s -> int_of_float s > !last_seq
              | None -> false)
            entries
          |> List.rev
        in
        List.iter
          (fun e ->
            print_entry e;
            match J.member_num "seq" e with
            | Some s -> last_seq := max !last_seq (int_of_float s)
            | None -> ())
          fresh;
        Ok ())
  in
  if once then poll ()
  else begin
    (* Transient fetch failures (daemon restarting, scrape timeout) are
       survivable when following; only the first poll is load-bearing. *)
    let* () = poll () in
    let stop = ref false in
    let handle = Sys.Signal_handle (fun _ -> stop := true) in
    let prev = Sys.signal Sys.sigint handle in
    while not !stop do
      Unix.sleepf (float_of_int (max 50 interval_ms) /. 1000.0);
      match poll () with Ok () | Error _ -> ()
    done;
    Sys.set_signal Sys.sigint prev;
    Ok ()
  end

let tail_cmd =
  let run url interval once =
    match tail url interval once with
    | Ok () -> `Ok ()
    | Error m -> `Error (false, m)
  in
  Cmd.v
    (Cmd.info "tail"
       ~doc:
         "Live request log: follow a running daemon's flight recorder over \
          its telemetry endpoint, one line per served/shed request")
    Term.(ret (const run $ tail_url_arg $ tail_interval_arg $ tail_once_arg))

(* ----- main ------------------------------------------------------------- *)

let () =
  let info =
    Cmd.info "fbbd" ~version:"1.0.0"
      ~doc:"Concurrent bias-optimization service over the anytime cascade"
  in
  exit (Cmd.eval (Cmd.group info [ serve_cmd; request_cmd; load_cmd; tail_cmd ]))
