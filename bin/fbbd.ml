(* fbbd: the concurrent bias-optimization daemon and its client tools.

   Subcommands:
     serve   - run the daemon (line-delimited JSON over TCP), optionally
               with a live /metrics telemetry endpoint and injected
               faults at the serve.accept / serve.read sites
     request - send one request (solve, ping or stats) and print the
               response line
     load    - closed-loop deterministic load generator; exits non-zero
               on protocol errors or a breached p99 gate *)

open Cmdliner
module Serve = Fbb_serve
module P = Fbb_serve.Protocol

(* ----- shared arguments ------------------------------------------------- *)

let port_arg ~default =
  let doc = "Daemon TCP port (0 = ephemeral when serving)." in
  Arg.(value & opt int default & info [ "p"; "port" ] ~docv:"PORT" ~doc)

let design_arg =
  let doc = "Built-in benchmark workload (see $(b,fbbopt list))." in
  Arg.(value & opt (some string) None & info [ "d"; "design" ] ~docv:"NAME" ~doc)

let gen_arg =
  let doc = "Generated workload: seed, gate count and row count." in
  Arg.(
    value
    & opt (some (t3 ~sep:',' int int int)) None
    & info [ "gen" ] ~docv:"SEED,GATES,ROWS" ~doc)

let workload ~design ~gen =
  match (design, gen) with
  | Some _, Some _ -> Error "--design and --gen are mutually exclusive"
  | Some name, None -> Ok (P.Benchmark name)
  | None, Some (seed, gates, rows) -> Ok (P.Generated { seed; gates; rows })
  | None, None -> Ok (P.Generated { seed = 11; gates = 400; rows = 6 })

let beta_arg =
  let doc = "Slowdown coefficient in percent (the paper's beta)." in
  Arg.(value & opt float 5.0 & info [ "b"; "beta" ] ~docv:"PCT" ~doc)

let clusters_arg =
  let doc = "Cluster budget C (distinct bias levels incl. NBB)." in
  Arg.(value & opt int 4 & info [ "C"; "clusters" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc = "Per-request wall deadline in milliseconds (measured from \
             admission)." in
  Arg.(
    value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let work_arg =
  let doc = "Per-request deterministic work-tick budget." in
  Arg.(value & opt (some int) None & info [ "work" ] ~docv:"TICKS" ~doc)

let jobs_arg =
  let doc =
    "Width of the parallel domain pool (default: $(b,FBB_JOBS), else the \
     machine's available cores). Payloads are bit-identical at any width."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let set_jobs = Option.iter Fbb_par.Pool.set_jobs

(* ----- serve ------------------------------------------------------------ *)

let metrics_port_arg =
  let doc =
    "Also serve live telemetry ($(b,GET /metrics), $(b,GET /snapshot.json), \
     $(b,GET /healthz)) on 127.0.0.1:$(docv); 0 picks an ephemeral port."
  in
  Arg.(
    value & opt (some int) None & info [ "metrics-port" ] ~docv:"PORT" ~doc)

let queue_cap_arg =
  let doc = "Admission queue capacity; requests beyond it are shed with a \
             typed overload reject." in
  Arg.(value & opt int 64 & info [ "queue-cap" ] ~docv:"N" ~doc)

let batch_max_arg =
  let doc = "Max same-netlist requests sharing one prepared problem context." in
  Arg.(value & opt int 16 & info [ "batch-max" ] ~docv:"N" ~doc)

let duration_arg =
  let doc = "Drain and exit after $(docv) seconds (0 = run until SIGINT)." in
  Arg.(value & opt float 0.0 & info [ "duration-s" ] ~docv:"S" ~doc)

let faults_arg =
  let doc =
    "Inject deterministic faults at rate $(b,RATE) with seed $(b,SEED) at \
     the $(b,serve.accept) and $(b,serve.read) sites: affected \
     connections/requests degrade to typed rejects, the daemon stays live."
  in
  Arg.(
    value
    & opt (some (pair ~sep:',' float int)) None
    & info [ "faults" ] ~docv:"RATE,SEED" ~doc)

let interrupted = ref false

let serve port metrics_port queue_cap batch_max default_deadline_ms
    default_work duration_s faults jobs =
  set_jobs jobs;
  (match faults with
  | Some (rate, seed) -> Fbb_fault.Fault.configure ~rate ~seed
  | None -> ());
  let telemetry =
    match metrics_port with
    | None -> Ok None
    | Some mp -> (
      (* Spans only record histograms while a sink is installed. *)
      Fbb_obs.Sink.install Fbb_obs.Sink.null;
      let sampler = Fbb_obs.Telemetry.start () in
      match Fbb_obs.Telemetry.serve ~port:mp () with
      | Ok srv -> Ok (Some (sampler, srv))
      | Error msg ->
        Fbb_obs.Telemetry.stop sampler;
        Fbb_obs.Sink.clear ();
        Error msg)
  in
  match telemetry with
  | Error msg -> Error msg
  | Ok telemetry -> (
    let config =
      {
        Serve.Server.default_config with
        port;
        queue_capacity = queue_cap;
        batch_max;
        default_deadline_ms;
        default_work;
      }
    in
    match Serve.Server.start ~config () with
    | Error msg ->
      (match telemetry with
      | Some (sampler, srv) ->
        Fbb_obs.Telemetry.shutdown srv;
        Fbb_obs.Telemetry.stop sampler;
        Fbb_obs.Sink.clear ()
      | None -> ());
      Error msg
    | Ok server ->
      Printf.printf "fbbd listening on 127.0.0.1:%d (queue %d, batch %d, \
                     jobs %d)\n%!"
        (Serve.Server.port server) queue_cap batch_max (Fbb_par.Pool.jobs ());
      (match telemetry with
      | Some (_, srv) ->
        Printf.printf "metrics on http://127.0.0.1:%d/metrics\n%!"
          (Fbb_obs.Telemetry.port srv)
      | None -> ());
      let handle = Sys.Signal_handle (fun _ -> interrupted := true) in
      let prev_int = Sys.signal Sys.sigint handle in
      let prev_term = Sys.signal Sys.sigterm handle in
      let stop_at =
        if duration_s > 0.0 then Some (Fbb_obs.Clock.now_s () +. duration_s)
        else None
      in
      let keep_going () =
        (not !interrupted)
        &&
        match stop_at with
        | Some t -> Fbb_obs.Clock.now_s () < t
        | None -> true
      in
      while keep_going () do
        Unix.sleepf 0.1
      done;
      Printf.printf "fbbd: draining...\n%!";
      Serve.Server.stop server;
      Sys.set_signal Sys.sigint prev_int;
      Sys.set_signal Sys.sigterm prev_term;
      let s = Serve.Server.stats server in
      Printf.printf "fbbd: served %d, shed %d\n%!" s.P.served s.P.shed;
      if Fbb_fault.Fault.active () then begin
        Printf.printf "fault stats (injected/evaluated):\n%!";
        List.iter
          (fun (site, evals, injections) ->
            Printf.printf "  %-16s %d/%d\n%!" site injections evals)
          (Fbb_fault.Fault.stats ());
        Fbb_fault.Fault.clear ()
      end;
      (match telemetry with
      | Some (sampler, srv) ->
        Fbb_obs.Telemetry.shutdown srv;
        Fbb_obs.Telemetry.stop sampler;
        Fbb_obs.Sink.clear ()
      | None -> ());
      Ok ())

let serve_cmd =
  let run port metrics queue_cap batch_max deadline work duration faults jobs =
    match
      serve port metrics queue_cap batch_max deadline work duration faults jobs
    with
    | Ok () -> `Ok ()
    | Error m -> `Error (false, m)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the bias-optimization daemon: line-delimited JSON requests \
          over TCP, multiplexed over the domain pool through the anytime \
          cascade, with admission control and same-netlist batching")
    Term.(
      ret
        (const run $ port_arg ~default:9620 $ metrics_port_arg $ queue_cap_arg
        $ batch_max_arg $ deadline_arg $ work_arg $ duration_arg $ faults_arg
        $ jobs_arg))

(* ----- request ---------------------------------------------------------- *)

let op_arg =
  let doc = "Request kind: $(b,solve), $(b,ping) or $(b,stats)." in
  Arg.(
    value
    & opt (enum [ ("solve", `Solve); ("ping", `Ping); ("stats", `Stats) ])
        `Solve
    & info [ "op" ] ~docv:"OP" ~doc)

let id_arg =
  let doc = "Request id echoed on the response." in
  Arg.(value & opt string "cli" & info [ "id" ] ~docv:"ID" ~doc)

let request port op id design gen beta_pct clusters deadline_ms work =
  let ( let* ) = Result.bind in
  let* req =
    match op with
    | `Ping -> Ok (P.Ping { id })
    | `Stats -> Ok (P.Stats { id })
    | `Solve ->
      let* workload = workload ~design ~gen in
      Ok
        (P.Solve
           {
             id;
             workload;
             beta = beta_pct /. 100.0;
             max_clusters = clusters;
             deadline_ms;
             work_budget = work;
           })
  in
  let* client = Serve.Client.connect ~port () in
  let result = Serve.Client.rpc client req in
  Serve.Client.close client;
  let* resp = result in
  print_endline (P.encode_response resp);
  match resp with
  | P.Rejected _ -> Error "request rejected"
  | P.Solved _ | P.Infeasible _ | P.Pong _ | P.Stats_reply _ -> Ok ()

let request_cmd =
  let run port op id design gen beta clusters deadline work =
    match request port op id design gen beta clusters deadline work with
    | Ok () -> `Ok ()
    | Error m -> `Error (false, m)
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:"Send one request to a running daemon and print the response line")
    Term.(
      ret
        (const run $ port_arg ~default:9620 $ op_arg $ id_arg $ design_arg
        $ gen_arg $ beta_arg $ clusters_arg $ deadline_arg $ work_arg))

(* ----- load ------------------------------------------------------------- *)

let connections_arg =
  let doc = "Concurrent closed-loop connections." in
  Arg.(value & opt int 4 & info [ "c"; "connections" ] ~docv:"N" ~doc)

let requests_arg =
  let doc = "Total requests across all connections." in
  Arg.(value & opt int 40 & info [ "n"; "requests" ] ~docv:"N" ~doc)

let rate_arg =
  let doc =
    "Per-connection mean arrival rate in Hz (exponential gaps, \
     deterministic from --seed); 0 sends back-to-back."
  in
  Arg.(value & opt float 0.0 & info [ "rate-hz" ] ~docv:"HZ" ~doc)

let seed_arg =
  let doc = "Load-script seed: same seed, same request script." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let max_p99_arg =
  let doc = "Exit non-zero when the observed p99 exceeds $(docv) ms." in
  Arg.(value & opt (some float) None & info [ "max-p99-ms" ] ~docv:"MS" ~doc)

let json_arg =
  let doc = "Print the report as one JSON object." in
  Arg.(value & flag & info [ "json" ] ~doc)

let load port connections requests rate_hz seed design gen beta_pct clusters
    deadline_ms work max_p99_ms json =
  let ( let* ) = Result.bind in
  let* wl = workload ~design ~gen in
  let cfg =
    {
      (Serve.Loadgen.default ~port) with
      connections;
      requests;
      rate_hz;
      seed;
      workloads = [ wl ];
      beta = beta_pct /. 100.0;
      max_clusters = clusters;
      deadline_ms;
      work_budget = work;
    }
  in
  let* report = Serve.Loadgen.run cfg in
  if json then
    print_endline (Fbb_util.Json.to_string (Serve.Loadgen.report_to_json report))
  else Format.printf "%a@." Serve.Loadgen.pp_report report;
  let* () =
    if report.Serve.Loadgen.errors > 0 then
      Error (Printf.sprintf "%d protocol/transport errors" report.errors)
    else Ok ()
  in
  match max_p99_ms with
  | Some gate when report.Serve.Loadgen.p99_ms > gate ->
    Error (Printf.sprintf "p99 %.1f ms exceeds gate %.1f ms" report.p99_ms gate)
  | _ -> Ok ()

let load_cmd =
  let run port conns reqs rate seed design gen beta clusters deadline work gate
      json =
    match
      load port conns reqs rate seed design gen beta clusters deadline work
        gate json
    with
    | Ok () -> `Ok ()
    | Error m -> `Error (false, m)
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Closed-loop deterministic load generator: exponential arrivals \
          from a seeded RNG, latency percentiles from the histogram plane; \
          exits non-zero on protocol errors or a breached p99 gate")
    Term.(
      ret
        (const run $ port_arg ~default:9620 $ connections_arg $ requests_arg
        $ rate_arg $ seed_arg $ design_arg $ gen_arg $ beta_arg $ clusters_arg
        $ deadline_arg $ work_arg $ max_p99_arg $ json_arg))

(* ----- main ------------------------------------------------------------- *)

let () =
  let info =
    Cmd.info "fbbd" ~version:"1.0.0"
      ~doc:"Concurrent bias-optimization service over the anytime cascade"
  in
  exit (Cmd.eval (Cmd.group info [ serve_cmd; request_cmd; load_cmd ]))
