(* fbbopt: command-line driver for the physically clustered FBB flow.

   Subcommands:
     list          - the built-in benchmark suite
     characterize  - device/bias sweep (Figure 1 data)
     optimize      - run the clustering optimizer on a benchmark or a
                     .bench netlist and report leakage savings
     tune          - closed-loop post-silicon tuning simulation
     recover       - active leakage recovery with reverse body bias
     trace         - offline converters for recorded JSONL traces
     bench-compare - diff two bench.json records, gate on regressions
     serve-metrics - live /metrics + /snapshot.json endpoint, optionally
                     driving a cascade workload (the fbbd seed)
     top           - live TTY dashboard over a telemetry endpoint
     scrape        - fetch + validate a telemetry endpoint (CI smoke) *)

open Cmdliner

let ( let* ) r f = Result.bind r f

(* ----- shared arguments ----------------------------------------------- *)

let design_arg =
  let doc = "Built-in benchmark name (see $(b,fbbopt list))." in
  Arg.(value & opt (some string) None & info [ "d"; "design" ] ~docv:"NAME" ~doc)

let bench_file_arg =
  let doc =
    "Read the circuit from an ISCAS-style .bench file, or structural \
     Verilog when the name ends in .v."
  in
  Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)

let beta_arg =
  let doc = "Slowdown coefficient in percent (the paper's beta)." in
  Arg.(value & opt float 5.0 & info [ "b"; "beta" ] ~docv:"PCT" ~doc)

let clusters_arg =
  let doc = "Cluster budget C (distinct bias levels incl. NBB)." in
  Arg.(value & opt int 2 & info [ "C"; "clusters" ] ~docv:"N" ~doc)

let rows_arg =
  let doc = "Target standard-cell row count (default: benchmark's or square)." in
  Arg.(value & opt (some int) None & info [ "rows" ] ~docv:"N" ~doc)

let ilp_arg =
  let doc = "Also run the exact ILP (warm-started from the heuristic)." in
  Arg.(value & flag & info [ "ilp" ] ~doc)

let ilp_seconds_arg =
  let doc = "ILP time budget in seconds." in
  Arg.(value & opt float 60.0 & info [ "ilp-seconds" ] ~docv:"S" ~doc)

let jobs_arg =
  let doc =
    "Width of the parallel domain pool (default: $(b,FBB_JOBS), else the \
     machine's available cores). Results are bit-identical at any width; \
     1 runs everything on the calling domain."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let set_jobs = Option.iter Fbb_par.Pool.set_jobs

let svg_arg =
  let doc = "Write the biased layout as SVG to $(docv)." in
  Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE" ~doc)

let ascii_arg =
  let doc = "Print the row/cluster map as ASCII art." in
  Arg.(value & flag & info [ "ascii" ] ~doc)

(* ----- observability ---------------------------------------------------- *)

let trace_arg =
  let doc =
    "Write a JSONL event trace (one span/counter/gauge event per line, \
     Chrome trace_event flavoured) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let profile_arg =
  let doc =
    "Print a per-stage timing report (span statistics and counter totals) \
     to stderr when the command finishes."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let profile_csv_arg =
  let doc = "Write the per-stage timing report as CSV to $(docv)." in
  Arg.(
    value & opt (some string) None & info [ "profile-csv" ] ~docv:"FILE" ~doc)

let telemetry_arg =
  let doc =
    "Serve live telemetry ($(b,GET /metrics) Prometheus text, \
     $(b,GET /snapshot.json)) on 127.0.0.1:$(docv) for the duration of the \
     command; 0 picks an ephemeral port. Scrape with $(b,fbbopt scrape) or \
     watch with $(b,fbbopt top)."
  in
  Arg.(value & opt (some int) None & info [ "telemetry" ] ~docv:"PORT" ~doc)

let telemetry_tick_arg =
  let doc = "Telemetry sampler tick in milliseconds." in
  Arg.(
    value & opt float 500.0 & info [ "telemetry-tick-ms" ] ~docv:"MS" ~doc)

module Obs_cli = struct
  type t = {
    aggregate : Fbb_obs.Aggregate.t option;
    jsonl : Fbb_obs.Jsonl.t option;
    profile : bool;
    profile_csv : string option;
    telemetry : (Fbb_obs.Telemetry.sampler * Fbb_obs.Telemetry.server) option;
  }

  let start ?telemetry ?(telemetry_tick_ms = 500.0) ~trace ~profile
      ~profile_csv () =
    let aggregate =
      if profile || profile_csv <> None then Some (Fbb_obs.Aggregate.create ())
      else None
    in
    let jsonl = Option.map Fbb_obs.Jsonl.create trace in
    let sinks =
      List.filter_map Fun.id
        [
          Option.map Fbb_obs.Aggregate.sink aggregate;
          Option.map Fbb_obs.Jsonl.sink jsonl;
        ]
    in
    (match sinks with
    | [] ->
      (* Telemetry feeds on the span-duration histograms, which only
         populate while a sink is installed — give it the null sink
         rather than silently serving empty percentiles. *)
      if telemetry <> None then Fbb_obs.Sink.install Fbb_obs.Sink.null
    | s :: rest ->
      Fbb_obs.Sink.install (List.fold_left Fbb_obs.Sink.tee s rest));
    let telemetry =
      Option.map
        (fun port ->
          let sampler =
            Fbb_obs.Telemetry.start ~tick_s:(telemetry_tick_ms /. 1000.0) ()
          in
          match Fbb_obs.Telemetry.serve ~port () with
          | Error msg ->
            Fbb_obs.Telemetry.stop sampler;
            raise (Sys_error ("telemetry: " ^ msg))
          | Ok srv ->
            Printf.eprintf "telemetry: serving http://127.0.0.1:%d/metrics\n%!"
              (Fbb_obs.Telemetry.port srv);
            (sampler, srv))
        telemetry
    in
    { aggregate; jsonl; profile; profile_csv; telemetry }

  let finish t =
    (* Pool utilization gauges must land while the sinks are still
       installed so they reach the trace and the profile report; the
       sampler's final pass (in [stop]) then captures them, and the
       obs.telemetry.* gauges it sets, into the aggregate too. *)
    Fbb_par.Pool.publish_utilization ();
    Option.iter
      (fun (sampler, srv) ->
        Fbb_obs.Telemetry.stop sampler;
        Fbb_obs.Telemetry.shutdown srv)
      t.telemetry;
    Fbb_obs.Sink.clear ();
    Option.iter Fbb_obs.Jsonl.close t.jsonl;
    Option.iter
      (fun agg ->
        if t.profile then prerr_string (Fbb_obs.Aggregate.report agg);
        Option.iter
          (fun path ->
            Fbb_util.Csv.save (Fbb_obs.Aggregate.to_csv agg) ~path;
            Printf.eprintf "profile csv written to %s\n" path)
          t.profile_csv)
      t.aggregate

  (* Run [f] under the requested sinks as one traced request: a fresh
     Context (so every span, including those on pool workers, carries
     one trace id) wrapped in a top-level span so the report's first
     line accounts for (nearly) the full wall clock. *)
  let run ?telemetry ?telemetry_tick_ms ~span ~trace ~profile ~profile_csv f =
    let t = start ?telemetry ?telemetry_tick_ms ~trace ~profile ~profile_csv () in
    let ctx = Fbb_obs.Context.make () in
    if trace <> None then
      Printf.eprintf "trace id: %s\n%!" ctx.Fbb_obs.Context.trace;
    Fun.protect
      ~finally:(fun () -> finish t)
      (fun () ->
        Fbb_obs.Context.with_ ctx (fun () -> Fbb_obs.Span.with_ ~name:span f))
end

(* Savings against a zero/NaN baseline print as "-", not inf/nan. *)
let pct_str v =
  if Float.is_finite v then Printf.sprintf "%.2f%%" v else "-"

let load_placement ~design ~file ~rows =
  match (design, file) with
  | Some _, Some _ -> Error "pass either --design or --file, not both"
  | None, None -> Error "pass --design NAME or --file FILE"
  | Some name, None -> begin
    match Fbb_netlist.Benchmarks.find name with
    | spec ->
      let nl = spec.Fbb_netlist.Benchmarks.generate () in
      let target_rows =
        Some (Option.value rows ~default:spec.Fbb_netlist.Benchmarks.rows)
      in
      Ok (Fbb_place.Placement.place ?target_rows nl)
    | exception Not_found ->
      Error
        (Printf.sprintf "unknown benchmark %s (try: %s)" name
           (String.concat ", " Fbb_netlist.Benchmarks.names))
  end
  | None, Some path -> begin
    let parse =
      if Filename.check_suffix path ".v" then Fbb_netlist.Verilog_io.parse_file
      else Fbb_netlist.Bench_io.parse_file
    in
    match parse path with
    | nl -> Ok (Fbb_place.Placement.place ?target_rows:rows nl)
    | exception Fbb_netlist.Bench_io.Parse_error (line, msg)
    | exception Fbb_netlist.Verilog_io.Parse_error (line, msg) ->
      Error (Printf.sprintf "%s:%d: %s" path line msg)
  end

let report_placement pl =
  Format.printf "placed: %a@." Fbb_place.Placement.pp_summary pl

(* ----- list ------------------------------------------------------------ *)

let list_cmd =
  let run () =
    let tab =
      Fbb_util.Texttab.create ~headers:[ "name"; "gates"; "rows"; "ILP in paper" ]
    in
    List.iter
      (fun (s : Fbb_netlist.Benchmarks.spec) ->
        Fbb_util.Texttab.add_row tab
          [
            s.Fbb_netlist.Benchmarks.name;
            string_of_int s.Fbb_netlist.Benchmarks.gates;
            string_of_int s.Fbb_netlist.Benchmarks.rows;
            (if s.Fbb_netlist.Benchmarks.ilp_tractable then "yes" else "no");
          ])
      Fbb_netlist.Benchmarks.all;
    Fbb_util.Texttab.print tab
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the built-in benchmark suite")
    Term.(const run $ const ())

(* ----- characterize ----------------------------------------------------- *)

let characterize_cmd =
  let csv_arg =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE"
           ~doc:"Write the sweep as CSV.")
  in
  let liberty_arg =
    Arg.(value & opt (some string) None & info [ "liberty" ] ~docv:"FILE"
           ~doc:"Dump the characterized cell library in Liberty-flavoured \
                 text.")
  in
  let run csv liberty =
    let points = Fbb_tech.Characterize.figure1 () in
    let tab =
      Fbb_util.Texttab.create
        ~headers:[ "vbs (V)"; "speedup %"; "leakage x" ]
    in
    Array.iter
      (fun p ->
        Fbb_util.Texttab.add_row tab
          [
            Printf.sprintf "%.2f" p.Fbb_tech.Characterize.vbs;
            Printf.sprintf "%.2f" p.Fbb_tech.Characterize.speedup_pct;
            Printf.sprintf "%.2f" p.Fbb_tech.Characterize.leak_factor;
          ])
      points;
    Fbb_util.Texttab.print tab;
    Option.iter
      (fun path ->
        Fbb_util.Csv.save (Fbb_tech.Characterize.to_csv points) ~path;
        Printf.printf "written %s\n" path)
      csv;
    Option.iter
      (fun path ->
        Fbb_tech.Liberty.save Fbb_tech.Cell_library.default ~path;
        Printf.printf "written %s\n" path)
      liberty
  in
  Cmd.v
    (Cmd.info "characterize"
       ~doc:"Delay/leakage vs body-bias sweep (Figure 1 data)")
    Term.(const run $ csv_arg $ liberty_arg)

(* ----- optimize --------------------------------------------------------- *)

let optimize design file beta_pct clusters rows run_ilp ilp_seconds svg ascii =
  let* pl = load_placement ~design ~file ~rows in
  report_placement pl;
  let beta = beta_pct /. 100.0 in
  let p = Fbb_core.Problem.build ~beta pl in
  Format.printf "problem: %a@." Fbb_core.Problem.pp_summary p;
  match Fbb_core.Refine.heuristic ~max_clusters:clusters p with
  | None ->
    Error
      (Printf.sprintf
         "a %.1f%% slowdown cannot be compensated: max speed-up at 0.5V is \
          %.1f%%"
         beta_pct
         (Fbb_tech.Device.speedup_pct Fbb_tech.Device.default ~vbs:0.5))
  | Some o ->
    let p = o.Fbb_core.Refine.problem in
    let jopt = Option.get (Fbb_core.Heuristic.pass_one p) in
    let single_bb_nw =
      Fbb_core.Solution.leakage_nw p (Fbb_core.Solution.uniform p jopt)
    in
    let heur_levels = o.Fbb_core.Refine.levels in
    let heur_nw = Fbb_core.Solution.leakage_nw p heur_levels in
    Printf.printf "Single BB baseline: vbs=%.2fV leakage %.3f uW\n"
      (Fbb_tech.Bias.voltage jopt)
      (single_bb_nw /. 1000.0);
    Printf.printf
      "heuristic (C=%d): leakage %.3f uW, savings %s, clusters %s \
       (signoff %s, %d refinement iteration(s))\n"
      clusters (heur_nw /. 1000.0)
      (pct_str (Fbb_util.Stats.ratio_pct single_bb_nw heur_nw))
      (String.concat "/"
         (List.map
            (fun l -> Printf.sprintf "%.2fV" (Fbb_tech.Bias.voltage l))
            (Fbb_core.Solution.clusters_used heur_levels)))
      (if o.Fbb_core.Refine.signoff_clean then "clean" else "NOT CLEAN")
      o.Fbb_core.Refine.iterations;
    let final_levels = ref heur_levels in
    if run_ilp then begin
      let config =
        {
          Fbb_core.Ilp_opt.default_config with
          max_clusters = clusters;
          limits =
            { Fbb_ilp.Branch_bound.max_nodes = 2_000_000;
              max_seconds = ilp_seconds };
        }
      in
      let r =
        Fbb_core.Ilp_opt.optimize ~config ~warm_start:heur_levels p
      in
      match (r.Fbb_core.Ilp_opt.levels, r.Fbb_core.Ilp_opt.leakage_nw) with
      | Some levels, Some leak ->
        Printf.printf
          "ILP (C=%d): leakage %.3f uW, savings %s%s (%d nodes, %.1fs)\n"
          clusters (leak /. 1000.0)
          (pct_str (Fbb_util.Stats.ratio_pct single_bb_nw leak))
          (if r.Fbb_core.Ilp_opt.proved_optimal then " [optimal]"
           else " [budget hit - best incumbent]")
          r.Fbb_core.Ilp_opt.nodes r.Fbb_core.Ilp_opt.elapsed_s;
        if r.Fbb_core.Ilp_opt.proved_optimal then final_levels := levels
      | _, _ -> Printf.printf "ILP: no solution within budget\n"
    end;
    let levels = !final_levels in
    let area = Fbb_layout.Area.of_assignment pl ~levels in
    let rails = Fbb_layout.Bias_rails.insert pl ~levels in
    Printf.printf
      "layout: %d rail pair(s), well-separation overhead %.2f%%, max row \
       utilization increase %.2f%%\n"
      rails.Fbb_layout.Bias_rails.bias_pairs area.Fbb_layout.Area.overhead_pct
      (100.0 *. rails.Fbb_layout.Bias_rails.max_utilization_increase);
    if ascii then print_string (Fbb_layout.Render.ascii pl ~levels);
    Option.iter
      (fun path ->
        Fbb_layout.Render.save_svg ~path pl ~levels;
        Printf.printf "svg written to %s\n" path)
      svg;
    Ok ()

(* --- the deadline-bounded anytime cascade ------------------------------ *)

let status_str = function
  | Fbb_core.Cascade.Accepted -> "accepted"
  | Fbb_core.Cascade.No_candidate -> "no candidate"
  | Fbb_core.Cascade.Rejected -> "REJECTED BY SIGN-OFF"
  | Fbb_core.Cascade.Exhausted -> "budget exhausted"
  | Fbb_core.Cascade.Crashed m -> Printf.sprintf "crashed (%s)" m

let optimize_cascade design file beta_pct clusters rows ~deadline_ms ~work svg
    ascii =
  let* pl = load_placement ~design ~file ~rows in
  report_placement pl;
  let beta = beta_pct /. 100.0 in
  let p = Fbb_core.Problem.build ~beta pl in
  Format.printf "problem: %a@." Fbb_core.Problem.pp_summary p;
  let budget =
    match (deadline_ms, work) with
    | None, None -> Fbb_util.Budget.unlimited
    | d, w ->
      Fbb_util.Budget.create
        ?deadline_s:(Option.map (fun ms -> ms /. 1000.0) d)
        ?work:w ()
  in
  let r = Fbb_core.Cascade.solve ~max_clusters:clusters ~budget p in
  print_string "degradation report:\n";
  List.iter
    (fun (a : Fbb_core.Cascade.attempt) ->
      Printf.printf "  %-10s %-22s%s  work %d, %.3fs\n"
        (Fbb_core.Cascade.stage_name a.Fbb_core.Cascade.stage)
        (status_str a.Fbb_core.Cascade.status)
        (match a.Fbb_core.Cascade.leakage_nw with
        | Some l -> Printf.sprintf "  leakage %.3f uW" (l /. 1000.0)
        | None -> "")
        a.Fbb_core.Cascade.work_spent a.Fbb_core.Cascade.elapsed_s)
    r.Fbb_core.Cascade.attempts;
  if r.Fbb_core.Cascade.exhausted then
    print_string "budget: exhausted before the cascade finished\n";
  match r.Fbb_core.Cascade.outcome with
  | Fbb_core.Cascade.Infeasible ->
    Error
      (Printf.sprintf
         "infeasible: a %.1f%% slowdown cannot be compensated even with \
          every row at the highest bias level"
         beta_pct)
  | Fbb_core.Cascade.Solved { stage; levels; leakage_nw; gap_pct; optimal } ->
    Printf.printf
      "cascade (C=%d): stage %s, leakage %.3f uW, clusters %s%s%s\n" clusters
      (Fbb_core.Cascade.stage_name stage)
      (leakage_nw /. 1000.0)
      (String.concat "/"
         (List.map
            (fun l -> Printf.sprintf "%.2fV" (Fbb_tech.Bias.voltage l))
            (Fbb_core.Solution.clusters_used levels)))
      (if optimal then " [optimal]" else "")
      (match gap_pct with
      | Some g when not optimal -> Printf.sprintf " [gap <= %.1f%%]" g
      | Some _ | None -> "");
    if ascii then print_string (Fbb_layout.Render.ascii pl ~levels);
    Option.iter
      (fun path ->
        Fbb_layout.Render.save_svg ~path pl ~levels;
        Printf.printf "svg written to %s\n" path)
      svg;
    Ok ()

let cascade_arg =
  let doc =
    "Run the anytime fallback cascade (ilp, budgeted B&B, heuristic, single \
     BB) with independent sign-off instead of the refinement flow. Implied \
     by $(b,--deadline-ms) and $(b,--work-budget)."
  in
  Arg.(value & flag & info [ "cascade" ] ~doc)

let deadline_arg =
  let doc =
    "Wall-clock deadline for the cascade in milliseconds; the best \
     signed-off solution found in time wins."
  in
  Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let work_budget_arg =
  let doc =
    "Deterministic work budget for the cascade (abstract ticks: B&B nodes, \
     descent rounds, oracle leaves). Same budget, same answer - at any \
     $(b,--jobs)."
  in
  Arg.(value & opt (some int) None & info [ "work-budget" ] ~docv:"N" ~doc)

let optimize_cmd =
  let run d f b c r i s svg ascii cascade deadline_ms work jobs trace profile
      profile_csv telemetry telemetry_tick_ms =
    set_jobs jobs;
    let use_cascade = cascade || deadline_ms <> None || work <> None in
    match
      Obs_cli.run ?telemetry ~telemetry_tick_ms ~span:"fbbopt.optimize" ~trace
        ~profile ~profile_csv (fun () ->
          if use_cascade then
            optimize_cascade d f b c r ~deadline_ms ~work svg ascii
          else optimize d f b c r i s svg ascii)
    with
    | Ok () -> `Ok ()
    | Error m -> `Error (false, m)
    | exception Sys_error m -> `Error (false, m)
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Row-clustered FBB allocation for a given slowdown coefficient")
    Term.(
      ret
        (const run $ design_arg $ bench_file_arg $ beta_arg $ clusters_arg
        $ rows_arg $ ilp_arg $ ilp_seconds_arg $ svg_arg $ ascii_arg
        $ cascade_arg $ deadline_arg $ work_budget_arg
        $ jobs_arg $ trace_arg $ profile_arg $ profile_csv_arg
        $ telemetry_arg $ telemetry_tick_arg))

(* ----- tune ------------------------------------------------------------- *)

let tune design file rows condition magnitude seed guardband =
  let* pl = load_placement ~design ~file ~rows in
  report_placement pl;
  let rng = Fbb_util.Rng.create ~seed in
  let* derate =
    match condition with
    | "slowdown" -> Ok (Fbb_variation.Models.uniform (magnitude /. 100.0))
    | "temperature" ->
      Ok (fun g -> Fbb_variation.Models.temperature_derate magnitude *. Fbb_variation.Models.uniform 0.0 g)
    | "aging" -> Ok (fun _ -> Fbb_variation.Models.nbti_aging_derate magnitude)
    | "process" ->
      Ok
        (Fbb_variation.Models.combine
           [
             Fbb_variation.Models.spatially_correlated rng
               ~sigma:(magnitude /. 100.0) pl;
             Fbb_variation.Models.uniform (magnitude /. 200.0);
           ])
    | c ->
      Error
        (Printf.sprintf
           "unknown condition %s (slowdown|temperature|aging|process)" c)
  in
  let o = Fbb_variation.Tuning.compensate ~guardband pl ~derate in
  Printf.printf "sensor: %d alarm(s), measured slowdown %.2f%% (raw %.2f%%)\n"
    o.Fbb_variation.Tuning.alarms_before
    (o.Fbb_variation.Tuning.measured_beta *. 100.0)
    (o.Fbb_variation.Tuning.raw_beta *. 100.0);
  Printf.printf "timing: nominal %.1f ps, degraded %.1f ps, compensated %.1f ps\n"
    o.Fbb_variation.Tuning.dcrit_nominal o.Fbb_variation.Tuning.dcrit_degraded
    o.Fbb_variation.Tuning.dcrit_compensated;
  Printf.printf "leakage: %.3f uW (nominal %.3f uW)\n"
    (o.Fbb_variation.Tuning.leakage_nw /. 1000.0)
    (o.Fbb_variation.Tuning.nominal_leakage_nw /. 1000.0);
  Printf.printf "timing closed: %b\n" o.Fbb_variation.Tuning.timing_closed;
  if o.Fbb_variation.Tuning.timing_closed then Ok ()
  else Error "compensation failed to close timing"

let tune_cmd =
  let condition_arg =
    Arg.(value & opt string "slowdown"
           & info [ "condition" ] ~docv:"KIND"
               ~doc:"slowdown | temperature | aging | process")
  in
  let magnitude_arg =
    Arg.(value & opt float 8.0
           & info [ "magnitude" ] ~docv:"X"
               ~doc:"percent slowdown, deg C, years, or sigma%% depending on \
                     condition")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed")
  in
  let guardband_arg =
    Arg.(value & opt float 0.15
           & info [ "guardband" ] ~docv:"F" ~doc:"sensor guardband fraction")
  in
  let run d f r c m s g jobs trace profile profile_csv =
    set_jobs jobs;
    match
      Obs_cli.run ~span:"fbbopt.tune" ~trace ~profile ~profile_csv (fun () ->
          tune d f r c m s g)
    with
    | Ok () -> `Ok ()
    | Error msg -> `Error (false, msg)
    | exception Sys_error msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "tune" ~doc:"Closed-loop post-silicon tuning simulation")
    Term.(
      ret
        (const run $ design_arg $ bench_file_arg $ rows_arg $ condition_arg
        $ magnitude_arg $ seed_arg $ guardband_arg $ jobs_arg $ trace_arg
        $ profile_arg $ profile_csv_arg))

(* ----- recover ----------------------------------------------------------- *)

let recover design file rows margin clusters =
  let* pl = load_placement ~design ~file ~rows in
  report_placement pl;
  let t = Fbb_core.Recovery.build ~margin:(margin /. 100.0) pl in
  let r = Fbb_core.Recovery.optimize ~max_clusters:clusters t in
  Printf.printf
    "timing budget: %.1f ps (margin %.1f%%)\n" t.Fbb_core.Recovery.budget_ps
    margin;
  Printf.printf
    "leakage: %.3f uW nominal -> %.3f uW with RBB (%.1f%% recovered)\n"
    (r.Fbb_core.Recovery.nominal_leakage_nw /. 1000.0)
    (r.Fbb_core.Recovery.recovered_leakage_nw /. 1000.0)
    r.Fbb_core.Recovery.savings_pct;
  Printf.printf "clusters: %s (signoff %s)\n"
    (String.concat "/"
       (List.map
          (fun l ->
            Printf.sprintf "%.2fV" t.Fbb_core.Recovery.levels.(l))
          (Fbb_core.Solution.clusters_used r.Fbb_core.Recovery.levels)))
    (if r.Fbb_core.Recovery.signoff_clean then "clean" else "NOT CLEAN");
  Ok ()

let recover_cmd =
  let margin_arg =
    Arg.(value & opt float 5.0
           & info [ "margin" ] ~docv:"PCT"
               ~doc:"Timing margin over the critical delay to spend on RBB.")
  in
  let run d f r m c =
    match recover d f r m c with
    | Ok () -> `Ok ()
    | Error msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Active leakage recovery with row-level reverse body bias")
    Term.(
      ret
        (const run $ design_arg $ bench_file_arg $ rows_arg $ margin_arg
        $ clusters_arg))

(* ----- trace ------------------------------------------------------------ *)

let trace_file_arg =
  let doc = "JSONL trace recorded with $(b,--trace)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)

let out_arg =
  let doc = "Write the result to $(docv) instead of stdout." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let write_out out content =
  match out with
  | None -> print_string content
  | Some path ->
    Fbb_util.Atomic_io.write_atomic ~path content;
    Printf.printf "written %s\n" path

let with_trace path f =
  match f (Fbb_obs.Trace_export.load path) with
  | () -> `Ok ()
  | exception Failure msg -> `Error (false, msg)
  | exception Sys_error msg -> `Error (false, msg)

let trace_id_arg =
  let doc =
    "Keep only the span events stamped with this trace id (as printed by \
     $(b,--trace) runs); process-global events (counters, gauges, histogram \
     observations, GC samples) are dropped."
  in
  Arg.(value & opt (some string) None & info [ "trace-id" ] ~docv:"ID" ~doc)

let trace_convert_cmd =
  let run path out trace_id =
    with_trace path @@ fun events ->
    let events =
      match trace_id with
      | None -> events
      | Some trace -> Fbb_obs.Trace_export.filter_trace ~trace events
    in
    write_out out
      (Fbb_util.Json.to_string ~indent:false
         (Fbb_obs.Trace_export.to_chrome events))
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:
         "Convert a JSONL trace to Chrome trace_event JSON (load in \
          ui.perfetto.dev or chrome://tracing)")
    Term.(ret (const run $ trace_file_arg $ out_arg $ trace_id_arg))

let trace_flame_cmd =
  let run path out =
    with_trace path @@ fun events ->
    write_out out
      (Fbb_obs.Trace_export.folded_to_string
         (Fbb_obs.Trace_export.to_folded events))
  in
  Cmd.v
    (Cmd.info "flame"
       ~doc:
         "Render a JSONL trace as folded flamegraph stacks (self time in \
          microseconds, for flamegraph.pl / inferno)")
    Term.(ret (const run $ trace_file_arg $ out_arg))

let trace_stats_cmd =
  let run path =
    with_trace path @@ fun events ->
    print_string (Fbb_obs.Trace_export.stats events)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Replay a JSONL trace through the aggregate sink and print its \
          report plus span-balance checks")
    Term.(ret (const run $ trace_file_arg))

let trace_cmd =
  Cmd.group
    (Cmd.info "trace" ~doc:"Offline converters for recorded JSONL traces")
    [ trace_convert_cmd; trace_flame_cmd; trace_stats_cmd ]

(* ----- bench-compare ---------------------------------------------------- *)

let bench_compare_cmd =
  let old_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD" ~doc:"Baseline bench.json.")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"Fresh bench.json to judge.")
  in
  let max_regress_arg =
    Arg.(
      value & opt float 25.0
      & info [ "max-regress" ] ~docv:"PCT"
          ~doc:
            "Fail when a gated metric (experiment seconds, GC allocation) \
             grew by more than $(docv) percent beyond the noise floor.")
  in
  let run old_path new_path max_regress_pct =
    let load what path =
      match Fbb_obs.Benchfile.load path with
      | Ok t -> Ok t
      | Error msg -> Error (Printf.sprintf "%s record %s: %s" what path msg)
    in
    match
      let* old_t = load "old" old_path in
      let* new_t = load "new" new_path in
      Ok (Fbb_obs.Benchfile.compare ~max_regress_pct old_t new_t)
    with
    | Error msg ->
      prerr_endline msg;
      exit 2
    | Ok c ->
      print_string (Fbb_obs.Benchfile.render c);
      if c.Fbb_obs.Benchfile.missing <> [] then exit 2
      else if Fbb_obs.Benchfile.regressed c then begin
        Printf.printf "REGRESSION: gated metric(s) beyond %.0f%%\n"
          max_regress_pct;
        exit 1
      end
      else print_string "bench-compare: ok\n"
  in
  Cmd.v
    (Cmd.info "bench-compare"
       ~doc:
         "Diff two bench.json records; exit 1 on regression, 2 on \
          missing/unreadable data")
    Term.(const run $ old_arg $ new_arg $ max_regress_arg)

(* ----- serve-metrics ---------------------------------------------------- *)

(* The fbbd seed: stand up the telemetry plane and (optionally) keep a
   deadline-bounded cascade workload running under it, one traced
   request per solve, until the duration elapses or SIGINT. *)

let port_arg =
  let doc = "TCP port to listen on (0 = ephemeral)." in
  Arg.(value & opt int 9619 & info [ "p"; "port" ] ~docv:"PORT" ~doc)

let duration_arg =
  let doc = "Stop after $(docv) seconds (0 = run until interrupted)." in
  Arg.(value & opt float 0.0 & info [ "duration-s" ] ~docv:"S" ~doc)

let serve_deadline_arg =
  let doc = "Per-request cascade deadline in milliseconds." in
  Arg.(value & opt float 200.0 & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let serve_metrics design file rows beta_pct clusters ~deadline_ms ~duration_s
    ~port ~tick_ms =
  (* Spans only record histograms while a sink is installed; the null
     sink turns instrumentation on without writing anything. *)
  Fbb_obs.Sink.install Fbb_obs.Sink.null;
  let sampler = Fbb_obs.Telemetry.start ~tick_s:(tick_ms /. 1000.0) () in
  let* srv =
    match Fbb_obs.Telemetry.serve ~port () with
    | Ok srv -> Ok srv
    | Error msg ->
      Fbb_obs.Telemetry.stop sampler;
      Fbb_obs.Sink.clear ();
      Error msg
  in
  Printf.printf "serving http://127.0.0.1:%d/metrics (tick %.0f ms)\n%!"
    (Fbb_obs.Telemetry.port srv) tick_ms;
  let deadline = Float.max 0.0 deadline_ms /. 1000.0 in
  let stop_at =
    if duration_s > 0.0 then Some (Fbb_obs.Clock.now_s () +. duration_s)
    else None
  in
  let keep_going () =
    match stop_at with
    | Some t -> Fbb_obs.Clock.now_s () < t
    | None -> true
  in
  let result =
    match (design, file) with
    | None, None ->
      (* No workload: serve whatever the registries already hold. *)
      while keep_going () do
        Unix.sleepf 0.2
      done;
      Ok ()
    | _ ->
      let* pl = load_placement ~design ~file ~rows in
      report_placement pl;
      let p = Fbb_core.Problem.build ~beta:(beta_pct /. 100.0) pl in
      Printf.printf
        "workload: cascade (C=%d) every request, deadline %.0f ms\n%!" clusters
        deadline_ms;
      let requests = Fbb_obs.Counter.make "serve.requests" in
      while keep_going () do
        Fbb_obs.Counter.incr requests;
        Fbb_obs.Context.with_ (Fbb_obs.Context.make ()) (fun () ->
            Fbb_obs.Span.with_ ~name:"serve.request" (fun () ->
                ignore
                  (Fbb_core.Cascade.solve ~max_clusters:clusters
                     ~budget:(Fbb_util.Budget.create ~deadline_s:deadline ())
                     p)))
      done;
      Ok ()
  in
  Fbb_obs.Telemetry.shutdown srv;
  Fbb_obs.Telemetry.stop sampler;
  Fbb_par.Pool.publish_utilization ();
  Fbb_obs.Sink.clear ();
  result

let serve_metrics_cmd =
  let run d f r b c deadline_ms duration_s port tick_ms jobs =
    set_jobs jobs;
    match serve_metrics d f r b c ~deadline_ms ~duration_s ~port ~tick_ms with
    | Ok () -> `Ok ()
    | Error m -> `Error (false, m)
    | exception Sys_error m -> `Error (false, m)
  in
  Cmd.v
    (Cmd.info "serve-metrics"
       ~doc:
         "Serve live telemetry (GET /metrics Prometheus text, GET \
          /snapshot.json), optionally driving a deadline-bounded cascade \
          workload — the seed of the fbbd service")
    Term.(
      ret
        (const run $ design_arg $ bench_file_arg $ rows_arg $ beta_arg
        $ clusters_arg $ serve_deadline_arg $ duration_arg $ port_arg
        $ telemetry_tick_arg $ jobs_arg))

(* ----- top -------------------------------------------------------------- *)

let url_arg =
  let doc = "Base URL of a telemetry endpoint." in
  Arg.(
    value
    & opt string "http://127.0.0.1:9619"
    & info [ "u"; "url" ] ~docv:"URL" ~doc)

(* One dashboard frame from a /snapshot.json document: a header line
   plus a Texttab of every series with min/last/max and a sparkline. *)
let render_snapshot ~spark_width j =
  let module J = Fbb_util.Json in
  let module T = Fbb_util.Texttab in
  let buf = Buffer.create 4096 in
  let gauges = Option.value (J.member_obj "gauges" j) ~default:[] in
  let gauge name =
    Option.bind (List.assoc_opt name gauges) J.to_num
  in
  Printf.bprintf buf "fbbopt top — ts %.1f  sampler ticks %s  overhead %s\n"
    (Option.value (J.member_num "ts_unix" j) ~default:Float.nan)
    (match gauge "obs.telemetry.ticks" with
    | Some v -> Printf.sprintf "%.0f" v
    | None -> "-")
    (match gauge "obs.telemetry.overhead_pct" with
    | Some v -> Printf.sprintf "%.3f%%" v
    | None -> "-");
  let series = Option.value (J.member_obj "series" j) ~default:[] in
  if series = [] then Buffer.add_string buf "(no series yet)\n"
  else begin
    let tab =
      T.create
        ~headers:
          [ "series"; "min"; "last"; "max";
            Printf.sprintf "last %d ticks" spark_width ]
    in
    T.set_align tab 4 T.Left;
    List.iter
      (fun (name, v) ->
        match v with
        | J.Arr pts ->
          let vals =
            List.filter_map
              (function
                | J.Arr [ _; J.Num v ] -> Some v
                | J.Arr [ _; J.Null ] -> Some Float.nan
                | _ -> None)
              pts
          in
          let finite = List.filter Float.is_finite vals in
          let fold f init = List.fold_left f init finite in
          let mn = if finite = [] then Float.nan else fold Float.min Float.infinity in
          let mx = if finite = [] then Float.nan else fold Float.max Float.neg_infinity in
          let last =
            match List.rev vals with [] -> Float.nan | v :: _ -> v
          in
          T.add_row tab
            [
              name;
              T.cell_f ~digits:4 mn;
              T.cell_f ~digits:4 last;
              T.cell_f ~digits:4 mx;
              T.sparkline ~width:spark_width (Array.of_list vals);
            ]
        | _ -> ())
      series;
    Buffer.add_string buf (T.render tab)
  end;
  Buffer.contents buf

let top_cmd =
  let once_arg =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Render a single frame and exit (for scripts and CI).")
  in
  let interval_arg =
    Arg.(
      value & opt float 1000.0
      & info [ "interval-ms" ] ~docv:"MS" ~doc:"Refresh interval.")
  in
  let width_arg =
    Arg.(
      value & opt int 32
      & info [ "spark-width" ] ~docv:"N" ~doc:"Sparkline window in ticks.")
  in
  let run url once interval_ms spark_width =
    let fetch () =
      match Fbb_obs.Telemetry.http_get (url ^ "/snapshot.json") with
      | Error _ as e -> e
      | Ok body -> (
        match Fbb_util.Json.parse_opt body with
        | Some j -> Ok j
        | None -> Error (url ^ "/snapshot.json: malformed JSON"))
    in
    if once then
      match fetch () with
      | Ok j ->
        print_string (render_snapshot ~spark_width j);
        `Ok ()
      | Error m -> `Error (false, m)
    else begin
      (* Live mode: clear-and-redraw until the endpoint goes away or
         the user interrupts. *)
      let rec loop misses =
        if misses > 5 then
          `Error (false, url ^ ": endpoint unreachable, giving up")
        else begin
          (match fetch () with
          | Ok j ->
            print_string ("\027[2J\027[H" ^ render_snapshot ~spark_width j)
          | Error m -> Printf.printf "(%s)\n%!" m);
          Unix.sleepf (Float.max 0.05 (interval_ms /. 1000.0));
          match fetch () with
          | Ok _ -> loop 0
          | Error _ -> loop (misses + 1)
        end
      in
      loop 0
    end
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live TTY dashboard over a telemetry endpoint: every series with \
          sparklines, refreshed in place")
    Term.(ret (const run $ url_arg $ once_arg $ interval_arg $ width_arg))

(* ----- scrape ----------------------------------------------------------- *)

let scrape_cmd =
  let pos_url_arg =
    let doc = "Base URL of a telemetry endpoint." in
    Arg.(
      value
      & pos 0 string "http://127.0.0.1:9619"
      & info [] ~docv:"URL" ~doc)
  in
  let max_overhead_arg =
    Arg.(
      value & opt float 2.0
      & info [ "max-overhead-pct" ] ~docv:"PCT"
          ~doc:
            "Fail when the endpoint's self-reported sampler overhead \
             (obs.telemetry.overhead_pct) exceeds $(docv) percent.")
  in
  let run url max_overhead =
    let module J = Fbb_util.Json in
    let ( let* ) = Result.bind in
    match
      let* metrics = Fbb_obs.Telemetry.http_get (url ^ "/metrics") in
      let* () =
        Result.map_error
          (fun e -> Printf.sprintf "/metrics is not valid Prometheus text: %s" e)
          (Fbb_obs.Promtext.validate metrics)
      in
      let* body = Fbb_obs.Telemetry.http_get (url ^ "/snapshot.json") in
      let* j =
        Option.to_result
          ~none:"/snapshot.json is not well-formed JSON"
          (J.parse_opt body)
      in
      let* () =
        match J.member_str "schema" j with
        | Some "fbb-telemetry-1" -> Ok ()
        | Some s -> Error (Printf.sprintf "unexpected snapshot schema %S" s)
        | None -> Error "snapshot has no \"schema\""
      in
      let overhead =
        Option.bind
          (Option.bind (J.member_obj "gauges" j)
             (List.assoc_opt "obs.telemetry.overhead_pct"))
          J.to_num
      in
      let* () =
        match overhead with
        | Some pct when pct > max_overhead ->
          Error
            (Printf.sprintf "sampler overhead %.3f%% exceeds budget %.1f%%" pct
               max_overhead)
        | Some _ | None -> Ok ()
      in
      let metric_lines =
        String.split_on_char '\n' metrics
        |> List.filter (fun l -> l <> "" && l.[0] <> '#')
        |> List.length
      in
      let series =
        match J.member_obj "series" j with Some s -> List.length s | None -> 0
      in
      Ok
        (Printf.printf
           "scrape ok: %d metric sample(s), %d series, sampler overhead %s\n"
           metric_lines series
           (match overhead with
           | Some pct -> Printf.sprintf "%.3f%%" pct
           | None -> "n/a"))
    with
    | Ok () -> `Ok ()
    | Error m -> `Error (false, m)
  in
  Cmd.v
    (Cmd.info "scrape"
       ~doc:
         "Fetch /metrics and /snapshot.json from a telemetry endpoint, \
          validate both formats and the sampler's overhead budget; exits \
          non-zero on any failure (the CI smoke check)")
    Term.(ret (const run $ pos_url_arg $ max_overhead_arg))

(* ----- main ------------------------------------------------------------- *)

let () =
  let info =
    Cmd.info "fbbopt" ~version:"1.0.0"
      ~doc:"Physically clustered forward body biasing (DATE'09 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            characterize_cmd;
            optimize_cmd;
            tune_cmd;
            recover_cmd;
            trace_cmd;
            bench_compare_cmd;
            serve_metrics_cmd;
            top_cmd;
            scrape_cmd;
          ]))
