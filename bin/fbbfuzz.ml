(* fbbfuzz: differential fuzzer for the clustered-FBB solvers.

   Replays the persisted regression corpus, then generates random placed
   problems and cross-checks the heuristic, branch & bound and the
   refinement loop against the exact brute-force oracle and an
   independent invariant checker (Fbb_oracle). Failing cases are
   greedily minimized and written out as replayable .case files. *)

open Cmdliner

let cases_arg =
  let doc = "Number of random cases to generate (on top of the corpus)." in
  Arg.(value & opt int 100 & info [ "n"; "cases" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Root RNG seed; equal seeds fuzz identical case sequences." in
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let shrink_arg =
  let doc = "Minimize failing cases before writing repro files." in
  Arg.(value & opt bool true & info [ "shrink" ] ~docv:"BOOL" ~doc)

let corpus_dir_arg =
  let doc = "Replay every *.case file of $(docv) before fuzzing." in
  Arg.(
    value & opt (some string) None & info [ "corpus-dir" ] ~docv:"DIR" ~doc)

let repro_dir_arg =
  let doc = "Directory minimized failing cases are written to." in
  Arg.(value & opt string "fuzz_out" & info [ "repro-dir" ] ~docv:"DIR" ~doc)

let metamorphic_arg =
  let doc =
    "Also check metamorphic properties of the optimum (row permutation, \
     beta monotonicity, leakage scaling) on oracle-sized cases."
  in
  Arg.(value & opt bool true & info [ "metamorphic" ] ~docv:"BOOL" ~doc)

let ilp_seconds_arg =
  let doc = "Per-case branch & bound time budget in seconds." in
  Arg.(value & opt float 30.0 & info [ "ilp-seconds" ] ~docv:"S" ~doc)

let jobs_arg =
  let doc =
    "Width of the parallel domain pool used inside the solvers (default: \
     $(b,FBB_JOBS), else the machine's cores). Solver outputs are \
     bit-identical at any width."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let verbose_arg =
  let doc = "Print every case instead of a progress line per 10." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let trace_arg =
  let doc =
    "Write a JSONL event trace of the whole fuzz run (span/counter/gauge \
     events, convertible with $(b,fbbopt trace)) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let telemetry_arg =
  let doc =
    "Serve live telemetry on $(docv) while fuzzing: a background sampler \
     snapshots counters/gauges/span histograms into ring buffers and a \
     $(b,GET /metrics) (Prometheus text) + $(b,GET /snapshot.json) endpoint \
     exposes them (watch with $(b,fbbopt top))."
  in
  Arg.(value & opt (some int) None & info [ "telemetry" ] ~docv:"PORT" ~doc)

let faults_arg =
  let doc =
    "Inject deterministic faults at rate $(b,RATE) with seed $(b,SEED) and \
     fuzz the degradation cascade instead of the individual solvers. The \
     cascade under test runs with injection live at the sites \
     $(b,pool.worker), $(b,pool.transient), $(b,lp.pivot_limit), \
     $(b,io.transient) and $(b,budget.exhaust); the oracle referee and the \
     invariant checker run with injection paused, so faults may degrade the \
     answer to a later stage but can never corrupt the ground truth it is \
     judged against."
  in
  Arg.(
    value
    & opt (some (pair ~sep:',' float int)) None
    & info [ "faults" ] ~docv:"RATE,SEED" ~doc)

(* Case distribution: mostly oracle-sized (small row counts, C=2) so the
   exact cross-check fires, with a steady minority of larger instances
   that exercise the invariant-only path and an occasional coarse-level
   or truncated-constraint variant. *)
let random_case rng =
  let open Fbb_util in
  let oracle_sized = Rng.int rng 7 <> 0 in
  let rows = if oracle_sized then 2 + Rng.int rng 5 else 7 + Rng.int rng 4 in
  let gates = 40 + Rng.int rng 120 in
  let beta = 0.04 +. Rng.float rng 0.06 in
  let max_clusters =
    if oracle_sized && rows <= 5 && Rng.int rng 4 = 0 then 3 else 2
  in
  let level_stride = if Rng.int rng 5 = 0 then 1 + Rng.int rng 2 else 1 in
  let max_paths = if Rng.int rng 4 = 0 then Some (8 + Rng.int rng 24) else None in
  Fbb_oracle.Case.make ~beta ~max_clusters ~level_stride ?max_paths
    ~seed:(Rng.int rng 1_000_000) ~gates ~rows ()

type tally = {
  mutable total : int;
  mutable oracle_checked : int;
  mutable oracle_infeasible : int;
  mutable bb_proved : int;
  mutable failed : int;
}

let describe_case c =
  let open Fbb_oracle in
  Printf.sprintf "%s" (Case.name c)

let run_one ~tally ~verbose ~metamorphic ~ilp_seconds ~origin case =
  let open Fbb_oracle in
  let r = Differential.run ~metamorphic ~ilp_seconds case in
  tally.total <- tally.total + 1;
  (match r.Differential.outputs.Differential.oracle with
  | Differential.Checked Oracle.Infeasible ->
    tally.oracle_checked <- tally.oracle_checked + 1;
    tally.oracle_infeasible <- tally.oracle_infeasible + 1
  | Differential.Checked (Oracle.Optimal _) ->
    tally.oracle_checked <- tally.oracle_checked + 1
  | Differential.Skipped -> ());
  if r.Differential.outputs.Differential.bb.Differential.proved_optimal then
    tally.bb_proved <- tally.bb_proved + 1;
  if Differential.failed r then tally.failed <- tally.failed + 1;
  if verbose || Differential.failed r then
    Printf.printf "%s %-40s %s\n%!"
      (if Differential.failed r then "FAIL" else "ok  ")
      (describe_case case) origin;
  List.iter (fun m -> Printf.printf "     - %s\n%!" m) r.Differential.failures;
  r

let report_failure ~shrink ~repro_dir ~metamorphic ~ilp_seconds case =
  let open Fbb_oracle in
  let minimized, note =
    if shrink then begin
      Printf.printf "     shrinking...\n%!";
      let minimized, progress =
        Shrink.minimize
          ~run:(fun c ->
            (Differential.run ~metamorphic ~ilp_seconds c)
              .Differential.failures)
          case
      in
      ( minimized,
        Printf.sprintf "%d step(s) in %d attempt(s)" progress.Shrink.steps
          progress.Shrink.attempts )
    end
    else (case, "shrinking disabled")
  in
  let path = Case.save ~dir:repro_dir minimized in
  Printf.printf "     minimized to %s (%s)\n     repro written: %s\n%!"
    (describe_case minimized) note path;
  (* Print the residual failures of the minimized case so the log alone
     is actionable. *)
  if minimized <> case then
    List.iter
      (fun m -> Printf.printf "     - %s\n%!" m)
      (Differential.run ~metamorphic ~ilp_seconds minimized)
        .Differential.failures

(* Resolve --corpus-dir up front, before any fuzzing starts. An empty
   or missing corpus directory is a usage error (exit 2), not a quietly
   shorter run: a CI job pointing at the wrong path must fail loudly. A
   corrupt case file is equally hard. *)
let load_corpus = function
  | None -> []
  | Some dir -> (
    match Fbb_oracle.Case.load_dir dir with
    | [] ->
      Printf.eprintf
        "fbbfuzz: --corpus-dir %s: no *.case files found (missing or empty \
         directory)\n\
         %!"
        dir;
      exit 2
    | corpus -> corpus
    | exception Failure m ->
      Printf.eprintf "fbbfuzz: corrupt corpus: %s\n%!" m;
      exit 2)

let fuzz_body cases seed shrink corpus repro_dir metamorphic ilp_seconds
    verbose =
  let open Fbb_oracle in
  let tally =
    { total = 0; oracle_checked = 0; oracle_infeasible = 0; bb_proved = 0;
      failed = 0 }
  in
  let failing = ref [] in
  let consider ~origin case =
    let r = run_one ~tally ~verbose ~metamorphic ~ilp_seconds ~origin case in
    if Differential.failed r then failing := case :: !failing
  in
  if corpus <> [] then begin
    Printf.printf "replaying %d corpus case(s)\n%!" (List.length corpus);
    List.iter (fun (path, case) -> consider ~origin:path case) corpus
  end;
  (* random generation *)
  let rng = Fbb_util.Rng.create ~seed in
  for i = 1 to cases do
    (match random_case rng with
    | case -> consider ~origin:(Printf.sprintf "case %d/%d" i cases) case
    | exception Invalid_argument _ -> ());
    if (not verbose) && i mod 10 = 0 then
      Printf.printf
        "  %d/%d done (oracle-checked %d, infeasible %d, bb-proved %d, \
         failures %d)\n%!"
        i cases tally.oracle_checked tally.oracle_infeasible tally.bb_proved
        tally.failed
  done;
  List.iter
    (report_failure ~shrink ~repro_dir ~metamorphic ~ilp_seconds)
    (List.rev !failing);
  Printf.printf
    "fuzz summary: %d case(s), %d oracle-checked (%d infeasible), %d \
     bb-proved, %d failure(s)\n%!"
    tally.total tally.oracle_checked tally.oracle_infeasible tally.bb_proved
    tally.failed;
  if tally.failed = 0 then 0
  else begin
    Printf.eprintf "fbbfuzz: %d failing case(s); repros under %s\n%!"
      tally.failed repro_dir;
    1
  end

(* ----- cascade fuzzing under fault injection --------------------------- *)

(* --faults RATE,SEED: the system under test is the whole degradation
   cascade, judged by [Differential.run_cascade] (oracle + independent
   sign-off, both with injection paused). Any reported failure means
   faults leaked into the answer instead of merely degrading it. *)
let fault_fuzz_body ~cases ~seed ~shrink ~corpus ~repro_dir ~verbose ~rate
    ~fault_seed =
  let open Fbb_oracle in
  let module Cascade = Fbb_core.Cascade in
  Fbb_fault.Fault.configure ~rate ~seed:fault_seed;
  Fbb_fault.Fault.install_io_faults ();
  Printf.printf "fault injection: rate %g, seed %d\n%!" rate fault_seed;
  let total = ref 0 and failed = ref 0 and infeasible = ref 0 in
  let stage_counts = Array.make 4 0 in
  let stage_idx = function
    | Cascade.Ilp -> 0
    | Cascade.Bb -> 1
    | Cascade.Heuristic -> 2
    | Cascade.Single_bb -> 3
  in
  let failing = ref [] in
  let consider ~origin case =
    let r =
      Differential.run_cascade ~max_clusters:case.Case.max_clusters case
    in
    incr total;
    let outcome_note =
      match r.Differential.c_result with
      | Some { Cascade.outcome = Cascade.Solved { stage; _ }; _ } ->
        stage_counts.(stage_idx stage) <- stage_counts.(stage_idx stage) + 1;
        Printf.sprintf "[%s]" (Cascade.stage_name stage)
      | Some { Cascade.outcome = Cascade.Infeasible; _ } ->
        incr infeasible;
        "[infeasible]"
      | None -> "[crashed]"
    in
    let bad = Differential.cascade_failed r in
    if bad then begin
      incr failed;
      failing := case :: !failing
    end;
    if verbose || bad then
      Printf.printf "%s %-40s %-12s %s\n%!"
        (if bad then "FAIL" else "ok  ")
        (describe_case case) outcome_note origin;
    List.iter
      (fun m -> Printf.printf "     - %s\n%!" m)
      r.Differential.c_failures
  in
  List.iter (fun (path, case) -> consider ~origin:path case) corpus;
  let rng = Fbb_util.Rng.create ~seed in
  for i = 1 to cases do
    (match random_case rng with
    | case -> consider ~origin:(Printf.sprintf "case %d/%d" i cases) case
    | exception Invalid_argument _ -> ());
    if (not verbose) && i mod 10 = 0 then
      Printf.printf "  %d/%d done (%d failure(s))\n%!" i cases !failed
  done;
  (* Repro files are written with I/O faults still live: write_atomic
     retries transients, and the crash-safe protocol means a save that
     ultimately fails leaves no partial file behind. *)
  List.iter
    (fun case ->
      let minimized, note =
        if shrink then begin
          Printf.printf "     shrinking...\n%!";
          let minimized, progress =
            Shrink.minimize
              ~run:(fun c ->
                (Differential.run_cascade ~max_clusters:c.Case.max_clusters c)
                  .Differential.c_failures)
              case
          in
          ( minimized,
            Printf.sprintf "%d step(s) in %d attempt(s)" progress.Shrink.steps
              progress.Shrink.attempts )
        end
        else (case, "shrinking disabled")
      in
      match Case.save ~dir:repro_dir minimized with
      | path -> Printf.printf "     repro written: %s (%s)\n%!" path note
      | exception e ->
        Printf.printf "     repro save failed (injected I/O faults?): %s\n%!"
          (Printexc.to_string e))
    (List.rev !failing);
  Printf.printf
    "fault fuzz summary: %d case(s); stages ilp=%d bb=%d heuristic=%d \
     single_bb=%d; %d infeasible; %d failure(s)\n%!"
    !total stage_counts.(0) stage_counts.(1) stage_counts.(2) stage_counts.(3)
    !infeasible !failed;
  Printf.printf "fault stats (injected/evaluated):\n%!";
  List.iter
    (fun (site, evals, injections) ->
      Printf.printf "  %-16s %d/%d\n%!" site injections evals)
    (Fbb_fault.Fault.stats ());
  Fbb_fault.Fault.clear ();
  if !failed = 0 then 0
  else begin
    Printf.eprintf "fbbfuzz: %d failing case(s); repros under %s\n%!" !failed
      repro_dir;
    1
  end

let fuzz cases seed shrink corpus_dir repro_dir metamorphic ilp_seconds jobs
    verbose trace telemetry faults =
  Option.iter Fbb_par.Pool.set_jobs jobs;
  let corpus = load_corpus corpus_dir in
  let run () =
    match faults with
    | Some (rate, fault_seed) ->
      fault_fuzz_body ~cases ~seed ~shrink ~corpus ~repro_dir ~verbose ~rate
        ~fault_seed
    | None ->
      fuzz_body cases seed shrink corpus repro_dir metamorphic ilp_seconds
        verbose
  in
  let with_trace run =
    match trace with
    | None -> run ()
    | Some path ->
      (* Same sink discipline as fbbopt: trace the whole run under one
         root span, publish pool utilization while the sink is still
         installed, and close (fsync) the file even if the run raises. *)
      let jsonl = Fbb_obs.Jsonl.create path in
      Fbb_obs.Sink.install (Fbb_obs.Jsonl.sink jsonl);
      Fun.protect
        ~finally:(fun () ->
          Fbb_par.Pool.publish_utilization ();
          Fbb_obs.Sink.clear ();
          Fbb_obs.Jsonl.close jsonl)
        (fun () -> Fbb_obs.Span.with_ ~name:"fbbfuzz.run" run)
  in
  match telemetry with
  | None -> with_trace run
  | Some port -> (
    (* Span histograms only record while a sink is installed; with no
       --trace the null sink turns instrumentation on for the sampler. *)
    if trace = None then Fbb_obs.Sink.install Fbb_obs.Sink.null;
    let sampler = Fbb_obs.Telemetry.start () in
    match Fbb_obs.Telemetry.serve ~port () with
    | Error msg ->
      Fbb_obs.Telemetry.stop sampler;
      if trace = None then Fbb_obs.Sink.clear ();
      Printf.eprintf "fbbfuzz: telemetry: %s\n%!" msg;
      2
    | Ok srv ->
      Printf.eprintf "fbbfuzz: telemetry on http://127.0.0.1:%d/metrics\n%!"
        (Fbb_obs.Telemetry.port srv);
      Fun.protect
        ~finally:(fun () ->
          Fbb_par.Pool.publish_utilization ();
          Fbb_obs.Telemetry.stop sampler;
          Fbb_obs.Telemetry.shutdown srv;
          if trace = None then Fbb_obs.Sink.clear ())
        (fun () -> with_trace run))

let () =
  let info =
    Cmd.info "fbbfuzz" ~version:"1.0.0"
      ~doc:
        "Differential fuzzing of the clustered-FBB solvers against an exact \
         brute-force oracle"
  in
  let term =
    Term.(
      const fuzz $ cases_arg $ seed_arg $ shrink_arg $ corpus_dir_arg
      $ repro_dir_arg $ metamorphic_arg $ ilp_seconds_arg $ jobs_arg
      $ verbose_arg $ trace_arg $ telemetry_arg $ faults_arg)
  in
  exit (Cmd.eval' (Cmd.v info term))
