(* Layout gallery: place three designs, optimize their clusters and write
   SVG drawings with the bias rails, contact marks and well-separation
   strips (the visual of the paper's Figures 3 and 6).

     dune exec examples/layout_gallery.exe
   Files land in example_out/. *)

let out_dir = "example_out"

let () =
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  List.iter
    (fun (name, beta, c) ->
      let prep = Fbb_core.Flow.prepare (Fbb_netlist.Benchmarks.find name) in
      let pl = prep.Fbb_core.Flow.placement in
      let p = Fbb_core.Flow.problem prep ~beta in
      match Fbb_core.Refine.heuristic ~max_clusters:c p with
      | None -> Printf.printf "%s: compensation infeasible\n" name
      | Some o ->
        let levels = o.Fbb_core.Refine.levels in
        let path = Filename.concat out_dir (name ^ "_layout.svg") in
        Fbb_layout.Render.save_svg ~path pl ~levels;
        let area = Fbb_layout.Area.of_assignment pl ~levels in
        let rails = Fbb_layout.Bias_rails.insert pl ~levels in
        let jopt = Option.get (Fbb_core.Heuristic.pass_one p) in
        let saving =
          Fbb_util.Stats.ratio_pct
            (Fbb_core.Solution.leakage_nw p (Fbb_core.Solution.uniform p jopt))
            (Fbb_core.Solution.leakage_nw p levels)
        in
        Printf.printf
          "%-14s beta=%.0f%% C=%d: %.1f%% saved, %d rail pair(s), %.2f%% \
           area overhead -> %s\n"
          name (beta *. 100.0) c saving
          rails.Fbb_layout.Bias_rails.bias_pairs
          area.Fbb_layout.Area.overhead_pct path)
    [ ("c1355", 0.05, 3); ("c5315", 0.05, 3); ("c6288", 0.10, 2) ]
