(* Lifetime tuning: NBTI aging slows the die year after year; the on-chip
   monitors periodically re-measure the slowdown and the optimizer
   re-allocates body bias (section 3.1's dynamic compensation case).

     dune exec examples/aging_tuning.exe

   The design also carries a fixed process corner and runs hot, so the
   aging rides on top of static variation - the bias schedule must keep
   absorbing the drift without burning the leakage budget. *)

module M = Fbb_variation.Models
module Tuning = Fbb_variation.Tuning

let () =
  let spec = Fbb_netlist.Benchmarks.find "c3540" in
  let prep = Fbb_core.Flow.prepare spec in
  let pl = prep.Fbb_core.Flow.placement in
  let rng = Fbb_util.Rng.create ~seed:7 in
  let corner = M.spatially_correlated rng ~sigma:0.03 pl in
  let temperature = M.temperature_derate 85.0 in
  Printf.printf
    "c3540 at an 85C operating point with a fixed within-die corner;\n\
     re-tuning every epoch over a 12-year lifetime (C = 2).\n\n";
  let tab =
    Fbb_util.Texttab.create
      ~headers:
        [
          "year"; "measured %"; "vbs used (V)"; "leak uW"; "leak x nominal";
          "slack ps"; "closed";
        ]
  in
  List.iter
    (fun years ->
      let derate =
        M.combine [ corner; (fun _ -> temperature); (fun _ -> M.nbti_aging_derate years) ]
      in
      let o = Tuning.compensate ~max_clusters:2 ~guardband:0.2 pl ~derate in
      let vbs =
        match o.Tuning.levels with
        | None -> "-"
        | Some levels ->
          Fbb_core.Solution.clusters_used levels
          |> List.map (fun l -> Printf.sprintf "%.2f" (Fbb_tech.Bias.voltage l))
          |> String.concat "/"
      in
      Fbb_util.Texttab.add_row tab
        [
          Printf.sprintf "%.0f" years;
          Printf.sprintf "%.1f" (o.Tuning.measured_beta *. 100.0);
          vbs;
          Printf.sprintf "%.3f" (o.Tuning.leakage_nw /. 1000.0);
          Printf.sprintf "%.2f"
            (o.Tuning.leakage_nw /. o.Tuning.nominal_leakage_nw);
          Printf.sprintf "%.1f"
            (o.Tuning.dcrit_nominal -. o.Tuning.dcrit_compensated);
          (if o.Tuning.timing_closed then "yes" else "NO");
        ])
    [ 0.0; 1.0; 2.0; 4.0; 6.0; 8.0; 10.0; 12.0 ];
  Fbb_util.Texttab.print tab;
  print_endline
    "\nreading: the measured slowdown creeps up with t^0.16; each re-tune\n\
     bumps only the rows that need it, so the leakage cost of staying alive\n\
     grows in small steps rather than block-level jumps."
