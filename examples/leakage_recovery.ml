(* The other direction of the same knob: a design that *meets* timing
   with margin can trade that margin for standby leakage by reverse
   biasing its slack-rich rows (the fine-grained body-biasing use case of
   the paper's reference [7]).

     dune exec examples/leakage_recovery.exe

   The example also exports the design as structural Verilog so the flow
   can be connected to external tooling. *)

let () =
  let netlist = Fbb_netlist.Generators.alu ~bits:8 ~stages:2 () in
  let placement = Fbb_place.Placement.place ~target_rows:12 netlist in
  Format.printf "placement: %a@." Fbb_place.Placement.pp_summary placement;

  (* Export for external tools: both exchange formats round-trip. *)
  if not (Sys.file_exists "example_out") then Sys.mkdir "example_out" 0o755;
  Fbb_netlist.Verilog_io.save ~module_name:"alu8x2" netlist
    ~path:"example_out/alu8x2.v";
  Fbb_netlist.Bench_io.save netlist ~path:"example_out/alu8x2.bench";
  print_endline "wrote example_out/alu8x2.v and .bench";

  let tab =
    Fbb_util.Texttab.create
      ~headers:
        [ "margin %"; "budget ps"; "leak uW"; "recovered %"; "rbb levels" ]
  in
  List.iter
    (fun margin ->
      let t = Fbb_core.Recovery.build ~margin placement in
      let r = Fbb_core.Recovery.optimize ~max_clusters:2 t in
      Fbb_util.Texttab.add_row tab
        [
          Printf.sprintf "%.0f" (margin *. 100.0);
          Printf.sprintf "%.0f" t.Fbb_core.Recovery.budget_ps;
          Printf.sprintf "%.3f"
            (r.Fbb_core.Recovery.recovered_leakage_nw /. 1000.0);
          Printf.sprintf "%.1f" r.Fbb_core.Recovery.savings_pct;
          String.concat "/"
            (List.map
               (fun l -> Printf.sprintf "%.2fV" t.Fbb_core.Recovery.levels.(l))
               (Fbb_core.Solution.clusters_used r.Fbb_core.Recovery.levels));
        ])
    [ 0.0; 0.03; 0.06; 0.10; 0.15 ];
  Fbb_util.Texttab.print tab;
  print_endline
    "\nreading: slack is a resource - the deeper the margin, the closer\n\
     the design gets to the BTBT-limited leakage floor, one reverse rail\n\
     pair doing all the work."
