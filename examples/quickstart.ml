(* Quickstart: the whole flow on a small circuit in a screenful.

     dune exec examples/quickstart.exe

   1. build a netlist (a 32-bit parallel-prefix adder),
   2. place it on standard-cell rows,
   3. pose the clustering problem for a 7 % slowdown,
   4. run the two-pass heuristic with a budget of 2 bias voltages,
   5. inspect the result. *)

let () =
  (* 1. A netlist from the generator library (any Netlist.Builder circuit
        works the same way, as does Bench_io.parse_file). *)
  let netlist = Fbb_netlist.Generators.prefix_adder ~bits:32 () in
  Printf.printf "netlist: %d gates\n" (Fbb_netlist.Netlist.gate_count netlist);

  (* 2. Row-based placement (min-cut bisection under the hood). *)
  let placement = Fbb_place.Placement.place ~target_rows:8 netlist in
  Format.printf "placement: %a@." Fbb_place.Placement.pp_summary placement;

  (* 3. Pre-process against the slowdown coefficient: extracts the
        violating critical-path set and all leakage/delay tables. *)
  let problem = Fbb_core.Problem.build ~beta:0.07 placement in
  Format.printf "problem: %a@." Fbb_core.Problem.pp_summary problem;

  (* 4. Optimize: PassOne finds the block-level (Single BB) voltage,
        PassTwo clusters rows to shed leakage, and the refinement loop
        keeps adding critical paths until full-netlist signoff is clean. *)
  match Fbb_core.Refine.heuristic ~max_clusters:2 problem with
  | None -> print_endline "slowdown too large to compensate"
  | Some o ->
    let levels = o.Fbb_core.Refine.levels in
    let jopt = Option.get (Fbb_core.Heuristic.pass_one problem) in
    let single_nw =
      Fbb_core.Solution.leakage_nw problem
        (Fbb_core.Solution.uniform problem jopt)
    in
    let clustered_nw = Fbb_core.Solution.leakage_nw problem levels in
    Printf.printf "Single BB: all rows at %.2f V -> %.1f nW\n"
      (Fbb_tech.Bias.voltage jopt) single_nw;
    Printf.printf "clustered: %s -> %.1f nW (%.1f%% saved)\n"
      (String.concat " + "
         (List.map
            (fun l -> Printf.sprintf "%.2fV" (Fbb_tech.Bias.voltage l))
            (Fbb_core.Solution.clusters_used levels)))
      clustered_nw
      (Fbb_util.Stats.ratio_pct single_nw clustered_nw);

    (* 5. Verify independently: apply the per-row bias in signoff STA under
          the degraded conditions and check the critical delay. *)
    let bias g =
      let row = Fbb_place.Placement.row_of placement g in
      if row < 0 then 0.0 else Fbb_tech.Bias.voltage levels.(row)
    in
    let nominal = Fbb_sta.Timing.analyze netlist in
    let compensated =
      Fbb_sta.Timing.analyze ~derate:(fun _ -> 1.07) ~bias netlist
    in
    Printf.printf "signoff: nominal %.1f ps, degraded+biased %.1f ps -> %s\n"
      (Fbb_sta.Timing.dcrit nominal)
      (Fbb_sta.Timing.dcrit compensated)
      (if Fbb_sta.Timing.dcrit compensated
          <= Fbb_sta.Timing.dcrit nominal +. 1e-6
       then "timing met"
       else "TIMING VIOLATED")
