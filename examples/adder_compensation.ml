(* The paper's motivating trade-off on a realistic datapath: how much
   post-silicon "timing boost" should a design reserve, and what does it
   cost in leakage?

     dune exec examples/adder_compensation.exe

   We sweep the slowdown coefficient on the 128-bit adder and compare
   block-level FBB (every row at one voltage) with clustered FBB at C = 2
   and C = 3 - the design-time decision table section 1 of the paper
   argues for. *)

let () =
  let spec = Fbb_netlist.Benchmarks.find "adder_128bits" in
  let prep = Fbb_core.Flow.prepare spec in
  let nominal_nw =
    let p = Fbb_core.Flow.problem prep ~beta:0.0 in
    Fbb_core.Solution.leakage_nw p (Fbb_core.Solution.uniform p 0)
  in
  Printf.printf "adder_128bits: %d gates, %d rows, nominal leakage %.2f uW\n\n"
    spec.Fbb_netlist.Benchmarks.gates spec.Fbb_netlist.Benchmarks.rows
    (nominal_nw /. 1000.0);
  let tab =
    Fbb_util.Texttab.create
      ~headers:
        [
          "beta %"; "jopt (V)"; "Single BB uW"; "C=2 uW"; "C=2 save %";
          "C=3 uW"; "C=3 save %";
        ]
  in
  List.iter
    (fun beta_pct ->
      let p = Fbb_core.Flow.problem prep ~beta:(beta_pct /. 100.0) in
      match Fbb_core.Heuristic.pass_one p with
      | None ->
        Fbb_util.Texttab.add_row tab
          [ Printf.sprintf "%.0f" beta_pct; "uncompensatable" ]
      | Some jopt ->
        let single = Fbb_core.Solution.leakage_nw p (Fbb_core.Solution.uniform p jopt) in
        let solve c =
          match Fbb_core.Heuristic.optimize ~max_clusters:c p with
          | Some r ->
            ( Printf.sprintf "%.2f" (r.Fbb_core.Heuristic.leakage_nw /. 1000.0),
              Printf.sprintf "%.1f" r.Fbb_core.Heuristic.savings_pct )
          | None -> ("-", "-")
        in
        let c2, s2 = solve 2 in
        let c3, s3 = solve 3 in
        Fbb_util.Texttab.add_row tab
          [
            Printf.sprintf "%.0f" beta_pct;
            Printf.sprintf "%.2f" (Fbb_tech.Bias.voltage jopt);
            Printf.sprintf "%.2f" (single /. 1000.0);
            c2; s2; c3; s3;
          ])
    [ 2.0; 4.0; 6.0; 8.0; 10.0; 12.0; 15.0; 20.0 ];
  Fbb_util.Texttab.print tab;
  print_endline
    "\nreading: reserving more boost (higher beta) forces higher bias\n\
     voltages; block-level cost grows exponentially while clustering keeps\n\
     most rows cheap - exactly the argument for FBB used 'sparingly'."
