# Convenience wrappers around dune. `make profile` demonstrates the
# Fbb_obs instrumentation on a mid-size benchmark.

DUNE ?= dune

.PHONY: all build test bench bench-scale bench-compare baseline fuzz \
  fuzz-faults cascade-demo profile trace flame top-demo serve-demo clean

all: build

build:
	$(DUNE) build @all

test: build
	$(DUNE) runtest

bench: build
	$(DUNE) exec bench/main.exe

# The scaling axis behind the incremental-STA engine: MC yield recovery
# on generated 1k/10k-gate modules. The exp.scale-*-mc spans isolate the
# repeated-evaluation workload from fixture setup.
bench-scale: build
	FBB_SCALE_SAMPLES=8 $(DUNE) exec bench/main.exe -- --jobs 2 \
	  scale-1k scale-10k

# Diff a fresh smoke run against the committed baseline, with the same
# configuration the baseline was recorded under (CI runs this too).
bench-compare: build
	FBB_MC_SAMPLES=10 FBB_SCALE_SAMPLES=4 FBB_SERVE_REQUESTS=48 \
	  $(DUNE) exec bench/main.exe -- --jobs 2 yield scale-1k scale-10k serve
	$(DUNE) exec bin/fbbopt.exe -- bench-compare \
	  bench/baseline.json bench_out/bench.json --max-regress 25

# Re-record the committed baseline (after a deliberate perf change).
baseline: build
	FBB_MC_SAMPLES=10 FBB_SCALE_SAMPLES=4 FBB_SERVE_REQUESTS=48 \
	  $(DUNE) exec bench/main.exe -- --jobs 2 yield scale-1k scale-10k serve
	cp bench_out/bench.json bench/baseline.json
	@echo "bench/baseline.json updated - commit it with the change"

fuzz: build
	$(DUNE) exec bin/fbbfuzz.exe -- --cases 50 --seed 1 --corpus-dir test/corpus

# Fuzz the degradation cascade with deterministic fault injection live
# (pool crashes, transient retries, LP pivot limits, I/O transients,
# budget exhaustion), judged by the fault-paused oracle referee.
fuzz-faults: build
	$(DUNE) exec bin/fbbfuzz.exe -- --cases 30 --seed 1 --faults 0.1,7 \
	  --corpus-dir test/corpus --repro-dir fuzz_out

# Deadline-bounded anytime solve on the largest bundled benchmark: the
# cascade degrades ilp -> budgeted b&b -> heuristic -> single-bb floor
# and prints its degradation report.
cascade-demo: build
	$(DUNE) exec bin/fbbopt.exe -- optimize -d Industrial3 --cascade \
	  --deadline-ms 50

profile: build
	$(DUNE) exec bin/fbbopt.exe -- optimize -d c5315 --ilp --profile

trace: build
	$(DUNE) exec bin/fbbopt.exe -- optimize -d c5315 --ilp \
	  --trace fbbopt-trace.jsonl --profile-csv fbbopt-profile.csv
	$(DUNE) exec bin/fbbopt.exe -- trace convert fbbopt-trace.jsonl \
	  -o fbbopt-trace.chrome.json
	@echo "wrote fbbopt-trace.jsonl, fbbopt-profile.csv and"
	@echo "fbbopt-trace.chrome.json (load the latter in ui.perfetto.dev)"

# Live telemetry demo: serve a cascade workload with the sampler and
# /metrics endpoint up, scrape it, and render one dashboard frame.
top-demo: build
	$(DUNE) exec bin/fbbopt.exe -- serve-metrics -d c5315 --port 9619 \
	  --deadline-ms 100 --duration-s 8 --jobs 2 & \
	sleep 3; \
	$(DUNE) exec bin/fbbopt.exe -- scrape http://127.0.0.1:9619; \
	$(DUNE) exec bin/fbbopt.exe -- top --once --url http://127.0.0.1:9619; \
	wait

# fbbd demo: run the daemon with live metrics, send a ping, a solve and
# a stats request, then drive a short closed-loop load run against it.
serve-demo: build
	$(DUNE) exec bin/fbbd.exe -- serve --port 9620 --metrics-port 9621 \
	  --duration-s 20 --jobs 2 & \
	sleep 3; \
	$(DUNE) exec bin/fbbd.exe -- request --port 9620 --op ping --id demo; \
	$(DUNE) exec bin/fbbd.exe -- request --port 9620 --gen 11,400,6 \
	  --work 100000 --id demo-solve; \
	$(DUNE) exec bin/fbbd.exe -- load --port 9620 -c 4 -n 24 \
	  --gen 11,400,6 --work 50000; \
	$(DUNE) exec bin/fbbd.exe -- request --port 9620 --op stats --id demo; \
	wait

flame: trace
	$(DUNE) exec bin/fbbopt.exe -- trace flame fbbopt-trace.jsonl \
	  -o fbbopt-trace.folded
	@echo "wrote fbbopt-trace.folded (feed to flamegraph.pl / inferno)"

clean:
	$(DUNE) clean
	rm -f fbbopt-trace.jsonl fbbopt-profile.csv fbbopt-trace.chrome.json \
	  fbbopt-trace.folded
