# Convenience wrappers around dune. `make profile` demonstrates the
# Fbb_obs instrumentation on a mid-size benchmark.

DUNE ?= dune

.PHONY: all build test bench fuzz profile trace clean

all: build

build:
	$(DUNE) build @all

test: build
	$(DUNE) runtest

bench: build
	$(DUNE) exec bench/main.exe

fuzz: build
	$(DUNE) exec bin/fbbfuzz.exe -- --cases 50 --seed 1 --corpus-dir test/corpus

profile: build
	$(DUNE) exec bin/fbbopt.exe -- optimize -d c5315 --ilp --profile

trace: build
	$(DUNE) exec bin/fbbopt.exe -- optimize -d c5315 --ilp \
	  --trace fbbopt-trace.jsonl --profile-csv fbbopt-profile.csv
	@echo "wrote fbbopt-trace.jsonl and fbbopt-profile.csv"

clean:
	$(DUNE) clean
	rm -f fbbopt-trace.jsonl fbbopt-profile.csv
