(* Figure 1: inverter delay and leakage vs body-bias voltage.
   Reproduces the SPICE characterization sweep: linear speed-up reaching
   21 % at 0.5 V, exponential leakage reaching 12.74x, and the junction
   blow-up past 0.5 V that restricts the usable range. *)

module C = Fbb_tech.Characterize
module T = Fbb_util.Texttab

let run () =
  Exp_common.header
    "Figure 1 - inverter delay / leakage vs body bias (45nm model)";
  let points = C.figure1 () in
  let tab =
    T.create
      ~headers:
        [ "vbs (V)"; "delay"; "speedup %"; "subthr x"; "junction x"; "leak x"; "sim delay" ]
  in
  Array.iter
    (fun p ->
      let sim =
        if p.C.vbs <= 0.55 then
          T.cell_f ~digits:4 (Fbb_tech.Transient.delay_factor ~vbs:p.C.vbs ())
        else "-"
      in
      T.add_row tab
        [
          T.cell_f ~digits:2 p.C.vbs;
          T.cell_f ~digits:4 p.C.delay_factor;
          T.cell_f ~digits:2 p.C.speedup_pct;
          T.cell_f ~digits:2 p.C.subthreshold_factor;
          T.cell_f ~digits:3 p.C.junction_factor;
          T.cell_f ~digits:2 p.C.leak_factor;
          sim;
        ])
    points;
  T.print tab;
  let at_half = points.(10) in
  Printf.printf
    "paper anchors: %.1f%% speed-up (ours %.2f%%), %.2fx leakage (ours %.2fx \
     subthreshold)\n"
    Paper_ref.fig1_speedup_pct at_half.C.speedup_pct
    Paper_ref.fig1_leak_increase at_half.C.subthreshold_factor;
  Printf.printf "usable bias limit (junction < 10%% of subthreshold): %.2f V\n"
    (Fbb_tech.Device.usable_vbs_limit Fbb_tech.Device.default);
  let csv = C.to_csv points in
  let path = Exp_common.out_path "fig1_inverter_sweep.csv" in
  Fbb_util.Csv.save csv ~path;
  Printf.printf "series written to %s\n" path
