(* Extension experiment (beyond the paper's tables): parametric-yield
   recovery. The paper motivates FBB by yield; this experiment samples
   fabricated dies with die-to-die and spatially correlated within-die
   variation and compares shipping as-is, block-level FBB, and clustered
   FBB - yield and the leakage cost of the shipped dies. *)

module T = Fbb_util.Texttab

let run () =
  (* FBB_MC_SAMPLES shrinks the run for smoke tests (CI runs 10 dies);
     the sample count is part of the seed-split RNG layout, so results
     are comparable only at equal counts. *)
  let samples = Exp_common.env_int "FBB_MC_SAMPLES" 50 in
  Exp_common.header
    (Printf.sprintf
       "Extension - Monte-Carlo timing yield and leakage (%d dies/design)"
       samples);
  let tab =
    T.create
      ~headers:
        [
          "Design"; "mean slowdown %"; "ship-as-is yield %";
          "SingleBB yield %"; "SingleBB mean uW"; "Clustered yield %";
          "Clustered mean uW"; "leak saved %";
        ]
  in
  List.iter
    (fun name ->
      let prep = Exp_common.prepare name in
      let mc =
        Fbb_variation.Montecarlo.run ~samples ~sigma:0.05
          prep.Fbb_core.Flow.placement
      in
      let open Fbb_variation.Montecarlo in
      T.add_row tab
        [
          name;
          T.cell_f ~digits:1 mc.mean_measured_slowdown_pct;
          T.cell_f ~digits:0 mc.no_tuning.yield_pct;
          T.cell_f ~digits:0 mc.single_bb.yield_pct;
          T.cell_f ~digits:3 (mc.single_bb.mean_leakage_nw /. 1000.0);
          T.cell_f ~digits:0 mc.clustered.yield_pct;
          T.cell_f ~digits:3 (mc.clustered.mean_leakage_nw /. 1000.0);
          (if mc.single_bb.mean_leakage_nw > 0.0 then
             T.cell_f ~digits:1
               (Fbb_util.Stats.ratio_pct mc.single_bb.mean_leakage_nw
                  mc.clustered.mean_leakage_nw)
           else "-");
        ])
    [ "c1355"; "c3540"; "c5315" ];
  T.print tab;
  print_endline
    "reading: both FBB strategies recover essentially all parametric yield;\n\
     clustering ships the same dies at a lower leakage bill - the paper's\n\
     Table-1 savings expressed in yield terms."
