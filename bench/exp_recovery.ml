(* Extension experiment: active leakage recovery with row-level *reverse*
   body bias - the fine-grained body-biasing use case of Khandelwal &
   Srivastava (the paper's reference [7]), on the same row machinery.

   A block clocked with some timing margin can push its slack-rich rows to
   reverse bias and recover a large fraction of its standby leakage; the
   margin sweep shows the trade the same way the FBB side trades leakage
   for speed. *)

module T = Fbb_util.Texttab

let run () =
  Exp_common.header
    "Extension - RBB leakage recovery vs timing margin (C = 2)";
  let tab =
    T.create
      ~headers:
        [
          "Design"; "margin %"; "nominal uW"; "recovered uW"; "saved %";
          "clusters"; "signoff";
        ]
  in
  List.iter
    (fun name ->
      let prep = Exp_common.prepare name in
      List.iter
        (fun margin ->
          let t =
            Fbb_core.Recovery.build ~margin prep.Fbb_core.Flow.placement
          in
          let r = Fbb_core.Recovery.optimize ~max_clusters:2 t in
          T.add_row tab
            [
              name;
              T.cell_f ~digits:0 (margin *. 100.0);
              T.cell_f ~digits:3 (r.Fbb_core.Recovery.nominal_leakage_nw /. 1000.0);
              T.cell_f ~digits:3
                (r.Fbb_core.Recovery.recovered_leakage_nw /. 1000.0);
              T.cell_f ~digits:1 r.Fbb_core.Recovery.savings_pct;
              T.cell_i r.Fbb_core.Recovery.clusters;
              (if r.Fbb_core.Recovery.signoff_clean then "clean" else "DIRTY");
            ])
        [ 0.0; 0.02; 0.05; 0.10; 0.15 ])
    [ "c1355"; "c5315"; "adder_128bits" ];
  T.print tab;
  Printf.printf
    "device: leakage-optimal reverse bias is %.2f V (BTBT floor) - the \
     generator's RBB range stops there.\n"
    (Fbb_tech.Device.optimal_rbb Fbb_tech.Device.default)
