(* Shared plumbing for the experiment harness. *)

let out_dir = "bench_out"

let ensure_out_dir () =
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755

let out_path name =
  ensure_out_dir ();
  Filename.concat out_dir name

let env_float name default =
  match Sys.getenv_opt name with
  | Some v -> ( match float_of_string_opt v with Some f -> f | None -> default)
  | None -> default

let env_flag name = Sys.getenv_opt name <> None

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)
  | None -> default

let ilp_seconds () = env_float "FBB_ILP_SECONDS" 90.0

let ilp_limits () =
  {
    Fbb_ilp.Branch_bound.max_nodes = 2_000_000;
    max_seconds = ilp_seconds ();
  }

(* Shorter budget used only to demonstrate the paper's "-" (no
   convergence) on Industrial2/3 without stalling the whole run. *)
let ilp_limits_intractable () =
  {
    Fbb_ilp.Branch_bound.max_nodes = 2_000_000;
    max_seconds = Float.min 20.0 (ilp_seconds ());
  }

let header title =
  let line = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n" line title line

let opt_pct = function
  | Some v when Float.is_finite v -> Printf.sprintf "%.2f" v
  | Some _ | None -> "-"

(* Experiments fan cells out on the domain pool, and several cells of
   one design can ask for the same prepared flow at once; the mutex
   covers the whole find-or-prepare so each design is prepared exactly
   once. Serializing prepares is fine - they are a small fraction of
   any experiment that bothers to cache them. [Flow.prepare] must not
   submit pool batches: a submitter helps drain the shared queue, and a
   stolen task calling back into [prepare] would self-deadlock on this
   mutex. *)
let prepared_cache : (string, Fbb_core.Flow.prepared) Hashtbl.t =
  Hashtbl.create 16

let prepared_mutex = Mutex.create ()

let prepare name =
  Mutex.protect prepared_mutex @@ fun () ->
  match Hashtbl.find_opt prepared_cache name with
  | Some p -> p
  | None ->
    let p = Fbb_core.Flow.prepare (Fbb_netlist.Benchmarks.find name) in
    Hashtbl.add prepared_cache name p;
    p

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)
