(* Experiment harness: regenerates every table and figure of the paper.
   Run all experiments with [dune exec bench/main.exe], or one of them
   with [dune exec bench/main.exe -- <name>]. Environment:
   FBB_ILP_SECONDS  per-(design, beta, C) ILP budget (default 90). *)

let experiments =
  [
    ("fig1", "inverter delay/leakage vs vbs sweep", Exp_fig1.run);
    ("fig2", "closed-loop tuning methodology on 4 blocks", Exp_fig2.run);
    ("fig3", "contact-cell insertion and row utilization", Exp_fig3.run);
    ("table1", "leakage savings on the 9-design suite", Exp_table1.run);
    ("sweep-c", "c5315 cluster-count sweep C=2..11", Exp_sweep.run);
    ("area", "well-separation and utilization overheads", Exp_area.run);
    ("fig6", "placed c5315 layout with 2 vbs rails", Exp_fig6.run);
    ("yield", "extension: Monte-Carlo yield recovery", Exp_yield.run);
    ("recovery", "extension: RBB active leakage recovery", Exp_recovery.run);
    ("speed", "bechamel micro-benchmarks", Exp_speed.run);
  ]

let usage () =
  print_endline "usage: main.exe [experiment ...]";
  print_endline "experiments:";
  List.iter
    (fun (name, doc, _) -> Printf.printf "  %-8s %s\n" name doc)
    experiments;
  print_endline "(no argument runs everything in paper order)"

(* Every experiment runs inside a top-level span feeding an in-memory
   aggregator, so a per-experiment timing table closes the session. *)
let timed name run () = Fbb_obs.Span.with_ ~name:("exp." ^ name) run

let timing_table agg =
  match Fbb_obs.Aggregate.span_rows agg with
  | [] -> ()
  | rows ->
    Exp_common.header "Experiment wall-clock summary";
    let tab = Fbb_util.Texttab.create ~headers:[ "experiment"; "seconds" ] in
    List.iter
      (fun (name, _count, total_s, _mean, _max) ->
        match String.length name > 4 && String.sub name 0 4 = "exp." with
        | true ->
          Fbb_util.Texttab.add_row tab
            [
              String.sub name 4 (String.length name - 4);
              Fbb_util.Texttab.cell_f ~digits:2 total_s;
            ]
        | false -> ())
      rows;
    Fbb_util.Texttab.print tab

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let agg = Fbb_obs.Aggregate.create () in
  Fbb_obs.Sink.install (Fbb_obs.Aggregate.sink agg);
  Fun.protect ~finally:(fun () ->
      Fbb_obs.Sink.clear ();
      timing_table agg)
  @@ fun () ->
  match args with
  | [ "--help" ] | [ "-h" ] | [ "help" ] -> usage ()
  | [] -> List.iter (fun (name, _, run) -> timed name run ()) experiments
  | names ->
    List.iter
      (fun name ->
        match List.find_opt (fun (n, _, _) -> n = name) experiments with
        | Some (_, _, run) -> timed name run ()
        | None ->
          Printf.printf "unknown experiment %s\n" name;
          usage ();
          exit 1)
      names
