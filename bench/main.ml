(* Experiment harness: regenerates every table and figure of the paper.
   Run all experiments with [dune exec bench/main.exe], or one of them
   with [dune exec bench/main.exe -- <name>]. Environment:
   FBB_ILP_SECONDS  per-(design, beta, C) ILP budget (default 90). *)

let experiments =
  [
    ("fig1", "inverter delay/leakage vs vbs sweep", Exp_fig1.run);
    ("fig2", "closed-loop tuning methodology on 4 blocks", Exp_fig2.run);
    ("fig3", "contact-cell insertion and row utilization", Exp_fig3.run);
    ("table1", "leakage savings on the 9-design suite", Exp_table1.run);
    ("sweep-c", "c5315 cluster-count sweep C=2..11", Exp_sweep.run);
    ("area", "well-separation and utilization overheads", Exp_area.run);
    ("fig6", "placed c5315 layout with 2 vbs rails", Exp_fig6.run);
    ("yield", "extension: Monte-Carlo yield recovery", Exp_yield.run);
    ("recovery", "extension: RBB active leakage recovery", Exp_recovery.run);
    ("speed", "bechamel micro-benchmarks", Exp_speed.run);
  ]

let usage () =
  print_endline "usage: main.exe [experiment ...]";
  print_endline "experiments:";
  List.iter
    (fun (name, doc, _) -> Printf.printf "  %-8s %s\n" name doc)
    experiments;
  print_endline "(no argument runs everything in paper order)"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--help" ] | [ "-h" ] | [ "help" ] -> usage ()
  | [] -> List.iter (fun (_, _, run) -> run ()) experiments
  | names ->
    List.iter
      (fun name ->
        match List.find_opt (fun (n, _, _) -> n = name) experiments with
        | Some (_, _, run) -> run ()
        | None ->
          Printf.printf "unknown experiment %s\n" name;
          usage ();
          exit 1)
      names
