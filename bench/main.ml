(* Experiment harness: regenerates every table and figure of the paper.
   Run all experiments with [dune exec bench/main.exe], or one of them
   with [dune exec bench/main.exe -- <name>]. Options:
   --jobs N         domain-pool width (also FBB_JOBS; flag wins)
   --telemetry P    serve GET /metrics + /snapshot.json on port P while
                    the experiments run (watch with [fbbopt top])
   --telemetry-tick-ms MS  sampler period (default 500)
   Environment:
   FBB_ILP_SECONDS  per-(design, beta, C) ILP budget (default 90)
   FBB_MC_SAMPLES   Monte-Carlo dies per design in [yield] (default 50) *)

let experiments =
  [
    ("fig1", "inverter delay/leakage vs vbs sweep", Exp_fig1.run);
    ("fig2", "closed-loop tuning methodology on 4 blocks", Exp_fig2.run);
    ("fig3", "contact-cell insertion and row utilization", Exp_fig3.run);
    ("table1", "leakage savings on the 9-design suite", Exp_table1.run);
    ("sweep-c", "c5315 cluster-count sweep C=2..11", Exp_sweep.run);
    ("area", "well-separation and utilization overheads", Exp_area.run);
    ("fig6", "placed c5315 layout with 2 vbs rails", Exp_fig6.run);
    ("yield", "extension: Monte-Carlo yield recovery", Exp_yield.run);
    ("scale-1k", "extension: MC recovery on a 1k-gate module", Exp_scale.run_1k);
    ( "scale-10k",
      "extension: MC recovery on a 10k-gate module",
      Exp_scale.run_10k );
    ("recovery", "extension: RBB active leakage recovery", Exp_recovery.run);
    ("serve", "extension: fbbd closed-loop serving latency", Exp_serve.run);
    ("speed", "bechamel micro-benchmarks", Exp_speed.run);
  ]

let usage () =
  print_endline
    "usage: main.exe [--jobs N] [--telemetry PORT [--telemetry-tick-ms MS]] \
     [experiment ...]";
  print_endline "experiments:";
  List.iter
    (fun (name, doc, _) -> Printf.printf "  %-8s %s\n" name doc)
    experiments;
  print_endline "(no argument runs everything in paper order)"

(* Every experiment runs inside a top-level span feeding an in-memory
   aggregator, so a per-experiment timing table closes the session. *)
let timed name run () = Fbb_obs.Span.with_ ~name:("exp." ^ name) run

let timing_table agg =
  match Baseline.exp_seconds agg with
  | [] -> ()
  | rows ->
    Exp_common.header "Experiment wall-clock summary";
    let tab = Fbb_util.Texttab.create ~headers:[ "experiment"; "seconds" ] in
    List.iter
      (fun (name, total_s) ->
        Fbb_util.Texttab.add_row tab
          [ name; Fbb_util.Texttab.cell_f ~digits:2 total_s ])
      rows;
    Fbb_util.Texttab.print tab

let telemetry_port = ref None
let telemetry_tick_ms = ref 500.0

let rec parse_args = function
  | "--jobs" :: n :: rest -> (
    match int_of_string_opt n with
    | Some jobs when jobs >= 1 ->
      Fbb_par.Pool.set_jobs jobs;
      parse_args rest
    | Some _ | None ->
      Printf.printf "--jobs expects a positive integer, got %s\n" n;
      exit 1)
  | [ "--jobs" ] ->
    print_endline "--jobs expects a positive integer";
    exit 1
  | "--telemetry" :: p :: rest -> (
    match int_of_string_opt p with
    | Some port when port >= 0 ->
      telemetry_port := Some port;
      parse_args rest
    | Some _ | None ->
      Printf.printf "--telemetry expects a port number, got %s\n" p;
      exit 1)
  | [ "--telemetry" ] ->
    print_endline "--telemetry expects a port number";
    exit 1
  | "--telemetry-tick-ms" :: ms :: rest -> (
    match float_of_string_opt ms with
    | Some tick when tick > 0.0 ->
      telemetry_tick_ms := tick;
      parse_args rest
    | Some _ | None ->
      Printf.printf "--telemetry-tick-ms expects a positive number, got %s\n"
        ms;
      exit 1)
  | [ "--telemetry-tick-ms" ] ->
    print_endline "--telemetry-tick-ms expects a positive number";
    exit 1
  | args -> args

let () =
  let args = parse_args (List.tl (Array.to_list Sys.argv)) in
  let agg = Fbb_obs.Aggregate.create () in
  Fbb_obs.Sink.install (Fbb_obs.Aggregate.sink agg);
  let telemetry =
    match !telemetry_port with
    | None -> None
    | Some port -> (
      let sampler =
        Fbb_obs.Telemetry.start ~tick_s:(!telemetry_tick_ms /. 1000.0) ()
      in
      match Fbb_obs.Telemetry.serve ~port () with
      | Error msg ->
        Fbb_obs.Telemetry.stop sampler;
        Printf.eprintf "bench: telemetry: %s\n%!" msg;
        exit 1
      | Ok srv ->
        Printf.eprintf "bench: telemetry on http://127.0.0.1:%d/metrics\n%!"
          (Fbb_obs.Telemetry.port srv);
        Some (sampler, srv))
  in
  Fun.protect ~finally:(fun () ->
      (* Utilization gauges land while the aggregate sink is still
         installed, so the session record carries them. Stopping the
         sampler runs one final pass, so its obs.telemetry.* self-cost
         gauges are current when Baseline.save snapshots them into the
         bench record. *)
      Fbb_par.Pool.publish_utilization ();
      Option.iter
        (fun (sampler, srv) ->
          Fbb_obs.Telemetry.stop sampler;
          Fbb_obs.Telemetry.shutdown srv)
        telemetry;
      Fbb_obs.Sink.clear ();
      timing_table agg;
      Baseline.save agg)
  @@ fun () ->
  match args with
  | [ "--help" ] | [ "-h" ] | [ "help" ] -> usage ()
  | [] -> List.iter (fun (name, _, run) -> timed name run ()) experiments
  | names ->
    List.iter
      (fun name ->
        match List.find_opt (fun (n, _, _) -> n = name) experiments with
        | Some (_, _, run) -> timed name run ()
        | None ->
          Printf.printf "unknown experiment %s\n" name;
          usage ();
          exit 1)
      names
