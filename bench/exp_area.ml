(* Section 5 area accounting: well-separation overhead of the clustered
   solutions stays below 5 % and the contact-cell utilization increase
   below 6 % across the whole Table-1 suite. *)

module T = Fbb_util.Texttab

let run () =
  Exp_common.header
    "Section 5 - area overhead of clustering (well separation + contacts)";
  let tab =
    T.create
      ~headers:
        [ "Benchmark"; "B%"; "C"; "boundaries"; "well sep %"; "util incr %"; "pairs" ]
  in
  let worst_sep = ref 0.0 and worst_util = ref 0.0 in
  List.iter
    (fun (spec : Fbb_netlist.Benchmarks.spec) ->
      let prep = Exp_common.prepare spec.Fbb_netlist.Benchmarks.name in
      let pl = prep.Fbb_core.Flow.placement in
      List.iter
        (fun beta ->
          let p = Fbb_core.Flow.problem prep ~beta in
          List.iter
            (fun cmax ->
              match Fbb_core.Refine.heuristic ~max_clusters:cmax p with
              | None -> ()
              | Some o ->
                let levels = o.Fbb_core.Refine.levels in
                let area = Fbb_layout.Area.of_assignment pl ~levels in
                let rails = Fbb_layout.Bias_rails.insert pl ~levels in
                let util_incr =
                  100.0 *. rails.Fbb_layout.Bias_rails.max_utilization_increase
                in
                worst_sep := Float.max !worst_sep area.Fbb_layout.Area.overhead_pct;
                worst_util := Float.max !worst_util util_incr;
                T.add_row tab
                  [
                    spec.Fbb_netlist.Benchmarks.name;
                    T.cell_i (int_of_float (beta *. 100.0));
                    T.cell_i cmax;
                    T.cell_i area.Fbb_layout.Area.boundaries;
                    T.cell_f area.Fbb_layout.Area.overhead_pct;
                    T.cell_f util_incr;
                    T.cell_i rails.Fbb_layout.Bias_rails.bias_pairs;
                  ])
            [ 2; 3 ])
        [ 0.05; 0.10 ])
    Fbb_netlist.Benchmarks.all;
  T.print tab;
  Printf.printf
    "worst well-separation overhead: %.2f%% (paper bound %.0f%%); worst \
     utilization increase: %.2f%% (paper bound %.0f%%)\n"
    !worst_sep Paper_ref.well_separation_bound_pct !worst_util
    Paper_ref.utilization_increase_bound_pct;
  (* Ablation: cluster-aware re-stacking of rows removes nearly all
     well-separation boundaries at a small vertical-wirelength cost. *)
  Exp_common.header "Ablation - cluster-aware row re-stacking (C=3, beta=5%)";
  let tab2 =
    T.create
      ~headers:
        [ "Design"; "bnd before"; "bnd after"; "ovh before %"; "ovh after %";
          "HPWL delta %" ]
  in
  List.iter
    (fun name ->
      let prep = Exp_common.prepare name in
      let pl = prep.Fbb_core.Flow.placement in
      let p = Fbb_core.Flow.problem prep ~beta:0.05 in
      match Fbb_core.Refine.heuristic ~max_clusters:3 p with
      | None -> ()
      | Some o ->
        let report, _ =
          Fbb_layout.Row_order.apply pl ~levels:o.Fbb_core.Refine.levels
        in
        let open Fbb_layout.Row_order in
        T.add_row tab2
          [
            name;
            T.cell_i report.boundaries_before;
            T.cell_i report.boundaries_after;
            T.cell_f report.overhead_before_pct;
            T.cell_f report.overhead_after_pct;
            T.cell_f
              (100.0
              *. (report.hpwl_after_um -. report.hpwl_before_um)
              /. report.hpwl_before_um);
          ])
    [ "c1355"; "c5315"; "c6288" ];
  T.print tab2
