(* Extension experiment: the fbbd serving axis. Stand up an in-process
   server on an ephemeral port, drive it with the deterministic
   closed-loop load generator (fixed seed, work-budgeted requests over
   a two-netlist mix so the same-key batcher actually batches), and
   report throughput and latency percentiles. The harness wraps this
   in the gated [exp.serve] span, and the per-request [serve.request]
   span statistics (p50/p90/p99) ride into bench.json's span section,
   so a serving-latency regression shows up in bench-compare next to
   the solver timings.

   FBB_SERVE_REQUESTS (default 48) scales the script length; the
   request script is a pure function of (seed, connections, requests),
   so records are comparable only at equal counts.

   A second pair of phases measures restart-to-first-Solved against a
   persistent context store: [exp.serve-restart-cold] starts a daemon
   on an empty store and times one solve (prepare + spill),
   [exp.serve-restart-warm] restarts against the now-populated store
   and times the same solve (load + verify, no rebuild). Warm beating
   cold is the store's whole value proposition; bench-compare keeps
   both honest. *)

module T = Fbb_util.Texttab

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

(* One daemon lifetime against [dir]: start, solve once, stop. The
   [exp.*] span covers bind through first [Solved] only — shutdown is
   not part of the restart metric. Returns the span's wall time. *)
let restart_once ~span ~dir =
  let config =
    {
      Fbb_serve.Server.default_config with
      port = 0;
      store_dir = Some dir;
    }
  in
  let t0 = Fbb_obs.Clock.now_s () in
  let server =
    Fbb_obs.Span.with_ ~name:span @@ fun () ->
    match Fbb_serve.Server.start ~config () with
    | Error msg -> Error msg
    | Ok server -> (
      let solve () =
        match
          Fbb_serve.Client.connect ~port:(Fbb_serve.Server.port server) ()
        with
        | Error msg -> Error msg
        | Ok client ->
          Fun.protect ~finally:(fun () -> Fbb_serve.Client.close client)
          @@ fun () ->
          Fbb_serve.Client.rpc client
            (Fbb_serve.Protocol.Solve
               {
                 id = "restart";
                 client = None;
                 workload =
                   Fbb_serve.Protocol.Generated
                     { seed = 11; gates = 2_000; rows = 3 };
                 beta = 0.05;
                 max_clusters = 4;
                 deadline_ms = None;
                 (* A big netlist and a light budget: restart cost is
                    context preparation (placement, delay cache, STA,
                    path enumeration), which is what the store skips —
                    not solve time, which both runs pay equally. *)
                 work_budget = Some 2_000;
               })
      in
      match solve () with
      | Ok (Fbb_serve.Protocol.Solved _) -> Ok server
      | Ok r ->
        Fbb_serve.Server.stop server;
        Error
          ("unexpected restart response: "
          ^ Fbb_serve.Protocol.encode_response r)
      | Error msg ->
        Fbb_serve.Server.stop server;
        Error msg)
  in
  let elapsed_ms = (Fbb_obs.Clock.now_s () -. t0) *. 1000.0 in
  Result.map
    (fun server ->
      Fbb_serve.Server.stop server;
      elapsed_ms)
    server

let run () =
  let requests = Exp_common.env_int "FBB_SERVE_REQUESTS" 48 in
  Exp_common.header
    (Printf.sprintf "Extension - fbbd serving axis (%d requests)" requests);
  let config =
    { Fbb_serve.Server.default_config with port = 0; queue_capacity = 256 }
  in
  match Fbb_serve.Server.start ~config () with
  | Error msg -> Printf.printf "serve: cannot start server: %s\n" msg
  | Ok server ->
    Fun.protect ~finally:(fun () -> Fbb_serve.Server.stop server) @@ fun () ->
    (* Record flights like the production daemon does — teed onto the
       harness's aggregate sink, so the gated [exp.serve] span keeps
       its statistics and prices the recorder's overhead too. *)
    Fbb_obs.Flight.clear ();
    let flight_sink =
      match Fbb_obs.Sink.installed () with
      | None -> Fbb_obs.Flight.sink ()
      | Some base -> Fbb_obs.Sink.tee base (Fbb_obs.Flight.sink ())
    in
    Fbb_obs.Sink.with_installed flight_sink @@ fun () ->
    let cfg =
      {
        (Fbb_serve.Loadgen.default ~port:(Fbb_serve.Server.port server)) with
        connections = 4;
        requests;
        seed = 2009;
        workloads =
          [
            Fbb_serve.Protocol.Generated { seed = 11; gates = 300; rows = 6 };
            Fbb_serve.Protocol.Generated { seed = 12; gates = 400; rows = 6 };
          ];
        work_budget = Some 20_000;
      }
    in
    (match Fbb_serve.Loadgen.run cfg with
    | Error msg -> Printf.printf "serve: loadgen: %s\n" msg
    | Ok r ->
      let tab =
        T.create
          ~headers:
            [
              "requests"; "solved"; "rejected"; "errors"; "req/s"; "p50 ms";
              "p90 ms"; "p99 ms"; "max ms";
            ]
      in
      T.add_row tab
        [
          string_of_int r.sent;
          string_of_int r.solved;
          string_of_int r.rejected;
          string_of_int r.errors;
          T.cell_f ~digits:1 r.throughput_rps;
          T.cell_f ~digits:1 r.p50_ms;
          T.cell_f ~digits:1 r.p90_ms;
          T.cell_f ~digits:1 r.p99_ms;
          T.cell_f ~digits:1 r.max_ms;
        ];
      T.print tab;
      print_endline
        "reading: closed-loop latency over 4 connections against the \n\
         in-process daemon - queue wait plus cascade service time; the \n\
         per-request span percentiles land in bench.json's span section.");
    (* Restart-to-first-Solved, cold store then warm store. *)
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "fbb-bench-store-%d" (Unix.getpid ()))
    in
    rm_rf dir;
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    match restart_once ~span:"exp.serve-restart-cold" ~dir with
    | Error msg -> Printf.printf "serve: restart (cold): %s\n" msg
    | Ok cold_ms -> (
      match restart_once ~span:"exp.serve-restart-warm" ~dir with
      | Error msg -> Printf.printf "serve: restart (warm): %s\n" msg
      | Ok warm_ms ->
        let tab =
          T.create ~headers:[ "restart"; "first Solved ms"; "vs cold" ]
        in
        T.add_row tab [ "cold store"; T.cell_f ~digits:1 cold_ms; "1.00x" ];
        T.add_row tab
          [
            "warm store";
            T.cell_f ~digits:1 warm_ms;
            Printf.sprintf "%.2fx" (warm_ms /. Float.max 1e-9 cold_ms);
          ];
        T.print tab;
        print_endline
          "reading: daemon start through first Solved response; warm loads \n\
           the prepared context from the persistent store instead of \n\
           rebuilding placement, delay caches and the path set.")
