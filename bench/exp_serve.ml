(* Extension experiment: the fbbd serving axis. Stand up an in-process
   server on an ephemeral port, drive it with the deterministic
   closed-loop load generator (fixed seed, work-budgeted requests over
   a two-netlist mix so the same-key batcher actually batches), and
   report throughput and latency percentiles. The harness wraps this
   in the gated [exp.serve] span, and the per-request [serve.request]
   span statistics (p50/p90/p99) ride into bench.json's span section,
   so a serving-latency regression shows up in bench-compare next to
   the solver timings.

   FBB_SERVE_REQUESTS (default 48) scales the script length; the
   request script is a pure function of (seed, connections, requests),
   so records are comparable only at equal counts. *)

module T = Fbb_util.Texttab

let run () =
  let requests = Exp_common.env_int "FBB_SERVE_REQUESTS" 48 in
  Exp_common.header
    (Printf.sprintf "Extension - fbbd serving axis (%d requests)" requests);
  let config =
    { Fbb_serve.Server.default_config with port = 0; queue_capacity = 256 }
  in
  match Fbb_serve.Server.start ~config () with
  | Error msg -> Printf.printf "serve: cannot start server: %s\n" msg
  | Ok server ->
    Fun.protect ~finally:(fun () -> Fbb_serve.Server.stop server) @@ fun () ->
    (* Record flights like the production daemon does — teed onto the
       harness's aggregate sink, so the gated [exp.serve] span keeps
       its statistics and prices the recorder's overhead too. *)
    Fbb_obs.Flight.clear ();
    let flight_sink =
      match Fbb_obs.Sink.installed () with
      | None -> Fbb_obs.Flight.sink ()
      | Some base -> Fbb_obs.Sink.tee base (Fbb_obs.Flight.sink ())
    in
    Fbb_obs.Sink.with_installed flight_sink @@ fun () ->
    let cfg =
      {
        (Fbb_serve.Loadgen.default ~port:(Fbb_serve.Server.port server)) with
        connections = 4;
        requests;
        seed = 2009;
        workloads =
          [
            Fbb_serve.Protocol.Generated { seed = 11; gates = 300; rows = 6 };
            Fbb_serve.Protocol.Generated { seed = 12; gates = 400; rows = 6 };
          ];
        work_budget = Some 20_000;
      }
    in
    (match Fbb_serve.Loadgen.run cfg with
    | Error msg -> Printf.printf "serve: loadgen: %s\n" msg
    | Ok r ->
      let tab =
        T.create
          ~headers:
            [
              "requests"; "solved"; "rejected"; "errors"; "req/s"; "p50 ms";
              "p90 ms"; "p99 ms"; "max ms";
            ]
      in
      T.add_row tab
        [
          string_of_int r.sent;
          string_of_int r.solved;
          string_of_int r.rejected;
          string_of_int r.errors;
          T.cell_f ~digits:1 r.throughput_rps;
          T.cell_f ~digits:1 r.p50_ms;
          T.cell_f ~digits:1 r.p90_ms;
          T.cell_f ~digits:1 r.p99_ms;
          T.cell_f ~digits:1 r.max_ms;
        ];
      T.print tab;
      print_endline
        "reading: closed-loop latency over 4 connections against the \n\
         in-process daemon - queue wait plus cascade service time; the \n\
         per-request span percentiles land in bench.json's span section.")
