(* Figure 2: the tuning methodology - several circuit blocks, a central
   body-bias generator with two distributable voltages per block, and
   per-block timing sensors triggering compensation.

   We simulate four fabricated blocks with different die conditions
   (process corner, temperature, aging), sense each with in-situ monitors
   and close the loop with the row-clustering optimizer (C = 2 as in the
   figure: vbs1/vbs2 per block). Signoff STA under the true per-gate
   degradation verifies each block. *)

module M = Fbb_variation.Models
module Tuning = Fbb_variation.Tuning
module T = Fbb_util.Texttab

let blocks =
  [
    ("c1355", "slow corner", fun _rng _pl -> M.uniform 0.06);
    ( "c3540",
      "hot die (105C)",
      fun _rng _pl -> fun g -> M.temperature_derate 105.0 *. M.uniform 0.02 g );
    ( "c5315",
      "aged 7 years",
      fun _rng _pl -> fun g -> M.nbti_aging_derate 7.0 *. M.uniform 0.01 g );
    ( "c7552",
      "within-die variation",
      fun rng pl ->
        M.combine [ M.spatially_correlated rng ~sigma:0.05 pl; M.uniform 0.04 ]
    );
  ]

let run () =
  Exp_common.header
    "Figure 2 - closed-loop tuning: 4 blocks, central generator, 2 vbs each";
  let tab =
    T.create
      ~headers:
        [
          "Block"; "Condition"; "alarms"; "meas B%"; "vbs1/vbs2 (V)";
          "leak x nom"; "slack ps"; "closed";
        ]
  in
  let rng = Fbb_util.Rng.create ~seed:2009 in
  List.iter
    (fun (name, condition, make_derate) ->
      let prep = Exp_common.prepare name in
      let pl = prep.Fbb_core.Flow.placement in
      let derate = make_derate (Fbb_util.Rng.split rng) pl in
      let o = Tuning.compensate ~max_clusters:2 ~guardband:0.15 pl ~derate in
      let vbs_cell =
        match o.Tuning.levels with
        | None -> "-"
        | Some levels ->
          Fbb_core.Solution.clusters_used levels
          |> List.filter (fun l -> l > 0)
          |> List.map (fun l -> Printf.sprintf "%.2f" (Fbb_tech.Bias.voltage l))
          |> fun vs -> if vs = [] then "none" else String.concat "/" vs
      in
      T.add_row tab
        [
          name;
          condition;
          T.cell_i o.Tuning.alarms_before;
          T.cell_f ~digits:1 (o.Tuning.measured_beta *. 100.0);
          vbs_cell;
          T.cell_f ~digits:2 (o.Tuning.leakage_nw /. o.Tuning.nominal_leakage_nw);
          T.cell_f ~digits:1 (o.Tuning.dcrit_nominal -. o.Tuning.dcrit_compensated);
          (if o.Tuning.timing_closed then "yes" else "NO");
        ])
    blocks;
  T.print tab;
  print_endline
    "every block returns to its nominal timing budget; leakage cost stays\n\
     bounded because only the critical rows receive forward bias."
