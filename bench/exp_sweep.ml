(* Section 5 sweep: c5315 at beta = 5 % from C = 2 to C = 11 clusters.
   The paper reports a marginal 2.56 % additional saving over the whole
   range - the argument for implementing only 2-3 clusters in layout. *)

module T = Fbb_util.Texttab

let run () =
  Exp_common.header "Section 5 - c5315 cluster-count sweep (beta = 5%)";
  let prep = Exp_common.prepare "c5315" in
  let p = Fbb_core.Flow.problem prep ~beta:0.05 in
  let tab =
    T.create ~headers:[ "C"; "heur savings %"; "clusters used"; "ILP savings %" ]
  in
  let single_bb =
    match Fbb_core.Heuristic.pass_one p with
    | Some j -> Fbb_core.Solution.leakage_nw p (Fbb_core.Solution.uniform p j)
    | None -> nan
  in
  let heur_first = ref None in
  let heur_last = ref None in
  List.iter
    (fun cmax ->
      let heur = Fbb_core.Refine.heuristic ~max_clusters:cmax p in
      let heur_saving =
        Option.map
          (fun (o : Fbb_core.Refine.outcome) ->
            Fbb_util.Stats.ratio_pct single_bb
              (Fbb_core.Solution.leakage_nw p o.Fbb_core.Refine.levels))
          heur
      in
      (match (heur_saving, !heur_first) with
      | Some s, None -> heur_first := Some s
      | _, _ -> ());
      (match heur_saving with Some s -> heur_last := Some s | None -> ());
      (* The exact solver is only attempted for small C: the level-subset
         space explodes combinatorially exactly as the paper observed. *)
      let ilp_saving =
        if cmax <= 4 then begin
          let config =
            {
              Fbb_core.Ilp_opt.default_config with
              max_clusters = cmax;
              limits = Exp_common.ilp_limits ();
            }
          in
          let warm =
            Option.map (fun o -> o.Fbb_core.Refine.levels) heur
          in
          let r = Fbb_core.Ilp_opt.optimize ~config ?warm_start:warm p in
          if r.Fbb_core.Ilp_opt.proved_optimal then
            Option.map
              (fun leak -> Fbb_util.Stats.ratio_pct single_bb leak)
              r.Fbb_core.Ilp_opt.leakage_nw
          else None
        end
        else None
      in
      T.add_row tab
        [
          T.cell_i cmax;
          Exp_common.opt_pct heur_saving;
          (match heur with
          | Some o ->
            T.cell_i (Fbb_core.Solution.cluster_count o.Fbb_core.Refine.levels)
          | None -> "-");
          Exp_common.opt_pct ilp_saving;
        ])
    [ 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ];
  T.print tab;
  (match (!heur_first, !heur_last) with
  | Some a, Some b ->
    Printf.printf
      "marginal gain C=2 -> C=11: %.2f%% (paper: %.2f%%) - more clusters \
       than the layout can afford buy almost nothing\n"
      (b -. a) Paper_ref.c5315_sweep_c2_to_c11_gain_pct
  | _, _ -> print_endline "sweep incomplete")
