(* The paper's Table 1, transcribed for side-by-side reporting.
   Savings are percentages relative to the Single BB baseline; [None]
   marks the paper's "-" entries (ILP did not converge). *)

type row = {
  name : string;
  beta_pct : int;
  single_bb_uw : float;
  ilp_c2 : float option;
  ilp_c3 : float option;
  heur_c2 : float;
  heur_c3 : float;
  constraints : int;
}

let table1 =
  [
    { name = "c1355"; beta_pct = 5; single_bb_uw = 0.17; ilp_c2 = Some 11.76; ilp_c3 = Some 17.65; heur_c2 = 11.76; heur_c3 = 11.76; constraints = 32 };
    { name = "c1355"; beta_pct = 10; single_bb_uw = 0.33; ilp_c2 = Some 30.30; ilp_c3 = Some 33.33; heur_c2 = 27.27; heur_c3 = 30.30; constraints = 72 };
    { name = "c3540"; beta_pct = 5; single_bb_uw = 0.42; ilp_c2 = Some 23.08; ilp_c3 = Some 23.08; heur_c2 = 11.54; heur_c3 = 19.23; constraints = 31 };
    { name = "c3540"; beta_pct = 10; single_bb_uw = 0.82; ilp_c2 = Some 40.82; ilp_c3 = Some 44.90; heur_c2 = 30.61; heur_c3 = 34.69; constraints = 70 };
    { name = "c5315"; beta_pct = 5; single_bb_uw = 0.26; ilp_c2 = Some 21.43; ilp_c3 = Some 21.43; heur_c2 = 16.67; heur_c3 = 16.67; constraints = 11 };
    { name = "c5315"; beta_pct = 10; single_bb_uw = 0.49; ilp_c2 = Some 46.34; ilp_c3 = Some 47.56; heur_c2 = 31.71; heur_c3 = 36.59; constraints = 33 };
    { name = "c7552"; beta_pct = 5; single_bb_uw = 0.63; ilp_c2 = Some 19.05; ilp_c3 = Some 20.63; heur_c2 = 17.46; heur_c3 = 17.46; constraints = 5 };
    { name = "c7552"; beta_pct = 10; single_bb_uw = 1.23; ilp_c2 = Some 44.72; ilp_c3 = Some 47.15; heur_c2 = 30.89; heur_c3 = 36.59; constraints = 11 };
    { name = "adder_128bits"; beta_pct = 5; single_bb_uw = 1.43; ilp_c2 = Some 26.57; ilp_c3 = Some 30.07; heur_c2 = 23.08; heur_c3 = 25.17; constraints = 26 };
    { name = "adder_128bits"; beta_pct = 10; single_bb_uw = 2.26; ilp_c2 = Some 28.76; ilp_c3 = Some 33.63; heur_c2 = 20.80; heur_c3 = 25.22; constraints = 55 };
    { name = "c6288"; beta_pct = 5; single_bb_uw = 1.74; ilp_c2 = Some 4.60; ilp_c3 = Some 5.17; heur_c2 = 3.45; heur_c3 = 3.45; constraints = 773 };
    { name = "c6288"; beta_pct = 10; single_bb_uw = 3.38; ilp_c2 = Some 22.78; ilp_c3 = Some 23.96; heur_c2 = 18.64; heur_c3 = 18.64; constraints = 810 };
    { name = "Industrial1"; beta_pct = 5; single_bb_uw = 3.07; ilp_c2 = Some 20.85; ilp_c3 = Some 24.76; heur_c2 = 16.94; heur_c3 = 18.57; constraints = 136 };
    { name = "Industrial1"; beta_pct = 10; single_bb_uw = 6.13; ilp_c2 = Some 33.77; ilp_c3 = Some 36.22; heur_c2 = 22.51; heur_c3 = 24.63; constraints = 237 };
    { name = "Industrial2"; beta_pct = 5; single_bb_uw = 5.83; ilp_c2 = None; ilp_c3 = None; heur_c2 = 8.58; heur_c3 = 8.58; constraints = 489 };
    { name = "Industrial2"; beta_pct = 10; single_bb_uw = 11.36; ilp_c2 = None; ilp_c3 = None; heur_c2 = 24.74; heur_c3 = 24.74; constraints = 1502 };
    { name = "Industrial3"; beta_pct = 5; single_bb_uw = 12.25; ilp_c2 = None; ilp_c3 = None; heur_c2 = 15.67; heur_c3 = 16.41; constraints = 1012 };
    { name = "Industrial3"; beta_pct = 10; single_bb_uw = 23.88; ilp_c2 = None; ilp_c3 = None; heur_c2 = 25.21; heur_c3 = 25.21; constraints = 2867 };
  ]

let find name beta_pct =
  List.find (fun r -> r.name = name && r.beta_pct = beta_pct) table1

(* Section 5 text claims reproduced by the other experiments. *)
let c5315_sweep_c2_to_c11_gain_pct = 2.56
let max_savings_beta5_pct = 30.0
let max_savings_beta10_pct = 47.6
let well_separation_bound_pct = 5.0
let utilization_increase_bound_pct = 6.0
let fig1_speedup_pct = 21.0
let fig1_leak_increase = 12.74
