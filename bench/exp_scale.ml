(* Extension experiment (beyond the paper's design sizes): the scaling
   grid behind the incremental-STA engine. Monte-Carlo yield recovery on
   generated 1k/10k-gate random modules is the repository's most
   repeated-evaluation-heavy workload: per die the single-level search
   and the clustered closed loop used to re-run full STA per candidate
   bias, now only the changed fan-out cones re-propagate. The per-size
   experiments are registered separately ([scale-1k], [scale-10k]) so
   bench-compare gates each wall-clock figure against the committed
   baseline.

   FBB_SCALE_SAMPLES (default 4) sets dies per instance; like
   FBB_MC_SAMPLES, the count is part of the seed-split RNG layout, so
   results are comparable only at equal counts. *)

module T = Fbb_util.Texttab

let total name =
  match List.assoc_opt name (Fbb_obs.Counter.totals ()) with
  | Some v -> v
  | None -> 0

let run_size ~label ~gates () =
  let samples = Exp_common.env_int "FBB_SCALE_SAMPLES" 4 in
  Exp_common.header
    (Printf.sprintf
       "Extension - scaling grid: %d-gate random module (%d dies)" gates
       samples);
  let analyses0 = total "sta.analyses" in
  let updates0 = total "sta.incr_updates" in
  let reprop0 = total "sta.nodes_repropagated" in
  let nl = Fbb_netlist.Generators.random_module ~seed:2009 ~gates () in
  let pl = Fbb_place.Placement.place nl in
  (* The outer [exp.scale-*] span guards the whole experiment; this
     nested span isolates the repeated-evaluation workload the
     incremental engine targets from the one-time fixture setup
     (netlist generation + placement) above, so bench-compare gates the
     MC-recovery seconds on their own. *)
  let mc =
    Fbb_obs.Span.with_ ~name:(Printf.sprintf "exp.scale-%s-mc" label)
    @@ fun () -> Fbb_variation.Montecarlo.run ~samples ~sigma:0.05 pl
  in
  let updates = total "sta.incr_updates" - updates0 in
  let reprop = total "sta.nodes_repropagated" - reprop0 in
  let tab =
    T.create
      ~headers:
        [
          "gates"; "rows"; "dies"; "clustered yield %"; "clustered mean uW";
          "full STAs"; "incr updates"; "nodes/update";
        ]
  in
  let open Fbb_variation.Montecarlo in
  T.add_row tab
    [
      string_of_int (Fbb_netlist.Netlist.gate_count nl);
      string_of_int (Fbb_place.Placement.num_rows pl);
      string_of_int mc.samples;
      T.cell_f ~digits:0 mc.clustered.yield_pct;
      T.cell_f ~digits:3 (mc.clustered.mean_leakage_nw /. 1000.0);
      string_of_int (total "sta.analyses" - analyses0);
      string_of_int updates;
      (if updates = 0 then "-"
       else T.cell_f ~digits:1 (float_of_int reprop /. float_of_int updates));
    ];
  T.print tab;
  print_endline
    "reading: nodes/update is the mean re-propagated cone - the incremental\n\
     engine's work per bias edit - against a full pass of every node per\n\
     candidate before it."

let run_1k () = run_size ~label:"1k" ~gates:1_000 ()
let run_10k () = run_size ~label:"10k" ~gates:10_000 ()
