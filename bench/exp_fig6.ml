(* Figure 6: the placed-and-routed c5315 with one rail set (two bias
   voltages) through the core. We place c5315 on the paper's 23 rows, run
   the C = 3 heuristic (NBB + two voltages = two rail pairs) and draw the
   result as SVG plus an ASCII preview. *)

let run () =
  Exp_common.header "Figure 6 - c5315 layout with 2 vbs rails";
  let prep = Exp_common.prepare "c5315" in
  let pl = prep.Fbb_core.Flow.placement in
  let p = Fbb_core.Flow.problem prep ~beta:0.05 in
  match Fbb_core.Refine.heuristic ~max_clusters:3 p with
  | None -> print_endline "compensation infeasible (unexpected)"
  | Some o ->
    let levels = o.Fbb_core.Refine.levels in
    let used = Fbb_core.Solution.clusters_used levels in
    Printf.printf "clusters: %s\n"
      (String.concat ", "
         (List.map
            (fun l -> Printf.sprintf "%.2fV" (Fbb_tech.Bias.voltage l))
            used));
    let path = Exp_common.out_path "c5315_layout.svg" in
    Fbb_layout.Render.save_svg ~path pl ~levels;
    Printf.printf "layout drawing written to %s\n\n" path;
    print_string (Fbb_layout.Render.ascii pl ~levels)
