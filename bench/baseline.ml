(* bench.json glue: assemble an fbb-bench-2 session record from the
   harness aggregate plus the process-wide sources only the harness
   sees - counter totals and domain-pool utilization. The written file
   is what CI diffs against the committed bench/baseline.json with
   [fbbopt bench-compare]. *)

let exp_seconds agg =
  List.filter_map
    (fun (name, _count, total_s, _mean, _max) ->
      if String.length name > 4 && String.sub name 0 4 = "exp." then
        Some (String.sub name 4 (String.length name - 4), total_s)
      else None)
    (Fbb_obs.Aggregate.span_rows agg)

(* Telemetry self-cost gauges ride along informationally (never gated):
   bench-compare reports them so a sampler-overhead regression shows up
   in the same diff as the solver timings. *)
let telemetry_gauges () =
  List.filter
    (fun (name, _) ->
      String.length name >= 14 && String.sub name 0 14 = "obs.telemetry.")
    (Fbb_obs.Counter.Gauge.values ())

let record agg =
  Fbb_obs.Benchfile.make
    ~jobs:(Fbb_par.Pool.jobs ())
    ~experiments:(exp_seconds agg)
    ~counters:(Fbb_obs.Counter.totals ())
    ~gauges:(telemetry_gauges ())
    ~pool:(Fbb_par.Pool.utilization ())
    agg

let save agg =
  match exp_seconds agg with
  | [] -> ()
  | _ ->
    let path = Exp_common.out_path "bench.json" in
    Fbb_obs.Benchfile.save (record agg) ~path;
    Printf.printf "session record written to %s\n" path
