(* Bechamel micro-benchmarks: one per table/figure pipeline stage, so the
   cost of each reproduction ingredient is visible. The headline
   heuristic-vs-ILP wall-clock ratio (the paper's >1000x claim) is
   measured in the Table-1 experiment on full runs. *)

open Bechamel
open Toolkit

let small_problem =
  lazy
    (let prep = Exp_common.prepare "c1355" in
     Fbb_core.Flow.problem prep ~beta:0.05)

let tests () =
  let c1355 = Exp_common.prepare "c1355" in
  let nl = c1355.Fbb_core.Flow.netlist in
  let pl = c1355.Fbb_core.Flow.placement in
  let p = Lazy.force small_problem in
  let heuristic_of name =
    let prep = Exp_common.prepare name in
    let prob = Fbb_core.Flow.problem prep ~beta:0.05 in
    Test.make ~name:("table1 heuristic " ^ name)
      (Staged.stage (fun () ->
           ignore (Fbb_core.Heuristic.optimize ~max_clusters:2 prob)))
  in
  [
    Test.make ~name:"fig1 characterization sweep"
      (Staged.stage (fun () -> ignore (Fbb_tech.Characterize.figure1 ())));
    Test.make ~name:"fig1 transient inverter sim"
      (Staged.stage (fun () ->
           ignore (Fbb_tech.Transient.propagation_delay ~vbs:0.25 ())));
    Test.make ~name:"table1 sta c1355"
      (Staged.stage (fun () -> ignore (Fbb_sta.Timing.analyze nl)));
    Test.make ~name:"table1 path extraction c1355"
      (Staged.stage
         (let t = Fbb_sta.Timing.analyze nl in
          fun () -> ignore (Fbb_sta.Paths.through_cell t)));
    Test.make ~name:"table1 preprocessing c1355"
      (Staged.stage (fun () -> ignore (Fbb_core.Problem.build ~beta:0.05 pl)));
    heuristic_of "c1355";
    heuristic_of "c6288";
    heuristic_of "Industrial3";
    Test.make ~name:"table1 ilp (enumerate) c1355 beta=5 C=2"
      (Staged.stage (fun () ->
           let config =
             {
               Fbb_core.Ilp_opt.default_config with
               limits =
                 { Fbb_ilp.Branch_bound.max_nodes = 200_000; max_seconds = 30.0 };
             }
           in
           ignore (Fbb_core.Ilp_opt.optimize ~config p)));
    Test.make ~name:"ablation ilp monolithic (3-row alu)"
      (Staged.stage
         (let nl = Fbb_netlist.Generators.alu ~bits:4 () in
          let pl = Fbb_place.Placement.place ~target_rows:3 nl in
          let prob = Fbb_core.Problem.build ~beta:0.08 pl in
          fun () ->
            let config =
              {
                Fbb_core.Ilp_opt.default_config with
                strategy = Fbb_core.Ilp_opt.Monolithic;
                limits =
                  { Fbb_ilp.Branch_bound.max_nodes = 100_000;
                    max_seconds = 20.0 };
              }
            in
            ignore (Fbb_core.Ilp_opt.optimize ~config prob)));
    Test.make ~name:"ablation ilp enumerate (3-row alu)"
      (Staged.stage
         (let nl = Fbb_netlist.Generators.alu ~bits:4 () in
          let pl = Fbb_place.Placement.place ~target_rows:3 nl in
          let prob = Fbb_core.Problem.build ~beta:0.08 pl in
          fun () ->
            let config =
              {
                Fbb_core.Ilp_opt.default_config with
                strategy = Fbb_core.Ilp_opt.Enumerate;
                limits =
                  { Fbb_ilp.Branch_bound.max_nodes = 100_000;
                    max_seconds = 20.0 };
              }
            in
            ignore (Fbb_core.Ilp_opt.optimize ~config prob)));
    Test.make ~name:"fig6 placement c1355"
      (Staged.stage (fun () ->
           ignore (Fbb_place.Placement.place ~target_rows:13 nl)));
    Test.make ~name:"fig6 svg render"
      (Staged.stage
         (let levels = Array.make (Fbb_place.Placement.num_rows pl) 2 in
          fun () -> ignore (Fbb_layout.Render.svg pl ~levels)));
    Test.make ~name:"fig3 contact insertion"
      (Staged.stage
         (let levels = Array.make (Fbb_place.Placement.num_rows pl) 2 in
          fun () -> ignore (Fbb_layout.Bias_rails.insert pl ~levels)));
    Test.make ~name:"fig2 closed-loop tuning c1355"
      (Staged.stage (fun () ->
           ignore
             (Fbb_variation.Tuning.compensate pl
                ~derate:(Fbb_variation.Models.uniform 0.05))));
    Test.make ~name:"sweep incremental check-timing"
      (Staged.stage
         (let checker =
            Fbb_core.Solution.Checker.create p
              (Fbb_core.Solution.uniform p 3)
          in
          let n = Fbb_core.Problem.num_rows p in
          let i = ref 0 in
          fun () ->
            incr i;
            Fbb_core.Solution.Checker.set checker ~row:(!i mod n)
              ~level:(!i mod 11);
            ignore (Fbb_core.Solution.Checker.feasible checker)));
  ]

let run () =
  Exp_common.header "Bechamel micro-benchmarks (per-stage costs)";
  (* Measure the uninstrumented path: the harness installs a global
     aggregator sink, which would otherwise tax every span in the hot
     loops being timed. *)
  Fbb_obs.Sink.suspended @@ fun () ->
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let tab = Fbb_util.Texttab.create ~headers:[ "stage"; "time per run" ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols Instance.monotonic_clock raw in
          match Analyze.OLS.estimates est with
          | Some [ ns ] ->
            let cell =
              if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
              else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
              else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
              else Printf.sprintf "%.0f ns" ns
            in
            Fbb_util.Texttab.add_row tab [ name; cell ]
          | Some _ | None -> Fbb_util.Texttab.add_row tab [ name; "n/a" ])
        results)
    (tests ());
  Fbb_util.Texttab.print tab
