(* Figure 3: row-level FBB implementation detail - contact cells every
   50 um, one rail pair per bias voltage, well separation only between
   rows of different clusters. Quantifies the section 3.3 claims:
   <= 6 % row-utilization increase with two contact cells per window, and
   at most two rail pairs before rows run out of slack. *)

module BR = Fbb_layout.Bias_rails
module T = Fbb_util.Texttab

let run () =
  Exp_common.header "Figure 3 - bias contact insertion and row utilization";
  let prep = Exp_common.prepare "c1355" in
  let pl = prep.Fbb_core.Flow.placement in
  let p = Fbb_core.Flow.problem prep ~beta:0.05 in
  let levels =
    match Fbb_core.Refine.heuristic ~max_clusters:3 p with
    | Some o -> o.Fbb_core.Refine.levels
    | None -> Array.make (Fbb_place.Placement.num_rows pl) 0
  in
  let t = BR.insert pl ~levels in
  let tab =
    T.create
      ~headers:[ "Row"; "vbs (V)"; "windows"; "added sites"; "util before"; "util after" ]
  in
  Array.iter
    (fun rc ->
      T.add_row tab
        [
          T.cell_i rc.BR.row;
          T.cell_f (Fbb_tech.Bias.voltage rc.BR.level);
          T.cell_i rc.BR.windows;
          T.cell_i rc.BR.added_sites;
          T.cell_f ~digits:1 (100.0 *. rc.BR.utilization_before);
          T.cell_f ~digits:1 (100.0 *. rc.BR.utilization_after);
        ])
    t.BR.rows;
  T.print tab;
  Printf.printf
    "rail pairs routed: %d; worst utilization increase: %.2f%% (paper bound \
     %.0f%%); all rows fit: %b\n"
    t.BR.bias_pairs
    (100.0 *. t.BR.max_utilization_increase)
    Paper_ref.utilization_increase_bound_pct t.BR.feasible;
  Printf.printf
    "rail pairs supportable within 85%%%% routable row utilization: %d -> the \
     paper's C <= 3 (two bias pairs plus NBB) restriction\n"
    (BR.max_supported_pairs pl ~utilization_cap:0.85);
  (* The before/after abstract view of the paper's figure. *)
  print_endline "\nabstract row view (digit = bias level, '.' = free site):";
  print_string (Fbb_layout.Render.ascii pl ~levels)
