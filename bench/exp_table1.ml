(* Table 1: leakage power savings of clustered FBB vs block-level FBB on
   the nine-design suite, for beta in {5, 10} % and cluster budgets C in
   {2, 3}, with the exact ILP and the two-pass heuristic. Paper values are
   printed alongside ours. *)

module Flow = Fbb_core.Flow
module T = Fbb_util.Texttab

type measured = {
  name : string;
  beta_pct : int;
  gates : int;
  rows : int;
  single_uw : float option;
  ilp_c2 : float option;
  ilp_c3 : float option;
  heur_c2 : float option;
  heur_c3 : float option;
  constraints : int;
  heur_s : float;
  ilp_s : float;
}

let evaluate_design (spec : Fbb_netlist.Benchmarks.spec) beta =
  let prep = Exp_common.prepare spec.Fbb_netlist.Benchmarks.name in
  let limits =
    if spec.Fbb_netlist.Benchmarks.ilp_tractable then Exp_common.ilp_limits ()
    else Exp_common.ilp_limits_intractable ()
  in
  let ev_heur, heur_s =
    Exp_common.time (fun () -> Flow.evaluate ~run_ilp:false prep ~beta)
  in
  let ev, ilp_s =
    Exp_common.time (fun () -> Flow.evaluate prep ~beta ~ilp_limits:limits)
  in
  ignore ev_heur;
  {
    name = spec.Fbb_netlist.Benchmarks.name;
    beta_pct = int_of_float (beta *. 100.0);
    gates = spec.Fbb_netlist.Benchmarks.gates;
    rows = spec.Fbb_netlist.Benchmarks.rows;
    single_uw = Option.map (fun nw -> nw /. 1000.0) ev.Flow.single_bb_nw;
    ilp_c2 = Flow.ilp_savings_pct ev ~c:2;
    ilp_c3 = Flow.ilp_savings_pct ev ~c:3;
    heur_c2 = Flow.heuristic_savings_pct ev ~c:2;
    heur_c3 = Flow.heuristic_savings_pct ev ~c:3;
    constraints = ev.Flow.constraints;
    heur_s;
    ilp_s;
  }

(* The (design, beta) cells are independent, so the whole grid fans out
   across the domain pool one cell per task; results come back
   positionally, keeping the printed tables and CSV in suite order at
   any job count. Each design is prepared once up front so the pool
   workers hit a warm cache instead of racing to build the same
   placement. Progress lines complete as cells finish - their order is
   the one part of the output that is timing-dependent. *)
let progress_mutex = Mutex.create ()

let collect () =
  List.iter
    (fun (spec : Fbb_netlist.Benchmarks.spec) ->
      ignore (Exp_common.prepare spec.Fbb_netlist.Benchmarks.name))
    Fbb_netlist.Benchmarks.all;
  let cells =
    List.concat_map
      (fun spec -> List.map (fun beta -> (spec, beta)) [ 0.05; 0.10 ])
      Fbb_netlist.Benchmarks.all
    |> Array.of_list
  in
  let measured =
    Fbb_par.Pool.parallel_map ~chunk:1 cells ~f:(fun (spec, beta) ->
        let m = evaluate_design spec beta in
        Mutex.protect progress_mutex (fun () ->
            Printf.printf "  %-14s beta=%2d%% done (heur %.2fs, ilp %.1fs)\n%!"
              m.name m.beta_pct m.heur_s m.ilp_s);
        m)
  in
  Array.to_list measured

let print_table measured =
  let tab =
    T.create
      ~headers:
        [
          "Benchmark"; "Gates"; "Rows"; "B%"; "SglBB uW (paper)";
          "ILP C2 (paper)"; "ILP C3 (paper)"; "Heu C2 (paper)";
          "Heu C3 (paper)"; "Constr (paper)";
        ]
  in
  List.iter
    (fun m ->
      let p = Paper_ref.find m.name m.beta_pct in
      let vs v pv =
        Printf.sprintf "%s (%s)" (Exp_common.opt_pct v) (Exp_common.opt_pct pv)
      in
      T.add_row tab
        [
          m.name;
          T.cell_i m.gates;
          T.cell_i m.rows;
          T.cell_i m.beta_pct;
          Printf.sprintf "%s (%.2f)"
            (match m.single_uw with Some v -> T.cell_f v | None -> "-")
            p.Paper_ref.single_bb_uw;
          vs m.ilp_c2 p.Paper_ref.ilp_c2;
          vs m.ilp_c3 p.Paper_ref.ilp_c3;
          vs m.heur_c2 (Some p.Paper_ref.heur_c2);
          vs m.heur_c3 (Some p.Paper_ref.heur_c3);
          Printf.sprintf "%d (%d)" m.constraints p.Paper_ref.constraints;
        ])
    measured;
  T.print tab

let print_speed measured =
  Exp_common.header "Section 5 - run times: heuristic vs ILP";
  let tab =
    T.create ~headers:[ "Benchmark"; "B%"; "heuristic s"; "ILP s"; "ILP/heur x" ]
  in
  List.iter
    (fun m ->
      T.add_row tab
        [
          m.name;
          T.cell_i m.beta_pct;
          T.cell_f ~digits:3 m.heur_s;
          T.cell_f ~digits:2 m.ilp_s;
          (if m.heur_s > 0.0 then T.cell_f ~digits:0 (m.ilp_s /. m.heur_s)
           else "-");
        ])
    measured;
  T.print tab;
  print_endline
    "paper: ILP run times comparable on small designs, >1000x slower on the\n\
     larger benchmarks; ILP does not converge on Industrial2/3."

let save_csv measured =
  let csv =
    Fbb_util.Csv.create
      ~headers:
        [
          "benchmark"; "beta_pct"; "gates"; "rows"; "single_bb_uw"; "ilp_c2";
          "ilp_c3"; "heur_c2"; "heur_c3"; "constraints"; "heur_s"; "ilp_s";
        ]
  in
  let cell = function Some v -> Printf.sprintf "%.4f" v | None -> "" in
  List.iter
    (fun m ->
      Fbb_util.Csv.add_row csv
        [
          m.name; string_of_int m.beta_pct; string_of_int m.gates;
          string_of_int m.rows; cell m.single_uw; cell m.ilp_c2;
          cell m.ilp_c3; cell m.heur_c2; cell m.heur_c3;
          string_of_int m.constraints;
          Printf.sprintf "%.4f" m.heur_s; Printf.sprintf "%.3f" m.ilp_s;
        ])
    measured;
  let path = Exp_common.out_path "table1.csv" in
  Fbb_util.Csv.save csv ~path;
  Printf.printf "rows written to %s\n" path

(* ----- oracle gap ------------------------------------------------------- *)

(* How far from the true optimum do the production solvers land? The
   Table-1 designs (>= 13 rows) are beyond brute force, so the question
   is answered on a grid of small random modules where Fbb_oracle can
   enumerate every clustered assignment. *)

type gap_row = {
  g_seed : int;
  g_gates : int;
  g_rows : int;
  g_beta_pct : int;
  g_single_nw : float;
  g_oracle_nw : float;
  g_heur_nw : float;
  g_bb_nw : float option;  (** None when B&B failed to prove optimality *)
}

let gap_cases =
  List.concat_map
    (fun (rows, gates) ->
      List.map
        (fun beta -> Fbb_oracle.Case.make ~beta ~seed:(rows * 7) ~gates ~rows ())
        [ 0.05; 0.10 ])
    [ (3, 90); (4, 120); (5, 150); (6, 180) ]

let gap_cell case =
  let open Fbb_oracle in
  let p = Case.build case in
  match Oracle.solve p, Fbb_core.Problem.max_single_level p with
  | Oracle.Optimal opt, Some j ->
    let uniform = Array.make (Fbb_core.Problem.num_rows p) j in
    let heur = Option.get (Fbb_core.Heuristic.optimize p) in
    let bb = Fbb_core.Ilp_opt.optimize p in
    Some
      {
        g_seed = case.Case.seed;
        g_gates = case.Case.gates;
        g_rows = case.Case.rows;
        g_beta_pct = int_of_float (case.Case.beta *. 100.0);
        g_single_nw = Fbb_core.Solution.leakage_nw p uniform;
        g_oracle_nw = opt.Oracle.leakage_nw;
        g_heur_nw =
          Fbb_core.Solution.leakage_nw p heur.Fbb_core.Heuristic.levels;
        g_bb_nw =
          (if bb.Fbb_core.Ilp_opt.proved_optimal then
             Option.map
               (Fbb_core.Solution.leakage_nw p)
               bb.Fbb_core.Ilp_opt.levels
           else None);
      }
  | _ -> None

let gap_pct opt v = (v -. opt) /. opt *. 100.0

let print_oracle_gap () =
  Exp_common.header
    "Oracle gap - heuristic and B&B vs exhaustive optimum (C=2, small grid)";
  let rows =
    Fbb_par.Pool.parallel_map ~chunk:1
      (Array.of_list gap_cases)
      ~f:gap_cell
    |> Array.to_list
    |> List.filter_map Fun.id
  in
  let tab =
    T.create
      ~headers:
        [
          "Gates"; "Rows"; "B%"; "SglBB nW"; "Oracle nW"; "Heur nW";
          "Heur gap %"; "B&B gap %";
        ]
  in
  List.iter
    (fun g ->
      T.add_row tab
        [
          T.cell_i g.g_gates;
          T.cell_i g.g_rows;
          T.cell_i g.g_beta_pct;
          T.cell_f g.g_single_nw;
          T.cell_f g.g_oracle_nw;
          T.cell_f g.g_heur_nw;
          T.cell_f ~digits:4 (gap_pct g.g_oracle_nw g.g_heur_nw);
          (match g.g_bb_nw with
          | Some v -> T.cell_f ~digits:4 (gap_pct g.g_oracle_nw v)
          | None -> "-");
        ])
    rows;
  T.print tab;
  print_endline
    "gap = (solver - oracle) / oracle. A proved-optimal B&B gap above the\n\
     float tolerance, or a negative gap anywhere, is a solver bug - the\n\
     same comparison the fuzzer (bin/fbbfuzz) makes adversarially.";
  let csv =
    Fbb_util.Csv.create
      ~headers:
        [
          "seed"; "gates"; "rows"; "beta_pct"; "single_nw"; "oracle_nw";
          "heur_nw"; "bb_nw"; "heur_gap_pct";
        ]
  in
  List.iter
    (fun g ->
      Fbb_util.Csv.add_row csv
        [
          string_of_int g.g_seed; string_of_int g.g_gates;
          string_of_int g.g_rows; string_of_int g.g_beta_pct;
          Printf.sprintf "%.4f" g.g_single_nw;
          Printf.sprintf "%.4f" g.g_oracle_nw;
          Printf.sprintf "%.4f" g.g_heur_nw;
          (match g.g_bb_nw with Some v -> Printf.sprintf "%.4f" v | None -> "");
          Printf.sprintf "%.6f" (gap_pct g.g_oracle_nw g.g_heur_nw);
        ])
    rows;
  let path = Exp_common.out_path "oracle_gap.csv" in
  Fbb_util.Csv.save csv ~path;
  Printf.printf "rows written to %s\n" path

let run () =
  Exp_common.header
    "Table 1 - leakage savings of row-clustered FBB vs block-level FBB";
  Printf.printf "ILP budget: %.0fs per (design, beta, C); override with \
                 FBB_ILP_SECONDS\n%!"
    (Exp_common.ilp_seconds ());
  let measured = collect () in
  print_table measured;
  print_endline
    "cells: ours (paper). '-' = ILP hit its budget without proving the\n\
     optimum, the paper's non-convergence case. All of our savings are\n\
     signoff-clean: every solution was re-timed with full STA under the\n\
     applied bias (see Fbb_core.Refine), which the paper's path\n\
     abstraction does not guarantee.";
  print_speed measured;
  save_csv measured;
  print_oracle_gap ()
