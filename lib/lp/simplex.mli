(** Dense two-phase primal simplex for linear programs

    {v minimize c.x  subject to  A x (<= | >= | =) b,  0 <= x <= u v}

    Replaces the paper's [lp_solve] dependency. Constraints are given
    sparsely (index/coefficient pairs); the solver densifies internally.
    Bland's anti-cycling rule is engaged after a stall, so termination is
    guaranteed. Suitable for the problem sizes this repository produces
    (hundreds of rows and columns). *)

type relation = Le | Ge | Eq

type constr = {
  terms : (int * float) list;  (** (variable, coefficient) pairs *)
  relation : relation;
  rhs : float;
}

type problem = {
  num_vars : int;
  minimize : float array;  (** objective coefficients, length [num_vars] *)
  constraints : constr list;
  upper : float array option;
      (** optional per-variable upper bounds (infinite when absent) *)
}

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded
  | Pivot_limit
      (** the pivot budget ran out before either phase converged
          (numerically hostile instance); no conclusion about the
          problem can be drawn *)
  | Budget_exhausted
      (** the caller-supplied {!Fbb_util.Budget} tripped mid-solve; no
          conclusion about the problem can be drawn *)

val solve : ?max_pivots:int -> ?budget:Fbb_util.Budget.t -> problem -> outcome
(** [max_pivots] defaults to a generous function of the problem size;
    exceeding it yields [Pivot_limit] (and bumps the [lp.pivot_limit]
    observability counter) so callers can degrade gracefully instead of
    crashing. Pivot, phase-split and Bland-engagement counts are
    recorded on the [lp.*] counters of {!Fbb_obs.Counter}.

    [budget] is ticked once per pivot (cost 1); when it trips the
    solver abandons the tableau and returns {!Budget_exhausted}.
    {b Determinism caveat:} ticking a shared budget from LP solves that
    run inside the parallel pool makes the trip point depend on
    scheduling — pass per-solve {!Fbb_util.Budget.sub} slices, or tick
    only from sequential driver loops, when bit-identical results
    across job counts matter.

    The ["lp.pivot_limit"] fault-injection site is evaluated once per
    solve; when it fires, the solver reports [Pivot_limit] immediately
    without touching the tableau, exercising callers' degradation
    paths. *)

val check : problem -> float array -> eps:float -> bool
(** Feasibility check of a candidate solution (used in tests and by the
    ILP layer to validate incumbents). *)
