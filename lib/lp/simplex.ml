type relation = Le | Ge | Eq

type constr = {
  terms : (int * float) list;
  relation : relation;
  rhs : float;
}

type problem = {
  num_vars : int;
  minimize : float array;
  constraints : constr list;
  upper : float array option;
}

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded
  | Pivot_limit
  | Budget_exhausted

let eps = 1e-8

(* Observability: totals survive with no sink installed, so callers and
   tests can read them; events only flow once a sink is set up. *)
let solves_c = Fbb_obs.Counter.make "lp.solves"
let pivots_c = Fbb_obs.Counter.make "lp.pivots"
let phase1_c = Fbb_obs.Counter.make "lp.phase1_pivots"
let phase2_c = Fbb_obs.Counter.make "lp.phase2_pivots"
let bland_c = Fbb_obs.Counter.make "lp.bland_engaged"
let pivot_limit_c = Fbb_obs.Counter.make "lp.pivot_limit"
let budget_stop_c = Fbb_obs.Counter.make "lp.budget_stops"

exception Pivot_limit_hit
exception Budget_hit

let check problem x ~eps =
  let ok = ref true in
  List.iter
    (fun c ->
      let lhs =
        List.fold_left (fun acc (v, a) -> acc +. (a *. x.(v))) 0.0 c.terms
      in
      let sat =
        match c.relation with
        | Le -> lhs <= c.rhs +. eps
        | Ge -> lhs >= c.rhs -. eps
        | Eq -> Float.abs (lhs -. c.rhs) <= eps
      in
      if not sat then ok := false)
    problem.constraints;
  Array.iteri (fun i xi -> if xi < -.eps then ok := false else
    match problem.upper with
    | Some u when xi > u.(i) +. eps -> ok := false
    | Some _ | None -> ()) x;
  !ok

(* The tableau holds one row per constraint (upper bounds included as Le
   rows) plus the objective in row 0. Columns: structural variables, then
   slack/surplus, then artificials, then the RHS. *)
let solve ?max_pivots ?(budget = Fbb_util.Budget.unlimited) problem =
  let n = problem.num_vars in
  let bound_rows =
    match problem.upper with
    | None -> []
    | Some u ->
      List.filteri
        (fun _ c -> c.rhs < Float.infinity)
        (List.init n (fun i ->
             { terms = [ (i, 1.0) ]; relation = Le; rhs = u.(i) }))
  in
  let constraints = Array.of_list (problem.constraints @ bound_rows) in
  let m = Array.length constraints in
  (* Normalize all RHS to be non-negative. *)
  let norm =
    Array.map
      (fun c ->
        if c.rhs < 0.0 then
          {
            terms = List.map (fun (v, a) -> (v, -.a)) c.terms;
            rhs = -.c.rhs;
            relation =
              (match c.relation with Le -> Ge | Ge -> Le | Eq -> Eq);
          }
        else c)
      constraints
  in
  let n_slack =
    Array.fold_left
      (fun acc c -> match c.relation with Le | Ge -> acc + 1 | Eq -> acc)
      0 norm
  in
  let n_art =
    Array.fold_left
      (fun acc c -> match c.relation with Ge | Eq -> acc + 1 | Le -> acc)
      0 norm
  in
  let ncols = n + n_slack + n_art in
  let tab = Array.make_matrix (m + 1) (ncols + 1) 0.0 in
  let basis = Array.make m (-1) in
  let art_start = n + n_slack in
  let slack = ref n in
  let art = ref art_start in
  Array.iteri
    (fun r c ->
      let row = tab.(r + 1) in
      List.iter (fun (v, a) -> row.(v) <- row.(v) +. a) c.terms;
      row.(ncols) <- c.rhs;
      (match c.relation with
      | Le ->
        row.(!slack) <- 1.0;
        basis.(r) <- !slack;
        incr slack
      | Ge ->
        row.(!slack) <- -1.0;
        incr slack;
        row.(!art) <- 1.0;
        basis.(r) <- !art;
        incr art
      | Eq ->
        row.(!art) <- 1.0;
        basis.(r) <- !art;
        incr art))
    norm;
  let max_pivots =
    match max_pivots with
    | Some p -> p
    | None -> 200 * (m + ncols + 10)
  in
  let pivots = ref 0 in
  let phase1_pivots = ref 0 in
  let pivot ~row ~col =
    incr pivots;
    if !pivots > max_pivots then raise Pivot_limit_hit;
    if not (Fbb_util.Budget.tick budget) then raise Budget_hit;
    let prow = tab.(row) in
    let d = prow.(col) in
    for j = 0 to ncols do
      prow.(j) <- prow.(j) /. d
    done;
    for i = 0 to m do
      if i <> row then begin
        let f = tab.(i).(col) in
        if Float.abs f > 0.0 then begin
          let irow = tab.(i) in
          for j = 0 to ncols do
            irow.(j) <- irow.(j) -. (f *. prow.(j))
          done;
          irow.(col) <- 0.0
        end
      end
    done;
    prow.(col) <- 1.0;
    basis.(row - 1) <- col
  in
  (* Price out the current basis from the objective row. *)
  let price_out () =
    for r = 1 to m do
      let c = tab.(0).(basis.(r - 1)) in
      if Float.abs c > eps then begin
        let row = tab.(r) in
        let orow = tab.(0) in
        for j = 0 to ncols do
          orow.(j) <- orow.(j) -. (c *. row.(j))
        done
      end
    done
  in
  (* One simplex phase over allowed columns. Dantzig rule with a Bland
     fallback after [stall_after] degenerate pivots. *)
  let run_phase allowed =
    let bland = ref false in
    let degenerate = ref 0 in
    let stall_after = 4 * (m + 1) in
    let rec iterate () =
      let enter = ref (-1) in
      if !bland then begin
        let j = ref 0 in
        while !enter < 0 && !j < ncols do
          if allowed !j && tab.(0).(!j) < -.eps then enter := !j;
          incr j
        done
      end
      else begin
        let best = ref (-.eps) in
        for j = 0 to ncols - 1 do
          if allowed j && tab.(0).(j) < !best then begin
            best := tab.(0).(j);
            enter := j
          end
        done
      end;
      if !enter < 0 then `Optimal
      else begin
        let col = !enter in
        let leave = ref (-1) in
        let best_ratio = ref Float.infinity in
        for i = 1 to m do
          let a = tab.(i).(col) in
          if a > eps then begin
            let ratio = tab.(i).(ncols) /. a in
            if
              ratio < !best_ratio -. eps
              || (ratio < !best_ratio +. eps
                 && !leave >= 0
                 && basis.(i - 1) < basis.(!leave - 1))
            then begin
              best_ratio := ratio;
              leave := i
            end
          end
        done;
        if !leave < 0 then `Unbounded
        else begin
          if !best_ratio < eps then begin
            incr degenerate;
            if !degenerate > stall_after && not !bland then begin
              Fbb_obs.Counter.incr bland_c;
              bland := true
            end
          end
          else degenerate := 0;
          pivot ~row:!leave ~col;
          iterate ()
        end
      end
    in
    iterate ()
  in
  (* Phase 1: minimize the sum of artificials. *)
  let run_phase1 () =
    if n_art = 0 then `Feasible
    else begin
      for j = art_start to ncols - 1 do
        tab.(0).(j) <- 1.0
      done;
      price_out ();
      match run_phase (fun _ -> true) with
      | `Unbounded -> `Infeasible (* cannot happen: phase 1 is bounded *)
      | `Optimal ->
        if tab.(0).(ncols) < -.eps *. 100.0 then `Infeasible
        else begin
          (* Drive remaining artificials out of the basis. *)
          for r = 1 to m do
            if basis.(r - 1) >= art_start then begin
              let found = ref (-1) in
              for j = 0 to art_start - 1 do
                if !found < 0 && Float.abs tab.(r).(j) > 1e-6 then found := j
              done;
              if !found >= 0 then pivot ~row:r ~col:!found
              (* else: redundant row; the artificial stays basic at 0 and
                 is barred from re-entering below. *)
            end
          done;
          `Feasible
        end
    end
  in
  let run_phases () =
    let phase1 = run_phase1 () in
    phase1_pivots := !pivots;
    match phase1 with
    | `Infeasible -> Infeasible
    | `Feasible ->
      (* Phase 2: restore the real objective. *)
      let orow = tab.(0) in
      Array.fill orow 0 (ncols + 1) 0.0;
      for j = 0 to n - 1 do
        orow.(j) <- problem.minimize.(j)
      done;
      price_out ();
      let allowed j = j < art_start in
      (match run_phase allowed with
      | `Unbounded -> Unbounded
      | `Optimal ->
        let solution = Array.make n 0.0 in
        for r = 1 to m do
          if basis.(r - 1) < n then solution.(basis.(r - 1)) <- tab.(r).(ncols)
        done;
        let objective =
          Array.fold_left ( +. ) 0.0
            (Array.mapi (fun i c -> c *. solution.(i)) problem.minimize)
        in
        Optimal { objective; solution })
  in
  Fbb_obs.Counter.incr solves_c;
  let outcome =
    if Fbb_fault.Fault.fire "lp.pivot_limit" then begin
      Fbb_obs.Counter.incr pivot_limit_c;
      Pivot_limit
    end
    else if Fbb_util.Budget.exhausted budget then begin
      Fbb_obs.Counter.incr budget_stop_c;
      Budget_exhausted
    end
    else
      match run_phases () with
      | o -> o
      | exception Pivot_limit_hit ->
        Fbb_obs.Counter.incr pivot_limit_c;
        Pivot_limit
      | exception Budget_hit ->
        Fbb_obs.Counter.incr budget_stop_c;
        Budget_exhausted
  in
  Fbb_obs.Counter.add pivots_c !pivots;
  Fbb_obs.Counter.add phase1_c !phase1_pivots;
  Fbb_obs.Counter.add phase2_c (!pivots - !phase1_pivots);
  outcome
