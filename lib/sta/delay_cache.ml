open Fbb_netlist
module CL = Fbb_tech.Cell_library
module Device = Fbb_tech.Device
module Bias = Fbb_tech.Bias

type t = {
  nl : Netlist.t;
  order : Netlist.id array;
  rank : int array;
  nominal_ps : float array;
  leak_nw : float array;
  fbb_vbs : float array;
  fbb_delay : float array;
  fbb_leak : float array;
  rbb_vbs : float array;
  rbb_delay : float array;
  rbb_leak : float array;
  outputs : Netlist.id array;
  seq_gates : Netlist.id array;
}

let create nl =
  let n = Netlist.size nl in
  let device = CL.device (Netlist.library nl) in
  let order = Netlist.topo_order nl in
  let rank = Array.make n 0 in
  Array.iteri (fun k i -> rank.(i) <- k) order;
  let nominal_ps =
    Array.init n (fun i ->
        match Netlist.kind nl i with
        | Netlist.Input | Netlist.Output -> 0.0
        | Netlist.Gate c ->
          let load = Array.length (Netlist.fanouts nl i) in
          c.CL.intrinsic_ps +. (c.CL.load_ps *. float_of_int load))
  in
  let leak_nw =
    Array.init n (fun i ->
        match Netlist.kind nl i with
        | Netlist.Input | Netlist.Output -> 0.0
        | Netlist.Gate c -> c.CL.leak_nw)
  in
  let fbb_vbs = Bias.levels () in
  let rbb_vbs = Bias.rbb_levels () in
  let factors f vbs = Array.map (fun v -> f device ~vbs:v) vbs in
  let seq_gates =
    Array.of_list
      (List.filter
         (Netlist.is_sequential nl)
         (Array.to_list (Netlist.gates nl)))
  in
  {
    nl;
    order;
    rank;
    nominal_ps;
    leak_nw;
    fbb_vbs;
    fbb_delay = factors Device.delay_factor fbb_vbs;
    fbb_leak = factors Device.leakage_factor fbb_vbs;
    rbb_vbs;
    rbb_delay = factors Device.delay_factor rbb_vbs;
    rbb_leak = factors Device.leakage_factor rbb_vbs;
    outputs = Netlist.outputs nl;
    seq_gates;
  }

let netlist t = t.nl
let topo_order t = t.order
let rank t i = t.rank.(i)
let nominal_ps t i = t.nominal_ps.(i)
let leak_nw t i = t.leak_nw.(i)
let outputs t = t.outputs
let seq_gates t = t.seq_gates

(* Probe a level table by exact float equality. [Bias.voltage]/
   [Bias.rbb_voltage] results are bit-stable (pure float expressions on
   constants), so any vbs that originated from a generator level hits;
   anything else falls through to the device model, which computes the
   same bits the table would have held. *)
let probe vbs keys values =
  let n = Array.length keys in
  let rec go j =
    if j >= n then None
    else if keys.(j) = vbs then Some values.(j)
    else go (j + 1)
  in
  go 0

let delay_factor t vbs =
  match probe vbs t.fbb_vbs t.fbb_delay with
  | Some f -> f
  | None -> (
    match probe vbs t.rbb_vbs t.rbb_delay with
    | Some f -> f
    | None -> Device.delay_factor (CL.device (Netlist.library t.nl)) ~vbs)

let leak_factor t vbs =
  match probe vbs t.fbb_vbs t.fbb_leak with
  | Some f -> f
  | None -> (
    match probe vbs t.rbb_vbs t.rbb_leak with
    | Some f -> f
    | None -> Device.leakage_factor (CL.device (Netlist.library t.nl)) ~vbs)

let delay_ps t i ~vbs = t.nominal_ps.(i) *. delay_factor t vbs
let leakage_nw t i ~vbs = t.leak_nw.(i) *. leak_factor t vbs

let design_leakage t ~bias =
  (* One-slot factor memo: bias assignments are uniform or row-wise in
     practice, so consecutive gates usually share a voltage. (NaN never
     matches, so a NaN bias just falls through to [leak_factor].) *)
  let last_v = ref Float.nan in
  let last_f = ref Float.nan in
  Array.fold_left
    (fun acc g ->
      let v = bias g in
      let f =
        if v = !last_v then !last_f
        else begin
          let f = leak_factor t v in
          last_v := v;
          last_f := f;
          f
        end
      in
      acc +. (t.leak_nw.(g) *. f))
    0.0
    (Netlist.gates t.nl)
