open Fbb_netlist

type path = { gates : Netlist.id array; delay : float }

let extractions_c = Fbb_obs.Counter.make "sta.path_extractions"
let paths_c = Fbb_obs.Counter.make "sta.paths_extracted"

(* Longest continuation of each node towards an endpoint: value and the
   successor gate achieving it (-1 when the best continuation stops here,
   i.e. the node feeds an endpoint or nothing). *)
let downstream t =
  let nl = Timing.netlist t in
  let n = Netlist.size nl in
  let order = Netlist.topo_order nl in
  let down = Array.make n 0.0 in
  let succ = Array.make n (-1) in
  for k = Array.length order - 1 downto 0 do
    let i = order.(k) in
    let best = ref 0.0 in
    let best_s = ref (-1) in
    Array.iter
      (fun fo ->
        match Netlist.kind nl fo with
        | Netlist.Output | Netlist.Input -> ()
        | Netlist.Gate c ->
          if not (Fbb_tech.Cell_library.is_sequential c.Fbb_tech.Cell_library.kind)
          then begin
            let v = Timing.gate_delay t fo +. down.(fo) in
            if v > !best then begin
              best := v;
              best_s := fo
            end
          end)
      (Netlist.fanouts nl i);
    down.(i) <- !best;
    succ.(i) <- !best_s
  done;
  (down, succ)

let backtrace t g =
  let nl = Timing.netlist t in
  let rec go i acc =
    match Netlist.kind nl i with
    | Netlist.Input | Netlist.Output -> acc
    | Netlist.Gate c ->
      let acc = i :: acc in
      if Fbb_tech.Cell_library.is_sequential c.Fbb_tech.Cell_library.kind then
        acc
      else begin
        let fanins = Netlist.fanins nl i in
        let best = ref fanins.(0) in
        Array.iter
          (fun f ->
            if Timing.arrival t f > Timing.arrival t !best then best := f)
          fanins;
        go !best acc
      end
  in
  go g []

let through_cell t =
  Fbb_obs.Span.with_ ~name:"sta.paths" @@ fun () ->
  Fbb_obs.Counter.incr extractions_c;
  let nl = Timing.netlist t in
  let down, succ = downstream t in
  let seen = Hashtbl.create 1024 in
  let acc = ref [] in
  Array.iter
    (fun g ->
      let prefix = backtrace t g in
      let rec forward i tail =
        if succ.(i) < 0 then List.rev tail else forward succ.(i) (succ.(i) :: tail)
      in
      let gates = Array.of_list (prefix @ forward g []) in
      let delay = Timing.arrival t g +. down.(g) in
      if not (Hashtbl.mem seen gates) then begin
        Hashtbl.add seen gates ();
        acc := { gates; delay } :: !acc
      end)
    (Netlist.gates nl);
  let paths = Array.of_list !acc in
  Array.sort (fun a b -> Float.compare b.delay a.delay) paths;
  Fbb_obs.Counter.add paths_c (Array.length paths);
  paths

let violating_from paths ~dcrit ~beta =
  paths
  |> Array.to_list
  |> List.filter (fun p -> p.delay *. (1.0 +. beta) > dcrit +. 1e-9)
  |> Array.of_list

let violating t ~beta =
  violating_from (through_cell t) ~dcrit:(Timing.dcrit t) ~beta

let delay_of t gates =
  Array.fold_left (fun acc g -> acc +. Timing.gate_delay t g) 0.0 gates

let pp t fmt p =
  let nl = Timing.netlist t in
  Format.fprintf fmt "%.1fps:" p.delay;
  Array.iter (fun g -> Format.fprintf fmt " %s" (Netlist.name nl g)) p.gates
