(** Critical-path set extraction.

    Implements the heuristic the paper adopts from Ramalingam et al. [11]
    to sidestep path-set explosion: extract, for every cell, the single
    longest path through that cell, then prune duplicates. The resulting
    unique set is the constraint set Pi of the optimization. *)

open Fbb_netlist

type path = {
  gates : Netlist.id array;  (** gate sequence, source to sink *)
  delay : float;  (** path delay under the originating analysis *)
}

val through_cell : Timing.t -> path array
(** The pruned unique set of per-cell longest paths, sorted by decreasing
    delay. Every combinational gate and flip-flop launch appears on at
    least one path. *)

val violating : Timing.t -> beta:float -> path array
(** The subset of {!through_cell} whose delay degraded by [(1 + beta)]
    exceeds the analysis' [dcrit] — the candidate timing violators of
    section 3.1 (the paper's "No.Constr" count). *)

val violating_from : path array -> dcrit:float -> beta:float -> path array
(** Same filter over an already-extracted {!through_cell} set — lets
    repeated-evaluation loops (Monte-Carlo recovery, tuning) extract the
    nominal path set once and re-screen it per sampled [beta]. *)

val delay_of : Timing.t -> Netlist.id array -> float
(** Recompute a gate sequence's delay under another analysis (used to
    check a path under different bias assignments). *)

val pp : Timing.t -> Format.formatter -> path -> unit
(** Human-readable one-line rendering. *)
