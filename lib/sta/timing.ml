open Fbb_netlist
module CL = Fbb_tech.Cell_library

let analyses_c = Fbb_obs.Counter.make "sta.analyses"
let arrival_passes_c = Fbb_obs.Counter.make "sta.arrival_passes"
let incr_updates_c = Fbb_obs.Counter.make "sta.incr_updates"
let nodes_repropagated_c = Fbb_obs.Counter.make "sta.nodes_repropagated"
let cache_hits_c = Fbb_obs.Counter.make "sta.cache_hits"

type t = {
  nl : Netlist.t;
  delays : float array;  (* per node; 0 for ports *)
  arrivals : float array;  (* at node output; at D pin for outputs *)
  endpoint_arrivals : float array;  (* at D pin for flip-flops, else nan *)
  requireds : float array Lazy.t;
      (* eager (from_val) for scratch analyses so they stay shareable
         across pool domains; lazy only on incremental views, which are
         single-domain by contract *)
  dcrit : float;
}

let netlist t = t.nl
let gate_delay t i = t.delays.(i)
let arrival t i = t.arrivals.(i)
let dcrit t = t.dcrit
let required t i = (Lazy.force t.requireds).(i)
let slack t i = required t i -. t.arrivals.(i)

let is_endpoint t i =
  match Netlist.kind t.nl i with
  | Netlist.Output -> true
  | Netlist.Gate c -> CL.is_sequential c.CL.kind
  | Netlist.Input -> false

(* Forward pass over a cached netlist: per-node delays from the flat
   nominal table ([nominal * factor * derate] is the same association
   order as [Cell_library.delay_ps ... *. derate], hence bit-identical
   to the per-query library walk it replaces), then arrivals, flip-flop
   capture times and dcrit. *)
let forward cache ~derate ~bias =
  let nl = Delay_cache.netlist cache in
  let n = Netlist.size nl in
  let delays =
    Array.init n (fun i ->
        match Netlist.kind nl i with
        | Netlist.Input | Netlist.Output -> 0.0
        | Netlist.Gate _ ->
          Delay_cache.nominal_ps cache i
          *. Delay_cache.delay_factor cache (bias i)
          *. derate i)
  in
  let arrivals = Array.make n 0.0 in
  let endpoint_arrivals = Array.make n Float.nan in
  (* Launch at 0 from inputs, at clock-to-q from flip-flops. *)
  Fbb_obs.Counter.incr arrival_passes_c;
  Array.iter
    (fun i ->
      let fanin_arrival () =
        Array.fold_left
          (fun acc f -> Float.max acc arrivals.(f))
          0.0 (Netlist.fanins nl i)
      in
      match Netlist.kind nl i with
      | Netlist.Input -> arrivals.(i) <- 0.0
      | Netlist.Output -> arrivals.(i) <- fanin_arrival ()
      | Netlist.Gate c ->
        if CL.is_sequential c.CL.kind then arrivals.(i) <- delays.(i)
        else arrivals.(i) <- fanin_arrival () +. delays.(i))
    (Delay_cache.topo_order cache);
  (* Flip-flop capture times need the full forward pass (feedback). *)
  Array.iter
    (fun i -> endpoint_arrivals.(i) <- arrivals.((Netlist.fanins nl i).(0)))
    (Delay_cache.seq_gates cache);
  let dcrit = ref 0.0 in
  Array.iter
    (fun o -> dcrit := Float.max !dcrit arrivals.(o))
    (Delay_cache.outputs cache);
  Array.iter
    (fun g -> dcrit := Float.max !dcrit endpoint_arrivals.(g))
    (Delay_cache.seq_gates cache);
  (* Fallback for netlists without endpoints. *)
  if !dcrit = 0.0 then Array.iter (fun a -> dcrit := Float.max !dcrit a) arrivals;
  (delays, arrivals, endpoint_arrivals, !dcrit)

(* Backward pass: required times against dcrit; a fanout into an endpoint
   (port or flip-flop D pin) requires arrival by dcrit. *)
let backward nl order delays dcrit =
  let n = Netlist.size nl in
  let requireds = Array.make n dcrit in
  for k = Array.length order - 1 downto 0 do
    let i = order.(k) in
    let fanouts = Netlist.fanouts nl i in
    if Array.length fanouts > 0 then begin
      let req = ref Float.infinity in
      Array.iter
        (fun fo ->
          let r =
            match Netlist.kind nl fo with
            | Netlist.Output -> dcrit
            | Netlist.Gate c ->
              if CL.is_sequential c.CL.kind then dcrit
              else requireds.(fo) -. delays.(fo)
            | Netlist.Input -> dcrit
          in
          req := Float.min !req r)
        fanouts;
      requireds.(i) <- !req
    end
  done;
  requireds

let cache_for ?cache nl =
  match cache with
  | None -> Delay_cache.create nl
  | Some c ->
    if not (Delay_cache.netlist c == nl) then
      invalid_arg "Timing: delay cache built for a different netlist";
    c

let analyze ?cache ?(derate = fun _ -> 1.0) ?(bias = fun _ -> 0.0) nl =
  Fbb_obs.Span.with_ ~name:"sta.analyze" @@ fun () ->
  Fbb_obs.Counter.incr analyses_c;
  let cache = cache_for ?cache nl in
  let delays, arrivals, endpoint_arrivals, dcrit = forward cache ~derate ~bias in
  let requireds = backward nl (Delay_cache.topo_order cache) delays dcrit in
  {
    nl;
    delays;
    arrivals;
    endpoint_arrivals;
    requireds = Lazy.from_val requireds;
    dcrit;
  }

let worst_endpoint t =
  let best = ref (-1) in
  let best_a = ref neg_infinity in
  Array.iter
    (fun o ->
      if t.arrivals.(o) > !best_a then begin
        best := o;
        best_a := t.arrivals.(o)
      end)
    (Netlist.outputs t.nl);
  Array.iter
    (fun g ->
      if Netlist.is_sequential t.nl g && t.endpoint_arrivals.(g) > !best_a
      then begin
        best := g;
        best_a := t.endpoint_arrivals.(g)
      end)
    (Netlist.gates t.nl);
  if !best < 0 then invalid_arg "Timing.worst_endpoint: no endpoints";
  !best

let critical_path t =
  let nl = t.nl in
  let ep = worst_endpoint t in
  let start =
    (* Step from the endpoint to the last combinational node feeding it. *)
    (Netlist.fanins nl ep).(0)
  in
  let rec back i acc =
    match Netlist.kind nl i with
    | Netlist.Input -> acc
    | Netlist.Output -> back (Netlist.fanins nl i).(0) acc
    | Netlist.Gate c ->
      if CL.is_sequential c.CL.kind then i :: acc
      else
        let fanins = Netlist.fanins nl i in
        let best = ref fanins.(0) in
        Array.iter
          (fun f -> if t.arrivals.(f) > t.arrivals.(!best) then best := f)
          fanins;
        back !best (i :: acc)
  in
  back start []

module Incremental = struct
  type ctx = {
    cache : Delay_cache.t;
    nl : Netlist.t;
    derate : float array;  (* frozen at creation; per gate, 1.0 on ports *)
    vbs : float array;  (* current bias per gate; 0 on ports *)
    delays : float array;
    arrivals : float array;
    endpoint_arrivals : float array;
    memo : (float, float) Hashtbl.t;  (* vbs -> delay factor *)
    heap : int array;  (* binary min-heap of node ids, keyed by topo rank *)
    mutable heap_len : int;
    in_heap : bool array;
    mutable dcrit : float;
    mutable hits : int;  (* pending memo hits, flushed per update *)
    mutable generation : int;
  }

  let cache ctx = ctx.cache
  let netlist ctx = ctx.nl

  (* A view is an ordinary [t] aliasing the context's arrays: valid until
     the next update. Requireds are computed on demand; the generation
     guard turns use-after-update of a stale view's requireds into a
     loud error instead of silently wrong slacks. *)
  let view ctx =
    let gen = ctx.generation in
    let requireds =
      lazy
        (if gen <> ctx.generation then
           invalid_arg
             "Timing.Incremental: stale analysis (context updated since)";
         backward ctx.nl (Delay_cache.topo_order ctx.cache) ctx.delays
           ctx.dcrit)
    in
    {
      nl = ctx.nl;
      delays = ctx.delays;
      arrivals = ctx.arrivals;
      endpoint_arrivals = ctx.endpoint_arrivals;
      requireds;
      dcrit = ctx.dcrit;
    }

  let analysis = view

  let create ?cache ?(derate = fun _ -> 1.0) ?(bias = fun _ -> 0.0) nl =
    Fbb_obs.Span.with_ ~name:"sta.incr_create" @@ fun () ->
    let cache = cache_for ?cache nl in
    let n = Netlist.size nl in
    let derate_a =
      Array.init n (fun i -> if Netlist.is_gate nl i then derate i else 1.0)
    in
    let vbs =
      Array.init n (fun i -> if Netlist.is_gate nl i then bias i else 0.0)
    in
    let delays, arrivals, endpoint_arrivals, dcrit =
      forward cache
        ~derate:(fun i -> derate_a.(i))
        ~bias:(fun i -> vbs.(i))
    in
    {
      cache;
      nl;
      derate = derate_a;
      vbs;
      delays;
      arrivals;
      endpoint_arrivals;
      memo = Hashtbl.create 31;
      heap = Array.make (max n 1) 0;
      heap_len = 0;
      in_heap = Array.make n false;
      dcrit;
      hits = 0;
      generation = 0;
    }

  let factor ctx v =
    match Hashtbl.find_opt ctx.memo v with
    | Some f ->
      ctx.hits <- ctx.hits + 1;
      f
    | None ->
      let f = Delay_cache.delay_factor ctx.cache v in
      Hashtbl.add ctx.memo v f;
      f

  let push ctx i =
    if not ctx.in_heap.(i) then begin
      ctx.in_heap.(i) <- true;
      let h = ctx.heap in
      let rank = Delay_cache.rank ctx.cache in
      let k = ref ctx.heap_len in
      ctx.heap_len <- ctx.heap_len + 1;
      h.(!k) <- i;
      let continue = ref true in
      while !continue && !k > 0 do
        let parent = (!k - 1) / 2 in
        if rank h.(parent) > rank h.(!k) then begin
          let tmp = h.(parent) in
          h.(parent) <- h.(!k);
          h.(!k) <- tmp;
          k := parent
        end
        else continue := false
      done
    end

  let pop ctx =
    let h = ctx.heap in
    let rank = Delay_cache.rank ctx.cache in
    let top = h.(0) in
    ctx.heap_len <- ctx.heap_len - 1;
    h.(0) <- h.(ctx.heap_len);
    let k = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !k) + 1 in
      let r = l + 1 in
      let smallest = ref !k in
      if l < ctx.heap_len && rank h.(l) < rank h.(!smallest) then smallest := l;
      if r < ctx.heap_len && rank h.(r) < rank h.(!smallest) then smallest := r;
      if !smallest <> !k then begin
        let tmp = h.(!smallest) in
        h.(!smallest) <- h.(!k);
        h.(!k) <- tmp;
        k := !smallest
      end
      else continue := false
    done;
    ctx.in_heap.(top) <- false;
    top

  (* Dense fallback: when the seeded worklist already spans most of the
     design (a uniform or near-uniform bias edit), heap discipline costs
     more than it saves — recompute every arrival in one topological
     sweep instead. Per-node expressions are the same as [forward]'s and
     the sparse drain's, so both paths land on identical bits. *)
  let dense ctx =
    let nl = ctx.nl in
    for k = 0 to ctx.heap_len - 1 do
      ctx.in_heap.(ctx.heap.(k)) <- false
    done;
    ctx.heap_len <- 0;
    Fbb_obs.Counter.incr arrival_passes_c;
    Array.iter
      (fun i ->
        let fanin_arrival () =
          Array.fold_left
            (fun acc f -> Float.max acc ctx.arrivals.(f))
            0.0 (Netlist.fanins nl i)
        in
        match Netlist.kind nl i with
        | Netlist.Input -> ctx.arrivals.(i) <- 0.0
        | Netlist.Output -> ctx.arrivals.(i) <- fanin_arrival ()
        | Netlist.Gate c ->
          if CL.is_sequential c.CL.kind then ctx.arrivals.(i) <- ctx.delays.(i)
          else ctx.arrivals.(i) <- fanin_arrival () +. ctx.delays.(i))
      (Delay_cache.topo_order ctx.cache);
    Array.iter
      (fun i ->
        ctx.endpoint_arrivals.(i) <- ctx.arrivals.((Netlist.fanins nl i).(0)))
      (Delay_cache.seq_gates ctx.cache);
    Netlist.size nl

  (* Drain the worklist in topological-rank order. A popped node's
     fanins are all final (their ranks are smaller, so they were popped
     first), so one recomputation per node suffices. The early cut: if
     the recomputed arrival carries the same bits, the fan-out cone is
     untouched. Arrivals are sums/maxes of non-negative finite delays,
     so [<>] equality here is bit equality. *)
  let drain ctx =
    let nl = ctx.nl in
    let popped = ref 0 in
    while ctx.heap_len > 0 do
      let i = pop ctx in
      incr popped;
      let a =
        let fanin_arrival () =
          Array.fold_left
            (fun acc f -> Float.max acc ctx.arrivals.(f))
            0.0 (Netlist.fanins nl i)
        in
        match Netlist.kind nl i with
        | Netlist.Input -> 0.0
        | Netlist.Output -> fanin_arrival ()
        | Netlist.Gate c ->
          if CL.is_sequential c.CL.kind then ctx.delays.(i)
          else fanin_arrival () +. ctx.delays.(i)
      in
      if a <> ctx.arrivals.(i) then begin
        ctx.arrivals.(i) <- a;
        Array.iter
          (fun fo ->
            (* A flip-flop's launch arrival is its own clock-to-q: the
               edge stops here, only its capture time tracks us. *)
            if Netlist.is_sequential nl fo then
              ctx.endpoint_arrivals.(fo) <- a
            else push ctx fo)
          (Netlist.fanouts nl i)
      end
    done;
    !popped

  let propagate ctx =
    let popped =
      if 4 * ctx.heap_len >= Netlist.size ctx.nl then dense ctx
      else drain ctx
    in
    Fbb_obs.Counter.add nodes_repropagated_c popped;
    Fbb_obs.Counter.add cache_hits_c ctx.hits;
    ctx.hits <- 0;
    (* dcrit over the tracked endpoints, same fold as the scratch pass. *)
    let d = ref 0.0 in
    Array.iter
      (fun o -> d := Float.max !d ctx.arrivals.(o))
      (Delay_cache.outputs ctx.cache);
    Array.iter
      (fun g -> d := Float.max !d ctx.endpoint_arrivals.(g))
      (Delay_cache.seq_gates ctx.cache);
    if !d = 0.0 then
      Array.iter (fun a -> d := Float.max !d a) ctx.arrivals;
    ctx.dcrit <- !d

  let update ctx edits =
    Fbb_obs.Span.with_ ~name:"sta.incr_update" @@ fun () ->
    Fbb_obs.Counter.incr incr_updates_c;
    ctx.generation <- ctx.generation + 1;
    List.iter
      (fun (g, v) ->
        if Netlist.is_gate ctx.nl g && ctx.vbs.(g) <> v then begin
          ctx.vbs.(g) <- v;
          let d =
            Delay_cache.nominal_ps ctx.cache g *. factor ctx v
            *. ctx.derate.(g)
          in
          if d <> ctx.delays.(g) then begin
            ctx.delays.(g) <- d;
            push ctx g
          end
        end)
      edits;
    propagate ctx;
    view ctx

  let set_bias ctx bias =
    let edits = ref [] in
    Array.iter
      (fun g ->
        let v = bias g in
        if v <> ctx.vbs.(g) then edits := (g, v) :: !edits)
      (Netlist.gates ctx.nl);
    update ctx !edits

  let set_uniform ctx v = set_bias ctx (fun _ -> v)
end
