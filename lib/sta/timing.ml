open Fbb_netlist
module CL = Fbb_tech.Cell_library

let analyses_c = Fbb_obs.Counter.make "sta.analyses"
let arrival_passes_c = Fbb_obs.Counter.make "sta.arrival_passes"

type t = {
  nl : Netlist.t;
  delays : float array;  (* per node; 0 for ports *)
  arrivals : float array;  (* at node output; at D pin for outputs *)
  endpoint_arrivals : float array;  (* at D pin for flip-flops, else nan *)
  requireds : float array;
  dcrit : float;
}

let netlist t = t.nl
let gate_delay t i = t.delays.(i)
let arrival t i = t.arrivals.(i)
let dcrit t = t.dcrit
let required t i = t.requireds.(i)
let slack t i = t.requireds.(i) -. t.arrivals.(i)

let is_endpoint t i =
  match Netlist.kind t.nl i with
  | Netlist.Output -> true
  | Netlist.Gate c -> CL.is_sequential c.CL.kind
  | Netlist.Input -> false

let node_delay nl ~derate ~bias i =
  match Netlist.kind nl i with
  | Netlist.Input | Netlist.Output -> 0.0
  | Netlist.Gate c ->
    let load = Array.length (Netlist.fanouts nl i) in
    CL.delay_ps (Netlist.library nl) c ~load ~vbs:(bias i) *. derate i

let analyze ?(derate = fun _ -> 1.0) ?(bias = fun _ -> 0.0) nl =
  Fbb_obs.Span.with_ ~name:"sta.analyze" @@ fun () ->
  Fbb_obs.Counter.incr analyses_c;
  let n = Netlist.size nl in
  let order = Netlist.topo_order nl in
  let delays = Array.init n (node_delay nl ~derate ~bias) in
  let arrivals = Array.make n 0.0 in
  let endpoint_arrivals = Array.make n Float.nan in
  (* Forward pass: launch at 0 from inputs, at clock-to-q from flip-flops. *)
  Fbb_obs.Counter.incr arrival_passes_c;
  Array.iter
    (fun i ->
      let fanin_arrival () =
        Array.fold_left
          (fun acc f -> Float.max acc arrivals.(f))
          0.0 (Netlist.fanins nl i)
      in
      match Netlist.kind nl i with
      | Netlist.Input -> arrivals.(i) <- 0.0
      | Netlist.Output -> arrivals.(i) <- fanin_arrival ()
      | Netlist.Gate c ->
        if CL.is_sequential c.CL.kind then arrivals.(i) <- delays.(i)
        else arrivals.(i) <- fanin_arrival () +. delays.(i))
    order;
  (* Flip-flop capture times need the full forward pass (feedback). *)
  Array.iter
    (fun i ->
      if Netlist.is_sequential nl i then
        endpoint_arrivals.(i) <- arrivals.((Netlist.fanins nl i).(0)))
    (Netlist.gates nl);
  let dcrit = ref 0.0 in
  Array.iter
    (fun o -> dcrit := Float.max !dcrit arrivals.(o))
    (Netlist.outputs nl);
  Array.iter
    (fun g ->
      if Netlist.is_sequential nl g then
        dcrit := Float.max !dcrit endpoint_arrivals.(g))
    (Netlist.gates nl);
  (* Fallback for netlists without endpoints. *)
  if !dcrit = 0.0 then Array.iter (fun a -> dcrit := Float.max !dcrit a) arrivals;
  let dcrit = !dcrit in
  (* Backward pass: required times against dcrit; a fanout into an endpoint
     (port or flip-flop D pin) requires arrival by dcrit. *)
  let requireds = Array.make n dcrit in
  let len = Array.length order in
  let reverse = Array.init len (fun k -> order.(len - 1 - k)) in
  Array.iter
    (fun i ->
      let fanouts = Netlist.fanouts nl i in
      if Array.length fanouts > 0 then begin
        let req = ref Float.infinity in
        Array.iter
          (fun fo ->
            let r =
              match Netlist.kind nl fo with
              | Netlist.Output -> dcrit
              | Netlist.Gate c ->
                if CL.is_sequential c.CL.kind then dcrit
                else requireds.(fo) -. delays.(fo)
              | Netlist.Input -> dcrit
            in
            req := Float.min !req r)
          fanouts;
        requireds.(i) <- !req
      end)
    reverse;
  { nl; delays; arrivals; endpoint_arrivals; requireds; dcrit }

let worst_endpoint t =
  let best = ref (-1) in
  let best_a = ref neg_infinity in
  Array.iter
    (fun o ->
      if t.arrivals.(o) > !best_a then begin
        best := o;
        best_a := t.arrivals.(o)
      end)
    (Netlist.outputs t.nl);
  Array.iter
    (fun g ->
      if Netlist.is_sequential t.nl g && t.endpoint_arrivals.(g) > !best_a
      then begin
        best := g;
        best_a := t.endpoint_arrivals.(g)
      end)
    (Netlist.gates t.nl);
  if !best < 0 then invalid_arg "Timing.worst_endpoint: no endpoints";
  !best

let critical_path t =
  let nl = t.nl in
  let ep = worst_endpoint t in
  let start =
    (* Step from the endpoint to the last combinational node feeding it. *)
    (Netlist.fanins nl ep).(0)
  in
  let rec back i acc =
    match Netlist.kind nl i with
    | Netlist.Input -> acc
    | Netlist.Output -> back (Netlist.fanins nl i).(0) acc
    | Netlist.Gate c ->
      if CL.is_sequential c.CL.kind then i :: acc
      else
        let fanins = Netlist.fanins nl i in
        let best = ref fanins.(0) in
        Array.iter
          (fun f -> if t.arrivals.(f) > t.arrivals.(!best) then best := f)
          fanins;
        back !best (i :: acc)
  in
  back start []
