(** Flat per-netlist delay and leakage tables.

    [Timing.analyze] used to walk the cell library (and its alpha-power /
    exponential device model) once per node per analysis; solver loops do
    thousands of analyses over one netlist. A cache flattens everything
    that depends only on the netlist into arrays indexed by node id:

    - [nominal_ps]: each gate's unbiased, underated delay
      [intrinsic + load_per_fanout * fanout] (0 for ports), so a biased
      delay is [nominal_ps * delay_factor vbs * derate] — the same float
      operations in the same association order as
      [Cell_library.delay_ps], hence bit-identical;
    - [leak_nw]: each gate's NBB leakage, so biased leakage is
      [leak_nw * leak_factor vbs];
    - per-bias-level factor tables over the generator's FBB and RBB
      ranges, probed by exact float match ([Bias.voltage] results are
      bit-stable), with a transparent fall-through to the device model
      for off-grid voltages;
    - the topological order, its inverse rank, and the endpoint sets
      (primary outputs, sequential gates) that every pass re-derived.

    A cache is immutable after [create] and safe to share across pool
    domains. *)

open Fbb_netlist

type t

val create : Netlist.t -> t
val netlist : t -> Netlist.t

val topo_order : t -> Netlist.id array
(** Cached [Netlist.topo_order]. Do not mutate. *)

val rank : t -> Netlist.id -> int
(** Position of a node in {!topo_order}. *)

val nominal_ps : t -> Netlist.id -> float
(** Unbiased, underated delay of the node: [intrinsic_ps + load_ps *
    fanout] for gates, 0 for ports. *)

val leak_nw : t -> Netlist.id -> float
(** NBB leakage of the node; 0 for ports. *)

val delay_factor : t -> float -> float
(** [Device.delay_factor] at the given [vbs]: a table lookup when [vbs]
    is one of the generator's FBB/RBB level voltages, a direct model
    evaluation otherwise. Bit-identical either way. *)

val leak_factor : t -> float -> float
(** [Device.leakage_factor], same contract as {!delay_factor}. *)

val delay_ps : t -> Netlist.id -> vbs:float -> float
(** [nominal_ps * delay_factor vbs]; bit-identical to
    [Cell_library.delay_ps] at the node's fanout load. *)

val leakage_nw : t -> Netlist.id -> vbs:float -> float
(** [leak_nw * leak_factor vbs]; bit-identical to
    [Cell_library.leakage_nw]. *)

val outputs : t -> Netlist.id array
(** Primary outputs (cached [Netlist.outputs]). Do not mutate. *)

val seq_gates : t -> Netlist.id array
(** Sequential gate instances, ascending ids. Do not mutate. *)

val design_leakage : t -> bias:(Netlist.id -> float) -> float
(** Total leakage over all gates under a bias assignment, folding gates
    in ascending-id order (bit-identical to a [Cell_library.leakage_nw]
    fold over [Netlist.gates]). *)
