(** Static timing analysis.

    Plays the role of the paper's PrimeTime runs: topological arrival /
    required / slack propagation over the combinational graph.

    Timing model: a gate's delay is its library delay at its fanout load
    and body-bias voltage, times a per-gate derate (used for slowdown
    coefficients and variation injection). Primary inputs arrive at t = 0;
    flip-flop outputs launch at their clock-to-q delay. Endpoints are
    primary outputs and flip-flop D inputs; the critical delay [dcrit] is
    the latest endpoint arrival, and slack is computed against it (the
    design is assumed to be timed exactly at its critical path, as in the
    paper). *)

open Fbb_netlist

type t

val analyze :
  ?derate:(Netlist.id -> float) ->
  ?bias:(Netlist.id -> float) ->
  Netlist.t ->
  t
(** Run STA. [bias] gives each gate's body-bias voltage (default: NBB
    everywhere); [derate] multiplies each gate's delay (default 1.0,
    e.g. [fun _ -> 1.05] for a 5 % uniform slowdown). *)

val netlist : t -> Netlist.t

val gate_delay : t -> Netlist.id -> float
(** The delay of a gate under this analysis' bias and derate; 0 for
    ports. *)

val arrival : t -> Netlist.id -> float
(** Latest arrival time at the node's output (at the D pin for primary
    outputs). *)

val dcrit : t -> float
(** Critical (latest endpoint) arrival. *)

val required : t -> Netlist.id -> float
(** Latest time the node's output may switch without violating [dcrit]. *)

val slack : t -> Netlist.id -> float
(** [required - arrival]; 0 on at least one node of the critical path. *)

val is_endpoint : t -> Netlist.id -> bool
(** Primary output or flip-flop (capturing at its D pin). *)

val critical_path : t -> Netlist.id list
(** Gate sequence of one critical path, source to sink. *)

val worst_endpoint : t -> Netlist.id
(** Endpoint with the latest arrival. *)
