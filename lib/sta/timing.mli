(** Static timing analysis.

    Plays the role of the paper's PrimeTime runs: topological arrival /
    required / slack propagation over the combinational graph.

    Timing model: a gate's delay is its library delay at its fanout load
    and body-bias voltage, times a per-gate derate (used for slowdown
    coefficients and variation injection). Primary inputs arrive at t = 0;
    flip-flop outputs launch at their clock-to-q delay. Endpoints are
    primary outputs and flip-flop D inputs; the critical delay [dcrit] is
    the latest endpoint arrival, and slack is computed against it (the
    design is assumed to be timed exactly at its critical path, as in the
    paper). *)

open Fbb_netlist

type t

val analyze :
  ?cache:Delay_cache.t ->
  ?derate:(Netlist.id -> float) ->
  ?bias:(Netlist.id -> float) ->
  Netlist.t ->
  t
(** Run STA. [bias] gives each gate's body-bias voltage (default: NBB
    everywhere); [derate] multiplies each gate's delay (default 1.0,
    e.g. [fun _ -> 1.05] for a 5 % uniform slowdown). [cache] reuses a
    {!Delay_cache} built for this same netlist (one is built internally
    otherwise); results are bit-identical either way. *)

val netlist : t -> Netlist.t

val gate_delay : t -> Netlist.id -> float
(** The delay of a gate under this analysis' bias and derate; 0 for
    ports. *)

val arrival : t -> Netlist.id -> float
(** Latest arrival time at the node's output (at the D pin for primary
    outputs). *)

val dcrit : t -> float
(** Critical (latest endpoint) arrival. *)

val required : t -> Netlist.id -> float
(** Latest time the node's output may switch without violating [dcrit]. *)

val slack : t -> Netlist.id -> float
(** [required - arrival]; 0 on at least one node of the critical path. *)

val is_endpoint : t -> Netlist.id -> bool
(** Primary output or flip-flop (capturing at its D pin). *)

val critical_path : t -> Netlist.id list
(** Gate sequence of one critical path, source to sink. *)

val worst_endpoint : t -> Netlist.id
(** Endpoint with the latest arrival. *)

(** Incremental re-analysis.

    A context snapshots one analysis (arrays of delays, arrivals and
    tracked endpoint arrivals) and, per batch of bias edits, recomputes
    only the changed gates' delays and re-propagates arrivals through
    their fan-out cones: a binary-heap worklist ordered by topological
    rank guarantees each affected node is recomputed exactly once, and
    propagation cuts off as soon as a node's recomputed arrival carries
    the same bits as before. [dcrit] is maintained from the tracked
    endpoint arrivals. Every view returned is bit-identical to a
    from-scratch {!analyze} under the same derate and bias — the
    determinism suite and the oracle referee rely on this.

    Contexts are mutable and single-domain; the shared immutable pieces
    live in the {!Delay_cache}. Views alias the context's arrays: a view
    is valid until the next [update]/[set_bias] on its context (reading
    a stale view's requireds raises; arrivals of stale views are simply
    the newer state). Counters: [sta.incr_updates] (update batches),
    [sta.nodes_repropagated] (worklist pops — the cone size actually
    touched), [sta.cache_hits] (delay-factor memo hits). *)
module Incremental : sig
  type ctx

  val create :
    ?cache:Delay_cache.t ->
    ?derate:(Netlist.id -> float) ->
    ?bias:(Netlist.id -> float) ->
    Netlist.t ->
    ctx
  (** Run the base analysis. [derate] is frozen for the context's
      lifetime; [bias] is the starting assignment (default NBB). *)

  val analysis : ctx -> t
  (** View of the current state (valid until the next update). *)

  val update : ctx -> (Netlist.id * float) list -> t
  (** Apply a batch of [(gate, vbs)] edits and re-propagate. Edits to
      ports or to a gate's current voltage are no-ops. Returns the
      updated view. *)

  val set_bias : ctx -> (Netlist.id -> float) -> t
  (** Diff the assignment against the current one and {!update} with
      the changed gates. *)

  val set_uniform : ctx -> float -> t
  (** [set_bias] with the same voltage on every gate. *)

  val cache : ctx -> Delay_cache.t
  val netlist : ctx -> Netlist.t
end
