(** fbbd: the concurrent bias-optimization service over the cascade.

    A server listens on TCP for line-delimited JSON {!Protocol}
    requests and multiplexes them over the {!Fbb_par.Pool} domain pool
    through {!Fbb_core.Cascade.solve}:

    - an {b accept} thread takes connections and spawns one reader
      thread per connection (the peer count is bounded by the OS, not
      the server — connections are cheap, requests are admitted);
    - {b admission control}: [Solve] requests enter a bounded queue;
      at capacity the request is shed immediately with a typed
      [Rejected Overload] carrying a retry-after hint derived from the
      queue depth and the recent mean service time. A draining server
      sheds with [Shutting_down];
    - a single {b solver} thread drains the queue in {b batches}: the
      head request plus every queued request with the same
      {!Protocol.workload_key} (up to [batch_max]) share one prepared
      problem context — placement, {!Fbb_sta.Delay_cache}, nominal
      analysis, extracted path set, leakage tables — so same-netlist
      traffic amortizes the expensive pre-processing exactly like the
      Monte-Carlo inner loop does. Batching is an {e amortization},
      never a semantic: response payloads are bit-identical whether a
      request was batched or solved alone, which the determinism suite
      enforces;
    - each request runs under its own {!Fbb_util.Budget} (wall
      deadline measured from admission, so queue wait counts; work
      ticks verbatim) inside a per-request {!Fbb_obs.Context} and a
      [serve.request] span. A request past its deadline still returns
      the cascade's anytime floor — a signed-off [Solved] payload —
      never a timeout error.

    Faults: the ["serve.accept"] site poisons a new connection — its
    first frame is answered with a typed [Rejected Faulted], then the
    connection closes; the ["serve.read"] site degrades one request to
    [Rejected Faulted]. Neither ever kills the server, and solver
    crashes are contained per request the same way.

    Observability: [serve.*] counters (requests, solved, infeasible,
    shed, protocol_errors, faults, batches, batched) plus the
    [serve.latency] and [serve.queue_wait] histograms feed the
    {!Fbb_obs.Telemetry} plane, so a daemon started with a metrics
    port exposes live p50/p99 on [GET /metrics]. *)

type config = {
  addr : string;  (** bind address, default 127.0.0.1 *)
  port : int;  (** 0 picks an ephemeral port *)
  queue_capacity : int;
      (** admission bound; 0 sheds every request (useful in tests) *)
  batch_max : int;  (** max requests per same-netlist batch *)
  max_frame : int;  (** per-line protocol bound, bytes *)
  prepared_cap : int;  (** prepared-context LRU size (netlist keys) *)
  max_gates : int;  (** [Generated] workload admission bound *)
  default_deadline_ms : float option;
      (** applied when a request carries no budget of its own *)
  default_work : int option;
}

val default_config : config
(** port 9620, queue 64, batch 16, 1 MiB frames, 8 prepared contexts,
    50k gates, no default budgets. *)

type t

val start : ?config:config -> unit -> (t, string) result
(** Bind, listen and spawn the accept + solver threads. [Error] on
    bind failure. Installs a [SIGPIPE] ignore (a dead peer must error
    the write, not kill the daemon). *)

val port : t -> int
val stats : t -> Protocol.stats_payload

val drain : t -> unit
(** Graceful drain: stop admitting ([Solve] requests are shed with
    [Shutting_down]; ping/stats still answer), then block until the
    queue and the in-flight batch are empty. Idempotent. *)

val stop : t -> unit
(** {!drain}, then shut every connection down, close the listener and
    join all threads. Idempotent; the server is unusable afterwards. *)
