(** fbbd: the concurrent bias-optimization service over the cascade.

    A server listens on TCP for line-delimited JSON {!Protocol}
    requests and multiplexes them over the {!Fbb_par.Pool} domain pool
    through {!Fbb_core.Cascade.solve}:

    - an {b accept} thread takes connections and spawns one reader
      thread per connection (the peer count is bounded by the OS, not
      the server — connections are cheap, requests are admitted);
    - {b per-tenant fair admission}: [Solve] requests are grouped by
      tenant — the request's [client] id, or a synthetic
      per-connection id when absent — into bounded FIFO lanes. A
      request is shed with a typed [Rejected Overload] when the global
      queue or its own lane is at capacity (the retry-after hint is
      derived from the {e tenant's} lane depth and the recent mean
      service time, so a quiet tenant is told a short backoff even
      while a hot one floods), and with [Shutting_down] while
      draining. Each connection also bounds its outstanding admitted
      requests ([conn_pending_cap]);
    - a single {b solver} thread drains the lanes {b deficit-round-
      robin}: each nonempty lane gets one batch per ring revolution —
      the head request plus every lane-mate with the same
      {!Protocol.workload_key} (up to [batch_max] and the per-tenant
      in-flight cap) sharing one prepared problem context — placement,
      {!Fbb_sta.Delay_cache}, nominal analysis, extracted path set,
      leakage tables. A flooding tenant therefore delays a quiet
      tenant by at most one batch per revolution, never by its whole
      backlog. Batching is an {e amortization}, never a semantic:
      response payloads are bit-identical whether a request was
      batched, solved alone, or solved from a store-loaded context,
      which the determinism suite enforces;
    - the solver is {b supervised}: it heartbeats on every request,
      and a watchdog thread detects a dead solver (escaped exception)
      or a stalled one (heartbeat older than [stall_threshold_s] with
      work in flight), fails the in-flight batch as typed [Faulted],
      and restarts the solver under a fresh generation. After
      [breaker_limit] consecutive restarts without a completed
      request, a {b circuit breaker} opens: queued jobs are flushed
      and new solves shed with [Shutting_down], until a half-open
      probe (one request admitted into an idle server after
      [breaker_cooldown_s]) completes and closes it. Ping/stats and
      the telemetry plane keep answering throughout;
    - with [store_dir] set, prepared contexts are spilled to a
      {b persistent store} ({!Store}) keyed by workload, so a
      restarted daemon loads its first context instead of rebuilding
      it (restart-to-first-Solved is measured by the serve bench).
      Loaded contexts are checksum-verified by the store and
      {e signed off} against a scratch rebuild on first use per
      daemon; a failed signoff disables loads and flushes every
      loaded context (DESIGN §17). Store failures of any kind degrade
      to in-memory-only operation — never to a failed request;
    - each request runs under its own {!Fbb_util.Budget} (wall
      deadline measured from admission, so queue wait counts; work
      ticks verbatim) inside a per-request {!Fbb_obs.Context} and a
      [serve.request] span. A request past its deadline still returns
      the cascade's anytime floor — a signed-off [Solved] payload —
      never a timeout error.

    Connection hygiene: with [idle_timeout_s] set, a peer that parks a
    half-written frame is evicted (typed [Bad_request] close, the
    reader's {!Protocol.read_frame} surfaces [Idle_timeout]); with
    [write_timeout_s] set, a peer that stops reading errors the write
    and is evicted — write-side backpressure bounded further by the
    per-connection pending cap.

    Faults: the ["serve.accept"] site poisons a new connection — its
    first frame is answered with a typed [Rejected Faulted], then the
    connection closes; the ["serve.read"] site degrades one request to
    [Rejected Faulted]; the ["serve.solver_crash"] /
    ["serve.solver_stall"] sites kill or park the solver thread and
    are healed by the watchdog. None of them ever kills the server,
    and per-request solver exceptions are contained the same way.

    Observability: [serve.*] counters (requests, solved, infeasible,
    shed, protocol_errors, faults, batches, batched, tenant.*,
    store.*, solver.restarts, breaker.trips, idle_evictions,
    write_errors) plus the [serve.latency] and [serve.queue_wait]
    histograms and the [serve.solver.heartbeat_age_s] /
    [serve.breaker.open] / [serve.tenant.lanes] gauges feed the
    {!Fbb_obs.Telemetry} plane, so a daemon started with a metrics
    port exposes live p50/p99 on [GET /metrics]. *)

type config = {
  addr : string;  (** bind address, default 127.0.0.1 *)
  port : int;  (** 0 picks an ephemeral port *)
  queue_capacity : int;
      (** global admission bound over all lanes; 0 sheds every request
          (useful in tests) *)
  tenant_queue_cap : int;  (** per-tenant lane bound *)
  tenant_inflight_cap : int;  (** max jobs of one tenant per batch *)
  conn_pending_cap : int;
      (** max admitted-but-unanswered requests per connection *)
  batch_max : int;  (** max requests per same-netlist batch *)
  max_frame : int;  (** per-line protocol bound, bytes *)
  prepared_cap : int;  (** prepared-context LRU size (netlist keys) *)
  max_gates : int;  (** [Generated] workload admission bound *)
  default_deadline_ms : float option;
      (** applied when a request carries no budget of its own *)
  default_work : int option;
  idle_timeout_s : float option;
      (** receive deadline per connection; [None] disables eviction *)
  write_timeout_s : float option;
      (** send deadline per connection; a blocked write past it evicts
          the peer *)
  stall_threshold_s : float option;
      (** solver heartbeat age that counts as a stall (with work in
          flight); [None] disables stall detection (crash detection is
          always on) *)
  watchdog_tick_s : float;  (** supervision poll interval *)
  breaker_limit : int;
      (** consecutive solver restarts (no request completed in
          between) that open the circuit breaker *)
  breaker_cooldown_s : float;
      (** open time before a half-open probe may be admitted *)
  store_dir : string option;
      (** persistent prepared-context store root; [None] disables *)
}

val default_config : config
(** port 9620, queue 64 (64 per tenant, 16 per-tenant in-flight, 256
    pending per connection), batch 16, 1 MiB frames, 8 prepared
    contexts, 50k gates, no default budgets, no idle timeout, 30 s
    write timeout, stall detection off, 50 ms watchdog tick, breaker
    at 5 restarts / 1 s cooldown, no persistent store. *)

type t

val start : ?config:config -> unit -> (t, string) result
(** Bind, listen and spawn the accept + solver + watchdog threads.
    [Error] on bind failure or an unusable [store_dir]. Installs a
    [SIGPIPE] ignore (a dead peer must error the write, not kill the
    daemon). *)

val port : t -> int
val stats : t -> Protocol.stats_payload

val breaker_open : t -> bool
(** Whether the restart circuit breaker is currently open (chaos tests
    assert it never wedges). *)

val drain : t -> unit
(** Graceful drain: stop admitting ([Solve] requests are shed with
    [Shutting_down]; ping/stats still answer), then block until the
    queue and the in-flight batch are empty. Idempotent. *)

val stop : t -> unit
(** {!drain}, then shut every connection down, close the listener and
    join all threads (including retired solver generations). Idempotent;
    the server is unusable afterwards. *)
