(** The fbbd wire protocol: line-delimited JSON over TCP.

    One request or response per line ([\n]-terminated, no newlines
    inside a frame — {!Fbb_util.Json} never emits any). The codecs are
    total: every decode failure comes back as a typed [Error], never an
    exception, so a garbage peer cannot crash a connection handler.
    Round-trips are exact — [decode (encode v) = Ok v] for every value
    whose floats are finite (JSON has no inf/nan), which the QCheck
    suite pins down.

    Frame reading is bounded: a line longer than the reader's
    [max_frame] is a typed {!read_error}, and EOF in the middle of a
    line is distinguished from a clean close so the server can answer
    a truncated frame before hanging up. *)

(** {2 Requests} *)

type workload =
  | Benchmark of string  (** a built-in {!Fbb_netlist.Benchmarks} design *)
  | Generated of { seed : int; gates : int; rows : int }
      (** {!Fbb_netlist.Generators.random_module} placed on [rows] rows *)

val workload_key : workload -> string
(** Canonical netlist identity, e.g. ["bench:c5315"] or
    ["gen:7:1200:8"]. Requests with equal keys share one prepared
    problem context (delay cache, nominal STA, path set) in the
    server's batcher. *)

type solve = {
  id : string;  (** caller-chosen request id, echoed on the response *)
  client : string option;
      (** tenant id for per-client fair admission; [None] groups the
          request under its connection's synthetic tenant *)
  workload : workload;
  beta : float;  (** slowdown coefficient, fraction (0.05 = 5%) *)
  max_clusters : int;
  deadline_ms : float option;
      (** wall-clock budget measured from {e admission}: queue wait
          counts, so a request that waited out its deadline still gets
          the anytime floor, not an error *)
  work_budget : int option;
      (** deterministic work-tick budget ({!Fbb_util.Budget}); same
          budget, same payload, at any [--jobs] *)
}

type request =
  | Solve of solve
  | Ping of { id : string }
  | Stats of { id : string }

(** {2 Responses} *)

type attempt = {
  stage : string;  (** ["ilp"|"bb"|"heuristic"|"single_bb"] *)
  status : string;  (** {!Fbb_core.Cascade.status}, rendered *)
  leakage_nw : float option;
  work : int;
}

type reject =
  | Overload of { retry_after_ms : float }
      (** admission queue at capacity; retry after the hinted backoff *)
  | Shutting_down  (** the daemon is draining *)
  | Bad_request of string  (** malformed frame or invalid parameters *)
  | Faulted of string
      (** the request was degraded by an internal error or an injected
          ["serve.accept"]/["serve.read"] fault *)

type stats_payload = {
  queue_depth : int;
  in_flight : int;
  served : int;
  shed : int;
  draining : bool;
  queue_p50_ms : float option;
      (** queue-wait percentiles over the server's lifetime, [None]
          until something has been dequeued *)
  queue_p90_ms : float option;
  queue_p99_ms : float option;
}

type response =
  | Solved of {
      id : string;
      stage : string;
      levels : int array;
      leakage_nw : float;
      gap_pct : float option;
      optimal : bool;
      exhausted : bool;
      attempts : attempt list;
      elapsed_ms : float;
    }
  | Infeasible of { id : string; elapsed_ms : float }
  | Rejected of { id : string; reject : reject }
  | Pong of { id : string }
  | Stats_reply of { id : string; stats : stats_payload }

val response_id : response -> string

(** {2 Codecs} *)

val encode_request : request -> string
(** One JSON line, without the trailing newline. *)

val decode_request : string -> (request, string) result

val encode_response : response -> string
val decode_response : string -> (response, string) result

(** {2 Bounded frame reading} *)

val default_max_frame : int
(** 1 MiB. *)

type read_error =
  | Closed  (** clean EOF at a frame boundary *)
  | Truncated  (** EOF in the middle of a frame *)
  | Oversized of int  (** frame exceeded the limit (the limit, bytes) *)
  | Idle_timeout
      (** the socket's receive deadline ([SO_RCVTIMEO]) expired before
          a complete frame arrived — the slow-loris signal, distinct
          from [Closed]/[Truncated] so evictions are observable *)
  | Io of string  (** transport error, rendered *)

val read_error_to_string : read_error -> string

type reader

val reader : ?max_frame:int -> Unix.file_descr -> reader
(** A buffered line reader over [fd]. The reader owns nothing: closing
    [fd] is the caller's business. *)

val read_frame : reader -> (string, read_error) result
(** Next [\n]-terminated line, without the terminator. After
    [Oversized] the stream cannot be re-synchronized; close the
    connection. *)

val write_frame : Unix.file_descr -> string -> (unit, string) result
(** Write [line ^ "\n"], handling short writes; transport errors come
    back as [Error], never raise. *)
