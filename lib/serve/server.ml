(* The fbbd daemon core. Thread layout:

     accept thread ──spawns──> one reader thread per connection
                                   │ admission (bounded queue)
                                   v
                            solver thread ── batches ──> Cascade.solve
                                                          (lib/par pool)

   Readers only parse, admit and answer ping/stats; every solve runs on
   the single solver thread, which multiplexes the domain pool that the
   cascade stages fan out on. One solver thread is deliberate: the pool
   already saturates the machine for a single request, a second
   concurrent solve would only fight it for domains, and the strict
   admission order makes latency accounting and the drain barrier
   trivial. Concurrency lives at the edges (readers/writers), parallelism
   in the pool.

   Responses are written by whichever thread produced them (reader for
   rejects and ping/stats, solver for solve payloads) under a
   per-connection write mutex, so frames never interleave. A request's
   payload is a pure function of (workload, beta, clusters, work
   budget): batching, queue order and pool width cannot change it — the
   determinism suite replays a script at jobs 1 vs 4 and demands
   bit-identical payloads per request id. *)

module P = Protocol
module Budget = Fbb_util.Budget
module Clock = Fbb_obs.Clock
module Counter = Fbb_obs.Counter
module Histogram = Fbb_obs.Histogram
module Span = Fbb_obs.Span
module Flight = Fbb_obs.Flight
module Fault = Fbb_fault.Fault

type config = {
  addr : string;
  port : int;
  queue_capacity : int;
  batch_max : int;
  max_frame : int;
  prepared_cap : int;
  max_gates : int;
  default_deadline_ms : float option;
  default_work : int option;
}

let default_config =
  {
    addr = "127.0.0.1";
    port = 9620;
    queue_capacity = 64;
    batch_max = 16;
    max_frame = P.default_max_frame;
    prepared_cap = 8;
    max_gates = 50_000;
    default_deadline_ms = None;
    default_work = None;
  }

(* ----- counters / histograms ------------------------------------------- *)

let c_requests = lazy (Counter.make "serve.requests")
let c_solved = lazy (Counter.make "serve.solved")
let c_infeasible = lazy (Counter.make "serve.infeasible")
let c_shed_overload = lazy (Counter.make "serve.shed.overload")
let c_shed_draining = lazy (Counter.make "serve.shed.draining")
let c_bad_request = lazy (Counter.make "serve.bad_request")
let c_protocol_errors = lazy (Counter.make "serve.protocol_errors")
let c_fault_accept = lazy (Counter.make "serve.faults.accept")
let c_fault_read = lazy (Counter.make "serve.faults.read")
let c_request_faults = lazy (Counter.make "serve.request_faults")
let c_batches = lazy (Counter.make "serve.batches")
let c_batched = lazy (Counter.make "serve.batched")
let c_prepares = lazy (Counter.make "serve.prepares")
let c_prepared_hits = lazy (Counter.make "serve.prepared_hits")
(* Latency histograms carry per-bucket trace-id exemplars: a scraped
   p99 bucket links straight to the flight-recorder entry of the last
   request that landed in it. *)
let h_latency =
  lazy
    (let h = Histogram.make "serve.latency" in
     Histogram.enable_exemplars h;
     h)

let h_queue_wait =
  lazy
    (let h = Histogram.make "serve.queue_wait" in
     Histogram.enable_exemplars h;
     h)

(* ----- connections ------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  wlock : Mutex.t;  (* serializes writes; also guards [closed] *)
  mutable closed : bool;
}

(* [closed] guards against the fd-reuse hazard: once the reader closes
   the descriptor the OS may recycle its number, so every later write
   or shutdown must first check the flag under the same lock. *)
let close_conn conn =
  Mutex.protect conn.wlock @@ fun () ->
  if not conn.closed then begin
    conn.closed <- true;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

let shutdown_conn conn =
  Mutex.protect conn.wlock @@ fun () ->
  if not conn.closed then
    try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let respond conn resp =
  let line = P.encode_response resp in
  Mutex.protect conn.wlock @@ fun () ->
  if not conn.closed then
    (* A peer that hung up mid-response is not an error worth acting
       on: the reader thread sees the close on its side. *)
    ignore (P.write_frame conn.fd line)

(* ----- prepared problem contexts ---------------------------------------- *)

(* Everything about a netlist that every request for it re-uses: the
   placement, the flat delay/leakage tables, the nominal analysis, the
   extracted per-cell longest path set and the per-row leakage tables.
   [Problem.build] with these in hand skips STA, extraction and the
   leakage walks — the same amortization Monte-Carlo uses per die —
   and documents the results as bit-identical with or without them. *)
type prepared = {
  placement : Fbb_place.Placement.t;
  cache : Fbb_sta.Delay_cache.t;
  analysis : Fbb_sta.Timing.t;
  paths : Fbb_sta.Paths.path array;
  row_leak : float array array;
}

let build_placement = function
  | P.Benchmark name ->
    let spec = Fbb_netlist.Benchmarks.find name in
    let nl = spec.Fbb_netlist.Benchmarks.generate () in
    Fbb_place.Placement.place ~target_rows:spec.Fbb_netlist.Benchmarks.rows nl
  | P.Generated { seed; gates; rows } ->
    let nl = Fbb_netlist.Generators.random_module ~seed ~gates () in
    Fbb_place.Placement.place ~target_rows:rows nl

let prepare workload =
  Span.with_ ~name:"serve.prepare" @@ fun () ->
  Counter.incr (Lazy.force c_prepares);
  let placement = build_placement workload in
  let nl = Fbb_place.Placement.netlist placement in
  let cache = Fbb_sta.Delay_cache.create nl in
  let analysis = Fbb_sta.Timing.analyze ~cache nl in
  let paths = Fbb_sta.Paths.through_cell analysis in
  let row_leak =
    Fbb_core.Problem.leak_tables placement ~levels:(Fbb_tech.Bias.levels ())
  in
  { placement; cache; analysis; paths; row_leak }

(* ----- server state ----------------------------------------------------- *)

type job = { solve : P.solve; conn : conn; admitted_s : float }

type t = {
  cfg : config;
  sock : Unix.file_descr;
  port : int;
  lock : Mutex.t;
  nonempty : Condition.t;  (* queue gained work, or stopping *)
  idle : Condition.t;  (* queue and in-flight both empty *)
  mutable queue : job list;  (* FIFO; depth tracked separately *)
  mutable depth : int;
  mutable in_flight : int;
  mutable served : int;
  mutable shed : int;
  mutable draining : bool;
  mutable stopping : bool;
  mutable mean_service_s : float;  (* EWMA feeding the retry-after hint *)
  prepared : (string, prepared) Hashtbl.t;
  mutable lru : string list;  (* most recent first *)
  mutable conns : conn list;
  mutable threads : Thread.t list;  (* reader threads, for the final join *)
  mutable accept_thread : Thread.t option;
  mutable solver_thread : Thread.t option;
}

let port t = t.port

let stats t : P.stats_payload =
  let pct p =
    Option.map
      (fun s -> s *. 1000.0)
      (Histogram.percentile_opt (Lazy.force h_queue_wait) p)
  in
  Mutex.protect t.lock @@ fun () ->
  {
    P.queue_depth = t.depth;
    in_flight = t.in_flight;
    served = t.served;
    shed = t.shed;
    draining = t.draining || t.stopping;
    queue_p50_ms = pct 0.50;
    queue_p90_ms = pct 0.90;
    queue_p99_ms = pct 0.99;
  }

(* ----- validation ------------------------------------------------------- *)

let validate cfg (s : P.solve) =
  if not (Float.is_finite s.beta) || s.beta <= 0.0 || s.beta > 1.0 then
    Error "beta must be in (0, 1]"
  else if s.max_clusters < 1 then Error "clusters must be >= 1"
  else if
    match s.deadline_ms with
    | Some d -> (not (Float.is_finite d)) || d < 0.0
    | None -> false
  then Error "deadline_ms must be a finite number >= 0"
  else if (match s.work_budget with Some w -> w < 0 | None -> false) then
    Error "work_budget must be >= 0"
  else
    match s.workload with
    | P.Benchmark name -> (
      match Fbb_netlist.Benchmarks.find name with
      | _ -> Ok ()
      | exception Not_found ->
        Error (Printf.sprintf "unknown benchmark %S" name))
    | P.Generated { seed = _; gates; rows } ->
      if gates < 8 || gates > cfg.max_gates then
        Error (Printf.sprintf "gates must be in [8, %d]" cfg.max_gates)
      else if rows < 2 || rows > 4096 then Error "rows must be in [2, 4096]"
      else Ok ()

(* ----- admission -------------------------------------------------------- *)

let retry_after_ms t =
  (* Rough clearing time for the backlog ahead of the shed request:
     depth plus the in-flight batch, at the recent mean service time
     (floored so a cold server still hints a real backoff). *)
  let per = Float.max 0.002 t.mean_service_s in
  float_of_int (t.depth + t.in_flight + 1) *. per *. 1000.0

let admit t conn (s : P.solve) =
  Counter.incr (Lazy.force c_requests);
  match validate t.cfg s with
  | Error msg ->
    Counter.incr (Lazy.force c_bad_request);
    respond conn (P.Rejected { id = s.id; reject = P.Bad_request msg })
  | Ok () ->
    let verdict =
      Mutex.protect t.lock @@ fun () ->
      if t.draining || t.stopping then begin
        t.shed <- t.shed + 1;
        `Shed_draining
      end
      else if t.depth >= t.cfg.queue_capacity then begin
        t.shed <- t.shed + 1;
        `Shed_overload (retry_after_ms t)
      end
      else begin
        t.queue <- t.queue @ [ { solve = s; conn; admitted_s = Clock.now_s () } ];
        t.depth <- t.depth + 1;
        Condition.signal t.nonempty;
        `Admitted
      end
    in
    (* Shed requests never reach the solver, so they are recorded here:
       the flight recorder retains every one of them (a shed storm is
       exactly what post-hoc debugging needs to see), with an empty
       span tree since no work ran. *)
    let record_shed reason =
      if s.id <> "" then
        Flight.finish ~trace:("req:" ^ s.id) ~req_id:s.id
          ~outcome:(Flight.Shed reason) ~exhausted:false ~queue_wait_s:0.0
          ~latency_s:0.0 ~stages:[] ~counters:[]
    in
    (match verdict with
    | `Admitted -> ()
    | `Shed_draining ->
      Counter.incr (Lazy.force c_shed_draining);
      record_shed "shutting_down";
      respond conn (P.Rejected { id = s.id; reject = P.Shutting_down })
    | `Shed_overload retry_after_ms ->
      Counter.incr (Lazy.force c_shed_overload);
      record_shed "overload";
      respond conn
        (P.Rejected { id = s.id; reject = P.Overload { retry_after_ms } }))

(* ----- the solver thread ------------------------------------------------ *)

let status_str = function
  | Fbb_core.Cascade.Accepted -> "accepted"
  | Fbb_core.Cascade.No_candidate -> "no_candidate"
  | Fbb_core.Cascade.Rejected -> "rejected"
  | Fbb_core.Cascade.Exhausted -> "exhausted"
  | Fbb_core.Cascade.Crashed m -> "crashed: " ^ m

let find_prepared t key workload =
  (* Solver-thread-only state: no lock. *)
  match Hashtbl.find_opt t.prepared key with
  | Some p ->
    Counter.incr (Lazy.force c_prepared_hits);
    t.lru <- key :: List.filter (fun k -> k <> key) t.lru;
    Ok p
  | None -> (
    match prepare workload with
    | exception exn -> Error (Printexc.to_string exn)
    | p ->
      Hashtbl.replace t.prepared key p;
      t.lru <- key :: List.filter (fun k -> k <> key) t.lru;
      (match List.filteri (fun i _ -> i >= t.cfg.prepared_cap) t.lru with
      | [] -> ()
      | evicted ->
        List.iter (Hashtbl.remove t.prepared) evicted;
        t.lru <- List.filteri (fun i _ -> i < t.cfg.prepared_cap) t.lru);
      Ok p)

(* Counter deltas across one solve, attributed to that request in its
   flight record. The solver thread is serial, so the diff of the
   global totals brackets exactly this request's increments (plus any
   concurrent reader-thread bumps — ping/stats counters, noted as
   such); a per-request counter set would cost the hot path more than
   this ambiguity is worth. *)
let counter_deltas ~before ~after =
  let prev = Hashtbl.create 16 in
  List.iter (fun (n, v) -> Hashtbl.replace prev n v) before;
  List.filter_map
    (fun (n, v) ->
      let d =
        v - (match Hashtbl.find_opt prev n with Some p -> p | None -> 0)
      in
      if d <> 0 then Some (n, d) else None)
    after

let solve_one t prep (job : job) =
  let s = job.solve in
  let t0 = Clock.now_s () in
  let waited = t0 -. job.admitted_s in
  let trace = if s.id = "" then None else Some ("req:" ^ s.id) in
  Histogram.observe ?exemplar:trace (Lazy.force h_queue_wait) waited;
  (match trace with
  | Some tr -> Flight.begin_request ~trace:tr
  | None -> ());
  let counters_before =
    match trace with Some _ -> Counter.totals () | None -> []
  in
  let deadline_ms =
    match s.deadline_ms with Some _ as d -> d | None -> t.cfg.default_deadline_ms
  in
  let work =
    match s.work_budget with Some _ as w -> w | None -> t.cfg.default_work
  in
  let budget =
    match (deadline_ms, work) with
    | None, None -> Budget.unlimited
    | d, w ->
      (* The deadline is measured from admission: a request that waited
         in the queue arrives here with only its remainder (possibly
         zero — the cascade's single-BB floor still returns a
         signed-off anytime answer). *)
      Budget.create
        ?deadline_s:
          (Option.map (fun ms -> Float.max 0.0 ((ms /. 1000.0) -. waited)) d)
        ?work:w ()
  in
  let resp, flight_outcome, flight_exhausted, flight_stages =
    Fbb_obs.Context.with_ (Fbb_obs.Context.make ?trace ()) @@ fun () ->
    Span.with_ ~name:"serve.request" @@ fun () ->
    match
      let problem =
        Fbb_core.Problem.build ~cache:prep.cache ~analysis:prep.analysis
          ~paths:prep.paths ~row_leak:prep.row_leak ~beta:s.beta prep.placement
      in
      Fbb_core.Cascade.solve ~max_clusters:s.max_clusters ~budget problem
    with
    | exception exn ->
      (* The cascade already contains stage crashes; anything escaping
         here (problem build, injected pool faults at the join point)
         degrades this one request, never the server. *)
      Counter.incr (Lazy.force c_request_faults);
      let msg = Printexc.to_string exn in
      ( P.Rejected { id = s.id; reject = P.Faulted msg },
        Flight.Errored msg,
        false,
        [] )
    | r -> (
      let elapsed_ms = (Clock.now_s () -. t0) *. 1000.0 in
      let attempts =
        List.map
          (fun (a : Fbb_core.Cascade.attempt) ->
            {
              P.stage = Fbb_core.Cascade.stage_name a.stage;
              status = status_str a.status;
              leakage_nw = a.leakage_nw;
              work = a.work_spent;
            })
          r.Fbb_core.Cascade.attempts
      in
      let stages =
        List.map
          (fun (a : P.attempt) ->
            {
              Flight.st_stage = a.stage;
              st_status = a.status;
              st_work = a.work;
              st_leakage_nw = a.leakage_nw;
            })
          attempts
      in
      let exhausted = r.Fbb_core.Cascade.exhausted in
      match r.Fbb_core.Cascade.outcome with
      | Fbb_core.Cascade.Infeasible ->
        Counter.incr (Lazy.force c_infeasible);
        (P.Infeasible { id = s.id; elapsed_ms }, Flight.Infeasible, exhausted,
         stages)
      | Fbb_core.Cascade.Solved { stage; levels; leakage_nw; gap_pct; optimal }
        ->
        Counter.incr (Lazy.force c_solved);
        let stage = Fbb_core.Cascade.stage_name stage in
        ( P.Solved
            {
              id = s.id;
              stage;
              levels;
              leakage_nw;
              gap_pct;
              optimal;
              exhausted;
              attempts;
              elapsed_ms;
            },
          Flight.Solved stage,
          exhausted,
          stages ))
  in
  let total_s = Clock.now_s () -. job.admitted_s in
  Histogram.observe ?exemplar:trace (Lazy.force h_latency) total_s;
  (match trace with
  | Some tr ->
    Flight.finish ~trace:tr ~req_id:s.id ~outcome:flight_outcome
      ~exhausted:flight_exhausted ~queue_wait_s:waited ~latency_s:total_s
      ~stages:flight_stages
      ~counters:(counter_deltas ~before:counters_before ~after:(Counter.totals ()))
  | None -> ());
  (* EWMA of pure service time, the retry-after hint's unit. The
     accounting lands before the response is written, so a client that
     queries stats right after its reply always sees itself served. *)
  let service_s = Clock.now_s () -. t0 in
  Mutex.protect t.lock (fun () ->
      t.served <- t.served + 1;
      t.in_flight <- t.in_flight - 1;
      t.mean_service_s <-
        (if t.mean_service_s = 0.0 then service_s
         else (0.8 *. t.mean_service_s) +. (0.2 *. service_s)));
  respond job.conn resp

(* Head-of-queue batch: the oldest job plus every queued job sharing
   its netlist key, up to [batch_max], others left in order. *)
let pop_batch t =
  match t.queue with
  | [] -> None
  | head :: rest ->
    let key = P.workload_key head.solve.P.workload in
    let batch, kept =
      List.fold_left
        (fun (batch, kept) job ->
          if
            List.length batch < t.cfg.batch_max
            && P.workload_key job.solve.P.workload = key
          then (job :: batch, kept)
          else (batch, job :: kept))
        ([ head ], []) rest
    in
    let batch = List.rev batch and kept = List.rev kept in
    t.queue <- kept;
    t.depth <- List.length kept;
    t.in_flight <- List.length batch;
    Some (key, batch)

let rec solver_loop t =
  Mutex.lock t.lock;
  while t.queue = [] && not t.stopping do
    Condition.wait t.nonempty t.lock
  done;
  let popped = pop_batch t in
  Mutex.unlock t.lock;
  match popped with
  | None -> ()  (* stopping with an empty queue *)
  | Some (key, batch) ->
    let n = List.length batch in
    if n > 1 then begin
      Counter.incr (Lazy.force c_batches);
      Counter.add (Lazy.force c_batched) (n - 1)
    end;
    (match find_prepared t key (List.hd batch).solve.P.workload with
    | Ok prep -> List.iter (solve_one t prep) batch
    | Error msg ->
      (* The workload passed validation but failed to build (e.g. a
         degenerate generated netlist): every batch member gets the
         same typed answer. *)
      List.iter
        (fun (job : job) ->
          Counter.incr (Lazy.force c_bad_request);
          Mutex.protect t.lock (fun () ->
              t.served <- t.served + 1;
              t.in_flight <- t.in_flight - 1);
          respond job.conn
            (P.Rejected
               { id = job.solve.P.id; reject = P.Bad_request ("build: " ^ msg) }))
        batch);
    Mutex.protect t.lock (fun () ->
        if t.queue = [] && t.in_flight = 0 then Condition.broadcast t.idle);
    solver_loop t

(* ----- connection reader ------------------------------------------------ *)

let request_id = function
  | Ok (P.Solve { id; _ }) | Ok (P.Ping { id }) | Ok (P.Stats { id }) -> id
  | Error _ -> ""

let handle_conn t conn =
  let reader = P.reader ~max_frame:t.cfg.max_frame conn.fd in
  let rec loop () =
    match P.read_frame reader with
    | Error P.Closed | Error (P.Io _) -> ()
    | Error P.Truncated ->
      (* The peer shut its write side mid-frame; it may still read, so
         answer before hanging up. *)
      Counter.incr (Lazy.force c_protocol_errors);
      respond conn
        (P.Rejected { id = ""; reject = P.Bad_request "truncated frame" })
    | Error (P.Oversized limit) ->
      (* Line framing cannot re-synchronize after an over-long frame:
         answer and close. *)
      Counter.incr (Lazy.force c_protocol_errors);
      respond conn
        (P.Rejected
           {
             id = "";
             reject =
               P.Bad_request (Printf.sprintf "frame exceeds %d bytes" limit);
           })
    | Ok line ->
      (if Fault.fire "serve.read" then begin
         (* Injected read fault: this request degrades to a typed
            reject; the connection and the server live on. *)
         Counter.incr (Lazy.force c_fault_read);
         respond conn
           (P.Rejected
              {
                id = request_id (P.decode_request line);
                reject = P.Faulted "injected serve.read fault";
              })
       end
       else
         match P.decode_request line with
         | Error msg ->
           Counter.incr (Lazy.force c_protocol_errors);
           respond conn (P.Rejected { id = ""; reject = P.Bad_request msg })
         | Ok (P.Ping { id }) -> respond conn (P.Pong { id })
         | Ok (P.Stats { id }) ->
           respond conn (P.Stats_reply { id; stats = stats t })
         | Ok (P.Solve s) -> admit t conn s);
      loop ()
  in
  (try loop () with _ -> ());
  close_conn conn

let handle_poisoned t conn =
  let reader = P.reader ~max_frame:t.cfg.max_frame conn.fd in
  (try
     match P.read_frame reader with
     | Ok line ->
       respond conn
         (P.Rejected
            {
              id = request_id (P.decode_request line);
              reject = P.Faulted "injected serve.accept fault";
            })
     | Error _ -> ()
   with _ -> ());
  close_conn conn

(* ----- accept loop ------------------------------------------------------ *)

let stopping t = Mutex.protect t.lock (fun () -> t.stopping)

let rec accept_loop t =
  match Unix.accept t.sock with
  | fd, _ ->
    if stopping t then (try Unix.close fd with Unix.Unix_error _ -> ())
    else begin
      (* An accept-faulted connection still answers its first frame —
         with a typed reject — before closing: writing the reject
         eagerly at accept would race the peer's request against the
         close (the RST can eat the greeting), and a fault that
         degrades to a lost write is indistinguishable from a crash. *)
      let poisoned = Fault.fire "serve.accept" in
      if poisoned then Counter.incr (Lazy.force c_fault_accept);
      let conn = { fd; wlock = Mutex.create (); closed = false } in
      let th =
        Thread.create
          (fun () ->
            if poisoned then handle_poisoned t conn else handle_conn t conn)
          ()
      in
      Mutex.protect t.lock (fun () ->
          t.conns <- conn :: t.conns;
          t.threads <- th :: t.threads)
    end;
    if not (stopping t) then accept_loop t
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
    if not (stopping t) then accept_loop t
  | exception _ ->
    if not (stopping t) then begin
      Thread.delay 0.05;
      accept_loop t
    end

(* ----- lifecycle -------------------------------------------------------- *)

let start ?(config = default_config) () =
  (* A peer that disappears between frames must error the write, not
     deliver SIGPIPE to the whole daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock
      (Unix.ADDR_INET (Unix.inet_addr_of_string config.addr, config.port));
    Unix.listen sock 64
  with
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "bind %s:%d: %s" config.addr config.port
         (Unix.error_message e))
  | () ->
    let port =
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> config.port
    in
    let t =
      {
        cfg = config;
        sock;
        port;
        lock = Mutex.create ();
        nonempty = Condition.create ();
        idle = Condition.create ();
        queue = [];
        depth = 0;
        in_flight = 0;
        served = 0;
        shed = 0;
        draining = false;
        stopping = false;
        mean_service_s = 0.0;
        prepared = Hashtbl.create 8;
        lru = [];
        conns = [];
        threads = [];
        accept_thread = None;
        solver_thread = None;
      }
    in
    t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
    t.solver_thread <- Some (Thread.create (fun () -> solver_loop t) ());
    Ok t

let drain t =
  Mutex.lock t.lock;
  t.draining <- true;
  while t.depth > 0 || t.in_flight > 0 do
    Condition.wait t.idle t.lock
  done;
  Mutex.unlock t.lock

(* Wake the blocking accept(2) with a throwaway self-connection — the
   same portable trick Telemetry.shutdown uses. *)
let wake_accept t =
  try
    let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close s with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, t.port)))
  with _ -> ()

let stop t =
  drain t;
  let already =
    Mutex.protect t.lock @@ fun () ->
    let was = t.stopping in
    t.stopping <- true;
    Condition.broadcast t.nonempty;
    was
  in
  if not already then begin
    wake_accept t;
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    t.accept_thread <- None;
    (match t.solver_thread with Some th -> Thread.join th | None -> ());
    t.solver_thread <- None;
    let conns, threads =
      Mutex.protect t.lock (fun () -> (t.conns, t.threads))
    in
    List.iter shutdown_conn conns;
    List.iter Thread.join threads;
    List.iter close_conn conns;
    Mutex.protect t.lock (fun () ->
        t.conns <- [];
        t.threads <- []);
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end
