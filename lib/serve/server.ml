(* The fbbd daemon core. Thread layout:

     accept thread ──spawns──> one reader thread per connection
                                   │ admission (per-tenant lanes)
                                   v
                            solver thread ── batches ──> Cascade.solve
                                   ▲                      (lib/par pool)
                                   │ restarts
                            watchdog thread

   Readers only parse, admit and answer ping/stats; every solve runs on
   the single solver thread, which multiplexes the domain pool that the
   cascade stages fan out on. One solver thread is deliberate: the pool
   already saturates the machine for a single request, a second
   concurrent solve would only fight it for domains, and the strict
   admission order makes latency accounting and the drain barrier
   trivial. Concurrency lives at the edges (readers/writers), parallelism
   in the pool.

   Admission is per-tenant fair: each tenant (the request's [client] id,
   or a synthetic per-connection id) owns a bounded FIFO lane, and the
   solver drains lanes deficit-round-robin — one same-netlist batch per
   visit — so a flooding tenant saturates only its own lane and sheds
   [Overload] while a quiet tenant's requests keep their place near the
   head of their own short lane.

   The solver is supervised: it heartbeats under the server lock, and a
   watchdog thread detects a dead solver (escaped exception, injected
   ["serve.solver_crash"]) or a stalled one (heartbeat older than the
   stall threshold while work is in flight, injected
   ["serve.solver_stall"]), fails the in-flight batch as typed
   [Faulted], and restarts the solver under a fresh generation. A
   bounded circuit breaker turns repeated back-to-back restarts into
   [Shutting_down] sheds until a half-open probe succeeds.

   Responses are written by whichever thread produced them (reader for
   rejects and ping/stats, solver for solve payloads, watchdog for
   crash failures) under a per-connection write mutex, so frames never
   interleave; a per-job answered flag makes every answer exactly-once
   even when the watchdog and a lagging solver race. A request's
   payload is a pure function of (workload, beta, clusters, work
   budget): batching, lane order, the persistent context store and
   pool width cannot change it — the determinism suite replays a
   script at jobs 1 vs 4 and demands bit-identical payloads per
   request id. *)

module P = Protocol
module Budget = Fbb_util.Budget
module Clock = Fbb_obs.Clock
module Counter = Fbb_obs.Counter
module Gauge = Fbb_obs.Counter.Gauge
module Histogram = Fbb_obs.Histogram
module Span = Fbb_obs.Span
module Flight = Fbb_obs.Flight
module Fault = Fbb_fault.Fault

type config = {
  addr : string;
  port : int;
  queue_capacity : int;
  tenant_queue_cap : int;
  tenant_inflight_cap : int;
  conn_pending_cap : int;
  batch_max : int;
  max_frame : int;
  prepared_cap : int;
  max_gates : int;
  default_deadline_ms : float option;
  default_work : int option;
  idle_timeout_s : float option;
  write_timeout_s : float option;
  stall_threshold_s : float option;
  watchdog_tick_s : float;
  breaker_limit : int;
  breaker_cooldown_s : float;
  store_dir : string option;
}

let default_config =
  {
    addr = "127.0.0.1";
    port = 9620;
    queue_capacity = 64;
    tenant_queue_cap = 64;
    tenant_inflight_cap = 16;
    conn_pending_cap = 256;
    batch_max = 16;
    max_frame = P.default_max_frame;
    prepared_cap = 8;
    max_gates = 50_000;
    default_deadline_ms = None;
    default_work = None;
    idle_timeout_s = None;
    write_timeout_s = Some 30.0;
    stall_threshold_s = None;
    watchdog_tick_s = 0.05;
    breaker_limit = 5;
    breaker_cooldown_s = 1.0;
    store_dir = None;
  }

(* ----- counters / histograms ------------------------------------------- *)

let c_requests = lazy (Counter.make "serve.requests")
let c_solved = lazy (Counter.make "serve.solved")
let c_infeasible = lazy (Counter.make "serve.infeasible")
let c_shed_overload = lazy (Counter.make "serve.shed.overload")
let c_shed_draining = lazy (Counter.make "serve.shed.draining")
let c_bad_request = lazy (Counter.make "serve.bad_request")
let c_protocol_errors = lazy (Counter.make "serve.protocol_errors")
let c_fault_accept = lazy (Counter.make "serve.faults.accept")
let c_fault_read = lazy (Counter.make "serve.faults.read")
let c_fault_solver_crash = lazy (Counter.make "serve.faults.solver_crash")
let c_fault_solver_stall = lazy (Counter.make "serve.faults.solver_stall")
let c_request_faults = lazy (Counter.make "serve.request_faults")
let c_batches = lazy (Counter.make "serve.batches")
let c_batched = lazy (Counter.make "serve.batched")
let c_prepares = lazy (Counter.make "serve.prepares")
let c_prepared_hits = lazy (Counter.make "serve.prepared_hits")

(* Tenant fairness plane. *)
let c_tenant_shed = lazy (Counter.make "serve.tenant.shed")
let c_conn_shed = lazy (Counter.make "serve.conn.shed")
let g_tenant_lanes = lazy (Gauge.make "serve.tenant.lanes")

(* Connection hygiene. *)
let c_idle_evictions = lazy (Counter.make "serve.idle_evictions")
let c_write_errors = lazy (Counter.make "serve.write_errors")

(* Solver supervision. *)
let c_solver_restarts = lazy (Counter.make "serve.solver.restarts")
let c_breaker_trips = lazy (Counter.make "serve.breaker.trips")
let g_breaker_open = lazy (Gauge.make "serve.breaker.open")
let g_heartbeat_age = lazy (Gauge.make "serve.solver.heartbeat_age_s")

(* Persistent prepared-context store. *)
let c_store_hits = lazy (Counter.make "serve.store.hits")
let c_store_spills = lazy (Counter.make "serve.store.spills")
let c_store_spill_failed = lazy (Counter.make "serve.store.spill_failed")
let c_store_corrupt = lazy (Counter.make "serve.store.corrupt")
let c_store_signoff_ok = lazy (Counter.make "serve.store.signoff_ok")
let c_store_signoff_failed = lazy (Counter.make "serve.store.signoff_failed")

(* Latency histograms carry per-bucket trace-id exemplars: a scraped
   p99 bucket links straight to the flight-recorder entry of the last
   request that landed in it. *)
let h_latency =
  lazy
    (let h = Histogram.make "serve.latency" in
     Histogram.enable_exemplars h;
     h)

let h_queue_wait =
  lazy
    (let h = Histogram.make "serve.queue_wait" in
     Histogram.enable_exemplars h;
     h)

(* ----- connections ------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  cid : int;  (* synthetic tenant id for client-less requests *)
  wlock : Mutex.t;  (* serializes writes; also guards [closed] *)
  mutable closed : bool;
  pending : int Atomic.t;  (* admitted, not yet answered *)
}

(* [closed] guards against the fd-reuse hazard: once the reader closes
   the descriptor the OS may recycle its number, so every later write
   or shutdown must first check the flag under the same lock. *)
let close_conn conn =
  Mutex.protect conn.wlock @@ fun () ->
  if not conn.closed then begin
    conn.closed <- true;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

let shutdown_conn conn =
  Mutex.protect conn.wlock @@ fun () ->
  if not conn.closed then
    try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let respond conn resp =
  let line = P.encode_response resp in
  let ok =
    Mutex.protect conn.wlock @@ fun () ->
    if conn.closed then true
    else
      match P.write_frame conn.fd line with Ok () -> true | Error _ -> false
  in
  (* A failed write covers both a peer that hung up and a non-reading
     peer whose send deadline (SO_SNDTIMEO) expired with a full socket
     buffer: either way the connection is evicted — write-side
     backpressure, so a stalled reader cannot balloon memory. The
     close happens outside [wlock] (close_conn takes it itself). *)
  if not ok then begin
    Counter.incr (Lazy.force c_write_errors);
    close_conn conn
  end

(* ----- prepared problem contexts ---------------------------------------- *)

(* Everything about a netlist that every request for it re-uses: the
   placement, the flat delay/leakage tables, the nominal analysis, the
   extracted per-cell longest path set and the per-row leakage tables.
   [Problem.build] with these in hand skips STA, extraction and the
   leakage walks — the same amortization Monte-Carlo uses per die —
   and documents the results as bit-identical with or without them. *)
type prepared = {
  placement : Fbb_place.Placement.t;
  cache : Fbb_sta.Delay_cache.t;
  analysis : Fbb_sta.Timing.t;
  paths : Fbb_sta.Paths.path array;
  row_leak : float array array;
}

(* A prepared context is closure-free plain data ([Timing.analyze]
   forces its requireds with [Lazy.from_val]), so strict Marshal works
   and would fail loudly if a closure ever crept in. The payload bytes
   double as the context's fingerprint: construction is deterministic,
   so two scratch builds of the same workload marshal bit-identically,
   which is exactly what the store signoff checks. *)
let prepared_to_payload (p : prepared) = Marshal.to_string p []
let prepared_of_payload (s : string) : prepared = Marshal.from_string s 0

let build_placement = function
  | P.Benchmark name ->
    let spec = Fbb_netlist.Benchmarks.find name in
    let nl = spec.Fbb_netlist.Benchmarks.generate () in
    Fbb_place.Placement.place ~target_rows:spec.Fbb_netlist.Benchmarks.rows nl
  | P.Generated { seed; gates; rows } ->
    let nl = Fbb_netlist.Generators.random_module ~seed ~gates () in
    Fbb_place.Placement.place ~target_rows:rows nl

let prepare workload =
  Span.with_ ~name:"serve.prepare" @@ fun () ->
  Counter.incr (Lazy.force c_prepares);
  let placement = build_placement workload in
  let nl = Fbb_place.Placement.netlist placement in
  let cache = Fbb_sta.Delay_cache.create nl in
  let analysis = Fbb_sta.Timing.analyze ~cache nl in
  let paths = Fbb_sta.Paths.through_cell analysis in
  let row_leak =
    Fbb_core.Problem.leak_tables placement ~levels:(Fbb_tech.Bias.levels ())
  in
  { placement; cache; analysis; paths; row_leak }

(* ----- server state ----------------------------------------------------- *)

type job = {
  solve : P.solve;
  conn : conn;
  tenant : string;
  admitted_s : float;
  answered : bool Atomic.t;  (* exactly-once answer, solver vs watchdog *)
}

(* One bounded FIFO lane per tenant, drained deficit-round-robin. The
   deficit is replenished by [batch_max] per visit and charged per job,
   so with every job costing one unit the discipline degenerates to
   round-robin over lanes with one same-netlist batch per turn — the
   fairness bound DESIGN §17 states. *)
type lane = {
  mutable jobs : job list;  (* FIFO; small, bounded by tenant_queue_cap *)
  mutable ldepth : int;
  mutable deficit : int;
}

type t = {
  cfg : config;
  sock : Unix.file_descr;
  port : int;
  store : Store.t option;
  lock : Mutex.t;
  nonempty : Condition.t;  (* some lane gained work, or stopping *)
  idle : Condition.t;  (* queue and in-flight both empty *)
  lanes : (string, lane) Hashtbl.t;
  mutable ring : string list;  (* round-robin order over nonempty lanes *)
  mutable depth : int;  (* total queued over all lanes *)
  mutable in_flight : int;
  mutable inflight_jobs : job list;  (* the batch being solved *)
  mutable served : int;
  mutable shed : int;
  mutable draining : bool;
  mutable stopping : bool;
  mutable mean_service_s : float;  (* EWMA feeding the retry-after hint *)
  (* solver supervision *)
  mutable solver_gen : int;  (* restarts retire a generation *)
  mutable solver_alive : bool;
  mutable solver_exn : string option;
  mutable heartbeat_s : float;
  mutable consecutive_restarts : int;
  mutable breaker_open : bool;
  mutable breaker_opened_s : float;
  (* persistent store trust state (solver thread only) *)
  mutable store_load_ok : bool;  (* false after a failed signoff *)
  mutable signoff_armed : bool;  (* first load per daemon arms one check *)
  mutable signoff_pending : (string * Digest.t) option;
  prepared : (string, prepared) Hashtbl.t;
  mutable lru : string list;  (* most recent first *)
  next_cid : int Atomic.t;
  mutable conns : conn list;
  mutable threads : Thread.t list;  (* reader threads, for the final join *)
  mutable accept_thread : Thread.t option;
  mutable solver_thread : Thread.t option;
  mutable retired_solvers : Thread.t list;  (* stalled gens, joined at stop *)
  mutable watchdog_thread : Thread.t option;
}

let port t = t.port

let stats t : P.stats_payload =
  let pct p =
    Option.map
      (fun s -> s *. 1000.0)
      (Histogram.percentile_opt (Lazy.force h_queue_wait) p)
  in
  Mutex.protect t.lock @@ fun () ->
  {
    P.queue_depth = t.depth;
    in_flight = t.in_flight;
    served = t.served;
    shed = t.shed;
    draining = t.draining || t.stopping;
    queue_p50_ms = pct 0.50;
    queue_p90_ms = pct 0.90;
    queue_p99_ms = pct 0.99;
  }

let breaker_open t = Mutex.protect t.lock (fun () -> t.breaker_open)

(* ----- validation ------------------------------------------------------- *)

let validate cfg (s : P.solve) =
  if not (Float.is_finite s.beta) || s.beta <= 0.0 || s.beta > 1.0 then
    Error "beta must be in (0, 1]"
  else if s.max_clusters < 1 then Error "clusters must be >= 1"
  else if
    match s.deadline_ms with
    | Some d -> (not (Float.is_finite d)) || d < 0.0
    | None -> false
  then Error "deadline_ms must be a finite number >= 0"
  else if (match s.work_budget with Some w -> w < 0 | None -> false) then
    Error "work_budget must be >= 0"
  else
    match s.workload with
    | P.Benchmark name -> (
      match Fbb_netlist.Benchmarks.find name with
      | _ -> Ok ()
      | exception Not_found ->
        Error (Printf.sprintf "unknown benchmark %S" name))
    | P.Generated { seed = _; gates; rows } ->
      if gates < 8 || gates > cfg.max_gates then
        Error (Printf.sprintf "gates must be in [8, %d]" cfg.max_gates)
      else if rows < 2 || rows > 4096 then Error "rows must be in [2, 4096]"
      else Ok ()

(* ----- admission -------------------------------------------------------- *)

let tenant_of conn (s : P.solve) =
  match s.client with
  | Some c when c <> "" -> "client:" ^ c
  | _ -> Printf.sprintf "conn:%d" conn.cid

let retry_after_ms t ~lane_depth =
  (* Rough clearing time for the backlog ahead of the shed request:
     the tenant's own lane depth plus the in-flight batch, at the
     recent mean service time (floored so a cold server still hints a
     real backoff). Under round-robin the shedding tenant's wait is
     governed by its own lane, not the global queue. *)
  let per = Float.max 0.002 t.mean_service_s in
  float_of_int (lane_depth + t.in_flight + 1) *. per *. 1000.0

let answer_job job resp =
  (* Exactly-once: the solver and the watchdog can both try to answer
     a job (a stall verdict racing a completion); whoever wins the CAS
     writes the frame and releases the connection's pending slot. *)
  if Atomic.compare_and_set job.answered false true then begin
    ignore (Atomic.fetch_and_add job.conn.pending (-1));
    respond job.conn resp
  end

let set_lanes_gauge t =
  Gauge.set (Lazy.force g_tenant_lanes) (float_of_int (Hashtbl.length t.lanes))

let admit t conn (s : P.solve) =
  Counter.incr (Lazy.force c_requests);
  match validate t.cfg s with
  | Error msg ->
    Counter.incr (Lazy.force c_bad_request);
    respond conn (P.Rejected { id = s.id; reject = P.Bad_request msg })
  | Ok () ->
    let tenant = tenant_of conn s in
    let verdict =
      Mutex.protect t.lock @@ fun () ->
      let lane_depth =
        match Hashtbl.find_opt t.lanes tenant with
        | Some l -> l.ldepth
        | None -> 0
      in
      if t.draining || t.stopping then begin
        t.shed <- t.shed + 1;
        `Shed_draining
      end
      else if
        t.breaker_open
        (* Half-open probe: after the cooldown, one request may pass
           through an otherwise-open breaker, but only into an empty
           server — its fate decides whether the breaker closes. *)
        && not
             (Clock.now_s () -. t.breaker_opened_s >= t.cfg.breaker_cooldown_s
             && t.depth = 0 && t.in_flight = 0)
      then begin
        t.shed <- t.shed + 1;
        `Shed_breaker
      end
      else if Atomic.get conn.pending >= t.cfg.conn_pending_cap then begin
        t.shed <- t.shed + 1;
        `Shed_conn (retry_after_ms t ~lane_depth)
      end
      else if t.depth >= t.cfg.queue_capacity || lane_depth >= t.cfg.tenant_queue_cap
      then begin
        t.shed <- t.shed + 1;
        `Shed_overload
          ( retry_after_ms t ~lane_depth,
            lane_depth >= t.cfg.tenant_queue_cap )
      end
      else begin
        let lane =
          match Hashtbl.find_opt t.lanes tenant with
          | Some l -> l
          | None ->
            let l = { jobs = []; ldepth = 0; deficit = 0 } in
            Hashtbl.replace t.lanes tenant l;
            t.ring <- t.ring @ [ tenant ];
            l
        in
        let job =
          {
            solve = s;
            conn;
            tenant;
            admitted_s = Clock.now_s ();
            answered = Atomic.make false;
          }
        in
        lane.jobs <- lane.jobs @ [ job ];
        lane.ldepth <- lane.ldepth + 1;
        t.depth <- t.depth + 1;
        ignore (Atomic.fetch_and_add conn.pending 1);
        set_lanes_gauge t;
        Condition.signal t.nonempty;
        `Admitted
      end
    in
    (* Shed requests never reach the solver, so they are recorded here:
       the flight recorder retains every one of them (a shed storm is
       exactly what post-hoc debugging needs to see), with an empty
       span tree since no work ran. *)
    let record_shed reason =
      if s.id <> "" then
        Flight.finish ~trace:("req:" ^ s.id) ~req_id:s.id
          ~outcome:(Flight.Shed reason) ~exhausted:false ~queue_wait_s:0.0
          ~latency_s:0.0 ~stages:[] ~counters:[]
    in
    (match verdict with
    | `Admitted -> ()
    | `Shed_draining ->
      Counter.incr (Lazy.force c_shed_draining);
      record_shed "shutting_down";
      respond conn (P.Rejected { id = s.id; reject = P.Shutting_down })
    | `Shed_breaker ->
      Counter.incr (Lazy.force c_shed_draining);
      record_shed "breaker_open";
      respond conn (P.Rejected { id = s.id; reject = P.Shutting_down })
    | `Shed_conn retry_after_ms ->
      Counter.incr (Lazy.force c_shed_overload);
      Counter.incr (Lazy.force c_conn_shed);
      record_shed "overload";
      respond conn
        (P.Rejected { id = s.id; reject = P.Overload { retry_after_ms } })
    | `Shed_overload (retry_after_ms, lane_bound) ->
      Counter.incr (Lazy.force c_shed_overload);
      if lane_bound then Counter.incr (Lazy.force c_tenant_shed);
      record_shed "overload";
      respond conn
        (P.Rejected { id = s.id; reject = P.Overload { retry_after_ms } }))

(* ----- persistent context store ----------------------------------------- *)

let lru_insert t key p =
  Hashtbl.replace t.prepared key p;
  t.lru <- key :: List.filter (fun k -> k <> key) t.lru;
  match List.filteri (fun i _ -> i >= t.cfg.prepared_cap) t.lru with
  | [] -> ()
  | evicted ->
    List.iter (Hashtbl.remove t.prepared) evicted;
    t.lru <- List.filteri (fun i _ -> i < t.cfg.prepared_cap) t.lru

(* Spill a freshly built context. Failures (injected io.transient
   storms, full disks) degrade the store to in-memory-only for this
   entry: the request is already answered from the live context and
   the previous on-disk entry, if any, is untouched. *)
let spill t key p =
  match t.store with
  | None -> ()
  | Some st -> (
    match Store.save st ~key (prepared_to_payload p) with
    | Ok () -> Counter.incr (Lazy.force c_store_spills)
    | Error _ | (exception _) ->
      Counter.incr (Lazy.force c_store_spill_failed))

let try_load t key =
  match t.store with
  | Some st when t.store_load_ok -> (
    match Store.load st ~key with
    | Store.Miss -> None
    | Store.Corrupt _ ->
      Counter.incr (Lazy.force c_store_corrupt);
      None
    | Store.Hit payload -> (
      match prepared_of_payload payload with
      | exception _ ->
        (* Framing validated but the bytes do not unmarshal: corrupt
           in a way the checksum cannot have missed unless the entry
           was written by a buggy spill — drop it and rebuild. *)
        Counter.incr (Lazy.force c_store_corrupt);
        (try Sys.remove (Store.entry_path st ~key) with Sys_error _ -> ());
        None
      | p ->
        Counter.incr (Lazy.force c_store_hits);
        if t.signoff_armed then begin
          (* Never trust a loaded context blindly: the first one used
             per daemon is scheduled for a scratch-rebuild signoff,
             run on the solver thread right after this batch answers
             (after, not before — the warm start must stay warm). *)
          t.signoff_armed <- false;
          t.signoff_pending <- Some (key, Digest.string payload)
        end;
        Some p))
  | _ -> None

let find_prepared t key workload =
  (* Solver-thread-only state: no lock. *)
  match Hashtbl.find_opt t.prepared key with
  | Some p ->
    Counter.incr (Lazy.force c_prepared_hits);
    t.lru <- key :: List.filter (fun k -> k <> key) t.lru;
    Ok p
  | None -> (
    match try_load t key with
    | Some p ->
      lru_insert t key p;
      Ok p
    | None -> (
      match prepare workload with
      | exception exn -> Error (Printexc.to_string exn)
      | p ->
        lru_insert t key p;
        spill t key p;
        Ok p))

(* The signoff rule (DESIGN §17): rebuild the workload from scratch
   and demand the stored payload bytes match the scratch context's
   marshalling bit-for-bit. Construction is deterministic, so any
   divergence means the store's content does not correspond to this
   binary's idea of the workload — fail closed: stop loading, flush
   every context that came from the store, and keep the scratch. *)
let run_signoff t key workload =
  match t.signoff_pending with
  | None -> ()
  | Some (skey, _) when skey <> key -> ()
  | Some (_, stored_digest) ->
    t.signoff_pending <- None;
    Span.with_ ~name:"serve.store.signoff" @@ fun () ->
    (match prepare workload with
    | exception _ ->
      (* Cannot rebuild to verify: fail closed. *)
      Counter.incr (Lazy.force c_store_signoff_failed);
      t.store_load_ok <- false
    | scratch ->
      if Digest.string (prepared_to_payload scratch) = stored_digest then
        Counter.incr (Lazy.force c_store_signoff_ok)
      else begin
        Counter.incr (Lazy.force c_store_signoff_failed);
        t.store_load_ok <- false;
        Hashtbl.reset t.prepared;
        t.lru <- [];
        lru_insert t key scratch
      end)

(* ----- the solver thread ------------------------------------------------ *)

let status_str = function
  | Fbb_core.Cascade.Accepted -> "accepted"
  | Fbb_core.Cascade.No_candidate -> "no_candidate"
  | Fbb_core.Cascade.Rejected -> "rejected"
  | Fbb_core.Cascade.Exhausted -> "exhausted"
  | Fbb_core.Cascade.Crashed m -> "crashed: " ^ m

(* Counter deltas across one solve, attributed to that request in its
   flight record. The solver thread is serial, so the diff of the
   global totals brackets exactly this request's increments (plus any
   concurrent reader-thread bumps — ping/stats counters, noted as
   such); a per-request counter set would cost the hot path more than
   this ambiguity is worth. *)
let counter_deltas ~before ~after =
  let prev = Hashtbl.create 16 in
  List.iter (fun (n, v) -> Hashtbl.replace prev n v) before;
  List.filter_map
    (fun (n, v) ->
      let d =
        v - (match Hashtbl.find_opt prev n with Some p -> p | None -> 0)
      in
      if d <> 0 then Some (n, d) else None)
    after

let touch_heartbeat t = Mutex.protect t.lock (fun () -> t.heartbeat_s <- Clock.now_s ())

let solve_one t gen prep (job : job) =
  let s = job.solve in
  touch_heartbeat t;
  let t0 = Clock.now_s () in
  let waited = t0 -. job.admitted_s in
  let trace = if s.id = "" then None else Some ("req:" ^ s.id) in
  Histogram.observe ?exemplar:trace (Lazy.force h_queue_wait) waited;
  (match trace with
  | Some tr -> Flight.begin_request ~trace:tr
  | None -> ());
  let counters_before =
    match trace with Some _ -> Counter.totals () | None -> []
  in
  let deadline_ms =
    match s.deadline_ms with Some _ as d -> d | None -> t.cfg.default_deadline_ms
  in
  let work =
    match s.work_budget with Some _ as w -> w | None -> t.cfg.default_work
  in
  let budget =
    match (deadline_ms, work) with
    | None, None -> Budget.unlimited
    | d, w ->
      (* The deadline is measured from admission: a request that waited
         in the queue arrives here with only its remainder (possibly
         zero — the cascade's single-BB floor still returns a
         signed-off anytime answer). *)
      Budget.create
        ?deadline_s:
          (Option.map (fun ms -> Float.max 0.0 ((ms /. 1000.0) -. waited)) d)
        ?work:w ()
  in
  let resp, flight_outcome, flight_exhausted, flight_stages =
    Fbb_obs.Context.with_ (Fbb_obs.Context.make ?trace ()) @@ fun () ->
    Span.with_ ~name:"serve.request" @@ fun () ->
    match
      let problem =
        Fbb_core.Problem.build ~cache:prep.cache ~analysis:prep.analysis
          ~paths:prep.paths ~row_leak:prep.row_leak ~beta:s.beta prep.placement
      in
      Fbb_core.Cascade.solve ~max_clusters:s.max_clusters ~budget problem
    with
    | exception exn ->
      (* The cascade already contains stage crashes; anything escaping
         here (problem build, injected pool faults at the join point)
         degrades this one request, never the server. *)
      Counter.incr (Lazy.force c_request_faults);
      let msg = Printexc.to_string exn in
      ( P.Rejected { id = s.id; reject = P.Faulted msg },
        Flight.Errored msg,
        false,
        [] )
    | r -> (
      let elapsed_ms = (Clock.now_s () -. t0) *. 1000.0 in
      let attempts =
        List.map
          (fun (a : Fbb_core.Cascade.attempt) ->
            {
              P.stage = Fbb_core.Cascade.stage_name a.stage;
              status = status_str a.status;
              leakage_nw = a.leakage_nw;
              work = a.work_spent;
            })
          r.Fbb_core.Cascade.attempts
      in
      let stages =
        List.map
          (fun (a : P.attempt) ->
            {
              Flight.st_stage = a.stage;
              st_status = a.status;
              st_work = a.work;
              st_leakage_nw = a.leakage_nw;
            })
          attempts
      in
      let exhausted = r.Fbb_core.Cascade.exhausted in
      match r.Fbb_core.Cascade.outcome with
      | Fbb_core.Cascade.Infeasible ->
        Counter.incr (Lazy.force c_infeasible);
        (P.Infeasible { id = s.id; elapsed_ms }, Flight.Infeasible, exhausted,
         stages)
      | Fbb_core.Cascade.Solved { stage; levels; leakage_nw; gap_pct; optimal }
        ->
        Counter.incr (Lazy.force c_solved);
        let stage = Fbb_core.Cascade.stage_name stage in
        ( P.Solved
            {
              id = s.id;
              stage;
              levels;
              leakage_nw;
              gap_pct;
              optimal;
              exhausted;
              attempts;
              elapsed_ms;
            },
          Flight.Solved stage,
          exhausted,
          stages ))
  in
  let total_s = Clock.now_s () -. job.admitted_s in
  Histogram.observe ?exemplar:trace (Lazy.force h_latency) total_s;
  (match trace with
  | Some tr ->
    Flight.finish ~trace:tr ~req_id:s.id ~outcome:flight_outcome
      ~exhausted:flight_exhausted ~queue_wait_s:waited ~latency_s:total_s
      ~stages:flight_stages
      ~counters:(counter_deltas ~before:counters_before ~after:(Counter.totals ()))
  | None -> ());
  (* EWMA of pure service time, the retry-after hint's unit. The
     accounting lands before the response is written, so a client that
     queries stats right after its reply always sees itself served.
     All of it is gated on the solver generation: if the watchdog
     retired this solver mid-request, the books were already settled
     (and the job answered Faulted) — only the answer CAS below may
     still win for this thread. *)
  let service_s = Clock.now_s () -. t0 in
  Mutex.protect t.lock (fun () ->
      t.heartbeat_s <- Clock.now_s ();
      if t.solver_gen = gen then begin
        t.served <- t.served + 1;
        t.in_flight <- t.in_flight - 1;
        t.inflight_jobs <- List.filter (fun j -> j != job) t.inflight_jobs;
        (* Any completed request is a successful half-open probe: the
           breaker closes and the restart window resets. *)
        t.consecutive_restarts <- 0;
        if t.breaker_open then begin
          t.breaker_open <- false;
          Gauge.set (Lazy.force g_breaker_open) 0.0
        end;
        t.mean_service_s <-
          (if t.mean_service_s = 0.0 then service_s
           else (0.8 *. t.mean_service_s) +. (0.2 *. service_s))
      end);
  answer_job job resp

(* Deficit-round-robin drain: visit the lane at the ring's head,
   replenish its deficit by one batch quantum, and take the oldest job
   plus every lane-mate sharing its netlist key, up to the batch/
   deficit/in-flight caps. The lane then rotates to the tail (or
   leaves the ring when empty), so each nonempty lane gets one batch
   per ring revolution regardless of how deep the hot lane is. *)
let pop_batch t =
  match t.ring with
  | [] -> None
  | tenant :: ring_rest -> (
    match Hashtbl.find_opt t.lanes tenant with
    | None ->
      t.ring <- ring_rest;
      None
    | Some lane ->
      lane.deficit <- min (lane.deficit + t.cfg.batch_max) (2 * t.cfg.batch_max);
      let limit =
        max 1
          (min lane.deficit (min t.cfg.batch_max t.cfg.tenant_inflight_cap))
      in
      (match lane.jobs with
      | [] ->
        (* Defensive: an empty lane should have left the ring. *)
        Hashtbl.remove t.lanes tenant;
        t.ring <- ring_rest;
        set_lanes_gauge t;
        None
      | head :: rest ->
        let key = P.workload_key head.solve.P.workload in
        let batch, kept =
          List.fold_left
            (fun (batch, kept) job ->
              if
                List.length batch < limit
                && P.workload_key job.solve.P.workload = key
              then (job :: batch, kept)
              else (batch, job :: kept))
            ([ head ], []) rest
        in
        let batch = List.rev batch and kept = List.rev kept in
        let taken = List.length batch in
        lane.jobs <- kept;
        lane.ldepth <- List.length kept;
        lane.deficit <- lane.deficit - taken;
        if lane.ldepth = 0 then begin
          Hashtbl.remove t.lanes tenant;
          t.ring <- ring_rest
        end
        else t.ring <- ring_rest @ [ tenant ];
        t.depth <- t.depth - taken;
        t.in_flight <- taken;
        t.inflight_jobs <- batch;
        set_lanes_gauge t;
        Some (key, batch)))

exception Solver_fault of string
exception Stale_solver

(* An injected stall parks the solver, heartbeat frozen, until the
   watchdog retires this generation (or the server stops). Without a
   stall threshold nobody would ever retire it, so the site is inert
   unless detection is configured. *)
let stall_park t gen =
  match t.cfg.stall_threshold_s with
  | None -> ()
  | Some _ ->
    let retired () =
      Mutex.protect t.lock (fun () -> t.solver_gen <> gen || t.stopping)
    in
    while not (retired ()) do
      Thread.delay 0.005
    done;
    raise Stale_solver

let rec solver_loop t gen =
  Mutex.lock t.lock;
  t.heartbeat_s <- Clock.now_s ();
  while t.ring = [] && not t.stopping && t.solver_gen = gen do
    Condition.wait t.nonempty t.lock
  done;
  if t.solver_gen <> gen then begin
    Mutex.unlock t.lock;
    raise Stale_solver
  end;
  let popped = pop_batch t in
  t.heartbeat_s <- Clock.now_s ();
  Mutex.unlock t.lock;
  match popped with
  | None -> if not (Mutex.protect t.lock (fun () -> t.stopping)) then solver_loop t gen
  | Some (key, batch) ->
    (* Chaos sites, evaluated once per batch: a crash escapes this
       thread entirely (the watchdog restarts and answers), a stall
       freezes it past the detection threshold. *)
    if Fault.fire "serve.solver_crash" then begin
      Counter.incr (Lazy.force c_fault_solver_crash);
      raise (Solver_fault "injected serve.solver_crash fault")
    end;
    if Fault.fire "serve.solver_stall" then begin
      Counter.incr (Lazy.force c_fault_solver_stall);
      stall_park t gen
    end;
    let n = List.length batch in
    if n > 1 then begin
      Counter.incr (Lazy.force c_batches);
      Counter.add (Lazy.force c_batched) (n - 1)
    end;
    (match find_prepared t key (List.hd batch).solve.P.workload with
    | Ok prep -> List.iter (solve_one t gen prep) batch
    | Error msg ->
      (* The workload passed validation but failed to build (e.g. a
         degenerate generated netlist): every batch member gets the
         same typed answer. *)
      List.iter
        (fun (job : job) ->
          Counter.incr (Lazy.force c_bad_request);
          Mutex.protect t.lock (fun () ->
              t.heartbeat_s <- Clock.now_s ();
              if t.solver_gen = gen then begin
                t.served <- t.served + 1;
                t.in_flight <- t.in_flight - 1;
                t.inflight_jobs <-
                  List.filter (fun j -> j != job) t.inflight_jobs
              end);
          answer_job job
            (P.Rejected
               { id = job.solve.P.id; reject = P.Bad_request ("build: " ^ msg) }))
        batch);
    run_signoff t key (List.hd batch).solve.P.workload;
    Mutex.protect t.lock (fun () ->
        if t.solver_gen = gen && t.depth = 0 && t.in_flight = 0 then
          Condition.broadcast t.idle);
    solver_loop t gen

(* The solver body never lets an exception escape the thread silently:
   a crash under the current generation flips [solver_alive] so the
   watchdog's next tick fails the in-flight batch and restarts. A
   stale solver (its generation already retired) just exits. *)
let solver_body t gen =
  match solver_loop t gen with
  | () -> ()
  | exception Stale_solver -> ()
  | exception exn ->
    let msg =
      match exn with Solver_fault m -> m | e -> Printexc.to_string e
    in
    Mutex.protect t.lock (fun () ->
        if t.solver_gen = gen then begin
          t.solver_alive <- false;
          t.solver_exn <- Some msg
        end)

(* ----- the watchdog thread ---------------------------------------------- *)

(* One tick: detect a dead or stalled solver, settle the books under
   the lock (fail the in-flight batch, advance the generation, maybe
   trip the breaker and flush the lanes), then answer the victims and
   spawn the replacement outside it. *)
let rec watchdog_loop t =
  Thread.delay t.cfg.watchdog_tick_s;
  let verdict =
    Mutex.protect t.lock @@ fun () ->
    if t.stopping then `Exit
    else begin
      let now = Clock.now_s () in
      Gauge.set (Lazy.force g_heartbeat_age) (now -. t.heartbeat_s);
      let dead = not t.solver_alive in
      let stalled =
        (not dead) && t.in_flight > 0
        &&
        match t.cfg.stall_threshold_s with
        | Some th -> now -. t.heartbeat_s > th
        | None -> false
      in
      if not (dead || stalled) then `Tick
      else begin
        let reason =
          if dead then
            "solver crashed: "
            ^ Option.value t.solver_exn ~default:"unknown"
          else "solver stalled past threshold"
        in
        let victims = t.inflight_jobs in
        t.inflight_jobs <- [];
        t.in_flight <- 0;
        t.solver_exn <- None;
        t.consecutive_restarts <- t.consecutive_restarts + 1;
        Counter.incr (Lazy.force c_solver_restarts);
        t.solver_gen <- t.solver_gen + 1;
        t.solver_alive <- true;
        t.heartbeat_s <- now;
        let flushed =
          if t.consecutive_restarts >= t.cfg.breaker_limit then begin
            if not t.breaker_open then begin
              t.breaker_open <- true;
              Counter.incr (Lazy.force c_breaker_trips);
              Gauge.set (Lazy.force g_breaker_open) 1.0
            end;
            t.breaker_opened_s <- now;
            (* Flush every queued job: with the breaker open nothing
               would drain them, and Shutting_down tells clients not
               to hammer the retry path. *)
            let queued =
              List.concat_map
                (fun tenant ->
                  match Hashtbl.find_opt t.lanes tenant with
                  | Some lane -> lane.jobs
                  | None -> [])
                t.ring
            in
            Hashtbl.reset t.lanes;
            t.ring <- [];
            t.depth <- 0;
            t.shed <- t.shed + List.length queued;
            set_lanes_gauge t;
            queued
          end
          else []
        in
        if t.depth = 0 && t.in_flight = 0 then Condition.broadcast t.idle;
        `Restart (t.solver_gen, victims, reason, flushed)
      end
    end
  in
  match verdict with
  | `Exit -> ()
  | `Tick -> watchdog_loop t
  | `Restart (gen, victims, reason, flushed) ->
    (* The previous solver thread either already exited (crash) or
       will exit as soon as it observes its retired generation
       (injected stall); keep the handle and join it at stop. *)
    (match t.solver_thread with
    | Some th -> t.retired_solvers <- th :: t.retired_solvers
    | None -> ());
    t.solver_thread <- Some (Thread.create (fun () -> solver_body t gen) ());
    List.iter
      (fun (job : job) ->
        answer_job job
          (P.Rejected { id = job.solve.P.id; reject = P.Faulted reason }))
      victims;
    List.iter
      (fun (job : job) ->
        Counter.incr (Lazy.force c_shed_draining);
        answer_job job
          (P.Rejected { id = job.solve.P.id; reject = P.Shutting_down }))
      flushed;
    watchdog_loop t

(* ----- connection reader ------------------------------------------------ *)

let request_id = function
  | Ok (P.Solve { id; _ }) | Ok (P.Ping { id }) | Ok (P.Stats { id }) -> id
  | Error _ -> ""

let handle_conn t conn =
  let reader = P.reader ~max_frame:t.cfg.max_frame conn.fd in
  let rec loop () =
    match P.read_frame reader with
    | Error P.Closed | Error (P.Io _) -> ()
    | Error P.Truncated ->
      (* The peer shut its write side mid-frame; it may still read, so
         answer before hanging up. *)
      Counter.incr (Lazy.force c_protocol_errors);
      respond conn
        (P.Rejected { id = ""; reject = P.Bad_request "truncated frame" })
    | Error P.Idle_timeout ->
      (* Slow-loris eviction: the receive deadline expired without a
         complete frame. Typed close — the peer is told why. *)
      Counter.incr (Lazy.force c_idle_evictions);
      respond conn
        (P.Rejected
           {
             id = "";
             reject =
               P.Bad_request "idle timeout: no complete frame within deadline";
           })
    | Error (P.Oversized limit) ->
      (* Line framing cannot re-synchronize after an over-long frame:
         answer and close. *)
      Counter.incr (Lazy.force c_protocol_errors);
      respond conn
        (P.Rejected
           {
             id = "";
             reject =
               P.Bad_request (Printf.sprintf "frame exceeds %d bytes" limit);
           })
    | Ok line ->
      (if Fault.fire "serve.read" then begin
         (* Injected read fault: this request degrades to a typed
            reject; the connection and the server live on. *)
         Counter.incr (Lazy.force c_fault_read);
         respond conn
           (P.Rejected
              {
                id = request_id (P.decode_request line);
                reject = P.Faulted "injected serve.read fault";
              })
       end
       else
         match P.decode_request line with
         | Error msg ->
           Counter.incr (Lazy.force c_protocol_errors);
           respond conn (P.Rejected { id = ""; reject = P.Bad_request msg })
         | Ok (P.Ping { id }) -> respond conn (P.Pong { id })
         | Ok (P.Stats { id }) ->
           respond conn (P.Stats_reply { id; stats = stats t })
         | Ok (P.Solve s) -> admit t conn s);
      loop ()
  in
  (try loop () with _ -> ());
  close_conn conn

let handle_poisoned t conn =
  let reader = P.reader ~max_frame:t.cfg.max_frame conn.fd in
  (try
     match P.read_frame reader with
     | Ok line ->
       respond conn
         (P.Rejected
            {
              id = request_id (P.decode_request line);
              reject = P.Faulted "injected serve.accept fault";
            })
     | Error _ -> ()
   with _ -> ());
  close_conn conn

(* ----- accept loop ------------------------------------------------------ *)

let stopping t = Mutex.protect t.lock (fun () -> t.stopping)

let rec accept_loop t =
  match Unix.accept t.sock with
  | fd, _ ->
    if stopping t then (try Unix.close fd with Unix.Unix_error _ -> ())
    else begin
      (* Connection hygiene: both socket deadlines are set before the
         reader ever blocks, so a slow-loris peer costs one reader
         thread for at most the idle timeout and a non-reading peer
         blocks a writer for at most the write timeout. *)
      (match t.cfg.idle_timeout_s with
      | Some s -> (
        try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s
        with Unix.Unix_error _ | Invalid_argument _ -> ())
      | None -> ());
      (match t.cfg.write_timeout_s with
      | Some s -> (
        try Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
        with Unix.Unix_error _ | Invalid_argument _ -> ())
      | None -> ());
      (* An accept-faulted connection still answers its first frame —
         with a typed reject — before closing: writing the reject
         eagerly at accept would race the peer's request against the
         close (the RST can eat the greeting), and a fault that
         degrades to a lost write is indistinguishable from a crash. *)
      let poisoned = Fault.fire "serve.accept" in
      if poisoned then Counter.incr (Lazy.force c_fault_accept);
      let conn =
        {
          fd;
          cid = Atomic.fetch_and_add t.next_cid 1;
          wlock = Mutex.create ();
          closed = false;
          pending = Atomic.make 0;
        }
      in
      let th =
        Thread.create
          (fun () ->
            if poisoned then handle_poisoned t conn else handle_conn t conn)
          ()
      in
      Mutex.protect t.lock (fun () ->
          t.conns <- conn :: t.conns;
          t.threads <- th :: t.threads)
    end;
    if not (stopping t) then accept_loop t
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
    if not (stopping t) then accept_loop t
  | exception _ ->
    if not (stopping t) then begin
      Thread.delay 0.05;
      accept_loop t
    end

(* ----- lifecycle -------------------------------------------------------- *)

let start ?(config = default_config) () =
  (* A peer that disappears between frames must error the write, not
     deliver SIGPIPE to the whole daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match
    match config.store_dir with
    | None -> Ok None
    | Some dir -> Result.map Option.some (Store.open_ ~dir)
  with
  | Error msg -> Error msg
  | Ok store -> (
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock
        (Unix.ADDR_INET (Unix.inet_addr_of_string config.addr, config.port));
      Unix.listen sock 64
    with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "bind %s:%d: %s" config.addr config.port
           (Unix.error_message e))
    | () ->
      let port =
        match Unix.getsockname sock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> config.port
      in
      let t =
        {
          cfg = config;
          sock;
          port;
          store;
          lock = Mutex.create ();
          nonempty = Condition.create ();
          idle = Condition.create ();
          lanes = Hashtbl.create 8;
          ring = [];
          depth = 0;
          in_flight = 0;
          inflight_jobs = [];
          served = 0;
          shed = 0;
          draining = false;
          stopping = false;
          mean_service_s = 0.0;
          solver_gen = 0;
          solver_alive = true;
          solver_exn = None;
          heartbeat_s = Clock.now_s ();
          consecutive_restarts = 0;
          breaker_open = false;
          breaker_opened_s = 0.0;
          store_load_ok = true;
          signoff_armed = true;
          signoff_pending = None;
          prepared = Hashtbl.create 8;
          lru = [];
          next_cid = Atomic.make 0;
          conns = [];
          threads = [];
          accept_thread = None;
          solver_thread = None;
          retired_solvers = [];
          watchdog_thread = None;
        }
      in
      Gauge.set (Lazy.force g_breaker_open) 0.0;
      t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
      t.solver_thread <- Some (Thread.create (fun () -> solver_body t 0) ());
      t.watchdog_thread <- Some (Thread.create (fun () -> watchdog_loop t) ());
      Ok t)

let drain t =
  Mutex.lock t.lock;
  t.draining <- true;
  while t.depth > 0 || t.in_flight > 0 do
    Condition.wait t.idle t.lock
  done;
  Mutex.unlock t.lock

(* Wake the blocking accept(2) with a throwaway self-connection — the
   same portable trick Telemetry.shutdown uses. *)
let wake_accept t =
  try
    let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close s with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, t.port)))
  with _ -> ()

let stop t =
  drain t;
  let already =
    Mutex.protect t.lock @@ fun () ->
    let was = t.stopping in
    t.stopping <- true;
    Condition.broadcast t.nonempty;
    was
  in
  if not already then begin
    wake_accept t;
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    t.accept_thread <- None;
    (match t.watchdog_thread with Some th -> Thread.join th | None -> ());
    t.watchdog_thread <- None;
    (match t.solver_thread with Some th -> Thread.join th | None -> ());
    t.solver_thread <- None;
    (* Retired solver generations are cooperative: a crashed one has
       already exited, an (injected) stalled one exits on observing
       [stopping]. *)
    List.iter Thread.join t.retired_solvers;
    t.retired_solvers <- [];
    let conns, threads =
      Mutex.protect t.lock (fun () -> (t.conns, t.threads))
    in
    List.iter shutdown_conn conns;
    List.iter Thread.join threads;
    List.iter close_conn conns;
    Mutex.protect t.lock (fun () ->
        t.conns <- [];
        t.threads <- []);
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end
