type t = {
  fd : Unix.file_descr;
  reader : Protocol.reader;
  mutable closed : bool;
}

let connect ?(addr = "127.0.0.1") ~port () =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "socket: %s" (Unix.error_message e))
  | fd -> (
    match
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port))
    with
    | () -> Ok { fd; reader = Protocol.reader fd; closed = false }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "connect %s:%d: %s" addr port (Unix.error_message e)))

let send t req =
  if t.closed then Error "connection closed"
  else Protocol.write_frame t.fd (Protocol.encode_request req)

let recv t =
  if t.closed then Error "connection closed"
  else
    match Protocol.read_frame t.reader with
    | Error e -> Error (Protocol.read_error_to_string e)
    | Ok line -> Protocol.decode_response line

let rpc t req = Result.bind (send t req) (fun () -> recv t)

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
