type t = {
  fd : Unix.file_descr;
  reader : Protocol.reader;
  mutable closed : bool;
}

let connect ?(addr = "127.0.0.1") ~port () =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "socket: %s" (Unix.error_message e))
  | fd -> (
    match
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port))
    with
    | () -> Ok { fd; reader = Protocol.reader fd; closed = false }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "connect %s:%d: %s" addr port (Unix.error_message e)))

let send t req =
  if t.closed then Error "connection closed"
  else Protocol.write_frame t.fd (Protocol.encode_request req)

let recv t =
  if t.closed then Error "connection closed"
  else
    match Protocol.read_frame t.reader with
    | Error e -> Error (Protocol.read_error_to_string e)
    | Ok line -> Protocol.decode_response line

let rpc t req = Result.bind (send t req) (fun () -> recv t)

(* Bounded retry on [Overload]: the server's retry_after hint is the
   backoff floor, doubled-from-25ms exponential growth is the shape,
   and a seeded jitter in [0.5, 1.0)x decorrelates a fleet of clients
   that were all shed by the same full queue. The budget bounds total
   sleep, not total wall time; a delay that would overrun it returns
   the last shed response instead of sleeping. *)
let rpc_retry ?(retries = 0) ?(retry_budget_ms = 1_000.0) ?(seed = 1) t req =
  let rng = Fbb_util.Rng.create ~seed in
  let rec go attempt slept_ms =
    match rpc t req with
    | Error _ as e -> (e, attempt + 1)
    | Ok resp -> (
      match resp with
      | Protocol.Rejected { reject = Protocol.Overload { retry_after_ms }; _ }
        when attempt < retries ->
        let base =
          Float.max retry_after_ms (25.0 *. float_of_int (1 lsl attempt))
        in
        let delay_ms = base *. (0.5 +. (0.5 *. Fbb_util.Rng.uniform rng)) in
        if slept_ms +. delay_ms > retry_budget_ms then (Ok resp, attempt + 1)
        else begin
          Thread.delay (delay_ms /. 1000.0);
          go (attempt + 1) (slept_ms +. delay_ms)
        end
      | _ -> (Ok resp, attempt + 1))
  in
  go 0 0.0

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
