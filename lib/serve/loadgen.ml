module Rng = Fbb_util.Rng
module Json = Fbb_util.Json
module Clock = Fbb_obs.Clock
module Histogram = Fbb_obs.Histogram

type config = {
  addr : string;
  port : int;
  connections : int;
  requests : int;
  rate_hz : float;
  seed : int;
  workloads : Protocol.workload list;
  beta : float;
  max_clusters : int;
  deadline_ms : float option;
  work_budget : int option;
}

let default ~port =
  {
    addr = "127.0.0.1";
    port;
    connections = 4;
    requests = 40;
    rate_hz = 0.0;
    seed = 1;
    workloads = [ Protocol.Generated { seed = 11; gates = 400; rows = 6 } ];
    beta = 0.05;
    max_clusters = 4;
    deadline_ms = None;
    work_budget = Some 200_000;
  }

type report = {
  sent : int;
  solved : int;
  infeasible : int;
  rejected : int;
  overload : int;
  errors : int;
  elapsed_s : float;
  throughput_rps : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  mean_ms : float;
  max_ms : float;
}

type tally = {
  c_sent : int Atomic.t;
  c_solved : int Atomic.t;
  c_infeasible : int Atomic.t;
  c_rejected : int Atomic.t;
  c_overload : int Atomic.t;
  c_errors : int Atomic.t;
  hist : Histogram.t;  (* free-standing: one per run, not registered *)
}

let incr a = Atomic.incr a

(* Worker [w] owns global request indices w, w+connections, ... so the
   script is a deterministic function of the config alone. *)
let worker cfg tally w =
  let rng = Rng.create ~seed:(cfg.seed + (0x9e3779b9 * (w + 1))) in
  let nwl = List.length cfg.workloads in
  let issue client k =
    let g = w + (k * cfg.connections) in
    if cfg.rate_hz > 0.0 then begin
      let u = Rng.uniform rng in
      Thread.delay (-.log (1.0 -. u) /. cfg.rate_hz)
    end;
    let id = Printf.sprintf "w%d-%d" w k in
    let req =
      Protocol.Solve
        {
          id;
          workload = List.nth cfg.workloads (g mod nwl);
          beta = cfg.beta;
          max_clusters = cfg.max_clusters;
          deadline_ms = cfg.deadline_ms;
          work_budget = cfg.work_budget;
        }
    in
    incr tally.c_sent;
    let t0 = Clock.now_s () in
    match Client.rpc client req with
    | Error _ -> incr tally.c_errors
    | Ok resp ->
      Histogram.observe tally.hist (Clock.now_s () -. t0);
      if Protocol.response_id resp <> id then incr tally.c_errors
      else (
        match resp with
        | Protocol.Solved _ -> incr tally.c_solved
        | Protocol.Infeasible _ -> incr tally.c_infeasible
        | Protocol.Rejected { reject; _ } ->
          incr tally.c_rejected;
          (match reject with
          | Protocol.Overload _ -> incr tally.c_overload
          | _ -> ())
        | Protocol.Pong _ | Protocol.Stats_reply _ -> incr tally.c_errors)
  in
  let mine = ref [] in
  let k = ref 0 in
  while (!k * cfg.connections) + w < cfg.requests do
    mine := !k :: !mine;
    Stdlib.incr k
  done;
  let mine = List.rev !mine in
  if mine <> [] then begin
    match Client.connect ~addr:cfg.addr ~port:cfg.port () with
    | Error _ ->
      (* A refused connection costs this worker its whole share. *)
      List.iter
        (fun _ ->
          incr tally.c_sent;
          incr tally.c_errors)
        mine
    | Ok client ->
      List.iter (fun k -> try issue client k with _ -> incr tally.c_errors) mine;
      Client.close client
  end

let run cfg =
  if cfg.requests <= 0 then Error "requests must be > 0"
  else if cfg.connections <= 0 then Error "connections must be > 0"
  else if cfg.workloads = [] then Error "at least one workload required"
  else begin
    let tally =
      {
        c_sent = Atomic.make 0;
        c_solved = Atomic.make 0;
        c_infeasible = Atomic.make 0;
        c_rejected = Atomic.make 0;
        c_overload = Atomic.make 0;
        c_errors = Atomic.make 0;
        hist = Histogram.create "loadgen.latency_s";
      }
    in
    let t0 = Clock.now_s () in
    let threads =
      List.init cfg.connections (fun w ->
          Thread.create (fun () -> worker cfg tally w) ())
    in
    List.iter Thread.join threads;
    let elapsed_s = Float.max 1e-9 (Clock.now_s () -. t0) in
    let ms p =
      match Histogram.percentile_opt tally.hist p with
      | Some s -> s *. 1000.0
      | None -> 0.0
    in
    let mean_ms =
      if Histogram.count tally.hist = 0 then 0.0
      else Histogram.mean tally.hist *. 1000.0
    in
    Ok
      {
        sent = Atomic.get tally.c_sent;
        solved = Atomic.get tally.c_solved;
        infeasible = Atomic.get tally.c_infeasible;
        rejected = Atomic.get tally.c_rejected;
        overload = Atomic.get tally.c_overload;
        errors = Atomic.get tally.c_errors;
        elapsed_s;
        throughput_rps = float_of_int (Atomic.get tally.c_sent) /. elapsed_s;
        p50_ms = ms 0.50;
        p90_ms = ms 0.90;
        p99_ms = ms 0.99;
        mean_ms;
        max_ms = Histogram.max_value tally.hist *. 1000.0;
      }
  end

let report_to_json r =
  Json.Obj
    [
      ("sent", Json.Num (float_of_int r.sent));
      ("solved", Json.Num (float_of_int r.solved));
      ("infeasible", Json.Num (float_of_int r.infeasible));
      ("rejected", Json.Num (float_of_int r.rejected));
      ("overload", Json.Num (float_of_int r.overload));
      ("errors", Json.Num (float_of_int r.errors));
      ("elapsed_s", Json.Num r.elapsed_s);
      ("throughput_rps", Json.Num r.throughput_rps);
      ("p50_ms", Json.Num r.p50_ms);
      ("p90_ms", Json.Num r.p90_ms);
      ("p99_ms", Json.Num r.p99_ms);
      ("mean_ms", Json.Num r.mean_ms);
      ("max_ms", Json.Num r.max_ms);
    ]

let pp_report fmt r =
  Format.fprintf fmt
    "sent %d  solved %d  infeasible %d  rejected %d (overload %d)  errors %d@\n\
     elapsed %.2fs  %.1f req/s  latency p50 %.1fms  p90 %.1fms  p99 %.1fms  \
     mean %.1fms  max %.1fms"
    r.sent r.solved r.infeasible r.rejected r.overload r.errors r.elapsed_s
    r.throughput_rps r.p50_ms r.p90_ms r.p99_ms r.mean_ms r.max_ms
