module Rng = Fbb_util.Rng
module Json = Fbb_util.Json
module Clock = Fbb_obs.Clock
module Histogram = Fbb_obs.Histogram

type config = {
  addr : string;
  port : int;
  connections : int;
  requests : int;
  rate_hz : float;
  seed : int;
  workloads : Protocol.workload list;
  beta : float;
  max_clusters : int;
  deadline_ms : float option;
  work_budget : int option;
  tenants : int;
  hot_tenant_weight : int;
}

let default ~port =
  {
    addr = "127.0.0.1";
    port;
    connections = 4;
    requests = 40;
    rate_hz = 0.0;
    seed = 1;
    workloads = [ Protocol.Generated { seed = 11; gates = 400; rows = 6 } ];
    beta = 0.05;
    max_clusters = 4;
    deadline_ms = None;
    work_budget = Some 200_000;
    tenants = 1;
    hot_tenant_weight = 1;
  }

(* Tenant of global request index [g]: tenant 0 (the hot one) takes
   [hot_tenant_weight] slots per cycle, every other tenant one slot,
   so the mix is a pure function of (tenants, weight, g) — the same
   script at any worker count. With one tenant requests stay
   client-less (wire-compatible with the pre-tenant protocol). *)
let tenant_index cfg g =
  if cfg.tenants <= 1 then None
  else begin
    let cycle = cfg.hot_tenant_weight + cfg.tenants - 1 in
    let r = g mod cycle in
    Some
      (if r < cfg.hot_tenant_weight then 0 else 1 + (r - cfg.hot_tenant_weight))
  end

let tenant_name i = Printf.sprintf "t%d" i

type tenant_row = {
  t_id : string;
  t_sent : int;
  t_solved : int;
  t_shed : int;
  t_errors : int;
  t_p50_ms : float;
  t_p99_ms : float;
}

type report = {
  sent : int;
  solved : int;
  infeasible : int;
  rejected : int;
  overload : int;
  shed : int;
  errors : int;
  elapsed_s : float;
  throughput_rps : float;
  shed_rate : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  mean_ms : float;
  max_ms : float;
  retry_p50_ms : float;
  retry_p90_ms : float;
  retry_p99_ms : float;
  retry_max_ms : float;
  queue_p50_ms : float option;
  queue_p90_ms : float option;
  queue_p99_ms : float option;
  by_tenant : tenant_row list;  (* empty when tenants <= 1 *)
}

(* Per-tenant slice of the tally; index 0 is the hot tenant. *)
type tenant_tally = {
  p_sent : int Atomic.t;
  p_solved : int Atomic.t;
  p_shed : int Atomic.t;
  p_errors : int Atomic.t;
  p_hist : Histogram.t;
}

type tally = {
  c_sent : int Atomic.t;
  c_solved : int Atomic.t;
  c_infeasible : int Atomic.t;
  c_rejected : int Atomic.t;
  c_overload : int Atomic.t;
  c_shed : int Atomic.t;
  c_errors : int Atomic.t;
  hist : Histogram.t;  (* free-standing: one per run, not registered *)
  retry_hist : Histogram.t;  (* server retry-after hints, in seconds *)
  per_tenant : tenant_tally array;  (* empty when tenants <= 1 *)
}

let incr a = Atomic.incr a

(* Worker [w] owns global request indices w, w+connections, ... so the
   script is a deterministic function of the config alone. *)
let worker cfg tally w =
  let rng = Rng.create ~seed:(cfg.seed + (0x9e3779b9 * (w + 1))) in
  let nwl = List.length cfg.workloads in
  let issue client k =
    let g = w + (k * cfg.connections) in
    if cfg.rate_hz > 0.0 then begin
      let u = Rng.uniform rng in
      Thread.delay (-.log (1.0 -. u) /. cfg.rate_hz)
    end;
    let tidx = tenant_index cfg g in
    let pt = Option.map (fun i -> tally.per_tenant.(i)) tidx in
    let pincr f = Option.iter (fun p -> Atomic.incr (f p)) pt in
    let id = Printf.sprintf "w%d-%d" w k in
    let req =
      Protocol.Solve
        {
          id;
          client = Option.map tenant_name tidx;
          workload = List.nth cfg.workloads (g mod nwl);
          beta = cfg.beta;
          max_clusters = cfg.max_clusters;
          deadline_ms = cfg.deadline_ms;
          work_budget = cfg.work_budget;
        }
    in
    incr tally.c_sent;
    pincr (fun p -> p.p_sent);
    let t0 = Clock.now_s () in
    match Client.rpc client req with
    | Error _ ->
      incr tally.c_errors;
      pincr (fun p -> p.p_errors)
    | Ok resp ->
      let latency_s = Clock.now_s () -. t0 in
      Histogram.observe tally.hist latency_s;
      Option.iter (fun p -> Histogram.observe p.p_hist latency_s) pt;
      if Protocol.response_id resp <> id then begin
        incr tally.c_errors;
        pincr (fun p -> p.p_errors)
      end
      else (
        match resp with
        | Protocol.Solved _ ->
          incr tally.c_solved;
          pincr (fun p -> p.p_solved)
        | Protocol.Infeasible _ -> incr tally.c_infeasible
        | Protocol.Rejected { reject; _ } ->
          incr tally.c_rejected;
          (match reject with
          | Protocol.Overload { retry_after_ms } ->
            incr tally.c_overload;
            incr tally.c_shed;
            pincr (fun p -> p.p_shed);
            Histogram.observe tally.retry_hist (retry_after_ms /. 1000.0)
          | Protocol.Shutting_down ->
            incr tally.c_shed;
            pincr (fun p -> p.p_shed)
          | _ -> ())
        | Protocol.Pong _ | Protocol.Stats_reply _ ->
          incr tally.c_errors;
          pincr (fun p -> p.p_errors))
  in
  let mine = ref [] in
  let k = ref 0 in
  while (!k * cfg.connections) + w < cfg.requests do
    mine := !k :: !mine;
    Stdlib.incr k
  done;
  let mine = List.rev !mine in
  if mine <> [] then begin
    match Client.connect ~addr:cfg.addr ~port:cfg.port () with
    | Error _ ->
      (* A refused connection costs this worker its whole share. *)
      List.iter
        (fun k ->
          incr tally.c_sent;
          incr tally.c_errors;
          match tenant_index cfg (w + (k * cfg.connections)) with
          | Some i ->
            Atomic.incr tally.per_tenant.(i).p_sent;
            Atomic.incr tally.per_tenant.(i).p_errors
          | None -> ())
        mine
    | Ok client ->
      List.iter (fun k -> try issue client k with _ -> incr tally.c_errors) mine;
      Client.close client
  end

let run cfg =
  if cfg.requests <= 0 then Error "requests must be > 0"
  else if cfg.connections <= 0 then Error "connections must be > 0"
  else if cfg.workloads = [] then Error "at least one workload required"
  else if cfg.tenants < 1 then Error "tenants must be >= 1"
  else if cfg.hot_tenant_weight < 1 then Error "hot-tenant weight must be >= 1"
  else begin
    let ntenants = if cfg.tenants <= 1 then 0 else cfg.tenants in
    let tally =
      {
        c_sent = Atomic.make 0;
        c_solved = Atomic.make 0;
        c_infeasible = Atomic.make 0;
        c_rejected = Atomic.make 0;
        c_overload = Atomic.make 0;
        c_shed = Atomic.make 0;
        c_errors = Atomic.make 0;
        hist = Histogram.create "loadgen.latency_s";
        retry_hist = Histogram.create "loadgen.retry_after_s";
        per_tenant =
          Array.init ntenants (fun i ->
              {
                p_sent = Atomic.make 0;
                p_solved = Atomic.make 0;
                p_shed = Atomic.make 0;
                p_errors = Atomic.make 0;
                p_hist =
                  Histogram.create
                    (Printf.sprintf "loadgen.tenant%d.latency_s" i);
              });
      }
    in
    let t0 = Clock.now_s () in
    let threads =
      List.init cfg.connections (fun w ->
          Thread.create (fun () -> worker cfg tally w) ())
    in
    List.iter Thread.join threads;
    let elapsed_s = Float.max 1e-9 (Clock.now_s () -. t0) in
    (* One stats round-trip after the run: the server-side queue-wait
       percentiles the client cannot measure (admission → dequeue). *)
    let queue_stats =
      match Client.connect ~addr:cfg.addr ~port:cfg.port () with
      | Error _ -> None
      | Ok client ->
        Fun.protect
          ~finally:(fun () -> Client.close client)
          (fun () ->
            match Client.rpc client (Protocol.Stats { id = "loadgen-stats" }) with
            | Ok (Protocol.Stats_reply { stats; _ }) -> Some stats
            | Ok _ | Error _ -> None)
    in
    let ms_of h p =
      match Histogram.percentile_opt h p with
      | Some s -> s *. 1000.0
      | None -> 0.0
    in
    let ms p = ms_of tally.hist p in
    let mean_ms =
      if Histogram.count tally.hist = 0 then 0.0
      else Histogram.mean tally.hist *. 1000.0
    in
    let sent = Atomic.get tally.c_sent in
    Ok
      {
        sent;
        solved = Atomic.get tally.c_solved;
        infeasible = Atomic.get tally.c_infeasible;
        rejected = Atomic.get tally.c_rejected;
        overload = Atomic.get tally.c_overload;
        shed = Atomic.get tally.c_shed;
        errors = Atomic.get tally.c_errors;
        elapsed_s;
        throughput_rps = float_of_int sent /. elapsed_s;
        shed_rate =
          float_of_int (Atomic.get tally.c_shed) /. float_of_int (max 1 sent);
        p50_ms = ms 0.50;
        p90_ms = ms 0.90;
        p99_ms = ms 0.99;
        mean_ms;
        max_ms = Histogram.max_value tally.hist *. 1000.0;
        retry_p50_ms = ms_of tally.retry_hist 0.50;
        retry_p90_ms = ms_of tally.retry_hist 0.90;
        retry_p99_ms = ms_of tally.retry_hist 0.99;
        retry_max_ms = Histogram.max_value tally.retry_hist *. 1000.0;
        queue_p50_ms = Option.bind queue_stats (fun s -> s.Protocol.queue_p50_ms);
        queue_p90_ms = Option.bind queue_stats (fun s -> s.Protocol.queue_p90_ms);
        queue_p99_ms = Option.bind queue_stats (fun s -> s.Protocol.queue_p99_ms);
        by_tenant =
          Array.to_list
            (Array.mapi
               (fun i p ->
                 {
                   t_id = tenant_name i;
                   t_sent = Atomic.get p.p_sent;
                   t_solved = Atomic.get p.p_solved;
                   t_shed = Atomic.get p.p_shed;
                   t_errors = Atomic.get p.p_errors;
                   t_p50_ms = ms_of p.p_hist 0.50;
                   t_p99_ms = ms_of p.p_hist 0.99;
                 })
               tally.per_tenant);
      }
  end

let report_to_json r =
  let opt name = function
    | None -> []
    | Some v -> [ (name, Json.Num v) ]
  in
  Json.Obj
    ([
       ("sent", Json.Num (float_of_int r.sent));
       ("solved", Json.Num (float_of_int r.solved));
       ("infeasible", Json.Num (float_of_int r.infeasible));
       ("rejected", Json.Num (float_of_int r.rejected));
       ("overload", Json.Num (float_of_int r.overload));
       ("shed", Json.Num (float_of_int r.shed));
       ("errors", Json.Num (float_of_int r.errors));
       ("elapsed_s", Json.Num r.elapsed_s);
       ("throughput_rps", Json.Num r.throughput_rps);
       ("shed_rate", Json.Num r.shed_rate);
       ("p50_ms", Json.Num r.p50_ms);
       ("p90_ms", Json.Num r.p90_ms);
       ("p99_ms", Json.Num r.p99_ms);
       ("mean_ms", Json.Num r.mean_ms);
       ("max_ms", Json.Num r.max_ms);
       ("retry_p50_ms", Json.Num r.retry_p50_ms);
       ("retry_p90_ms", Json.Num r.retry_p90_ms);
       ("retry_p99_ms", Json.Num r.retry_p99_ms);
       ("retry_max_ms", Json.Num r.retry_max_ms);
     ]
    @ opt "queue_p50_ms" r.queue_p50_ms
    @ opt "queue_p90_ms" r.queue_p90_ms
    @ opt "queue_p99_ms" r.queue_p99_ms
    @
    match r.by_tenant with
    | [] -> []
    | rows ->
      [
        ( "tenants",
          Json.Arr
            (List.map
               (fun row ->
                 Json.Obj
                   [
                     ("tenant", Json.Str row.t_id);
                     ("sent", Json.Num (float_of_int row.t_sent));
                     ("solved", Json.Num (float_of_int row.t_solved));
                     ("shed", Json.Num (float_of_int row.t_shed));
                     ("errors", Json.Num (float_of_int row.t_errors));
                     ("p50_ms", Json.Num row.t_p50_ms);
                     ("p99_ms", Json.Num row.t_p99_ms);
                   ])
               rows) );
      ])

let pp_report fmt r =
  Format.fprintf fmt
    "sent %d  solved %d  infeasible %d  rejected %d (overload %d)  errors %d@\n\
     elapsed %.2fs  %.1f req/s  shed rate %.1f%%  latency p50 %.1fms  \
     p90 %.1fms  p99 %.1fms  mean %.1fms  max %.1fms"
    r.sent r.solved r.infeasible r.rejected r.overload r.errors r.elapsed_s
    r.throughput_rps (100.0 *. r.shed_rate) r.p50_ms r.p90_ms r.p99_ms
    r.mean_ms r.max_ms;
  if r.overload > 0 then
    Format.fprintf fmt
      "@\nretry-after p50 %.0fms  p90 %.0fms  p99 %.0fms  max %.0fms"
      r.retry_p50_ms r.retry_p90_ms r.retry_p99_ms r.retry_max_ms;
  (match (r.queue_p50_ms, r.queue_p90_ms, r.queue_p99_ms) with
  | Some p50, Some p90, Some p99 ->
    Format.fprintf fmt "@\nserver queue wait p50 %.1fms  p90 %.1fms  p99 %.1fms"
      p50 p90 p99
  | _ -> ());
  List.iter
    (fun row ->
      Format.fprintf fmt
        "@\ntenant %s  sent %d  solved %d  shed %d  errors %d  p50 %.1fms  \
         p99 %.1fms"
        row.t_id row.t_sent row.t_solved row.t_shed row.t_errors row.t_p50_ms
        row.t_p99_ms)
    r.by_tenant
