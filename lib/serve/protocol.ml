(* Wire protocol for fbbd: one JSON document per line. See the mli for
   the contract; the shape of every document is pinned by the QCheck
   round-trip suite in test/test_serve.ml. *)

module J = Fbb_util.Json

type workload =
  | Benchmark of string
  | Generated of { seed : int; gates : int; rows : int }

let workload_key = function
  | Benchmark name -> "bench:" ^ String.lowercase_ascii name
  | Generated { seed; gates; rows } ->
    Printf.sprintf "gen:%d:%d:%d" seed gates rows

type solve = {
  id : string;
  client : string option;  (* tenant id for fair admission; *)
  workload : workload;     (* None falls back to the connection *)
  beta : float;
  max_clusters : int;
  deadline_ms : float option;
  work_budget : int option;
}

type request =
  | Solve of solve
  | Ping of { id : string }
  | Stats of { id : string }

type attempt = {
  stage : string;
  status : string;
  leakage_nw : float option;
  work : int;
}

type reject =
  | Overload of { retry_after_ms : float }
  | Shutting_down
  | Bad_request of string
  | Faulted of string

type stats_payload = {
  queue_depth : int;
  in_flight : int;
  served : int;
  shed : int;
  draining : bool;
  queue_p50_ms : float option;  (* lifetime queue-wait percentiles; *)
  queue_p90_ms : float option;  (* None until something was dequeued *)
  queue_p99_ms : float option;
}

type response =
  | Solved of {
      id : string;
      stage : string;
      levels : int array;
      leakage_nw : float;
      gap_pct : float option;
      optimal : bool;
      exhausted : bool;
      attempts : attempt list;
      elapsed_ms : float;
    }
  | Infeasible of { id : string; elapsed_ms : float }
  | Rejected of { id : string; reject : reject }
  | Pong of { id : string }
  | Stats_reply of { id : string; stats : stats_payload }

let response_id = function
  | Solved { id; _ }
  | Infeasible { id; _ }
  | Rejected { id; _ }
  | Pong { id }
  | Stats_reply { id; _ } -> id

(* ----- encoding --------------------------------------------------------- *)

let num_i i = J.Num (float_of_int i)

let opt_field name conv = function
  | None -> []
  | Some v -> [ (name, conv v) ]

let workload_fields = function
  | Benchmark name -> [ ("design", J.Str name) ]
  | Generated { seed; gates; rows } ->
    [
      ( "gen",
        J.Obj
          [ ("seed", num_i seed); ("gates", num_i gates); ("rows", num_i rows) ]
      );
    ]

let request_to_json = function
  | Solve s ->
    J.Obj
      ([ ("op", J.Str "solve"); ("id", J.Str s.id) ]
      @ opt_field "client" (fun v -> J.Str v) s.client
      @ workload_fields s.workload
      @ [ ("beta", J.Num s.beta); ("clusters", num_i s.max_clusters) ]
      @ opt_field "deadline_ms" (fun v -> J.Num v) s.deadline_ms
      @ opt_field "work_budget" num_i s.work_budget)
  | Ping { id } -> J.Obj [ ("op", J.Str "ping"); ("id", J.Str id) ]
  | Stats { id } -> J.Obj [ ("op", J.Str "stats"); ("id", J.Str id) ]

let attempt_to_json (a : attempt) =
  J.Obj
    ([ ("stage", J.Str a.stage); ("status", J.Str a.status) ]
    @ opt_field "leakage_nw" (fun v -> J.Num v) a.leakage_nw
    @ [ ("work", num_i a.work) ])

let reject_fields = function
  | Overload { retry_after_ms } ->
    [ ("reason", J.Str "overload"); ("retry_after_ms", J.Num retry_after_ms) ]
  | Shutting_down -> [ ("reason", J.Str "shutting_down") ]
  | Bad_request msg -> [ ("reason", J.Str "bad_request"); ("message", J.Str msg) ]
  | Faulted msg -> [ ("reason", J.Str "fault"); ("message", J.Str msg) ]

let response_to_json = function
  | Solved r ->
    J.Obj
      ([
         ("id", J.Str r.id);
         ("status", J.Str "solved");
         ("stage", J.Str r.stage);
         ("levels", J.Arr (Array.to_list (Array.map num_i r.levels)));
         ("leakage_nw", J.Num r.leakage_nw);
       ]
      @ opt_field "gap_pct" (fun v -> J.Num v) r.gap_pct
      @ [
          ("optimal", J.Bool r.optimal);
          ("exhausted", J.Bool r.exhausted);
          ("attempts", J.Arr (List.map attempt_to_json r.attempts));
          ("elapsed_ms", J.Num r.elapsed_ms);
        ])
  | Infeasible { id; elapsed_ms } ->
    J.Obj
      [
        ("id", J.Str id);
        ("status", J.Str "infeasible");
        ("elapsed_ms", J.Num elapsed_ms);
      ]
  | Rejected { id; reject } ->
    J.Obj
      ([ ("id", J.Str id); ("status", J.Str "rejected") ] @ reject_fields reject)
  | Pong { id } -> J.Obj [ ("id", J.Str id); ("status", J.Str "pong") ]
  | Stats_reply { id; stats } ->
    J.Obj
      ([
         ("id", J.Str id);
         ("status", J.Str "stats");
         ("queue_depth", num_i stats.queue_depth);
         ("in_flight", num_i stats.in_flight);
         ("served", num_i stats.served);
         ("shed", num_i stats.shed);
         ("draining", J.Bool stats.draining);
       ]
      @ opt_field "queue_p50_ms" (fun v -> J.Num v) stats.queue_p50_ms
      @ opt_field "queue_p90_ms" (fun v -> J.Num v) stats.queue_p90_ms
      @ opt_field "queue_p99_ms" (fun v -> J.Num v) stats.queue_p99_ms)

let encode_request r = J.to_string (request_to_json r)
let encode_response r = J.to_string (response_to_json r)

(* ----- decoding --------------------------------------------------------- *)

(* Decoders thread a [(v, string) result] monad; every missing or
   ill-typed field is an [Error], never an exception. *)

let ( let* ) = Result.bind

let field name j =
  match J.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let str name j =
  let* v = field name j in
  match J.to_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S must be a string" name)

let num name j =
  let* v = field name j in
  match J.to_num v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %S must be a number" name)

let int_field name j =
  let* f = num name j in
  if Float.is_integer f && Float.abs f <= 1e15 then Ok (int_of_float f)
  else Error (Printf.sprintf "field %S must be an integer" name)

let bool_field name j =
  let* v = field name j in
  match v with
  | J.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let opt decode name j =
  match J.member name j with
  | None -> Ok None
  | Some _ -> Result.map Option.some (decode name j)

let workload_of_json j =
  match (J.member "design" j, J.member "gen" j) with
  | Some (J.Str name), None -> Ok (Benchmark name)
  | None, Some g ->
    let* seed = int_field "seed" g in
    let* gates = int_field "gates" g in
    let* rows = int_field "rows" g in
    Ok (Generated { seed; gates; rows })
  | Some _, None -> Error "field \"design\" must be a string"
  | None, None -> Error "request needs a \"design\" or \"gen\" workload"
  | Some _, Some _ -> Error "pass either \"design\" or \"gen\", not both"

let decode_request line =
  match J.parse_opt line with
  | None -> Error "malformed JSON"
  | Some j -> (
    let* op = str "op" j in
    let* id = str "id" j in
    match op with
    | "ping" -> Ok (Ping { id })
    | "stats" -> Ok (Stats { id })
    | "solve" ->
      let* client = opt str "client" j in
      let* workload = workload_of_json j in
      let* beta = num "beta" j in
      let* max_clusters = int_field "clusters" j in
      let* deadline_ms = opt num "deadline_ms" j in
      let* work_budget = opt int_field "work_budget" j in
      Ok
        (Solve
           { id; client; workload; beta; max_clusters; deadline_ms; work_budget })
    | op -> Error (Printf.sprintf "unknown op %S" op))

let attempt_of_json j =
  let* stage = str "stage" j in
  let* status = str "status" j in
  let* leakage_nw = opt num "leakage_nw" j in
  let* work = int_field "work" j in
  Ok { stage; status; leakage_nw; work }

let attempts_of_json j =
  let* v = field "attempts" j in
  match v with
  | J.Arr items ->
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* a = attempt_of_json item in
        Ok (a :: acc))
      (Ok []) items
    |> Result.map List.rev
  | _ -> Error "field \"attempts\" must be an array"

let levels_of_json j =
  let* v = field "levels" j in
  match v with
  | J.Arr items ->
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        match J.to_num item with
        | Some f when Float.is_integer f -> Ok (int_of_float f :: acc)
        | _ -> Error "field \"levels\" must hold integers")
      (Ok []) items
    |> Result.map (fun l -> Array.of_list (List.rev l))
  | _ -> Error "field \"levels\" must be an array"

let reject_of_json j =
  let* reason = str "reason" j in
  match reason with
  | "overload" ->
    let* retry_after_ms = num "retry_after_ms" j in
    Ok (Overload { retry_after_ms })
  | "shutting_down" -> Ok Shutting_down
  | "bad_request" ->
    let* msg = str "message" j in
    Ok (Bad_request msg)
  | "fault" ->
    let* msg = str "message" j in
    Ok (Faulted msg)
  | r -> Error (Printf.sprintf "unknown reject reason %S" r)

let decode_response line =
  match J.parse_opt line with
  | None -> Error "malformed JSON"
  | Some j -> (
    let* id = str "id" j in
    let* status = str "status" j in
    match status with
    | "pong" -> Ok (Pong { id })
    | "rejected" ->
      let* reject = reject_of_json j in
      Ok (Rejected { id; reject })
    | "infeasible" ->
      let* elapsed_ms = num "elapsed_ms" j in
      Ok (Infeasible { id; elapsed_ms })
    | "stats" ->
      let* queue_depth = int_field "queue_depth" j in
      let* in_flight = int_field "in_flight" j in
      let* served = int_field "served" j in
      let* shed = int_field "shed" j in
      let* draining = bool_field "draining" j in
      let* queue_p50_ms = opt num "queue_p50_ms" j in
      let* queue_p90_ms = opt num "queue_p90_ms" j in
      let* queue_p99_ms = opt num "queue_p99_ms" j in
      Ok
        (Stats_reply
           {
             id;
             stats =
               {
                 queue_depth;
                 in_flight;
                 served;
                 shed;
                 draining;
                 queue_p50_ms;
                 queue_p90_ms;
                 queue_p99_ms;
               };
           })
    | "solved" ->
      let* stage = str "stage" j in
      let* levels = levels_of_json j in
      let* leakage_nw = num "leakage_nw" j in
      let* gap_pct = opt num "gap_pct" j in
      let* optimal = bool_field "optimal" j in
      let* exhausted = bool_field "exhausted" j in
      let* attempts = attempts_of_json j in
      let* elapsed_ms = num "elapsed_ms" j in
      Ok
        (Solved
           {
             id;
             stage;
             levels;
             leakage_nw;
             gap_pct;
             optimal;
             exhausted;
             attempts;
             elapsed_ms;
           })
    | s -> Error (Printf.sprintf "unknown status %S" s))

(* ----- framing ---------------------------------------------------------- *)

let default_max_frame = 1 lsl 20

type read_error =
  | Closed
  | Truncated
  | Oversized of int
  | Idle_timeout
  | Io of string

let read_error_to_string = function
  | Closed -> "connection closed"
  | Truncated -> "truncated frame (EOF mid-line)"
  | Oversized limit -> Printf.sprintf "frame exceeds %d bytes" limit
  | Idle_timeout -> "idle timeout (no complete frame within deadline)"
  | Io msg -> "i/o error: " ^ msg

type reader = {
  fd : Unix.file_descr;
  max_frame : int;
  buf : Buffer.t;  (* bytes read but not yet returned *)
  chunk : Bytes.t;
}

let reader ?(max_frame = default_max_frame) fd =
  { fd; max_frame; buf = Buffer.create 512; chunk = Bytes.create 4096 }

(* Pull the first complete line out of [buf], leaving the rest. *)
let take_line r =
  let s = Buffer.contents r.buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    Buffer.clear r.buf;
    Buffer.add_substring r.buf s (i + 1) (String.length s - i - 1);
    Some (String.sub s 0 i)

let rec read_frame r =
  match take_line r with
  | Some line ->
    if String.length line > r.max_frame then Error (Oversized r.max_frame)
    else Ok line
  | None ->
    if Buffer.length r.buf > r.max_frame then Error (Oversized r.max_frame)
    else begin
      match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
      | 0 -> if Buffer.length r.buf = 0 then Error Closed else Error Truncated
      | n ->
        Buffer.add_subbytes r.buf r.chunk 0 n;
        read_frame r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_frame r
      (* SO_RCVTIMEO expiry: the socket stays usable, but the server
         treats it as a slow-loris eviction with a typed close. *)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Error Idle_timeout
      | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
      | exception Sys_error msg -> Error (Io msg)
    end

let write_frame fd line =
  let s = line ^ "\n" in
  let n = String.length s in
  let rec go off =
    if off >= n then Ok ()
    else begin
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | exception Sys_error msg -> Error msg
    end
  in
  go 0
