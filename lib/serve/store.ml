(* Persistent prepared-context store. See the mli for the contract.

   Entry layout (one file per key, named <md5(key) hex>.ctx):

     fbb-ctx-1 <version hex> <md5(payload) hex> <payload bytes> <key>\n
     <payload>

   The header is a single line of space-separated fields with the key
   last (workload keys contain no spaces or newlines, but the parser
   reassembles trailing fields anyway), followed by the raw payload.
   Writes go through Atomic_io so a crash mid-spill leaves the
   previous entry intact. *)

type t = { dir : string }

let magic = "fbb-ctx-1"

(* The version stamp ties every entry to the binary that wrote it: a
   marshalled context is only byte-compatible with the exact closure
   of types it was written by, so entries from other builds are
   misses, not candidates. *)
let version =
  let v =
    lazy
      (try Digest.to_hex (Digest.file Sys.executable_name)
       with _ ->
         Digest.to_hex (Digest.string (Sys.ocaml_version ^ Sys.executable_name)))
  in
  fun () -> Lazy.force v

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ~dir =
  match
    mkdir_p dir;
    if Sys.is_directory dir then Ok { dir }
    else Error (Printf.sprintf "store: %s is not a directory" dir)
  with
  | r -> r
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "store: cannot create %s: %s" dir
             (Unix.error_message e))
  | exception Sys_error msg -> Error ("store: " ^ msg)

let dir t = t.dir

let entry_path t ~key =
  Filename.concat t.dir (Digest.to_hex (Digest.string key) ^ ".ctx")

type load_result = Hit of string | Miss | Corrupt of string

let remove_quiet path = try Sys.remove path with Sys_error _ -> ()

let header ~key payload =
  String.concat " "
    [
      magic; version (); Digest.to_hex (Digest.string payload);
      string_of_int (String.length payload); key;
    ]

let save t ~key payload =
  if String.contains key '\n' then Error "store: key contains a newline"
  else begin
    let content = header ~key payload ^ "\n" ^ payload in
    match Fbb_util.Atomic_io.write_atomic ~path:(entry_path t ~key) content with
    | () -> Ok ()
    | exception Sys_error msg -> Error ("store: " ^ msg)
    | exception Unix.Unix_error (e, _, _) ->
      Error ("store: " ^ Unix.error_message e)
    | exception exn -> Error ("store: " ^ Printexc.to_string exn)
  end

(* Validate an entry completely before handing its payload out; any
   framing defect deletes the file so the next lookup rebuilds. *)
let load t ~key =
  let path = entry_path t ~key in
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> Miss
  | content -> (
    let corrupt reason =
      remove_quiet path;
      Corrupt reason
    in
    match String.index_opt content '\n' with
    | None -> corrupt "no header line"
    | Some nl -> (
      let head = String.sub content 0 nl in
      match String.split_on_char ' ' head with
      | m :: ver :: sum :: len :: key_parts when m = magic -> (
        let entry_key = String.concat " " key_parts in
        match int_of_string_opt len with
        | None -> corrupt "malformed payload length"
        | Some n ->
          if ver <> version () then begin
            (* A different binary wrote this: stale, not corrupt. *)
            remove_quiet path;
            Miss
          end
          else if entry_key <> key then corrupt "key mismatch"
          else if String.length content - nl - 1 <> n then
            corrupt "payload length mismatch"
          else
            let payload = String.sub content (nl + 1) n in
            if Digest.to_hex (Digest.string payload) <> sum then
              corrupt "checksum mismatch"
            else Hit payload)
      | _ -> corrupt "bad magic"))

let entries t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter (fun n -> Filename.check_suffix n ".ctx")
    |> List.sort compare
