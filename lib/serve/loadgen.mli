(** Closed-loop load generator for fbbd.

    [connections] worker threads each hold one connection and issue
    [Solve] requests one at a time (closed loop: a worker never has
    two requests in flight). Arrivals are Poisson-ish: each worker
    draws exponential inter-arrival gaps at [rate_hz] from its own
    deterministic {!Fbb_util.Rng} stream, so a given [(seed,
    connections, requests)] triple always produces the same request
    script — ids, workloads, budgets and ordering per worker — which
    is what lets the bench axis and the CI smoke gate on its numbers.

    Latencies (send → response) land in a {!Fbb_obs.Histogram}; the
    report carries its p50/p90/p99, mean and max. *)

type config = {
  addr : string;
  port : int;
  connections : int;  (** worker threads, one connection each *)
  requests : int;  (** total, spread round-robin across workers *)
  rate_hz : float;  (** per-worker mean arrival rate; 0 = no pacing *)
  seed : int;
  workloads : Protocol.workload list;  (** per-request round-robin mix *)
  beta : float;
  max_clusters : int;
  deadline_ms : float option;
  work_budget : int option;
  tenants : int;
      (** tenant count for the per-tenant load mix; 1 means no [client]
          ids on the wire (the pre-tenant script, byte-identical) *)
  hot_tenant_weight : int;
      (** requests per cycle for tenant ["t0"]; every other tenant gets
          one — e.g. [tenants = 2, hot_tenant_weight = 10] is the
          10:1 starvation mix *)
}

val default : port:int -> config
(** 4 connections, 40 requests, unpaced, seed 1, one small generated
    workload, beta 0.05, 4 clusters, work budget 200k, single tenant. *)

type tenant_row = {
  t_id : string;
  t_sent : int;
  t_solved : int;
  t_shed : int;  (** [Overload] + [Shutting_down] rejects *)
  t_errors : int;
  t_p50_ms : float;
  t_p99_ms : float;
}

type report = {
  sent : int;
  solved : int;
  infeasible : int;
  rejected : int;  (** typed rejects of any kind *)
  overload : int;  (** the [Overload] subset of [rejected] *)
  shed : int;  (** [Overload] + [Shutting_down] rejects *)
  errors : int;  (** transport failures and undecodable frames *)
  elapsed_s : float;
  throughput_rps : float;
  shed_rate : float;  (** [shed / max 1 sent] *)
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  mean_ms : float;
  max_ms : float;
  retry_p50_ms : float;
      (** distribution of the server's [Overload] retry-after hints;
          0 when nothing was shed for overload *)
  retry_p90_ms : float;
  retry_p99_ms : float;
  retry_max_ms : float;
  queue_p50_ms : float option;
      (** server-side queue-wait percentiles from one final [Stats]
          round-trip; [None] when the server was unreachable or had
          dequeued nothing *)
  queue_p90_ms : float option;
  queue_p99_ms : float option;
  by_tenant : tenant_row list;
      (** per-tenant breakdown (latency percentiles from each tenant's
          own histogram); empty when [tenants <= 1] *)
}

val run : config -> (report, string) result
(** [Error] only on configuration nonsense (no requests, no
    workloads); per-request failures are counted, never raised. *)

val report_to_json : report -> Fbb_util.Json.t
val pp_report : Format.formatter -> report -> unit
