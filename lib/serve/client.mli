(** A blocking fbbd client connection.

    Thin wrapper over {!Protocol}: one TCP connection, synchronous
    send/receive. {!rpc} is the common path — one request, one
    response. Note that a server batching by netlist answers pipelined
    [Solve] requests {e out of order} (responses carry the request id
    for exactly this reason); callers that pipeline must match on
    {!Protocol.response_id} themselves via {!send}/{!recv}. *)

type t

val connect : ?addr:string -> port:int -> unit -> (t, string) result
(** TCP connect; [addr] defaults to 127.0.0.1. *)

val send : t -> Protocol.request -> (unit, string) result
val recv : t -> (Protocol.response, string) result
(** Next response frame; read errors and undecodable frames come back
    as [Error] (the server never sends either). *)

val rpc : t -> Protocol.request -> (Protocol.response, string) result
(** {!send} then {!recv}. *)

val rpc_retry :
  ?retries:int ->
  ?retry_budget_ms:float ->
  ?seed:int ->
  t ->
  Protocol.request ->
  (Protocol.response, string) result * int
(** {!rpc} with bounded retry on [Rejected Overload]: up to [retries]
    re-sends (default 0 — plain rpc), each after a backoff of
    [max retry_after_hint (25ms * 2^attempt)] scaled by a seeded
    jitter in [0.5, 1.0)x, with total sleep bounded by
    [retry_budget_ms] (default 1000). Returns the final result plus
    the number of attempts made. Transport errors are not retried —
    the connection is broken, not busy. *)

val close : t -> unit
(** Idempotent. *)
