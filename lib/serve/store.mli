(** Persistent prepared-context store: a versioned on-disk cache of
    serialized prepared problem contexts, keyed by workload key, so a
    restarted [fbbd] skips re-preparation (placement, delay cache,
    nominal STA, path enumeration) and answers its first [Solved]
    warm.

    The store maps an opaque [key] (the protocol's workload key) to an
    opaque payload (the server's marshalled context). Each entry is
    one file, named by the key's digest, written crash-safely through
    {!Fbb_util.Atomic_io} — a reader sees either the complete previous
    entry or the complete new one, never a torn write.

    {b Trust model.} Entries are never trusted blindly:

    - every entry carries a {e version} — the digest of the running
      executable — so a cache written by a different binary is treated
      as a miss (and the stale file is removed), never deserialized;
    - every entry carries an MD5 checksum of its payload; a mismatch
      (bit rot, torn external writes) is a typed [Corrupt], the file
      is deleted, and the caller rebuilds from scratch;
    - the {e server} additionally signs off the first loaded context
      per process against a scratch rebuild (see DESIGN §17) — the
      store itself only guarantees integrity, not semantic validity.

    All operations are total: failures come back as [Error]/[Corrupt],
    never as exceptions, so a broken disk degrades the server to
    in-memory-only operation instead of failing requests. *)

type t

val open_ : dir:string -> (t, string) result
(** Open (creating directories as needed) a store rooted at [dir].
    [Error] when the directory cannot be created or is not writable. *)

val dir : t -> string

val version : unit -> string
(** The running binary's version stamp (digest of the executable),
    baked into every entry written by this process. *)

type load_result =
  | Hit of string  (** verified payload *)
  | Miss  (** no entry, or an entry from a different binary version *)
  | Corrupt of string
      (** the entry failed checksum or framing validation; it has been
          deleted, rebuild from scratch (the reason, rendered) *)

val load : t -> key:string -> load_result

val save : t -> key:string -> string -> (unit, string) result
(** Publish [payload] under [key] atomically. [Error] on I/O failure
    (disk full, permissions, exhausted transient retries) — the
    previous entry, if any, is untouched. *)

val entry_path : t -> key:string -> string
(** Where [key]'s entry lives (exists or not) — for tests that corrupt
    entries deliberately. *)

val entries : t -> string list
(** Basenames of all entry files currently on disk, sorted. *)
