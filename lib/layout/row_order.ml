module P = Fbb_place.Placement

type t = {
  permutation : int array;
  boundaries_before : int;
  boundaries_after : int;
  overhead_before_pct : float;
  overhead_after_pct : float;
  hpwl_before_um : float;
  hpwl_after_um : float;
}

let order_by_level placement ~levels =
  if Array.length levels <> P.num_rows placement then
    invalid_arg "Row_order.order_by_level: levels length mismatch";
  let idx = Array.init (Array.length levels) (fun i -> i) in
  (* Stable by construction: sort on (level, original index). *)
  Array.sort
    (fun a b ->
      match compare levels.(a) levels.(b) with 0 -> compare a b | c -> c)
    idx;
  idx

let apply placement ~levels =
  let before = Area.of_assignment placement ~levels in
  let hpwl_before = P.half_perimeter_wirelength placement in
  let perm = order_by_level placement ~levels in
  let placement' = P.permute_rows placement perm in
  let levels' = Array.map (fun r -> levels.(r)) perm in
  let after = Area.of_assignment placement' ~levels:levels' in
  ( {
      permutation = perm;
      boundaries_before = before.Area.boundaries;
      boundaries_after = after.Area.boundaries;
      overhead_before_pct = before.Area.overhead_pct;
      overhead_after_pct = after.Area.overhead_pct;
      hpwl_before_um = hpwl_before;
      hpwl_after_um = P.half_perimeter_wirelength placement';
    },
    placement' )
