(** Area accounting for a clustered-FBB layout.

    Two overheads exist on top of the unbiased floorplan:
    - well separation between vertically adjacent rows assigned different
      bias levels (their wells sit at different potentials and the design
      rules require a spacing strip);
    - the bias contact cells counted by {!Bias_rails} (these consume row
      slack, not die area, unless a row overflows).

    The paper reports the well-separation overhead always below 5 %. *)

val well_separation_um : float
(** Height of one separation strip (0.117 um, a twelfth of the row
    height). *)

type t = {
  base_area_um2 : float;
  boundaries : int;  (** adjacent row pairs with differing levels *)
  separation_area_um2 : float;
  overhead_pct : float;
}

val of_assignment : Fbb_place.Placement.t -> levels:int array -> t
