module P = Fbb_place.Placement

let well_separation_um = P.row_height_um /. 12.0

type t = {
  base_area_um2 : float;
  boundaries : int;
  separation_area_um2 : float;
  overhead_pct : float;
}

let of_assignment placement ~levels =
  if Array.length levels <> P.num_rows placement then
    invalid_arg "Area.of_assignment: levels length mismatch";
  let width = P.die_width_um placement in
  let base = width *. P.die_height_um placement in
  let boundaries = ref 0 in
  for r = 0 to Array.length levels - 2 do
    if levels.(r) <> levels.(r + 1) then incr boundaries
  done;
  let sep = float_of_int !boundaries *. well_separation_um *. width in
  {
    base_area_um2 = base;
    boundaries = !boundaries;
    separation_area_um2 = sep;
    overhead_pct = 100.0 *. sep /. base;
  }
