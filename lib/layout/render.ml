module P = Fbb_place.Placement
module N = Fbb_netlist.Netlist

let ascii placement ~levels =
  if Array.length levels <> P.num_rows placement then
    invalid_arg "Render.ascii: levels length mismatch";
  let buf = Buffer.create 4096 in
  let capacity = P.row_capacity_sites placement in
  let columns = 64 in
  let sites_per_col = max 1 ((capacity + columns - 1) / columns) in
  let nl = P.netlist placement in
  for r = 0 to P.num_rows placement - 1 do
    let occupancy = Array.make columns false in
    Array.iter
      (fun g ->
        let lo = P.site_of placement g / sites_per_col in
        let w = (N.cell nl g).Fbb_tech.Cell_library.width_sites in
        let hi = (P.site_of placement g + w - 1) / sites_per_col in
        for c = lo to min (columns - 1) hi do
          occupancy.(c) <- true
        done)
      (P.row_gates placement r);
    Buffer.add_string buf (Printf.sprintf "row %3d |" r);
    Array.iter
      (fun occ ->
        Buffer.add_char buf
          (if occ then Char.chr (Char.code '0' + min 9 levels.(r)) else '.'))
      occupancy;
    Buffer.add_string buf
      (Printf.sprintf "| vbs=%.2fV util=%4.1f%%\n"
         (Fbb_tech.Bias.voltage levels.(r))
         (100.0 *. P.row_utilization placement r))
  done;
  Buffer.contents buf

(* Color per level: NBB gray, then a warm ramp. *)
let color level =
  match level with
  | 0 -> "#b8c0c8"
  | 1 -> "#ffe08a"
  | 2 -> "#ffd166"
  | 3 -> "#ffb347"
  | 4 -> "#ff9f1c"
  | 5 -> "#fb8b24"
  | 6 -> "#f3722c"
  | 7 -> "#f15b3c"
  | 8 -> "#ef4043"
  | 9 -> "#d7263d"
  | _ -> "#a4133c"

let svg ?(cell_outline = true) placement ~levels =
  if Array.length levels <> P.num_rows placement then
    invalid_arg "Render.svg: levels length mismatch";
  let scale = 8.0 in
  let margin = 24.0 in
  let w_um = P.die_width_um placement in
  let sep = Area.well_separation_um in
  let nrows = P.num_rows placement in
  (* Row y-offsets including separation strips. *)
  let y_of = Array.make (nrows + 1) 0.0 in
  for r = 1 to nrows do
    let extra =
      if r < nrows && levels.(r) <> levels.(r - 1) then sep else 0.0
    in
    y_of.(r) <- y_of.(r - 1) +. P.row_height_um +. extra
  done;
  let total_h = y_of.(nrows) in
  let buf = Buffer.create (1 lsl 16) in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let px x = margin +. (x *. scale) in
  let py y = margin +. (y *. scale) in
  out
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" \
     viewBox=\"0 0 %.0f %.0f\">\n"
    ((w_um *. scale) +. (2.0 *. margin))
    ((total_h *. scale) +. (2.0 *. margin) +. 40.0)
    ((w_um *. scale) +. (2.0 *. margin))
    ((total_h *. scale) +. (2.0 *. margin) +. 40.0);
  out "<rect width=\"100%%\" height=\"100%%\" fill=\"#ffffff\"/>\n";
  let nl = P.netlist placement in
  for r = 0 to nrows - 1 do
    let y = y_of.(r) in
    (* Row background with supply rails. *)
    out
      "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
       fill=\"#f3f4f6\" stroke=\"#d0d4d8\" stroke-width=\"0.5\"/>\n"
      (px 0.0) (py y) (w_um *. scale)
      (P.row_height_um *. scale);
    Array.iter
      (fun g ->
        let cell = N.cell nl g in
        let x = float_of_int (P.site_of placement g) *. P.site_width_um in
        let cw =
          float_of_int cell.Fbb_tech.Cell_library.width_sites
          *. P.site_width_um
        in
        out
          "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
           fill=\"%s\"%s/>\n"
          (px x)
          (py (y +. 0.1))
          (cw *. scale)
          ((P.row_height_um -. 0.2) *. scale)
          (color levels.(r))
          (if cell_outline then
             " stroke=\"#00000022\" stroke-width=\"0.4\""
           else ""))
      (P.row_gates placement r);
    (* Well-separation strip. *)
    if r < nrows - 1 && levels.(r) <> levels.(r + 1) then
      out
        "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
         fill=\"#7c3aed33\"/>\n"
        (px 0.0)
        (py (y +. P.row_height_um))
        (w_um *. scale) (sep *. scale)
  done;
  (* Bias rails: one vertical pair per distinct non-zero level, spread
     around the die centre; contact marks on rows using that level. *)
  let used_levels =
    List.filter (fun l -> l > 0)
      (List.sort_uniq compare (Array.to_list levels))
  in
  List.iteri
    (fun idx level ->
      let x0 =
        w_um *. (0.5 +. (float_of_int idx -. (float_of_int (List.length used_levels - 1) /. 2.0)) *. 0.08)
      in
      let pair_gap = 0.6 in
      List.iteri
        (fun pin dx ->
          out
            "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
             stroke=\"%s\" stroke-width=\"2\"/>\n"
            (px (x0 +. dx))
            (py (-1.0))
            (px (x0 +. dx))
            (py (total_h +. 1.0))
            (if pin = 0 then "#1d4ed8" else "#dc2626"))
        [ 0.0; pair_gap ];
      out
        "<text x=\"%.1f\" y=\"%.1f\" font-size=\"10\" fill=\"#111\" \
         font-family=\"monospace\">vbs%d=%.2fV</text>\n"
        (px x0)
        (py (-1.4))
        idx
        (Fbb_tech.Bias.voltage level);
      for r = 0 to nrows - 1 do
        if levels.(r) = level then
          out
            "<rect x=\"%.1f\" y=\"%.1f\" width=\"4\" height=\"4\" \
             fill=\"#111\"/>\n"
            (px (x0 +. (pair_gap /. 2.0)))
            (py (y_of.(r) +. (P.row_height_um /. 2.0)))
      done)
    used_levels;
  (* Legend. *)
  let legend_y = total_h +. 2.5 in
  List.iteri
    (fun idx level ->
      out
        "<rect x=\"%.1f\" y=\"%.1f\" width=\"12\" height=\"12\" fill=\"%s\"/>\n"
        (px (float_of_int idx *. 14.0))
        (py legend_y) (color level);
      out
        "<text x=\"%.1f\" y=\"%.1f\" font-size=\"10\" \
         font-family=\"monospace\">%.2fV</text>\n"
        (px (float_of_int idx *. 14.0) +. 14.0)
        (py legend_y +. 10.0)
        (Fbb_tech.Bias.voltage level))
    (List.sort_uniq compare (Array.to_list levels));
  out "</svg>\n";
  Buffer.contents buf

let save_svg ?cell_outline ~path placement ~levels =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (svg ?cell_outline placement ~levels))
