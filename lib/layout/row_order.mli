(** Cluster-aware vertical row ordering.

    The well-separation overhead (see {!Area}) is proportional to the
    number of adjacent row pairs assigned different bias levels. Which
    logical row sits at which vertical position is the placer's choice,
    so once the optimizer has assigned levels, rows can be re-stacked to
    make clusters vertically contiguous — at most [C - 1] boundaries
    remain, the minimum possible.

    Re-stacking moves whole rows and therefore stretches vertical wires;
    {!apply} reports the wirelength change alongside the area win so the
    trade can be judged per design (the ablation lives in
    [bench/main.exe area]). *)

type t = {
  permutation : int array;
      (** [permutation.(pos)] = original row index now at position [pos] *)
  boundaries_before : int;
  boundaries_after : int;
  overhead_before_pct : float;
  overhead_after_pct : float;
  hpwl_before_um : float;
  hpwl_after_um : float;
}

val order_by_level : Fbb_place.Placement.t -> levels:int array -> int array
(** A permutation grouping equal-level rows contiguously, preserving the
    original relative order within each group (stable). *)

val apply : Fbb_place.Placement.t -> levels:int array -> t * Fbb_place.Placement.t
(** Evaluate and perform the re-stacking: returns the report and a new
    placement with rows permuted (gate row assignments and geometry
    updated; the netlist is shared). *)
