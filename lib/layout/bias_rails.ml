module P = Fbb_place.Placement

type row_cost = {
  row : int;
  level : int;
  windows : int;
  added_sites : int;
  utilization_before : float;
  utilization_after : float;
}

type t = {
  rows : row_cost array;
  bias_pairs : int;
  max_utilization_increase : float;
  feasible : bool;
}

let contact_pitch_um = 50.0
let tap_width_sites = 1
let contact_width_sites = 3

let windows_of placement =
  let width = P.die_width_um placement in
  max 1 (int_of_float (Float.ceil (width /. contact_pitch_um)))

let insert placement ~levels =
  if Array.length levels <> P.num_rows placement then
    invalid_arg "Bias_rails.insert: levels length mismatch";
  let capacity = float_of_int (P.row_capacity_sites placement) in
  let windows = windows_of placement in
  let rows =
    Array.mapi
      (fun r level ->
        let used = P.row_used_sites placement r in
        (* Baseline taps are in every row; a biased row swaps each tap for
           two bias contact cells. *)
        let base = windows * tap_width_sites in
        let with_bias =
          if level = 0 then base else windows * 2 * contact_width_sites
        in
        let added = with_bias - base in
        {
          row = r;
          level;
          windows;
          added_sites = added;
          utilization_before = (float_of_int used +. float_of_int base) /. capacity;
          utilization_after =
            (float_of_int used +. float_of_int with_bias) /. capacity;
        })
      levels
  in
  let bias_pairs =
    List.length
      (List.filter (fun l -> l > 0) (List.sort_uniq compare (Array.to_list levels)))
  in
  let max_increase =
    Array.fold_left
      (fun acc rc ->
        Float.max acc (rc.utilization_after -. rc.utilization_before))
      0.0 rows
  in
  let feasible = Array.for_all (fun rc -> rc.utilization_after <= 1.0) rows in
  { rows; bias_pairs; max_utilization_increase = max_increase; feasible }

let max_supported_pairs placement ~utilization_cap =
  let capacity = float_of_int (P.row_capacity_sites placement) in
  let windows = float_of_int (windows_of placement) in
  let worst_used =
    let m = ref 0 in
    for r = 0 to P.num_rows placement - 1 do
      m := max !m (P.row_used_sites placement r)
    done;
    float_of_int !m
  in
  (* Each extra pair adds two contact cells per window to the rows that tap
     it; count how many pairs fit in the worst row. *)
  let per_pair = windows *. float_of_int (2 * contact_width_sites) in
  let slack = (utilization_cap *. capacity) -. worst_used in
  max 0 (int_of_float (slack /. per_pair))
