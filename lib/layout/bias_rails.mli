(** Physical implementation of row-level body biasing (paper section 3.3).

    Each distinct non-zero bias voltage is distributed as a pair of
    top-metal rails (one for the NMOS bodies, one for the PMOS bodies).
    A biased row places a pair of body-bias contact cells under its rails
    in every contact window (the design rules require body contacts every
    {!contact_pitch_um}); an unbiased row keeps the standard single tap
    cell per window, tied to the supply lines.

    The key claims this module quantifies:
    - at most two bias-voltage pairs fit without blowing up row
      utilization, which is why the paper restricts C <= 3 (NBB plus two
      voltages);
    - the per-row utilization increase stays within ~6 %. *)

type row_cost = {
  row : int;
  level : int;
  windows : int;  (** contact windows in the row *)
  added_sites : int;  (** extra sites the bias contacts occupy *)
  utilization_before : float;
  utilization_after : float;
}

type t = {
  rows : row_cost array;
  bias_pairs : int;  (** distinct non-zero levels = rail pairs routed *)
  max_utilization_increase : float;  (** worst-case fractional increase *)
  feasible : bool;  (** no row exceeds 100 % utilization *)
}

val contact_pitch_um : float
(** 50 um. *)

val tap_width_sites : int
(** Standard well-tap width (1 site), present in every window regardless
    of biasing. *)

val contact_width_sites : int
(** One body-bias contact cell (3 sites); a biased row needs two per
    window (NMOS and PMOS). *)

val insert : Fbb_place.Placement.t -> levels:int array -> t
(** Compute the contact-insertion cost of a row-level assignment.
    [levels] gives each row's bias level (0 = NBB).
    Raises [Invalid_argument] on a length mismatch. *)

val max_supported_pairs : Fbb_place.Placement.t -> utilization_cap:float -> int
(** How many simultaneous bias pairs rows could afford before some row's
    utilization crosses [utilization_cap] — the paper's argument for
    C <= 3. *)
