(** Layout rendering: ASCII summaries and SVG drawings of a placed design
    with its bias clusters and rails (the paper's Figures 3 and 6). *)

val ascii : Fbb_place.Placement.t -> levels:int array -> string
(** One line per row: row index, bias level digit per occupied site-chunk,
    utilization. Compact enough for terminals and EXPERIMENTS.md. *)

val svg : ?cell_outline:bool -> Fbb_place.Placement.t -> levels:int array -> string
(** Full drawing: rows as horizontal slabs, cells colored by bias level,
    well-separation strips between differently-biased rows, one vertical
    rail pair per distinct non-zero level through the core (as in the
    paper's c5315 layout), and contact-cell marks every 50 um on biased
    rows. [cell_outline] (default true) strokes individual cells. *)

val save_svg :
  ?cell_outline:bool ->
  path:string ->
  Fbb_place.Placement.t ->
  levels:int array ->
  unit
