type point = {
  vbs : float;
  delay_factor : float;
  speedup_pct : float;
  subthreshold_factor : float;
  junction_factor : float;
  leak_factor : float;
}

let point device vbs =
  {
    vbs;
    delay_factor = Device.delay_factor device ~vbs;
    speedup_pct = Device.speedup_pct device ~vbs;
    subthreshold_factor = Device.subthreshold_factor device ~vbs;
    junction_factor = Device.junction_factor device ~vbs;
    leak_factor = Device.leakage_factor device ~vbs;
  }

let sweep ?(device = Device.default) ~lo ~hi ~steps () =
  if steps < 1 then invalid_arg "Characterize.sweep: steps must be >= 1";
  Array.init (steps + 1) (fun i ->
      let vbs = lo +. ((hi -. lo) *. float_of_int i /. float_of_int steps) in
      point device vbs)

let figure1 ?(device = Device.default) () =
  sweep ~device ~lo:0.0 ~hi:0.95 ~steps:19 ()

let generator_levels ?(device = Device.default) () =
  Array.map (fun vbs -> point device vbs) (Bias.levels ())

let cell_table lib cell ~load =
  Array.map
    (fun vbs ->
      ( Cell_library.delay_ps lib cell ~load ~vbs,
        Cell_library.leakage_nw lib cell ~vbs ))
    (Bias.levels ())

let to_csv points =
  let csv =
    Fbb_util.Csv.create
      ~headers:
        [
          "vbs_v";
          "delay_factor";
          "speedup_pct";
          "subthreshold_factor";
          "junction_factor";
          "leak_factor";
        ]
  in
  Array.iter
    (fun p ->
      Fbb_util.Csv.add_row csv
        [
          Printf.sprintf "%.3f" p.vbs;
          Printf.sprintf "%.5f" p.delay_factor;
          Printf.sprintf "%.3f" p.speedup_pct;
          Printf.sprintf "%.4f" p.subthreshold_factor;
          Printf.sprintf "%.4f" p.junction_factor;
          Printf.sprintf "%.4f" p.leak_factor;
        ])
    points;
  csv
