(** The body-bias voltage generator abstraction.

    The paper assumes a central generator with 50 mV resolution and a usable
    forward-bias range of 0 to 0.5 V, giving [P = 11] selectable levels
    (level 0 = no body bias). All optimizer code indexes bias voltages by
    level. *)

val resolution : float
(** Generator step, 0.05 V. *)

val vmax : float
(** Largest usable forward bias, 0.5 V. *)

val count : int
(** Number of levels [P] (11, including NBB at level 0). *)

val voltage : int -> float
(** [voltage j] is the bias voltage of level [j], [0 <= j < count].
    Raises [Invalid_argument] outside that range. *)

val levels : unit -> float array
(** All [count] voltages, ascending. A fresh copy on each call. *)

val nearest_level : float -> int
(** Level whose voltage is closest to the given value, clamped to the
    usable range. *)

val pmos_bias : vdd:float -> int -> float
(** Voltage applied to the PMOS body for a level: [vdd - voltage j]. *)

val rbb_count : int
(** Reverse-bias levels the generator can also produce (8, i.e. 0 to
    -0.35 V in 50 mV steps — deeper RBB is counter-productive, see
    {!Device.optimal_rbb}). Level 0 is shared with the forward range. *)

val rbb_voltage : int -> float
(** [rbb_voltage j] is [-j * resolution], for [0 <= j < rbb_count]. *)

val rbb_levels : unit -> float array
(** All reverse levels, descending from 0. *)
