(** Tiny transient simulator for a CMOS inverter discharging a load
    capacitance, used to cross-validate the analytic {!Device} delay model
    (the role SPICE plays in the paper).

    The pull-down network is modelled as an alpha-power-law current source:
    saturation current [Ion = k * (vdd - vth)^alpha], linear-region current
    scaled by [v / vdsat]. The output waveform is integrated with explicit
    Euler steps and the 50 % crossing gives the propagation delay. *)

val propagation_delay :
  ?device:Device.params -> ?cap_ff:float -> ?steps:int -> vbs:float -> unit ->
  float
(** Fall propagation delay in picoseconds for the given body bias.
    [cap_ff] is the load capacitance in femtofarads (default 1.0),
    [steps] the integration resolution (default 4000). *)

val delay_factor : ?device:Device.params -> vbs:float -> unit -> float
(** Simulated delay at [vbs] divided by simulated delay at NBB; should track
    {!Device.delay_factor} within a few percent. *)

val waveform :
  ?device:Device.params -> ?cap_ff:float -> ?steps:int -> vbs:float -> unit ->
  (float * float) array
(** Sampled [(time_ps, v_out)] trace of the discharge, for inspection. *)
