(** Reduced standard-cell library.

    Mirrors the paper's experimental setup: designs are mapped on a reduced
    library of inverters, AND, OR, NAND, NOR gates and D flip-flops, each in
    several drive strengths. Delay and leakage of every cell are
    characterized against the body-bias voltage through {!Device}.

    Units: delays in picoseconds, leakage in nanowatts, widths in placement
    sites. The delay model is linear in fanout load:
    [delay = (intrinsic + load_per_fanout * fanout) * Device.delay_factor]. *)

type kind =
  | Inv
  | Buf
  | Nand2
  | Nand3
  | Nand4
  | Nor2
  | Nor3
  | And2
  | And3
  | Or2
  | Or3
  | Dff

type drive = X1 | X2 | X4

type cell = {
  kind : kind;
  drive : drive;
  name : string;  (** e.g. ["NAND2_X2"] *)
  fanin : int;  (** number of logic inputs (1 for [Inv], [Buf], [Dff]) *)
  intrinsic_ps : float;  (** unloaded delay at NBB *)
  load_ps : float;  (** delay increment per fanout at NBB *)
  leak_nw : float;  (** off-state leakage power at NBB *)
  width_sites : int;  (** footprint in placement sites *)
}

type t
(** A characterized library: a device model plus its cells. *)

val default : t
(** The calibrated 45 nm-class library used in all experiments. *)

val create : device:Device.params -> t
(** Same cell set characterized under a different device model. *)

val device : t -> Device.params

val cells : t -> cell array
(** All cells; do not mutate. *)

val find : t -> kind -> drive -> cell
(** Raises [Not_found] if the (kind, drive) combination is absent. *)

val find_name : t -> string -> cell
(** Lookup by cell name, e.g. ["INV_X1"]. Raises [Not_found]. *)

val kind_fanin : kind -> int
(** Logic inputs of a gate kind. *)

val kind_name : kind -> string
val drive_name : drive -> string

val is_sequential : kind -> bool
(** True only for [Dff]. *)

val delay_ps : t -> cell -> load:int -> vbs:float -> float
(** Propagation delay of [cell] driving [load] fanouts at bias [vbs]. *)

val leakage_nw : t -> cell -> vbs:float -> float
(** Leakage power of [cell] at bias [vbs]. *)

val all_kinds : kind list
val all_drives : drive list
