type params = {
  vdd : float;
  vth0 : float;
  gamma_bs : float;
  alpha : float;
  n_vt : float;
  junction_onset : float;
  junction_vt : float;
  junction_scale : float;
}

(* alpha solves ((vdd-vth0)/(vdd-vth0+gamma*0.5))^alpha = 0.79 (21% speed-up
   at 0.5 V); n_vt solves exp(gamma*0.5/n_vt) = 12.74 (Figure 1 anchors). *)
let default =
  {
    vdd = 1.0;
    vth0 = 0.45;
    gamma_bs = 0.20;
    alpha = log 0.79 /. log (0.55 /. 0.65);
    n_vt = 0.1 /. log 12.74;
    junction_onset = 0.55;
    junction_vt = 0.04;
    junction_scale = 2.0;
  }

let vth p ~vbs = p.vth0 -. (p.gamma_bs *. vbs)

let delay_factor p ~vbs =
  let overdrive0 = p.vdd -. p.vth0 in
  let overdrive = p.vdd -. vth p ~vbs in
  (overdrive0 /. overdrive) ** p.alpha

let speedup_pct p ~vbs = (1.0 -. delay_factor p ~vbs) *. 100.0

let subthreshold_factor p ~vbs = exp (p.gamma_bs *. vbs /. p.n_vt)

let junction_factor p ~vbs =
  Float.max 0.0
    (p.junction_scale
    *. (exp ((vbs -. p.junction_onset) /. p.junction_vt)
       -. exp (-.p.junction_onset /. p.junction_vt)))

(* Band-to-band tunnelling grows with *reverse* bias and is what makes deep
   RBB counter-productive in scaled nodes (the paper's section 3.2
   argument, after Narendra et al.). Zero at and above NBB. *)
let btbt_factor p ~vbs =
  ignore p;
  if vbs >= 0.0 then 0.0 else 0.02 *. (exp (-.vbs /. 0.15) -. 1.0)

let leakage_factor p ~vbs =
  subthreshold_factor p ~vbs +. junction_factor p ~vbs +. btbt_factor p ~vbs

(* The BTBT term gives leakage-vs-RBB a minimum; deeper reverse bias hurts. *)
let optimal_rbb p =
  let rec search lo hi =
    if hi -. lo < 1e-4 then (lo +. hi) /. 2.0
    else
      let m1 = lo +. ((hi -. lo) /. 3.0) in
      let m2 = hi -. ((hi -. lo) /. 3.0) in
      if leakage_factor p ~vbs:m1 < leakage_factor p ~vbs:m2 then search lo m2
      else search m1 hi
  in
  search (-0.6) 0.0

(* The junction component is negligible at low bias and explosive at high
   bias; once it reaches a tenth of the subthreshold component, additional
   forward bias buys speed at a disproportionate current cost. *)
let usable_vbs_limit p =
  let acceptable vbs =
    junction_factor p ~vbs <= 0.1 *. subthreshold_factor p ~vbs
  in
  let rec search lo hi =
    if hi -. lo < 1e-4 then lo
    else
      let mid = (lo +. hi) /. 2.0 in
      if acceptable mid then search mid hi else search lo mid
  in
  search 0.0 p.vdd
