(* Units: capacitance in fF, current in mA, voltage in V => time in ps. *)

let k_drive = 1.0 (* mA / V^alpha *)

let saturation_current device ~vbs =
  let vth = Device.vth device ~vbs in
  k_drive *. ((device.Device.vdd -. vth) ** device.Device.alpha)

let pulldown_current device ~vbs ~vout =
  let vth = Device.vth device ~vbs in
  let vdsat = (device.Device.vdd -. vth) /. 2.0 in
  let ion = saturation_current device ~vbs in
  if vout >= vdsat then ion else ion *. vout /. vdsat

let simulate device ~cap_ff ~steps ~vbs =
  let vdd = device.Device.vdd in
  let dt = cap_ff *. vdd /. saturation_current device ~vbs /. float_of_int steps in
  let rec run t v trace =
    let trace = (t, v) :: trace in
    if v <= vdd /. 2.0 then (t, List.rev trace)
    else
      let i = pulldown_current device ~vbs ~vout:v in
      let v' = v -. (i *. dt /. cap_ff) in
      run (t +. dt) v' trace
  in
  run 0.0 vdd []

let propagation_delay ?(device = Device.default) ?(cap_ff = 1.0)
    ?(steps = 4000) ~vbs () =
  fst (simulate device ~cap_ff ~steps ~vbs)

let delay_factor ?(device = Device.default) ~vbs () =
  let d = propagation_delay ~device ~vbs () in
  let d0 = propagation_delay ~device ~vbs:0.0 () in
  d /. d0

let waveform ?(device = Device.default) ?(cap_ff = 1.0) ?(steps = 4000) ~vbs
    () =
  Array.of_list (snd (simulate device ~cap_ff ~steps ~vbs))
