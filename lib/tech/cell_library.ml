type kind =
  | Inv
  | Buf
  | Nand2
  | Nand3
  | Nand4
  | Nor2
  | Nor3
  | And2
  | And3
  | Or2
  | Or3
  | Dff

type drive = X1 | X2 | X4

type cell = {
  kind : kind;
  drive : drive;
  name : string;
  fanin : int;
  intrinsic_ps : float;
  load_ps : float;
  leak_nw : float;
  width_sites : int;
}

type t = { device : Device.params; cells : cell array }

let all_kinds =
  [ Inv; Buf; Nand2; Nand3; Nand4; Nor2; Nor3; And2; And3; Or2; Or3; Dff ]

let all_drives = [ X1; X2; X4 ]

let kind_name = function
  | Inv -> "INV"
  | Buf -> "BUF"
  | Nand2 -> "NAND2"
  | Nand3 -> "NAND3"
  | Nand4 -> "NAND4"
  | Nor2 -> "NOR2"
  | Nor3 -> "NOR3"
  | And2 -> "AND2"
  | And3 -> "AND3"
  | Or2 -> "OR2"
  | Or3 -> "OR3"
  | Dff -> "DFF"

let drive_name = function X1 -> "X1" | X2 -> "X2" | X4 -> "X4"

let kind_fanin = function
  | Inv | Buf | Dff -> 1
  | Nand2 | Nor2 | And2 | Or2 -> 2
  | Nand3 | Nor3 | And3 | Or3 -> 3
  | Nand4 -> 4

let is_sequential = function
  | Dff -> true
  | Inv | Buf | Nand2 | Nand3 | Nand4 | Nor2 | Nor3 | And2 | And3 | Or2 | Or3
    -> false

(* X1 base characterization: (intrinsic ps, ps/fanout, leak nW, sites). *)
let base = function
  | Inv -> (8.0, 6.0, 0.10, 2)
  | Buf -> (14.0, 5.0, 0.15, 3)
  | Nand2 -> (12.0, 7.0, 0.16, 3)
  | Nand3 -> (16.0, 8.0, 0.22, 4)
  | Nand4 -> (20.0, 9.0, 0.28, 5)
  | Nor2 -> (14.0, 8.0, 0.16, 3)
  | Nor3 -> (19.0, 10.0, 0.22, 4)
  | And2 -> (16.0, 6.0, 0.20, 4)
  | And3 -> (20.0, 7.0, 0.26, 5)
  | Or2 -> (18.0, 7.0, 0.20, 4)
  | Or3 -> (22.0, 8.0, 0.26, 5)
  | Dff -> (45.0, 6.0, 0.50, 8)

(* Larger drives push the same load faster at the cost of wider, leakier
   transistors; intrinsic delay is mildly reduced. *)
let drive_scaling = function
  | X1 -> (1.0, 1.0, 1.0, 1.0)
  | X2 -> (0.92, 0.5, 2.0, 1.5)
  | X4 -> (0.86, 0.25, 4.0, 2.4)

let make_cell kind drive =
  let intrinsic, load, leak, sites = base kind in
  let si, sl, slk, sw = drive_scaling drive in
  {
    kind;
    drive;
    name = kind_name kind ^ "_" ^ drive_name drive;
    fanin = kind_fanin kind;
    intrinsic_ps = intrinsic *. si;
    load_ps = load *. sl;
    leak_nw = leak *. slk;
    width_sites =
      int_of_float (Float.round (float_of_int sites *. sw)) |> max 2;
  }

let create ~device =
  let cells =
    List.concat_map
      (fun kind -> List.map (make_cell kind) all_drives)
      all_kinds
    |> Array.of_list
  in
  { device; cells }

let default = create ~device:Device.default

let device t = t.device
let cells t = t.cells

let find t kind drive =
  let n = Array.length t.cells in
  let rec go i =
    if i >= n then raise Not_found
    else if t.cells.(i).kind = kind && t.cells.(i).drive = drive then
      t.cells.(i)
    else go (i + 1)
  in
  go 0

let find_name t name =
  let n = Array.length t.cells in
  let rec go i =
    if i >= n then raise Not_found
    else if String.equal t.cells.(i).name name then t.cells.(i)
    else go (i + 1)
  in
  go 0

let delay_ps t cell ~load ~vbs =
  let nominal = cell.intrinsic_ps +. (cell.load_ps *. float_of_int load) in
  nominal *. Device.delay_factor t.device ~vbs

let leakage_nw t cell ~vbs = cell.leak_nw *. Device.leakage_factor t.device ~vbs
