let resolution = 0.05
let vmax = 0.5
let count = 11

let voltage j =
  if j < 0 || j >= count then invalid_arg "Bias.voltage: level out of range";
  float_of_int j *. resolution

let levels () = Array.init count voltage

let nearest_level v =
  let clamped = Float.max 0.0 (Float.min vmax v) in
  let j = int_of_float (Float.round (clamped /. resolution)) in
  max 0 (min (count - 1) j)

let pmos_bias ~vdd j = vdd -. voltage j

let rbb_count = 8

let rbb_voltage j =
  if j < 0 || j >= rbb_count then
    invalid_arg "Bias.rbb_voltage: level out of range";
  if j = 0 then 0.0 else -.resolution *. float_of_int j

let rbb_levels () = Array.init rbb_count rbb_voltage
