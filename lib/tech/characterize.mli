(** Library characterization sweeps (reproduces the data behind Figure 1). *)

type point = {
  vbs : float;
  delay_factor : float;  (** delay relative to NBB *)
  speedup_pct : float;
  subthreshold_factor : float;
  junction_factor : float;
  leak_factor : float;  (** total leakage relative to NBB *)
}

val sweep :
  ?device:Device.params -> lo:float -> hi:float -> steps:int -> unit ->
  point array
(** [steps + 1] evenly spaced points from [lo] to [hi] inclusive. *)

val figure1 : ?device:Device.params -> unit -> point array
(** The Figure 1 sweep: vbs from 0 to 0.95 V in 50 mV steps. *)

val generator_levels : ?device:Device.params -> unit -> point array
(** One point per usable generator level (0 to 0.5 V, 50 mV steps). *)

val cell_table :
  Cell_library.t -> Cell_library.cell -> load:int -> (float * float) array
(** Per-level [(delay_ps, leak_nw)] characterization of one cell, indexed by
    bias level, i.e. the rows of the paper's pre-characterized library. *)

val to_csv : point array -> Fbb_util.Csv.t
(** Export a sweep as CSV (for plotting Figure 1). *)
