(** Analytic 45 nm-class MOSFET model with forward body bias (FBB).

    Replaces the paper's SPICE simulations on the STMicroelectronics 45 nm
    kit. The model is calibrated to the two anchors the paper reports for an
    inverter (Figure 1): 21 % speed-up and 12.74x leakage increase at
    vbs = 0.5 V, with forward source-body junction current making bias
    voltages beyond ~0.5 V useless.

    Conventions: [vbs] is the forward body bias voltage applied to the NMOS
    body (the PMOS body simultaneously receives [Vdd - vbs]); [vbs = 0] is
    the no-body-bias (NBB) operating point. All factors are relative to
    NBB. *)

type params = {
  vdd : float;  (** supply voltage, V *)
  vth0 : float;  (** nominal threshold voltage at NBB, V *)
  gamma_bs : float;  (** body-effect coefficient dVth/dvbs, V/V *)
  alpha : float;  (** alpha-power-law velocity saturation index *)
  n_vt : float;  (** subthreshold swing factor n*vT, V *)
  junction_onset : float;  (** forward junction turn-on voltage, V *)
  junction_vt : float;  (** junction exponential slope, V *)
  junction_scale : float;
      (** junction current at onset, normalized to nominal subthreshold
          leakage *)
}

val default : params
(** Calibrated parameter set (see DESIGN.md section 4). *)

val vth : params -> vbs:float -> float
(** Threshold voltage under forward body bias: [vth0 - gamma_bs * vbs]. *)

val delay_factor : params -> vbs:float -> float
(** Gate delay relative to NBB; decreases with [vbs]. Alpha-power law:
    [((vdd - vth0) / (vdd - vth vbs)) ^ alpha]. *)

val speedup_pct : params -> vbs:float -> float
(** Speed-up in percent relative to NBB: [(1 - delay_factor) * 100]. *)

val subthreshold_factor : params -> vbs:float -> float
(** Subthreshold leakage relative to NBB: [exp (gamma_bs * vbs / n_vt)]. *)

val junction_factor : params -> vbs:float -> float
(** Forward source-body junction current, normalized to nominal
    subthreshold leakage. Negligible below ~0.5 V, explosive above; zero
    under reverse bias. *)

val btbt_factor : params -> vbs:float -> float
(** Band-to-band tunnelling component, significant only under reverse
    bias ([vbs < 0]); it is what limits RBB's usefulness in scaled nodes
    (section 3.2 of the paper). *)

val leakage_factor : params -> vbs:float -> float
(** Total off-state current relative to NBB: subthreshold plus junction
    plus BTBT. Negative [vbs] (reverse bias) reduces it down to the BTBT
    floor; see {!optimal_rbb}. *)

val optimal_rbb : params -> float
(** The reverse-bias voltage minimizing total leakage (around -0.35 V in
    the calibrated model): beyond it BTBT dominates and leakage grows
    again. *)

val usable_vbs_limit : params -> float
(** Largest bias voltage at which forward junction current stays below a
    tenth of the subthreshold component — the paper's rationale for capping
    vbs at 0.5 V. *)
