(** Liberty-style text dump of the characterized cell library.

    Produces a human-readable [.lib]-flavoured description of every cell —
    footprint, pin directions, per-fanout delay coefficients and leakage —
    plus one [operating_conditions] group per body-bias level carrying the
    delay and leakage scale factors. It is an export format for inspection
    and interchange, not a full Liberty implementation (no lookup tables,
    no power arcs). *)

val to_string : ?name:string -> Cell_library.t -> string

val save : ?name:string -> Cell_library.t -> path:string -> unit
