type hypergraph = {
  nv : int;
  weights : int array;
  nets : int array array;
}

let cut_size h side =
  let cut = ref 0 in
  Array.iter
    (fun net ->
      if Array.length net > 1 then begin
        let s0 = side.(net.(0)) in
        if Array.exists (fun v -> side.(v) <> s0) net then incr cut
      end)
    h.nets;
  !cut

(* Gain-bucket structure: doubly-linked lists per gain value, offset so
   gains in [-maxg, maxg] map to [0, 2*maxg]. *)
type buckets = {
  maxg : int;
  heads : int array; (* bucket -> first vertex or -1 *)
  nxt : int array; (* vertex -> next in bucket *)
  prv : int array; (* vertex -> prev in bucket, or -(bucket+2) at head *)
  gain : int array;
  inb : bool array; (* vertex currently in a bucket *)
  mutable top : int; (* highest non-empty bucket (hint) *)
}

let bk_create nv maxg =
  {
    maxg;
    heads = Array.make ((2 * maxg) + 1) (-1);
    nxt = Array.make nv (-1);
    prv = Array.make nv (-1);
    gain = Array.make nv 0;
    inb = Array.make nv false;
    top = -1;
  }

let bk_insert b v g =
  let idx = g + b.maxg in
  b.gain.(v) <- g;
  b.nxt.(v) <- b.heads.(idx);
  if b.heads.(idx) >= 0 then b.prv.(b.heads.(idx)) <- v;
  b.prv.(v) <- -(idx + 2);
  b.heads.(idx) <- v;
  b.inb.(v) <- true;
  if idx > b.top then b.top <- idx

let bk_remove b v =
  if b.inb.(v) then begin
    let n = b.nxt.(v) in
    let p = b.prv.(v) in
    if p < -1 then begin
      let idx = -p - 2 in
      b.heads.(idx) <- n;
      if n >= 0 then b.prv.(n) <- p
    end
    else begin
      b.nxt.(p) <- n;
      if n >= 0 then b.prv.(n) <- p
    end;
    b.inb.(v) <- false
  end

let bk_update b v g = if b.inb.(v) then begin bk_remove b v; bk_insert b v g end

(* Highest-gain vertex satisfying [ok]; scans down from the top hint. *)
let bk_best b ok =
  let rec scan idx =
    if idx < 0 then None
    else begin
      let rec walk v =
        if v < 0 then None else if ok v then Some v else walk b.nxt.(v)
      in
      match walk b.heads.(idx) with
      | Some v -> Some v
      | None ->
        if b.heads.(idx) < 0 && idx = b.top then b.top <- idx - 1;
        scan (idx - 1)
    end
  in
  scan b.top

let bisect ?(passes = 8) ?(balance = 0.1) ?(seed = 7) h =
  let nv = h.nv in
  let side = Array.make nv false in
  if nv = 0 then side
  else begin
    let rng = Fbb_util.Rng.create ~seed in
    let total_weight = Array.fold_left ( + ) 0 h.weights in
    (* Interleaved start in a shuffled order: halves start balanced. *)
    let order = Array.init nv (fun i -> i) in
    Fbb_util.Rng.shuffle rng order;
    let w1 = ref 0 in
    Array.iter
      (fun v ->
        if 2 * !w1 < total_weight then begin
          side.(v) <- true;
          w1 := !w1 + h.weights.(v)
        end)
      order;
    let lo = int_of_float ((0.5 -. balance) *. float_of_int total_weight) in
    let hi = int_of_float ((0.5 +. balance) *. float_of_int total_weight) in
    (* Per-vertex net membership. *)
    let deg = Array.make nv 0 in
    Array.iter (Array.iter (fun v -> deg.(v) <- deg.(v) + 1)) h.nets;
    let vnets = Array.map (fun d -> Array.make d 0) deg in
    let fill = Array.make nv 0 in
    Array.iteri
      (fun ni net ->
        Array.iter
          (fun v ->
            vnets.(v).(fill.(v)) <- ni;
            fill.(v) <- fill.(v) + 1)
          net)
      h.nets;
    let maxg = Array.fold_left max 1 deg in
    let n_true = Array.make (Array.length h.nets) 0 in
    let recount () =
      Array.iteri
        (fun ni net ->
          n_true.(ni) <-
            Array.fold_left (fun a v -> if side.(v) then a + 1 else a) 0 net)
        h.nets
    in
    let vertex_gain v =
      let g = ref 0 in
      Array.iter
        (fun ni ->
          let sz = Array.length h.nets.(ni) in
          let on_my_side = if side.(v) then n_true.(ni) else sz - n_true.(ni) in
          let on_other = sz - on_my_side in
          if on_my_side = 1 then incr g;
          if on_other = 0 then decr g)
        vnets.(v);
      !g
    in
    let run_pass () =
      recount ();
      let b = bk_create nv maxg in
      for v = 0 to nv - 1 do
        bk_insert b v (vertex_gain v)
      done;
      let wt = ref 0 in
      for v = 0 to nv - 1 do
        if side.(v) then wt := !wt + h.weights.(v)
      done;
      let moves = Array.make nv (-1) in
      let nmoves = ref 0 in
      let cur_gain = ref 0 in
      let best_gain = ref 0 in
      let best_prefix = ref 0 in
      let balance_ok v =
        let wt' = if side.(v) then !wt - h.weights.(v) else !wt + h.weights.(v) in
        wt' >= lo && wt' <= hi
      in
      let continue = ref true in
      while !continue do
        match bk_best b balance_ok with
        | None -> continue := false
        | Some v ->
          bk_remove b v;
          let from_true = side.(v) in
          (* FM incremental gain update around the move of v. *)
          Array.iter
            (fun ni ->
              let net = h.nets.(ni) in
              let sz = Array.length net in
              let tn = if from_true then sz - n_true.(ni) else n_true.(ni) in
              (* tn = count on destination side before the move *)
              if tn = 0 then
                Array.iter
                  (fun u -> if b.inb.(u) then bk_update b u (b.gain.(u) + 1))
                  net
              else if tn = 1 then
                Array.iter
                  (fun u ->
                    if b.inb.(u) && side.(u) <> from_true then
                      bk_update b u (b.gain.(u) - 1))
                  net;
              (* perform the move on this net's counter *)
              n_true.(ni) <- (if from_true then n_true.(ni) - 1 else n_true.(ni) + 1);
              let fn = if from_true then n_true.(ni) else sz - n_true.(ni) in
              (* fn = count on source side after the move *)
              if fn = 0 then
                Array.iter
                  (fun u -> if b.inb.(u) then bk_update b u (b.gain.(u) - 1))
                  net
              else if fn = 1 then
                Array.iter
                  (fun u ->
                    if b.inb.(u) && side.(u) = from_true && u <> v then
                      bk_update b u (b.gain.(u) + 1))
                  net)
            vnets.(v);
          cur_gain := !cur_gain + b.gain.(v);
          side.(v) <- not from_true;
          wt := (if from_true then !wt - h.weights.(v) else !wt + h.weights.(v));
          moves.(!nmoves) <- v;
          incr nmoves;
          if !cur_gain > !best_gain then begin
            best_gain := !cur_gain;
            best_prefix := !nmoves
          end
      done;
      (* Roll back moves beyond the best prefix. *)
      for k = !nmoves - 1 downto !best_prefix do
        let v = moves.(k) in
        side.(v) <- not side.(v)
      done;
      !best_gain
    in
    let rec improve p =
      if p < passes then
        let g = run_pass () in
        if g > 0 then improve (p + 1)
    in
    improve 0;
    side
  end
