(** Row-based standard-cell placement.

    Stands in for the paper's Synopsys Physical Compiler run. A recursive
    min-cut bisection ({!Partition}) produces a cell order with strong
    connectivity locality; rows are then filled serpentine-fashion to a
    target utilization. What the downstream FBB optimization needs from
    placement is exactly this locality: logically related cells — and
    hence critical paths — concentrate in a few adjacent rows.

    Geometry: sites of {!site_width_um} within rows of {!row_height_um};
    a row's capacity in sites is identical across the design. *)

open Fbb_netlist

type t

val site_width_um : float
(** 0.2 um. *)

val row_height_um : float
(** 1.4 um. *)

val place :
  ?utilization:float ->
  ?target_rows:int ->
  ?seed:int ->
  Netlist.t ->
  t
(** Place all gates. [utilization] (default 0.7) sets the spatial slack
    per row; [target_rows] forces the paper's row counts (default: the
    squarest floorplan). Deterministic for fixed arguments.

    Raises [Invalid_argument] if [utilization] is not within (0, 1] or the
    design cannot fit the requested rows at 100 % utilization. *)

val netlist : t -> Netlist.t
val num_rows : t -> int

val row_gates : t -> int -> Netlist.id array
(** Gates of a row in x order. Do not mutate. *)

val row_of : t -> Netlist.id -> int
(** Row index of a gate; -1 for ports. *)

val site_of : t -> Netlist.id -> int
(** Leftmost occupied site of a gate within its row. *)

val row_capacity_sites : t -> int

val row_used_sites : t -> int -> int

val row_utilization : t -> int -> float

val die_width_um : t -> float
val die_height_um : t -> float

val permute_rows : t -> int array -> t
(** [permute_rows t perm] re-stacks rows vertically: the row at position
    [pos] of the result is the original row [perm.(pos)]. [perm] must be
    a permutation of [0 .. num_rows - 1]; raises [Invalid_argument]
    otherwise. In-row geometry is untouched; the netlist is shared. *)

val half_perimeter_wirelength : t -> float
(** Total HPWL over all nets, in um — the placement quality metric. *)

val pp_summary : Format.formatter -> t -> unit
