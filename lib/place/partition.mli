(** Fiduccia-Mattheyses min-cut bisection on a hypergraph.

    The generic kernel under the recursive-bisection placer. Vertices are
    dense ints with integer weights; nets are vertex lists. *)

type hypergraph = {
  nv : int;
  weights : int array;  (** per-vertex weight, length [nv] *)
  nets : int array array;  (** each net lists its vertices (indexes < nv) *)
}

val bisect :
  ?passes:int ->
  ?balance:float ->
  ?seed:int ->
  hypergraph ->
  bool array
(** Partition into sides [false]/[true], minimizing the number of cut nets
    subject to each side holding within [0.5 +- balance] (default 0.1) of
    the total weight. Runs up to [passes] (default 8) FM improvement
    passes from a seeded interleaved start; deterministic for fixed
    arguments. *)

val cut_size : hypergraph -> bool array -> int
(** Number of nets with vertices on both sides. *)
