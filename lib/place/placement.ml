open Fbb_netlist
module CL = Fbb_tech.Cell_library

type t = {
  nl : Netlist.t;
  rows : Netlist.id array array; (* per row, x order *)
  row_of : int array; (* node id -> row, -1 for ports *)
  site_of : int array;
  capacity : int;
}

let site_width_um = 0.2
let row_height_um = 1.4

let netlist t = t.nl
let num_rows t = Array.length t.rows
let row_gates t r = t.rows.(r)
let row_of t i = t.row_of.(i)
let site_of t i = t.site_of.(i)
let row_capacity_sites t = t.capacity

let width nl g = (Netlist.cell nl g).CL.width_sites

let row_used_sites t r =
  Array.fold_left (fun acc g -> acc + width t.nl g) 0 t.rows.(r)

let row_utilization t r =
  float_of_int (row_used_sites t r) /. float_of_int t.capacity

let die_width_um t = float_of_int t.capacity *. site_width_um
let die_height_um t = float_of_int (num_rows t) *. row_height_um

(* Recursive min-cut bisection down to small leaves yields the linear cell
   order. Nets crossing a region boundary are projected into each
   sub-region (terminal propagation is omitted: row granularity does not
   need it). *)
let ordering nl ~seed =
  let gates = Netlist.gates nl in
  let order = ref [] in
  let rec recurse ids seed =
    if Array.length ids <= 12 then
      Array.iter (fun g -> order := g :: !order) ids
    else begin
      let index_of = Hashtbl.create (Array.length ids) in
      Array.iteri (fun k g -> Hashtbl.add index_of g k) ids;
      let nets = ref [] in
      Array.iter
        (fun g ->
          let members =
            Array.to_list (Netlist.fanouts nl g)
            |> List.filter_map (Hashtbl.find_opt index_of)
          in
          let members =
            match Hashtbl.find_opt index_of g with
            | Some k -> k :: members
            | None -> members
          in
          match members with
          | [] | [ _ ] -> ()
          | ms -> nets := Array.of_list ms :: !nets)
        (Array.append (Netlist.inputs nl) gates);
      let h =
        {
          Partition.nv = Array.length ids;
          weights = Array.map (fun g -> width nl g) ids;
          nets = Array.of_list !nets;
        }
      in
      let side = Partition.bisect ~seed h in
      let left = ref [] and right = ref [] in
      Array.iteri
        (fun k g -> if side.(k) then right := g :: !right else left := g :: !left)
        ids;
      recurse (Array.of_list (List.rev !left)) ((seed * 2) + 1);
      recurse (Array.of_list (List.rev !right)) ((seed * 2) + 2)
    end
  in
  recurse gates seed;
  Array.of_list (List.rev !order)

let default_rows nl ~utilization =
  (* Squarest floorplan: rows * row_height ~ capacity * site_width. *)
  let total = float_of_int (Netlist.total_width_sites nl) /. utilization in
  let sites_per_row_height = row_height_um /. site_width_um in
  max 1 (int_of_float (Float.round (sqrt (total /. sites_per_row_height))))

let place ?(utilization = 0.7) ?target_rows ?(seed = 42) nl =
  if utilization <= 0.0 || utilization > 1.0 then
    invalid_arg "Placement.place: utilization out of (0, 1]";
  let rows_wanted =
    match target_rows with Some r -> r | None -> default_rows nl ~utilization
  in
  if rows_wanted < 1 then invalid_arg "Placement.place: need at least 1 row";
  let total_sites = Netlist.total_width_sites nl in
  let capacity =
    int_of_float
      (Float.ceil
         (float_of_int total_sites /. utilization /. float_of_int rows_wanted))
  in
  if capacity * rows_wanted < total_sites then
    invalid_arg "Placement.place: design does not fit";
  let order = ordering nl ~seed in
  let n = Netlist.size nl in
  let row_of = Array.make n (-1) in
  let site_of = Array.make n 0 in
  let rows = Array.make rows_wanted [] in
  let budget = float_of_int total_sites /. float_of_int rows_wanted in
  let row = ref 0 in
  let used = ref 0 in
  let cumulative = ref 0 in
  Array.iter
    (fun g ->
      let w = width nl g in
      (* Advance once this row's share of the cumulative width is met, so
         every row ends up near the same utilization. *)
      if
        !row < rows_wanted - 1
        && float_of_int !cumulative >= float_of_int (!row + 1) *. budget
      then begin
        incr row;
        used := 0
      end;
      row_of.(g) <- !row;
      site_of.(g) <- !used;
      used := !used + w;
      cumulative := !cumulative + w;
      rows.(!row) <- g :: rows.(!row))
    order;
  let rows = Array.map (fun l -> Array.of_list (List.rev l)) rows in
  (* Serpentine: odd rows run right-to-left; mirror their site offsets. *)
  Array.iteri
    (fun r gates ->
      if r land 1 = 1 then begin
        let u = Array.fold_left (fun acc g -> acc + width nl g) 0 gates in
        Array.iter
          (fun g -> site_of.(g) <- u - site_of.(g) - width nl g)
          gates;
        let rev = Array.copy gates in
        let m = Array.length gates in
        Array.iteri (fun k g -> rev.(m - 1 - k) <- g) gates;
        rows.(r) <- rev
      end)
    rows;
  { nl; rows; row_of; site_of; capacity }

let permute_rows t perm =
  let n = Array.length t.rows in
  if Array.length perm <> n then
    invalid_arg "Placement.permute_rows: wrong length";
  let seen = Array.make n false in
  Array.iter
    (fun p ->
      if p < 0 || p >= n || seen.(p) then
        invalid_arg "Placement.permute_rows: not a permutation";
      seen.(p) <- true)
    perm;
  let rows = Array.init n (fun pos -> t.rows.(perm.(pos))) in
  let row_of = Array.copy t.row_of in
  Array.iteri
    (fun pos gates -> Array.iter (fun g -> row_of.(g) <- pos) gates)
    rows;
  { t with rows; row_of }

let half_perimeter_wirelength t =
  let nl = t.nl in
  let total = ref 0.0 in
  let consider driver =
    let fanouts = Netlist.fanouts nl driver in
    if Array.length fanouts > 0 then begin
      let xs g = (float_of_int t.site_of.(g) +. (float_of_int (width nl g) /. 2.0)) *. site_width_um in
      let ys g = float_of_int t.row_of.(g) *. row_height_um in
      let pts =
        Array.to_list fanouts @ [ driver ]
        |> List.filter (fun g -> t.row_of.(g) >= 0)
      in
      match pts with
      | [] | [ _ ] -> ()
      | p0 :: rest ->
        let x0 = xs p0 and y0 = ys p0 in
        let minx, maxx, miny, maxy =
          List.fold_left
            (fun (a, b, c, d) g ->
              ( Float.min a (xs g),
                Float.max b (xs g),
                Float.min c (ys g),
                Float.max d (ys g) ))
            (x0, x0, y0, y0) rest
        in
        total := !total +. (maxx -. minx) +. (maxy -. miny)
    end
  in
  Array.iter consider (Netlist.gates nl);
  Array.iter consider (Netlist.inputs nl);
  !total

let pp_summary fmt t =
  Format.fprintf fmt
    "%d rows x %d sites (%.1f x %.1f um), %d gates, avg util %.1f%%, HPWL %.0f um"
    (num_rows t) t.capacity (die_width_um t) (die_height_um t)
    (Netlist.gate_count t.nl)
    (100.0
    *. (float_of_int (Netlist.total_width_sites t.nl)
       /. float_of_int (t.capacity * num_rows t)))
    (half_perimeter_wirelength t)
