type spec = {
  name : string;
  gates : int;
  rows : int;
  ilp_tractable : bool;
  generate : ?lib:Fbb_tech.Cell_library.t -> unit -> Netlist.t;
}

let all =
  [
    {
      name = "c1355";
      gates = 439;
      rows = 13;
      ilp_tractable = true;
      generate =
        (fun ?lib () ->
          Generators.ecc_checker ?lib ~target_gates:439 ~data_bits:32
            ~check_bits:8 ~coverage:5 ~stride:2 ());
    };
    {
      name = "c3540";
      gates = 842;
      rows = 15;
      ilp_tractable = true;
      generate =
        (fun ?lib () ->
          Generators.alu ?lib ~target_gates:842 ~bits:8 ~stages:2 ());
    };
    {
      name = "c5315";
      gates = 1308;
      rows = 23;
      ilp_tractable = true;
      generate =
        (fun ?lib () ->
          Generators.alu ?lib ~target_gates:1308 ~bits:9 ~stages:3 ());
    };
    {
      name = "c7552";
      gates = 1666;
      rows = 26;
      ilp_tractable = true;
      generate =
        (fun ?lib () ->
          Generators.adder_comparator ?lib ~target_gates:1666 ~bits:34 ());
    };
    {
      name = "adder_128bits";
      gates = 2026;
      rows = 28;
      ilp_tractable = true;
      generate =
        (fun ?lib () ->
          Generators.prefix_adder ?lib ~registered_inputs:true ~target_gates:2026
            ~bits:128 ());
    };
    {
      name = "c6288";
      gates = 2740;
      rows = 33;
      ilp_tractable = true;
      generate =
        (fun ?lib () ->
          Generators.array_multiplier ?lib ~target_gates:2740 ~bits:16 ());
    };
    {
      name = "Industrial1";
      gates = 4219;
      rows = 41;
      ilp_tractable = true;
      generate =
        (fun ?lib () -> Generators.random_module ?lib ~seed:11 ~gates:4219 ());
    };
    {
      name = "Industrial2";
      gates = 10464;
      rows = 63;
      ilp_tractable = false;
      generate =
        (fun ?lib () -> Generators.random_module ?lib ~seed:12 ~gates:10464 ());
    };
    {
      name = "Industrial3";
      gates = 23898;
      rows = 94;
      ilp_tractable = false;
      generate =
        (fun ?lib () -> Generators.random_module ?lib ~seed:13 ~gates:23898 ());
    };
  ]

let names = List.map (fun s -> s.name) all

let find name =
  let lowered = String.lowercase_ascii name in
  match
    List.find_opt (fun s -> String.lowercase_ascii s.name = lowered) all
  with
  | Some s -> s
  | None -> raise Not_found
