module CL = Fbb_tech.Cell_library

type kind = Input | Output | Gate of CL.cell

type id = int

type t = {
  lib : CL.t;
  names : string array;
  kinds : kind array;
  fanins : id array array;
  fanouts : id array array;
  by_name : (string, id) Hashtbl.t;
  inputs : id array;
  outputs : id array;
  gates : id array;
}

exception Combinational_cycle of string

let library t = t.lib
let size t = Array.length t.names
let name t i = t.names.(i)
let kind t i = t.kinds.(i)
let fanins t i = t.fanins.(i)
let fanouts t i = t.fanouts.(i)

let is_gate t i = match t.kinds.(i) with Gate _ -> true | Input | Output -> false

let is_sequential t i =
  match t.kinds.(i) with
  | Gate c -> CL.is_sequential c.CL.kind
  | Input | Output -> false

let inputs t = t.inputs
let outputs t = t.outputs
let gates t = t.gates
let gate_count t = Array.length t.gates

let find t n =
  match Hashtbl.find_opt t.by_name n with
  | Some i -> i
  | None -> raise Not_found

let cell t i =
  match t.kinds.(i) with
  | Gate c -> c
  | Input | Output -> invalid_arg "Netlist.cell: not a gate"

let total_width_sites t =
  Array.fold_left (fun acc g -> acc + (cell t g).CL.width_sites) 0 t.gates

let stats t =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun g ->
      let n = (cell t g).CL.name in
      Hashtbl.replace tbl n
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl n)))
    t.gates;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Combinational topological order: edges into a flip-flop's D pin are cut,
   so flip-flops act as sources. Kahn's algorithm; leftover nodes indicate a
   combinational cycle. *)
let topo_order t =
  let n = size t in
  let indeg = Array.make n 0 in
  for i = 0 to n - 1 do
    if not (is_sequential t i) then indeg.(i) <- Array.length t.fanins.(i)
  done;
  let order = Array.make n 0 in
  let filled = ref 0 in
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then Queue.add i queue
  done;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order.(!filled) <- i;
    incr filled;
    Array.iter
      (fun succ ->
        if not (is_sequential t succ) then begin
          indeg.(succ) <- indeg.(succ) - 1;
          if indeg.(succ) = 0 then Queue.add succ queue
        end)
      t.fanouts.(i)
  done;
  if !filled <> n then begin
    let offender = ref "" in
    for i = n - 1 downto 0 do
      if indeg.(i) > 0 then offender := t.names.(i)
    done;
    raise (Combinational_cycle !offender)
  end;
  order

let validate t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  Array.iteri
    (fun i k ->
      let nin = Array.length t.fanins.(i) in
      match k with
      | Input -> if nin <> 0 then err "input %s has %d drivers" t.names.(i) nin
      | Output -> if nin <> 1 then err "output %s has %d drivers" t.names.(i) nin
      | Gate c ->
        if nin <> c.CL.fanin then
          err "gate %s (%s) has %d of %d pins connected" t.names.(i) c.CL.name
            nin c.CL.fanin)
    t.kinds;
  (match topo_order t with
  | (_ : id array) -> ()
  | exception Combinational_cycle n -> err "combinational cycle through %s" n);
  match !errors with [] -> Ok () | es -> Error (List.rev es)

module Builder = struct
  type b = {
    lib : CL.t;
    prefix : string;
    mutable names : string array;
    mutable kinds : kind array;
    mutable fanin_arrays : id array array;
    mutable out_deg : int array;
    tbl : (string, id) Hashtbl.t;
    mutable count : int;
    mutable fresh : int;
    mutable sealed : bool;
  }

  let create ?(name_prefix = "n") lib =
    {
      lib;
      prefix = name_prefix;
      names = Array.make 64 "";
      kinds = Array.make 64 Input;
      fanin_arrays = Array.make 64 [||];
      out_deg = Array.make 64 0;
      tbl = Hashtbl.create 256;
      count = 0;
      fresh = 0;
      sealed = false;
    }

  let check_open b = if b.sealed then invalid_arg "Netlist.Builder: sealed"

  let grow b =
    let cap = Array.length b.names in
    if b.count >= cap then begin
      let cap' = cap * 2 in
      let extend init a =
        let a' = Array.make cap' init in
        Array.blit a 0 a' 0 cap;
        a'
      in
      b.names <- extend "" b.names;
      b.kinds <- extend Input b.kinds;
      b.fanin_arrays <- extend [||] b.fanin_arrays;
      b.out_deg <- extend 0 b.out_deg
    end

  let add b name kind fanin =
    check_open b;
    if Hashtbl.mem b.tbl name then
      invalid_arg (Printf.sprintf "Netlist.Builder: duplicate name %s" name);
    grow b;
    let id = b.count in
    b.names.(id) <- name;
    b.kinds.(id) <- kind;
    b.fanin_arrays.(id) <- Array.of_list fanin;
    List.iter (fun f -> if f >= 0 then b.out_deg.(f) <- b.out_deg.(f) + 1) fanin;
    Hashtbl.add b.tbl name id;
    b.count <- id + 1;
    id

  let fresh_name b =
    let rec pick () =
      let n = Printf.sprintf "%s%d" b.prefix b.fresh in
      b.fresh <- b.fresh + 1;
      if Hashtbl.mem b.tbl n then pick () else n
    in
    pick ()

  let input b name = add b name Input []

  let output b name driver = add b name Output [ driver ]

  let unconnected = -1

  let gate b ?(drive = CL.X1) ?name kind fanin =
    check_open b;
    let cell = CL.find b.lib kind drive in
    if List.length fanin <> cell.CL.fanin then
      invalid_arg
        (Printf.sprintf "Netlist.Builder.gate: %s expects %d pins, got %d"
           cell.CL.name cell.CL.fanin (List.length fanin));
    List.iter
      (fun f ->
        if f <> unconnected && (f < 0 || f >= b.count) then
          invalid_arg "Netlist.Builder.gate: dangling fanin id")
      fanin;
    let name = match name with Some n -> n | None -> fresh_name b in
    add b name (Gate cell) fanin

  let connect_pin b g ~pin driver =
    check_open b;
    if g < 0 || g >= b.count then
      invalid_arg "Netlist.Builder.connect_pin: bad gate id";
    if driver < 0 || driver >= b.count then
      invalid_arg "Netlist.Builder.connect_pin: bad driver id";
    let pins = b.fanin_arrays.(g) in
    if pin < 0 || pin >= Array.length pins then
      invalid_arg "Netlist.Builder.connect_pin: bad pin index";
    if pins.(pin) <> unconnected then
      invalid_arg "Netlist.Builder.connect_pin: pin already connected";
    pins.(pin) <- driver;
    b.out_deg.(driver) <- b.out_deg.(driver) + 1

  let set_drive b id drive =
    check_open b;
    if id < 0 || id >= b.count then
      invalid_arg "Netlist.Builder.set_drive: bad id";
    match b.kinds.(id) with
    | Gate c -> b.kinds.(id) <- Gate (CL.find b.lib c.CL.kind drive)
    | Input | Output -> invalid_arg "Netlist.Builder.set_drive: not a gate"

  let size b = b.count

  let gate_count b =
    let n = ref 0 in
    for i = 0 to b.count - 1 do
      match b.kinds.(i) with Gate _ -> incr n | Input | Output -> ()
    done;
    !n

  let node_kind b id =
    if id < 0 || id >= b.count then
      invalid_arg "Netlist.Builder.node_kind: bad id";
    b.kinds.(id)

  let fanout_count b id =
    if id < 0 || id >= b.count then
      invalid_arg "Netlist.Builder.fanout_count: bad id";
    b.out_deg.(id)

  let signals b =
    let acc = ref [] in
    for i = 0 to b.count - 1 do
      match b.kinds.(i) with
      | Gate _ | Input -> acc := i :: !acc
      | Output -> ()
    done;
    !acc

  let freeze b =
    check_open b;
    for i = 0 to b.count - 1 do
      Array.iteri
        (fun pin f ->
          if f = unconnected then
            invalid_arg
              (Printf.sprintf "Netlist.Builder.freeze: %s pin %d unconnected"
                 b.names.(i) pin))
        b.fanin_arrays.(i)
    done;
    b.sealed <- true;
    let n = b.count in
    let names = Array.sub b.names 0 n in
    let kinds = Array.sub b.kinds 0 n in
    let fanins = Array.sub b.fanin_arrays 0 n in
    let out_deg = Array.make n 0 in
    Array.iter (Array.iter (fun f -> out_deg.(f) <- out_deg.(f) + 1)) fanins;
    let fanouts = Array.map (fun d -> Array.make d 0) out_deg in
    let fill = Array.make n 0 in
    Array.iteri
      (fun i fi ->
        Array.iter
          (fun f ->
            fanouts.(f).(fill.(f)) <- i;
            fill.(f) <- fill.(f) + 1)
          fi)
      fanins;
    let select pred =
      let acc = ref [] in
      for i = n - 1 downto 0 do
        if pred kinds.(i) then acc := i :: !acc
      done;
      Array.of_list !acc
    in
    {
      lib = b.lib;
      names;
      kinds;
      fanins;
      fanouts;
      by_name = b.tbl;
      inputs = select (function Input -> true | Output | Gate _ -> false);
      outputs = select (function Output -> true | Input | Gate _ -> false);
      gates = select (function Gate _ -> true | Input | Output -> false);
    }
end

let resize t f =
  let b = Builder.create t.lib in
  (* Ids are preserved because nodes are re-added in id order; fanins that
     point forward (flip-flop feedback) are patched in a second pass. *)
  Array.iteri
    (fun i k ->
      let id =
        match k with
        | Input -> Builder.input b t.names.(i)
        | Output -> Builder.output b t.names.(i) t.fanins.(i).(0)
        | Gate c ->
          let drive = match f i with Some d -> d | None -> c.CL.drive in
          let pins =
            Array.to_list
              (Array.map
                 (fun p -> if p >= i then Builder.unconnected else p)
                 t.fanins.(i))
          in
          Builder.gate b ~drive ~name:t.names.(i) c.CL.kind pins
      in
      assert (id = i))
    t.kinds;
  Array.iteri
    (fun i k ->
      match k with
      | Gate _ ->
        Array.iteri
          (fun pin p -> if p >= i then Builder.connect_pin b i ~pin p)
          t.fanins.(i)
      | Input | Output -> ())
    t.kinds;
  Builder.freeze b
