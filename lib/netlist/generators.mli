(** Circuit generators.

    The paper evaluates on five ISCAS-85 benchmarks, a 128-bit adder and
    three industrial SoC modules, none of which can ship with this
    repository. Each generator below builds a circuit of the same function
    class and size (see DESIGN.md, substitutions): real arithmetic and
    checking structures — not random graphs — for the ISCAS-class designs,
    and a seeded random module generator for the industrial blocks.

    All generators return sized netlists ({!Logic.size_for_fanout} applied)
    that pass {!Netlist.validate}. When [target_gates] is given, the
    functional core is topped up to exactly that many gate instances with
    shallow observability glue (2-input gates over existing signals feeding
    dedicated output ports), so Table 1 gate counts can be matched
    exactly. Raises [Invalid_argument] if the core alone already exceeds
    [target_gates]. *)

val ripple_adder :
  ?lib:Fbb_tech.Cell_library.t ->
  ?registered:bool ->
  ?target_gates:int ->
  ?seed:int ->
  bits:int ->
  unit ->
  Netlist.t
(** Ripple-carry adder; [registered] (default true) adds input and output
    flip-flops (the paper's [adder_128bits] profile). *)

val prefix_adder :
  ?lib:Fbb_tech.Cell_library.t ->
  ?registered_inputs:bool ->
  ?registered_outputs:bool ->
  ?target_gates:int ->
  ?seed:int ->
  bits:int ->
  unit ->
  Netlist.t
(** Brent-Kung parallel-prefix adder — the structure timing-driven
    synthesis produces for a wide [+] operator, and our profile for the
    paper's [adder_128bits]: a shallow log-depth carry tree whose critical
    region is a small fraction of the cells. Outputs are registered by
    default; inputs are not. *)

val array_multiplier :
  ?lib:Fbb_tech.Cell_library.t ->
  ?target_gates:int ->
  ?seed:int ->
  bits:int ->
  unit ->
  Netlist.t
(** Combinational carry-save array multiplier (the c6288 profile): a grid
    of full/half adders gives the characteristic large population of
    near-critical paths. *)

val alu :
  ?lib:Fbb_tech.Cell_library.t ->
  ?stages:int ->
  ?target_gates:int ->
  ?seed:int ->
  bits:int ->
  unit ->
  Netlist.t
(** Multi-function ALU slice (add, subtract, AND, OR, XOR, NOR, shifts,
    flags) with an output mux; [stages] chains several slices (c3540 and
    c5315 profiles). *)

val adder_comparator :
  ?lib:Fbb_tech.Cell_library.t ->
  ?target_gates:int ->
  ?seed:int ->
  bits:int ->
  unit ->
  Netlist.t
(** Adder plus magnitude/equality comparator plus parity checker (the c7552
    profile). *)

val ecc_checker :
  ?lib:Fbb_tech.Cell_library.t ->
  ?target_gates:int ->
  ?seed:int ->
  ?coverage:int ->
  ?stride:int ->
  data_bits:int ->
  check_bits:int ->
  unit ->
  Netlist.t
(** Error-detecting checker: syndrome XOR trees over overlapping data
    subsets plus output correction (the c1355 profile). *)

val random_module :
  ?lib:Fbb_tech.Cell_library.t ->
  ?dff_fraction:float ->
  ?inputs:int ->
  seed:int ->
  gates:int ->
  unit ->
  Netlist.t
(** Seeded random SoC-module logic: a locally connected DAG with the given
    gate count, a [dff_fraction] (default 0.06) of flip-flops, and output
    ports on dangling nets (the Industrial1-3 profile). *)
