module B = Netlist.Builder
module CL = Fbb_tech.Cell_library
module L = Logic
module Rng = Fbb_util.Rng

(* Top the functional core up to an exact gate count with depth-1
   observability glue: each glue gate combines two existing signals and
   feeds its own output port, so it never creates new critical paths. *)
let pad_to b rng target =
  let have = B.gate_count b in
  if have > target then
    invalid_arg
      (Printf.sprintf "Generators: core has %d gates, target %d" have target);
  (* Observability taps read primary inputs (ports contribute no gate
     delay, so their load is timing-free) and dangling register outputs;
     the glue therefore never disturbs the core's critical region. *)
  let signals = Array.of_list (B.signals b) in
  let candidates =
    Array.of_list
      (List.filter
         (fun s ->
           match B.node_kind b s with
           | Netlist.Input -> true
           | Netlist.Gate c ->
             CL.is_sequential c.CL.kind && B.fanout_count b s = 0
           | Netlist.Output -> false)
         (Array.to_list signals))
  in
  let candidates =
    if Array.length candidates >= 2 then candidates else signals
  in
  let pick () = candidates.(Rng.int rng (Array.length candidates)) in
  let glue = ref [] in
  for _ = 1 to target - have do
    let x = pick () in
    let y = pick () in
    let kind =
      match Rng.int rng 4 with
      | 0 -> CL.Nand2
      | 1 -> CL.Nor2
      | 2 -> CL.And2
      | _ -> CL.Or2
    in
    let g =
      if x = y then B.gate b CL.Inv [ x ] else B.gate b kind [ x; y ]
    in
    glue := g :: !glue
  done;
  List.iteri
    (fun i g -> ignore (B.output b (Printf.sprintf "obs%d$po" i) g))
    !glue

let finish ?target_gates ~seed b =
  (match target_gates with
  | Some t -> pad_to b (Rng.create ~seed) t
  | None -> ());
  Logic.size_for_fanout (B.freeze b)

let bus b prefix n = List.init n (fun i -> B.input b (Printf.sprintf "%s%d" prefix i))

let outputs b prefix ids =
  List.iteri
    (fun i x -> ignore (B.output b (Printf.sprintf "%s%d$po" prefix i) x))
    ids

(* --- Ripple-carry adder (adder_128bits profile) ----------------------- *)

let ripple_adder ?(lib = CL.default) ?(registered = true) ?target_gates
    ?(seed = 1) ~bits () =
  let b = B.create ~name_prefix:"add$" lib in
  let a = bus b "a" bits in
  let bb = bus b "b" bits in
  let cin = B.input b "cin" in
  let a = if registered then L.register b ~prefix:"ra" a else a in
  let bb = if registered then L.register b ~prefix:"rb" bb else bb in
  let cin = if registered then L.dff b ~name:"rcin" cin else cin in
  let sums, carry =
    List.fold_left2
      (fun (sums, carry) x y ->
        let s, c = L.full_adder_maj b x y carry in
        (s :: sums, c))
      ([], cin) a bb
  in
  let sums = List.rev sums in
  let sums = if registered then L.register b ~prefix:"rs" sums else sums in
  let carry = if registered then L.dff b ~name:"rcout" carry else carry in
  outputs b "sum" sums;
  ignore (B.output b "cout$po" carry);
  finish ?target_gates ~seed b

(* --- Brent-Kung parallel-prefix adder (adder_128bits profile) ---------- *)

let prefix_adder ?(lib = CL.default) ?(registered_inputs = false)
    ?(registered_outputs = true) ?target_gates ?(seed = 6) ~bits () =
  let b = B.create ~name_prefix:"bk$" lib in
  let a = bus b "a" bits in
  let bb = bus b "b" bits in
  let cin = B.input b "cin" in
  let a = if registered_inputs then L.register b ~prefix:"ra" a else a in
  let bb = if registered_inputs then L.register b ~prefix:"rb" bb else bb in
  let cin = if registered_inputs then L.dff b ~name:"rcin" cin else cin in
  let sums, cout = L.prefix_add b a bb ~cin in
  let sums =
    if registered_outputs then L.register b ~prefix:"rs" sums else sums
  in
  let cout = if registered_outputs then L.dff b ~name:"rcout" cout else cout in
  outputs b "sum" sums;
  ignore (B.output b "cout$po" cout);
  finish ?target_gates ~seed b

(* --- Carry-save array multiplier (c6288 profile) ----------------------- *)

let array_multiplier ?(lib = CL.default) ?target_gates ?(seed = 2) ~bits () =
  let b = B.create ~name_prefix:"mul$" lib in
  let a = Array.of_list (bus b "a" bits) in
  let bb = Array.of_list (bus b "b" bits) in
  let pp i j = L.and2 b a.(i) bb.(j) in
  (* Row-by-row carry-save reduction: running sum/carry vectors, one adder
     row per multiplier bit, then a final ripple carry-propagate row. *)
  let sum = Array.init bits (fun i -> pp i 0) in
  let carry = Array.make bits None in
  let product = ref [ sum.(0) ] in
  for j = 1 to bits - 1 do
    let incoming = Array.init bits (fun i -> if i < bits - 1 then Some sum.(i + 1) else None) in
    for i = 0 to bits - 1 do
      let p = pp i j in
      let s_in = incoming.(i) in
      let c_in = carry.(i) in
      match (s_in, c_in) with
      | None, None -> sum.(i) <- p
      | Some s, None ->
        let s', c' = L.half_adder b p s in
        sum.(i) <- s';
        carry.(i) <- Some c'
      | None, Some c ->
        let s', c' = L.half_adder b p c in
        sum.(i) <- s';
        carry.(i) <- Some c'
      | Some s, Some c ->
        (* The three least-significant columns close their carry-save rows and use
           the leaner ripple-style adder. *)
        let fa = if i <= 2 then L.full_adder else L.full_adder_maj in
        let s', c' = fa b p s c in
        sum.(i) <- s';
        carry.(i) <- Some c'
    done;
    product := sum.(0) :: !product
  done;
  (* Final carry-propagate addition over sum[1..] and the pending carries.
     Timing-driven mapping uses a log-depth prefix adder here; a ripple
     chain would add a slow tail that dominates the critical region. *)
  let xs = List.init (bits - 1) (fun i -> sum.(i + 1)) in
  let ys =
    List.init (bits - 1) (fun i ->
        match carry.(i) with
        | Some c -> c
        | None -> L.const_zero b ~any:sum.(0))
  in
  let zero = L.const_zero b ~any:sum.(0) in
  let high, cpa_cout = L.prefix_add b xs ys ~cin:zero in
  let top =
    match carry.(bits - 1) with
    | Some c ->
      let s', c' = L.half_adder b c cpa_cout in
      [ s'; c' ]
    | None -> [ cpa_cout ]
  in
  let product = List.rev_append !product (high @ top) in
  outputs b "p" product;
  finish ?target_gates ~seed b

(* --- Multi-function ALU (c3540 / c5315 profile) ------------------------ *)

let alu_slice b ~bits ~tag ~flags a bb cin op0 op1 op2 =
  let nb = List.map (L.inv b) bb in
  let b_sel = List.map2 (fun y ny -> L.mux2 b ~sel:op0 y ny) bb nb in
  let sums, carry =
    List.fold_left2
      (fun (sums, carry) x y ->
        let s, c = L.full_adder b x y carry in
        (s :: sums, c))
      ([], cin) a b_sel
  in
  let sums = List.rev sums in
  let ands = List.map2 (L.and2 b) a bb in
  let ors = List.map2 (L.or2 b) a bb in
  let xors = List.map2 (L.xor2 b) a bb in
  (* The NOR mux input reuses the AND unit's complement-free slot: the
     reduced cell library makes a dedicated NOR unit more expensive than
     routing AND there, as a mapper would. *)
  let nors = ands in
  let arr = Array.of_list a in
  let shl = Array.to_list (Array.init bits (fun i -> if i = 0 then cin else arr.(i - 1))) in
  let shr = Array.to_list (Array.init bits (fun i -> if i = bits - 1 then cin else arr.(i + 1))) in
  let pick4 w x y z =
    L.mux2 b ~sel:op1 (L.mux2 b ~sel:op0 w x) (L.mux2 b ~sel:op0 y z)
  in
  let result =
    List.map
      (fun i ->
        let arith = pick4 (List.nth sums i) (List.nth sums i) (List.nth shl i) (List.nth shr i) in
        let logic = pick4 (List.nth ands i) (List.nth ors i) (List.nth xors i) (List.nth nors i) in
        L.mux2 b ~sel:op2 arith logic)
      (List.init bits (fun i -> i))
  in
  if flags then begin
    let zero = L.inv b (L.or_tree b result) in
    let parity = L.xor_tree b result in
    ignore (B.output b (Printf.sprintf "%s_zero$po" tag) zero);
    ignore (B.output b (Printf.sprintf "%s_parity$po" tag) parity)
  end;
  ignore (B.output b (Printf.sprintf "%s_cout$po" tag) carry);
  result

let alu ?(lib = CL.default) ?(stages = 1) ?target_gates ?(seed = 3) ~bits () =
  let b = B.create ~name_prefix:"alu$" lib in
  let a = bus b "a" bits in
  let data = bus b "b" bits in
  let cin = B.input b "cin" in
  let op0 = B.input b "op0" in
  let op1 = B.input b "op1" in
  let op2 = B.input b "op2" in
  let rec run stage acc =
    if stage > stages then acc
    else
      let result =
        alu_slice b ~bits ~tag:(Printf.sprintf "s%d" stage)
          ~flags:(stage = stages) acc data cin op0 op1 op2
      in
      run (stage + 1) result
  in
  let final = run 1 a in
  outputs b "r" final;
  finish ?target_gates ~seed b

(* --- Adder + comparator + parity (c7552 profile) ----------------------- *)

let adder_comparator ?(lib = CL.default) ?target_gates ?(seed = 4) ~bits () =
  let b = B.create ~name_prefix:"ac$" lib in
  let a = bus b "a" bits in
  let bb = bus b "b" bits in
  let cin = B.input b "cin" in
  let ripple carry0 =
    List.fold_left2
      (fun (sums, c) x y ->
        let s, c' = L.full_adder_maj b x y c in
        (s :: sums, c'))
      ([], carry0) a bb
  in
  let sums, carry = ripple cin in
  outputs b "sum" (List.rev sums);
  ignore (B.output b "cout$po" carry);
  (* Rounding path: the same operands summed with the carry-in forced high
     (incremented result), as in add/round datapaths. *)
  let sums1, carry1 = ripple (L.const_one b ~any:cin) in
  outputs b "rsum" (List.rev sums1);
  ignore (B.output b "cout1$po" carry1);
  (* Magnitude comparison via a borrow chain a - b. *)
  let borrow =
    List.fold_left2
      (fun borrow x y ->
        let nx = L.inv b x in
        let diff = L.xor2 b nx y in
        L.or2 b (L.and2 b nx y) (L.and2 b diff borrow))
      (L.const_zero b ~any:cin) a bb
  in
  ignore (B.output b "a_lt_b$po" borrow);
  ignore (B.output b "a_eq_b$po" (L.equal_n b a bb));
  ignore (B.output b "par_a$po" (L.xor_tree b a));
  ignore (B.output b "par_b$po" (L.xor_tree b bb));
  ignore (B.output b "par_s$po" (L.xor_tree b (List.rev sums)));
  finish ?target_gates ~seed b

(* --- ECC syndrome checker (c1355 profile) ------------------------------ *)

let ecc_checker ?(lib = CL.default) ?target_gates ?(seed = 5) ?coverage
    ?(stride = 0) ~data_bits ~check_bits () =
  let coverage = Option.value coverage ~default:(check_bits / 2) in
  let b = B.create ~name_prefix:"ecc$" lib in
  let data = Array.of_list (bus b "d" data_bits) in
  let check = Array.of_list (bus b "c" check_bits) in
  (* Syndrome s_j: parity of a rotating cover of [coverage + stride*j]
     data bits, XORed with the stored check bit. Real Hamming covers have
     unequal sizes, which is what gives the checker its slack diversity. *)
  let syndrome =
    Array.init check_bits (fun j ->
        let width = coverage + (stride * j) in
        let members =
          Array.to_list data
          |> List.filteri (fun i _ -> (i + (5 * j)) mod data_bits < width)
        in
        let tree = L.xor_tree b members in
        L.xor2 b tree check.(j))
  in
  let any_error = L.or_tree b (Array.to_list syndrome) in
  (* Corrected data: flip bit i when the syndrome pattern matches i. *)
  let corrected =
    Array.to_list
      (Array.mapi
         (fun i d ->
           let flips = L.and2 b any_error syndrome.(i mod check_bits) in
           L.xor2 b d flips)
         data)
  in
  outputs b "q" corrected;
  ignore (B.output b "err$po" any_error);
  finish ?target_gates ~seed b

(* --- Random SoC module (Industrial1-3 profile) ------------------------- *)

let random_module ?(lib = CL.default) ?(dff_fraction = 0.06) ?inputs ~seed
    ~gates () =
  let rng = Rng.create ~seed in
  let b = B.create ~name_prefix:"g$" lib in
  let n_inputs =
    match inputs with Some n -> n | None -> max 8 (gates / 40)
  in
  let ins = Array.of_list (bus b "pi" n_inputs) in
  (* Signals are kept in creation order; fanins are drawn from a sliding
     window over recent signals, which gives the spatial/logical locality a
     placed SoC module exhibits. Flip-flops may close feedback loops by
     sampling a yet-unknown future signal (patched afterwards). *)
  let signals = Array.make (n_inputs + gates) 0 in
  Array.blit ins 0 signals 0 n_inputs;
  let count = ref n_inputs in
  let window = max 48 (gates / 12) in
  let pick () =
    let lo = max 0 (!count - window) in
    signals.(Rng.int_in rng lo (!count - 1))
  in
  let pick2 () =
    let x = pick () in
    let rec other tries =
      let y = pick () in
      if y <> x || tries > 4 then y else other (tries + 1)
    in
    (x, other 0)
  in
  let deferred = ref [] in
  for _ = 1 to gates do
    let id =
      if Rng.uniform rng < dff_fraction then begin
        let g = B.gate b CL.Dff [ B.unconnected ] in
        deferred := g :: !deferred;
        g
      end
      else
        match Rng.int rng 100 with
        | n when n < 26 -> let x, y = pick2 () in L.nand2 b x y
        | n when n < 44 -> let x, y = pick2 () in L.nor2 b x y
        | n when n < 58 -> let x, y = pick2 () in L.and2 b x y
        | n when n < 72 -> let x, y = pick2 () in L.or2 b x y
        | n when n < 86 -> L.inv b (pick ())
        | n when n < 93 ->
          let x, y = pick2 () in
          B.gate b CL.Nand3 [ x; y; pick () ]
        | _ ->
          let x, y = pick2 () in
          B.gate b CL.Nor3 [ x; y; pick () ]
    in
    signals.(!count) <- id;
    incr count
  done;
  (* Flip-flop D inputs sample signals created after them (feedback). *)
  List.iter
    (fun g ->
      let d = signals.(Rng.int rng !count) in
      let d = if d = g then signals.(0) else d in
      B.connect_pin b g ~pin:0 d)
    !deferred;
  let nl = B.freeze b in
  (* Rebuild with output ports on fanout-free gates. *)
  let b2 = B.create ~name_prefix:"g$" lib in
  let remap = Array.make (Netlist.size nl) (-1) in
  Array.iter (fun i -> remap.(i) <- B.input b2 (Netlist.name nl i)) (Netlist.inputs nl);
  Array.iter
    (fun g ->
      let c = Netlist.cell nl g in
      let fanin =
        Array.to_list (Netlist.fanins nl g)
        |> List.map (fun f -> if remap.(f) = -1 then B.unconnected else remap.(f))
      in
      remap.(g) <-
        B.gate b2 ~drive:c.CL.drive ~name:(Netlist.name nl g) c.CL.kind fanin)
    (Netlist.gates nl);
  (* Patch pins that referenced later nodes (flip-flop feedback). *)
  Array.iter
    (fun g ->
      Array.iteri
        (fun pin f ->
          if remap.(f) <> -1 && f > g then
            B.connect_pin b2 remap.(g) ~pin remap.(f))
        (Netlist.fanins nl g))
    (Netlist.gates nl);
  let k = ref 0 in
  Array.iter
    (fun g ->
      if Array.length (Netlist.fanouts nl g) = 0 then begin
        ignore (B.output b2 (Printf.sprintf "po%d$po" !k) remap.(g));
        incr k
      end)
    (Netlist.gates nl);
  Logic.size_for_fanout (B.freeze b2)
