module B = Netlist.Builder
module CL = Fbb_tech.Cell_library

exception Parse_error of int * string

type stmt =
  | S_input of string
  | S_output of string
  | S_gate of string * string * string list * CL.drive
      (* target, uppercase op, args, drive *)

let fail line fmt = Printf.ksprintf (fun m -> raise (Parse_error (line, m))) fmt

let drive_of_string line = function
  | "X1" -> CL.X1
  | "X2" -> CL.X2
  | "X4" -> CL.X4
  | s -> fail line "unknown drive annotation %s" s

(* One statement per line: INPUT(x) / OUTPUT(x) / y = OP(a, b) [# X2]. *)
let parse_line lineno raw =
  let text, drive =
    match String.index_opt raw '#' with
    | None -> (raw, CL.X1)
    | Some i ->
      let comment = String.trim (String.sub raw (i + 1) (String.length raw - i - 1)) in
      let drive =
        if String.length comment > 0 && comment.[0] = 'X' then
          drive_of_string lineno comment
        else CL.X1
      in
      (String.sub raw 0 i, drive)
  in
  let text = String.trim text in
  if String.length text = 0 then None
  else
    let call s =
      match (String.index_opt s '(', String.index_opt s ')') with
      | Some l, Some r when r > l ->
        let head = String.trim (String.sub s 0 l) in
        let inside = String.sub s (l + 1) (r - l - 1) in
        let args =
          String.split_on_char ',' inside
          |> List.map String.trim
          |> List.filter (fun a -> a <> "")
        in
        (String.uppercase_ascii head, args)
      | _, _ -> fail lineno "malformed statement: %s" s
    in
    match String.index_opt text '=' with
    | None -> begin
      match call text with
      | "INPUT", [ x ] -> Some (S_input x)
      | "OUTPUT", [ x ] -> Some (S_output x)
      | op, _ -> fail lineno "unexpected declaration %s" op
    end
    | Some eq ->
      let target = String.trim (String.sub text 0 eq) in
      let rhs = String.sub text (eq + 1) (String.length text - eq - 1) in
      let op, args = call rhs in
      if target = "" then fail lineno "missing assignment target";
      if args = [] then fail lineno "%s: empty argument list" op;
      Some (S_gate (target, op, args, drive))

(* Reduce a wide associative gate to library arities. AND/OR/NAND/NOR above
   the widest cell become balanced trees; the inverting ops invert once at
   the root of an AND/OR tree. *)
let rec emit_tree b kind2 kind3 args =
  match args with
  | [] -> invalid_arg "emit_tree: empty"
  | [ x ] -> x
  | [ x; y ] -> B.gate b kind2 [ x; y ]
  | [ x; y; z ] -> B.gate b kind3 [ x; y; z ]
  | xs ->
    let rec split_pairs = function
      | [] -> []
      | [ x ] -> [ x ]
      | x :: y :: rest -> B.gate b kind2 [ x; y ] :: split_pairs rest
    in
    emit_tree b kind2 kind3 (split_pairs xs)

let emit_gate b ~name op args drive =
  let xor2 x y =
    B.gate b CL.And2
      [ B.gate b CL.Or2 [ x; y ]; B.gate b CL.Nand2 [ x; y ] ]
  in
  let named kind fanin = B.gate b ~drive ~name kind fanin in
  match (op, args) with
  | "NOT", [ x ] | "INV", [ x ] -> named CL.Inv [ x ]
  | "BUF", [ x ] | "BUFF", [ x ] -> named CL.Buf [ x ]
  | "DFF", [ x ] -> named CL.Dff [ x ]
  (* Degenerate single-input forms occasionally found in benchmark files. *)
  | ("AND" | "OR" | "XOR"), [ x ] -> named CL.Buf [ x ]
  | ("NAND" | "NOR" | "XNOR"), [ x ] -> named CL.Inv [ x ]
  | "AND", [ x; y ] -> named CL.And2 [ x; y ]
  | "AND", [ x; y; z ] -> named CL.And3 [ x; y; z ]
  | "AND", args -> named CL.And2 [ emit_tree b CL.And2 CL.And3 (List.filteri (fun i _ -> i < List.length args - 1) args); List.nth args (List.length args - 1) ]
  | "OR", [ x; y ] -> named CL.Or2 [ x; y ]
  | "OR", [ x; y; z ] -> named CL.Or3 [ x; y; z ]
  | "OR", args -> named CL.Or2 [ emit_tree b CL.Or2 CL.Or3 (List.filteri (fun i _ -> i < List.length args - 1) args); List.nth args (List.length args - 1) ]
  | "NAND", [ x; y ] -> named CL.Nand2 [ x; y ]
  | "NAND", [ x; y; z ] -> named CL.Nand3 [ x; y; z ]
  | "NAND", [ x; y; z; w ] -> named CL.Nand4 [ x; y; z; w ]
  | "NAND", args ->
    let partial = emit_tree b CL.And2 CL.And3 (List.filteri (fun i _ -> i < List.length args - 1) args) in
    named CL.Nand2 [ partial; List.nth args (List.length args - 1) ]
  | "NOR", [ x; y ] -> named CL.Nor2 [ x; y ]
  | "NOR", [ x; y; z ] -> named CL.Nor3 [ x; y; z ]
  | "NOR", args ->
    let partial = emit_tree b CL.Or2 CL.Or3 (List.filteri (fun i _ -> i < List.length args - 1) args) in
    named CL.Nor2 [ partial; List.nth args (List.length args - 1) ]
  | "XOR", [ x; y ] ->
    named CL.And2 [ B.gate b CL.Or2 [ x; y ]; B.gate b CL.Nand2 [ x; y ] ]
  | "XOR", (x :: rest) ->
    let acc = List.fold_left xor2 x (List.rev (List.tl (List.rev rest))) in
    let last = List.nth rest (List.length rest - 1) in
    named CL.And2 [ B.gate b CL.Or2 [ acc; last ]; B.gate b CL.Nand2 [ acc; last ] ]
  | "XNOR", [ x; y ] -> named CL.Inv [ xor2 x y ]
  | "XNOR", (x :: rest) ->
    named CL.Inv [ List.fold_left xor2 x rest ]
  | op, args -> invalid_arg (Printf.sprintf "%s/%d unsupported" op (List.length args))

let parse ?(lib = CL.default) text =
  let lines = String.split_on_char '\n' text in
  let stmts =
    List.concat
      (List.mapi
         (fun i line ->
           match parse_line (i + 1) line with Some s -> [ s ] | None -> [])
         lines)
  in
  let b = B.create ~name_prefix:"w$" lib in
  let defined = Hashtbl.create 256 in
  (* Pass 1: primary inputs and flip-flops exist up front (flip-flop outputs
     break combinational dependency cycles); D pins are patched in pass 3. *)
  List.iter
    (function
      | S_input x ->
        if Hashtbl.mem defined x then
          invalid_arg ("bench: duplicate signal " ^ x);
        Hashtbl.add defined x (B.input b x)
      | S_gate (target, "DFF", [ _ ], drive) ->
        if Hashtbl.mem defined target then
          invalid_arg ("bench: duplicate signal " ^ target);
        Hashtbl.add defined target
          (B.gate b ~drive ~name:target CL.Dff [ B.unconnected ])
      | S_output _ | S_gate _ -> ())
    stmts;
  (* Pass 2: combinational gates, iterated until a fixpoint (statement order
     in .bench is arbitrary). *)
  let pending =
    ref
      (List.filter
         (function
           | S_gate (_, "DFF", [ _ ], _) -> false
           | S_gate _ -> true
           | S_input _ | S_output _ -> false)
         stmts)
  in
  let progress = ref true in
  while !pending <> [] && !progress do
    progress := false;
    pending :=
      List.filter
        (function
          | S_gate (target, op, args, drive) ->
            if List.for_all (Hashtbl.mem defined) args then begin
              if Hashtbl.mem defined target then
                invalid_arg ("bench: duplicate signal " ^ target);
              let fanin = List.map (Hashtbl.find defined) args in
              Hashtbl.add defined target (emit_gate b ~name:target op fanin drive);
              progress := true;
              false
            end
            else true
          | S_input _ | S_output _ -> false)
        !pending
  done;
  (match !pending with
  | [] -> ()
  | S_gate (target, _, args, _) :: _ ->
    let missing = List.filter (fun a -> not (Hashtbl.mem defined a)) args in
    raise
      (Parse_error
         ( 0,
           Printf.sprintf "%s depends on undefined or cyclic signal(s): %s"
             target (String.concat ", " missing) ))
  | (S_input _ | S_output _) :: _ -> assert false);
  (* Pass 3: patch flip-flop D pins. *)
  List.iter
    (function
      | S_gate (target, "DFF", [ d ], _) ->
        let q = Hashtbl.find defined target in
        let driver =
          match Hashtbl.find_opt defined d with
          | Some i -> i
          | None -> raise (Parse_error (0, "DFF input undefined: " ^ d))
        in
        B.connect_pin b q ~pin:0 driver
      | S_input _ | S_output _ | S_gate _ -> ())
    stmts;
  (* Pass 4: output ports. *)
  let po_seen = Hashtbl.create 16 in
  List.iter
    (function
      | S_output x ->
        let driver =
          match Hashtbl.find_opt defined x with
          | Some i -> i
          | None -> raise (Parse_error (0, "OUTPUT of undefined signal " ^ x))
        in
        let n = Option.value ~default:0 (Hashtbl.find_opt po_seen x) in
        Hashtbl.replace po_seen x (n + 1);
        let port =
          if n = 0 then x ^ "$po" else Printf.sprintf "%s$po%d" x n
        in
        ignore (B.output b port driver)
      | S_input _ | S_gate _ -> ())
    stmts;
  B.freeze b

let parse_file ?lib path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse ?lib text

let op_of_kind = function
  | CL.Inv -> "NOT"
  | CL.Buf -> "BUFF"
  | CL.Nand2 | CL.Nand3 | CL.Nand4 -> "NAND"
  | CL.Nor2 | CL.Nor3 -> "NOR"
  | CL.And2 | CL.And3 -> "AND"
  | CL.Or2 | CL.Or3 -> "OR"
  | CL.Dff -> "DFF"

let to_string nl =
  let buf = Buffer.create 4096 in
  let emit fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  emit "# %d gates, %d inputs, %d outputs\n" (Netlist.gate_count nl)
    (Array.length (Netlist.inputs nl))
    (Array.length (Netlist.outputs nl));
  Array.iter (fun i -> emit "INPUT(%s)\n" (Netlist.name nl i)) (Netlist.inputs nl);
  Array.iter
    (fun o -> emit "OUTPUT(%s)\n" (Netlist.name nl (Netlist.fanins nl o).(0)))
    (Netlist.outputs nl);
  Array.iter
    (fun g ->
      let c = Netlist.cell nl g in
      let args =
        Netlist.fanins nl g |> Array.to_list
        |> List.map (Netlist.name nl)
        |> String.concat ", "
      in
      let drive_note =
        match c.CL.drive with
        | CL.X1 -> ""
        | d -> " # " ^ CL.drive_name d
      in
      emit "%s = %s(%s)%s\n" (Netlist.name nl g) (op_of_kind c.CL.kind) args
        drive_note)
    (Netlist.gates nl);
  Buffer.contents buf

let save nl ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string nl))
