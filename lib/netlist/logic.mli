(** Composite logic gadgets over {!Netlist.Builder}.

    The experimental library deliberately contains no XOR cell (the paper
    maps designs on inverters, AND, OR, NAND, NOR and flip-flops only), so
    arithmetic structures compose XOR and friends from those primitives. *)

open Fbb_tech

type b := Netlist.Builder.b
type id := Netlist.id

val inv : b -> id -> id
val and2 : b -> id -> id -> id
val or2 : b -> id -> id -> id
val nand2 : b -> id -> id -> id
val nor2 : b -> id -> id -> id

val xor2 : b -> id -> id -> id
(** [(a | b) & ~(a & b)]: 3 gates. *)

val const_zero : b -> any:id -> id
(** Logic 0 synthesized from any available signal ([x & ~x]); the library
    has no tie cells. *)

val const_one : b -> any:id -> id

val xnor2 : b -> id -> id -> id

val mux2 : b -> sel:id -> id -> id -> id
(** [sel ? b : a], built from NAND gates. *)

val half_adder : b -> id -> id -> id * id
(** [(sum, carry)]. *)

val full_adder : b -> id -> id -> id -> id * id
(** [(sum, carry_out)] with the carry factored through the propagate signal
    (9 gates) — the style of ripple-chain cells. *)

val full_adder_maj : b -> id -> id -> id -> id * id
(** [(sum, carry_out)] with a 3-term majority carry (11 gates) — the style
    of carry-save array cells. *)

val xor_tree : b -> id list -> id
(** Balanced parity tree. Raises [Invalid_argument] on an empty list. *)

val and_tree : b -> id list -> id
val or_tree : b -> id list -> id

val prefix_add : b -> id list -> id list -> cin:id -> id list * id
(** Brent-Kung parallel-prefix addition: [(sums, carry_out)]. Both operand
    lists must have equal non-zero length. The log-depth carry tree is the
    structure timing-driven mapping produces for wide additions. *)

val equal_n : b -> id list -> id list -> id
(** Bitwise equality comparator; both lists must have the same length. *)

val dff : b -> ?name:string -> id -> id
(** Register a signal. *)

val register : b -> ?prefix:string -> id list -> id list
(** Register a bus; names are derived from [prefix] when given. *)

val drive_of_fanout : int -> Cell_library.drive
(** The sizing rule used by {!size_for_fanout}: X1 up to 3 fanouts, X2 up
    to 7, X4 beyond. *)

val size_for_fanout : Netlist.t -> Netlist.t
(** Post-mapping sizing pass: re-drive every gate according to its fanout
    (the role of the paper's "mapped for optimal timing" step). *)
