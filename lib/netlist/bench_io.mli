(** ISCAS-style [.bench] netlist reader and writer.

    Supported statements: [INPUT(x)], [OUTPUT(x)], and
    [y = OP(a, b, ...)] with OP in NOT/BUFF/AND/OR/NAND/NOR/XOR/XNOR/DFF
    (case-insensitive); [#] starts a comment.

    The library has no XOR cell and fixed gate arities, so the reader
    synthesizes: XOR/XNOR become OR/NAND/AND compositions, and wide
    AND/OR/NAND/NOR gates become trees of 2-3 input cells. The writer
    emits our exact cells one statement per gate, so write-then-read is
    structure-preserving. *)

exception Parse_error of int * string
(** Line number and message. *)

val parse : ?lib:Fbb_tech.Cell_library.t -> string -> Netlist.t
(** Parse [.bench] text. Raises {!Parse_error}. *)

val parse_file : ?lib:Fbb_tech.Cell_library.t -> string -> Netlist.t

val to_string : Netlist.t -> string
(** Serialize. Composite drive strengths are encoded as a [# drive] comment
    suffix understood by {!parse}. *)

val save : Netlist.t -> path:string -> unit
