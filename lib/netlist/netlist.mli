(** Gate-level netlist.

    A netlist is a directed graph of nodes. Nodes are primary inputs,
    primary outputs, or gate instances of a {!Fbb_tech.Cell_library} cell
    (combinational gates and D flip-flops). Nets are implicit: a node's
    output net is identified with the node itself, and [fanins n] lists the
    driver of each input pin in pin order.

    Instances are immutable once built; construct with {!Builder}. *)

type t

type id = int
(** Dense node index in [0, size t - 1]. *)

type kind = Input | Output | Gate of Fbb_tech.Cell_library.cell

exception Combinational_cycle of string
(** Raised by {!topo_order} and {!validate} when the combinational part of
    the graph (everything except flip-flop D inputs) contains a cycle; the
    payload names a node on the cycle. *)

val library : t -> Fbb_tech.Cell_library.t
val size : t -> int

val name : t -> id -> string
val kind : t -> id -> kind

val fanins : t -> id -> id array
(** Driver of each input pin, in pin order. Do not mutate. *)

val fanouts : t -> id -> id array
(** All nodes reading this node's output. Do not mutate. *)

val is_gate : t -> id -> bool
val is_sequential : t -> id -> bool
(** True for flip-flop instances. *)

val inputs : t -> id array
val outputs : t -> id array
val gates : t -> id array
(** All gate instances (combinational and sequential), ascending ids. *)

val gate_count : t -> int

val find : t -> string -> id
(** Node lookup by name. Raises [Not_found]. *)

val cell : t -> id -> Fbb_tech.Cell_library.cell
(** The library cell of a gate node. Raises [Invalid_argument] on ports. *)

val total_width_sites : t -> int
(** Sum of gate footprints, in placement sites. *)

val stats : t -> (string * int) list
(** Instance count per cell name, sorted by name. *)

val topo_order : t -> id array
(** All nodes in a topological order of the combinational graph (flip-flop
    outputs and primary inputs first among their dependents; D-input edges
    of flip-flops are cut). Raises {!Combinational_cycle}. *)

val validate : t -> (unit, string list) result
(** Structural checks: pin counts match the cell's fanin, primary outputs
    have exactly one driver, no dangling gate inputs, no combinational
    cycles. Returns all violation messages. *)

(** Mutable netlist construction. *)
module Builder : sig
  type netlist := t
  type b

  val create : ?name_prefix:string -> Fbb_tech.Cell_library.t -> b

  val input : b -> string -> id
  (** Declare a primary input. *)

  val output : b -> string -> id -> id
  (** [output b name driver] declares a primary output fed by [driver]. *)

  val gate :
    b ->
    ?drive:Fbb_tech.Cell_library.drive ->
    ?name:string ->
    Fbb_tech.Cell_library.kind ->
    id list ->
    id
  (** Instantiate a gate. The fanin list length must equal the cell's pin
      count ([Dff] takes exactly its D input). Default drive is [X1];
      a fresh unique name is generated when [name] is omitted. *)

  val set_drive : b -> id -> Fbb_tech.Cell_library.drive -> unit
  (** Re-size an existing gate (used by the sizing pass). *)

  val unconnected : id
  (** Placeholder fanin for {!gate} pins to be wired later with
      {!connect_pin} — needed for feedback through flip-flops. {!freeze}
      rejects netlists with remaining unconnected pins. *)

  val connect_pin : b -> id -> pin:int -> id -> unit
  (** [connect_pin b g ~pin driver] wires input pin [pin] (0-based) of gate
      [g] to [driver]. The pin must currently be {!unconnected}. *)

  val size : b -> int

  val gate_count : b -> int
  (** Gate instances added so far (ports excluded). *)

  val signals : b -> id list
  (** Ids of all nodes that carry a logic value (inputs and gates), most
      recent first. *)

  val fanout_count : b -> id -> int
  (** Number of sinks currently reading the node's output. *)

  val node_kind : b -> id -> kind
  (** Kind of an already-added node. *)

  val freeze : b -> netlist
  (** Seal the builder into an immutable netlist and compute fanouts.
      The builder must not be used afterwards. *)
end

val resize : t -> (id -> Fbb_tech.Cell_library.drive option) -> t
(** Functional drive-strength update: returns a netlist where every gate
    [g] with [f g = Some d] is re-mapped to drive [d]. *)
