module B = Netlist.Builder
module CL = Fbb_tech.Cell_library

let inv b a = B.gate b CL.Inv [ a ]
let and2 b x y = B.gate b CL.And2 [ x; y ]
let or2 b x y = B.gate b CL.Or2 [ x; y ]
let nand2 b x y = B.gate b CL.Nand2 [ x; y ]
let nor2 b x y = B.gate b CL.Nor2 [ x; y ]

let xor2 b x y = and2 b (or2 b x y) (nand2 b x y)

let const_zero b ~any = and2 b any (inv b any)
let const_one b ~any = or2 b any (inv b any)

let xnor2 b x y = inv b (xor2 b x y)

let mux2 b ~sel x y =
  (* sel=0 -> x, sel=1 -> y, in four NANDs. *)
  let nsel = inv b sel in
  nand2 b (nand2 b x nsel) (nand2 b y sel)

let rec tree op b = function
  | [] -> invalid_arg "Logic: empty tree"
  | [ x ] -> x
  | xs ->
    let rec pair = function
      | [] -> []
      | [ x ] -> [ x ]
      | x :: y :: rest -> op b x y :: pair rest
    in
    tree op b (pair xs)

let xor_tree b xs = tree xor2 b xs
let and_tree b xs = tree and2 b xs
let or_tree b xs = tree or2 b xs

let half_adder b x y = (xor2 b x y, and2 b x y)

let full_adder b x y cin =
  let p = xor2 b x y in
  let sum = xor2 b p cin in
  let carry = or2 b (and2 b x y) (and2 b p cin) in
  (sum, carry)

let full_adder_maj b x y cin =
  let p = xor2 b x y in
  let sum = xor2 b p cin in
  let carry = or_tree b [ and2 b x y; and2 b x cin; and2 b y cin ] in
  (sum, carry)

let prefix_add b xs ys ~cin =
  let bits = List.length xs in
  if bits = 0 || List.length ys <> bits then
    invalid_arg "Logic.prefix_add: operand length mismatch";
  let p0 = Array.of_list (List.map2 (xor2 b) xs ys) in
  let g = Array.of_list (List.map2 (and2 b) xs ys) in
  g.(0) <- or2 b g.(0) (and2 b p0.(0) cin);
  let p = Array.copy p0 in
  (* Up-sweep: prefix (g, p) pairs at power-of-two strides. *)
  let d = ref 1 in
  while 2 * !d <= bits do
    let i = ref ((2 * !d) - 1) in
    while !i < bits do
      g.(!i) <- or2 b g.(!i) (and2 b p.(!i) g.(!i - !d));
      p.(!i) <- and2 b p.(!i) p.(!i - !d);
      i := !i + (2 * !d)
    done;
    d := 2 * !d
  done;
  (* Down-sweep: remaining prefixes need their generate term only. *)
  let d = ref (!d / 2) in
  while !d >= 1 do
    let i = ref ((3 * !d) - 1) in
    while !i < bits do
      g.(!i) <- or2 b g.(!i) (and2 b p.(!i) g.(!i - !d));
      i := !i + (2 * !d)
    done;
    d := !d / 2
  done;
  let sums =
    List.init bits (fun i ->
        if i = 0 then xor2 b p0.(0) cin else xor2 b p0.(i) g.(i - 1))
  in
  (sums, g.(bits - 1))

let equal_n b xs ys =
  if List.length xs <> List.length ys then
    invalid_arg "Logic.equal_n: length mismatch";
  and_tree b (List.map2 (xnor2 b) xs ys)

let dff b ?name d =
  match name with
  | Some name -> B.gate b ~name CL.Dff [ d ]
  | None -> B.gate b CL.Dff [ d ]

let register b ?prefix ds =
  List.mapi
    (fun i d ->
      match prefix with
      | Some p -> dff b ~name:(Printf.sprintf "%s%d" p i) d
      | None -> dff b d)
    ds

let drive_of_fanout fo = if fo <= 3 then CL.X1 else if fo <= 7 then CL.X2 else CL.X4

let size_for_fanout nl =
  Netlist.resize nl (fun g ->
      let fo = Array.length (Netlist.fanouts nl g) in
      Some (drive_of_fanout fo))
