(** Structural Verilog (gate-level subset) writer and reader.

    The emitted netlists use the library's own cell names with positional
    pin conventions ([.A/.B/.C/.D] inputs in pin order, [.Y] output,
    [.D/.Q] for flip-flops) — the flavour commercial P&R tools exchange.

    Supported on input: a single [module] with [input]/[output]/[wire]
    declarations (scalar, comma-separated), instances of our cell names
    with named port connections, and [//] comments. A [.CK] connection on
    flip-flops is accepted and ignored (the timing model is clockless).
    Escaped identifiers, buses, [assign], and behavioural constructs are
    out of scope. *)

exception Parse_error of int * string
(** Line number and message. *)

val to_string : ?module_name:string -> Netlist.t -> string
val save : ?module_name:string -> Netlist.t -> path:string -> unit

val parse : ?lib:Fbb_tech.Cell_library.t -> string -> Netlist.t
(** Raises {!Parse_error}. *)

val parse_file : ?lib:Fbb_tech.Cell_library.t -> string -> Netlist.t
