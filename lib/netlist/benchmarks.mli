(** The paper's nine-design benchmark suite (Table 1).

    Each spec carries the paper's gate and row counts — the generators are
    padded to the exact gate count, and the placer targets the exact row
    count — plus whether the paper reports ILP results for the design
    (Industrial2/3 timed out in the paper's setup and ours). *)

type spec = {
  name : string;
  gates : int;  (** Table 1 "Gates" column *)
  rows : int;  (** Table 1 "Rows" column *)
  ilp_tractable : bool;
  generate : ?lib:Fbb_tech.Cell_library.t -> unit -> Netlist.t;
}

val all : spec list
(** The nine designs, in Table 1 order. *)

val find : string -> spec
(** Case-insensitive lookup. Raises [Not_found]. *)

val names : string list
