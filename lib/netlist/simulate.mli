(** Two-valued functional simulation.

    Evaluates the combinational logic for a primary-input assignment and a
    flip-flop state; [step] additionally advances every flip-flop by one
    clock. Used by the test suite to prove the arithmetic generators
    actually compute (adders add, multipliers multiply) and by the ECC
    example. *)

type state
(** Node values after an evaluation. *)

val eval :
  ?registers:(Netlist.id * bool) list ->
  Netlist.t ->
  inputs:(string * bool) list ->
  state
(** Combinational evaluation. Every primary input must be assigned
    (raises [Invalid_argument] otherwise); unspecified flip-flops read 0. *)

val step : Netlist.t -> state -> state
(** Clock edge: flip-flops capture their D values; combinational logic is
    re-evaluated with the same primary inputs. *)

val value : state -> Netlist.id -> bool
val output : Netlist.t -> state -> string -> bool
(** Value of a primary output by name (the generators' ["$po"] suffix may
    be omitted). Raises [Not_found]. *)

val bus_value : Netlist.t -> state -> prefix:string -> int
(** Read an output bus written by the generators ([prefix ^ i ^ "$po"]),
    little-endian, as a non-negative integer. Width is discovered by
    probing indices from 0. *)

val input_bus : prefix:string -> width:int -> int -> (string * bool) list
(** Encode an integer onto a generator input bus ([prefix ^ i]). *)
