module CL = Fbb_tech.Cell_library

type state = {
  nl : Netlist.t;
  values : bool array;
  inputs : (string * bool) list;
}

let gate_function kind (ins : bool array) =
  let all = Array.for_all (fun b -> b) ins in
  let any = Array.exists (fun b -> b) ins in
  match kind with
  | CL.Inv -> not ins.(0)
  | CL.Buf -> ins.(0)
  | CL.Nand2 | CL.Nand3 | CL.Nand4 -> not all
  | CL.Nor2 | CL.Nor3 -> not any
  | CL.And2 | CL.And3 -> all
  | CL.Or2 | CL.Or3 -> any
  | CL.Dff -> ins.(0) (* resolved separately *)

let propagate nl values =
  Array.iter
    (fun i ->
      match Netlist.kind nl i with
      | Netlist.Input -> ()
      | Netlist.Output -> values.(i) <- values.((Netlist.fanins nl i).(0))
      | Netlist.Gate c ->
        if not (CL.is_sequential c.CL.kind) then begin
          let ins =
            Array.map (fun f -> values.(f)) (Netlist.fanins nl i)
          in
          values.(i) <- gate_function c.CL.kind ins
        end)
    (Netlist.topo_order nl)

let eval ?(registers = []) nl ~inputs =
  let n = Netlist.size nl in
  let values = Array.make n false in
  Array.iter
    (fun i ->
      let name = Netlist.name nl i in
      match List.assoc_opt name inputs with
      | Some v -> values.(i) <- v
      | None ->
        invalid_arg (Printf.sprintf "Simulate.eval: input %s unassigned" name))
    (Netlist.inputs nl);
  List.iter (fun (id, v) -> values.(id) <- v) registers;
  propagate nl values;
  { nl; values; inputs }

let step nl state =
  let values = Array.copy state.values in
  (* Capture all D values simultaneously, then propagate. *)
  let captured =
    Array.to_list (Netlist.gates nl)
    |> List.filter (Netlist.is_sequential nl)
    |> List.map (fun g -> (g, state.values.((Netlist.fanins nl g).(0))))
  in
  List.iter (fun (g, v) -> values.(g) <- v) captured;
  propagate nl values;
  { state with values }

let value state id = state.values.(id)

let output nl state name =
  let id =
    match Netlist.find nl name with
    | id -> id
    | exception Not_found -> Netlist.find nl (name ^ "$po")
  in
  state.values.(id)

let bus_value nl state ~prefix =
  let rec go i acc =
    match Netlist.find nl (Printf.sprintf "%s%d$po" prefix i) with
    | id ->
      let acc = if state.values.(id) then acc lor (1 lsl i) else acc in
      go (i + 1) acc
    | exception Not_found -> acc
  in
  go 0 0

let input_bus ~prefix ~width v =
  List.init width (fun i ->
      (Printf.sprintf "%s%d" prefix i, v land (1 lsl i) <> 0))
