module Placement = Fbb_place.Placement
module Timing = Fbb_sta.Timing
module Paths = Fbb_sta.Paths

type outcome = {
  problem : Problem.t;
  levels : int array;
  iterations : int;
  added_constraints : int;
  signoff_clean : bool;
}

let signoff p ~levels =
  let placement = p.Problem.placement in
  let nl = Placement.netlist placement in
  let beta = p.Problem.beta in
  let bias g =
    let r = Placement.row_of placement g in
    if r < 0 then 0.0 else p.Problem.levels.(levels.(r))
  in
  let biased = Timing.analyze ~derate:(fun _ -> 1.0 +. beta) ~bias nl in
  let budget = p.Problem.dcrit +. 1e-6 in
  let offenders =
    Paths.through_cell biased
    |> Array.to_list
    |> List.filter (fun path -> path.Paths.delay > budget)
    |> Array.of_list
  in
  (Array.length offenders = 0, offenders)

let solve ?(max_iterations = 10) ~solver p0 =
  let rec loop p iterations added last =
    match solver p with
    | None -> begin
      match last with
      | None -> None
      | Some levels ->
        (* A previous iteration succeeded but the extension made the
           problem unsolvable for this solver; report that last solution,
           honestly marked as failing signoff. *)
        Some
          {
            problem = p;
            levels;
            iterations;
            added_constraints = added;
            signoff_clean = false;
          }
    end
    | Some levels ->
      let clean, offenders = signoff p ~levels in
      if clean || iterations + 1 >= max_iterations then
        Some
          {
            problem = p;
            levels;
            iterations = iterations + 1;
            added_constraints = added;
            signoff_clean = clean;
          }
      else begin
        let p' = Problem.extend p offenders in
        if Problem.num_paths p' = Problem.num_paths p then
          (* Nothing new to add: the violation is below the extension
             threshold; stop honestly. *)
          Some
            {
              problem = p;
              levels;
              iterations = iterations + 1;
              added_constraints = added;
              signoff_clean = false;
            }
        else
          loop p'
            (iterations + 1)
            (added + Problem.num_paths p' - Problem.num_paths p)
            (Some levels)
      end
  in
  loop p0 0 0 None

let heuristic ?max_clusters ?max_iterations p =
  solve ?max_iterations
    ~solver:(fun p ->
      Option.map
        (fun (r : Heuristic.result) -> r.Heuristic.levels)
        (Heuristic.optimize ?max_clusters p))
    p
