module Placement = Fbb_place.Placement
module Timing = Fbb_sta.Timing
module Paths = Fbb_sta.Paths

type outcome = {
  problem : Problem.t;
  levels : int array;
  iterations : int;
  added_constraints : int;
  signoff_clean : bool;
}

let iterations_c = Fbb_obs.Counter.make "refine.iterations"
let constraints_added_c = Fbb_obs.Counter.make "refine.constraints_added"

let row_bias p levels g =
  let placement = p.Problem.placement in
  let r = Placement.row_of placement g in
  if r < 0 then 0.0 else p.Problem.levels.(levels.(r))

(* The biased dcrit is the maximum per-cell longest-path delay (the
   critical path is the through-cell path of its own cells), so a
   within-budget dcrit proves the extraction would filter to nothing:
   the clean sign-off — the common case — costs no path extraction. *)
let offenders_of p biased =
  let budget = p.Problem.dcrit +. 1e-6 in
  if Timing.dcrit biased <= budget then (true, [||])
  else
    let offenders =
      Paths.through_cell biased
      |> Array.to_list
      |> List.filter (fun path -> path.Paths.delay > budget)
      |> Array.of_list
    in
    (Array.length offenders = 0, offenders)

let signoff p ~levels =
  Fbb_obs.Span.with_ ~name:"refine.signoff" @@ fun () ->
  let nl = Placement.netlist p.Problem.placement in
  let beta = p.Problem.beta in
  let biased =
    Timing.analyze ~derate:(fun _ -> 1.0 +. beta) ~bias:(row_bias p levels) nl
  in
  offenders_of p biased

(* Sign-off through the solve loop's reused incremental context: only
   rows the solver moved since the previous iteration re-propagate. *)
let signoff_incr ctx p ~levels =
  Fbb_obs.Span.with_ ~name:"refine.signoff" @@ fun () ->
  let biased = Timing.Incremental.set_bias ctx (row_bias p levels) in
  offenders_of p biased

let solve ?(max_iterations = 10) ~solver p0 =
  Fbb_obs.Span.with_ ~name:"refine.solve" @@ fun () ->
  (* One context for the whole loop: [extend] keeps the placement, beta
     and netlist, so the frozen derate stays valid across iterations.
     The problem's delay cache (when its builder shared one) spares a
     fresh table build here. *)
  let ctx =
    lazy
      (let beta = p0.Problem.beta in
       Timing.Incremental.create ?cache:p0.Problem.cache
         ~derate:(fun _ -> 1.0 +. beta)
         (Placement.netlist p0.Problem.placement))
  in
  let rec loop p iterations added last =
    Fbb_obs.Counter.incr iterations_c;
    match solver p with
    | None -> begin
      match last with
      | None -> None
      | Some levels ->
        (* A previous iteration succeeded but the extension made the
           problem unsolvable for this solver; report that last solution,
           honestly marked as failing signoff. *)
        Some
          {
            problem = p;
            levels;
            iterations;
            added_constraints = added;
            signoff_clean = false;
          }
    end
    | Some levels ->
      let clean, offenders = signoff_incr (Lazy.force ctx) p ~levels in
      if clean || iterations + 1 >= max_iterations then
        Some
          {
            problem = p;
            levels;
            iterations = iterations + 1;
            added_constraints = added;
            signoff_clean = clean;
          }
      else begin
        let p' = Problem.extend p offenders in
        if Problem.num_paths p' = Problem.num_paths p then
          (* Nothing new to add: the violation is below the extension
             threshold; stop honestly. *)
          Some
            {
              problem = p;
              levels;
              iterations = iterations + 1;
              added_constraints = added;
              signoff_clean = false;
            }
        else begin
          Fbb_obs.Counter.add constraints_added_c
            (Problem.num_paths p' - Problem.num_paths p);
          loop p'
            (iterations + 1)
            (added + Problem.num_paths p' - Problem.num_paths p)
            (Some levels)
        end
      end
  in
  loop p0 0 0 None

let heuristic ?max_clusters ?max_iterations p =
  solve ?max_iterations
    ~solver:(fun p ->
      Option.map
        (fun (r : Heuristic.result) -> r.Heuristic.levels)
        (Heuristic.optimize ?max_clusters p))
    p
