(** The row-clustering FBB allocation problem (paper section 4.1).

    Pre-processing a placed design against a slowdown coefficient [beta]
    produces everything both optimizers consume:

    - the critical path set Pi — the pruned per-cell longest paths whose
      degraded delay [pd * (1 + beta)] exceeds [Dcrit];
    - per path the required delay reduction [b_k = pd*(1+beta) - Dcrit];
    - per (row, path) the total degraded delay of the path's cells in that
      row, from which the paper's coefficients follow as
      [a(i,j,k) = path_row_delay(k,i) * reduction(j)] — forward body bias
      scales every gate delay by the same level-dependent factor;
    - per (row, level) the row leakage [L(i,j)].

    Levels index the bias generator's voltages ({!Fbb_tech.Bias}), level 0
    being no body bias. *)

type rowvec = { idx : int array; coef : float array }
(** A sparse coefficient vector in struct-of-arrays form: [coef.(i)]
    belongs to index [idx.(i)], [idx] ascending. Parallel flat arrays
    keep the float payload unboxed in the optimizer inner loops. *)

type t = {
  placement : Fbb_place.Placement.t;
  analysis : Fbb_sta.Timing.t;  (** the nominal STA the tables came from *)
  beta : float;
  dcrit : float;  (** timing spec: nominal critical delay, ps *)
  levels : float array;  (** generator voltages, ascending, [levels.(0) = 0] *)
  reduction : float array;
      (** per level: fractional delay reduction [1 - delay_factor] *)
  row_leak : float array array;  (** [row_leak.(i).(j)]: leakage in nW *)
  paths : Fbb_sta.Paths.path array;  (** the violating set Pi *)
  required : float array;  (** [b_k] in ps, positive *)
  path_rows : rowvec array;
      (** per path: degraded delay of the path's cells per row *)
  row_paths : rowvec array;  (** transpose of [path_rows] *)
  nominal_slack : float array;  (** per path: [dcrit - pd], ps *)
  cache : Fbb_sta.Delay_cache.t option;
      (** the shared delay cache handed to {!build}, if any; consumers
          ({!Refine}) reuse it for incremental sign-off contexts *)
}

val leak_tables :
  Fbb_place.Placement.t -> levels:float array -> float array array
(** The [row_leak] table for a placement and level set. Die-independent:
    repeated-build loops compute it once and pass it to {!build} via
    [row_leak]. *)

val build :
  ?cache:Fbb_sta.Delay_cache.t ->
  ?analysis:Fbb_sta.Timing.t ->
  ?paths:Fbb_sta.Paths.path array ->
  ?row_leak:float array array ->
  ?levels:float array ->
  beta:float ->
  Fbb_place.Placement.t ->
  t
(** Runs nominal STA, extracts and prunes the path set, and assembles all
    coefficient tables. [levels] defaults to the 11 generator voltages.

    Repeated-build loops (Monte-Carlo recovery samples the same design at
    many [beta]s) can skip the per-build STA, extraction and leakage
    walks: [analysis] supplies a precomputed nominal analysis of the
    placement's netlist, [paths] a pre-extracted [Paths.through_cell] set
    of that analysis (re-screened here against [beta]), [row_leak] the
    {!leak_tables} of the same placement and [levels], and [cache] a
    shared {!Fbb_sta.Delay_cache} (used directly when [analysis] is
    absent, and carried in the problem either way). Results are
    bit-identical with or without them. *)

val num_rows : t -> int
val num_levels : t -> int
val num_paths : t -> int
(** [num_paths] is the paper's "No.Constr" — the timing constraints in the
    optimization. *)

val coefficient : t -> path:int -> row:int -> level:int -> float
(** [a(i,j,k)]: delay reduction (ps) of path [k] when row [i] is biased at
    [level]. Zero when the path has no cells in the row. *)

val achieved : t -> levels:int array -> path:int -> float
(** Total reduction of a path under a full row assignment. *)

val max_single_level : t -> int option
(** Smallest level that, applied to every row, meets all constraints;
    [None] when even the highest level cannot compensate the slowdown. *)

val extend : t -> Fbb_sta.Paths.path array -> t
(** Add timing constraints for further paths (gate sequences); their
    delays and coefficient tables are recomputed from the problem's own
    nominal analysis, and paths already present (or not violating under
    [beta]) are dropped. Used by the {!Refine} loop when signoff finds a
    violating path outside the original per-cell longest set. *)

val row_leakage : t -> row:int -> level:int -> float
val total_leakage : t -> levels:int array -> float
(** Design leakage (nW) under a row assignment. *)

val pp_summary : Format.formatter -> t -> unit
