(** The row-clustering FBB allocation problem (paper section 4.1).

    Pre-processing a placed design against a slowdown coefficient [beta]
    produces everything both optimizers consume:

    - the critical path set Pi — the pruned per-cell longest paths whose
      degraded delay [pd * (1 + beta)] exceeds [Dcrit];
    - per path the required delay reduction [b_k = pd*(1+beta) - Dcrit];
    - per (row, path) the total degraded delay of the path's cells in that
      row, from which the paper's coefficients follow as
      [a(i,j,k) = path_row_delay(k,i) * reduction(j)] — forward body bias
      scales every gate delay by the same level-dependent factor;
    - per (row, level) the row leakage [L(i,j)].

    Levels index the bias generator's voltages ({!Fbb_tech.Bias}), level 0
    being no body bias. *)

type t = {
  placement : Fbb_place.Placement.t;
  analysis : Fbb_sta.Timing.t;  (** the nominal STA the tables came from *)
  beta : float;
  dcrit : float;  (** timing spec: nominal critical delay, ps *)
  levels : float array;  (** generator voltages, ascending, [levels.(0) = 0] *)
  reduction : float array;
      (** per level: fractional delay reduction [1 - delay_factor] *)
  row_leak : float array array;  (** [row_leak.(i).(j)]: leakage in nW *)
  paths : Fbb_sta.Paths.path array;  (** the violating set Pi *)
  required : float array;  (** [b_k] in ps, positive *)
  path_rows : (int * float) array array;
      (** per path: (row, degraded delay of the path's cells there) *)
  row_paths : (int * float) array array;  (** transpose of [path_rows] *)
  nominal_slack : float array;  (** per path: [dcrit - pd], ps *)
}

val build : ?levels:float array -> beta:float -> Fbb_place.Placement.t -> t
(** Runs nominal STA, extracts and prunes the path set, and assembles all
    coefficient tables. [levels] defaults to the 11 generator voltages. *)

val num_rows : t -> int
val num_levels : t -> int
val num_paths : t -> int
(** [num_paths] is the paper's "No.Constr" — the timing constraints in the
    optimization. *)

val coefficient : t -> path:int -> row:int -> level:int -> float
(** [a(i,j,k)]: delay reduction (ps) of path [k] when row [i] is biased at
    [level]. Zero when the path has no cells in the row. *)

val achieved : t -> levels:int array -> path:int -> float
(** Total reduction of a path under a full row assignment. *)

val max_single_level : t -> int option
(** Smallest level that, applied to every row, meets all constraints;
    [None] when even the highest level cannot compensate the slowdown. *)

val extend : t -> Fbb_sta.Paths.path array -> t
(** Add timing constraints for further paths (gate sequences); their
    delays and coefficient tables are recomputed from the problem's own
    nominal analysis, and paths already present (or not violating under
    [beta]) are dropped. Used by the {!Refine} loop when signoff finds a
    violating path outside the original per-cell longest set. *)

val row_leakage : t -> row:int -> level:int -> float
val total_leakage : t -> levels:int array -> float
(** Design leakage (nW) under a row assignment. *)

val pp_summary : Format.formatter -> t -> unit
