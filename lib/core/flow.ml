module B = Fbb_netlist.Benchmarks

type prepared = {
  spec : B.spec;
  netlist : Fbb_netlist.Netlist.t;
  placement : Fbb_place.Placement.t;
}

let prepare ?lib ?utilization spec =
  Fbb_obs.Span.with_ ~name:"flow.prepare" @@ fun () ->
  let netlist =
    Fbb_obs.Span.with_ ~name:"flow.generate" @@ fun () ->
    spec.B.generate ?lib ()
  in
  let placement =
    Fbb_obs.Span.with_ ~name:"flow.place" @@ fun () ->
    Fbb_place.Placement.place ?utilization ~target_rows:spec.B.rows netlist
  in
  { spec; netlist; placement }

let problem prepared ~beta =
  Fbb_obs.Span.with_ ~name:"flow.problem" @@ fun () ->
  Problem.build ~beta prepared.placement

type evaluation = {
  beta : float;
  constraints : int;
  jopt : int option;
  single_bb_nw : float option;
  heuristic : (int * Heuristic.result) list;
  ilp : (int * Ilp_opt.result) list;
}

let evaluate ?(cs = [ 2; 3 ]) ?(run_ilp = true) ?ilp_limits prepared ~beta =
  Fbb_obs.Span.with_ ~name:"flow.evaluate" @@ fun () ->
  let p = problem prepared ~beta in
  let jopt = Heuristic.pass_one p in
  let single_bb_nw =
    Option.map (fun j -> Solution.leakage_nw p (Solution.uniform p j)) jopt
  in
  (* Both optimizers run inside the signoff refinement loop; leakage is
     comparable across extended problems because the leakage tables do not
     depend on the constraint set. *)
  let refined =
    Fbb_obs.Span.with_ ~name:"flow.heuristic" @@ fun () ->
    List.filter_map
      (fun c -> Option.map (fun o -> (c, o)) (Refine.heuristic ~max_clusters:c p))
      cs
  in
  let heuristic =
    List.filter_map
      (fun (c, (o : Refine.outcome)) ->
        match (jopt, single_bb_nw) with
        | Some j, Some base when o.Refine.signoff_clean ->
          let leak = Solution.leakage_nw p o.Refine.levels in
          Some
            ( c,
              {
                Heuristic.jopt = j;
                levels = o.Refine.levels;
                clusters = Solution.cluster_count o.Refine.levels;
                leakage_nw = leak;
                single_bb_leakage_nw = base;
                savings_pct = Fbb_util.Stats.ratio_pct base leak;
                complete = true;
              } )
        | _, _ -> None)
      refined
  in
  let ilp =
    if not run_ilp then []
    else
      Fbb_obs.Span.with_ ~name:"flow.ilp" @@ fun () ->
      List.map
        (fun c ->
          let config =
            {
              Ilp_opt.default_config with
              max_clusters = c;
              limits =
                Option.value ilp_limits
                  ~default:Fbb_ilp.Branch_bound.default_limits;
            }
          in
          (* Start from the heuristic's refined constraint set and keep
             refining on the ILP's own solutions. *)
          let p0 =
            match List.assoc_opt c refined with
            | Some o -> o.Refine.problem
            | None -> p
          in
          let warm_start =
            Option.map
              (fun (r : Heuristic.result) -> r.Heuristic.levels)
              (List.assoc_opt c heuristic)
          in
          let last = ref None in
          let nodes = ref 0 in
          let elapsed = ref 0.0 in
          let solver q =
            let r = Ilp_opt.optimize ~config ?warm_start q in
            nodes := !nodes + r.Ilp_opt.nodes;
            elapsed := !elapsed +. r.Ilp_opt.elapsed_s;
            last := Some r;
            if r.Ilp_opt.proved_optimal then r.Ilp_opt.levels else None
          in
          let refined_ilp = Refine.solve ~max_iterations:4 ~solver p0 in
          match (refined_ilp, !last) with
          | Some o, Some r when o.Refine.signoff_clean ->
            ( c,
              {
                r with
                Ilp_opt.levels = Some o.Refine.levels;
                leakage_nw = Some (Solution.leakage_nw p o.Refine.levels);
                nodes = !nodes;
                elapsed_s = !elapsed;
              } )
          | _, Some r ->
            (* Not proved within budget (or signoff never closed): keep the
               solver metadata but report it as a timeout, the paper's "-"
               case. *)
            ( c,
              {
                r with
                Ilp_opt.proved_optimal = false;
                timed_out = true;
                nodes = !nodes;
                elapsed_s = !elapsed;
              } )
          | _, None ->
            ( c,
              {
                Ilp_opt.levels = None;
                leakage_nw = None;
                proved_optimal = false;
                timed_out = true;
                nodes = 0;
                elapsed_s = 0.0;
                constraints_total = Problem.num_paths p;
                constraints_solved = 0;
              } ))
        cs
  in
  { beta; constraints = Problem.num_paths p; jopt; single_bb_nw; heuristic; ilp }

(* Savings against a zero/NaN baseline are meaningless; drop them here
   so report columns show "-" instead of inf/nan. *)
let finite_opt = function
  | Some v when Float.is_finite v -> Some v
  | Some _ | None -> None

let heuristic_savings_pct ev ~c =
  finite_opt
    (Option.map
       (fun (r : Heuristic.result) -> r.Heuristic.savings_pct)
       (List.assoc_opt c ev.heuristic))

let ilp_savings_pct ev ~c =
  match (List.assoc_opt c ev.ilp, ev.single_bb_nw) with
  | Some r, Some base when r.Ilp_opt.proved_optimal ->
    Option.bind r.Ilp_opt.leakage_nw (fun leak ->
        Fbb_util.Stats.ratio_pct_opt base leak)
  | Some _, _ | None, _ -> None
