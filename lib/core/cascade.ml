module B = Fbb_util.Budget

type stage = Ilp | Bb | Heuristic | Single_bb

let stage_name = function
  | Ilp -> "ilp"
  | Bb -> "bb"
  | Heuristic -> "heuristic"
  | Single_bb -> "single_bb"

type status =
  | Accepted
  | No_candidate
  | Rejected
  | Exhausted
  | Crashed of string

type attempt = {
  stage : stage;
  status : status;
  leakage_nw : float option;
  work_spent : int;
  elapsed_s : float;
}

type outcome =
  | Solved of {
      stage : stage;
      levels : int array;
      leakage_nw : float;
      gap_pct : float option;
      optimal : bool;
    }
  | Infeasible

type result = {
  outcome : outcome;
  attempts : attempt list;
  exhausted : bool;
}

let stages_c = Fbb_obs.Counter.make "cascade.stages"
let accepted_c = Fbb_obs.Counter.make "cascade.accepted"
let rejected_c = Fbb_obs.Counter.make "cascade.rejected"
let crashed_c = Fbb_obs.Counter.make "cascade.crashed"
let exhausted_c = Fbb_obs.Counter.make "cascade.exhausted"

(* The sign-off deliberately mirrors the oracle's plain-loop style
   rather than calling [Solution.meets_timing]: an acceptance decision
   must not share code with the machinery that produced the candidate,
   or a common bug signs off its own output. *)
let verify p ~max_clusters levels =
  let nrows = Problem.num_rows p in
  let nlev = Problem.num_levels p in
  Array.length levels = nrows
  && Array.for_all (fun l -> l >= 0 && l < nlev) levels
  && begin
    let used = Array.make nlev false in
    Array.iter (fun l -> used.(l) <- true) levels;
    Array.fold_left (fun n u -> if u then n + 1 else n) 0 used <= max_clusters
  end
  &&
  let ok = ref true in
  let m = Problem.num_paths p in
  let k = ref 0 in
  while !ok && !k < m do
    let achieved = ref 0.0 in
    let rv = p.Problem.path_rows.(!k) in
    for i = 0 to Array.length rv.Problem.idx - 1 do
      achieved :=
        !achieved
        +. (rv.Problem.coef.(i) *. p.Problem.reduction.(levels.(rv.Problem.idx.(i))))
    done;
    if !achieved < p.Problem.required.(!k) -. 1e-9 then ok := false;
    incr k
  done;
  !ok

(* Row-wise leakage lower bound: every row at its cheapest level,
   ignoring timing entirely. Valid for any feasible assignment, so
   [(leak - lb) / lb] bounds the optimality gap from above. *)
let lower_bound p =
  let acc = ref 0.0 in
  for i = 0 to Problem.num_rows p - 1 do
    let row = p.Problem.row_leak.(i) in
    let m = ref row.(0) in
    Array.iter (fun v -> if v < !m then m := v) row;
    acc := !acc +. !m
  done;
  !acc

let gap_pct ~lb leak =
  if lb > 0.0 then Some (100.0 *. (leak -. lb) /. lb) else None

(* What a stage hands back to the driver. *)
type candidate = {
  c_levels : int array option;
  c_optimal : bool;  (* the stage claims a proof of optimality *)
  c_truncated : bool;  (* the stage's budget cut it short *)
}

let run_ilp strategy ~max_clusters ~budget p =
  let config =
    {
      Ilp_opt.default_config with
      max_clusters;
      strategy;
      budget;
      limits =
        {
          Fbb_ilp.Branch_bound.default_limits with
          max_seconds =
            (match B.remaining_s budget with
            | Some s -> s
            | None -> Fbb_ilp.Branch_bound.default_limits.max_seconds);
        };
    }
  in
  let r = Ilp_opt.optimize ~config p in
  {
    c_levels = r.Ilp_opt.levels;
    c_optimal = r.Ilp_opt.proved_optimal;
    c_truncated = r.Ilp_opt.timed_out;
  }

let run_heuristic ~max_clusters ~budget p =
  match Heuristic.optimize ~max_clusters ~budget p with
  | None -> { c_levels = None; c_optimal = false; c_truncated = false }
  | Some h ->
    {
      c_levels = Some h.Heuristic.levels;
      c_optimal = false;
      c_truncated = not h.Heuristic.complete;
    }

let run_single_bb p =
  match Problem.max_single_level p with
  | None -> { c_levels = None; c_optimal = false; c_truncated = false }
  | Some j ->
    { c_levels = Some (Solution.uniform p j); c_optimal = false;
      c_truncated = false }

(* Fraction of the remaining allowance each stage may burn. The floor
   stage takes no slice: it is pool-free and linear-time, and must run
   even on a dead budget. *)
let stage_frac = function
  | Ilp -> 0.5
  | Bb -> 0.6
  | Heuristic -> 1.0
  | Single_bb -> 0.0

let solve ?(max_clusters = 2) ?(budget = B.unlimited) p =
  if max_clusters < 1 then invalid_arg "Cascade.solve: C must be >= 1";
  Fbb_obs.Span.with_ ~name:"cascade.solve" @@ fun () ->
  let lb = lower_bound p in
  let attempts = ref [] in
  let winner = ref None in
  let record a = attempts := a :: !attempts in
  let attempt stage runner =
    if !winner = None then begin
      Fbb_obs.Counter.incr stages_c;
      let t0 = Fbb_obs.Clock.now_s () in
      let finish status leakage_nw work_spent =
        (match status with
        | Accepted -> Fbb_obs.Counter.incr accepted_c
        | Rejected -> Fbb_obs.Counter.incr rejected_c
        | Crashed _ -> Fbb_obs.Counter.incr crashed_c
        | Exhausted -> Fbb_obs.Counter.incr exhausted_c
        | No_candidate -> ());
        record
          { stage; status; leakage_nw; work_spent;
            elapsed_s = Fbb_obs.Clock.now_s () -. t0 }
      in
      let exhausted_now =
        (* The floor stage ignores exhaustion by design. *)
        stage <> Single_bb
        && (B.exhausted budget || Fbb_fault.Fault.fire "budget.exhaust")
      in
      if exhausted_now then finish Exhausted None 0
      else begin
        let frac = stage_frac stage in
        let sb =
          if stage = Single_bb then B.create ()
          else B.sub ~work_frac:frac ~deadline_frac:frac budget
        in
        match
          Fbb_obs.Span.with_ ~name:("cascade." ^ stage_name stage) (fun () ->
              runner ~budget:sb p)
        with
        | cand ->
          (* Charge the stage's ticks back to the shared budget; the
             child was only an allowance, not an account. *)
          let spent = B.work_used sb in
          B.consume budget spent;
          (match cand.c_levels with
          | None ->
            if cand.c_truncated then finish Exhausted None spent
            else finish No_candidate None spent
          | Some levels ->
            let leak = Solution.leakage_nw p levels in
            if verify p ~max_clusters levels then begin
              winner := Some (stage, levels, leak, cand.c_optimal);
              finish Accepted (Some leak) spent
            end
            else finish Rejected (Some leak) spent)
        | exception e ->
          let spent = B.work_used sb in
          B.consume budget spent;
          finish (Crashed (Printexc.to_string e)) None spent
      end
    end
  in
  attempt Ilp (fun ~budget p -> run_ilp Ilp_opt.Enumerate ~max_clusters ~budget p);
  attempt Bb (fun ~budget p -> run_ilp Ilp_opt.Monolithic ~max_clusters ~budget p);
  attempt Heuristic (fun ~budget p -> run_heuristic ~max_clusters ~budget p);
  attempt Single_bb (fun ~budget:_ p -> run_single_bb p);
  let outcome =
    match !winner with
    | Some (stage, levels, leakage_nw, optimal) ->
      Solved
        {
          stage;
          levels;
          leakage_nw;
          gap_pct = (if optimal then Some 0.0 else gap_pct ~lb leakage_nw);
          optimal;
        }
    | None ->
      (* Every stage fell through; the floor only declines when
         [max_single_level] is [None], which is the exact infeasibility
         proof (a uniform assignment uses one cluster, and C >= 1). *)
      Infeasible
  in
  { outcome; attempts = List.rev !attempts; exhausted = B.exhausted budget }
