module S = Fbb_lp.Simplex
module BB = Fbb_ilp.Branch_bound

type strategy = Monolithic | Enumerate

type config = {
  max_clusters : int;
  limits : BB.limits;
  reduce : bool;
  strategy : strategy;
  budget : Fbb_util.Budget.t;
}

let default_config =
  {
    max_clusters = 2;
    limits = BB.default_limits;
    reduce = true;
    strategy = Enumerate;
    budget = Fbb_util.Budget.unlimited;
  }

type result = {
  levels : int array option;
  leakage_nw : float option;
  proved_optimal : bool;
  timed_out : bool;
  nodes : int;
  elapsed_s : float;
  constraints_total : int;
  constraints_solved : int;
}

(* Timing constraint k is implied by k' when k' requires at least as much
   reduction while every row offers it at most as much raw delay: any x
   satisfying k' then satisfies k. Dropping implied constraints is
   lossless. *)
(* (row, delay) pair view of a sparse row vector, for the cold
   constraint-emission paths below. *)
let pairs rv =
  List.init
    (Array.length rv.Problem.idx)
    (fun i -> (rv.Problem.idx.(i), rv.Problem.coef.(i)))

let subsets_considered_c = Fbb_obs.Counter.make "ilp.subsets_considered"
let subsets_pruned_c = Fbb_obs.Counter.make "ilp.subsets_pruned"
let constraints_dropped_c = Fbb_obs.Counter.make "ilp.constraints_dropped"

let reduce_paths p =
  Fbb_obs.Span.with_ ~name:"ilp.reduce_paths" @@ fun () ->
  let m = Problem.num_paths p in
  let delay_in k =
    let tbl = Hashtbl.create 8 in
    let rv = p.Problem.path_rows.(k) in
    Array.iteri
      (fun i r -> Hashtbl.replace tbl r rv.Problem.coef.(i))
      rv.Problem.idx;
    tbl
  in
  let tables = Array.init m delay_in in
  let order = Array.init m (fun k -> k) in
  Array.sort
    (fun a b -> Float.compare p.Problem.required.(b) p.Problem.required.(a))
    order;
  (* k' implies k when req(k') >= req(k) — guaranteed by the sort
     order — and k offers at least k's raw delay in every row of k''s
     support. Dropping k whenever *any* earlier position implies it
     (rather than only a kept one, as the sequential scan did) is
     equivalent up to epsilon because implication is transitive; it
     makes every position independent of the others, so the pairwise
     scan shards across the pool and the kept set depends on nothing
     but the problem — identical at any job count. The tables are
     built before the fan-out and only read inside it. *)
  let dropped = Array.make m false in
  Fbb_par.Pool.parallel_for ~n:m (fun i ->
      let k = order.(i) in
      let tk = tables.(k) in
      let implied_by j =
        let rv = p.Problem.path_rows.(order.(j)) in
        let n = Array.length rv.Problem.idx in
        let rec all i =
          i >= n
          || (match Hashtbl.find_opt tk rv.Problem.idx.(i) with
             | Some d -> d >= rv.Problem.coef.(i) -. 1e-9
             | None -> false)
             && all (i + 1)
        in
        all 0
      in
      let rec scan j = j < i && (implied_by j || scan (j + 1)) in
      dropped.(i) <- scan 0);
  let kept = ref [] in
  for i = m - 1 downto 0 do
    if not dropped.(i) then kept := order.(i) :: !kept
  done;
  let kept = !kept in
  Fbb_obs.Counter.add constraints_dropped_c (m - List.length kept);
  kept

let formulate ?(reduce = true) ~max_clusters p =
  Fbb_obs.Span.with_ ~name:"ilp.formulate" @@ fun () ->
  let nrows = Problem.num_rows p in
  let nlev = Problem.num_levels p in
  let x i j = (i * nlev) + j in
  let y j = (nrows * nlev) + j in
  let num_vars = (nrows * nlev) + nlev in
  let minimize = Array.make num_vars 0.0 in
  for i = 0 to nrows - 1 do
    for j = 0 to nlev - 1 do
      minimize.(x i j) <- p.Problem.row_leak.(i).(j)
    done
  done;
  let kept =
    if reduce then reduce_paths p
    else List.init (Problem.num_paths p) (fun k -> k)
  in
  let timing =
    List.map
      (fun k ->
        let terms =
          pairs p.Problem.path_rows.(k)
          |> List.concat_map (fun (r, d) ->
                 List.filter_map
                   (fun j ->
                     let a = d *. p.Problem.reduction.(j) in
                     if a > 0.0 then Some (x r j, a) else None)
                   (List.init nlev (fun j -> j)))
        in
        { S.terms; relation = S.Ge; rhs = p.Problem.required.(k) })
      kept
  in
  let assignment =
    List.init nrows (fun i ->
        {
          S.terms = List.init nlev (fun j -> (x i j, 1.0));
          relation = S.Eq;
          rhs = 1.0;
        })
  in
  let big_f = float_of_int nrows in
  let linking =
    List.init nlev (fun j ->
        {
          S.terms = (y j, -.big_f) :: List.init nrows (fun i -> (x i j, 1.0));
          relation = S.Le;
          rhs = 0.0;
        })
  in
  let budget =
    [
      {
        S.terms = List.init nlev (fun j -> (y j, 1.0));
        relation = S.Le;
        rhs = float_of_int max_clusters;
      };
    ]
  in
  let y_bounds =
    List.init nlev (fun j ->
        { S.terms = [ (y j, 1.0) ]; relation = S.Le; rhs = 1.0 })
  in
  {
    BB.num_vars;
    minimize;
    constraints = timing @ assignment @ linking @ budget @ y_bounds;
  }

let warm_vector p ~max_clusters levels =
  if
    Solution.cluster_count levels <= max_clusters
    && Solution.meets_timing p levels
  then begin
    let nrows = Problem.num_rows p in
    let nlev = Problem.num_levels p in
    let v = Array.make ((nrows * nlev) + nlev) 0.0 in
    Array.iteri (fun i j -> v.((i * nlev) + j) <- 1.0) levels;
    List.iter
      (fun j -> v.((nrows * nlev) + j) <- 1.0)
      (Solution.clusters_used levels);
    Some v
  end
  else None

let optimize_monolithic config ?warm_start p ~kept =
  Fbb_obs.Span.with_ ~name:"ilp.monolithic" @@ fun () ->
  let problem =
    formulate ~reduce:config.reduce ~max_clusters:config.max_clusters p
  in
  let incumbent =
    Option.bind warm_start (warm_vector p ~max_clusters:config.max_clusters)
  in
  let r = BB.solve ~limits:config.limits ~budget:config.budget ?incumbent problem in
  let nrows = Problem.num_rows p in
  let nlev = Problem.num_levels p in
  let decode (x, _) =
    Array.init nrows (fun i ->
        let best = ref 0 in
        for j = 1 to nlev - 1 do
          if x.((i * nlev) + j) > x.((i * nlev) + !best) then best := j
        done;
        !best)
  in
  let levels = Option.map decode r.BB.best in
  {
    levels;
    leakage_nw = Option.map (fun l -> Solution.leakage_nw p l) levels;
    proved_optimal = r.BB.status = BB.Proved_optimal;
    timed_out =
      (match r.BB.status with
      | BB.Feasible | BB.Limit_reached -> true
      | BB.Proved_optimal | BB.Proved_infeasible -> false);
    nodes = r.BB.nodes;
    elapsed_s = r.BB.elapsed_s;
    constraints_total = Problem.num_paths p;
    constraints_solved = kept;
  }

(* All ascending level subsets of the given size. *)
let subsets_of_size levels_n size =
  let rec go start size =
    if size = 0 then [ [] ]
    else
      List.concat_map
        (fun first ->
          List.map (fun rest -> first :: rest) (go (first + 1) (size - 1)))
        (List.init (levels_n - start) (fun k -> start + k))
  in
  go 0 size

(* Restricted problem: every row picks a level from [subset] (an ascending
   int list). Variables are row-major over the subset's positions. *)
let formulate_subset p ~kept ~subset =
  let nrows = Problem.num_rows p in
  let s = Array.of_list subset in
  let ns = Array.length s in
  let x i q = (i * ns) + q in
  let minimize = Array.make (nrows * ns) 0.0 in
  for i = 0 to nrows - 1 do
    for q = 0 to ns - 1 do
      minimize.(x i q) <- p.Problem.row_leak.(i).(s.(q))
    done
  done;
  let timing =
    List.map
      (fun k ->
        let terms =
          pairs p.Problem.path_rows.(k)
          |> List.concat_map (fun (r, d) ->
                 List.filter_map
                   (fun q ->
                     let a = d *. p.Problem.reduction.(s.(q)) in
                     if a > 0.0 then Some (x r q, a) else None)
                   (List.init ns (fun q -> q)))
        in
        { S.terms; relation = S.Ge; rhs = p.Problem.required.(k) })
      kept
  in
  let assignment =
    List.init nrows (fun i ->
        {
          S.terms = List.init ns (fun q -> (x i q, 1.0));
          relation = S.Eq;
          rhs = 1.0;
        })
  in
  ({ BB.num_vars = nrows * ns; minimize; constraints = timing @ assignment }, s)

(* Project a full assignment into the subset: each row rounds its level up
   to the next subset member (preserving feasibility since higher levels
   reduce at least as much), or the subset maximum. *)
let project_levels subset levels =
  let s = Array.of_list subset in
  Array.map
    (fun l ->
      let q = ref (Array.length s - 1) in
      for k = Array.length s - 1 downto 0 do
        if s.(k) >= l then q := k
      done;
      !q)
    levels

let optimize_enumerate config ?warm_start p ~kept =
  Fbb_obs.Span.with_ ~name:"ilp.enumerate" @@ fun () ->
  let start = Fbb_obs.Clock.now_s () in
  let nrows = Problem.num_rows p in
  let best = ref None in
  (match warm_start with
  | Some levels
    when Solution.cluster_count levels <= config.max_clusters
         && Solution.meets_timing p levels ->
    best := Some (Array.copy levels, Solution.leakage_nw p levels)
  | Some _ | None -> ());
  let jopt = Problem.max_single_level p in
  let nodes = ref 0 in
  (* jopt = None proves infeasibility outright: the uniform-maximum
     assignment dominates every other one constraint-wise. *)
  let all_proved = ref true in
  (match jopt with
  | None -> ()
  | Some jopt ->
    let floor_cost_of subset =
      let lo = List.fold_left min max_int subset in
      let acc = ref 0.0 in
      for i = 0 to nrows - 1 do
        acc := !acc +. p.Problem.row_leak.(i).(lo)
      done;
      !acc
    in
    (* Cheapest-floor subsets first: a tight incumbent found early prunes
       most of the remaining enumeration at the floor-cost check. *)
    let subsets =
      subsets_of_size (Problem.num_levels p) config.max_clusters
      |> List.filter (fun s -> List.exists (fun j -> j >= jopt) s)
      |> List.map (fun s -> (floor_cost_of s, s))
      |> List.sort (fun (ca, sa) (cb, sb) ->
             match Float.compare ca cb with
             | 0 -> List.compare Int.compare sa sb
             | c -> c)
      |> List.map snd
    in
    List.iter
      (fun subset ->
        Fbb_obs.Counter.incr subsets_considered_c;
        let elapsed = Fbb_obs.Clock.now_s () -. start in
        let remaining = config.limits.BB.max_seconds -. elapsed in
        (* One budget tick per subset in this sequential loop; the
           shared budget is also handed to each inner B&B, which ticks
           it per node at its own (sequential) wave fold. *)
        if remaining <= 0.0 || not (Fbb_util.Budget.tick config.budget) then
          all_proved := false
        else begin
          (* Cheap bound: even with every row at its cheapest subset level
             the incumbent must be beatable. *)
          let floor_cost = floor_cost_of subset in
          let beatable =
            match !best with
            | Some (_, b) -> floor_cost < b -. 1e-9
            | None -> true
          in
          if not beatable then Fbb_obs.Counter.incr subsets_pruned_c;
          if beatable then begin
            let problem, s = formulate_subset p ~kept ~subset in
            let incumbent =
              match warm_start with
              | Some levels when Solution.meets_timing p levels ->
                let proj = project_levels subset levels in
                let v = Array.make problem.BB.num_vars 0.0 in
                Array.iteri
                  (fun i q -> v.((i * Array.length s) + q) <- 1.0)
                  proj;
                let ok =
                  let lv = Array.map (fun q -> s.(q)) proj in
                  Solution.meets_timing p lv
                in
                if ok then Some v else None
              | Some _ | None -> None
            in
            let cutoff = Option.map snd !best in
            let limits =
              {
                BB.max_nodes = config.limits.BB.max_nodes;
                max_seconds = remaining;
              }
            in
            let r = BB.solve ~limits ~budget:config.budget ?incumbent ?cutoff problem in
            nodes := !nodes + r.BB.nodes;
            (match r.BB.status with
            | BB.Proved_optimal | BB.Proved_infeasible -> ()
            | BB.Feasible | BB.Limit_reached -> all_proved := false);
            match r.BB.best with
            | Some (x, obj) -> begin
              let levels =
                Array.init nrows (fun i ->
                    let bestq = ref 0 in
                    for q = 1 to Array.length s - 1 do
                      if x.((i * Array.length s) + q)
                         > x.((i * Array.length s) + !bestq)
                      then bestq := q
                    done;
                    s.(!bestq))
              in
              match !best with
              | Some (_, b) when obj >= b -. 1e-9 -> ()
              | Some _ | None -> best := Some (levels, obj)
            end
            | None -> ()
          end
        end)
      subsets);
  let levels = Option.map fst !best in
  {
    levels;
    leakage_nw = Option.map snd !best;
    proved_optimal = !all_proved;
    timed_out = not !all_proved;
    nodes = !nodes;
    elapsed_s = Fbb_obs.Clock.now_s () -. start;
    constraints_total = Problem.num_paths p;
    constraints_solved = List.length kept;
  }

let optimize ?(config = default_config) ?warm_start p =
  Fbb_obs.Span.with_ ~name:"ilp.optimize" @@ fun () ->
  let kept =
    if config.reduce then reduce_paths p
    else List.init (Problem.num_paths p) (fun k -> k)
  in
  match config.strategy with
  | Monolithic -> optimize_monolithic config ?warm_start p ~kept:(List.length kept)
  | Enumerate -> optimize_enumerate config ?warm_start p ~kept
