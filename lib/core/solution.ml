let timing_eps = 1e-9

let uniform p j = Array.make (Problem.num_rows p) j

(* Early exit: sign-off loops call this per candidate, and one violated
   path already decides the answer. *)
let meets_timing p levels =
  let req = p.Problem.required in
  let n = Array.length req in
  let k = ref 0 in
  let ok = ref true in
  while !ok && !k < n do
    if Problem.achieved p ~levels ~path:!k < req.(!k) -. timing_eps then
      ok := false;
    incr k
  done;
  !ok

let leakage_nw p levels = Problem.total_leakage p ~levels

let clusters_used levels =
  List.sort_uniq Int.compare (Array.to_list levels)

let cluster_count levels = List.length (clusters_used levels)

let savings_pct p ~baseline levels =
  Fbb_util.Stats.ratio_pct (leakage_nw p baseline) (leakage_nw p levels)

let worst_margin p levels =
  let worst = ref Float.infinity in
  Array.iteri
    (fun k req ->
      let m = Problem.achieved p ~levels ~path:k -. req in
      if m < !worst then worst := m)
    p.Problem.required;
  !worst

module Checker = struct
  type t = {
    problem : Problem.t;
    levels : int array;
    sigma : float array;  (* achieved reduction per path *)
    mutable violations : int;
    mutable leak : float;  (* running total leakage of [levels] *)
  }

  let checks_c = Fbb_obs.Counter.make "checker.feasible_checks"
  let updates_c = Fbb_obs.Counter.make "checker.incremental_updates"

  let create problem levels0 =
    let levels = Array.copy levels0 in
    let sigma =
      Array.init (Problem.num_paths problem) (fun k ->
          Problem.achieved problem ~levels ~path:k)
    in
    let violations = ref 0 in
    Array.iteri
      (fun k req -> if sigma.(k) < req -. timing_eps then incr violations)
      problem.Problem.required;
    {
      problem;
      levels;
      sigma;
      violations = !violations;
      leak = Problem.total_leakage problem ~levels;
    }

  let set t ~row ~level =
    let old_level = t.levels.(row) in
    if old_level <> level then begin
      Fbb_obs.Counter.incr updates_c;
      let p = t.problem in
      let delta =
        p.Problem.reduction.(level) -. p.Problem.reduction.(old_level)
      in
      let rp = p.Problem.row_paths.(row) in
      for i = 0 to Array.length rp.Problem.idx - 1 do
        let k = rp.Problem.idx.(i) in
        let req = p.Problem.required.(k) in
        let before = t.sigma.(k) in
        let after = before +. (rp.Problem.coef.(i) *. delta) in
        t.sigma.(k) <- after;
        let was_bad = before < req -. timing_eps in
        let is_bad = after < req -. timing_eps in
        if was_bad && not is_bad then t.violations <- t.violations - 1
        else if is_bad && not was_bad then t.violations <- t.violations + 1
      done;
      t.leak <-
        t.leak
        +. Problem.row_leakage p ~row ~level
        -. Problem.row_leakage p ~row ~level:old_level;
      t.levels.(row) <- level
    end

  let level t ~row = t.levels.(row)
  let levels t = Array.copy t.levels
  let leakage_nw t = t.leak

  let feasible t =
    Fbb_obs.Counter.incr checks_c;
    t.violations = 0
  let violation_count t = t.violations
end
