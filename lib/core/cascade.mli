(** Deadline-bounded anytime solving: a fallback cascade over the
    production solvers.

    The cascade runs the stages

    {v ilp -> budgeted B&B -> heuristic -> single BB v}

    under one shared {!Fbb_util.Budget}, carving each stage a fraction
    of whatever allowance remains when it starts. A stage's candidate
    is only {e accepted} after an independent sign-off — a plain-loop
    feasibility, range and cluster-count check that shares nothing with
    the solvers' incremental machinery — and the first signed-off
    candidate wins. The final [Single_bb] stage is the unconditional
    floor: it runs even with the budget fully exhausted (it is
    pool-free and linear-time), so the cascade never hangs and always
    returns either a signed-off feasible assignment or a typed
    infeasibility. Infeasibility is only ever claimed through the exact
    {!Problem.max_single_level} proof, never inferred from a budget or
    a crash.

    Each stage attempt is recorded — stage, status, budget spent,
    leakage — forming the degradation report the CLI prints and the
    [cascade.*] counters mirror. Stage crashes (e.g. injected
    ["pool.worker"] faults surfacing as [Worker_error]) are contained:
    the stage is marked [Crashed] and the cascade falls through to the
    next stage. The ["budget.exhaust"] fault site is evaluated at every
    stage entry; when it fires the stage is skipped as if its budget
    had already tripped. *)

type stage = Ilp | Bb | Heuristic | Single_bb

val stage_name : stage -> string
(** ["ilp"], ["bb"], ["heuristic"], ["single_bb"]. *)

type status =
  | Accepted  (** candidate passed sign-off and won *)
  | No_candidate  (** stage finished without producing an assignment *)
  | Rejected  (** candidate failed the independent sign-off *)
  | Exhausted  (** stage budget tripped before a usable candidate *)
  | Crashed of string  (** stage raised; the exception, printed *)

type attempt = {
  stage : stage;
  status : status;
  leakage_nw : float option;  (** of the stage's candidate, if any *)
  work_spent : int;  (** budget work units consumed by the stage *)
  elapsed_s : float;
}

type outcome =
  | Solved of {
      stage : stage;  (** the stage whose candidate was accepted *)
      levels : int array;
      leakage_nw : float;
      gap_pct : float option;
          (** optimality-gap bound vs the row-wise leakage lower bound
              [sum_i min_j L(i,j)]; [Some 0.] when the ILP proved
              optimality, [None] when the lower bound is not positive *)
      optimal : bool;  (** the ILP stage proved this optimal *)
    }
  | Infeasible
      (** proved exactly: not even the highest uniform level meets
          timing ([Problem.max_single_level = None]) *)

type result = {
  outcome : outcome;
  attempts : attempt list;  (** in execution order *)
  exhausted : bool;  (** the shared budget had tripped by the end *)
}

val verify : Problem.t -> max_clusters:int -> int array -> bool
(** The sign-off: right length, every level in range, at most
    [max_clusters] distinct levels, and every path's required reduction
    met — all recomputed with plain loops over the problem tables. *)

val solve :
  ?max_clusters:int -> ?budget:Fbb_util.Budget.t -> Problem.t -> result
(** Run the cascade ([max_clusters] defaults to 2; budget defaults to
    unlimited, in which case the ILP stage normally wins). The whole
    run sits inside a [cascade.solve] span with one [cascade.<stage>]
    span per attempted stage. *)
