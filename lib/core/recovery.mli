(** Active leakage recovery with row-level *reverse* body bias — the
    fine-grained body-biasing use case of Khandelwal & Srivastava [7] that
    the paper contrasts itself with, implemented on the same row
    machinery.

    Where the FBB optimizer spends leakage to buy back timing, this one
    spends slack to buy back leakage: rows whose cells all have timing
    slack receive reverse bias (raising Vth, cutting subthreshold leakage)
    as deep as the slack — and the BTBT floor — allows. The same cluster
    budget, contact-cell layout and signoff refinement apply; levels here
    index {!Fbb_tech.Bias.rbb_levels} (level 0 = NBB, level j = -j*50 mV).

    Constraints come from the full per-cell longest-path set (every path
    must stay within the timing budget as its gates slow down), checked
    incrementally and re-verified by full STA with the bias applied. *)

type t = {
  placement : Fbb_place.Placement.t;
  budget_ps : float;  (** timing budget T; paths must stay below it *)
  levels : float array;  (** RBB voltages, [levels.(0) = 0] *)
  slack : float array;  (** per path: T - pd, >= 0 *)
  path_rows : (int * float) array array;  (** per path: (row, delay there) *)
  row_paths : (int * float) array array;
  row_leak : float array array;  (** leakage (nW) per row and level *)
  stretch : float array;  (** per level: delay_factor - 1, >= 0 *)
  analysis : Fbb_sta.Timing.t;  (** the nominal (NBB) STA *)
  base_paths : Fbb_sta.Paths.path array;
      (** [Paths.through_cell analysis] — the initial constraint set *)
  cache : Fbb_sta.Delay_cache.t;  (** shared flat delay tables *)
}

val build : ?margin:float -> Fbb_place.Placement.t -> t
(** Pre-process. [margin] (default 0) relaxes the budget to
    [dcrit * (1 + margin)] — a block clocked slower than its critical
    delay can recover more. *)

type result = {
  levels : int array;  (** RBB level per row *)
  clusters : int;
  nominal_leakage_nw : float;  (** all rows at NBB *)
  recovered_leakage_nw : float;
  savings_pct : float;
  signoff_clean : bool;
  iterations : int;
}

val optimize : ?max_clusters:int -> ?max_iterations:int -> t -> result
(** Greedy deepening in increasing criticality order with a cluster-budget
    merge phase (mirror image of the FBB heuristic), wrapped in the
    signoff refinement loop. [max_clusters] defaults to 2 (NBB plus one
    reverse rail pair). Never fails: the all-NBB assignment is always
    feasible. *)

val meets_budget : t -> int array -> bool
(** The recovery CheckTiming: every path's stretched delay stays within
    the budget. *)

val signoff : t -> int array -> bool * Fbb_sta.Paths.path array
(** Full STA of the placed netlist with the reverse bias applied, against
    the budget (the recovery counterpart of {!Refine.signoff}): whether
    every path meets it, and the per-cell longest paths that do not. *)

val leakage_nw : t -> int array -> float
