(** The paper's exact ILP formulation (section 4.2), solved with our own
    branch-and-bound over an LP relaxation.

    Variables: [x(i,j)] (row i assigned level j) and auxiliary [y(j)]
    (level j used at all). Constraints: one timing row per path in Pi,
    one assignment equality per row, the [sum_i x(i,j) <= F y(j)] linking
    rows and [sum_j y(j) <= C].

    Two fidelity/performance options:
    - [reduce]: drop timing constraints dominated by another (same or
      smaller requirement with component-wise larger coefficients) — sound
      and lossless, and essential for the larger designs;
    - a heuristic warm start seeds the incumbent. *)

type strategy =
  | Monolithic
      (** solve the paper's formulation as one 0-1 program — faithful but
          slow, kept for cross-checks and the ablation bench *)
  | Enumerate
      (** enumerate the (at most [C] of [P]) level subsets the [y]
          variables range over and solve each restricted assignment
          problem exactly; provably the same optimum, much faster *)

type config = {
  max_clusters : int;  (** the paper's C *)
  limits : Fbb_ilp.Branch_bound.limits;
      (** global limits: [max_seconds] caps the whole solve, including all
          enumerated subsets *)
  reduce : bool;  (** dominance-prune timing constraints (default true) *)
  strategy : strategy;
  budget : Fbb_util.Budget.t;
      (** cooperative budget: ticked once per enumerated subset and
          threaded into every inner branch-and-bound solve (which ticks
          it per node, sequentially). When it trips the solve stops at
          the next check point and reports the best incumbent so far
          with [timed_out = true]. *)
}

val default_config : config
(** C = 2, default solver limits, reduction on, [Enumerate], unlimited
    budget. *)

type result = {
  levels : int array option;  (** best assignment found, if any *)
  leakage_nw : float option;
  proved_optimal : bool;
  timed_out : bool;  (** node or time limit hit — the paper's "-" case *)
  nodes : int;
  elapsed_s : float;
  constraints_total : int;  (** paper's No.Constr: |Pi| *)
  constraints_solved : int;  (** after dominance reduction *)
}

val reduce_paths : Problem.t -> int list
(** Indices of the timing constraints kept by dominance reduction, in
    decreasing-requirement order. The pairwise scan is sharded across
    the {!Fbb_par.Pool} but depends only on the problem, so the kept
    set is identical at any job count. *)

val formulate :
  ?reduce:bool -> max_clusters:int -> Problem.t -> Fbb_ilp.Branch_bound.problem
(** Expose the raw 0-1 program (used by tests to cross-check optima). *)

val optimize :
  ?config:config -> ?warm_start:int array -> Problem.t -> result
(** Solve; [warm_start] is a feasible row assignment with at most C
    clusters (e.g. the heuristic's output). An infeasible or over-budget
    warm start is ignored rather than rejected. *)
