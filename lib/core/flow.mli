(** End-to-end experiment flow: generate -> place -> pre-process ->
    optimize (heuristic and/or ILP), mirroring the paper's section 5
    methodology. The bench harness and examples are thin wrappers over
    this module. *)

type prepared = {
  spec : Fbb_netlist.Benchmarks.spec;
  netlist : Fbb_netlist.Netlist.t;
  placement : Fbb_place.Placement.t;
}

val prepare :
  ?lib:Fbb_tech.Cell_library.t ->
  ?utilization:float ->
  Fbb_netlist.Benchmarks.spec ->
  prepared
(** Generate the benchmark netlist and place it on the paper's row count. *)

val problem : prepared -> beta:float -> Problem.t

type evaluation = {
  beta : float;
  constraints : int;  (** |Pi|, the paper's No.Constr *)
  jopt : int option;
  single_bb_nw : float option;  (** block-level FBB baseline leakage *)
  heuristic : (int * Heuristic.result) list;  (** keyed by cluster budget C *)
  ilp : (int * Ilp_opt.result) list;
}

val evaluate :
  ?cs:int list ->
  ?run_ilp:bool ->
  ?ilp_limits:Fbb_ilp.Branch_bound.limits ->
  prepared ->
  beta:float ->
  evaluation
(** Run the optimizers for each cluster budget in [cs] (default [[2; 3]]).
    The ILP (run when [run_ilp], default true) is warm-started from the
    heuristic solution of the same C. *)

val ilp_savings_pct : evaluation -> c:int -> float option
(** ILP leakage saving vs the Single BB baseline; [None] when the ILP
    timed out without proving optimality (the paper's "-" entries) or was
    not run. *)

val heuristic_savings_pct : evaluation -> c:int -> float option
