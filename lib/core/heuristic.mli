(** The paper's two-pass linear-time clustering heuristic (section 4.3).

    PassOne sweeps the bias levels upward and returns the smallest single
    voltage [jopt] that meets timing everywhere — this is also the
    block-level "Single BB" baseline of Table 1.

    PassTwo ranks rows by timing criticality
    [ct_i = sum_k Q_ik / slack_k] (cells of row i on path k, weighted by
    the path's nominal slack) and cascades: starting with every row at
    [jopt], rows are dropped one level at a time in increasing-criticality
    order; the first row whose drop breaks timing is reverted and locked
    together with all more-critical unlocked rows as a cluster at the
    current level, and the remaining rows keep sinking level by level.

    The paper's pseudocode is ambiguous about how a mid-round failure
    interacts with the cluster budget C, and taken literally the cascade
    converges to the uniform [jopt] assignment whenever the feasibility
    margin at [jopt] is thinner than one generator step. We therefore run
    the descent from every feasible uniform start, and additionally from
    every "covering" start (the dual greedy: all rows at NBB, the most
    critical raised to one level until timing is met - the shape the exact
    optimum takes). Each candidate is brought within the cluster budget by
    a merge phase - while more than C levels are in use, the adjacent
    cluster pair whose merge (raising the lower cluster, which can only
    help timing) costs the least leakage is merged - and the cheapest
    candidate wins. Every ingredient is linear-time per level, preserving
    the paper's O(P*N) spirit; see DESIGN.md for the fidelity note. *)

type result = {
  jopt : int;  (** PassOne level — the Single BB baseline *)
  levels : int array;  (** final assignment *)
  clusters : int;
  leakage_nw : float;
  single_bb_leakage_nw : float;  (** leakage with every row at [jopt] *)
  savings_pct : float;  (** of [levels] vs the Single BB baseline *)
  complete : bool;
      (** [false] when a [?budget] truncated the candidate sweep; the
          assignment is still feasible and within the cluster budget,
          just possibly less optimized than the full run's *)
}

val pass_one : Problem.t -> int option
(** [None] when even the highest bias level cannot meet timing. *)

val criticality : Problem.t -> float array
(** Per-row ranking coefficient [ct_i]; higher is more critical. *)

val optimize :
  ?max_clusters:int -> ?budget:Fbb_util.Budget.t -> Problem.t -> result option
(** Full two-pass run; [max_clusters] is the paper's C (default 2).
    [None] exactly when {!pass_one} fails.

    [budget] is ticked once per descent round and consulted between
    candidate starts — all sequential loops, so a pure work budget
    truncates at the same point on every run (bit-identical results at
    any job count). Because the descent only ever holds feasible
    states and the merge phase enforces C unconditionally, a truncated
    run still returns a feasible within-budget assignment, flagged
    [complete = false]. *)
