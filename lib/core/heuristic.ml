type result = {
  jopt : int;
  levels : int array;
  clusters : int;
  leakage_nw : float;
  single_bb_leakage_nw : float;
  savings_pct : float;
  complete : bool;
}

let descents_c = Fbb_obs.Counter.make "heuristic.descents"
let covers_c = Fbb_obs.Counter.make "heuristic.covers"
let moves_c = Fbb_obs.Counter.make "heuristic.moves"
let candidates_c = Fbb_obs.Counter.make "heuristic.candidates"

let pass_one p =
  Fbb_obs.Span.with_ ~name:"heuristic.pass_one" @@ fun () ->
  Problem.max_single_level p

(* slack can be zero on the critical path itself; the epsilon keeps the
   ranking finite while preserving the order the paper intends. *)
let criticality p =
  let eps = Float.max 1e-6 (p.Problem.dcrit *. 1e-3) in
  let ct = Array.make (Problem.num_rows p) 0.0 in
  (* Q_ik cell counts come straight off the path gate lists. *)
  Array.iteri
    (fun k path ->
      let slack = p.Problem.nominal_slack.(k) in
      let weight = 1.0 /. (Float.max 0.0 slack +. eps) in
      Array.iter
        (fun g ->
          let r = Fbb_place.Placement.row_of p.Problem.placement g in
          if r >= 0 then ct.(r) <- ct.(r) +. weight)
        path.Fbb_sta.Paths.gates)
    p.Problem.paths;
  ct

let optimize ?(max_clusters = 2) ?(budget = Fbb_util.Budget.unlimited) p =
  if max_clusters < 1 then invalid_arg "Heuristic.optimize: C must be >= 1";
  Fbb_obs.Span.with_ ~name:"heuristic.optimize" @@ fun () ->
  match pass_one p with
  | None -> None
  | Some jopt ->
    let nrows = Problem.num_rows p in
    let nlev = Problem.num_levels p in
    let single_bb = Solution.uniform p jopt in
    let single_bb_leakage_nw = Solution.leakage_nw p single_bb in
    (* Flipped whenever the budget truncates a loop. Every intermediate
       state of the descent/cover machinery is feasible, so a truncated
       run still returns a valid (merely less optimized) assignment. *)
    let complete = ref true in
    let finish levels =
      let leakage_nw = Solution.leakage_nw p levels in
      Some
        {
          jopt;
          levels;
          clusters = Solution.cluster_count levels;
          leakage_nw;
          single_bb_leakage_nw;
          savings_pct =
            Fbb_util.Stats.ratio_pct single_bb_leakage_nw leakage_nw;
          complete = !complete;
        }
    in
    if jopt = 0 then finish single_bb
    else begin
      Fbb_obs.Span.with_ ~name:"heuristic.pass_two" @@ fun () ->
      let ct = criticality p in
      let ranked = Array.init nrows (fun i -> i) in
      (* increasing criticality: least critical first *)
      Array.sort
        (fun a b ->
          match Float.compare ct.(a) ct.(b) with
          | 0 -> Int.compare a b
          | c -> c)
        ranked;
      (* Descent pass (the paper's PassTwo): repeatedly move the
         least-critical rows one level down; a row whose move breaks
         timing is reverted and locked as part of the cluster at its
         current level. *)
      let descend init =
        Fbb_obs.Counter.incr descents_c;
        let checker = Solution.Checker.create p init in
        let locked = Array.make nrows false in
        let running = ref true in
        while !running do
          (* One budget tick per descent round - sequential, so a work
             budget truncates at the same round on every run. *)
          if not (Fbb_util.Budget.tick budget) then begin
            complete := false;
            running := false
          end
          else begin
          let moved = ref false in
          Array.iter
            (fun r ->
              if not locked.(r) then begin
                let cur = Solution.Checker.level checker ~row:r in
                if cur = 0 then locked.(r) <- true
                else begin
                  Solution.Checker.set checker ~row:r ~level:(cur - 1);
                  if Solution.Checker.feasible checker then begin
                    Fbb_obs.Counter.incr moves_c;
                    moved := true
                  end
                  else begin
                    Solution.Checker.set checker ~row:r ~level:cur;
                    locked.(r) <- true
                  end
                end
              end)
            ranked;
          if not !moved then running := false
          end
        done;
        (Solution.Checker.levels checker, Solution.Checker.leakage_nw checker)
      in
      (* Covering pass (the dual greedy): everyone at NBB, then raise rows
         to [level] in decreasing criticality until timing is met. *)
      let cover level =
        Fbb_obs.Counter.incr covers_c;
        let checker = Solution.Checker.create p (Solution.uniform p 0) in
        let k = ref (nrows - 1) in
        while (not (Solution.Checker.feasible checker)) && !k >= 0 do
          Solution.Checker.set checker ~row:ranked.(!k) ~level;
          decr k
        done;
        if Solution.Checker.feasible checker then
          Some (Solution.Checker.levels checker)
        else None
      in
      (* Budget enforcement: merge the adjacent cluster pair whose merge
         (raising the lower cluster, which can only help timing) costs the
         least leakage, until at most C levels remain. *)
      let merge_cost levels lo hi =
        let acc = ref 0.0 in
        Array.iteri
          (fun r l ->
            if l = lo then
              acc :=
                !acc
                +. Problem.row_leakage p ~row:r ~level:hi
                -. Problem.row_leakage p ~row:r ~level:lo)
          levels;
        !acc
      in
      (* [leak] rides along as a running total: a merge's leakage delta
         is exactly [merge_cost], so the budget loop never re-walks the
         rows to reprice a candidate. *)
      let rec shrink (levels, leak) =
        let used = Solution.clusters_used levels in
        if List.length used <= max_clusters then (levels, leak)
        else begin
          let rec adj = function
            | a :: (b :: _ as rest) -> (a, b) :: adj rest
            | [ _ ] | [] -> []
          in
          let best_pair =
            List.fold_left
              (fun acc (lo, hi) ->
                let c = merge_cost levels lo hi in
                match acc with
                | Some (_, _, c') when c' <= c -> acc
                | Some _ | None -> Some (lo, hi, c))
              None (adj used)
          in
          match best_pair with
          | None -> (levels, leak)
          | Some (lo, hi, c) ->
            shrink
              (Array.map (fun l -> if l = lo then hi else l) levels, leak +. c)
        end
      in
      (* Candidates: descents from every feasible uniform start (PassOne's
         jopt sits exactly at the feasibility edge, where the quantization
         margin can be too thin for any row to drop), and descents from
         every covering solution (which leave non-critical rows at NBB
         outright). Keep the cheapest after budget enforcement. *)
      let best = ref None in
      let consider candidate =
        Fbb_obs.Counter.incr candidates_c;
        let levels, leak = shrink candidate in
        match !best with
        | Some (_, b) when b <= leak -> ()
        | Some _ | None -> best := Some (levels, leak)
      in
      for start = jopt to nlev - 1 do
        if Fbb_util.Budget.ok budget then
          consider (descend (Solution.uniform p start))
        else complete := false
      done;
      for level = jopt to nlev - 1 do
        if Fbb_util.Budget.ok budget then
          match cover level with
          | Some c -> consider (descend c)
          | None -> ()
        else complete := false
      done;
      match !best with
      | Some (levels, _) -> finish levels
      | None -> finish single_bb
    end
