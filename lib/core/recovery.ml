module Placement = Fbb_place.Placement
module Timing = Fbb_sta.Timing
module Paths = Fbb_sta.Paths
module Device = Fbb_tech.Device
module CL = Fbb_tech.Cell_library

type t = {
  placement : Placement.t;
  budget_ps : float;
  levels : float array;
  slack : float array;
  path_rows : (int * float) array array;
  row_paths : (int * float) array array;
  row_leak : float array array;
  stretch : float array;
  analysis : Timing.t;
  base_paths : Paths.path array;
  cache : Fbb_sta.Delay_cache.t;
}

let assemble ~placement ~analysis ~cache ~base_paths ~budget_ps ~levels
    ?row_leak paths =
  let nl = Placement.netlist placement in
  let lib = Fbb_netlist.Netlist.library nl in
  let device = CL.device lib in
  let nrows = Placement.num_rows placement in
  let stretch =
    Array.map (fun vbs -> Device.delay_factor device ~vbs -. 1.0) levels
  in
  let slack = Array.map (fun p -> budget_ps -. p.Paths.delay) paths in
  let path_rows =
    (* Same scratch-accumulator scheme as [Problem.assemble]: touched-row
       reset keeps this O(total path gates), identical per-row sums. *)
    let scratch = Array.make nrows 0.0 in
    let seen = Array.make nrows false in
    let touched = Array.make (max nrows 1) 0 in
    Array.map
      (fun p ->
        let k = ref 0 in
        Array.iter
          (fun g ->
            let r = Placement.row_of placement g in
            if r >= 0 then begin
              if not seen.(r) then begin
                seen.(r) <- true;
                touched.(!k) <- r;
                incr k
              end;
              scratch.(r) <- Timing.gate_delay analysis g +. scratch.(r)
            end)
          p.Paths.gates;
        let rows = Array.sub touched 0 !k in
        Array.sort Int.compare rows;
        let out = Array.map (fun r -> (r, scratch.(r))) rows in
        Array.iter
          (fun r ->
            scratch.(r) <- 0.0;
            seen.(r) <- false)
          rows;
        out)
      paths
  in
  let row_paths =
    let acc = Array.make nrows [] in
    Array.iteri
      (fun k rows ->
        Array.iter (fun (r, d) -> acc.(r) <- (k, d) :: acc.(r)) rows)
      path_rows;
    Array.map (fun l -> Array.of_list (List.rev l)) acc
  in
  (* Flat leakage: one device-model evaluation per RBB level, one
     multiply per gate (same products, same fold order as the
     [leakage_nw] walk it replaces). *)
  let row_leak =
    match row_leak with
    | Some tables -> tables
    | None ->
      let leak_f =
        Array.map (fun vbs -> Device.leakage_factor device ~vbs) levels
      in
      Array.init nrows (fun r ->
          let gates = Placement.row_gates placement r in
          Array.map
            (fun f ->
              Array.fold_left
                (fun acc g ->
                  acc +. ((Fbb_netlist.Netlist.cell nl g).CL.leak_nw *. f))
                0.0 gates)
            leak_f)
  in
  {
    placement;
    budget_ps;
    levels;
    slack;
    path_rows;
    row_paths;
    row_leak;
    stretch;
    analysis;
    base_paths;
    cache;
  }

let build ?(margin = 0.0) placement =
  if margin < 0.0 then invalid_arg "Recovery.build: negative margin";
  let cache = Fbb_sta.Delay_cache.create (Placement.netlist placement) in
  let analysis = Timing.analyze ~cache (Placement.netlist placement) in
  let budget_ps = Timing.dcrit analysis *. (1.0 +. margin) in
  let levels = Fbb_tech.Bias.rbb_levels () in
  let base_paths = Paths.through_cell analysis in
  assemble ~placement ~analysis ~cache ~base_paths ~budget_ps ~levels
    base_paths

let eps = 1e-9

let stretched_over t ~levels ~path =
  Array.fold_left
    (fun acc (r, d) -> acc +. (d *. t.stretch.(levels.(r))))
    0.0 t.path_rows.(path)

(* Early exit: called per candidate move in sign-off loops. *)
let meets_budget t levels =
  let n = Array.length t.slack in
  let rec go k =
    k >= n
    || (stretched_over t ~levels ~path:k <= t.slack.(k) +. eps && go (k + 1))
  in
  go 0

let leakage_nw t levels =
  let acc = ref 0.0 in
  Array.iteri (fun r j -> acc := !acc +. t.row_leak.(r).(j)) levels;
  !acc

(* Incremental budget checker: sigma[k] tracks each path's added delay. *)
module Checker = struct
  type c = {
    t : t;
    levels : int array;
    sigma : float array;
    mutable violations : int;
  }

  let create t levels0 =
    let levels = Array.copy levels0 in
    let sigma =
      Array.init
        (Array.length t.slack)
        (fun k -> stretched_over t ~levels ~path:k)
    in
    let violations = ref 0 in
    Array.iteri
      (fun k s -> if sigma.(k) > s +. eps then incr violations)
      t.slack;
    { t; levels; sigma; violations = !violations }

  let set c ~row ~level =
    let old_level = c.levels.(row) in
    if old_level <> level then begin
      let delta = c.t.stretch.(level) -. c.t.stretch.(old_level) in
      Array.iter
        (fun (k, d) ->
          let s = c.t.slack.(k) in
          let before = c.sigma.(k) in
          let after = before +. (d *. delta) in
          c.sigma.(k) <- after;
          let was_bad = before > s +. eps in
          let is_bad = after > s +. eps in
          if was_bad && not is_bad then c.violations <- c.violations - 1
          else if is_bad && not was_bad then c.violations <- c.violations + 1)
        c.t.row_paths.(row);
      c.levels.(row) <- level
    end

  let feasible c = c.violations = 0
  let levels c = Array.copy c.levels
end

type result = {
  levels : int array;
  clusters : int;
  nominal_leakage_nw : float;
  recovered_leakage_nw : float;
  savings_pct : float;
  signoff_clean : bool;
  iterations : int;
}

(* Criticality mirror: rows whose cells sit on tight-slack paths must stay
   near NBB; rank by the same 1/slack weighting as the FBB heuristic. *)
let criticality t =
  let nrows = Placement.num_rows t.placement in
  let ct = Array.make nrows 0.0 in
  let epsilon = Float.max 1e-6 (t.budget_ps *. 1e-3) in
  Array.iteri
    (fun k rows ->
      let weight = 1.0 /. (Float.max 0.0 t.slack.(k) +. epsilon) in
      Array.iter (fun (r, _) -> ct.(r) <- ct.(r) +. weight) rows)
    t.path_rows;
  ct

let greedy t ~max_clusters =
  let nrows = Placement.num_rows t.placement in
  let nlev = Array.length t.levels in
  let ct = criticality t in
  let ranked = Array.init nrows (fun i -> i) in
  Array.sort
    (fun a b ->
      match Float.compare ct.(a) ct.(b) with
      | 0 -> Int.compare a b
      | c -> c)
    ranked;
  (* Deepen reverse bias on the least-critical rows, one level per round,
     locking a row at its current depth once a further step breaks the
     budget. *)
  let checker = Checker.create t (Array.make nrows 0) in
  let locked = Array.make nrows false in
  let running = ref true in
  while !running do
    let moved = ref false in
    Array.iter
      (fun r ->
        if not locked.(r) then begin
          let cur = checker.Checker.levels.(r) in
          if cur >= nlev - 1 then locked.(r) <- true
          else begin
            Checker.set checker ~row:r ~level:(cur + 1);
            if Checker.feasible checker then moved := true
            else begin
              Checker.set checker ~row:r ~level:cur;
              locked.(r) <- true
            end
          end
        end)
      ranked;
    if not !moved then running := false
  done;
  let levels = Checker.levels checker in
  (* Merge down to the cluster budget: lowering a row's RBB depth (towards
     NBB) can only relax timing, so merge the adjacent used-level pair
     whose merge-to-the-shallower-level wastes the least recovery. *)
  let rec shrink levels =
    let used = Solution.clusters_used levels in
    if List.length used <= max_clusters then levels
    else begin
      let rec adj = function
        | a :: (b :: _ as rest) -> (a, b) :: adj rest
        | [ _ ] | [] -> []
      in
      (* used is ascending; merging (shallow, deep) moves deep rows to the
         shallow level. *)
      let cost lo hi =
        let acc = ref 0.0 in
        Array.iteri
          (fun r l ->
            if l = hi then
              acc := !acc +. t.row_leak.(r).(lo) -. t.row_leak.(r).(hi))
          levels;
        !acc
      in
      let best =
        List.fold_left
          (fun acc (lo, hi) ->
            let c = cost lo hi in
            match acc with
            | Some (_, _, c') when c' <= c -> acc
            | Some _ | None -> Some (lo, hi, c))
          None (adj used)
      in
      match best with
      | None -> levels
      | Some (lo, hi, _) ->
        shrink (Array.map (fun l -> if l = hi then lo else l) levels)
    end
  in
  shrink levels

(* Same screen as [Refine]: the biased dcrit is the maximum through-cell
   path delay, so a within-budget dcrit means no offenders without
   extracting anything. *)
let offenders_of t biased =
  if Timing.dcrit biased <= t.budget_ps +. 1e-6 then [||]
  else
    Paths.through_cell biased
    |> Array.to_list
    |> List.filter (fun p -> p.Paths.delay > t.budget_ps +. 1e-6)
    |> Array.of_list

let row_bias t levels g =
  let r = Placement.row_of t.placement g in
  if r < 0 then 0.0 else t.levels.(levels.(r))

let signoff t levels =
  let biased =
    Timing.analyze ~cache:t.cache ~bias:(row_bias t levels)
      (Placement.netlist t.placement)
  in
  let offenders = offenders_of t biased in
  (Array.length offenders = 0, offenders)

(* Sign-off through a reused incremental context: only the rows whose
   level changed since the previous candidate re-propagate. *)
let signoff_incr ctx t levels =
  let biased = Timing.Incremental.set_bias ctx (row_bias t levels) in
  let offenders = offenders_of t biased in
  (Array.length offenders = 0, offenders)

let optimize ?(max_clusters = 2) ?(max_iterations = 8) t0 =
  let nrows = Placement.num_rows t0.placement in
  let nominal = leakage_nw t0 (Array.make nrows 0) in
  let analysis = t0.analysis in
  let base = t0.base_paths in
  let ctx =
    Timing.Incremental.create ~cache:t0.cache
      (Placement.netlist t0.placement)
  in
  (* Refinement: the constraint set holds per-cell longest paths of the
     NBB netlist; under non-uniform stretching another path can become the
     budget-breaker. Fold signoff offenders back in (accumulating across
     iterations) and retry. *)
  let extras : (Fbb_netlist.Netlist.id array, Paths.path) Hashtbl.t =
    Hashtbl.create 64
  in
  Array.iter (fun p -> Hashtbl.replace extras p.Paths.gates p) base;
  let rec loop t iterations =
    let levels = greedy t ~max_clusters in
    let clean, offenders = signoff_incr ctx t levels in
    if clean || iterations + 1 >= max_iterations then
      (levels, clean, iterations + 1)
    else begin
      let added = ref false in
      Array.iter
        (fun p ->
          if not (Hashtbl.mem extras p.Paths.gates) then begin
            added := true;
            Hashtbl.replace extras p.Paths.gates
              {
                Paths.gates = p.Paths.gates;
                delay = Paths.delay_of analysis p.Paths.gates;
              }
          end)
        offenders;
      if not !added then (levels, clean, iterations + 1)
      else begin
        let union =
          Hashtbl.fold (fun _ p acc -> p :: acc) extras [] |> Array.of_list
        in
        let t' =
          assemble ~placement:t.placement ~analysis ~cache:t0.cache
            ~base_paths:base ~budget_ps:t.budget_ps ~levels:t.levels
            ~row_leak:t0.row_leak union
        in
        loop t' (iterations + 1)
      end
    end
  in
  let levels, clean, iterations = loop t0 0 in
  let recovered = leakage_nw t0 levels in
  {
    levels;
    clusters = Solution.cluster_count levels;
    nominal_leakage_nw = nominal;
    recovered_leakage_nw = recovered;
    savings_pct = Fbb_util.Stats.ratio_pct nominal recovered;
    signoff_clean = clean;
    iterations;
  }
