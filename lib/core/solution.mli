(** Row-to-level assignments and the CheckTiming routine.

    A solution is an int array giving every row its bias level. The
    {!Checker} maintains per-path achieved reductions incrementally so
    that the heuristic's inner loop costs O(paths touching the moved row)
    per move instead of a full O(N x M) re-evaluation. *)

val uniform : Problem.t -> int -> int array
(** Every row at the same level. *)

val meets_timing : Problem.t -> int array -> bool
(** The paper's CheckTiming: every path's achieved reduction covers its
    required reduction. *)

val leakage_nw : Problem.t -> int array -> float

val clusters_used : int array -> int list
(** Distinct levels present, ascending. *)

val cluster_count : int array -> int

val savings_pct : Problem.t -> baseline:int array -> int array -> float
(** Leakage saving of a solution relative to a baseline assignment, in
    percent. *)

val worst_margin : Problem.t -> int array -> float
(** Smallest [achieved - required] over all paths (ps); non-negative iff
    timing is met. [infinity] when there are no constraints. *)

(** Incremental timing checker. *)
module Checker : sig
  type t

  val create : Problem.t -> int array -> t
  (** Snapshot of an assignment; the array is copied. *)

  val set : t -> row:int -> level:int -> unit
  val level : t -> row:int -> int
  val levels : t -> int array
  (** Current assignment (copy). *)

  val feasible : t -> bool
  (** O(1). *)

  val violation_count : t -> int

  val leakage_nw : t -> float
  (** Total leakage of the current assignment, maintained as a running
      sum of per-move row deltas — O(1) to read. Floating-point
      accumulation order differs from a fresh {!Solution.leakage_nw}, so
      the two can disagree in the last bits; recompute from scratch when
      reporting a final answer. *)
end
