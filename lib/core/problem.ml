module Placement = Fbb_place.Placement
module Timing = Fbb_sta.Timing
module Paths = Fbb_sta.Paths
module Device = Fbb_tech.Device
module CL = Fbb_tech.Cell_library

type t = {
  placement : Placement.t;
  analysis : Timing.t;
  beta : float;
  dcrit : float;
  levels : float array;
  reduction : float array;
  row_leak : float array array;
  paths : Paths.path array;
  required : float array;
  path_rows : (int * float) array array;
  row_paths : (int * float) array array;
  nominal_slack : float array;
}

let num_rows t = Placement.num_rows t.placement
let num_levels t = Array.length t.levels
let num_paths t = Array.length t.paths

(* All per-path tables are derived from the nominal analysis: a path's
   degraded delay is its nominal delay times (1 + beta), and forward bias
   scales every gate delay by the same level-dependent factor. *)
let assemble ~placement ~analysis ~beta ~levels paths =
  let nl = Placement.netlist placement in
  let lib = Fbb_netlist.Netlist.library nl in
  let device = CL.device lib in
  let dcrit = Timing.dcrit analysis in
  let nrows = Placement.num_rows placement in
  let reduction =
    Array.map (fun vbs -> 1.0 -. Device.delay_factor device ~vbs) levels
  in
  let row_leak =
    Array.init nrows (fun r ->
        let gates = Placement.row_gates placement r in
        Array.map
          (fun vbs ->
            Array.fold_left
              (fun acc g ->
                acc +. CL.leakage_nw lib (Fbb_netlist.Netlist.cell nl g) ~vbs)
              0.0 gates)
          levels)
  in
  let required =
    Array.map (fun p -> (p.Paths.delay *. (1.0 +. beta)) -. dcrit) paths
  in
  let nominal_slack = Array.map (fun p -> dcrit -. p.Paths.delay) paths in
  let path_rows =
    Array.map
      (fun p ->
        let per_row = Hashtbl.create 16 in
        Array.iter
          (fun g ->
            let r = Placement.row_of placement g in
            if r >= 0 then begin
              let d = Timing.gate_delay analysis g *. (1.0 +. beta) in
              Hashtbl.replace per_row r
                (d +. Option.value ~default:0.0 (Hashtbl.find_opt per_row r))
            end)
          p.Paths.gates;
        Hashtbl.fold (fun r d acc -> (r, d) :: acc) per_row []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
        |> Array.of_list)
      paths
  in
  let row_paths =
    let acc = Array.make nrows [] in
    Array.iteri
      (fun k rows ->
        Array.iter (fun (r, d) -> acc.(r) <- (k, d) :: acc.(r)) rows)
      path_rows;
    Array.map (fun l -> Array.of_list (List.rev l)) acc
  in
  {
    placement;
    analysis;
    beta;
    dcrit;
    levels;
    reduction;
    row_leak;
    paths;
    required;
    path_rows;
    row_paths;
    nominal_slack;
  }

let build ?levels ~beta placement =
  let levels =
    match levels with Some l -> l | None -> Fbb_tech.Bias.levels ()
  in
  if Array.length levels = 0 || levels.(0) <> 0.0 then
    invalid_arg "Problem.build: levels must start at 0 (no body bias)";
  let analysis = Timing.analyze (Placement.netlist placement) in
  let paths = Paths.violating analysis ~beta in
  assemble ~placement ~analysis ~beta ~levels paths

let extend t extra =
  let seen = Hashtbl.create (Array.length t.paths * 2) in
  Array.iter (fun p -> Hashtbl.replace seen p.Paths.gates ()) t.paths;
  let fresh =
    Array.to_list extra
    |> List.filter_map (fun p ->
           if Hashtbl.mem seen p.Paths.gates then None
           else begin
             Hashtbl.replace seen p.Paths.gates ();
             (* Recompute the delay under the nominal analysis: callers may
                hand us paths measured under bias. *)
             let delay = Paths.delay_of t.analysis p.Paths.gates in
             if delay *. (1.0 +. t.beta) > t.dcrit +. 1e-9 then
               Some { Paths.gates = p.Paths.gates; delay }
             else None
           end)
  in
  if fresh = [] then t
  else
    assemble ~placement:t.placement ~analysis:t.analysis ~beta:t.beta
      ~levels:t.levels
      (Array.append t.paths (Array.of_list fresh))

let coefficient t ~path ~row ~level =
  let rows = t.path_rows.(path) in
  let rec find lo hi =
    if lo > hi then 0.0
    else
      let mid = (lo + hi) / 2 in
      let r, d = rows.(mid) in
      if r = row then d *. t.reduction.(level)
      else if r < row then find (mid + 1) hi
      else find lo (mid - 1)
  in
  find 0 (Array.length rows - 1)

let achieved t ~levels ~path =
  Array.fold_left
    (fun acc (r, d) -> acc +. (d *. t.reduction.(levels.(r))))
    0.0 t.path_rows.(path)

let timing_eps = 1e-9

let max_single_level t =
  let nrows = num_rows t in
  let feasible j =
    let levels = Array.make nrows j in
    let ok = ref true in
    Array.iteri
      (fun k req ->
        if achieved t ~levels ~path:k < req -. timing_eps then ok := false)
      t.required;
    !ok
  in
  let rec search j =
    if j >= num_levels t then None
    else if feasible j then Some j
    else search (j + 1)
  in
  search 0

let row_leakage t ~row ~level = t.row_leak.(row).(level)

let total_leakage t ~levels =
  let acc = ref 0.0 in
  Array.iteri (fun r j -> acc := !acc +. t.row_leak.(r).(j)) levels;
  !acc

let pp_summary fmt t =
  Format.fprintf fmt
    "beta=%.0f%% dcrit=%.1fps rows=%d levels=%d constraints=%d"
    (t.beta *. 100.0) t.dcrit (num_rows t) (num_levels t) (num_paths t)
