module Placement = Fbb_place.Placement
module Timing = Fbb_sta.Timing
module Paths = Fbb_sta.Paths
module Device = Fbb_tech.Device
module CL = Fbb_tech.Cell_library

type rowvec = { idx : int array; coef : float array }

type t = {
  placement : Placement.t;
  analysis : Timing.t;
  beta : float;
  dcrit : float;
  levels : float array;
  reduction : float array;
  row_leak : float array array;
  paths : Paths.path array;
  required : float array;
  path_rows : rowvec array;
  row_paths : rowvec array;
  nominal_slack : float array;
  cache : Fbb_sta.Delay_cache.t option;
}

let num_rows t = Placement.num_rows t.placement
let num_levels t = Array.length t.levels
let num_paths t = Array.length t.paths

(* Per-(row, level) leakage tables: one device-model evaluation per
   level, then a multiply per gate ([leakage_nw] is
   [leak_nw * leakage_factor], so the fold adds the same products in the
   same order as the per-gate walk it replaces). Die-independent, so
   repeated-build loops compute them once and pass them back in. *)
let leak_tables placement ~levels =
  let nl = Placement.netlist placement in
  let lib = Fbb_netlist.Netlist.library nl in
  let device = CL.device lib in
  let leak_f =
    Array.map (fun vbs -> Device.leakage_factor device ~vbs) levels
  in
  Array.init (Placement.num_rows placement) (fun r ->
      let gates = Placement.row_gates placement r in
      Array.map
        (fun f ->
          Array.fold_left
            (fun acc g ->
              acc +. ((Fbb_netlist.Netlist.cell nl g).CL.leak_nw *. f))
            0.0 gates)
        leak_f)

(* All per-path tables are derived from the nominal analysis: a path's
   degraded delay is its nominal delay times (1 + beta), and forward bias
   scales every gate delay by the same level-dependent factor. *)
let assemble ~placement ~analysis ~cache ~row_leak ~beta ~levels paths =
  let lib = Fbb_netlist.Netlist.library (Placement.netlist placement) in
  let device = CL.device lib in
  let dcrit = Timing.dcrit analysis in
  let nrows = Placement.num_rows placement in
  let reduction =
    Array.map (fun vbs -> 1.0 -. Device.delay_factor device ~vbs) levels
  in
  let row_leak =
    match row_leak with
    | Some tables -> tables
    | None -> leak_tables placement ~levels
  in
  let required =
    Array.map (fun p -> (p.Paths.delay *. (1.0 +. beta)) -. dcrit) paths
  in
  let nominal_slack = Array.map (fun p -> dcrit -. p.Paths.delay) paths in
  let path_rows =
    (* Scratch per-row accumulators reused across paths: resetting only
       the touched rows keeps assembly O(total path gates) with no
       hashtable traffic. Per-row sums add the same terms in the same
       order as the hashtable walk this replaces. *)
    let scratch = Array.make nrows 0.0 in
    let seen = Array.make nrows false in
    let touched = Array.make (max nrows 1) 0 in
    Array.map
      (fun p ->
        let k = ref 0 in
        Array.iter
          (fun g ->
            let r = Placement.row_of placement g in
            if r >= 0 then begin
              let d = Timing.gate_delay analysis g *. (1.0 +. beta) in
              if not seen.(r) then begin
                seen.(r) <- true;
                touched.(!k) <- r;
                incr k
              end;
              scratch.(r) <- d +. scratch.(r)
            end)
          p.Paths.gates;
        let rows = Array.sub touched 0 !k in
        Array.sort Int.compare rows;
        let coef = Array.map (fun r -> scratch.(r)) rows in
        Array.iter
          (fun r ->
            scratch.(r) <- 0.0;
            seen.(r) <- false)
          rows;
        { idx = rows; coef })
      paths
  in
  let row_paths =
    (* Transpose in two passes (count, then fill) so each row lands in
       exactly-sized parallel arrays; per-row path order is ascending
       [k], same as the list-append transpose it replaces. *)
    let counts = Array.make nrows 0 in
    Array.iter
      (fun rv -> Array.iter (fun r -> counts.(r) <- counts.(r) + 1) rv.idx)
      path_rows;
    let out =
      Array.init nrows (fun r ->
          { idx = Array.make counts.(r) 0; coef = Array.make counts.(r) 0.0 })
    in
    let fill = Array.make nrows 0 in
    Array.iteri
      (fun k rv ->
        Array.iteri
          (fun i r ->
            let o = out.(r) in
            o.idx.(fill.(r)) <- k;
            o.coef.(fill.(r)) <- rv.coef.(i);
            fill.(r) <- fill.(r) + 1)
          rv.idx)
      path_rows;
    out
  in
  {
    placement;
    analysis;
    beta;
    dcrit;
    levels;
    reduction;
    row_leak;
    paths;
    required;
    path_rows;
    row_paths;
    nominal_slack;
    cache;
  }

let build ?cache ?analysis ?paths ?row_leak ?levels ~beta placement =
  Fbb_obs.Span.with_ ~name:"problem.build" @@ fun () ->
  let levels =
    match levels with Some l -> l | None -> Fbb_tech.Bias.levels ()
  in
  if Array.length levels = 0 || levels.(0) <> 0.0 then
    invalid_arg "Problem.build: levels must start at 0 (no body bias)";
  let nl = Placement.netlist placement in
  (match cache with
  | Some c when not (Fbb_sta.Delay_cache.netlist c == nl) ->
    invalid_arg "Problem.build: delay cache is for a different netlist"
  | Some _ | None -> ());
  let analysis =
    match analysis with
    | Some a ->
      if not (Timing.netlist a == nl) then
        invalid_arg "Problem.build: analysis is for a different netlist";
      a
    | None -> Timing.analyze ?cache nl
  in
  let paths =
    match paths with
    | Some through ->
      Paths.violating_from through ~dcrit:(Timing.dcrit analysis) ~beta
    | None -> Paths.violating analysis ~beta
  in
  assemble ~placement ~analysis ~cache ~row_leak ~beta ~levels paths

let extend t extra =
  let seen = Hashtbl.create (Array.length t.paths * 2) in
  Array.iter (fun p -> Hashtbl.replace seen p.Paths.gates ()) t.paths;
  let fresh =
    Array.to_list extra
    |> List.filter_map (fun p ->
           if Hashtbl.mem seen p.Paths.gates then None
           else begin
             Hashtbl.replace seen p.Paths.gates ();
             (* Recompute the delay under the nominal analysis: callers may
                hand us paths measured under bias. *)
             let delay = Paths.delay_of t.analysis p.Paths.gates in
             if delay *. (1.0 +. t.beta) > t.dcrit +. 1e-9 then
               Some { Paths.gates = p.Paths.gates; delay }
             else None
           end)
  in
  if fresh = [] then t
  else
    assemble ~placement:t.placement ~analysis:t.analysis ~cache:t.cache
      ~row_leak:(Some t.row_leak) ~beta:t.beta ~levels:t.levels
      (Array.append t.paths (Array.of_list fresh))

let coefficient t ~path ~row ~level =
  let rows = t.path_rows.(path) in
  let rec find lo hi =
    if lo > hi then 0.0
    else
      let mid = (lo + hi) / 2 in
      let r = rows.idx.(mid) in
      if r = row then rows.coef.(mid) *. t.reduction.(level)
      else if r < row then find (mid + 1) hi
      else find lo (mid - 1)
  in
  find 0 (Array.length rows.idx - 1)

let achieved t ~levels ~path =
  let rows = t.path_rows.(path) in
  let acc = ref 0.0 in
  for i = 0 to Array.length rows.idx - 1 do
    acc := !acc +. (rows.coef.(i) *. t.reduction.(levels.(rows.idx.(i))))
  done;
  !acc

let timing_eps = 1e-9

let max_single_level t =
  let nrows = num_rows t in
  let feasible j =
    let levels = Array.make nrows j in
    let npaths = num_paths t in
    let rec go k =
      k >= npaths
      || (achieved t ~levels ~path:k >= t.required.(k) -. timing_eps
         && go (k + 1))
    in
    go 0
  in
  let rec search j =
    if j >= num_levels t then None
    else if feasible j then Some j
    else search (j + 1)
  in
  search 0

let row_leakage t ~row ~level = t.row_leak.(row).(level)

let total_leakage t ~levels =
  let acc = ref 0.0 in
  Array.iteri (fun r j -> acc := !acc +. t.row_leak.(r).(j)) levels;
  !acc

let pp_summary fmt t =
  Format.fprintf fmt
    "beta=%.0f%% dcrit=%.1fps rows=%d levels=%d constraints=%d"
    (t.beta *. 100.0) t.dcrit (num_rows t) (num_levels t) (num_paths t)
