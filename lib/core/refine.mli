(** Signoff-driven constraint refinement.

    The constraint set Pi holds only each cell's single longest path
    (section 4.1 / [11]); once the optimizer biases rows unevenly, a
    violating path that was not the longest through any of its cells can
    become critical. The classical remedy is the loop implemented here:
    solve, re-time the placed netlist with the bias applied (full STA, no
    path abstraction), fold any still-violating paths back into Pi, and
    re-solve, until signoff is clean or the iteration cap is hit.

    Both the heuristic and the exact solver converge within a couple of
    iterations on the benchmark suite (see the refinement tests). *)

type outcome = {
  problem : Problem.t;  (** final, possibly extended problem *)
  levels : int array;
  iterations : int;  (** solver invocations (>= 1) *)
  added_constraints : int;  (** paths folded in by the loop *)
  signoff_clean : bool;
}

val signoff :
  Problem.t -> levels:int array -> bool * Fbb_sta.Paths.path array
(** Re-time the placed netlist under the degraded conditions with the
    per-row bias applied, against the nominal critical delay. Returns
    whether the budget is met, and the per-cell longest paths that still
    exceed it (measured under the bias). *)

val solve :
  ?max_iterations:int ->
  solver:(Problem.t -> int array option) ->
  Problem.t ->
  outcome option
(** Generic refinement loop ([max_iterations] defaults to 10); [None] when
    the solver itself returns [None] on the initial problem. *)

val heuristic :
  ?max_clusters:int -> ?max_iterations:int -> Problem.t -> outcome option
(** {!solve} around {!Heuristic.optimize}. *)
