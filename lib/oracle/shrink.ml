type progress = { steps : int; attempts : int }

let attempts_c = Fbb_obs.Counter.make "shrink.attempts"
let accepted_c = Fbb_obs.Counter.make "shrink.accepted"

let build_failure_only failures =
  failures <> []
  && List.for_all
       (fun m -> String.length m >= 6 && String.sub m 0 6 = "build:")
       failures

(* Candidate moves, biggest reductions first. Each returns a hopefully
   smaller case or None when the dimension is exhausted. *)
let moves =
  [
    (fun (c : Case.t) ->
      if c.Case.gates / 2 >= 16 then Some { c with Case.gates = c.Case.gates / 2 }
      else None);
    (fun c ->
      let g = c.Case.gates * 3 / 4 in
      if g >= 16 && g < c.Case.gates then Some { c with Case.gates = g }
      else None);
    (fun c ->
      if c.Case.rows > 2 then Some { c with Case.rows = c.Case.rows - 1 }
      else None);
    (fun c ->
      match c.Case.max_paths with
      | None -> Some { c with Case.max_paths = Some 16 }
      | Some n when n > 1 -> Some { c with Case.max_paths = Some (n / 2) }
      | Some _ -> None);
    (fun c ->
      (* stay within stride 5: 11 levels at stride 5 still leave
         {0, 0.25V, 0.5V}, a meaningful 3-level problem *)
      if c.Case.level_stride < 5 then
        Some { c with Case.level_stride = min 5 (c.Case.level_stride * 2) }
      else None);
    (fun c ->
      if c.Case.max_clusters > 1 then
        Some { c with Case.max_clusters = c.Case.max_clusters - 1 }
      else None);
  ]

let minimize ?(max_attempts = 200) ~run case =
  Fbb_obs.Span.with_ ~name:"shrink.minimize" @@ fun () ->
  if run case = [] then (case, { steps = 0; attempts = 1 })
  else begin
    let attempts = ref 1 and steps = ref 0 in
    let rec fixpoint current =
      let rec try_moves = function
        | [] -> current
        | move :: rest -> (
          match move current with
          | None -> try_moves rest
          | Some candidate when candidate = current -> try_moves rest
          | Some candidate ->
            if !attempts >= max_attempts then current
            else begin
              incr attempts;
              Fbb_obs.Counter.incr attempts_c;
              let failures = run candidate in
              if failures <> [] && not (build_failure_only failures) then begin
                incr steps;
                Fbb_obs.Counter.incr accepted_c;
                fixpoint candidate
              end
              else try_moves rest
            end)
      in
      try_moves moves
    in
    let minimized = fixpoint case in
    (minimized, { steps = !steps; attempts = !attempts })
  end
