module Problem = Fbb_core.Problem

type optimum = { levels : int array; leakage_nw : float }
type verdict = Optimal of optimum | Infeasible

type bounded = Done of verdict | Out_of_budget of optimum option

exception Budget_stop

let default_max_rows = 8
let default_max_leaves = 2_000_000

let leaves_c = Fbb_obs.Counter.make "oracle.leaves"
let solves_c = Fbb_obs.Counter.make "oracle.solves"

(* sum_{s=1..C} (P choose s) * s^rows, saturating so huge instances do
   not overflow into "tractable". *)
let leaf_estimate ~num_levels ~num_rows ~max_clusters =
  let sat_mul a b =
    if a > 0 && b > max_int / a then max_int else a * b
  in
  (* product form (n-k+i)/i keeps every intermediate integral *)
  let choose n k =
    let rec go acc i = if i > k then acc else go (acc * (n - k + i) / i) (i + 1) in
    go 1 1
  in
  let total = ref 0 in
  for s = 1 to min max_clusters num_levels do
    let pow = ref 1 in
    for _ = 1 to num_rows do
      pow := sat_mul !pow s
    done;
    let t = sat_mul (choose num_levels s) !pow in
    total := if !total > max_int - t then max_int else !total + t
  done;
  !total

let tractable ?(max_rows = default_max_rows) ?(max_leaves = default_max_leaves)
    ~max_clusters p =
  Problem.num_rows p <= max_rows
  && leaf_estimate ~num_levels:(Problem.num_levels p)
       ~num_rows:(Problem.num_rows p) ~max_clusters
     <= max_leaves

(* Feasibility and leakage are deliberately recomputed with the plainest
   possible loops over the problem tables — no Checker, no incremental
   sigma — so a bug in the production fast paths cannot hide here. *)
let feasible p assignment =
  let ok = ref true in
  let m = Problem.num_paths p in
  let k = ref 0 in
  while !ok && !k < m do
    let achieved = ref 0.0 in
    let rv = p.Problem.path_rows.(!k) in
    for i = 0 to Array.length rv.Problem.idx - 1 do
      achieved :=
        !achieved
        +. rv.Problem.coef.(i)
           *. p.Problem.reduction.(assignment.(rv.Problem.idx.(i)))
    done;
    if !achieved < p.Problem.required.(!k) -. 1e-9 then ok := false;
    incr k
  done;
  !ok

let leakage p assignment =
  let acc = ref 0.0 in
  Array.iteri
    (fun r j -> acc := !acc +. p.Problem.row_leak.(r).(j))
    assignment;
  !acc

let solve_impl ~budget ~max_rows ~max_leaves ~max_clusters p =
  if max_clusters < 1 then invalid_arg "Oracle.solve: C must be >= 1";
  if not (tractable ~max_rows ~max_leaves ~max_clusters p) then
    invalid_arg "Oracle.solve: instance exceeds the brute-force bounds";
  Fbb_obs.Counter.incr solves_c;
  Fbb_obs.Span.with_ ~name:"oracle.solve" @@ fun () ->
  let nrows = Problem.num_rows p in
  let nlev = Problem.num_levels p in
  let best = ref None in
  let consider assignment =
    Fbb_obs.Counter.incr leaves_c;
    (* One tick per leaf in this strictly sequential walk, so a work
       budget always stops at the same leaf. *)
    if not (Fbb_util.Budget.tick budget) then raise Budget_stop;
    (* Safe pruning: leakage is a level-independent sum, so comparing it
       before the feasibility walk cannot change which assignments are
       optimal — equal-leakage ties still go to the first one visited. *)
    let leak = leakage p assignment in
    let beats = match !best with None -> true | Some (_, b) -> leak < b in
    if beats && feasible p assignment then
      best := Some (Array.copy assignment, leak)
  in
  (* All ascending subsets of size s starting from [start]. *)
  let rec subsets start s prefix =
    if s = 0 then enumerate (Array.of_list (List.rev prefix))
    else
      for j = start to nlev - s do
        subsets (j + 1) (s - 1) (j :: prefix)
      done
  (* All assignments of rows to the subset's members, odometer order. *)
  and enumerate subset =
    let ns = Array.length subset in
    let digits = Array.make nrows 0 in
    let assignment = Array.make nrows subset.(0) in
    let continue_ = ref true in
    while !continue_ do
      for r = 0 to nrows - 1 do
        assignment.(r) <- subset.(digits.(r))
      done;
      consider assignment;
      (* increment the odometer *)
      let r = ref (nrows - 1) in
      while !r >= 0 && digits.(!r) = ns - 1 do
        digits.(!r) <- 0;
        decr r
      done;
      if !r < 0 then continue_ := false else digits.(!r) <- digits.(!r) + 1
    done
  in
  let truncated =
    try
      for s = 1 to min max_clusters nlev do
        subsets 0 s []
      done;
      false
    with Budget_stop -> true
  in
  let incumbent =
    Option.map (fun (levels, leakage_nw) -> { levels; leakage_nw }) !best
  in
  if truncated then Out_of_budget incumbent
  else
    match incumbent with
    | Some opt -> Done (Optimal opt)
    | None -> Done Infeasible

let solve ?(max_rows = default_max_rows) ?(max_leaves = default_max_leaves)
    ?(max_clusters = 2) p =
  match
    solve_impl ~budget:Fbb_util.Budget.unlimited ~max_rows ~max_leaves
      ~max_clusters p
  with
  | Done v -> v
  | Out_of_budget _ -> assert false (* unlimited budgets never trip *)

let solve_bounded ?(max_rows = default_max_rows)
    ?(max_leaves = default_max_leaves) ?(max_clusters = 2) ~budget p =
  solve_impl ~budget ~max_rows ~max_leaves ~max_clusters p
