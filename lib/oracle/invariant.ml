module Problem = Fbb_core.Problem
module Placement = Fbb_place.Placement
module Timing = Fbb_sta.Timing
module Paths = Fbb_sta.Paths
module CL = Fbb_tech.Cell_library
module Device = Fbb_tech.Device

(* Relative comparisons for recomputed leakage: accumulation order
   differs between the table path and the per-gate path, so demand
   agreement to ~1e-9 of the magnitude rather than absolutely. *)
let close a b =
  Float.abs (a -. b)
  <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let check ?(max_clusters = 2) ?reported_leakage_nw p ~levels =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let nrows = Problem.num_rows p in
  let nlev = Problem.num_levels p in
  if Array.length levels <> nrows then
    fail "assignment has %d rows, problem has %d" (Array.length levels) nrows
  else begin
    Array.iteri
      (fun r j ->
        if j < 0 || j >= nlev then fail "row %d level %d out of range" r j)
      levels;
    if !failures = [] then begin
      let clusters = Fbb_core.Solution.cluster_count levels in
      if clusters > max_clusters then
        fail "%d clusters used, budget is %d" clusters max_clusters;
      (* Timing, re-derived from the nominal analysis: for each constraint
         path, sum each gate's degraded delay into its row, then apply the
         device's level speed-up directly. *)
      let placement = p.Problem.placement in
      let analysis = p.Problem.analysis in
      let nl = Placement.netlist placement in
      let lib = Fbb_netlist.Netlist.library nl in
      let device = CL.device lib in
      let reduction_of j =
        1.0 -. Device.delay_factor device ~vbs:p.Problem.levels.(j)
      in
      let reduction = Array.init nlev reduction_of in
      Array.iteri
        (fun k path ->
          let achieved = ref 0.0 in
          Array.iter
            (fun g ->
              let r = Placement.row_of placement g in
              if r >= 0 then
                achieved :=
                  !achieved
                  +. Timing.gate_delay analysis g
                     *. (1.0 +. p.Problem.beta)
                     *. reduction.(levels.(r)))
            path.Paths.gates;
          let required =
            (path.Paths.delay *. (1.0 +. p.Problem.beta)) -. p.Problem.dcrit
          in
          if !achieved < required -. 1e-6 then
            fail
              "path %d: independent achieved reduction %.6f ps < required \
               %.6f ps"
              k !achieved required)
        p.Problem.paths;
      (* Leakage, re-summed gate by gate from the cell library. *)
      let direct = ref 0.0 in
      Array.iter
        (fun g ->
          let r = Placement.row_of placement g in
          if r >= 0 then
            direct :=
              !direct
              +. CL.leakage_nw lib
                   (Fbb_netlist.Netlist.cell nl g)
                   ~vbs:p.Problem.levels.(levels.(r)))
        (Fbb_netlist.Netlist.gates nl);
      let table = Fbb_core.Solution.leakage_nw p levels in
      if not (close !direct table) then
        fail "leakage mismatch: per-gate %.9f nW vs table %.9f nW" !direct
          table;
      Option.iter
        (fun claimed ->
          if not (close !direct claimed) then
            fail "solver-reported leakage %.9f nW, independent sum %.9f nW"
              claimed !direct)
        reported_leakage_nw
    end
  end;
  List.rev !failures

let signoff p ~levels =
  let placement = p.Problem.placement in
  let nl = Placement.netlist placement in
  let beta = p.Problem.beta in
  let bias g =
    let r = Placement.row_of placement g in
    if r < 0 then 0.0 else p.Problem.levels.(levels.(r))
  in
  (* Deliberately routed through the incremental engine (base analysis
     at NBB, then one batch edit to the assignment): every fuzz case
     exercises the worklist propagation, refereed by the independent
     table re-derivation in [check]. Bit-identical to a from-scratch
     [Timing.analyze ~derate ~bias]. *)
  let ctx =
    Timing.Incremental.create ~derate:(fun _ -> 1.0 +. beta) nl
  in
  let biased = Timing.Incremental.set_bias ctx bias in
  let dcrit = Timing.dcrit biased in
  if dcrit <= p.Problem.dcrit +. 1e-6 then []
  else
    [
      Printf.sprintf
        "signoff: biased+degraded critical delay %.6f ps exceeds budget %.6f \
         ps"
        dcrit p.Problem.dcrit;
    ]
