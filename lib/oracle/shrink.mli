(** Greedy failure minimization.

    Given a failing case, repeatedly try to make it smaller — fewer
    gates, fewer rows, fewer constraint paths, coarser bias levels, a
    tighter cluster budget — keeping a candidate only when it still
    fails. The result is the smallest case (under this move set) that
    reproduces {e a} failure; like most shrinkers, it preserves
    "fails at all", not the identity of the original failure. Candidates
    whose only failures are ["build:"] exceptions are rejected: a case
    that cannot even be constructed reproduces nothing. *)

type progress = {
  steps : int;  (** accepted shrinking moves *)
  attempts : int;  (** candidate runs, including rejected ones *)
}

val minimize :
  ?max_attempts:int ->
  run:(Case.t -> string list) ->
  Case.t ->
  Case.t * progress
(** [run] returns the failure list of a candidate (typically
    [fun c -> (Differential.run c).failures]). [max_attempts]
    (default 200) bounds total candidate executions. The input case is
    returned unchanged when [run] reports it as passing — there is
    nothing to shrink. Deterministic: the candidate order is fixed and
    the first still-failing candidate is always taken. *)
