module Problem = Fbb_core.Problem
module Solution = Fbb_core.Solution
module Heuristic = Fbb_core.Heuristic
module Ilp = Fbb_core.Ilp_opt
module Refine = Fbb_core.Refine
module BB = Fbb_ilp.Branch_bound

module Cascade = Fbb_core.Cascade

type oracle_result = Checked of Oracle.verdict | Skipped

type bb_run = {
  levels : int array option;
  leakage_nw : float option;
  proved_optimal : bool;
  timed_out : bool;
}

type outputs = {
  oracle : oracle_result;
  heuristic : (int array * float) option;
  bb : bb_run;
  refine : (int array * float * bool) option;
}

type report = { case : Case.t; outputs : outputs; failures : string list }

let failed r = r.failures <> []

let runs_c = Fbb_obs.Counter.make "differential.runs"
let failures_c = Fbb_obs.Counter.make "differential.failures"
let cascade_runs_c = Fbb_obs.Counter.make "differential.cascade_runs"
let cascade_failures_c = Fbb_obs.Counter.make "differential.cascade_failures"

let leak_tol v = 1e-9 *. Float.max 1.0 (Float.abs v)

let empty_outputs =
  {
    oracle = Skipped;
    heuristic = None;
    bb = { levels = None; leakage_nw = None; proved_optimal = false;
           timed_out = false };
    refine = None;
  }

type cascade_report = {
  c_case : Case.t;
  c_result : Cascade.result option;  (* None: the whole cascade crashed *)
  c_failures : string list;
}

let cascade_failed r = r.c_failures <> []

(* Referee for the fault-injection fuzzer: the cascade runs with
   whatever faults the caller configured live, while every ground-truth
   computation (problem build, oracle, invariant checker) runs under
   [Fault.with_paused] so injected faults can degrade the answer but
   never corrupt the ruler it is measured with. A budget-truncated or
   fault-degraded cascade may land on a worse stage; what it may never
   do is return an unverified assignment, beat the oracle optimum, or
   claim infeasibility on a feasible instance. *)
let run_cascade ?(max_clusters = 2) ?budget case =
  Fbb_obs.Counter.incr cascade_runs_c;
  Fbb_obs.Span.with_ ~name:"differential.cascade" @@ fun () ->
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let finish c_result =
    if !failures <> [] then Fbb_obs.Counter.incr cascade_failures_c;
    { c_case = case; c_result; c_failures = List.rev !failures }
  in
  match Fbb_fault.Fault.with_paused (fun () -> Case.build case) with
  | exception e ->
    fail "build: %s" (Printexc.to_string e);
    finish None
  | p -> (
    let c = max_clusters in
    match Cascade.solve ~max_clusters:c ?budget p with
    | exception e ->
      (* The cascade's contract is to contain stage failures; an escape
         is itself a finding. *)
      fail "cascade: escaped exception %s" (Printexc.to_string e);
      finish None
    | r ->
      Fbb_fault.Fault.with_paused (fun () ->
          let msl = Problem.max_single_level p in
          (match r.Cascade.outcome with
          | Cascade.Infeasible ->
            if msl <> None then
              fail
                "cascade: claims infeasible but a uniform feasible level \
                 exists";
            if Oracle.tractable ~max_clusters:c p then (
              match Oracle.solve ~max_clusters:c p with
              | Oracle.Optimal opt ->
                fail
                  "cascade: claims infeasible, oracle optimum is %.9f nW"
                  opt.Oracle.leakage_nw
              | Oracle.Infeasible -> ())
          | Cascade.Solved { stage; levels; leakage_nw; optimal; _ } ->
            if not (Cascade.verify p ~max_clusters:c levels) then
              fail "cascade: accepted assignment fails independent sign-off";
            List.iter (fun m -> fail "cascade: %s" m)
              (Invariant.check ~max_clusters:c
                 ~reported_leakage_nw:leakage_nw p ~levels);
            if msl = None then
              fail
                "cascade: returned a solution although no uniform level is \
                 feasible (stage %s)"
                (Cascade.stage_name stage);
            if Oracle.tractable ~max_clusters:c p then (
              match Oracle.solve ~max_clusters:c p with
              | Oracle.Infeasible ->
                fail "cascade: solved an instance the oracle proves infeasible"
              | Oracle.Optimal opt ->
                let tol = leak_tol opt.Oracle.leakage_nw in
                if leakage_nw < opt.Oracle.leakage_nw -. tol then
                  fail
                    "cascade: leakage %.9f nW beats the oracle optimum %.9f \
                     nW"
                    leakage_nw opt.Oracle.leakage_nw;
                if
                  optimal
                  && Float.abs (leakage_nw -. opt.Oracle.leakage_nw) > tol
                then
                  fail
                    "cascade: claims optimality at %.9f nW, oracle optimum \
                     is %.9f nW"
                    leakage_nw opt.Oracle.leakage_nw));
          finish (Some r)))

(* The oracle for a transformed problem, used by the metamorphic checks:
   same bounds as the primary solve, so tractability cannot diverge
   between the two sides of a comparison. *)
let oracle_of ~max_clusters p =
  if Oracle.tractable ~max_clusters p then Some (Oracle.solve ~max_clusters p)
  else None

let run ?(metamorphic = true) ?(ilp_seconds = 30.0) case =
  Fbb_obs.Counter.incr runs_c;
  Fbb_obs.Span.with_ ~name:"differential.run" @@ fun () ->
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let finish outputs =
    if !failures <> [] then Fbb_obs.Counter.incr failures_c;
    { case; outputs; failures = List.rev !failures }
  in
  match Case.build case with
  | exception e ->
    fail "build: %s" (Printexc.to_string e);
    finish empty_outputs
  | p ->
    let c = case.Case.max_clusters in
    (* --- heuristic ----------------------------------------------------- *)
    let heuristic =
      match Heuristic.optimize ~max_clusters:c p with
      | None -> None
      | Some r ->
        let leak = Solution.leakage_nw p r.Heuristic.levels in
        List.iter (fun m -> fail "heuristic: %s" m)
          (Invariant.check ~max_clusters:c ~reported_leakage_nw:r.Heuristic.leakage_nw
             p ~levels:r.Heuristic.levels);
        Some (r.Heuristic.levels, leak)
    in
    let msl = Problem.max_single_level p in
    if (heuristic = None) <> (msl = None) then
      fail
        "heuristic: infeasibility claim disagrees with max_single_level \
         (heuristic %s, single-level %s)"
        (if heuristic = None then "None" else "Some")
        (if msl = None then "None" else "Some");
    (* --- branch & bound (cold: no warm start) -------------------------- *)
    let bb =
      let config =
        {
          Ilp.default_config with
          max_clusters = c;
          limits = { BB.max_nodes = 500_000; max_seconds = ilp_seconds };
        }
      in
      let r = Ilp.optimize ~config p in
      let leakage_nw =
        Option.map (fun l -> Solution.leakage_nw p l) r.Ilp.levels
      in
      Option.iter
        (fun levels ->
          List.iter (fun m -> fail "bb: %s" m)
            (Invariant.check ~max_clusters:c ?reported_leakage_nw:r.Ilp.leakage_nw
               p ~levels))
        r.Ilp.levels;
      if r.Ilp.proved_optimal && r.Ilp.levels = None && msl <> None then
        fail "bb: proved infeasible but a uniform feasible level exists";
      if (not r.Ilp.timed_out) && r.Ilp.levels <> None && msl = None then
        fail "bb: found a solution on a problem with no feasible uniform level";
      {
        levels = r.Ilp.levels;
        leakage_nw;
        proved_optimal = r.Ilp.proved_optimal;
        timed_out = r.Ilp.timed_out;
      }
    in
    (* --- oracle -------------------------------------------------------- *)
    let oracle =
      if not (Oracle.tractable ~max_clusters:c p) then Skipped
      else begin
        let verdict = Oracle.solve ~max_clusters:c p in
        (match verdict with
        | Oracle.Infeasible ->
          if heuristic <> None then
            fail "oracle: infeasible, but the heuristic returned a solution";
          if bb.proved_optimal && bb.levels <> None then
            fail "oracle: infeasible, but B&B proved a solution optimal"
        | Oracle.Optimal opt ->
          List.iter (fun m -> fail "oracle self-check: %s" m)
            (Invariant.check ~max_clusters:c
               ~reported_leakage_nw:opt.Oracle.leakage_nw p
               ~levels:opt.Oracle.levels);
          let tol = leak_tol opt.Oracle.leakage_nw in
          (match heuristic with
          | None ->
            fail "oracle: optimum %.3f nW exists, heuristic claims infeasible"
              opt.Oracle.leakage_nw
          | Some (_, hleak) ->
            if hleak < opt.Oracle.leakage_nw -. tol then
              fail
                "heuristic leakage %.9f nW beats the oracle optimum %.9f nW \
                 — the oracle search or the feasibility check disagree"
                hleak opt.Oracle.leakage_nw);
          (match bb with
          | { proved_optimal = true; leakage_nw = Some bleak; _ } ->
            if Float.abs (bleak -. opt.Oracle.leakage_nw) > tol then
              fail
                "bb: proved-optimal leakage %.9f nW differs from oracle \
                 optimum %.9f nW"
                bleak opt.Oracle.leakage_nw
          | { proved_optimal = true; leakage_nw = None; _ } -> ()
          | _ -> ()));
        Checked verdict
      end
    in
    (* --- signoff refinement -------------------------------------------- *)
    let refine =
      match Refine.heuristic ~max_clusters:c p with
      | None ->
        if msl <> None then
          fail "refine: returned None although the problem is feasible";
        None
      | Some o ->
        let rp = o.Refine.problem in
        let leak = Solution.leakage_nw rp o.Refine.levels in
        if o.Refine.signoff_clean then begin
          List.iter (fun m -> fail "refine: %s" m)
            (Invariant.check ~max_clusters:c rp ~levels:o.Refine.levels);
          List.iter (fun m -> fail "refine: %s" m)
            (Invariant.signoff rp ~levels:o.Refine.levels);
          (* The refined constraint set is a superset of the original, so
             its solutions can never beat the original optimum. *)
          match oracle with
          | Checked (Oracle.Optimal opt) ->
            if leak < opt.Oracle.leakage_nw -. leak_tol opt.Oracle.leakage_nw
            then
              fail
                "refine: signoff-clean leakage %.9f nW beats the oracle \
                 optimum %.9f nW of the unrefined problem"
                leak opt.Oracle.leakage_nw
          | Checked Oracle.Infeasible | Skipped -> ()
        end;
        Some (o.Refine.levels, leak, o.Refine.signoff_clean)
    in
    (* --- metamorphic properties of the optimum ------------------------- *)
    (match oracle with
    | Checked (Oracle.Optimal opt) when metamorphic ->
      Fbb_obs.Span.with_ ~name:"differential.metamorphic" @@ fun () ->
      let retruncate q =
        match case.Case.max_paths with
        | None -> q
        | Some n -> Case.truncate_paths q n
      in
      let tol = leak_tol opt.Oracle.leakage_nw in
      (* Row-permutation invariance: rotating the row stack permutes the
         leakage table and the constraint coefficients but cannot change
         the optimum value. *)
      let nrows = Problem.num_rows p in
      let perm = Array.init nrows (fun i -> (i + 1) mod nrows) in
      let permuted =
        retruncate
          (Problem.build ~levels:p.Problem.levels ~beta:case.Case.beta
             (Fbb_place.Placement.permute_rows p.Problem.placement perm))
      in
      (match oracle_of ~max_clusters:c permuted with
      | Some (Oracle.Optimal opt') ->
        if Float.abs (opt'.Oracle.leakage_nw -. opt.Oracle.leakage_nw) > tol
        then
          fail
            "metamorphic: row permutation moved the optimum from %.9f to \
             %.9f nW"
            opt.Oracle.leakage_nw opt'.Oracle.leakage_nw
      | Some Oracle.Infeasible ->
        fail "metamorphic: row permutation made the problem infeasible"
      | None -> ());
      (* Beta monotonicity: a milder slowdown relaxes every constraint,
         so the optimum cannot grow. *)
      let milder = { case with Case.beta = case.Case.beta *. 0.8 } in
      (match
         match Case.build milder with
         | q -> oracle_of ~max_clusters:c q
         | exception _ -> None
       with
      | Some (Oracle.Optimal opt') ->
        if opt'.Oracle.leakage_nw > opt.Oracle.leakage_nw +. tol then
          fail
            "metamorphic: beta %.4f optimum %.9f nW exceeds beta %.4f \
             optimum %.9f nW"
            milder.Case.beta opt'.Oracle.leakage_nw case.Case.beta
            opt.Oracle.leakage_nw
      | Some Oracle.Infeasible ->
        fail "metamorphic: reducing beta made the problem infeasible"
      | None -> ());
      (* Leakage-scale equivariance: scaling the objective table scales
         the optimum value. The argmin itself need not be byte-identical
         — scaled sums round differently, so a near-tie can resolve the
         other way — but whatever the scaled oracle picks must still be
         an optimum of the original problem. *)
      let scale = 1.75 in
      let scaled =
        {
          p with
          Problem.row_leak =
            Array.map (Array.map (fun v -> v *. scale)) p.Problem.row_leak;
        }
      in
      (match oracle_of ~max_clusters:c scaled with
      | Some (Oracle.Optimal opt') ->
        let want = opt.Oracle.leakage_nw *. scale in
        if Float.abs (opt'.Oracle.leakage_nw -. want) > leak_tol want then
          fail
            "metamorphic: scaling leakage by %.2f gave optimum %.9f nW, \
             expected %.9f nW"
            scale opt'.Oracle.leakage_nw want;
        let back = Solution.leakage_nw p opt'.Oracle.levels in
        if Float.abs (back -. opt.Oracle.leakage_nw) > tol then
          fail
            "metamorphic: the scaled argmin is not an optimum of the \
             original problem (%.9f nW vs %.9f nW)"
            back opt.Oracle.leakage_nw
      | Some Oracle.Infeasible ->
        fail "metamorphic: scaling the leakage table changed feasibility"
      | None -> ())
    | _ -> ());
    finish { oracle; heuristic; bb; refine }
