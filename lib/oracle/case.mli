(** Replayable fuzz-case descriptions.

    A case is the full recipe for one differential run — generator seed
    and size, placement row count, slowdown, cluster budget, and the two
    shrinking knobs (level stride and constraint cap). Cases serialize
    to a tiny line-oriented text format so a failure minimized by
    {!Shrink} can be committed under [test/corpus/] and replayed
    forever. *)

type t = {
  seed : int;  (** {!Fbb_netlist.Generators.random_module} seed *)
  gates : int;
  rows : int;  (** placement target rows *)
  beta : float;  (** slowdown coefficient *)
  max_clusters : int;
  level_stride : int;
      (** keep every [stride]-th bias level (1 = all 11); the "coarser
          levels" shrinking dimension *)
  max_paths : int option;
      (** cap the constraint set to its [n] longest-required paths; the
          "fewer paths" shrinking dimension *)
}

val make :
  ?beta:float ->
  ?max_clusters:int ->
  ?level_stride:int ->
  ?max_paths:int ->
  seed:int ->
  gates:int ->
  rows:int ->
  unit ->
  t
(** Defaults: beta 0.06, C = 2, stride 1, no path cap. Raises
    [Invalid_argument] on nonsensical parameters (gates < 8, rows < 2,
    stride < 1, beta outside (0, 1], C < 1). *)

val build : t -> Fbb_core.Problem.t
(** Generate, place and pre-process the case into a problem. Pure in the
    case: equal cases build identical problems. *)

val truncate_paths : Fbb_core.Problem.t -> int -> Fbb_core.Problem.t
(** Keep only the [n] constraints with the largest required reduction
    (no-op when the problem is already smaller). Used by [build] for
    [max_paths] and by the metamorphic re-builds, which must cap the
    transformed problem the same way. *)

val name : t -> string
(** Deterministic, human-readable identifier, e.g.
    [s42-g120-r4-b6.00-c2-st1-pall] — used for corpus filenames. *)

val to_string : t -> string
val of_string : string -> (t, string) result
(** Line-oriented [key value] serialization with a versioned header. *)

val save : dir:string -> t -> string
(** Write the case as [dir/<name>.case] (creating [dir] if needed) and
    return the path. *)

val load : string -> (t, string) result
val load_dir : string -> (string * t) list
(** All [*.case] files of a directory in sorted filename order, paired
    with their paths; missing directory is an empty corpus. Raises
    [Failure] on an unparsable case file — a corrupt corpus should be
    loud, not silently shorter. *)
