module Problem = Fbb_core.Problem

type t = {
  seed : int;
  gates : int;
  rows : int;
  beta : float;
  max_clusters : int;
  level_stride : int;
  max_paths : int option;
}

let make ?(beta = 0.06) ?(max_clusters = 2) ?(level_stride = 1) ?max_paths
    ~seed ~gates ~rows () =
  if gates < 8 then invalid_arg "Case.make: gates < 8";
  if rows < 2 then invalid_arg "Case.make: rows < 2";
  if level_stride < 1 then invalid_arg "Case.make: stride < 1";
  if beta <= 0.0 || beta > 1.0 then invalid_arg "Case.make: beta not in (0,1]";
  if max_clusters < 1 then invalid_arg "Case.make: C < 1";
  (match max_paths with
  | Some n when n < 1 -> invalid_arg "Case.make: max_paths < 1"
  | Some _ | None -> ());
  { seed; gates; rows; beta; max_clusters; level_stride; max_paths }

(* Keep the [n] constraints with the largest required reduction. Any
   solver disagreement on the reduced problem is still a genuine
   disagreement — the solvers only ever see the problem they are
   handed. *)
let truncate_paths p n =
  let m = Problem.num_paths p in
  if n >= m then p
  else begin
    let order = Array.init m (fun k -> k) in
    Array.sort
      (fun a b ->
        match compare p.Problem.required.(b) p.Problem.required.(a) with
        | 0 -> compare a b
        | c -> c)
      order;
    let kept = Array.sub order 0 n in
    Array.sort compare kept;
    let take a = Array.map (fun k -> a.(k)) kept in
    let path_rows = take p.Problem.path_rows in
    let row_paths =
      let nrows = Problem.num_rows p in
      let counts = Array.make nrows 0 in
      Array.iter
        (fun rv ->
          Array.iter (fun r -> counts.(r) <- counts.(r) + 1) rv.Problem.idx)
        path_rows;
      let out =
        Array.init nrows (fun r ->
            {
              Problem.idx = Array.make counts.(r) 0;
              coef = Array.make counts.(r) 0.0;
            })
      in
      let fill = Array.make nrows 0 in
      Array.iteri
        (fun k rv ->
          Array.iteri
            (fun i r ->
              let o = out.(r) in
              o.Problem.idx.(fill.(r)) <- k;
              o.Problem.coef.(fill.(r)) <- rv.Problem.coef.(i);
              fill.(r) <- fill.(r) + 1)
            rv.Problem.idx)
        path_rows;
      out
    in
    {
      p with
      Problem.paths = take p.Problem.paths;
      required = take p.Problem.required;
      nominal_slack = take p.Problem.nominal_slack;
      path_rows;
      row_paths;
    }
  end

let build c =
  let nl = Fbb_netlist.Generators.random_module ~seed:c.seed ~gates:c.gates () in
  let pl = Fbb_place.Placement.place ~target_rows:c.rows nl in
  let levels =
    if c.level_stride = 1 then None
    else begin
      let full = Fbb_tech.Bias.levels () in
      let kept = ref [] in
      Array.iteri
        (fun j v -> if j mod c.level_stride = 0 then kept := v :: !kept)
        full;
      Some (Array.of_list (List.rev !kept))
    end
  in
  let p = Problem.build ?levels ~beta:c.beta pl in
  match c.max_paths with None -> p | Some n -> truncate_paths p n

let name c =
  Printf.sprintf "s%d-g%d-r%d-b%.2f-c%d-st%d-p%s" c.seed c.gates c.rows
    (c.beta *. 100.0) c.max_clusters c.level_stride
    (match c.max_paths with None -> "all" | Some n -> string_of_int n)

let to_string c =
  String.concat "\n"
    ([
       "fbbcase 1";
       Printf.sprintf "seed %d" c.seed;
       Printf.sprintf "gates %d" c.gates;
       Printf.sprintf "rows %d" c.rows;
       Printf.sprintf "beta %.17g" c.beta;
       Printf.sprintf "clusters %d" c.max_clusters;
       Printf.sprintf "stride %d" c.level_stride;
     ]
    @ (match c.max_paths with
      | None -> []
      | Some n -> [ Printf.sprintf "max_paths %d" n ])
    @ [ "" ])

let of_string s =
  let ( let* ) r f = Result.bind r f in
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | "fbbcase 1" :: fields ->
    let* kv =
      List.fold_left
        (fun acc line ->
          let* acc = acc in
          match String.index_opt line ' ' with
          | None -> Error (Printf.sprintf "malformed line %S" line)
          | Some i ->
            let key = String.sub line 0 i in
            let value =
              String.trim (String.sub line (i + 1) (String.length line - i - 1))
            in
            Ok ((key, value) :: acc))
        (Ok []) fields
    in
    let int_field key default =
      match List.assoc_opt key kv with
      | None -> Ok default
      | Some v -> (
        match int_of_string_opt v with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "field %s: not an int: %S" key v))
    in
    let* seed = int_field "seed" 1 in
    let* gates = int_field "gates" 100 in
    let* rows = int_field "rows" 4 in
    let* clusters = int_field "clusters" 2 in
    let* stride = int_field "stride" 1 in
    let* beta =
      match List.assoc_opt "beta" kv with
      | None -> Ok 0.06
      | Some v -> (
        match float_of_string_opt v with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "field beta: not a float: %S" v))
    in
    let* max_paths =
      match List.assoc_opt "max_paths" kv with
      | None -> Ok None
      | Some v -> (
        match int_of_string_opt v with
        | Some n -> Ok (Some n)
        | None -> Error (Printf.sprintf "field max_paths: not an int: %S" v))
    in
    (match
       make ~beta ~max_clusters:clusters ~level_stride:stride ?max_paths ~seed
         ~gates ~rows ()
     with
    | c -> Ok c
    | exception Invalid_argument m -> Error m)
  | first :: _ -> Error (Printf.sprintf "bad header %S (want \"fbbcase 1\")" first)
  | [] -> Error "empty case file"

let save ~dir c =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (name c ^ ".case") in
  (* Atomic: a crash (or injected I/O fault) mid-save must never leave
     a half-written repro in the corpus. *)
  Fbb_util.Atomic_io.write_atomic ~path (to_string c);
  path

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error m -> Error m

let load_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".case")
    |> List.sort compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           match load path with
           | Ok c -> (path, c)
           | Error m -> failwith (Printf.sprintf "%s: %s" path m))
