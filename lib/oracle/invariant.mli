(** From-scratch invariant checker for solver outputs.

    Every check here is recomputed from primary sources — the placement,
    the nominal STA and the cell library — rather than from the problem's
    pre-assembled coefficient tables or the incremental
    {!Fbb_core.Solution.Checker}, so it can catch bugs in the table
    assembly and the fast paths alike. An empty result means the
    solution survived; otherwise each string describes one violated
    invariant. *)

val check :
  ?max_clusters:int ->
  ?reported_leakage_nw:float ->
  Fbb_core.Problem.t ->
  levels:int array ->
  string list
(** Structural and semantic invariants of a solver's answer:
    - the assignment has one in-range level per row;
    - at most [max_clusters] (default 2) distinct levels are used;
    - every constraint path meets its required reduction, with the
      per-row degraded delays re-derived from [Fbb_sta.Timing.gate_delay]
      and the bias speed-ups re-derived from [Fbb_tech.Device];
    - total leakage re-summed gate by gate from the cell library agrees
      with the problem's table-based accounting, and with
      [reported_leakage_nw] when the solver claimed a number. *)

val signoff : Fbb_core.Problem.t -> levels:int array -> string list
(** Full-STA re-verification: re-time the placed netlist under the
    degraded conditions with the bias applied (an independent
    [Fbb_sta.Timing.analyze] run, no path abstraction) and require the
    critical delay to stay within the problem's [dcrit]. Only meaningful
    for refinement outcomes — raw Pi-constrained solutions may
    legitimately fail it; that is exactly the gap {!Fbb_core.Refine}
    closes. *)
