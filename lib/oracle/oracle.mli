(** Exact brute-force reference for the clustered-FBB allocation problem.

    For instances small enough to enumerate, [solve] walks {e every}
    row-to-level assignment whose distinct-level count fits the cluster
    budget and returns the provably minimal-leakage feasible one. It
    shares only the problem's coefficient tables with the production
    solvers — feasibility and leakage are recomputed with plain loops,
    no incremental checker, no LP, no pruning beyond a safe leakage
    bound — so it serves as the independent ground truth the
    differential fuzzer measures the heuristic and branch & bound
    against.

    Enumeration walks level subsets of size 1..C (ascending, so the
    visit order — and therefore the tie-breaking among equal-leakage
    optima: first visited wins — is deterministic), then all assignments
    of rows to subset members. *)

type optimum = {
  levels : int array;  (** row assignment, one level per row *)
  leakage_nw : float;  (** recomputed from the problem's leakage table *)
}

type verdict =
  | Optimal of optimum
  | Infeasible
      (** no assignment within the cluster budget meets timing; since a
          uniform assignment uses one cluster, this is equivalent to
          [Problem.max_single_level = None] *)

val default_max_rows : int
(** 8. *)

val default_max_leaves : int
(** Cap on enumerated assignments (2_000_000). *)

val tractable :
  ?max_rows:int -> ?max_leaves:int -> max_clusters:int -> Fbb_core.Problem.t ->
  bool
(** Whether [solve] is allowed: the row count fits and the total number
    of assignments [sum_{s=1..C} (P choose s) * s^rows] stays within
    [max_leaves]. *)

val solve :
  ?max_rows:int -> ?max_leaves:int -> ?max_clusters:int ->
  Fbb_core.Problem.t -> verdict
(** Exhaustive search ([max_clusters] defaults to 2). Raises
    [Invalid_argument] when the instance is not {!tractable} — callers
    are expected to gate on {!tractable} first. *)

type bounded =
  | Done of verdict  (** the enumeration ran to completion *)
  | Out_of_budget of optimum option
      (** the budget tripped mid-walk; carries the best feasible
          assignment seen so far (an upper bound, {e not} a proven
          optimum — and [None] proves nothing about feasibility) *)

val solve_bounded :
  ?max_rows:int -> ?max_leaves:int -> ?max_clusters:int ->
  budget:Fbb_util.Budget.t -> Fbb_core.Problem.t -> bounded
(** {!solve} under a cooperative {!Fbb_util.Budget}, ticked once per
    enumerated leaf. The walk is strictly sequential, so a pure work
    budget truncates at the same leaf on every run. *)
