(** One differential run: every solver against the oracle and the
    independent invariant checker.

    For a {!Case.t} this builds the problem once, then runs the paper's
    two-pass heuristic, the branch & bound exact solver (cold — no warm
    start, so the two searches stay independent), the signoff refinement
    loop, and — when the instance is small enough — the {!Oracle}
    brute force, cross-checking:

    - heuristic/B&B feasibility claims agree with each other and with
      the oracle's;
    - every returned assignment survives {!Invariant.check};
    - heuristic (and refined) leakage is never below the oracle optimum;
    - a proved-optimal B&B answer has exactly the oracle's optimum
      leakage;
    - signoff-clean refinement outcomes pass an independent full-STA
      re-check;
    - metamorphic properties of the optimum: row-permutation invariance,
      monotonicity in beta, and equivariance under scaling the leakage
      table.

    All tolerances are relative 1e-9 — far above float-summation noise,
    far below the leakage quantum of a single row level change. *)

type oracle_result = Checked of Oracle.verdict | Skipped

type bb_run = {
  levels : int array option;
  leakage_nw : float option;  (** recomputed from [levels], not the LP *)
  proved_optimal : bool;
  timed_out : bool;
}

type outputs = {
  oracle : oracle_result;
  heuristic : (int array * float) option;  (** (levels, leakage) *)
  bb : bb_run;
  refine : (int array * float * bool) option;
      (** (levels, leakage, signoff_clean) *)
}
(** Plain data, structurally comparable — the cross-job-count
    determinism suite asserts [outputs] equality at FBB_JOBS=1 vs 4. *)

type report = {
  case : Case.t;
  outputs : outputs;
  failures : string list;  (** empty = all checks passed *)
}

val run : ?metamorphic:bool -> ?ilp_seconds:float -> Case.t -> report
(** [metamorphic] (default true) additionally rebuilds the problem under
    a row rotation, a smaller beta and a scaled leakage table — three
    extra oracle solves — on oracle-sized instances. [ilp_seconds]
    (default 30) bounds the B&B; a timed-out B&B skips the optimality
    comparison rather than failing. Exceptions while building the case
    are reported as a single failure prefixed ["build:"]. *)

val failed : report -> bool

(** {2 Cascade referee}

    Used by [fbbfuzz --faults]: the cascade under test runs with fault
    injection live, while the problem build, the oracle and the
    invariant checker run inside {!Fbb_fault.Fault.with_paused} —
    faults may degrade the cascade to a later stage but can never
    corrupt the ground truth it is judged against. *)

type cascade_report = {
  c_case : Case.t;
  c_result : Fbb_core.Cascade.result option;
      (** [None] when the cascade itself crashed — always a failure,
          since containing stage crashes is the cascade's contract *)
  c_failures : string list;  (** empty = all checks passed *)
}

val run_cascade :
  ?max_clusters:int -> ?budget:Fbb_util.Budget.t -> Case.t -> cascade_report
(** Checks, for [Solved]: the independent sign-off and invariant
    checker accept the assignment, and on oracle-sized instances the
    leakage never beats the oracle optimum (with equality required of
    an optimality claim). For [Infeasible]: [max_single_level] is
    [None] and the oracle agrees. *)

val cascade_failed : cascade_report -> bool
