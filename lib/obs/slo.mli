(** Declarative SLOs evaluated as multi-window burn rates.

    An objective states a target good-fraction (e.g. 0.999) over some
    signal and is evaluated over a fast and a slow window (default
    5 m / 1 h) of the telemetry {!Series} rings:

    {v burn = bad_fraction / (1 - target) v}

    — how many times faster than budget the service is burning its
    error allowance. An objective is breached only when {e both}
    windows exceed [burn_limit] (the standard multi-window multi-burn
    alert: responsive via the fast window, flap-free via the slow
    one). Windows clamp to the history a ring actually holds.

    {!evaluate_all} runs inside the telemetry sampler pass and
    publishes [slo.<name>.burn_fast] / [.burn_slow] / [.ok] gauges;
    {!to_json} backs the telemetry server's [/slo.json] and the
    [fbbd load --slo] gate. *)

type windows = { fast_s : float; slow_s : float }

val default_windows : windows
(** 300 s fast / 3600 s slow. *)

type kind =
  | Latency_p of { series : string; threshold_s : float }
      (** A tick is bad when the percentile series (e.g.
          ["hist.serve.latency.p99_s"]) exceeds the threshold; NaN
          (idle) ticks count neither way. *)
  | Ratio of { bad : string list; total : string }
      (** Sum of the bad counter-delta series over the window divided
          by the sum of the total series (0 when the total is 0). *)

type objective = {
  slo_name : string;
  kind : kind;
  target : float;  (** good fraction in [0, 1) *)
  windows : windows;
  burn_limit : float;  (** breach when both windows burn faster *)
}

type status = {
  objective : objective;
  burn_fast : float;
  burn_slow : float;
  ok : bool;
}

val register : objective -> unit
(** Add or replace (by name). Raises [Invalid_argument] on a target
    outside [0, 1) or a non-positive burn limit. *)

val clear : unit -> unit
val registered : unit -> objective list

val evaluate : ?now:float -> objective -> status
(** Evaluate one objective against the current rings; [?now] (unix
    seconds) pins the window edge for tests. *)

val evaluate_all : ?now:float -> unit -> status list
(** Evaluate every registered objective and publish the [slo.*]
    gauges. Called by the telemetry sampler each tick. *)

val to_json : ?now:float -> unit -> Fbb_util.Json.t
(** Schema ["fbb-slo-1"]: evaluates everything and renders one status
    object per objective plus a top-level all-ok flag. *)
