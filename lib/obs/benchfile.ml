(* Machine-readable bench session records and the regression gate.

   A record extends the original flat per-experiment seconds
   ("fbb-bench-1") with per-span latency percentiles out of the
   aggregate's histograms, whole-process GC totals and domain-pool
   utilization ("fbb-bench-2"). [compare] diffs two records and is the
   CI gate: `fbbopt bench-compare baseline.json fresh.json
   --max-regress 25` fails the job when a gated metric grew beyond the
   threshold.

   Gated metrics are per-experiment wall seconds and the two GC
   allocation totals. Counters (solver work: B&B nodes, LP pivots) are
   deterministic, so any drift is reported loudly, but they do not
   gate - a legitimate algorithmic change moves them and the bench
   numbers are the place to judge whether that was worth it. Wall
   seconds gate with both a relative threshold and an absolute floor,
   so sub-centisecond noise on a fast experiment cannot fail CI. *)

module Json = Fbb_util.Json

type span_stat = {
  count : int;
  total_s : float;
  mean_s : float;
  p50_s : float;
  p90_s : float;
  p99_s : float;
  max_s : float;
}

type pool_stat = {
  label : string;
  busy_s : float;
  idle_s : float;
  tasks : int;
}

type t = {
  jobs : int;
  experiments : (string * float) list;  (* name, wall seconds *)
  counters : (string * int) list;
  gauges : (string * float) list;  (* e.g. obs.telemetry.* overhead *)
  spans : (string * span_stat) list;
  gc : Gcprof.sample;  (* whole-process totals at record time *)
  pool : pool_stat list;
}

let schema = "fbb-bench-2"

(* ----- construction ---------------------------------------------------- *)

let span_stats_of_aggregate agg =
  List.map
    (fun (name, count, total_s, mean_s, max_s) ->
      let p50_s, p90_s, p99_s =
        match Aggregate.span_percentiles agg name with
        | Some (a, b, c) -> (a, b, c)
        | None -> (Float.nan, Float.nan, Float.nan)
      in
      (name, { count; total_s; mean_s; p50_s; p90_s; p99_s; max_s }))
    (Aggregate.span_rows agg)

let make ~jobs ~experiments ~counters ?(gauges = []) ~pool agg =
  {
    jobs;
    experiments;
    counters;
    gauges;
    spans = span_stats_of_aggregate agg;
    gc = Gcprof.sample ();
    pool =
      List.map
        (fun (label, busy_s, idle_s, tasks) -> { label; busy_s; idle_s; tasks })
        pool;
  }

(* ----- JSON ------------------------------------------------------------ *)

let num f = Json.Num f
let inum i = Json.Num (float_of_int i)

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("jobs", inum t.jobs);
      ( "experiments",
        Json.Arr
          (List.map
             (fun (name, seconds) ->
               Json.Obj [ ("name", Json.Str name); ("seconds", num seconds) ])
             t.experiments) );
      ( "counters",
        Json.Obj (List.map (fun (name, v) -> (name, inum v)) t.counters) );
      ("gauges", Json.Obj (List.map (fun (name, v) -> (name, num v)) t.gauges));
      ( "spans",
        Json.Obj
          (List.map
             (fun (name, s) ->
               ( name,
                 Json.Obj
                   [
                     ("count", inum s.count);
                     ("total_s", num s.total_s);
                     ("mean_s", num s.mean_s);
                     ("p50_s", num s.p50_s);
                     ("p90_s", num s.p90_s);
                     ("p99_s", num s.p99_s);
                     ("max_s", num s.max_s);
                   ] ))
             t.spans) );
      ( "gc",
        Json.Obj
          [
            ("minor_words", num t.gc.Gcprof.minor_words);
            ("major_words", num t.gc.Gcprof.major_words);
            ("minor_collections", inum t.gc.Gcprof.minor_collections);
            ("major_collections", inum t.gc.Gcprof.major_collections);
            ("top_heap_words", inum t.gc.Gcprof.top_heap_words);
          ] );
      ( "pool",
        Json.Arr
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("label", Json.Str p.label);
                   ("busy_s", num p.busy_s);
                   ("idle_s", num p.idle_s);
                   ("tasks", inum p.tasks);
                 ])
             t.pool) );
    ]

let get_num v k ~default =
  match Json.member_num k v with
  | Some f -> f
  | None -> default

let of_json v =
  match Json.member_str "schema" v with
  | Some ("fbb-bench-1" | "fbb-bench-2") ->
    let experiments =
      match Json.member_arr "experiments" v with
      | None -> []
      | Some items ->
        List.filter_map
          (fun item ->
            match (Json.member_str "name" item, Json.member_num "seconds" item)
            with
            | Some name, Some seconds -> Some (name, seconds)
            | _ -> None)
          items
    in
    let counters =
      match Json.member_obj "counters" v with
      | None -> []
      | Some members ->
        List.filter_map
          (fun (name, jv) ->
            Option.map (fun f -> (name, int_of_float f)) (Json.to_num jv))
          members
    in
    let gauges =
      (* absent in fbb-bench-1 and early fbb-bench-2 records *)
      match Json.member_obj "gauges" v with
      | None -> []
      | Some members ->
        List.filter_map
          (fun (name, jv) -> Option.map (fun f -> (name, f)) (Json.to_num jv))
          members
    in
    let spans =
      match Json.member_obj "spans" v with
      | None -> []
      | Some members ->
        List.map
          (fun (name, sv) ->
            ( name,
              {
                count = int_of_float (get_num sv "count" ~default:0.0);
                total_s = get_num sv "total_s" ~default:Float.nan;
                mean_s = get_num sv "mean_s" ~default:Float.nan;
                p50_s = get_num sv "p50_s" ~default:Float.nan;
                p90_s = get_num sv "p90_s" ~default:Float.nan;
                p99_s = get_num sv "p99_s" ~default:Float.nan;
                max_s = get_num sv "max_s" ~default:Float.nan;
              } ))
          members
    in
    let gc =
      match Json.member "gc" v with
      | Some gv ->
        {
          Gcprof.minor_words = get_num gv "minor_words" ~default:0.0;
          major_words = get_num gv "major_words" ~default:0.0;
          minor_collections =
            int_of_float (get_num gv "minor_collections" ~default:0.0);
          major_collections =
            int_of_float (get_num gv "major_collections" ~default:0.0);
          top_heap_words = int_of_float (get_num gv "top_heap_words" ~default:0.0);
        }
      | None ->
        {
          Gcprof.minor_words = 0.0;
          major_words = 0.0;
          minor_collections = 0;
          major_collections = 0;
          top_heap_words = 0;
        }
    in
    let pool =
      match Json.member_arr "pool" v with
      | None -> []
      | Some items ->
        List.filter_map
          (fun item ->
            Option.map
              (fun label ->
                {
                  label;
                  busy_s = get_num item "busy_s" ~default:0.0;
                  idle_s = get_num item "idle_s" ~default:0.0;
                  tasks = int_of_float (get_num item "tasks" ~default:0.0);
                })
              (Json.member_str "label" item))
          items
    in
    Ok
      {
        jobs = int_of_float (get_num v "jobs" ~default:1.0);
        experiments;
        counters;
        gauges;
        spans;
        gc;
        pool;
      }
  | Some s -> Error (Printf.sprintf "unknown schema %S" s)
  | None -> Error "missing \"schema\""

let save t ~path = Json.save ~indent:true (to_json t) ~path

let load path =
  match Json.load path with
  | v -> of_json v
  | exception Json.Parse_error (pos, msg) ->
    Error (Printf.sprintf "%s: JSON error at offset %d: %s" path pos msg)
  | exception Sys_error msg -> Error msg

(* ----- comparison ------------------------------------------------------ *)

type verdict = {
  key : string;
  old_v : float;
  new_v : float;
  change_pct : float;  (* +10.0 = new is 10% bigger *)
  gated : bool;
  regressed : bool;
}

type comparison = {
  verdicts : verdict list;
  missing : string list;  (* gated keys of [old] absent in [new] *)
}

(* Noise floors: a gated metric only regresses when it grew by the
   relative threshold AND by an absolute margin that matters - 50 ms
   of wall clock (shared runners routinely jitter sub-second
   experiments by tens of ms), a million words (~8 MB) of
   allocation. *)
let seconds_floor = 0.050
let words_floor = 1e6

let change_pct ~old_v ~new_v =
  if old_v = 0.0 then if new_v = 0.0 then 0.0 else Float.infinity
  else (new_v -. old_v) /. old_v *. 100.0

let verdict ~max_regress_pct ~floor ~gated key old_v new_v =
  let pct = change_pct ~old_v ~new_v in
  let regressed =
    gated && pct > max_regress_pct && new_v -. old_v > floor
  in
  { key; old_v; new_v; change_pct = pct; gated; regressed }

let compare ~max_regress_pct old_t new_t =
  let verdicts = ref [] and missing = ref [] in
  let emit v = verdicts := v :: !verdicts in
  (* experiments: gated on wall seconds *)
  List.iter
    (fun (name, old_s) ->
      let key = "exp:" ^ name in
      match List.assoc_opt name new_t.experiments with
      | Some new_s ->
        emit
          (verdict ~max_regress_pct ~floor:seconds_floor ~gated:true key old_s
             new_s)
      | None -> missing := key :: !missing)
    old_t.experiments;
  (* GC allocation totals: gated when the old record has them
     (fbb-bench-1 files carry zeros - comparing against those would
     read as infinite regression). *)
  let gc_gate =
    old_t.gc.Gcprof.minor_words > 0.0 || old_t.gc.Gcprof.major_words > 0.0
  in
  if gc_gate then begin
    emit
      (verdict ~max_regress_pct ~floor:words_floor ~gated:true
         "gc:minor_words" old_t.gc.Gcprof.minor_words
         new_t.gc.Gcprof.minor_words);
    emit
      (verdict ~max_regress_pct ~floor:words_floor ~gated:true
         "gc:major_words" old_t.gc.Gcprof.major_words
         new_t.gc.Gcprof.major_words)
  end;
  (* counters: informational - deterministic solver work; drift is
     visible in the table but does not gate. *)
  List.iter
    (fun (name, old_c) ->
      match List.assoc_opt name new_t.counters with
      | Some new_c ->
        emit
          (verdict ~max_regress_pct ~floor:0.0 ~gated:false ("counter:" ^ name)
             (float_of_int old_c) (float_of_int new_c))
      | None -> ())
    old_t.counters;
  (* gauges: informational - tracks the telemetry plane's own cost
     (the obs.telemetry gauges) across records without ever failing
     the build on it. *)
  List.iter
    (fun (name, old_g) ->
      match List.assoc_opt name new_t.gauges with
      | Some new_g ->
        emit
          (verdict ~max_regress_pct ~floor:0.0 ~gated:false ("gauge:" ^ name)
             old_g new_g)
      | None -> ())
    old_t.gauges;
  { verdicts = List.rev !verdicts; missing = List.rev !missing }

let regressed c = List.exists (fun v -> v.regressed) c.verdicts

let render c =
  let module T = Fbb_util.Texttab in
  let tab =
    T.create ~headers:[ "metric"; "old"; "new"; "change %"; "verdict" ]
  in
  List.iter
    (fun v ->
      T.add_row tab
        [
          v.key;
          T.cell_f ~digits:3 v.old_v;
          T.cell_f ~digits:3 v.new_v;
          T.cell_f ~digits:2 v.change_pct;
          (if v.regressed then "REGRESSED"
           else if not v.gated then "info"
           else if v.change_pct < 0.0 then "improved"
           else "ok");
        ])
    c.verdicts;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (T.render tab);
  List.iter
    (fun key -> Printf.bprintf buf "MISSING in new record: %s\n" key)
    c.missing;
  Buffer.contents buf
