(** Hierarchical timed spans. *)

val with_ : name:string -> (unit -> 'a) -> 'a
(** [with_ ~name f] runs [f] inside a named span. Nests; the end event
    is emitted even when [f] raises, so traces stay balanced. With no
    sink installed this is a single atomic load plus a call to [f].
    Depth is tracked per domain and every span event carries its
    domain id, so spans opened on pool workers nest against their own
    ancestry and the interleaved stream stays reconstructible.

    Closing a span additionally records its duration into the registry
    histogram of the same name (emitting one [Hist_record]) and, when
    {!Gcprof} is enabled, a [Gc_sample] with the span's GC deltas. *)

val current_depth : unit -> int
(** Nesting depth of the calling domain's innermost open span (0
    outside any span). Only meaningful while a sink is installed. *)
