(** Hierarchical timed spans. *)

val with_ : name:string -> (unit -> 'a) -> 'a
(** [with_ ~name f] runs [f] inside a named span. Nests; the end event
    is emitted even when [f] raises, so traces stay balanced. With no
    sink installed this is a single ref read plus a call to [f]. *)

val current_depth : unit -> int
(** Nesting depth of the innermost open span (0 outside any span).
    Only meaningful while a sink is installed. *)
