(** Hierarchical timed spans. *)

val with_ : name:string -> (unit -> 'a) -> 'a
(** [with_ ~name f] runs [f] inside a named span. Nests; the end event
    is emitted even when [f] raises, so traces stay balanced. With no
    sink installed this is a single atomic load plus a call to [f].
    Depth is tracked per domain, so spans opened on pool workers nest
    against their own ancestry. *)

val current_depth : unit -> int
(** Nesting depth of the calling domain's innermost open span (0
    outside any span). Only meaningful while a sink is installed. *)
