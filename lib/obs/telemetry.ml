(* The live telemetry plane: a background sampler that turns the
   cumulative registries (counters, gauges, histograms) into Series
   rings of per-tick readings, and a hand-rolled HTTP/1.0 endpoint
   exposing both as Prometheus text and JSON. This is the monitor half
   of a monitor/decide/actuate loop, and the seed of the fbbd daemon.

   Sampler design: one domain, one pass per tick. A pass reads every
   registry (lock-free snapshots), pushes per-tick counter deltas,
   gauge values and interval histogram percentiles (diffing a kept
   plain Histogram.snapshot of each cumulative histogram, no atomics)
   into registry Series, then updates its own cost accounting as
   obs.telemetry.* gauges — the plane observes itself with the same
   primitives it offers everyone else, and bench records carry those
   gauges so bench-compare tracks the cost of telemetry over time.

   The sampler never touches solver state and the solvers never wait
   on the sampler, so enabling telemetry cannot perturb results: the
   determinism suite runs the cascade with a live sampler at jobs 1
   and 4 and demands bit-identical outcomes.

   Server design: a listener thread accepting one connection at a
   time. Scrapes are rare (seconds apart) and responses are small
   (tens of KB); serial handling keeps the whole server at ~100 lines
   with no connection bookkeeping. Shutdown wakes the accept loop with
   a self-connection, the portable trick for blocking accept(2). *)

(* ----- sampler ---------------------------------------------------------- *)

(* The periodic sampler runs on its own domain, not a systhread: a
   thread would share the main domain's runtime lock, so a pass's wall
   clock would mostly measure the solver holding the lock — inflating
   busy_s by an order of magnitude and, worse, stealing mutator time
   from the workload at every tick. A domain samples in true parallel
   (passes only read atomic registry state), so busy_s is an honest
   cost and the solvers never wait on telemetry. *)
type sampler = {
  tick_s : float;
  lock : Mutex.t;  (* serializes passes: the domain vs. sample_now *)
  prev_counters : (string, int) Hashtbl.t;
  prev_hists : (string, Histogram.snapshot) Hashtbl.t;
  started_s : float;  (* monotonic, denominator of the overhead ratio *)
  mutable busy_s : float;
  mutable ticks : int;
  stop : bool Atomic.t;
  mutable domain : unit Domain.t option;
}

let g_ticks = lazy (Counter.Gauge.make "obs.telemetry.ticks")
let g_busy = lazy (Counter.Gauge.make "obs.telemetry.busy_s")
let g_overhead = lazy (Counter.Gauge.make "obs.telemetry.overhead_pct")

let create ?(tick_s = 0.5) () =
  if not (tick_s > 0.0) then invalid_arg "Telemetry.create: tick_s must be > 0";
  {
    tick_s;
    lock = Mutex.create ();
    prev_counters = Hashtbl.create 32;
    prev_hists = Hashtbl.create 32;
    started_s = Clock.now_s ();
    busy_s = 0.0;
    ticks = 0;
    stop = Atomic.make false;
    domain = None;
  }

let sample_now s =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) @@ fun () ->
  let t0 = Clock.now_s () in
  let now = Clock.now_unix () in
  let totals = Counter.totals () in
  List.iter
    (fun (name, total) ->
      let prev =
        match Hashtbl.find_opt s.prev_counters name with
        | Some p -> p
        | None -> 0
      in
      Hashtbl.replace s.prev_counters name total;
      Series.push (Series.make ("counter." ^ name)) ~ts:now
        (float_of_int (total - prev)))
    totals;
  List.iter
    (fun (name, v) -> Series.push (Series.make ("gauge." ^ name)) ~ts:now v)
    (Counter.Gauge.values ());
  List.iter
    (fun h ->
      let count = Histogram.count h in
      if count > 0 then begin
        let name = Histogram.name h in
        let push_tick p50 p99 rate =
          Series.push (Series.make ("hist." ^ name ^ ".p50_s")) ~ts:now p50;
          Series.push (Series.make ("hist." ^ name ^ ".p99_s")) ~ts:now p99;
          Series.push (Series.make ("hist." ^ name ^ ".rate")) ~ts:now rate
        in
        match Hashtbl.find_opt s.prev_hists name with
        | Some older when Histogram.snapshot_count older = count ->
          (* Cumulative count is monotone, so an unchanged count means
             no new observations: record the idle tick without paying
             for a snapshot. NaN = "idle this tick", which Series
             readers render as a gap and Texttab as "-", never as a
             fake 0-latency. This skip is what keeps the sampler's
             steady-state cost proportional to the {e active}
             histograms, not the registry size. *)
          push_tick Float.nan Float.nan 0.0
        | prev ->
          let snap = Histogram.snapshot h in
          Hashtbl.replace s.prev_hists name snap;
          let pct p =
            match Histogram.interval_percentile ?since:prev snap p with
            | Some v -> v
            | None -> Float.nan
          in
          push_tick (pct 0.50) (pct 0.99)
            (float_of_int (Histogram.interval_count ?since:prev snap))
      end)
    (Histogram.registered ());
  (* Burn rates read the rings just pushed, so objectives see this
     tick's data; publishing gauges here means the next tick's pass
     (and any scrape in between) carries fresh slo.* values. *)
  ignore (Slo.evaluate_all ~now ());
  s.ticks <- s.ticks + 1;
  s.busy_s <- s.busy_s +. (Clock.now_s () -. t0);
  Counter.Gauge.set (Lazy.force g_ticks) (float_of_int s.ticks);
  Counter.Gauge.set (Lazy.force g_busy) s.busy_s;
  let elapsed = Clock.now_s () -. s.started_s in
  if elapsed > 0.0 then
    Counter.Gauge.set (Lazy.force g_overhead) (100.0 *. s.busy_s /. elapsed)

(* Sleep in short slices so [stop] is honored promptly even with a
   multi-second tick. *)
let rec run_loop s next =
  if not (Atomic.get s.stop) then begin
    let now = Clock.now_s () in
    if now >= next then begin
      sample_now s;
      run_loop s (Clock.now_s () +. s.tick_s)
    end
    else begin
      Unix.sleepf (Float.min 0.05 (next -. now));
      run_loop s next
    end
  end

let start ?tick_s () =
  let s = create ?tick_s () in
  s.domain <-
    Some (Domain.spawn (fun () -> run_loop s (Clock.now_s () +. s.tick_s)));
  s

let stop s =
  Atomic.set s.stop true;
  (match s.domain with Some d -> Domain.join d | None -> ());
  s.domain <- None;
  (* Final pass so even runs shorter than one tick leave a complete
     set of series and obs.telemetry.* gauges behind. *)
  sample_now s

let overhead_pct s =
  let elapsed = Clock.now_s () -. s.started_s in
  if elapsed > 0.0 then 100.0 *. s.busy_s /. elapsed else 0.0

(* ----- snapshot --------------------------------------------------------- *)

let snapshot_json () =
  let module J = Fbb_util.Json in
  let num_or_null v = if Float.is_finite v then J.Num v else J.Null in
  let hist_entry h =
    let pct p =
      match Histogram.percentile_opt h p with
      | Some v -> J.Num v
      | None -> J.Null
    in
    ( Histogram.name h,
      J.Obj
        [
          ("count", J.Num (float_of_int (Histogram.count h)));
          ("mean_s", num_or_null (Histogram.mean h));
          ("p50_s", pct 0.50);
          ("p90_s", pct 0.90);
          ("p99_s", pct 0.99);
          ("max_s", J.Num (Histogram.max_value h));
        ] )
  in
  J.Obj
    [
      ("schema", J.Str "fbb-telemetry-1");
      ("ts_unix", J.Num (Clock.now_unix ()));
      ( "counters",
        J.Obj
          (List.map
             (fun (n, v) -> (n, J.Num (float_of_int v)))
             (Counter.totals ())) );
      ( "gauges",
        J.Obj (List.map (fun (n, v) -> (n, num_or_null v)) (Counter.Gauge.values ())) );
      ( "histograms",
        J.Obj
          (Histogram.registered ()
          |> List.filter (fun h -> Histogram.count h > 0)
          |> List.map hist_entry) );
      ( "series",
        J.Obj
          (List.map
             (fun sr ->
               ( Series.name sr,
                 J.Arr
                   (Series.points sr |> Array.to_list
                   |> List.map (fun (ts, v) ->
                          J.Arr [ J.Num ts; num_or_null v ])) ))
             (Series.registered ())) );
    ]

(* ----- HTTP/1.0 server -------------------------------------------------- *)

type server = {
  sock : Unix.file_descr;
  port : int;
  sstop : bool Atomic.t;
  mutable sthread : Thread.t option;
}

let scrapes = lazy (Counter.make "obs.telemetry.scrapes")

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      let w = Unix.write_substring fd s off (n - off) in
      go (off + w)
  in
  go 0

let respond fd status ctype body =
  let head =
    Printf.sprintf
      "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      status ctype (String.length body)
  in
  write_all fd (head ^ body)

(* Read until the blank line ending the request head (we never expect a
   body on GET), bounded so a garbage client cannot balloon memory. *)
let read_request fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > 8192 then Buffer.contents buf
    else
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n = 0 then Buffer.contents buf
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        if
          (* header terminator seen? *)
          let rec find i =
            if i + 3 >= String.length s then false
            else if String.sub s i 4 = "\r\n\r\n" then true
            else find (i + 1)
          in
          find 0
        then s
        else go ()
      end
  in
  go ()

(* %XX-decode a path component: trace ids are client-supplied request
   ids, which a careful client will percent-encode. *)
let percent_decode s =
  let n = String.length s in
  let b = Buffer.create n in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        match (hex s.[i + 1], hex s.[i + 2]) with
        | Some h, Some l ->
          Buffer.add_char b (Char.chr ((h * 16) + l));
          go (i + 3)
        | _ ->
          Buffer.add_char b s.[i];
          go (i + 1)
      end
      else begin
        Buffer.add_char b s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents b

(* /request/<trace-id>.json → the trace id, if the path has that shape. *)
let request_path_trace path =
  let prefix = "/request/" and suffix = ".json" in
  let lp = String.length prefix and ls = String.length suffix in
  let n = String.length path in
  if
    n > lp + ls
    && String.sub path 0 lp = prefix
    && String.sub path (n - ls) ls = suffix
  then Some (percent_decode (String.sub path lp (n - lp - ls)))
  else None

let handle_conn fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0;
  let req = read_request fd in
  let first_line =
    match String.index_opt req '\r' with
    | Some i -> String.sub req 0 i
    | None -> req
  in
  match String.split_on_char ' ' first_line with
  | "GET" :: path :: _ -> (
    Counter.incr (Lazy.force scrapes);
    match path with
    | "/metrics" ->
      respond fd "200 OK" "text/plain; version=0.0.4; charset=utf-8"
        (Promtext.render ())
    | "/snapshot.json" ->
      respond fd "200 OK" "application/json"
        (Fbb_util.Json.to_string (snapshot_json ()) ^ "\n")
    | "/healthz" -> respond fd "200 OK" "text/plain" "ok\n"
    | "/requests" ->
      respond fd "200 OK" "application/json"
        (Fbb_util.Json.to_string (Flight.index_json ()) ^ "\n")
    | "/slo.json" ->
      respond fd "200 OK" "application/json"
        (Fbb_util.Json.to_string (Slo.to_json ()) ^ "\n")
    | path -> (
      match request_path_trace path with
      | Some trace -> (
        match Flight.record_json trace with
        | Some j ->
          respond fd "200 OK" "application/json"
            (Fbb_util.Json.to_string j ^ "\n")
        | None ->
          respond fd "404 Not Found" "text/plain" "no such request\n")
      | None -> respond fd "404 Not Found" "text/plain" "not found\n"))
  | _ :: _ :: _ -> respond fd "405 Method Not Allowed" "text/plain" "GET only\n"
  | _ -> respond fd "400 Bad Request" "text/plain" "bad request\n"

let rec accept_loop sock sstop =
  match Unix.accept sock with
  | fd, _ ->
    if Atomic.get sstop then (try Unix.close fd with _ -> ())
    else begin
      (try handle_conn fd with _ -> ());
      (try Unix.close fd with _ -> ())
    end;
    if not (Atomic.get sstop) then accept_loop sock sstop
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
    if not (Atomic.get sstop) then accept_loop sock sstop
  | exception _ ->
    (* Persistent accept failure: back off instead of spinning. *)
    if not (Atomic.get sstop) then begin
      Thread.delay 0.05;
      accept_loop sock sstop
    end

let serve ?(addr = "127.0.0.1") ~port () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
    Unix.listen sock 16
  with
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close sock with _ -> ());
    Error (Printf.sprintf "bind %s:%d: %s" addr port (Unix.error_message e))
  | () ->
    let port =
      (* port 0 asks the kernel for an ephemeral port; report the real one *)
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    let sstop = Atomic.make false in
    let srv = { sock; port; sstop; sthread = None } in
    srv.sthread <- Some (Thread.create (fun () -> accept_loop sock sstop) ());
    Ok srv

let port srv = srv.port

let shutdown srv =
  Atomic.set srv.sstop true;
  (* Wake the blocking accept with a throwaway self-connection. *)
  (try
     let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
     Fun.protect
       ~finally:(fun () -> try Unix.close s with _ -> ())
       (fun () ->
         Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, srv.port)))
   with _ -> ());
  (match srv.sthread with Some t -> Thread.join t | None -> ());
  srv.sthread <- None;
  try Unix.close srv.sock with _ -> ()

(* ----- HTTP/1.0 client -------------------------------------------------- *)

let parse_url url =
  let prefix = "http://" in
  if not (String.length url > String.length prefix
          && String.sub url 0 (String.length prefix) = prefix)
  then Error (Printf.sprintf "unsupported url (want http://...): %s" url)
  else begin
    let rest =
      String.sub url (String.length prefix)
        (String.length url - String.length prefix)
    in
    let hostport, path =
      match String.index_opt rest '/' with
      | Some i ->
        (String.sub rest 0 i, String.sub rest i (String.length rest - i))
      | None -> (rest, "/")
    in
    match String.index_opt hostport ':' with
    | Some i -> (
      let host = String.sub hostport 0 i in
      let p = String.sub hostport (i + 1) (String.length hostport - i - 1) in
      match int_of_string_opt p with
      | Some port -> Ok (host, port, path)
      | None -> Error ("bad port in url: " ^ url))
    | None -> Ok (hostport, 80, path)
  end

let read_all fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    let n = Unix.read fd chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let http_get ?(timeout_s = 5.0) url =
  match parse_url url with
  | Error _ as e -> e
  | Ok (host, port, path) -> (
    match
      let addr =
        try Unix.inet_addr_of_string host
        with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
          Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s;
          Unix.connect fd (Unix.ADDR_INET (addr, port));
          write_all fd
            (Printf.sprintf "GET %s HTTP/1.0\r\nHost: %s\r\nConnection: close\r\n\r\n"
               path host);
          read_all fd)
    with
    | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" url (Unix.error_message e))
    | exception Not_found -> Error ("unknown host: " ^ host)
    | resp -> (
      let head, body =
        match
          let rec find i =
            if i + 3 >= String.length resp then None
            else if String.sub resp i 4 = "\r\n\r\n" then Some i
            else find (i + 1)
          in
          find 0
        with
        | Some i ->
          ( String.sub resp 0 i,
            String.sub resp (i + 4) (String.length resp - i - 4) )
        | None -> (resp, "")
      in
      let status_line =
        match String.index_opt head '\r' with
        | Some i -> String.sub head 0 i
        | None -> head
      in
      match String.split_on_char ' ' status_line with
      | _ :: "200" :: _ -> Ok body
      | _ :: code :: _ -> Error (Printf.sprintf "%s: HTTP %s" url code)
      | _ -> Error (Printf.sprintf "%s: malformed response" url)))
