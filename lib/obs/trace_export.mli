(** Offline converters for JSONL traces recorded with {!Jsonl}:
    Chrome [trace_event] JSON (Perfetto / chrome://tracing), folded
    flamegraph stacks, and a statistics report. Driven by
    [fbbopt trace convert|flame|stats]. *)

val parse_line : string -> (Event.t, string) result
(** Parse one JSONL trace line. [depth]/[dom] default to 0 and [trace]
    to [""] when absent, so traces recorded before those fields
    existed still convert. *)

val load : ?on_truncated:(string -> unit) -> string -> Event.t list
(** Read a whole trace file; blank lines are skipped. Raises [Failure
    "<path>:<line>: <msg>"] on a malformed line — {e except} when the
    malformed line is the file's last non-blank line, the signature of
    a writer killed mid-append: then the intact prefix is returned and
    [on_truncated] (default: print to stderr) is told what was lost. *)

val filter_trace : trace:string -> Event.t list -> Event.t list
(** Restrict a stream to one request: span events whose trace id
    equals [trace]. Process-global events (counters, gauges, histogram
    observations, GC samples) carry no trace id and are dropped.
    Backs [fbbopt trace convert --trace-id]. *)

val to_chrome : Event.t list -> Fbb_util.Json.t
(** Chrome trace_event document: [{"traceEvents": [...]}] with spans
    as B/E pairs (one [tid] per domain, timestamps rescaled to
    microseconds), counters integrated from deltas onto "C" tracks,
    gauges as "C" values, histogram observations and GC samples as
    instant events with their payload in [args]. Tolerates unbalanced
    traces (Perfetto auto-closes spans cut short). *)

val to_folded : Event.t list -> (string * float) list
(** Folded stacks with self-time in seconds: [("a;b;c", self_s)],
    sorted by stack. Self time is the span's duration minus its direct
    children's durations, accumulated per distinct stack; stacks are
    tracked per domain and prefixed with ["d<dom>"] when the trace
    involves more than one. Spans that never closed are dropped. *)

val folded_to_string : (string * float) list -> string
(** Render folded stacks as "stack <self microseconds>" lines (integer
    counts, as flamegraph.pl / inferno expect). *)

val stats : Event.t list -> string
(** Replay the events through an {!Aggregate} and render its report,
    prefixed with stream-level facts: per-phase event counts and span
    balance (mismatched ends, spans never closed). *)
