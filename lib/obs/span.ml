(* Hierarchical timed spans. [with_ ~name f] is the only primitive: it
   nests, it is exception-safe (the end event is emitted even when [f]
   raises, so traces stay balanced), and with no sink installed it is a
   single atomic load and a tail call - the hot path pays nothing.

   Each domain keeps its own nesting depth in domain-local storage, so
   spans opened inside pool workers nest correctly against their own
   ancestry instead of racing over one global stack; the per-domain
   stacks merge into the shared stream when [Sink.emit] serializes the
   begin/end events at span boundaries. *)

let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let current_depth () = !(Domain.DLS.get depth_key)

let with_ ~name f =
  match Sink.installed () with
  | None -> f ()
  | Some _ ->
    (* Attribute increments made outside this span to its parent. *)
    Counter.flush_pending ();
    let depth = Domain.DLS.get depth_key in
    let d = !depth in
    depth := d + 1;
    let t0 = Clock.now_s () in
    Sink.emit (Event.Span_begin { name; ts = t0; depth = d });
    let finish () =
      Counter.flush_pending ();
      let t1 = Clock.now_s () in
      depth := d;
      Sink.emit (Event.Span_end { name; ts = t1; dur_s = t1 -. t0; depth = d })
    in
    (match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e)
