(* Hierarchical timed spans. [with_ ~name f] is the only primitive: it
   nests, it is exception-safe (the end event is emitted even when [f]
   raises, so traces stay balanced), and with no sink installed it is a
   single atomic load and a tail call - the hot path pays nothing.

   Each domain keeps its own nesting depth in domain-local storage, so
   spans opened inside pool workers nest correctly against their own
   ancestry instead of racing over one global stack; every span event
   carries its domain id, so the per-domain stacks can be rebuilt from
   the shared stream that [Sink.emit] serializes at span boundaries.

   Beyond the begin/end pair, closing a span (with a sink installed)
   also records its duration into the registry histogram of the same
   name (one [Hist_record] event, giving p50/p90/p99 per span name for
   free) and, unless [Gcprof.set_enabled false], emits a [Gc_sample]
   with the GC-counter deltas across the span on this domain. *)

let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let current_depth () = !(Domain.DLS.get depth_key)

let with_ ~name f =
  match Sink.installed () with
  | None -> f ()
  | Some _ ->
    (* Attribute increments made outside this span to its parent. *)
    Counter.flush_pending ();
    let depth = Domain.DLS.get depth_key in
    let d = !depth in
    depth := d + 1;
    let dom = (Domain.self () :> int) in
    (* The trace id travels in the domain-local Context (re-established
       on workers by Pool), so spans from parallel sections attach to
       the request that spawned them. *)
    let trace = Context.trace_id () in
    Context.push_span name;
    let gc0 = if Gcprof.enabled () then Some (Gcprof.sample ()) else None in
    let t0 = Clock.now_s () in
    Sink.emit (Event.Span_begin { name; ts = t0; depth = d; dom; trace });
    let finish () =
      Counter.flush_pending ();
      let t1 = Clock.now_s () in
      depth := d;
      Context.pop_span ();
      let dur_s = t1 -. t0 in
      Sink.emit (Event.Span_end { name; ts = t1; dur_s; depth = d; dom; trace });
      Histogram.record (Histogram.make name) dur_s;
      Option.iter (Gcprof.emit_span_delta ~name ~ts:t1) gc0
    in
    (match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e)
