(* Hierarchical timed spans. [with_ ~name f] is the only primitive: it
   nests, it is exception-safe (the end event is emitted even when [f]
   raises, so traces stay balanced), and with no sink installed it is a
   single ref read and a tail call - the hot path pays nothing. *)

let depth = ref 0

let current_depth () = !depth

let with_ ~name f =
  match !Sink.installed with
  | None -> f ()
  | Some sink ->
    (* Attribute increments made outside this span to its parent. *)
    Counter.flush_pending ();
    let d = !depth in
    depth := d + 1;
    let t0 = Clock.now_s () in
    sink.emit (Event.Span_begin { name; ts = t0; depth = d });
    let finish () =
      Counter.flush_pending ();
      let t1 = Clock.now_s () in
      depth := d;
      sink.emit (Event.Span_end { name; ts = t1; dur_s = t1 -. t0; depth = d })
    in
    (match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e)
