(** Monotonic time base for spans and traces.

    Timestamps are seconds since the first clock read of the process
    (CLOCK_MONOTONIC underneath), so traces start near zero and are
    immune to wall-clock adjustments. *)

val now_ns : unit -> int64
(** Nanoseconds since process epoch. *)

val now_s : unit -> float
(** Seconds since process epoch. *)
