(** Monotonic time base for spans and traces.

    Timestamps are seconds since the first clock read of the process
    (CLOCK_MONOTONIC underneath), so traces start near zero and are
    immune to wall-clock adjustments. *)

val now_ns : unit -> int64
(** Nanoseconds since process epoch. *)

val now_s : unit -> float
(** Seconds since process epoch. *)

val now_unix : unit -> float
(** Wall-clock seconds since the Unix epoch ([Unix.gettimeofday]).
    Only for data that leaves the process — telemetry snapshots,
    Prometheus exposition — never for span timestamps or durations,
    which must survive wall-clock adjustments. *)
