(** Per-span GC attribution via [Gc.quick_stat] deltas.

    When a sink is installed and GC profiling is enabled (the
    default), {!Span.with_} snapshots the domain's GC counters at
    span open and emits an {!Event.Gc_sample} with the delta at span
    close — minor/major words allocated, collections run — plus the
    absolute [top_heap_words] high-water mark. Nested spans report
    inclusive deltas, like durations. *)

type sample = {
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  top_heap_words : int;
}

val set_enabled : bool -> unit
(** Turn per-span GC sampling off (or back on) independently of the
    sink — e.g. micro-benchmarks that want spans without the two
    [Gc.quick_stat] calls per span. Default: enabled. *)

val enabled : unit -> bool

val sample : unit -> sample
(** The calling domain's current GC counters (no collection forced). *)

val delta : before:sample -> after:sample -> sample
(** Per-field difference, clamped at zero; [top_heap_words] is
    [after]'s absolute value. *)

val emit_span_delta : name:string -> ts:float -> sample -> unit
(** [emit_span_delta ~name ~ts before] samples now and emits the delta
    against [before] as a [Gc_sample] attributed to span [name].
    Called by [Span.with_]; exposed for custom instrumentation. *)
