(** The live telemetry plane: background sampler + HTTP exposition.

    The sampler turns the cumulative registries into {!Series} rings of
    per-tick readings — counter deltas ([counter.<name>]), gauge values
    ([gauge.<name>]) and interval histogram percentiles computed by
    merge-diffing cumulative snapshots ([hist.<name>.p50_s], [.p99_s],
    [.rate]) — and publishes its own cost as [obs.telemetry.ticks],
    [.busy_s] and [.overhead_pct] gauges. It only ever {e reads} solver
    state, so enabling telemetry cannot change results (the determinism
    suite enforces this).

    Each pass also evaluates the registered {!Slo} objectives over the
    rings it just pushed, publishing [slo.*] burn-rate gauges.

    The server is a minimal HTTP/1.0 endpoint (the seed of [fbbd])
    serving [GET /metrics] (Prometheus text, {!Promtext}),
    [GET /snapshot.json] (registries + series as JSON),
    [GET /requests] and [GET /request/<trace-id>.json] (the {!Flight}
    recorder's index and full records; the trace id may be
    percent-encoded), [GET /slo.json] ({!Slo.to_json}) and
    [GET /healthz]. Connections are handled serially — scrape traffic,
    not request traffic. *)

(** {2 Sampler} *)

type sampler

val create : ?tick_s:float -> unit -> sampler
(** A sampler with no thread — ticks only via {!sample_now}. For tests
    and tools that want deterministic sampling points. [tick_s]
    defaults to 0.5 and must be positive. *)

val start : ?tick_s:float -> unit -> sampler
(** [create] plus a background domain sampling every [tick_s] seconds.
    A domain, not a systhread: passes run in true parallel with the
    workload instead of contending for the main domain's runtime
    lock, so telemetry never steals mutator time and its published
    overhead is an honest measurement. *)

val sample_now : sampler -> unit
(** Run one sampling pass synchronously (serialized against the
    background domain). *)

val stop : sampler -> unit
(** Stop and join the background domain (if any), then run one final
    pass so short runs still publish complete series and overhead
    gauges. *)

val overhead_pct : sampler -> float
(** Sampling cost so far as a percentage of the sampler's lifetime —
    the same number published as the [obs.telemetry.overhead_pct]
    gauge. *)

val snapshot_json : unit -> Fbb_util.Json.t
(** The full telemetry state — counters, gauges, histogram summaries,
    series points — as one JSON document (schema ["fbb-telemetry-1"]).
    Non-finite values (idle-tick percentiles) render as [null]. *)

(** {2 HTTP server} *)

type server

val serve : ?addr:string -> port:int -> unit -> (server, string) result
(** Bind [addr] (default ["127.0.0.1"]) and serve on [port] from a
    background thread. [port = 0] picks an ephemeral port — read it
    back with {!port}. [Error] carries the bind/listen failure. *)

val port : server -> int

val shutdown : server -> unit
(** Stop accepting, wake and join the listener thread, close the
    socket. Idempotent in effect; safe while a scrape is in flight. *)

(** {2 HTTP client}

    Enough HTTP/1.0 for [fbbopt top] and the test suite to scrape the
    server without external tooling. *)

val http_get : ?timeout_s:float -> string -> (string, string) result
(** [http_get "http://host:port/path"] returns the response body of a
    200, [Error] otherwise (connection failure, timeout, non-200). *)
