(* Monotonic time base for spans and traces. All timestamps are seconds
   since [epoch_ns], the first clock read of the process, so traces start
   near zero and survive wall-clock adjustments (NTP, DST). The underlying
   source is CLOCK_MONOTONIC via a noalloc C stub. *)

let epoch_ns = Monotonic_clock.now ()

let now_ns () = Int64.sub (Monotonic_clock.now ()) epoch_ns

let now_s () = Int64.to_float (now_ns ()) /. 1e9

(* Wall-clock time, for artifacts that leave the process: telemetry
   snapshots and Prometheus exposition are correlated with other hosts'
   data, where "seconds since our process started" means nothing. Spans
   stay on the monotonic clock above. *)
let now_unix () = Unix.gettimeofday ()
