(* Time-series ring buffers: the last [cap] (timestamp, value) samples
   of one metric, written by the single telemetry sampler thread and
   read lock-free by scrapers and the [fbbopt top] dashboard.

   The ring is a pair of plain float arrays plus an atomic monotone
   write cursor. The writer fills the slot and then publishes it by
   bumping [head]; a reader snapshots [head] and walks backwards. A
   reader racing the writer can see the oldest slot(s) of its snapshot
   already overwritten with newer samples - a torn read across the
   ring, never within the atomic cursor - which for a dashboard means
   one transiently out-of-order point at the seam. We accept that: the
   alternative is a lock on every scrape of every series.

   Timestamps are wall-clock ([Clock.now_unix]) because series leave
   the process through /snapshot.json. *)

type t = {
  name : string;
  cap : int;
  ts : float array;
  v : float array;
  head : int Atomic.t;  (* total samples ever pushed, next slot = head mod cap *)
}

let default_cap = 240

let create ?(cap = default_cap) name =
  if cap <= 0 then invalid_arg "Series.create: cap must be positive";
  {
    name;
    cap;
    ts = Array.make cap 0.0;
    v = Array.make cap 0.0;
    head = Atomic.make 0;
  }

let name t = t.name
let capacity t = t.cap
let length t = min (Atomic.get t.head) t.cap

let push t ~ts v =
  let h = Atomic.get t.head in
  let i = h mod t.cap in
  t.ts.(i) <- ts;
  t.v.(i) <- v;
  Atomic.set t.head (h + 1)

let points t =
  let h = Atomic.get t.head in
  let n = min h t.cap in
  Array.init n (fun k ->
      let i = (h - n + k) mod t.cap in
      (t.ts.(i), t.v.(i)))

let values t = Array.map snd (points t)

let last t =
  let h = Atomic.get t.head in
  if h = 0 then None
  else
    let i = (h - 1) mod t.cap in
    Some (t.ts.(i), t.v.(i))

(* ----- registry (same discipline as Counter / Histogram) --------------- *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 32
let registry_mutex = Mutex.create ()
let order : t list ref = ref []

let make ?cap name =
  Mutex.lock registry_mutex;
  let s =
    match Hashtbl.find_opt registry name with
    | Some s -> s
    | None ->
      let s = create ?cap name in
      Hashtbl.add registry name s;
      order := s :: !order;
      s
  in
  Mutex.unlock registry_mutex;
  s

let reset t =
  Atomic.set t.head 0

let reset_all () = Hashtbl.iter (fun _ s -> reset s) registry

let registered () = List.rev !order
