(** Named monotonic counters and float gauges.

    Counters accumulate unconditionally (two atomic adds per {!add}),
    so totals are readable without any sink and exact even when
    increments come from pool worker domains running in parallel;
    pending deltas are turned into {!Event.Counter_add} events at span
    boundaries when a sink is installed. Registration is idempotent
    and thread-safe: [make name] returns the existing counter if the
    name is taken. *)

type t

val make : string -> t
val add : t -> int -> unit
val incr : t -> unit
val read : t -> int
val name : t -> string

val reset : t -> unit
val reset_all : unit -> unit

val flush_pending : unit -> unit
(** Emit one [Counter_add] per counter with a non-zero pending delta.
    Called by [Span.with_] at every span boundary; no-op without a
    sink. *)

val totals : unit -> (string * int) list
(** Non-zero totals in first-registration order. *)

module Gauge : sig
  type g

  val make : string -> g
  val set : g -> float -> unit
  val read : g -> float
  val reset_all : unit -> unit

  val values : unit -> (string * float) list
  (** Last value of every gauge that has been set, in registration
      order. *)
end
