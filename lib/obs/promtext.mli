(** Prometheus text exposition (format 0.0.4) over the live
    registries, and a validator for the same format.

    Counters render as [<name>_total] counters, gauges as gauges, and
    non-empty registry histograms as summaries carrying p50/p90/p99
    quantiles plus [_sum]/[_count]. Metric names are sanitized by
    {!metric_name}. *)

val metric_name : string -> string
(** Map a registry name to a legal Prometheus metric name: every
    character outside [[a-zA-Z0-9_:]] becomes ['_'] and the result is
    prefixed ["fbb_"] (e.g. ["par.tasks"] → ["fbb_par_tasks"]). *)

val render : unit -> string
(** The full exposition page for the current registry state. Always
    includes [fbb_obs_scrape_time_unix_seconds]; empty histograms are
    skipped. *)

val validate : string -> (unit, string) result
(** Check a text page against the exposition format: HELP/TYPE comment
    shape, metric-name syntax, label-block syntax, float values
    (including [NaN]/[+Inf]/[-Inf]) and optional integer timestamps.
    [Error] carries the first offending 1-based line number. Used by
    [fbbopt scrape] and the CI smoke test in place of a real
    Prometheus. *)
