(** Prometheus text exposition (format 0.0.4, plus OpenMetrics
    exemplars) over the live registries, and a validator for the same
    format.

    Counters render as [<name>_total] counters, gauges as gauges, and
    non-empty registry histograms as summaries carrying p50/p90/p99
    quantiles plus [_sum]/[_count]. Histograms with
    {!Histogram.enable_exemplars} render instead as histograms: one
    [_bucket{le="..."}] line per non-empty bucket (cumulative counts),
    each carrying its last trace id in OpenMetrics exemplar syntax
    ([... # {trace_id="..."} value ts]) so a scraped percentile links
    to one concrete request. Metric names are sanitized by
    {!metric_name}. *)

val metric_name : string -> string
(** Map a registry name to a legal Prometheus metric name: every
    character outside [[a-zA-Z0-9_:]] becomes ['_'] and the result is
    prefixed ["fbb_"] (e.g. ["par.tasks"] → ["fbb_par_tasks"]). *)

val render : unit -> string
(** The full exposition page for the current registry state. Always
    includes [fbb_obs_scrape_time_unix_seconds]; empty histograms are
    skipped. *)

val validate : string -> (unit, string) result
(** Check a text page against the exposition format: HELP/TYPE comment
    shape (at most one HELP and one TYPE block per metric name, so a
    sanitization collision between two registry names is caught),
    metric-name syntax, label-block syntax, float values (including
    [NaN]/[+Inf]/[-Inf]), optional integer timestamps, and OpenMetrics
    exemplar sections ([# {labels} value [ts]]; only legal on
    [_bucket]/[_total] samples). [Error] carries the first offending
    1-based line number. Used by [fbbopt scrape] and the CI smoke test
    in place of a real Prometheus. *)
