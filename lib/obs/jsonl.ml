(* JSONL trace sink: one event per line, append-only, suitable for
   offline analysis (jq, pandas) or conversion to the Chrome trace_event
   format (the "ph" letters already match; timestamps are seconds). *)

type t = { oc : out_channel; mutable closed : bool }

let create path = { oc = open_out path; closed = false }

let sink t =
  {
    Sink.emit =
      (fun ev ->
        if not t.closed then begin
          output_string t.oc (Event.to_json ev);
          output_char t.oc '\n'
        end);
    flush = (fun () -> if not t.closed then flush t.oc);
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_out t.oc
  end
