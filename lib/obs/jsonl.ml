(* JSONL trace sink: one event per line, append-only, suitable for
   offline analysis (jq, pandas) or conversion with {!Trace_export} to
   the Chrome trace_event format (the "ph" letters already match;
   timestamps are seconds).

   [close] flushes and fsyncs before closing the descriptor: a trace is
   usually the evidence for a crash or a perf regression, so it must
   survive whatever happens to the process right after. *)

type t = { oc : out_channel; mutable closed : bool }

let create path = { oc = open_out path; closed = false }

let sink t =
  {
    Sink.emit =
      (fun ev ->
        if not t.closed then begin
          output_string t.oc (Event.to_json ev);
          output_char t.oc '\n'
        end);
    flush = (fun () -> if not t.closed then flush t.oc);
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    flush t.oc;
    (try Unix.fsync (Unix.descr_of_out_channel t.oc)
     with Unix.Unix_error _ -> () (* e.g. a pipe; durability is best-effort *));
    close_out t.oc
  end
