(** In-memory aggregating sink: per-span-name duration statistics
    (count / total / mean / max from span events, p50/p90/p99 from the
    histogram stream), per-span GC deltas, counter totals and last
    gauge values, rendered as a text report or CSV. Cells with no data
    (a span with no histogram or GC events) render as "-". *)

type t

val create : unit -> t
val sink : t -> Sink.t

val span_stat : t -> string -> (int * float * float) option
(** [(count, total_s, max_s)] for a span name, if ever completed. *)

val span_total : t -> string -> float option
val counter_total : t -> string -> int option

val histogram : t -> string -> Histogram.t option
(** The aggregated value distribution for a histogram name (span
    durations use the span's name), if any [Hist_record] was seen. *)

val span_percentiles : t -> string -> (float * float * float) option
(** [(p50, p90, p99)] seconds for a span name. *)

val gc_stat : t -> string -> Gcprof.sample option
(** Summed GC deltas attributed to a span name ([top_heap_words] is
    the max seen). *)

val span_rows : t -> (string * int * float * float * float) list
(** [(name, count, total_s, mean_s, max_s)], heaviest first. *)

val counter_rows : t -> (string * int) list
val gauge_rows : t -> (string * float) list

val gc_rows : t -> (string * Gcprof.sample) list
(** Per-span GC deltas in first-completion span order. *)

val report : t -> string
(** Per-stage text report (Fbb_util.Texttab tables). *)

val to_csv : t -> Fbb_util.Csv.t
(** Machine-readable dump: kind,name,count,total_s,mean_s,p50_s,p90_s,
    p99_s,max_s,gc_minor_words,gc_major_words. *)
