(** In-memory aggregating sink: per-span-name duration statistics
    (count / total / mean / max), counter totals and last gauge values,
    rendered as a text report or CSV. *)

type t

val create : unit -> t
val sink : t -> Sink.t

val span_stat : t -> string -> (int * float * float) option
(** [(count, total_s, max_s)] for a span name, if ever completed. *)

val span_total : t -> string -> float option
val counter_total : t -> string -> int option

val span_rows : t -> (string * int * float * float * float) list
(** [(name, count, total_s, mean_s, max_s)], heaviest first. *)

val counter_rows : t -> (string * int) list
val gauge_rows : t -> (string * float) list

val report : t -> string
(** Per-stage text report (Fbb_util.Texttab tables). *)

val to_csv : t -> Fbb_util.Csv.t
(** Machine-readable dump: kind,name,count,total_s,mean_s,max_s. *)
