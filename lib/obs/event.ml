(* The observability event model. Every instrumentation primitive reduces
   to one of four events; sinks only ever see this type, so adding a sink
   never touches instrumented code.

   Span begin/end events always come in balanced pairs (Span.with_ emits
   the end even when the body raises). Counter events carry deltas, not
   totals: they are flushed at span boundaries so a trace attributes each
   increment to the innermost span that was open when it happened. *)

type t =
  | Span_begin of { name : string; ts : float; depth : int }
  | Span_end of { name : string; ts : float; dur_s : float; depth : int }
  | Counter_add of { name : string; delta : int; ts : float }
  | Gauge_set of { name : string; value : float; ts : float }

let name = function
  | Span_begin { name; _ }
  | Span_end { name; _ }
  | Counter_add { name; _ }
  | Gauge_set { name; _ } -> name

let ts = function
  | Span_begin { ts; _ }
  | Span_end { ts; _ }
  | Counter_add { ts; _ }
  | Gauge_set { ts; _ } -> ts

(* Minimal JSON string escaping; names are controlled identifiers but a
   sink must never emit an unparseable line whatever it is handed. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* One JSON object per event. "ph" mirrors the Chrome trace_event phase
   letters (B/E/C and an extra "G" for gauges) so a converter only has to
   rescale timestamps to microseconds. *)
let to_json ev =
  match ev with
  | Span_begin { name; ts; depth } ->
    Printf.sprintf {|{"ph":"B","name":"%s","ts":%.9f,"depth":%d}|}
      (escape name) ts depth
  | Span_end { name; ts; dur_s; depth } ->
    Printf.sprintf {|{"ph":"E","name":"%s","ts":%.9f,"dur_s":%.9f,"depth":%d}|}
      (escape name) ts dur_s depth
  | Counter_add { name; delta; ts } ->
    Printf.sprintf {|{"ph":"C","name":"%s","ts":%.9f,"delta":%d}|}
      (escape name) ts delta
  | Gauge_set { name; value; ts } ->
    Printf.sprintf {|{"ph":"G","name":"%s","ts":%.9f,"value":%.9g}|}
      (escape name) ts value
