(* The observability event model. Every instrumentation primitive reduces
   to one of six events; sinks only ever see this type, so adding a sink
   never touches instrumented code.

   Span begin/end events always come in balanced pairs (Span.with_ emits
   the end even when the body raises) and carry the integer id of the
   domain that ran them, so offline converters can rebuild one coherent
   stack per domain from the interleaved stream. Counter events carry
   deltas, not totals: they are flushed at span boundaries so a trace
   attributes each increment to the innermost span that was open when it
   happened. Hist_record carries one observed value (span durations are
   recorded automatically; any code can record into its own histogram);
   Gc_sample carries the GC-counter deltas across one span, measured on
   the span's own domain. *)

type t =
  | Span_begin of {
      name : string;
      ts : float;
      depth : int;
      dom : int;
      trace : string;  (* originating request's trace id; "" untraced *)
    }
  | Span_end of {
      name : string;
      ts : float;
      dur_s : float;
      depth : int;
      dom : int;
      trace : string;
    }
  | Counter_add of { name : string; delta : int; ts : float }
  | Gauge_set of { name : string; value : float; ts : float }
  | Hist_record of { name : string; value : float; ts : float }
  | Gc_sample of {
      name : string;  (* the span the deltas are attributed to *)
      minor_words : float;
      major_words : float;
      minor_collections : int;
      major_collections : int;
      top_heap_words : int;  (* absolute high-water mark, not a delta *)
      ts : float;
    }

let name = function
  | Span_begin { name; _ }
  | Span_end { name; _ }
  | Counter_add { name; _ }
  | Gauge_set { name; _ }
  | Hist_record { name; _ }
  | Gc_sample { name; _ } -> name

let ts = function
  | Span_begin { ts; _ }
  | Span_end { ts; _ }
  | Counter_add { ts; _ }
  | Gauge_set { ts; _ }
  | Hist_record { ts; _ }
  | Gc_sample { ts; _ } -> ts

(* Minimal JSON string escaping; names are controlled identifiers but a
   sink must never emit an unparseable line whatever it is handed. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* One JSON object per event. "ph" mirrors the Chrome trace_event phase
   letters (B/E/C) plus our own extensions ("G" gauges, "H" histogram
   observations, "M" GC samples) so a converter only has to rescale
   timestamps to microseconds. *)
let to_json ev =
  (* Untraced spans omit the field entirely, keeping old-trace tooling
     and byte-for-byte output for non-request workloads unchanged. *)
  let trace_field trace =
    if trace = "" then "" else Printf.sprintf {|,"trace":"%s"|} (escape trace)
  in
  match ev with
  | Span_begin { name; ts; depth; dom; trace } ->
    Printf.sprintf {|{"ph":"B","name":"%s","ts":%.9f,"depth":%d,"dom":%d%s}|}
      (escape name) ts depth dom (trace_field trace)
  | Span_end { name; ts; dur_s; depth; dom; trace } ->
    Printf.sprintf
      {|{"ph":"E","name":"%s","ts":%.9f,"dur_s":%.9f,"depth":%d,"dom":%d%s}|}
      (escape name) ts dur_s depth dom (trace_field trace)
  | Counter_add { name; delta; ts } ->
    Printf.sprintf {|{"ph":"C","name":"%s","ts":%.9f,"delta":%d}|}
      (escape name) ts delta
  | Gauge_set { name; value; ts } ->
    Printf.sprintf {|{"ph":"G","name":"%s","ts":%.9f,"value":%.9g}|}
      (escape name) ts value
  | Hist_record { name; value; ts } ->
    Printf.sprintf {|{"ph":"H","name":"%s","ts":%.9f,"value":%.9g}|}
      (escape name) ts value
  | Gc_sample
      {
        name;
        minor_words;
        major_words;
        minor_collections;
        major_collections;
        top_heap_words;
        ts;
      } ->
    Printf.sprintf
      {|{"ph":"M","name":"%s","ts":%.9f,"minor_words":%.1f,"major_words":%.1f,"minor_collections":%d,"major_collections":%d,"top_heap_words":%d}|}
      (escape name) ts minor_words major_words minor_collections
      major_collections top_heap_words
