(** Pluggable event consumers.

    At most one sink is installed at a time; compose with {!tee} to fan
    out. The default state is no sink at all: instrumentation then costs
    one atomic load per span and two atomic adds per counter bump,
    keeping the uninstrumented hot path allocation-free.

    Event delivery is serialized through an internal mutex, so a sink
    written as single-threaded code (the aggregate's hashtables, the
    JSONL buffer) stays correct when spans and counters fire from pool
    worker domains. [install]/[clear] should bracket parallel sections
    rather than race with them. *)

type t = {
  emit : Event.t -> unit;
  flush : unit -> unit;  (** make buffered output durable *)
}

val null : t
(** Discards everything but still exercises the full event path (clock
    reads, counter flushes); [installed := None] is the cheaper default. *)

val tee : t -> t -> t

val installed : unit -> t option
(** The current sink (one atomic load). *)

val enabled : unit -> bool
val install : t -> unit

val clear : unit -> unit
(** Flush and uninstall the current sink, if any. *)

val emit : Event.t -> unit
val flush : unit -> unit

val with_installed : t -> (unit -> 'a) -> 'a
(** Run with the given sink installed; flushes it and restores the
    previous sink on exit (also on exception). *)

val suspended : (unit -> 'a) -> 'a
(** Run with no sink at all, restoring the previous one after; lets
    micro-benchmarks measure the uninstrumented path inside a traced
    harness. *)
