(** Lock-free log-bucketed histograms (HDR-style).

    Fixed log-linear bucket grid — 16 sub-buckets per power of two
    from 2^-40 to 2^24 (seconds, when used for latencies), plus a
    zero/negative bucket — with exact atomic count, sum and max kept
    alongside. All updates are atomic fetch-and-add or CAS retries, so
    domains observe concurrently without locks; percentile estimates
    carry at most one bucket width (6.25%) of relative error and are
    capped at the exact max.

    Like counters, histograms accumulate with or without a sink.
    {!Span.with_} records every span's duration into a registry
    histogram of the same name, so percentiles are available for every
    span wherever an {!Aggregate} report is rendered. *)

type t

val create : string -> t
(** A free-standing histogram (not registered). *)

val make : string -> t
(** Registry histogram: idempotent and thread-safe per name, like
    [Counter.make]. *)

val name : t -> string

val observe : ?exemplar:string -> t -> float -> unit
(** Record one value (lock-free; no event). Zero, negative and NaN
    values land in the dedicated bottom bucket and count toward
    [count] but not [max]. [?exemplar] attaches a trace id to the
    value's bucket when {!enable_exemplars} has been called
    (last-writer-wins; ignored otherwise, and when [""]). *)

(** {2 Exemplars}

    Each bucket can remember the trace id of the last observation that
    landed in it, so a scraped percentile links back to one concrete
    request. An exemplar is a single immutable block swapped with one
    atomic store: concurrent writers race by whole exemplars — a
    reader can never see the trace id of one observation with the
    value of another. *)

type exemplar = { ex_trace : string; ex_value : float; ex_ts : float }

val enable_exemplars : t -> unit
(** Allocate the per-bucket exemplar slots (idempotent). Call before
    concurrent observation starts: a racing observer may skip its
    exemplar while the array appears, never corrupt one. *)

val exemplars_enabled : t -> bool

val exemplar_of_bucket : t -> int -> exemplar option
(** The bucket's current exemplar ([None] out of range, when disabled,
    or when nothing traced landed there yet). *)

val exemplar_for : t -> float -> exemplar option
(** Exemplar of the bucket that value [v] falls into. *)

val bucket_upper : int -> float
(** Inclusive upper edge of bucket [i] on the log-linear grid (0.0 for
    the zero/negative bucket) — the [le] edge {!Promtext} renders. *)

val record : t -> float -> unit
(** [observe] plus an {!Event.Hist_record} emission when a sink is
    installed. Never call from inside a sink — it would re-enter the
    sink mutex; sinks use {!observe}. *)

val count : t -> int
val sum : t -> float
val max_value : t -> float
val mean : t -> float
(** NaN when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for p in [0,1]: smallest bucket upper edge whose
    cumulative count reaches rank [ceil (p * count)], capped at the
    exact max. NaN when empty. *)

val percentile_opt : t -> float -> float option
(** Like {!percentile} but [None] when the histogram is empty, so
    callers cannot mistake "no data" for a real latency. Dashboards
    render the [None] case as "-". *)

val p50 : t -> float
val p90 : t -> float
val p99 : t -> float

val nonzero_buckets : t -> (int * int) list
(** [(bucket index, count)] for every non-empty bucket, ascending —
    the full distribution state, for tests and serialization. *)

val merge_into : src:t -> dst:t -> unit
(** Add [src]'s buckets, count, sum into [dst]; max is the pairwise
    max. [src] is read atomically bucket-by-bucket, so merging a live
    histogram yields a consistent-enough snapshot. *)

val union : t -> t -> t
(** Fresh histogram holding the merge of both (named after the
    first). Associative and commutative on bucket counts, counts and
    maxes (float sums associate only approximately). *)

val copy : t -> t
(** Fresh free-standing snapshot of [t] (same name, not registered).
    Safe on a live histogram, with the same torn-but-monotone snapshot
    guarantee as {!merge_into}. *)

val interval_sub : newer:t -> older:t -> t
(** [interval_sub ~newer ~older] is the distribution of observations
    made between the [older] and [newer] cumulative snapshots of one
    histogram: bucket-wise and count differences clamped at zero.
    [max] is carried over from [newer] (cumulative — a true interval
    max is not recoverable), so interval percentiles remain capped by
    a real observed value. *)

(** {2 Plain snapshots}

    Allocation-light interval readings for the telemetry sampler.
    {!copy}/{!interval_sub} materialize full histograms (~1k [Atomic.t]
    cells — shared-heap allocations that contend with a parallel
    workload); a {!snapshot} is a plain array, so per-tick sampling of
    every active histogram stays in the microseconds. *)

type snapshot
(** An immutable, atomics-free copy of a histogram's cumulative
    state, owned by whoever took it. *)

val snapshot : t -> snapshot
(** Consistent-enough copy of a live histogram (same torn-but-monotone
    guarantee as {!merge_into}). *)

val snapshot_count : snapshot -> int
(** Cumulative observation count at snapshot time — compare across
    ticks to detect an idle histogram without touching its buckets. *)

val interval_count : ?since:snapshot -> snapshot -> int
(** Observations made between [since] and the newer snapshot (clamped
    at zero). Without [since]: since process start. *)

val interval_percentile : ?since:snapshot -> snapshot -> float -> float option
(** Percentile of the observations made between [since] and the newer
    snapshot, [None] when that interval is empty. Capped at the
    newer snapshot's cumulative max, like {!interval_sub}. *)

val reset : t -> unit
val reset_all : unit -> unit
(** Reset every registry histogram. *)

val registered : unit -> t list
(** Registry histograms in first-registration order. *)
