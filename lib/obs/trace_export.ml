(* Offline converters for JSONL traces.

   A trace recorded with the {!Jsonl} sink is a stream of one-line JSON
   events. This module parses it back into {!Event.t} and renders it as

   * Chrome [trace_event] JSON - load the output in Perfetto
     (https://ui.perfetto.dev) or chrome://tracing. Spans become B/E
     pairs on one track per domain; counters and gauges become "C"
     counter tracks; histogram observations and GC samples become
     instant events carrying their payload in [args].
   * folded flamegraph stacks - "a;b;c <self microseconds>" lines,
     ready for inferno / flamegraph.pl. Self time is a span's duration
     minus its children's; stacks are kept per domain.
   * a statistics report - the trace replayed through an {!Aggregate},
     plus stream-level facts (event counts, span balance).

   Parsing is tolerant where recording may have been cut short: [stats]
   reports unbalanced spans instead of failing, and the flamegraph
   drops frames that never closed. Malformed JSON is a hard error -
   the Jsonl sink never writes it, so it means the wrong file. *)

module Json = Fbb_util.Json

let int_field v k ~default =
  match Json.member_num k v with
  | Some f -> int_of_float f
  | None -> default

let parse_line line =
  match Json.parse_opt line with
  | None -> Error "malformed JSON"
  | Some v -> (
    match (Json.member_str "ph" v, Json.member_str "name" v) with
    | None, _ | _, None -> Error "missing \"ph\" or \"name\""
    | Some ph, Some name -> (
      let ts = Option.value (Json.member_num "ts" v) ~default:0.0 in
      let num k = Option.value (Json.member_num k v) ~default:0.0 in
      (* depth/dom default to 0 and trace to "" so traces from before
         those fields existed still convert. *)
      match ph with
      | "B" ->
        Ok
          (Event.Span_begin
             {
               name;
               ts;
               depth = int_field v "depth" ~default:0;
               dom = int_field v "dom" ~default:0;
               trace = Option.value (Json.member_str "trace" v) ~default:"";
             })
      | "E" ->
        Ok
          (Event.Span_end
             {
               name;
               ts;
               dur_s = num "dur_s";
               depth = int_field v "depth" ~default:0;
               dom = int_field v "dom" ~default:0;
               trace = Option.value (Json.member_str "trace" v) ~default:"";
             })
      | "C" ->
        Ok (Event.Counter_add { name; delta = int_field v "delta" ~default:0; ts })
      | "G" -> Ok (Event.Gauge_set { name; value = num "value"; ts })
      | "H" -> Ok (Event.Hist_record { name; value = num "value"; ts })
      | "M" ->
        Ok
          (Event.Gc_sample
             {
               name;
               minor_words = num "minor_words";
               major_words = num "major_words";
               minor_collections = int_field v "minor_collections" ~default:0;
               major_collections = int_field v "major_collections" ~default:0;
               top_heap_words = int_field v "top_heap_words" ~default:0;
               ts;
             })
      | ph -> Error (Printf.sprintf "unknown phase %S" ph)))

let default_on_truncated msg = Printf.eprintf "%s\n%!" msg

let load ?(on_truncated = default_on_truncated) path =
  let lines =
    In_channel.with_open_text path In_channel.input_lines |> Array.of_list
  in
  (* Index of the last non-blank line: a parse failure there is the
     signature of a write cut short (crash or kill mid-append), so the
     intact prefix is salvaged and the loss reported; a malformed line
     with valid lines after it is real corruption and still fails. *)
  let last = ref (-1) in
  Array.iteri (fun i l -> if String.trim l <> "" then last := i) lines;
  let events = ref [] in
  Array.iteri
    (fun i line ->
      if String.trim line <> "" then
        match parse_line line with
        | Ok ev -> events := ev :: !events
        | Error msg ->
          let msg = Printf.sprintf "%s:%d: %s" path (i + 1) msg in
          if i = !last then
            on_truncated
              (Printf.sprintf
                 "%s (truncated final line; salvaged %d events)" msg
                 (List.length !events))
          else failwith msg)
    lines;
  List.rev !events

(* ----- trace-id filter -------------------------------------------------- *)

(* Restrict a stream to one request: keep the span events stamped with
   [trace]. Counters, gauges, histogram observations and GC samples
   are process-global (no trace id) and are dropped — a filtered trace
   answers "what did this request do", not "what did the process do
   meanwhile". *)
let filter_trace ~trace events =
  List.filter
    (function
      | Event.Span_begin { trace = t; _ } | Event.Span_end { trace = t; _ } ->
        t = trace
      | Event.Counter_add _ | Event.Gauge_set _ | Event.Hist_record _
      | Event.Gc_sample _ -> false)
    events

(* ----- Chrome trace_event --------------------------------------------- *)

let us ts = ts *. 1e6

let to_chrome events =
  (* Chrome counter tracks plot totals; our Counter_add events carry
     deltas, so integrate per name as we go. *)
  let counter_totals : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
  let trace_events =
    List.map
      (fun ev ->
        let common ph name ts tid rest =
          Json.Obj
            ([
               ("name", Json.Str name);
               ("ph", Json.Str ph);
               ("ts", Json.Num (us ts));
               ("pid", Json.Num 1.0);
               ("tid", Json.Num (float_of_int tid));
             ]
            @ rest)
        in
        match ev with
        | Event.Span_begin { name; ts; depth; dom; trace } ->
          let args = [ ("depth", Json.Num (float_of_int depth)) ] in
          let args =
            if trace = "" then args else ("trace", Json.Str trace) :: args
          in
          common "B" name ts dom [ ("args", Json.Obj args) ]
        | Event.Span_end { name; ts; dom; _ } -> common "E" name ts dom []
        | Event.Counter_add { name; delta; ts } ->
          let r =
            match Hashtbl.find_opt counter_totals name with
            | Some r -> r
            | None ->
              let r = ref 0 in
              Hashtbl.add counter_totals name r;
              r
          in
          r := !r + delta;
          common "C" name ts 0
            [ ("args", Json.Obj [ ("value", Json.Num (float_of_int !r)) ]) ]
        | Event.Gauge_set { name; value; ts } ->
          common "C" name ts 0 [ ("args", Json.Obj [ ("value", Json.Num value) ]) ]
        | Event.Hist_record { name; value; ts } ->
          common "i" name ts 0
            [
              ("s", Json.Str "t");
              ("args", Json.Obj [ ("value", Json.Num value) ]);
            ]
        | Event.Gc_sample
            {
              name;
              minor_words;
              major_words;
              minor_collections;
              major_collections;
              top_heap_words;
              ts;
            } ->
          common "i" ("gc " ^ name) ts 0
            [
              ("s", Json.Str "t");
              ( "args",
                Json.Obj
                  [
                    ("minor_words", Json.Num minor_words);
                    ("major_words", Json.Num major_words);
                    ("minor_collections", Json.Num (float_of_int minor_collections));
                    ("major_collections", Json.Num (float_of_int major_collections));
                    ("top_heap_words", Json.Num (float_of_int top_heap_words));
                  ] );
            ])
      events
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr trace_events);
      ("displayTimeUnit", Json.Str "ms");
    ]

(* ----- folded flamegraph stacks ---------------------------------------- *)

let to_folded events =
  let doms =
    List.sort_uniq compare
      (List.filter_map
         (function
           | Event.Span_begin { dom; _ } | Event.Span_end { dom; _ } -> Some dom
           | _ -> None)
         events)
  in
  let multi_dom = List.length doms > 1 in
  (* Per-domain stack of (name, children's total seconds so far). *)
  let stacks : (int, (string * float ref) list ref) Hashtbl.t =
    Hashtbl.create 4
  in
  let stack dom =
    match Hashtbl.find_opt stacks dom with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks dom s;
      s
  in
  let folded : (string, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      match ev with
      | Event.Span_begin { name; dom; _ } ->
        let s = stack dom in
        s := (name, ref 0.0) :: !s
      | Event.Span_end { name; dur_s; dom; _ } -> begin
        let s = stack dom in
        match !s with
        | (top, children) :: rest when top = name ->
          s := rest;
          let self = Float.max 0.0 (dur_s -. !children) in
          (match rest with
          | (_, parent_children) :: _ ->
            parent_children := !parent_children +. dur_s
          | [] -> ());
          let frames = List.rev_map fst !s @ [ name ] in
          let frames =
            if multi_dom then Printf.sprintf "d%d" dom :: frames else frames
          in
          let key = String.concat ";" frames in
          Hashtbl.replace folded key
            (self +. Option.value (Hashtbl.find_opt folded key) ~default:0.0)
        | _ ->
          (* End with no matching begin: truncated head; skip. *)
          ()
      end
      | Event.Counter_add _ | Event.Gauge_set _ | Event.Hist_record _
      | Event.Gc_sample _ -> ())
    events;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) folded []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let folded_to_string folded =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (stack, self_s) ->
      (* flamegraph.pl wants integer sample counts; use microseconds. *)
      Buffer.add_string buf
        (Printf.sprintf "%s %.0f\n" stack (Float.round (us self_s))))
    folded;
  Buffer.contents buf

(* ----- statistics ------------------------------------------------------ *)

let stats events =
  let agg = Aggregate.create () in
  let s = Aggregate.sink agg in
  List.iter s.Sink.emit events;
  let begins = ref 0
  and ends = ref 0
  and counters = ref 0
  and gauges = ref 0
  and hists = ref 0
  and gcs = ref 0 in
  (* Per-domain balance: every begin must have a later end at the same
     depth with the same name. Replay the per-domain stacks. *)
  let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 4 in
  let unbalanced = ref 0 in
  List.iter
    (fun ev ->
      match ev with
      | Event.Span_begin { name; dom; _ } ->
        incr begins;
        let s =
          match Hashtbl.find_opt stacks dom with
          | Some s -> s
          | None ->
            let s = ref [] in
            Hashtbl.add stacks dom s;
            s
        in
        s := name :: !s
      | Event.Span_end { name; dom; _ } -> begin
        incr ends;
        match Hashtbl.find_opt stacks dom with
        | Some ({ contents = top :: rest } as s) when top = name -> s := rest
        | _ -> incr unbalanced
      end
      | Event.Counter_add _ -> incr counters
      | Event.Gauge_set _ -> incr gauges
      | Event.Hist_record _ -> incr hists
      | Event.Gc_sample _ -> incr gcs)
    events;
  let open_spans =
    Hashtbl.fold (fun _ s acc -> acc + List.length !s) stacks 0
  in
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "events: %d (%d span begin, %d span end, %d counter, %d gauge, %d \
     histogram, %d gc)\n"
    (List.length events) !begins !ends !counters !gauges !hists !gcs;
  if !unbalanced > 0 || open_spans > 0 then
    Printf.bprintf buf
      "WARNING: unbalanced spans: %d mismatched end(s), %d never closed\n"
      !unbalanced open_spans
  else Printf.bprintf buf "span stream balanced\n";
  Buffer.add_string buf (Aggregate.report agg);
  Buffer.contents buf
