(** Request flight recorder.

    A bounded, domain-safe store of recently served requests — full
    span tree, counter deltas, per-stage cascade accounting, queue
    wait and latency — keyed by trace id. The aggregate histograms
    answer "how slow is p99"; the recorder answers "{e which} request
    was the p99 and where did its budget go".

    Usage: compose {!sink} into the process sink ([Sink.tee] with
    whatever else is installed), bracket each request with
    {!begin_request} / {!finish}, and serve {!index_json} /
    {!record_json} from the telemetry HTTP server ([/requests],
    [/request/<trace-id>.json]).

    Retention is FIFO over {!configure}'s [capacity], except that
    eviction skips the [keep_slowest] highest-latency records, every
    record with a non-[Solved] outcome, and every deadline-exhausted
    record. Protection is best-effort at the cap: when everything is
    protected the oldest record goes anyway — the ring is bounded
    before it is complete.

    The recorder never touches solver state: recording is observation
    only, and the determinism suite replays with it installed. *)

type span = {
  sp_name : string;
  sp_dom : int;  (** domain the span ran on *)
  sp_start_s : float;  (** monotonic begin timestamp *)
  sp_dur_s : float;
  sp_children : span list;
}

type stage = {
  st_stage : string;
  st_status : string;
  st_work : int;  (** work units this cascade stage spent *)
  st_leakage_nw : float option;
}

type outcome =
  | Solved of string  (** accepting cascade stage *)
  | Infeasible
  | Shed of string  (** reject reason, e.g. ["overload"] *)
  | Errored of string

type record = {
  seq : int;  (** monotone across the process — [fbbd tail]'s cursor *)
  trace : string;
  req_id : string;
  outcome : outcome;
  exhausted : bool;
  queue_wait_s : float;
  latency_s : float;
  stages : stage list;
  counters : (string * int) list;  (** counter deltas across the solve *)
  spans : span list;
  ts_unix : float;
}

val configure : ?capacity:int -> ?keep_slowest:int -> unit -> unit
(** Resize the ring (default 512 records, 16 slowest kept). Values
    below 1 (capacity) or 0 (keep_slowest) are ignored. *)

val sink : unit -> Sink.t
(** A sink that captures span events for pending traces (those between
    {!begin_request} and {!finish}); everything else is dropped at one
    hashtable miss. *)

val begin_request : trace:string -> unit
(** Open a capture window for [trace]; a no-op on [""]. Re-opening a
    live trace discards its captured events. *)

val finish :
  trace:string ->
  req_id:string ->
  outcome:outcome ->
  exhausted:bool ->
  queue_wait_s:float ->
  latency_s:float ->
  stages:stage list ->
  counters:(string * int) list ->
  unit
(** Close the capture window and insert the record (evicting per the
    retention policy). Works without a prior {!begin_request} — shed
    requests record with an empty span tree. No-op on [trace = ""]. *)

val find : string -> record option
val index : unit -> record list
(** All records, newest first. *)

val size : unit -> int
val clear : unit -> unit

val outcome_label : outcome -> string
(** ["solved"], ["infeasible"], ["shed"] or ["error"]. *)

val outcome_detail : outcome -> string

val to_json : record -> Fbb_util.Json.t
(** Full record: schema ["fbb-flight-record-1"], stages, counter
    deltas, span tree with per-span start offsets relative to the
    first root. *)

val summary_json : record -> Fbb_util.Json.t
val index_json : unit -> Fbb_util.Json.t
(** Index page: schema ["fbb-flight-1"], newest first. *)

val record_json : string -> Fbb_util.Json.t option
(** [to_json] of the record for a trace id, if held. *)
