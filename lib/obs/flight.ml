(* The request flight recorder: a bounded, domain-safe store of
   recently served requests, each with its full span tree, counter
   deltas, per-stage cascade accounting and queue/latency timings,
   keyed by trace id. This is the per-request half of the telemetry
   plane: aggregate histograms answer "how slow is p99", the recorder
   answers "*which* request was the p99 and where did its budget go".

   Capture path: the server brackets each request with [begin_request]
   / [finish]. In between, a recorder {!Sink.t} (composed into the
   daemon's sink with [Sink.tee]) appends every span event whose trace
   id has a pending entry — span events already carry (trace, dom,
   depth), which is exactly enough to rebuild one coherent tree from
   the interleaved multi-domain stream at [finish] time. Events for
   traces nobody registered (and all non-span events) are dropped at
   the door, so a busy sink costs untraced work one hashtable miss.

   Retention: a FIFO ring of [capacity] records, except that eviction
   skips (1) the [keep_slowest] highest-latency records, (2) every
   record whose outcome is not Solved (shed, errored, infeasible), and
   (3) every deadline-exhausted record — precisely the requests worth
   debugging after the fact. Protection is best-effort at the cap: if
   *every* record is protected the oldest non-slowest goes anyway
   (bounded beats complete — a misbehaving deployment shedding 100% of
   traffic must not grow the ring without bound).

   Concurrency: one mutex guards the pending table, the record table
   and the eviction order. Sink emits lock it per event (span events
   are already serialized by the sink mutex; this one only orders them
   against begin/finish from the solver thread), reads lock it per
   query. Nothing here is on the solver's algorithmic path, so the
   recorder cannot perturb payloads: the determinism suite replays
   with the recorder installed and demands bit-identical responses. *)

type span = {
  sp_name : string;
  sp_dom : int;
  sp_start_s : float;  (* monotonic, same clock as every event ts *)
  sp_dur_s : float;
  sp_children : span list;
}

type stage = {
  st_stage : string;
  st_status : string;
  st_work : int;
  st_leakage_nw : float option;
}

type outcome =
  | Solved of string  (* accepting stage *)
  | Infeasible
  | Shed of string  (* reject reason, e.g. "overload" *)
  | Errored of string

type record = {
  seq : int;  (* monotone across the process; [fbbd tail]'s cursor *)
  trace : string;
  req_id : string;
  outcome : outcome;
  exhausted : bool;
  queue_wait_s : float;
  latency_s : float;
  stages : stage list;
  counters : (string * int) list;  (* counter deltas across the solve *)
  spans : span list;  (* root spans, in begin order *)
  ts_unix : float;
}

let outcome_label = function
  | Solved _ -> "solved"
  | Infeasible -> "infeasible"
  | Shed _ -> "shed"
  | Errored _ -> "error"

let outcome_detail = function
  | Solved stage -> stage
  | Infeasible -> ""
  | Shed reason -> reason
  | Errored msg -> msg

(* ----- recorder state --------------------------------------------------- *)

type ev =
  | Begin of { name : string; ts : float; dom : int }
  | End of { name : string; ts : float; dur_s : float; dom : int }

type t = {
  lock : Mutex.t;
  mutable capacity : int;
  mutable keep_slowest : int;
  pending : (string, ev list ref) Hashtbl.t;  (* events newest-first *)
  records : (string, record) Hashtbl.t;
  mutable order : string list;  (* insertion order, oldest first *)
  mutable count : int;
  mutable seq : int;
}

let default_capacity = 512
let default_keep_slowest = 16

(* Backstop for begin_request calls whose finish never came (a crashed
   caller): beyond this many open requests the oldest pending entries
   are dropped rather than accreting events forever. *)
let max_pending = 256

let recorder =
  {
    lock = Mutex.create ();
    capacity = default_capacity;
    keep_slowest = default_keep_slowest;
    pending = Hashtbl.create 16;
    records = Hashtbl.create 64;
    order = [];
    count = 0;
    seq = 0;
  }

let configure ?capacity ?keep_slowest () =
  Mutex.protect recorder.lock @@ fun () ->
  (match capacity with
  | Some c when c >= 1 -> recorder.capacity <- c
  | _ -> ());
  match keep_slowest with
  | Some k when k >= 0 -> recorder.keep_slowest <- k
  | _ -> ()

(* ----- capture ---------------------------------------------------------- *)

let begin_request ~trace =
  if trace <> "" then begin
    Mutex.protect recorder.lock @@ fun () ->
    Hashtbl.replace recorder.pending trace (ref []);
    if Hashtbl.length recorder.pending > max_pending then begin
      (* Drop an arbitrary stale entry; with a serial solver the table
         holds one live trace, so anything else is already orphaned. *)
      let victim =
        Hashtbl.fold
          (fun k _ acc -> if k = trace then acc else Some k)
          recorder.pending None
      in
      match victim with
      | Some k -> Hashtbl.remove recorder.pending k
      | None -> ()
    end
  end

(* The recorder's sink: filters the event stream down to span events of
   pending traces. Runs under the sink's emit mutex like any sink, and
   takes the recorder lock per retained event to order captures against
   begin/finish. *)
let sink () =
  let emit ev =
    match ev with
    | Event.Span_begin { name; ts; depth = _; dom; trace } when trace <> "" -> (
      Mutex.protect recorder.lock @@ fun () ->
      match Hashtbl.find_opt recorder.pending trace with
      | Some evs -> evs := Begin { name; ts; dom } :: !evs
      | None -> ())
    | Event.Span_end { name; ts; dur_s; depth = _; dom; trace }
      when trace <> "" -> (
      Mutex.protect recorder.lock @@ fun () ->
      match Hashtbl.find_opt recorder.pending trace with
      | Some evs -> evs := End { name; ts; dur_s; dom } :: !evs
      | None -> ())
    | _ -> ()
  in
  { Sink.emit; flush = (fun () -> ()) }

(* Rebuild span trees from the interleaved event list: one stack per
   domain (begins push, ends pop and attach to the new stack top or to
   the root list). Unbalanced tails — a begin whose end never fired
   because the recorder stopped listening first — are closed with zero
   duration rather than dropped, so a truncated capture still shows
   where time was being spent. *)
let build_tree events =
  let stacks : (int, (string * float * span list ref) list ref) Hashtbl.t =
    Hashtbl.create 4
  in
  let roots = ref [] in
  let stack_of dom =
    match Hashtbl.find_opt stacks dom with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks dom s;
      s
  in
  let attach dom sp =
    match !(stack_of dom) with
    | (_, _, children) :: _ -> children := sp :: !children
    | [] -> roots := sp :: !roots
  in
  List.iter
    (function
      | Begin { name; ts; dom } ->
        let st = stack_of dom in
        st := (name, ts, ref []) :: !st
      | End { name; ts; dur_s; dom } -> (
        let st = stack_of dom in
        match !st with
        | (n, start, children) :: tl when n = name ->
          st := tl;
          attach dom
            {
              sp_name = n;
              sp_dom = dom;
              sp_start_s = start;
              sp_dur_s = dur_s;
              sp_children = List.rev !children;
            }
        | _ ->
          (* End without a matching begin (capture started mid-span):
             record it as a flat zero-start span so it is not lost. *)
          attach dom
            {
              sp_name = name;
              sp_dom = dom;
              sp_start_s = ts -. dur_s;
              sp_dur_s = dur_s;
              sp_children = [];
            }))
    events;
  (* Close any still-open spans, innermost first: each becomes a child
     of the next outer entry; the outermost lands in the roots. *)
  Hashtbl.iter
    (fun dom st ->
      let rec close = function
        | [] -> ()
        | (n, start, children) :: tl ->
          let sp =
            {
              sp_name = n;
              sp_dom = dom;
              sp_start_s = start;
              sp_dur_s = 0.0;
              sp_children = List.rev !children;
            }
          in
          (match tl with
          | (_, _, pchildren) :: _ -> pchildren := sp :: !pchildren
          | [] -> roots := sp :: !roots);
          close tl
      in
      close !st)
    stacks;
  List.rev !roots

(* Pick the eviction victim: oldest record that is neither in the
   slowest-K set nor protected by outcome/exhaustion; falling back to
   the oldest non-slowest, then the oldest outright. Called with the
   lock held. *)
let evict_locked () =
  let r = recorder in
  let latencies =
    Hashtbl.fold (fun _ rec_ acc -> rec_.latency_s :: acc) r.records []
    |> List.sort (fun a b -> compare b a)
  in
  let slow_floor =
    (* K-th largest latency; records at or above it are the slowest-K
       (ties widen the set, which errs toward keeping more). *)
    match List.nth_opt latencies (r.keep_slowest - 1) with
    | Some v when r.keep_slowest > 0 -> v
    | _ -> Float.infinity
  in
  let is_slow rec_ = rec_.latency_s >= slow_floor in
  let protected_ rec_ =
    is_slow rec_ || rec_.exhausted
    || (match rec_.outcome with Solved _ -> false | _ -> true)
  in
  let find pred =
    List.find_opt
      (fun tr ->
        match Hashtbl.find_opt r.records tr with
        | Some rec_ -> pred rec_
        | None -> false)
      r.order
  in
  let victim =
    match find (fun rec_ -> not (protected_ rec_)) with
    | Some _ as v -> v
    | None -> (
      match find (fun rec_ -> not (is_slow rec_)) with
      | Some _ as v -> v
      | None -> ( match r.order with tr :: _ -> Some tr | [] -> None))
  in
  match victim with
  | Some tr ->
    Hashtbl.remove r.records tr;
    r.order <- List.filter (fun t -> t <> tr) r.order;
    r.count <- r.count - 1
  | None -> ()

let insert_locked trace record =
  let r = recorder in
  (if Hashtbl.mem r.records trace then begin
     (* Re-used trace id (client retried with the same request id):
        the newer record wins and the order entry moves to the back. *)
     Hashtbl.remove r.records trace;
     r.order <- List.filter (fun t -> t <> trace) r.order;
     r.count <- r.count - 1
   end);
  Hashtbl.replace r.records trace record;
  r.order <- r.order @ [ trace ];
  r.count <- r.count + 1;
  while r.count > r.capacity do
    evict_locked ()
  done

let finish ~trace ~req_id ~outcome ~exhausted ~queue_wait_s ~latency_s ~stages
    ~counters =
  if trace <> "" then begin
    Mutex.protect recorder.lock @@ fun () ->
    let events =
      match Hashtbl.find_opt recorder.pending trace with
      | Some evs ->
        Hashtbl.remove recorder.pending trace;
        List.rev !evs
      | None -> []  (* shed before any span fired, or no begin_request *)
    in
    recorder.seq <- recorder.seq + 1;
    let record =
      {
        seq = recorder.seq;
        trace;
        req_id;
        outcome;
        exhausted;
        queue_wait_s;
        latency_s;
        stages;
        counters;
        spans = build_tree events;
        ts_unix = Clock.now_unix ();
      }
    in
    insert_locked trace record
  end

(* ----- queries ----------------------------------------------------------- *)

let find trace =
  Mutex.protect recorder.lock @@ fun () ->
  Hashtbl.find_opt recorder.records trace

let index () =
  Mutex.protect recorder.lock @@ fun () ->
  List.rev_map
    (fun tr -> Hashtbl.find recorder.records tr)
    recorder.order

let size () = Mutex.protect recorder.lock @@ fun () -> recorder.count

let clear () =
  Mutex.protect recorder.lock @@ fun () ->
  Hashtbl.reset recorder.pending;
  Hashtbl.reset recorder.records;
  recorder.order <- [];
  recorder.count <- 0

(* ----- JSON -------------------------------------------------------------- *)

module J = Fbb_util.Json

let num_i i = J.Num (float_of_int i)

let rec span_json ~t0 sp =
  J.Obj
    [
      ("name", J.Str sp.sp_name);
      ("dom", num_i sp.sp_dom);
      ("start_s", J.Num (sp.sp_start_s -. t0));
      ("dur_s", J.Num sp.sp_dur_s);
      ("spans", J.Arr (List.map (span_json ~t0) sp.sp_children));
    ]

let stage_json st =
  J.Obj
    ([
       ("stage", J.Str st.st_stage);
       ("status", J.Str st.st_status);
       ("work", num_i st.st_work);
     ]
    @ match st.st_leakage_nw with
      | None -> []
      | Some v -> [ ("leakage_nw", J.Num v) ])

let summary_json (rec_ : record) =
  J.Obj
    [
      ("seq", num_i rec_.seq);
      ("trace", J.Str rec_.trace);
      ("id", J.Str rec_.req_id);
      ("outcome", J.Str (outcome_label rec_.outcome));
      ("detail", J.Str (outcome_detail rec_.outcome));
      ("exhausted", J.Bool rec_.exhausted);
      ("queue_wait_ms", J.Num (rec_.queue_wait_s *. 1000.0));
      ("latency_ms", J.Num (rec_.latency_s *. 1000.0));
      ("stages", num_i (List.length rec_.stages));
      ("ts_unix", J.Num rec_.ts_unix);
    ]

let to_json (rec_ : record) =
  (* Span timestamps are monotonic; report them relative to the first
     root so a reader sees offsets into the request, not clock values. *)
  let t0 =
    match rec_.spans with sp :: _ -> sp.sp_start_s | [] -> 0.0
  in
  J.Obj
    [
      ("schema", J.Str "fbb-flight-record-1");
      ("seq", num_i rec_.seq);
      ("trace", J.Str rec_.trace);
      ("id", J.Str rec_.req_id);
      ("outcome", J.Str (outcome_label rec_.outcome));
      ("detail", J.Str (outcome_detail rec_.outcome));
      ("exhausted", J.Bool rec_.exhausted);
      ("queue_wait_ms", J.Num (rec_.queue_wait_s *. 1000.0));
      ("latency_ms", J.Num (rec_.latency_s *. 1000.0));
      ("ts_unix", J.Num rec_.ts_unix);
      ("stages", J.Arr (List.map stage_json rec_.stages));
      ( "counters",
        J.Obj (List.map (fun (n, d) -> (n, num_i d)) rec_.counters) );
      ("spans", J.Arr (List.map (span_json ~t0) rec_.spans));
    ]

let index_json () =
  let entries = index () in
  J.Obj
    [
      ("schema", J.Str "fbb-flight-1");
      ("ts_unix", J.Num (Clock.now_unix ()));
      ("count", num_i (List.length entries));
      ("requests", J.Arr (List.map summary_json entries));
    ]

let record_json trace = Option.map to_json (find trace)
