(* Declarative service-level objectives evaluated as multi-window burn
   rates over the telemetry Series rings.

   An objective names a target fraction of "good" outcomes (e.g.
   99.9% of requests under 250 ms) and two windows, fast and slow
   (default 5 m / 1 h). Each window's burn rate is

       burn = bad_fraction / (1 - target)

   i.e. how many times faster than the error budget allows the service
   is currently burning it: 1.0 exactly consumes the budget over the
   SLO period, 14.4 is the classic "page now" fast-burn threshold. An
   objective is breached only when BOTH windows exceed [burn_limit] —
   the fast window makes the alert responsive, the slow window keeps a
   single bad tick from paging (the standard multi-window multi-burn
   construction).

   Two kinds of objective cover the daemon's needs:

   - [Latency_p]: over a per-tick percentile series (e.g.
     "hist.serve.latency.p99_s"), a tick is bad when its value exceeds
     the threshold. Idle ticks (NaN) do not count either way.
   - [Ratio]: over per-tick counter-delta series, bad_fraction is
     (sum of bad deltas) / (sum of total deltas) across the window —
     e.g. shed.overload over requests.

   Evaluation runs inside the telemetry sampler's pass (one walk of
   each referenced ring per tick — microseconds) and publishes
   slo.<name>.burn_fast / .burn_slow / .ok gauges, so the objectives
   surface through every existing pane: /metrics, /snapshot.json and
   the /slo.json endpoint this module renders.

   Windows clamp to the ring history: Series keep the last [cap]
   samples (2 minutes at the default tick and cap), so a 1 h window
   over a young or small ring evaluates what is actually there. That
   errs toward alerting late, never toward inventing data. *)

type windows = { fast_s : float; slow_s : float }

let default_windows = { fast_s = 300.0; slow_s = 3600.0 }

type kind =
  | Latency_p of { series : string; threshold_s : float }
  | Ratio of { bad : string list; total : string }

type objective = {
  slo_name : string;
  kind : kind;
  target : float;  (* good fraction in [0, 1) *)
  windows : windows;
  burn_limit : float;
}

type status = {
  objective : objective;
  burn_fast : float;
  burn_slow : float;
  ok : bool;
}

(* ----- registry ---------------------------------------------------------- *)

let lock = Mutex.create ()
let objectives : objective list ref = ref []  (* registration order *)

let register o =
  if not (o.target >= 0.0 && o.target < 1.0) then
    invalid_arg "Slo.register: target must be in [0, 1)";
  if not (o.burn_limit > 0.0) then
    invalid_arg "Slo.register: burn_limit must be > 0";
  Mutex.protect lock @@ fun () ->
  objectives :=
    List.filter (fun x -> x.slo_name <> o.slo_name) !objectives @ [ o ]

let clear () = Mutex.protect lock @@ fun () -> objectives := []
let registered () = Mutex.protect lock @@ fun () -> !objectives

(* ----- evaluation -------------------------------------------------------- *)

(* Points of [series] within the last [w] seconds of [now]; the empty
   array when the series does not exist yet. *)
let window_points name ~now ~w =
  let s = Series.make name in
  Series.points s
  |> Array.to_list
  |> List.filter (fun (ts, _) -> ts >= now -. w)

let bad_fraction kind ~now ~w =
  match kind with
  | Latency_p { series; threshold_s } ->
    let pts =
      window_points series ~now ~w
      |> List.filter (fun (_, v) -> not (Float.is_nan v))
    in
    let n = List.length pts in
    if n = 0 then 0.0
    else begin
      let bad =
        List.length (List.filter (fun (_, v) -> v > threshold_s) pts)
      in
      float_of_int bad /. float_of_int n
    end
  | Ratio { bad; total } ->
    let sum name =
      window_points name ~now ~w
      |> List.fold_left
           (fun acc (_, v) -> if Float.is_nan v then acc else acc +. v)
           0.0
    in
    let t = sum total in
    if t <= 0.0 then 0.0
    else List.fold_left (fun acc n -> acc +. sum n) 0.0 bad /. t

let burn_rate o ~now ~w =
  let budget = 1.0 -. o.target in
  bad_fraction o.kind ~now ~w /. budget

let evaluate ?now o =
  let now = match now with Some t -> t | None -> Clock.now_unix () in
  let burn_fast = burn_rate o ~now ~w:o.windows.fast_s in
  let burn_slow = burn_rate o ~now ~w:o.windows.slow_s in
  let ok = not (burn_fast > o.burn_limit && burn_slow > o.burn_limit) in
  { objective = o; burn_fast; burn_slow; ok }

let publish st =
  let set suffix v =
    Counter.Gauge.set
      (Counter.Gauge.make ("slo." ^ st.objective.slo_name ^ suffix))
      v
  in
  set ".burn_fast" st.burn_fast;
  set ".burn_slow" st.burn_slow;
  set ".ok" (if st.ok then 1.0 else 0.0)

let evaluate_all ?now () =
  let os = registered () in
  let statuses = List.map (fun o -> evaluate ?now o) os in
  List.iter publish statuses;
  statuses

(* ----- JSON -------------------------------------------------------------- *)

module J = Fbb_util.Json

let kind_json = function
  | Latency_p { series; threshold_s } ->
    J.Obj
      [
        ("kind", J.Str "latency_percentile");
        ("series", J.Str series);
        ("threshold_s", J.Num threshold_s);
      ]
  | Ratio { bad; total } ->
    J.Obj
      [
        ("kind", J.Str "ratio");
        ("bad", J.Arr (List.map (fun n -> J.Str n) bad));
        ("total", J.Str total);
      ]

let status_json st =
  let o = st.objective in
  J.Obj
    [
      ("name", J.Str o.slo_name);
      ("objective", kind_json o.kind);
      ("target", J.Num o.target);
      ("fast_window_s", J.Num o.windows.fast_s);
      ("slow_window_s", J.Num o.windows.slow_s);
      ("burn_limit", J.Num o.burn_limit);
      ("burn_fast", J.Num st.burn_fast);
      ("burn_slow", J.Num st.burn_slow);
      ("ok", J.Bool st.ok);
    ]

let to_json ?now () =
  let statuses = evaluate_all ?now () in
  J.Obj
    [
      ("schema", J.Str "fbb-slo-1");
      ("ts_unix", J.Num (Clock.now_unix ()));
      ("ok", J.Bool (List.for_all (fun st -> st.ok) statuses));
      ("objectives", J.Arr (List.map status_json statuses));
    ]
