(** Request/trace contexts.

    A context identifies the logical request a piece of work belongs
    to: a process-unique trace id plus the name of the span that was
    innermost when the context was minted. It lives in domain-local
    storage — {!Span.with_} stamps it onto every span event, and
    [Pool] re-establishes the submitting domain's context around each
    task it ships to a worker, so spans from parallel sections carry
    the originating request's trace id. *)

type t = {
  trace : string;  (** process-unique request id, e.g. ["t4242-17"] *)
  parent_span : string;
      (** innermost open span when the context was minted; [""] at
          top level *)
}

val make : ?trace:string -> unit -> t
(** Mint a context. [?trace] accepts an externally supplied id (a
    daemon fronting several processes); otherwise a fresh pid-scoped
    id is generated. [parent_span] is read from the calling domain's
    open-span stack. *)

val with_ : t -> (unit -> 'a) -> 'a
(** Run [f] with the given context current on this domain, restoring
    the previous one afterwards (exception-safe). *)

val with_opt : t option -> (unit -> 'a) -> 'a
(** Like {!with_} but can also run [f] with {e no} context current —
    the form [Pool] needs to reproduce the submitter's state, context
    or not, on a worker domain. *)

val current : unit -> t option
(** The calling domain's active context, if any. *)

val trace_id : unit -> string
(** [current ()]'s trace id, or [""] when no context is active — the
    exact value spans embed, so "no trace" never needs a sentinel. *)

(** {2 Span-stack maintenance}

    Called by {!Span.with_} while a sink is installed; not for general
    use. The stack feeds [parent_span] in {!make}. *)

val push_span : string -> unit
val pop_span : unit -> unit
val innermost_span : unit -> string
(** Top of the calling domain's open-span stack, [""] when empty. *)
