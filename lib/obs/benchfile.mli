(** Bench session records ([bench.json], schema "fbb-bench-2") and the
    regression comparison behind [fbbopt bench-compare].

    A record captures per-experiment wall seconds, counter totals,
    per-span latency statistics with histogram percentiles,
    whole-process GC totals and domain-pool utilization. [compare]
    diffs two records: experiment seconds and GC allocation totals
    gate (relative threshold plus an absolute noise floor), counters
    are reported but informational. Files with the older "fbb-bench-1"
    schema still load — absent sections come back empty and their
    gates are skipped. *)

type span_stat = {
  count : int;
  total_s : float;
  mean_s : float;
  p50_s : float;  (** NaN when the record carries no percentile *)
  p90_s : float;
  p99_s : float;
  max_s : float;
}

type pool_stat = {
  label : string;  (** ["w<i>"] per worker slot, or ["caller"] *)
  busy_s : float;
  idle_s : float;
  tasks : int;
}

type t = {
  jobs : int;
  experiments : (string * float) list;  (** name, wall seconds *)
  counters : (string * int) list;
  gauges : (string * float) list;
      (** informational gauge values, e.g. the [obs.telemetry.*]
          overhead of the telemetry plane during the run; empty in
          records written before telemetry existed *)
  spans : (string * span_stat) list;
  gc : Gcprof.sample;  (** whole-process totals at record time *)
  pool : pool_stat list;
}

val make :
  jobs:int ->
  experiments:(string * float) list ->
  counters:(string * int) list ->
  ?gauges:(string * float) list ->
  pool:(string * float * float * int) list ->
  Aggregate.t ->
  t
(** Build a record from a finished session: span statistics and
    percentiles come from the aggregate, GC totals from
    [Gc.quick_stat] at call time, [pool] from
    [Fbb_par.Pool.utilization ()] (passed in because [fbb_par] depends
    on this library, not the other way around). [gauges] defaults to
    empty. *)

val to_json : t -> Fbb_util.Json.t
val of_json : Fbb_util.Json.t -> (t, string) result

val save : t -> path:string -> unit

val load : string -> (t, string) result
(** Parse and I/O failures come back as [Error] — bench-compare turns
    them into exit code 2. *)

type verdict = {
  key : string;
      (** ["exp:<name>"], ["gc:minor_words"], ["counter:<name>"],
          ["gauge:<name>"] *)
  old_v : float;
  new_v : float;
  change_pct : float;  (** +10.0 = new is 10% bigger; [infinity] from 0 *)
  gated : bool;
  regressed : bool;
}

type comparison = {
  verdicts : verdict list;
  missing : string list;  (** gated keys of the old record absent in the new *)
}

val compare : max_regress_pct:float -> t -> t -> comparison
(** [compare ~max_regress_pct old new_]: a gated metric is [regressed]
    when it grew by more than [max_regress_pct] percent {e and} by
    more than an absolute noise floor (10 ms for seconds, 1e6 words
    for GC). Experiments present in [old] but not in [new_] land in
    [missing]; extra experiments in [new_] are ignored. *)

val regressed : comparison -> bool

val render : comparison -> string
(** Text table of all verdicts plus one line per missing key. *)
