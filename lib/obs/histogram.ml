(* Lock-free log-bucketed latency/size histograms (HDR-style).

   A histogram is a fixed array of atomic bucket counters on a
   log-linear grid: [sub] linear sub-buckets per power of two, octaves
   spanning 2^-40 s (~1e-12, below any clock tick) to 2^24 s (~6
   months), plus a dedicated bucket for zero/negative values and exact
   atomic count / sum / max alongside. Everything is a fetch-and-add or
   a CAS retry loop, so worker domains observe concurrently without a
   lock and without losing updates; readers see a slightly torn but
   monotone snapshot, which is all a percentile report needs.

   The grid resolution is sub = 16, i.e. every bucket's upper bound is
   within 1/16 (6.25%) of its lower bound - percentile estimates carry
   at most that relative error, while exact max is tracked separately.

   Like counters, histograms accumulate with no sink installed;
   [record] additionally emits a {!Event.Hist_record} so JSONL traces
   and the aggregate sink can rebuild the distribution offline. The
   aggregate sink itself uses plain [observe] (no event) - emitting
   from inside a sink would re-enter the sink mutex. *)

let sub = 16
let min_exp = -40
let max_exp = 24
let octaves = max_exp - min_exp

(* bucket 0: v <= 0; buckets 1 .. octaves*sub: the log-linear grid.
   Values beyond the top octave clamp into the last bucket. *)
let n_buckets = 1 + (octaves * sub)

(* An exemplar is one immutable block: the bucket's last writer swaps
   the whole pointer with a single atomic store, so a concurrent reader
   sees either the previous exemplar or the new one, never a trace id
   from one observation paired with the value of another. *)
type exemplar = { ex_trace : string; ex_value : float; ex_ts : float }

type t = {
  name : string;
  buckets : int Atomic.t array;
  count : int Atomic.t;
  sum : float Atomic.t;
  max : float Atomic.t;
  (* Allocated by [enable_exemplars]; [None] costs observe nothing.
     The field is plain mutable: enable before concurrent observation
     starts (a racing observer may miss the array and skip its
     exemplar, never corrupt one). *)
  mutable exemplars : exemplar option Atomic.t array option;
}

let create name =
  {
    name;
    buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
    count = Atomic.make 0;
    sum = Atomic.make 0.0;
    max = Atomic.make 0.0;
    exemplars = None;
  }

let name t = t.name

(* ----- registry (same discipline as Counter) --------------------------- *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 32
let registry_mutex = Mutex.create ()
let order : t list ref = ref []

let make name =
  Mutex.lock registry_mutex;
  let h =
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
      let h = create name in
      Hashtbl.add registry name h;
      order := h :: !order;
      h
  in
  Mutex.unlock registry_mutex;
  h

(* ----- bucketing ------------------------------------------------------- *)

let bucket_of_value v =
  if not (v > 0.0) then 0 (* zero, negative, nan *)
  else begin
    let m, e = Float.frexp v in
    (* v = m * 2^e with m in [0.5, 1) *)
    if e > max_exp then n_buckets - 1
    else if e <= min_exp then 1
    else begin
      let si = int_of_float ((m -. 0.5) *. 2.0 *. float_of_int sub) in
      let si = if si >= sub then sub - 1 else if si < 0 then 0 else si in
      1 + ((e - min_exp - 1) * sub) + si
    end
  end

(* Largest value that lands in bucket [i] (its inclusive upper edge up
   to float rounding); bucket 0 holds only non-positive values. *)
let bucket_upper i =
  if i <= 0 then 0.0
  else begin
    let i = i - 1 in
    let e = min_exp + 1 + (i / sub) in
    let si = i mod sub in
    (* lower mantissa edge 0.5 + si/(2*sub), width 1/(2*sub) *)
    Float.ldexp (0.5 +. (float_of_int (si + 1) /. float_of_int (2 * sub))) e
  end

let rec cas_add cell x =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (old +. x)) then cas_add cell x

let rec cas_max cell x =
  let old = Atomic.get cell in
  if x > old && not (Atomic.compare_and_set cell old x) then cas_max cell x

let enable_exemplars t =
  Mutex.lock registry_mutex;
  (if t.exemplars = None then
     t.exemplars <- Some (Array.init n_buckets (fun _ -> Atomic.make None)));
  Mutex.unlock registry_mutex

let exemplars_enabled t = t.exemplars <> None

let observe ?exemplar t v =
  let bi = bucket_of_value v in
  ignore (Atomic.fetch_and_add t.buckets.(bi) 1);
  ignore (Atomic.fetch_and_add t.count 1);
  cas_add t.sum v;
  cas_max t.max v;
  match (exemplar, t.exemplars) with
  | Some trace, Some arr when trace <> "" ->
    (* Last-writer-wins: a plain atomic store of one immutable block. *)
    Atomic.set arr.(bi)
      (Some { ex_trace = trace; ex_value = v; ex_ts = Clock.now_unix () })
  | _ -> ()

let exemplar_of_bucket t i =
  match t.exemplars with
  | None -> None
  | Some arr -> if i >= 0 && i < n_buckets then Atomic.get arr.(i) else None

let exemplar_for t v = exemplar_of_bucket t (bucket_of_value v)

let record t v =
  observe t v;
  if Sink.enabled () then
    Sink.emit (Event.Hist_record { name = t.name; value = v; ts = Clock.now_s () })

(* ----- readers --------------------------------------------------------- *)

let count t = Atomic.get t.count
let sum t = Atomic.get t.sum
let max_value t = Atomic.get t.max

let mean t =
  let n = count t in
  if n = 0 then Float.nan else sum t /. float_of_int n

(* Smallest bucket upper bound covering rank ceil(p*n), capped at the
   exact max so a lone huge sample does not report its bucket edge. *)
let percentile t p =
  let n = count t in
  if n = 0 then Float.nan
  else begin
    let rank =
      let r = int_of_float (Float.ceil (p *. float_of_int n)) in
      if r < 1 then 1 else if r > n then n else r
    in
    let rec walk i cum =
      if i >= n_buckets then max_value t
      else begin
        let cum = cum + Atomic.get t.buckets.(i) in
        if cum >= rank then
          (* The overflow bucket's edge is a floor, not a ceiling: values
             clamped into it can be arbitrarily large, so report the
             exact max instead of underestimating. *)
          if i = n_buckets - 1 then max_value t
          else Float.min (bucket_upper i) (max_value t)
        else walk (i + 1) cum
      end
    in
    walk 0 0
  end

let percentile_opt t p = if count t = 0 then None else Some (percentile t p)

let p50 t = percentile t 0.50
let p90 t = percentile t 0.90
let p99 t = percentile t 0.99

let nonzero_buckets t =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    let c = Atomic.get t.buckets.(i) in
    if c <> 0 then acc := (i, c) :: !acc
  done;
  !acc

(* ----- merge ----------------------------------------------------------- *)

let merge_into ~src ~dst =
  Array.iteri
    (fun i b ->
      let c = Atomic.get b in
      if c <> 0 then ignore (Atomic.fetch_and_add dst.buckets.(i) c))
    src.buckets;
  ignore (Atomic.fetch_and_add dst.count (Atomic.get src.count));
  cas_add dst.sum (Atomic.get src.sum);
  cas_max dst.max (Atomic.get src.max)

let union a b =
  let h = create a.name in
  merge_into ~src:a ~dst:h;
  merge_into ~src:b ~dst:h;
  h

let copy t =
  let h = create t.name in
  merge_into ~src:t ~dst:h;
  h

(* Interval view for the telemetry sampler: the distribution of what
   happened between two cumulative snapshots of the same histogram.
   Buckets and count are clamped at zero so a torn read of a live
   [newer] never yields negative counts; sum diffs may be slightly off
   under the same tear, and max is the cumulative max (a true interval
   max is not recoverable from cumulative state), so the interval
   percentile cap still holds. *)
let interval_sub ~newer ~older =
  let h = create newer.name in
  Array.iteri
    (fun i b ->
      let d = Atomic.get b - Atomic.get older.buckets.(i) in
      if d > 0 then Atomic.set h.buckets.(i) d)
    newer.buckets;
  Atomic.set h.count (max 0 (Atomic.get newer.count - Atomic.get older.count));
  Atomic.set h.sum (Float.max 0.0 (Atomic.get newer.sum -. Atomic.get older.sum));
  Atomic.set h.max (Atomic.get newer.max);
  h

(* ----- plain snapshots (telemetry sampler) ----------------------------- *)

(* A sampler-owned copy with no atomics. [create]-based snapshots
   ([copy]/[interval_sub]) allocate ~1k Atomic.t cells, which in OCaml
   5.1 land on the shared major heap — under parallel load those
   allocations contend with the workload's and a single copy costs
   milliseconds. A plain int array is an ordinary allocation, so
   snapshotting every active histogram each tick stays microseconds. *)
type snapshot = {
  snap_buckets : int array;
  snap_count : int;
  snap_sum : float;
  snap_max : float;
}

let snapshot t =
  {
    snap_buckets = Array.init n_buckets (fun i -> Atomic.get t.buckets.(i));
    snap_count = Atomic.get t.count;
    snap_sum = Atomic.get t.sum;
    snap_max = Atomic.get t.max;
  }

let snapshot_count s = s.snap_count

(* Shared zero snapshot for "no previous tick": the cumulative state
   then is the interval, matching [interval_sub]'s first-tick case. *)
let zero_snapshot =
  { snap_buckets = Array.make n_buckets 0; snap_count = 0; snap_sum = 0.0;
    snap_max = 0.0 }

let interval_count ?(since = zero_snapshot) newer =
  let d = newer.snap_count - since.snap_count in
  if d > 0 then d else 0

let interval_percentile ?(since = zero_snapshot) newer p =
  let n = interval_count ~since newer in
  if n = 0 then None
  else begin
    let rank =
      let r = int_of_float (Float.ceil (p *. float_of_int n)) in
      if r < 1 then 1 else if r > n then n else r
    in
    let rec walk i cum =
      if i >= n_buckets then Some newer.snap_max
      else begin
        let d = newer.snap_buckets.(i) - since.snap_buckets.(i) in
        let cum = cum + if d > 0 then d else 0 in
        if cum >= rank then
          if i = n_buckets - 1 then Some newer.snap_max
          else Some (Float.min (bucket_upper i) newer.snap_max)
        else walk (i + 1) cum
      end
    in
    walk 0 0
  end

let reset t =
  Array.iter (fun b -> Atomic.set b 0) t.buckets;
  Atomic.set t.count 0;
  Atomic.set t.sum 0.0;
  Atomic.set t.max 0.0;
  match t.exemplars with
  | None -> ()
  | Some arr -> Array.iter (fun c -> Atomic.set c None) arr

let reset_all () = Hashtbl.iter (fun _ h -> reset h) registry

let registered () = List.rev !order
