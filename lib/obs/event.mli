(** The observability event model: everything a sink can observe.

    Span begin/end events come in balanced pairs even when the spanned
    computation raises, and carry the id of the domain that ran them so
    converters can rebuild per-domain stacks from the interleaved
    stream. Counter events carry {e deltas} batched at span boundaries,
    never totals, so a trace attributes increments to the innermost
    open span. [Hist_record] is one observed histogram value (span
    durations are recorded automatically); [Gc_sample] is the GC
    counter delta across one span on the span's own domain
    ([top_heap_words] is the absolute high-water mark). *)

type t =
  | Span_begin of {
      name : string;
      ts : float;
      depth : int;
      dom : int;
      trace : string;
          (** trace id of the originating request's {!Context}, [""]
              when the span ran outside any traced request *)
    }
  | Span_end of {
      name : string;
      ts : float;
      dur_s : float;
      depth : int;
      dom : int;
      trace : string;
    }
  | Counter_add of { name : string; delta : int; ts : float }
  | Gauge_set of { name : string; value : float; ts : float }
  | Hist_record of { name : string; value : float; ts : float }
  | Gc_sample of {
      name : string;
      minor_words : float;
      major_words : float;
      minor_collections : int;
      major_collections : int;
      top_heap_words : int;
      ts : float;
    }

val name : t -> string
val ts : t -> float

val to_json : t -> string
(** One-line JSON object. The ["ph"] field mirrors Chrome trace_event
    phase letters (B/E/C) plus extensions "G" (gauge), "H" (histogram
    observation) and "M" (GC sample); timestamps are seconds
    (trace_event wants microseconds — {!Trace_export} rescales). *)

val escape : string -> string
(** JSON string-body escaping (exposed for sinks that render JSON). *)
