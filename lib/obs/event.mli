(** The observability event model: everything a sink can observe.

    Span begin/end events come in balanced pairs even when the spanned
    computation raises. Counter events carry {e deltas} batched at span
    boundaries, never totals, so a trace attributes increments to the
    innermost open span. *)

type t =
  | Span_begin of { name : string; ts : float; depth : int }
  | Span_end of { name : string; ts : float; dur_s : float; depth : int }
  | Counter_add of { name : string; delta : int; ts : float }
  | Gauge_set of { name : string; value : float; ts : float }

val name : t -> string
val ts : t -> float

val to_json : t -> string
(** One-line JSON object. The ["ph"] field mirrors Chrome trace_event
    phase letters (B/E/C, plus "G" for gauges); timestamps are seconds
    (trace_event wants microseconds - rescale when converting). *)

val escape : string -> string
(** JSON string-body escaping (exposed for sinks that render JSON). *)
