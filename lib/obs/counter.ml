(* Named monotonic counters and float gauges.

   Counters always accumulate into a plain int field - two integer adds
   per [add], cheap enough for per-pivot and per-node call sites - so
   totals are readable (and testable) even with no sink installed. The
   [pending] field batches increments between span boundaries: when a
   sink is installed, [flush_pending] (called by [Span.with_] at every
   boundary) turns the accumulated delta into a single [Counter_add]
   event, attributing the work to the innermost open span without
   emitting one event per increment. *)

type t = { name : string; mutable total : int; mutable pending : int }

let registry : (string, t) Hashtbl.t = Hashtbl.create 64

(* First-registration order, for stable report layout. *)
let order : t list ref = ref []

let make name =
  match Hashtbl.find_opt registry name with
  | Some c -> c
  | None ->
    let c = { name; total = 0; pending = 0 } in
    Hashtbl.add registry name c;
    order := c :: !order;
    c

let add c n =
  c.total <- c.total + n;
  c.pending <- c.pending + n

let incr c = add c 1

let read c = c.total
let name c = c.name

let reset c =
  c.total <- 0;
  c.pending <- 0

let reset_all () = Hashtbl.iter (fun _ c -> reset c) registry

let flush_pending () =
  if Sink.enabled () then begin
    let ts = Clock.now_s () in
    List.iter
      (fun c ->
        if c.pending <> 0 then begin
          Sink.emit (Event.Counter_add { name = c.name; delta = c.pending; ts });
          c.pending <- 0
        end)
      !order
  end

(* Non-zero totals in registration order, for text reports. *)
let totals () =
  List.rev !order
  |> List.filter_map (fun c ->
         if c.total <> 0 then Some (c.name, c.total) else None)

(* ----- gauges ---------------------------------------------------------- *)

module Gauge = struct
  type g = { gname : string; mutable value : float; mutable set_once : bool }

  let gregistry : (string, g) Hashtbl.t = Hashtbl.create 16
  let gorder : g list ref = ref []

  let make gname =
    match Hashtbl.find_opt gregistry gname with
    | Some g -> g
    | None ->
      let g = { gname; value = 0.0; set_once = false } in
      Hashtbl.add gregistry gname g;
      gorder := g :: !gorder;
      g

  let set g v =
    g.value <- v;
    g.set_once <- true;
    if Sink.enabled () then
      Sink.emit
        (Event.Gauge_set { name = g.gname; value = v; ts = Clock.now_s () })

  let read g = g.value

  let reset_all () =
    Hashtbl.iter
      (fun _ g ->
        g.value <- 0.0;
        g.set_once <- false)
      gregistry

  let values () =
    List.rev !gorder
    |> List.filter_map (fun g ->
           if g.set_once then Some (g.gname, g.value) else None)
end
