(* Named monotonic counters and float gauges.

   Counters accumulate into [Atomic.t] cells - one fetch-and-add per
   [add], cheap enough for per-pivot and per-node call sites, and safe
   under domain-parallel increments (a plain [int ref] here would lose
   updates the moment Monte-Carlo samples or branch-and-bound nodes run
   on the pool). Totals are readable (and testable) even with no sink
   installed. The [pending] cell batches increments between span
   boundaries: when a sink is installed, [flush_pending] (called by
   [Span.with_] at every boundary) atomically drains the accumulated
   delta into a single [Counter_add] event, attributing the work to the
   innermost open span without emitting one event per increment. *)

type t = { name : string; total : int Atomic.t; pending : int Atomic.t }

let registry : (string, t) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

(* First-registration order, for stable report layout. *)
let order : t list ref = ref []

let make name =
  Mutex.lock registry_mutex;
  let c =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
      let c = { name; total = Atomic.make 0; pending = Atomic.make 0 } in
      Hashtbl.add registry name c;
      order := c :: !order;
      c
  in
  Mutex.unlock registry_mutex;
  c

let add c n =
  ignore (Atomic.fetch_and_add c.total n);
  ignore (Atomic.fetch_and_add c.pending n)

let incr c = add c 1

let read c = Atomic.get c.total
let name c = c.name

let reset c =
  Atomic.set c.total 0;
  Atomic.set c.pending 0

let reset_all () = Hashtbl.iter (fun _ c -> reset c) registry

let flush_pending () =
  if Sink.enabled () then begin
    let ts = Clock.now_s () in
    List.iter
      (fun c ->
        let delta = Atomic.exchange c.pending 0 in
        if delta <> 0 then
          Sink.emit (Event.Counter_add { name = c.name; delta; ts }))
      !order
  end

(* Non-zero totals in registration order, for text reports. *)
let totals () =
  List.rev !order
  |> List.filter_map (fun c ->
         let v = Atomic.get c.total in
         if v <> 0 then Some (c.name, v) else None)

(* ----- gauges ---------------------------------------------------------- *)

module Gauge = struct
  type g = { gname : string; value : float Atomic.t; set_once : bool Atomic.t }

  let gregistry : (string, g) Hashtbl.t = Hashtbl.create 16
  let gorder : g list ref = ref []

  let make gname =
    Mutex.lock registry_mutex;
    let g =
      match Hashtbl.find_opt gregistry gname with
      | Some g -> g
      | None ->
        let g =
          { gname; value = Atomic.make 0.0; set_once = Atomic.make false }
        in
        Hashtbl.add gregistry gname g;
        gorder := g :: !gorder;
        g
    in
    Mutex.unlock registry_mutex;
    g

  let set g v =
    Atomic.set g.value v;
    Atomic.set g.set_once true;
    if Sink.enabled () then
      Sink.emit
        (Event.Gauge_set { name = g.gname; value = v; ts = Clock.now_s () })

  let read g = Atomic.get g.value

  let reset_all () =
    Hashtbl.iter
      (fun _ g ->
        Atomic.set g.value 0.0;
        Atomic.set g.set_once false)
      gregistry

  let values () =
    List.rev !gorder
    |> List.filter_map (fun g ->
           if Atomic.get g.set_once then Some (g.gname, Atomic.get g.value)
           else None)
end
