(* In-memory aggregating sink: per-span-name duration statistics
   (count/total/max from span events, p50/p90/p99 from the Hist_record
   stream), per-span GC deltas, counter totals and last gauge values,
   rendered as a text report (Fbb_util.Texttab) or machine-readable
   CSV. Columns with nothing to show (a span with no histogram or GC
   events, e.g. replaying a pre-histogram trace) render as "-". *)

type stat = {
  mutable count : int;
  mutable total_s : float;
  mutable max_s : float;
}

type t = {
  spans : (string, stat) Hashtbl.t;
  mutable span_order : string list;  (* first-completion order, reversed *)
  hists : (string, Histogram.t) Hashtbl.t;
  gc : (string, Gcprof.sample ref) Hashtbl.t;
  counters : (string, int ref) Hashtbl.t;
  mutable counter_order : string list;
  gauges : (string, float ref) Hashtbl.t;
  mutable gauge_order : string list;
}

let create () =
  {
    spans = Hashtbl.create 32;
    span_order = [];
    hists = Hashtbl.create 32;
    gc = Hashtbl.create 32;
    counters = Hashtbl.create 32;
    counter_order = [];
    gauges = Hashtbl.create 8;
    gauge_order = [];
  }

let sink t =
  {
    Sink.emit =
      (fun ev ->
        match ev with
        | Event.Span_begin _ -> ()
        | Event.Span_end { name; dur_s; _ } ->
          let s =
            match Hashtbl.find_opt t.spans name with
            | Some s -> s
            | None ->
              let s = { count = 0; total_s = 0.0; max_s = 0.0 } in
              Hashtbl.add t.spans name s;
              t.span_order <- name :: t.span_order;
              s
          in
          s.count <- s.count + 1;
          s.total_s <- s.total_s +. dur_s;
          if dur_s > s.max_s then s.max_s <- dur_s
        | Event.Hist_record { name; value; _ } ->
          let h =
            match Hashtbl.find_opt t.hists name with
            | Some h -> h
            | None ->
              let h = Histogram.create name in
              Hashtbl.add t.hists name h;
              h
          in
          (* observe, not record: we are inside the sink mutex. *)
          Histogram.observe h value
        | Event.Gc_sample
            {
              name;
              minor_words;
              major_words;
              minor_collections;
              major_collections;
              top_heap_words;
              _;
            } -> begin
          let add (g : Gcprof.sample) =
            {
              Gcprof.minor_words = g.Gcprof.minor_words +. minor_words;
              major_words = g.Gcprof.major_words +. major_words;
              minor_collections = g.Gcprof.minor_collections + minor_collections;
              major_collections = g.Gcprof.major_collections + major_collections;
              top_heap_words = max g.Gcprof.top_heap_words top_heap_words;
            }
          in
          match Hashtbl.find_opt t.gc name with
          | Some r -> r := add !r
          | None ->
            Hashtbl.add t.gc name
              (ref
                 {
                   Gcprof.minor_words;
                   major_words;
                   minor_collections;
                   major_collections;
                   top_heap_words;
                 })
        end
        | Event.Counter_add { name; delta; _ } ->
          let r =
            match Hashtbl.find_opt t.counters name with
            | Some r -> r
            | None ->
              let r = ref 0 in
              Hashtbl.add t.counters name r;
              t.counter_order <- name :: t.counter_order;
              r
          in
          r := !r + delta
        | Event.Gauge_set { name; value; _ } -> begin
          match Hashtbl.find_opt t.gauges name with
          | Some r -> r := value
          | None ->
            Hashtbl.add t.gauges name (ref value);
            t.gauge_order <- name :: t.gauge_order
        end);
    flush = ignore;
  }

let span_stat t name =
  Option.map
    (fun s -> (s.count, s.total_s, s.max_s))
    (Hashtbl.find_opt t.spans name)

let span_total t name =
  match Hashtbl.find_opt t.spans name with
  | Some s -> Some s.total_s
  | None -> None

let counter_total t name =
  Option.map ( ! ) (Hashtbl.find_opt t.counters name)

let histogram t name = Hashtbl.find_opt t.hists name

let span_percentiles t name =
  Option.map
    (fun h ->
      (* percentile_opt, so an empty histogram (possible when replaying
         a filtered or truncated trace) yields NaN cells that Texttab
         renders as "-", never a fake 0. *)
      let p q =
        Option.value (Histogram.percentile_opt h q) ~default:Float.nan
      in
      (p 0.50, p 0.90, p 0.99))
    (Hashtbl.find_opt t.hists name)

let gc_stat t name = Option.map ( ! ) (Hashtbl.find_opt t.gc name)

(* Span rows, heaviest first: (name, count, total_s, mean_s, max_s). *)
let span_rows t =
  List.rev t.span_order
  |> List.map (fun name ->
         let s = Hashtbl.find t.spans name in
         (name, s.count, s.total_s, s.total_s /. float_of_int s.count, s.max_s))
  |> List.stable_sort (fun (_, _, a, _, _) (_, _, b, _, _) -> compare b a)

let counter_rows t =
  List.rev t.counter_order
  |> List.map (fun name -> (name, !(Hashtbl.find t.counters name)))

let gauge_rows t =
  List.rev t.gauge_order
  |> List.map (fun name -> (name, !(Hashtbl.find t.gauges name)))

let gc_rows t =
  List.rev t.span_order
  |> List.filter_map (fun name ->
         Option.map (fun r -> (name, !r)) (Hashtbl.find_opt t.gc name))

(* Percentile / GC lookups as floats, NaN when absent so Texttab's "-"
   rendering for non-finite cells applies. *)
let pctls_or_nan t name =
  match span_percentiles t name with
  | Some v -> v
  | None -> (Float.nan, Float.nan, Float.nan)

let gc_words_or_nan t name =
  match gc_stat t name with
  | Some g -> (g.Gcprof.minor_words, g.Gcprof.major_words)
  | None -> (Float.nan, Float.nan)

let report t =
  let module T = Fbb_util.Texttab in
  let buf = Buffer.create 1024 in
  let spans = span_rows t in
  if spans <> [] then begin
    let tab =
      T.create
        ~headers:
          [
            "span"; "count"; "total s"; "mean s"; "p50 s"; "p90 s"; "p99 s";
            "max s"; "gc minor w"; "gc major w";
          ]
    in
    List.iter
      (fun (name, count, total, mean, mx) ->
        let p50, p90, p99 = pctls_or_nan t name in
        let minor_w, major_w = gc_words_or_nan t name in
        T.add_row tab
          [
            name;
            T.cell_i count;
            T.cell_f ~digits:4 total;
            T.cell_f ~digits:6 mean;
            T.cell_f ~digits:6 p50;
            T.cell_f ~digits:6 p90;
            T.cell_f ~digits:6 p99;
            T.cell_f ~digits:6 mx;
            T.cell_f ~digits:0 minor_w;
            T.cell_f ~digits:0 major_w;
          ])
      spans;
    Buffer.add_string buf (T.render tab)
  end;
  let counters = counter_rows t in
  if counters <> [] then begin
    let tab = T.create ~headers:[ "counter"; "total" ] in
    List.iter
      (fun (name, v) -> T.add_row tab [ name; T.cell_i v ])
      counters;
    Buffer.add_string buf (T.render tab)
  end;
  let gauges = gauge_rows t in
  if gauges <> [] then begin
    let tab = T.create ~headers:[ "gauge"; "value" ] in
    List.iter
      (fun (name, v) -> T.add_row tab [ name; T.cell_f ~digits:4 v ])
      gauges;
    Buffer.add_string buf (T.render tab)
  end;
  if Buffer.length buf = 0 then Buffer.add_string buf "(no events recorded)\n";
  Buffer.contents buf

let to_csv t =
  let csv =
    Fbb_util.Csv.create
      ~headers:
        [
          "kind"; "name"; "count"; "total_s"; "mean_s"; "p50_s"; "p90_s";
          "p99_s"; "max_s"; "gc_minor_words"; "gc_major_words";
        ]
  in
  let cell v = if Float.is_finite v then Printf.sprintf "%.9f" v else "-" in
  let cell_w v = if Float.is_finite v then Printf.sprintf "%.0f" v else "-" in
  List.iter
    (fun (name, count, total, mean, mx) ->
      let p50, p90, p99 = pctls_or_nan t name in
      let minor_w, major_w = gc_words_or_nan t name in
      Fbb_util.Csv.add_row csv
        [
          "span"; name; string_of_int count; cell total; cell mean; cell p50;
          cell p90; cell p99; cell mx; cell_w minor_w; cell_w major_w;
        ])
    (span_rows t);
  List.iter
    (fun (name, v) ->
      Fbb_util.Csv.add_row csv
        [ "counter"; name; "1"; string_of_int v; ""; ""; ""; ""; ""; ""; "" ])
    (counter_rows t);
  List.iter
    (fun (name, v) ->
      Fbb_util.Csv.add_row csv
        [
          "gauge"; name; "1"; Printf.sprintf "%.9g" v; ""; ""; ""; ""; ""; "";
          "";
        ])
    (gauge_rows t);
  csv
