(* In-memory aggregating sink: per-span-name duration statistics plus
   counter totals and last gauge values, rendered as a text report
   (Fbb_util.Texttab) or machine-readable CSV. *)

type stat = {
  mutable count : int;
  mutable total_s : float;
  mutable max_s : float;
}

type t = {
  spans : (string, stat) Hashtbl.t;
  mutable span_order : string list;  (* first-completion order, reversed *)
  counters : (string, int ref) Hashtbl.t;
  mutable counter_order : string list;
  gauges : (string, float ref) Hashtbl.t;
  mutable gauge_order : string list;
}

let create () =
  {
    spans = Hashtbl.create 32;
    span_order = [];
    counters = Hashtbl.create 32;
    counter_order = [];
    gauges = Hashtbl.create 8;
    gauge_order = [];
  }

let sink t =
  {
    Sink.emit =
      (fun ev ->
        match ev with
        | Event.Span_begin _ -> ()
        | Event.Span_end { name; dur_s; _ } ->
          let s =
            match Hashtbl.find_opt t.spans name with
            | Some s -> s
            | None ->
              let s = { count = 0; total_s = 0.0; max_s = 0.0 } in
              Hashtbl.add t.spans name s;
              t.span_order <- name :: t.span_order;
              s
          in
          s.count <- s.count + 1;
          s.total_s <- s.total_s +. dur_s;
          if dur_s > s.max_s then s.max_s <- dur_s
        | Event.Counter_add { name; delta; _ } ->
          let r =
            match Hashtbl.find_opt t.counters name with
            | Some r -> r
            | None ->
              let r = ref 0 in
              Hashtbl.add t.counters name r;
              t.counter_order <- name :: t.counter_order;
              r
          in
          r := !r + delta
        | Event.Gauge_set { name; value; _ } -> begin
          match Hashtbl.find_opt t.gauges name with
          | Some r -> r := value
          | None ->
            Hashtbl.add t.gauges name (ref value);
            t.gauge_order <- name :: t.gauge_order
        end);
    flush = ignore;
  }

let span_stat t name =
  Option.map
    (fun s -> (s.count, s.total_s, s.max_s))
    (Hashtbl.find_opt t.spans name)

let span_total t name =
  match Hashtbl.find_opt t.spans name with
  | Some s -> Some s.total_s
  | None -> None

let counter_total t name =
  Option.map ( ! ) (Hashtbl.find_opt t.counters name)

(* Span rows, heaviest first: (name, count, total_s, mean_s, max_s). *)
let span_rows t =
  List.rev t.span_order
  |> List.map (fun name ->
         let s = Hashtbl.find t.spans name in
         (name, s.count, s.total_s, s.total_s /. float_of_int s.count, s.max_s))
  |> List.stable_sort (fun (_, _, a, _, _) (_, _, b, _, _) -> compare b a)

let counter_rows t =
  List.rev t.counter_order
  |> List.map (fun name -> (name, !(Hashtbl.find t.counters name)))

let gauge_rows t =
  List.rev t.gauge_order
  |> List.map (fun name -> (name, !(Hashtbl.find t.gauges name)))

let report t =
  let module T = Fbb_util.Texttab in
  let buf = Buffer.create 1024 in
  let spans = span_rows t in
  if spans <> [] then begin
    let tab =
      T.create ~headers:[ "span"; "count"; "total s"; "mean s"; "max s" ]
    in
    List.iter
      (fun (name, count, total, mean, mx) ->
        T.add_row tab
          [
            name;
            T.cell_i count;
            T.cell_f ~digits:4 total;
            T.cell_f ~digits:6 mean;
            T.cell_f ~digits:6 mx;
          ])
      spans;
    Buffer.add_string buf (T.render tab)
  end;
  let counters = counter_rows t in
  if counters <> [] then begin
    let tab = T.create ~headers:[ "counter"; "total" ] in
    List.iter
      (fun (name, v) -> T.add_row tab [ name; T.cell_i v ])
      counters;
    Buffer.add_string buf (T.render tab)
  end;
  let gauges = gauge_rows t in
  if gauges <> [] then begin
    let tab = T.create ~headers:[ "gauge"; "value" ] in
    List.iter
      (fun (name, v) -> T.add_row tab [ name; T.cell_f ~digits:4 v ])
      gauges;
    Buffer.add_string buf (T.render tab)
  end;
  if Buffer.length buf = 0 then Buffer.add_string buf "(no events recorded)\n";
  Buffer.contents buf

let to_csv t =
  let csv =
    Fbb_util.Csv.create
      ~headers:[ "kind"; "name"; "count"; "total_s"; "mean_s"; "max_s" ]
  in
  List.iter
    (fun (name, count, total, mean, mx) ->
      Fbb_util.Csv.add_row csv
        [
          "span";
          name;
          string_of_int count;
          Printf.sprintf "%.9f" total;
          Printf.sprintf "%.9f" mean;
          Printf.sprintf "%.9f" mx;
        ])
    (span_rows t);
  List.iter
    (fun (name, v) ->
      Fbb_util.Csv.add_row csv [ "counter"; name; "1"; string_of_int v; ""; "" ])
    (counter_rows t);
  List.iter
    (fun (name, v) ->
      Fbb_util.Csv.add_row csv
        [ "gauge"; name; "1"; Printf.sprintf "%.9g" v; ""; "" ])
    (gauge_rows t);
  csv
