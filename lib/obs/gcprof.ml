(* Per-span GC attribution.

   [Span.with_] snapshots [Gc.quick_stat] when a span opens (sink
   installed and profiling enabled) and emits the delta as one
   {!Event.Gc_sample} when it closes, so a profile answers "which stage
   allocated those words / triggered those collections" the same way
   span durations answer "where did the time go". quick_stat reads the
   calling domain's counters without forcing a collection, so the
   samples are cheap and the deltas are monotone on a single domain;
   nested spans each report their own (inclusive) delta, exactly like
   durations.

   GC sampling rides the same switch as the rest of the
   instrumentation - no sink, no cost - plus its own [set_enabled]
   escape hatch for micro-benchmarks that want spans but not the two
   quick_stat calls per span. *)

type sample = {
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  top_heap_words : int;
}

let enabled_flag = Atomic.make true

let set_enabled b = Atomic.set enabled_flag b

let enabled () = Atomic.get enabled_flag

let sample () =
  let s = Gc.quick_stat () in
  {
    (* Not [s.Gc.minor_words]: on OCaml 5.x quick_stat's counter only
       advances at minor collections, so short spans would read 0.
       [Gc.minor_words ()] reads the live allocation pointer. *)
    minor_words = Gc.minor_words ();
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    top_heap_words = s.Gc.top_heap_words;
  }

(* Word counters are monotone on one domain, but clamp anyway: a
   negative delta in a report would read as a bug in the profiled code
   rather than in the profiler. *)
let delta ~before ~after =
  {
    minor_words = Float.max 0.0 (after.minor_words -. before.minor_words);
    major_words = Float.max 0.0 (after.major_words -. before.major_words);
    minor_collections =
      Stdlib.max 0 (after.minor_collections - before.minor_collections);
    major_collections =
      Stdlib.max 0 (after.major_collections - before.major_collections);
    top_heap_words = after.top_heap_words;
  }

let emit_span_delta ~name ~ts before =
  let d = delta ~before ~after:(sample ()) in
  Sink.emit
    (Event.Gc_sample
       {
         name;
         minor_words = d.minor_words;
         major_words = d.major_words;
         minor_collections = d.minor_collections;
         major_collections = d.major_collections;
         top_heap_words = d.top_heap_words;
         ts;
       })
