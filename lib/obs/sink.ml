(* A sink consumes events; at most one is installed at a time (compose
   with [tee] to fan out). The default state is *no* sink: every
   instrumentation primitive checks [current] with one atomic load and
   falls through, so the uninstrumented hot path stays allocation-free.

   Domain-safety: sinks themselves (aggregate hashtables, JSONL
   buffers) are single-threaded code, so [emit]/[flush] serialize all
   deliveries through one mutex. Events from worker domains interleave
   in the shared stream - each carries its own per-domain span depth -
   which is the "merge at span close" the pool relies on. Install and
   clear are meant to bracket parallel sections, not race with them. *)

type t = {
  emit : Event.t -> unit;
  flush : unit -> unit;  (* make buffered output durable *)
}

(* Explicit no-op sink. Installing it exercises the full event path
   (span clock reads, counter flushes) while discarding everything -
   useful for measuring instrumentation overhead; [None] is the
   zero-overhead default. *)
let null = { emit = ignore; flush = ignore }

let tee a b =
  {
    emit =
      (fun ev ->
        a.emit ev;
        b.emit ev);
    flush =
      (fun () ->
        a.flush ();
        b.flush ());
  }

let current : t option Atomic.t = Atomic.make None

let emit_mutex = Mutex.create ()

let installed () = Atomic.get current

let enabled () = Option.is_some (Atomic.get current)

let install s = Atomic.set current (Some s)

let locked f =
  Mutex.lock emit_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock emit_mutex) f

let emit ev =
  match Atomic.get current with
  | None -> ()
  | Some s -> locked (fun () -> s.emit ev)

let flush () =
  match Atomic.get current with
  | None -> ()
  | Some s -> locked (fun () -> s.flush ())

let clear () =
  flush ();
  Atomic.set current None

(* Scoped installation; restores the previous sink (if any) on exit. *)
let with_installed s f =
  let prev = Atomic.get current in
  Atomic.set current (Some s);
  Fun.protect
    ~finally:(fun () ->
      locked (fun () -> s.flush ());
      Atomic.set current prev)
    f

(* Scoped removal: run [f] with no sink at all, e.g. so micro-benchmarks
   measure the uninstrumented path even inside a traced harness. *)
let suspended f =
  let prev = Atomic.get current in
  Atomic.set current None;
  Fun.protect ~finally:(fun () -> Atomic.set current prev) f
