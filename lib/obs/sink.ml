(* A sink consumes events; at most one is installed at a time (compose
   with [tee] to fan out). The default state is *no* sink: every
   instrumentation primitive checks [installed] with one ref read and
   falls through, so the uninstrumented hot path stays allocation-free. *)

type t = {
  emit : Event.t -> unit;
  flush : unit -> unit;  (* make buffered output durable *)
}

(* Explicit no-op sink. Installing it exercises the full event path
   (span clock reads, counter flushes) while discarding everything -
   useful for measuring instrumentation overhead; [None] is the
   zero-overhead default. *)
let null = { emit = ignore; flush = ignore }

let tee a b =
  {
    emit =
      (fun ev ->
        a.emit ev;
        b.emit ev);
    flush =
      (fun () ->
        a.flush ();
        b.flush ());
  }

let installed : t option ref = ref None

let enabled () = Option.is_some !installed

let install s = installed := Some s

let clear () =
  (match !installed with Some s -> s.flush () | None -> ());
  installed := None

let emit ev = match !installed with None -> () | Some s -> s.emit ev

let flush () = match !installed with None -> () | Some s -> s.flush ()

(* Scoped installation; restores the previous sink (if any) on exit. *)
let with_installed s f =
  let prev = !installed in
  installed := Some s;
  Fun.protect
    ~finally:(fun () ->
      s.flush ();
      installed := prev)
    f

(* Scoped removal: run [f] with no sink at all, e.g. so micro-benchmarks
   measure the uninstrumented path even inside a traced harness. *)
let suspended f =
  let prev = !installed in
  installed := None;
  Fun.protect ~finally:(fun () -> installed := prev) f
