(** Time-series ring buffers of telemetry samples.

    A series holds the last [cap] (wall-clock timestamp, value) samples
    of one metric. The telemetry sampler is the single writer; readers
    (the /snapshot.json endpoint, [fbbopt top]) are lock-free and may
    observe one transiently out-of-order point at the ring seam while a
    push is in flight — acceptable for dashboards, and the documented
    price of scrapes that never block the sampler. *)

type t

val create : ?cap:int -> string -> t
(** Free-standing ring (not registered); [cap] defaults to 240
    samples — 2 minutes of history at the default 500 ms tick. *)

val make : ?cap:int -> string -> t
(** Registry series: idempotent and thread-safe per name, like
    [Counter.make]. [cap] applies only on first creation. *)

val name : t -> string
val capacity : t -> int

val length : t -> int
(** Number of samples currently held, at most [capacity]. *)

val push : t -> ts:float -> float -> unit
(** Append one sample, evicting the oldest when full. Single-writer:
    only the telemetry sampler should push to a registered series. *)

val points : t -> (float * float) array
(** Held samples, oldest first. NaN values mean "no data this tick"
    (e.g. an interval percentile of an idle histogram) and render as
    gaps. *)

val values : t -> float array
(** [points] without the timestamps. *)

val last : t -> (float * float) option
(** Most recent sample, if any. *)

val reset : t -> unit
val reset_all : unit -> unit
val registered : unit -> t list
(** Registry series in first-registration order. *)
