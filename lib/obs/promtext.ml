(* Prometheus text exposition (format version 0.0.4) over the live
   registries, plus a validator for the same format so CI can assert a
   scrape is well-formed without a real Prometheus in the loop.

   Rendering: counters become <name>_total counters, gauges plain
   gauges, histograms summaries with p50/p90/p99 quantile lines (the
   log-bucketed grid is ours, not Prometheus's, so summaries transport
   the percentiles we already compute; _sum/_count still allow rate()
   arithmetic server-side). Metric names pass through [metric_name],
   which maps every character outside [a-zA-Z0-9_:] to '_' and prefixes
   "fbb_", so "par.tasks" scrapes as fbb_par_tasks_total. *)

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let metric_name name =
  let b = Buffer.create (String.length name + 4) in
  Buffer.add_string b "fbb_";
  String.iter (fun c -> Buffer.add_char b (if is_name_char c then c else '_')) name;
  Buffer.contents b

(* Prometheus float syntax: decimal, NaN, +Inf, -Inf. %.17g round-trips
   doubles exactly. *)
let fmt_float v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.17g" v

(* HELP text escaping per the exposition format: backslash and newline
   only. Registry names can contain anything a span name can — a raw
   newline would otherwise split the HELP line and corrupt the page. *)
let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Label-value escaping additionally covers the double quote (trace
   ids are client-supplied request ids — anything can be in them). *)
let escape_label s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render () =
  let b = Buffer.create 4096 in
  let meta name typ help =
    Buffer.add_string b
      (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ)
  in
  let ts = metric_name "obs.scrape_time_unix_seconds" in
  meta ts "gauge" "Wall-clock time at exposition.";
  Buffer.add_string b (Printf.sprintf "%s %s\n" ts (fmt_float (Clock.now_unix ())));
  List.iter
    (fun (name, total) ->
      let n = metric_name name ^ "_total" in
      meta n "counter" (Printf.sprintf "Cumulative count of %s." name);
      Buffer.add_string b (Printf.sprintf "%s %d\n" n total))
    (Counter.totals ());
  List.iter
    (fun (name, v) ->
      let n = metric_name name in
      meta n "gauge" (Printf.sprintf "Last value of gauge %s." name);
      Buffer.add_string b (Printf.sprintf "%s %s\n" n (fmt_float v)))
    (Counter.Gauge.values ());
  List.iter
    (fun h ->
      if Histogram.count h > 0 then begin
        let name = Histogram.name h in
        let n = metric_name name ^ "_seconds" in
        if Histogram.exemplars_enabled h then begin
          (* Exemplar-enabled histograms expose their buckets (only the
             non-empty ones — the log-linear grid has ~1k) so each
             [le] edge can carry its last trace id in OpenMetrics
             exemplar syntax: a scraped p99 links to one request. *)
          meta n "histogram" (Printf.sprintf "Distribution of %s durations." name);
          let cum = ref 0 in
          List.iter
            (fun (i, c) ->
              cum := !cum + c;
              let ex =
                match Histogram.exemplar_of_bucket h i with
                | None -> ""
                | Some e ->
                  Printf.sprintf " # {trace_id=\"%s\"} %s %s"
                    (escape_label e.Histogram.ex_trace)
                    (fmt_float e.Histogram.ex_value)
                    (fmt_float e.Histogram.ex_ts)
              in
              Buffer.add_string b
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d%s\n" n
                   (fmt_float (Histogram.bucket_upper i))
                   !cum ex))
            (Histogram.nonzero_buckets h);
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n (Histogram.count h))
        end
        else begin
          meta n "summary" (Printf.sprintf "Distribution of %s durations." name);
          List.iter
            (fun (q, p) ->
              match Histogram.percentile_opt h p with
              | None -> ()
              | Some v ->
                Buffer.add_string b
                  (Printf.sprintf "%s{quantile=\"%s\"} %s\n" n q (fmt_float v)))
            [ ("0.5", 0.5); ("0.9", 0.9); ("0.99", 0.99) ]
        end;
        Buffer.add_string b
          (Printf.sprintf "%s_sum %s\n" n (fmt_float (Histogram.sum h)));
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" n (Histogram.count h))
      end)
    (Histogram.registered ());
  Buffer.contents b

(* ----- validator -------------------------------------------------------- *)

(* Line-oriented checker for the exposition format: comment lines must
   be well-formed HELP/TYPE when they claim to be, sample lines must be
   <name>[{labels}] <value> [<timestamp>]. Returns the first offence
   with its 1-based line number. *)

let known_types = [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ]

let valid_name s =
  String.length s > 0
  && (let c = s.[0] in not (c >= '0' && c <= '9'))
  && String.for_all is_name_char s

let valid_value s =
  match s with
  | "NaN" | "+Inf" | "-Inf" | "Inf" -> true
  | _ -> ( match float_of_string_opt s with Some _ -> true | None -> false)

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

(* A comment line is either a HELP/TYPE declaration (whose metric name
   the caller tracks for duplicate-block detection) or free text. *)
let check_comment line =
  match split_ws line with
  | "#" :: "TYPE" :: name :: [ typ ] ->
    if not (valid_name name) then Error ("bad metric name in TYPE: " ^ name)
    else if not (List.mem typ known_types) then
      Error ("unknown metric type: " ^ typ)
    else Ok (`Type name)
  | "#" :: "TYPE" :: _ -> Error "TYPE line needs exactly a name and a type"
  | "#" :: "HELP" :: name :: _ ->
    if valid_name name then Ok (`Help name)
    else Error ("bad metric name in HELP: " ^ name)
  | "#" :: "HELP" :: [] -> Error "HELP line needs a metric name"
  | _ -> Ok `Other (* arbitrary comment *)

(* Walk an optional {k="v",...} label block starting at [i] (just past
   the opening brace); returns the index past the closing brace. *)
let rec scan_labels line i =
  let n = String.length line in
  if i >= n then Error "unterminated label block"
  else if line.[i] = '}' then Ok (i + 1)
  else begin
    let j = ref i in
    while !j < n && is_name_char line.[!j] do incr j done;
    if !j = i then Error "empty label name"
    else if !j >= n || line.[!j] <> '=' then Error "label missing '='"
    else if !j + 1 >= n || line.[!j + 1] <> '"' then
      Error "label value must be quoted"
    else begin
      let k = ref (!j + 2) in
      let closed = ref false in
      while (not !closed) && !k < n do
        if line.[!k] = '\\' then k := !k + 2
        else if line.[!k] = '"' then closed := true
        else incr k
      done;
      if not !closed then Error "unterminated label value"
      else
        let k = !k + 1 in
        if k < n && line.[k] = ',' then scan_labels line (k + 1)
        else if k < n && line.[k] = '}' then Ok (k + 1)
        else Error "label block: expected ',' or '}'"
    end
  end

(* OpenMetrics exemplar suffix: " # {labels} value [timestamp]",
   starting at index [i] (just past the '#'). Only metrics made of
   counting samples may carry one, which the caller enforces. *)
let check_exemplar line i =
  let n = String.length line in
  let i = ref i in
  while !i < n && line.[!i] = ' ' do incr i done;
  if !i >= n || line.[!i] <> '{' then Error "exemplar needs a {label} set"
  else
    match scan_labels line (!i + 1) with
    | Error e -> Error ("exemplar " ^ e)
    | Ok j -> (
      match split_ws (String.sub line j (n - j)) with
      | [ value ] ->
        if valid_value value then Ok ()
        else Error ("bad exemplar value: " ^ value)
      | [ value; timestamp ] ->
        if not (valid_value value) then Error ("bad exemplar value: " ^ value)
        else if float_of_string_opt timestamp = None then
          Error ("bad exemplar timestamp: " ^ timestamp)
        else Ok ()
      | [] -> Error "exemplar has no value"
      | _ -> Error "trailing tokens after exemplar value and timestamp")

let ends_with ~suffix s =
  let ls = String.length suffix and ln = String.length s in
  ln >= ls && String.sub s (ln - ls) ls = suffix

let check_sample line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && is_name_char line.[!i] do incr i done;
  if !i = 0 then Error "sample line must start with a metric name"
  else if not (valid_name (String.sub line 0 !i)) then
    Error "invalid metric name"
  else begin
    let mname = String.sub line 0 !i in
    let after_labels =
      if !i < n && line.[!i] = '{' then scan_labels line (!i + 1) else Ok !i
    in
    match after_labels with
    | Error e -> Error e
    | Ok j -> (
      (* A '#' after the label block opens an exemplar section: values
         and timestamps cannot contain one. *)
      let rest_end =
        match String.index_from_opt line j '#' with Some k -> k | None -> n
      in
      let exemplar =
        if rest_end = n then Ok ()
        else if not (ends_with ~suffix:"_bucket" mname
                     || ends_with ~suffix:"_total" mname)
        then Error "exemplar on a non-counting sample"
        else check_exemplar line (rest_end + 1)
      in
      match exemplar with
      | Error e -> Error e
      | Ok () -> (
        let rest = String.sub line j (rest_end - j) in
        match split_ws rest with
        | [ value ] ->
          if valid_value value then Ok () else Error ("bad value: " ^ value)
        | [ value; timestamp ] ->
          if not (valid_value value) then Error ("bad value: " ^ value)
          else if int_of_string_opt timestamp = None then
            Error ("bad timestamp: " ^ timestamp)
          else Ok ()
        | [] -> Error "sample line has no value"
        | _ -> Error "trailing tokens after value and timestamp"))
  end

let validate text =
  let lines = String.split_on_char '\n' text in
  (* One HELP and one TYPE block per metric name: a page where two
     registry names sanitize to the same metric would otherwise pass
     per-line checks while confusing every real scraper. *)
  let seen_help = Hashtbl.create 64 and seen_type = Hashtbl.create 64 in
  let note tbl what name =
    if Hashtbl.mem tbl name then
      Error (Printf.sprintf "duplicate %s block for metric %s" what name)
    else begin
      Hashtbl.add tbl name ();
      Ok ()
    end
  in
  let rec go lineno = function
    | [] -> Ok ()
    | line :: rest -> (
      let verdict =
        if line = "" then Ok ()
        else if line.[0] = '#' then
          match check_comment line with
          | Error e -> Error e
          | Ok (`Help name) -> note seen_help "HELP" name
          | Ok (`Type name) -> note seen_type "TYPE" name
          | Ok `Other -> Ok ()
        else check_sample line
      in
      match verdict with
      | Ok () -> go (lineno + 1) rest
      | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go 1 lines
