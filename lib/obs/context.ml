(* Request/trace contexts. A context names the logical request a piece
   of work belongs to — a trace id plus the span that was innermost when
   the context was minted — and rides in domain-local storage so that
   instrumentation can read it without threading an argument through
   every call. [Pool.run_batch] captures the submitting domain's context
   and re-establishes it around each task on the worker domains, so
   spans emitted from parallel sections carry the originating request's
   trace id even though they run elsewhere.

   Trace ids only need to be unique within the artifacts one process
   emits plus cheap to mint from any domain: pid + atomic counter. They
   are deliberately strings, so a daemon fronting several processes can
   also accept externally supplied ids untouched. *)

type t = { trace : string; parent_span : string }

let seq = Atomic.make 0

let fresh_trace () =
  Printf.sprintf "t%d-%d" (Unix.getpid ()) (Atomic.fetch_and_add seq 1)

(* The calling domain's active context. A [ref] in DLS, not a DLS value
   per context, so save/restore is two writes. *)
let key = Domain.DLS.new_key (fun () -> ref None)

(* Stack of open span names on this domain, maintained by [Span.with_]
   whenever a sink is installed. [make] reads the top as the parent
   span, giving "which phase issued this request" for free. *)
let span_stack_key = Domain.DLS.new_key (fun () -> ref [])

let current () = !(Domain.DLS.get key)

let trace_id () =
  match current () with Some c -> c.trace | None -> ""

let innermost_span () =
  match !(Domain.DLS.get span_stack_key) with [] -> "" | s :: _ -> s

let make ?trace () =
  let trace = match trace with Some id -> id | None -> fresh_trace () in
  { trace; parent_span = innermost_span () }

let with_opt ctx f =
  let slot = Domain.DLS.get key in
  let saved = !slot in
  slot := ctx;
  Fun.protect ~finally:(fun () -> slot := saved) f

let with_ ctx f = with_opt (Some ctx) f

let push_span name =
  let st = Domain.DLS.get span_stack_key in
  st := name :: !st

let pop_span () =
  let st = Domain.DLS.get span_stack_key in
  match !st with [] -> () | _ :: rest -> st := rest
