(** JSONL trace sink: one event per line, for offline analysis or
    Chrome trace_event conversion. *)

type t

val create : string -> t
(** Open (truncating) the trace file. *)

val sink : t -> Sink.t
val close : t -> unit
