(** JSONL trace sink: one event per line, for offline analysis or
    Chrome trace_event conversion (see {!Trace_export}). *)

type t

val create : string -> t
(** Open (truncating) the trace file. *)

val sink : t -> Sink.t

val close : t -> unit
(** Flush, [fsync] (best-effort on non-regular files) and close.
    Idempotent; events emitted after close are dropped. *)
