(** Seeded deterministic fault-injection registry.

    Faults fire at {b named sites} compiled into the production code
    (each is a plain function call, disabled by default and costing
    one atomic load):

    - ["pool.worker"] — a hard exception inside a {!Fbb_par.Pool}
      task; the pool quarantines the chunk and re-raises it at the
      join point as [Worker_error] with the failing task index;
    - ["pool.transient"] — a transient task failure; the pool retries
      the chunk with bounded deterministic backoff;
    - ["lp.pivot_limit"] — forces {!Fbb_lp.Simplex.solve} to report
      [Pivot_limit] without solving, exercising the B&B and cascade
      degradation paths;
    - ["io.transient"] — a transient I/O error inside
      {!Fbb_util.Atomic_io.write_atomic} (installed by
      {!install_io_faults}); the write is retried, and the crash-safe
      protocol guarantees the destination is never corrupted;
    - ["budget.exhaust"] — {!Fbb_core.Cascade} treats the current
      stage's budget as exhausted on entry;
    - ["serve.solver_crash"] — kills the {!Fbb_serve.Server} solver
      thread after a batch is popped; the watchdog fails the in-flight
      requests as [Faulted] and restarts the solver;
    - ["serve.solver_stall"] — parks the solver past its stall
      threshold so the watchdog's heartbeat detection retires it.

    {b Determinism.} Whether the [n]-th evaluation of a site fires is
    a pure function of [(seed, site, n)] — a splitmix64 hash compared
    against the configured rate — so a fault run is replayable from
    its [RATE,SEED] pair alone. Evaluation ordinals are per-site
    atomic counters; under a parallel pool the set of firing ordinals
    is fixed even though which domain observes them is not.

    The referee side of a fuzz run (oracle, invariant checker) wraps
    itself in {!with_paused} so faults never corrupt ground truth. *)

exception Injected of { site : string; ordinal : int }
(** A hard injected fault. *)

exception Transient of { site : string; ordinal : int }
(** An injected fault the raising site is expected to retry. *)

val configure : rate:float -> seed:int -> unit
(** Enable injection: each site evaluation fires with probability
    [rate] (clamped to [0..1]), deterministically in [seed]. Resets
    all per-site counters and statistics. *)

val set_site_rate : string -> float -> unit
(** Override the firing rate for one site (clamped to [0..1]),
    keeping the configured seed. Call {b after} {!configure}, which
    resets all overrides. With a global rate of [0.0] this targets a
    chaos run at exactly the named sites. *)

val clear : unit -> unit
(** Disable injection and reset counters (including site-rate
    overrides). *)

val active : unit -> bool
(** Whether injection is configured and not paused. *)

val with_paused : (unit -> 'a) -> 'a
(** Run [f] with injection suspended (nestable) — the referee escape
    hatch. Counters do not advance while paused. *)

val fire : string -> bool
(** Evaluate the site once: [true] when a fault should be injected
    here. Always [false] when not {!active}. *)

val inject : string -> unit
(** [if fire site then raise (Injected ...)]. *)

val inject_transient : string -> unit
(** [if fire site then raise (Transient ...)]. *)

val is_transient : exn -> bool
(** Recognize {!Transient} (used by retry loops). *)

val install_io_faults : unit -> unit
(** Wire ["io.transient"] into {!Fbb_util.Atomic_io}: the [Write]
    phase hook raises {!Transient} when the site fires, and the
    transient predicate recognizes it so the write is retried. *)

val stats : unit -> (string * int * int) list
(** [(site, evaluations, injections)] per site touched since the last
    {!configure}/{!clear}, sorted by site name. *)
