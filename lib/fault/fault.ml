exception Injected of { site : string; ordinal : int }
exception Transient of { site : string; ordinal : int }

type site_state = {
  evaluations : int Atomic.t;
  injections : int Atomic.t;
}

type config = { rate : float; seed : int }

let config : config option Atomic.t = Atomic.make None

(* Pause depth > 0 suspends injection; nestable so a referee that
   itself calls a paused helper stays paused. *)
let pause_depth = Atomic.make 0

let injected_c = Fbb_obs.Counter.make "fault.injected"
let evaluated_c = Fbb_obs.Counter.make "fault.evaluated"

let sites : (string, site_state) Hashtbl.t = Hashtbl.create 16
let sites_mutex = Mutex.create ()

(* Per-site rate overrides: a chaos run can hold the global rate at 0
   and light up just the solver sites (or vice versa). Guarded by
   [sites_mutex]; read on every [fire] of an overridden site only. *)
let site_rates : (string, float) Hashtbl.t = Hashtbl.create 8

let site_state name =
  Mutex.protect sites_mutex (fun () ->
      match Hashtbl.find_opt sites name with
      | Some s -> s
      | None ->
        let s = { evaluations = Atomic.make 0; injections = Atomic.make 0 } in
        Hashtbl.add sites name s;
        s)

let reset_sites () =
  Mutex.protect sites_mutex (fun () ->
      Hashtbl.reset sites;
      Hashtbl.reset site_rates)

let configure ~rate ~seed =
  reset_sites ();
  Atomic.set config (Some { rate = Float.max 0.0 (Float.min 1.0 rate); seed })

let set_site_rate site rate =
  let rate = Float.max 0.0 (Float.min 1.0 rate) in
  Mutex.protect sites_mutex (fun () -> Hashtbl.replace site_rates site rate)

let site_rate site =
  Mutex.protect sites_mutex (fun () -> Hashtbl.find_opt site_rates site)

let clear () =
  reset_sites ();
  Atomic.set config None

let active () = Atomic.get config <> None && Atomic.get pause_depth = 0

let with_paused f =
  Atomic.incr pause_depth;
  Fun.protect ~finally:(fun () -> Atomic.decr pause_depth) f

(* splitmix64: the decision for (seed, site, ordinal) is a pure hash,
   so a run is replayable from its rate/seed pair alone. *)
let splitmix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let site_hash site =
  String.fold_left
    (fun acc c -> splitmix64 (Int64.add acc (Int64.of_int (Char.code c))))
    1469598103934665603L site

let decide ~seed ~site ~ordinal =
  let z =
    splitmix64
      (Int64.add
         (Int64.add (site_hash site) (Int64.of_int (seed * 0x9e3779b9)))
         (Int64.of_int ordinal))
  in
  (* Map the top 53 bits to [0,1). *)
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0

let fire site =
  match Atomic.get config with
  | None -> false
  | Some _ when Atomic.get pause_depth > 0 -> false
  | Some { rate; seed } ->
    let rate = Option.value (site_rate site) ~default:rate in
    let st = site_state site in
    let ordinal = Atomic.fetch_and_add st.evaluations 1 in
    Fbb_obs.Counter.incr evaluated_c;
    let hit = decide ~seed ~site ~ordinal < rate in
    if hit then begin
      Atomic.incr st.injections;
      Fbb_obs.Counter.incr injected_c
    end;
    hit

let ordinal_of site = Atomic.get (site_state site).evaluations - 1

let inject site =
  if fire site then raise (Injected { site; ordinal = ordinal_of site })

let inject_transient site =
  if fire site then raise (Transient { site; ordinal = ordinal_of site })

let is_transient = function Transient _ -> true | _ -> false

let install_io_faults () =
  Fbb_util.Atomic_io.set_transient_pred is_transient;
  Fbb_util.Atomic_io.set_fault_hook
    (Some
       (fun phase _path ->
         match phase with
         | Fbb_util.Atomic_io.Write -> inject_transient "io.transient"
         | Fbb_util.Atomic_io.Fsync | Fbb_util.Atomic_io.Rename -> ()))

let stats () =
  Mutex.protect sites_mutex (fun () ->
      Hashtbl.fold
        (fun name st acc ->
          (name, Atomic.get st.evaluations, Atomic.get st.injections) :: acc)
        sites [])
  |> List.sort compare
