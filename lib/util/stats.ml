let sum xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else sum xs /. float_of_int n

let stdev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (acc /. float_of_int n)

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let w = rank -. float_of_int lo in
    ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))

(* A zero or non-finite baseline makes "percent saved" meaningless; nan
   propagates to the reporting layer, which renders it as "-" instead of
   inf/nan leaking into tables. *)
let ratio_pct base v =
  if base = 0.0 || (not (Float.is_finite base)) || not (Float.is_finite v) then
    Float.nan
  else (base -. v) /. base *. 100.0

let ratio_pct_opt base v =
  let r = ratio_pct base v in
  if Float.is_finite r then Some r else None
