type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step: advance state by the golden ratio and mix. *)
let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = next t in
  { state = Int64.mul s 0x2545F4914F6CDD1DL }

let int t n =
  assert (n > 0);
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (next t) mask) in
  v mod n

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let uniform t =
  (* 53 high bits give a uniform double in [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next t) 11) in
  float_of_int bits /. 9007199254740992.0

let float t x = uniform t *. x

let gaussian t ~mu ~sigma =
  let rec draw () =
    let u1 = uniform t in
    if u1 <= 0.0 then draw ()
    else
      let u2 = uniform t in
      mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
  in
  draw ()

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choice t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
