(** Small descriptive-statistics helpers used by experiments and tests. *)

val mean : float array -> float
(** Arithmetic mean; 0 on an empty array. *)

val stdev : float array -> float
(** Population standard deviation; 0 for fewer than two samples. *)

val min_max : float array -> float * float
(** Smallest and largest element. Raises [Invalid_argument] on empty input. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0, 100], linear interpolation between
    order statistics. Raises [Invalid_argument] on empty input. *)

val sum : float array -> float

val ratio_pct : float -> float -> float
(** [ratio_pct base v] is the percentage change of [v] relative to [base]:
    [(base - v) / base * 100]. Returns [nan] when the baseline is zero or
    either argument is non-finite, so a meaningless ratio can never print
    as [inf]/[nan]: {!Texttab.cell_pct} and the experiment tables render
    it as ["-"]. *)

val ratio_pct_opt : float -> float -> float option
(** Like {!ratio_pct} but [None] instead of [nan] for meaningless
    ratios. *)
