type reason = Deadline | Work

type t = {
  started : float;
  deadline : float option;  (* absolute Unix time *)
  work : int option;
  used : int Atomic.t;
  tripped : reason option Atomic.t;
  infinite : bool;  (* the shared [unlimited] token: ticks are no-ops *)
}

let now () = Unix.gettimeofday ()

let make ~deadline_s ~work ~infinite =
  let started = now () in
  {
    started;
    deadline = Option.map (fun d -> started +. Float.max 0.0 d) deadline_s;
    work = Option.map (max 0) work;
    used = Atomic.make 0;
    tripped = Atomic.make None;
    infinite;
  }

let unlimited = make ~deadline_s:None ~work:None ~infinite:true

let create ?deadline_s ?work () = make ~deadline_s ~work ~infinite:false

let is_unlimited t = t.infinite

let trip t r =
  (* First trip wins; later ticks keep reporting the original reason. *)
  ignore (Atomic.compare_and_set t.tripped None (Some r))

(* The deadline is only consulted when one was set, so work-only
   budgets (the deterministic kind tests rely on) never read the
   clock. *)
let check_deadline t =
  match t.deadline with
  | Some d when now () > d -> trip t Deadline
  | Some _ | None -> ()

let tick ?(cost = 1) t =
  if t.infinite then true
  else begin
    (match t.work with
    | None -> if cost <> 0 then ignore (Atomic.fetch_and_add t.used cost)
    | Some limit ->
      let before = Atomic.fetch_and_add t.used cost in
      if before + cost > limit then trip t Work);
    if Atomic.get t.tripped = None then check_deadline t;
    Atomic.get t.tripped = None
  end

let ok t = tick ~cost:0 t

let exhausted t = not (ok t)

let reason t =
  if t.infinite then None
  else begin
    check_deadline t;
    Atomic.get t.tripped
  end

let work_used t = Atomic.get t.used

let remaining_work t =
  Option.map (fun limit -> max 0 (limit - Atomic.get t.used)) t.work

let elapsed_s t = now () -. t.started

let remaining_s t = Option.map (fun d -> Float.max 0.0 (d -. now ())) t.deadline

let sub ?(work_frac = 1.0) ?(deadline_frac = 1.0) t =
  if t.infinite then unlimited
  else begin
    let work =
      Option.map
        (fun rem ->
          if exhausted t then 0
          else if rem = 0 then 0
          else max 1 (int_of_float (ceil (float_of_int rem *. work_frac))))
        (remaining_work t)
    in
    let deadline_s =
      Option.map (fun rem -> rem *. Float.min 1.0 deadline_frac) (remaining_s t)
    in
    make ~deadline_s ~work ~infinite:false
  end

let consume t n =
  if (not t.infinite) && n > 0 then begin
    (match t.work with
    | None -> ignore (Atomic.fetch_and_add t.used n)
    | Some limit ->
      let before = Atomic.fetch_and_add t.used n in
      if before + n > limit then trip t Work);
    ()
  end
