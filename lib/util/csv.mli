(** Minimal CSV writer/reader for exporting experiment series (figure
    data) and round-tripping machine-readable artifacts. *)

type t

val create : headers:string list -> t

val add_row : t -> string list -> unit
(** Append a data row; cells containing commas, quotes or newlines are
    quoted per RFC 4180. *)

val render : t -> string

val save : t -> path:string -> unit
(** Write the CSV to [path], creating or truncating the file. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse : string -> string list list
(** Inverse of {!render}: split RFC 4180 text into records (the header
    line, when present, is just the first record). Quoted fields may
    contain commas, doubled quotes and embedded newlines; records are
    separated by [\n] or [\r\n], and a trailing newline does not produce
    an empty final record. Raises {!Parse_error} on an unterminated
    quoted field or on stray data after a closing quote. *)
