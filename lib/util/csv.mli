(** Minimal CSV writer for exporting experiment series (figure data). *)

type t

val create : headers:string list -> t

val add_row : t -> string list -> unit
(** Append a data row; cells containing commas, quotes or newlines are
    quoted per RFC 4180. *)

val render : t -> string

val save : t -> path:string -> unit
(** Write the CSV to [path], creating or truncating the file. *)
