(* Minimal JSON: a value type, a recursive-descent parser and a
   printer. Enough for the machine-readable artifacts this repo
   produces (bench session records, JSONL trace events) without an
   external dependency: object/array/string/number/bool/null, nested
   arbitrarily, with the string escapes those writers emit.

   Numbers are all floats (like JavaScript); [member_int] truncates.
   Object member order is preserved by the parser and the printer so
   round-trips are stable and diffs readable. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of int * string
(* character offset (0-based) and message *)

(* ----- parsing --------------------------------------------------------- *)

type state = { src : string; mutable pos : int }

let error st msg = raise (Parse_error (st.pos, msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      go ()
    | Some _ | None -> ()
  in
  go ()

let expect st ch =
  match peek st with
  | Some c when c = ch -> advance st
  | Some c -> error st (Printf.sprintf "expected '%c', got '%c'" ch c)
  | None -> error st (Printf.sprintf "expected '%c', got end of input" ch)

let parse_literal st lit value =
  let n = String.length lit in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = lit
  then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "expected %s" lit)

let parse_string_body st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | None -> error st "dangling escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if st.pos + 4 > String.length st.src then error st "short \\u escape";
          let hex = String.sub st.src st.pos 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | None -> error st "bad \\u escape"
          | Some code ->
            (* Encode the code point as UTF-8; codes above the BMP
               would arrive as surrogate pairs, which our writers never
               emit - map surrogates through as-is bytes. *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            st.pos <- st.pos + 4)
        | c -> error st (Printf.sprintf "bad escape '\\%c'" c)));
      go ()
    | Some c ->
      advance st;
      Buffer.add_char b c;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> error st (Printf.sprintf "bad number %S" s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let members = ref [] in
      let rec go () =
        skip_ws st;
        let key = parse_string_body st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        members := (key, v) :: !members;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          go ()
        | Some '}' -> advance st
        | _ -> error st "expected ',' or '}'"
      in
      go ();
      Obj (List.rev !members)
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Arr []
    end
    else begin
      let items = ref [] in
      let rec go () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          go ()
        | Some ']' -> advance st
        | _ -> error st "expected ',' or ']'"
      in
      go ();
      Arr (List.rev !items)
    end
  | Some '"' -> Str (parse_string_body st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> Num (parse_number st)

let parse s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then error st "trailing garbage";
  v

let parse_opt s = try Some (parse s) with Parse_error _ -> None

(* ----- printing -------------------------------------------------------- *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    (* %.17g round-trips every float; trim to the shortest that does. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec print_into buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f ->
    if Float.is_finite f then Buffer.add_string buf (number_to_string f)
    else Buffer.add_string buf "null" (* JSON has no inf/nan *)
  | Str s ->
    Buffer.add_char buf '"';
    escape_into buf s;
    Buffer.add_char buf '"'
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items ->
    Buffer.add_char buf '[';
    sep ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          sep ()
        end;
        pad (level + 1);
        print_into buf ~indent ~level:(level + 1) item)
      items;
    sep ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj members ->
    Buffer.add_char buf '{';
    sep ();
    List.iteri
      (fun i (k, item) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          sep ()
        end;
        pad (level + 1);
        Buffer.add_char buf '"';
        escape_into buf k;
        Buffer.add_string buf "\": ";
        print_into buf ~indent ~level:(level + 1) item)
      members;
    sep ();
    pad level;
    Buffer.add_char buf '}'

let to_string ?(indent = false) v =
  let buf = Buffer.create 256 in
  print_into buf ~indent ~level:0 v;
  Buffer.contents buf

let save ?indent v ~path =
  (* Atomic (write-tmp-fsync-rename): bench records and baselines must
     never be left half-written by a crash mid-save. *)
  Atomic_io.write_atomic ~path (to_string ?indent v ^ "\n")

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse s

(* ----- accessors ------------------------------------------------------- *)

let member key = function Obj members -> List.assoc_opt key members | _ -> None

let member_num key v =
  match member key v with Some (Num f) -> Some f | _ -> None

let member_str key v =
  match member key v with Some (Str s) -> Some s | _ -> None

let member_obj key v =
  match member key v with Some (Obj m) -> Some m | _ -> None

let member_arr key v =
  match member key v with Some (Arr items) -> Some items | _ -> None

let to_num = function Num f -> Some f | _ -> None

let to_str = function Str s -> Some s | _ -> None
