(** Cooperative budget / cancellation token for the solver stack.

    A budget bounds a computation two ways at once:

    - a {b work-tick budget}: a deterministic count of abstract work
      units (simplex pivots, B&B wave nodes, heuristic sweeps,
      Monte-Carlo samples, oracle leaves). Ticks are consumed at
      well-defined sequential points of each solver, so exhaustion —
      and therefore the anytime incumbent returned — is bit-identical
      at any {!Fbb_par.Pool} width and on any machine;
    - a {b wall-clock deadline}: seconds from creation, checked lazily
      on the same ticks. Deadlines make latency bounds real but are
      inherently machine-dependent; tests use work budgets only.

    Exhaustion is sticky: once either limit trips, every subsequent
    {!tick} and {!ok} reports exhaustion, and {!reason} says which
    limit tripped first. The work counter is atomic, so a budget may
    be shared across domains — though solvers that promise determinism
    only consume it from their sequential driver loop (see DESIGN.md).

    [unlimited] is the zero-cost default every solver falls back to:
    no allocation per tick, no clock reads. *)

type t

type reason =
  | Deadline  (** the wall-clock deadline passed *)
  | Work  (** the work-tick budget ran out *)

val unlimited : t
(** Never exhausts; ticks are (cheap) no-ops. *)

val create : ?deadline_s:float -> ?work:int -> unit -> t
(** [create ~deadline_s ~work ()] starts the clock now. Omitted limits
    are infinite; [create ()] behaves like {!unlimited} but is a fresh
    token (its {!work_used} still accumulates). [work] is clamped to
    [>= 0]; a zero work budget is exhausted by its first tick. *)

val is_unlimited : t -> bool
(** True only for {!unlimited} itself. *)

val tick : ?cost:int -> t -> bool
(** Consume [cost] (default 1) work units and re-check the deadline.
    Returns [true] when the computation may continue. The tick that
    crosses a limit returns [false]; so does every later one. *)

val ok : t -> bool
(** Like {!tick} with cost 0: re-checks the deadline without consuming
    work. *)

val exhausted : t -> bool
(** Sticky exhaustion flag ({!ok} plus a deadline re-check). *)

val reason : t -> reason option
(** Which limit tripped, once {!exhausted}. *)

val work_used : t -> int
(** Total work units consumed so far. *)

val remaining_work : t -> int option
(** [None] when no work limit was set; never negative. *)

val elapsed_s : t -> float
(** Wall-clock seconds since {!create}. *)

val remaining_s : t -> float option
(** Seconds until the deadline ([None] when no deadline; never
    negative). *)

val sub : ?work_frac:float -> ?deadline_frac:float -> t -> t
(** A child budget carved out of the parent's {e remaining} allowance:
    its work limit is [frac] of the parent's remaining work (rounded
    up, at least 1 when the parent has any left) and its deadline
    [frac] of the parent's remaining seconds. Fractions default to
    1.0 (inherit everything left). The child is independent — charge
    its {!work_used} back with {!consume} when the stage ends. An
    exhausted parent yields an immediately-exhausted child. *)

val consume : t -> int -> unit
(** Account work performed elsewhere (e.g. by a child budget) against
    this budget, without the continue/stop verdict of {!tick}. *)
