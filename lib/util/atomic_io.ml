type phase = Write | Fsync | Rename

let phase_name = function
  | Write -> "write"
  | Fsync -> "fsync"
  | Rename -> "rename"

let fault_hook : (phase -> string -> unit) option ref = ref None
let transient_pred : (exn -> bool) ref = ref (fun _ -> false)
let retry_count = Atomic.make 0

let set_fault_hook h = fault_hook := h
let set_transient_pred p = transient_pred := p
let retries () = Atomic.get retry_count

let max_attempts = 3

let hook phase path =
  match !fault_hook with None -> () | Some h -> h phase path

(* Distinct temp names per process and per call, so a crashed write
   can never be half-overwritten by a concurrent one. *)
let tmp_seq = Atomic.make 0

let tmp_path path =
  Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
    (Atomic.fetch_and_add tmp_seq 1)

let attempt ~path content =
  let tmp = tmp_path path in
  match
    hook Write path;
    let oc = open_out tmp in
    (try output_string oc content
     with e ->
       close_out_noerr oc;
       raise e);
    hook Fsync path;
    flush oc;
    (try Unix.fsync (Unix.descr_of_out_channel oc)
     with Unix.Unix_error _ -> () (* durability is best-effort on odd FS *));
    close_out oc;
    hook Rename path;
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
    (* The destination is untouched; only the temp file needs removing.
       A real crash would leave it behind, which is equally safe. *)
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let write_atomic ~path content =
  let rec go attempts_left =
    match attempt ~path content with
    | () -> ()
    | exception e when !transient_pred e && attempts_left > 1 ->
      Atomic.incr retry_count;
      (* Bounded deterministic backoff: no clock, just a fixed spin
         that grows with the retry ordinal. *)
      let ordinal = max_attempts - attempts_left in
      for _ = 0 to 100 * (ordinal + 1) do
        Domain.cpu_relax ()
      done;
      go (attempts_left - 1)
  in
  go max_attempts
