(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the library (circuit generators, process
    variation sampling, Monte-Carlo loops) takes an explicit [Rng.t] so that
    experiments are reproducible from a single integer seed. *)

type t

val create : seed:int -> t
(** Fresh generator. Equal seeds yield equal streams. *)

val copy : t -> t
(** Independent clone with the same current state. *)

val split : t -> t
(** Derive a new generator whose stream is decorrelated from [t]'s
    continuation; also advances [t]. *)

val int : t -> int -> int
(** [int t n] draws uniformly from [0, n-1]. [n] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range [lo, hi]. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t x] draws uniformly from [0, x). *)

val uniform : t -> float
(** Uniform draw in [0, 1). *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal draw via Box-Muller. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
