(** Minimal JSON value type, parser and printer.

    Covers what this repo's machine-readable artifacts need — bench
    session records and JSONL trace events — with no external
    dependency. All numbers are floats; object member order is
    preserved on both parse and print, so round-trips are stable. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of int * string
(** Character offset (0-based) and message. *)

val parse : string -> t
(** Parse a complete JSON document. Raises {!Parse_error} on malformed
    input or trailing garbage. *)

val parse_opt : string -> t option

val to_string : ?indent:bool -> t -> string
(** Render; [~indent:true] pretty-prints with two-space indentation.
    Non-finite numbers render as [null] (JSON has no inf/nan). *)

val save : ?indent:bool -> t -> path:string -> unit
(** Write [to_string v] plus a trailing newline to [path]. *)

val load : string -> t
(** Parse the file at [path]. Raises {!Parse_error} or [Sys_error]. *)

val member : string -> t -> t option
(** Object member lookup; [None] on missing key or non-object. *)

val member_num : string -> t -> float option
val member_str : string -> t -> string option
val member_obj : string -> t -> (string * t) list option
val member_arr : string -> t -> t list option
val to_num : t -> float option
val to_str : t -> string option
