type align = Left | Right

type row = Cells of string array | Rule

type t = {
  headers : string array;
  aligns : align array;
  mutable rows : row list; (* reversed *)
}

let create ~headers =
  let headers = Array.of_list headers in
  let aligns = Array.mapi (fun i _ -> if i = 0 then Left else Right) headers in
  { headers; aligns; rows = [] }

let set_align t i a = t.aligns.(i) <- a

let add_row t cells =
  let n = Array.length t.headers in
  let cells = Array.of_list cells in
  if Array.length cells > n then invalid_arg "Texttab.add_row: too many cells";
  let padded = Array.make n "" in
  Array.blit cells 0 padded 0 (Array.length cells);
  t.rows <- Cells padded :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let n = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  let note = function
    | Rule -> ()
    | Cells cs ->
      Array.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cs
  in
  List.iter note t.rows;
  let buf = Buffer.create 1024 in
  let pad i s =
    let w = widths.(i) in
    let gap = w - String.length s in
    match t.aligns.(i) with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s
  in
  let emit_cells cs =
    Buffer.add_string buf "| ";
    for i = 0 to n - 1 do
      Buffer.add_string buf (pad i cs.(i));
      Buffer.add_string buf (if i = n - 1 then " |" else " | ")
    done;
    Buffer.add_char buf '\n'
  in
  let emit_rule () =
    Buffer.add_string buf "|";
    for i = 0 to n - 1 do
      Buffer.add_string buf (String.make (widths.(i) + 2) '-');
      Buffer.add_char buf (if i = n - 1 then '|' else '+')
    done;
    Buffer.add_char buf '\n'
  in
  emit_rule ();
  emit_cells t.headers;
  emit_rule ();
  List.iter
    (function Cells cs -> emit_cells cs | Rule -> emit_rule ())
    (List.rev t.rows);
  emit_rule ();
  Buffer.contents buf

let print t = print_string (render t)

(* Non-finite values (e.g. a ratio against a zero baseline) render as
   "-", the paper's notation for a missing entry. *)
let cell_f ?(digits = 2) v =
  if Float.is_finite v then Printf.sprintf "%.*f" digits v else "-"

let cell_pct ?(digits = 2) v =
  if Float.is_finite v then Printf.sprintf "%.*f" digits v else "-"

let cell_i v = string_of_int v

(* Unicode block-element sparkline of the last [width] values, scaled
   to the finite min/max of that window; non-finite values (idle-tick
   percentiles) render as U+2024 one-dot-leader. Emits exactly [width]
   glyphs, each 3 bytes — the fill while the series warms up is U+2007
   figure space — so a column of sparklines over the same window is
   always [3 * width] bytes and [render]'s byte-length padding keeps
   the table aligned. *)
let spark_levels = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                      "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                      "\xe2\x96\x87"; "\xe2\x96\x88" |]

let spark_nan = "\xe2\x80\xa4" (* U+2024 one dot leader *)
let spark_pad = "\xe2\x80\x87" (* U+2007 figure space *)

let sparkline ?(width = 32) values =
  let n = Array.length values in
  let take = min n width in
  let window = Array.sub values (n - take) take in
  let finite = Array.to_list window |> List.filter Float.is_finite in
  let lo = List.fold_left Float.min Float.infinity finite in
  let hi = List.fold_left Float.max Float.neg_infinity finite in
  let buf = Buffer.create (3 * width) in
  for _ = take + 1 to width do
    Buffer.add_string buf spark_pad
  done;
  Array.iter
    (fun v ->
      if not (Float.is_finite v) then Buffer.add_string buf spark_nan
      else if hi <= lo then Buffer.add_string buf spark_levels.(0)
      else begin
        let lvl = int_of_float ((v -. lo) /. (hi -. lo) *. 7.99) in
        let lvl = if lvl < 0 then 0 else if lvl > 7 then 7 else lvl in
        Buffer.add_string buf spark_levels.(lvl)
      end)
    window;
  Buffer.contents buf
