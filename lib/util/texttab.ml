type align = Left | Right

type row = Cells of string array | Rule

type t = {
  headers : string array;
  aligns : align array;
  mutable rows : row list; (* reversed *)
}

let create ~headers =
  let headers = Array.of_list headers in
  let aligns = Array.mapi (fun i _ -> if i = 0 then Left else Right) headers in
  { headers; aligns; rows = [] }

let set_align t i a = t.aligns.(i) <- a

let add_row t cells =
  let n = Array.length t.headers in
  let cells = Array.of_list cells in
  if Array.length cells > n then invalid_arg "Texttab.add_row: too many cells";
  let padded = Array.make n "" in
  Array.blit cells 0 padded 0 (Array.length cells);
  t.rows <- Cells padded :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let n = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  let note = function
    | Rule -> ()
    | Cells cs ->
      Array.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cs
  in
  List.iter note t.rows;
  let buf = Buffer.create 1024 in
  let pad i s =
    let w = widths.(i) in
    let gap = w - String.length s in
    match t.aligns.(i) with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s
  in
  let emit_cells cs =
    Buffer.add_string buf "| ";
    for i = 0 to n - 1 do
      Buffer.add_string buf (pad i cs.(i));
      Buffer.add_string buf (if i = n - 1 then " |" else " | ")
    done;
    Buffer.add_char buf '\n'
  in
  let emit_rule () =
    Buffer.add_string buf "|";
    for i = 0 to n - 1 do
      Buffer.add_string buf (String.make (widths.(i) + 2) '-');
      Buffer.add_char buf (if i = n - 1 then '|' else '+')
    done;
    Buffer.add_char buf '\n'
  in
  emit_rule ();
  emit_cells t.headers;
  emit_rule ();
  List.iter
    (function Cells cs -> emit_cells cs | Rule -> emit_rule ())
    (List.rev t.rows);
  emit_rule ();
  Buffer.contents buf

let print t = print_string (render t)

(* Non-finite values (e.g. a ratio against a zero baseline) render as
   "-", the paper's notation for a missing entry. *)
let cell_f ?(digits = 2) v =
  if Float.is_finite v then Printf.sprintf "%.*f" digits v else "-"

let cell_pct ?(digits = 2) v =
  if Float.is_finite v then Printf.sprintf "%.*f" digits v else "-"

let cell_i v = string_of_int v
