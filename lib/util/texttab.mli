(** Plain-text table rendering for experiment reports.

    Produces aligned, pipe-separated tables similar to the ones in the paper,
    suitable for both terminal output and EXPERIMENTS.md code blocks. *)

type align = Left | Right

type t

val create : headers:string list -> t
(** New table with the given column headers. Columns default to
    right-alignment except the first, which is left-aligned. *)

val set_align : t -> int -> align -> unit
(** Override the alignment of column [i]. *)

val add_row : t -> string list -> unit
(** Append a row. Rows shorter than the header are padded with empty cells;
    longer rows raise [Invalid_argument]. *)

val add_rule : t -> unit
(** Append a horizontal rule. *)

val render : t -> string
(** Render the table to a string (with trailing newline). *)

val print : t -> unit
(** [render] followed by [print_string]. *)

val cell_f : ?digits:int -> float -> string
(** Format a float cell with [digits] decimals (default 2). Non-finite
    values render as ["-"]. *)

val cell_pct : ?digits:int -> float -> string
(** Format a percentage cell, e.g. [23.08]. Default 2 decimals.
    Non-finite values (a ratio against a zero/NaN baseline) render as
    ["-"]. *)

val cell_i : int -> string

val sparkline : ?width:int -> float array -> string
(** Unicode block-element sparkline ("▁▂▅█") of the last [width]
    (default 32) values, scaled to the window's finite min/max.
    Non-finite values render as a dot leader; while the window is
    still filling the left side is padded with figure spaces. The
    result always holds exactly [width] glyphs of 3 bytes each, so a
    column of sparklines stays byte- and display-aligned. Used by
    [fbbopt top] for Series columns. *)
