(** Crash-safe file writes: write a temporary sibling, fsync it, then
    atomically rename over the destination.

    A reader therefore always sees either the complete previous
    content or the complete new content — a crash (or an injected
    fault) between any two steps leaves at worst a stray [*.tmp.*]
    file next to the target, never a truncated or interleaved
    destination. [bench.json], committed baselines, fuzz corpus and
    repro case files all go through this path.

    {b Fault hooks.} [Fbb_fault] (or a test) can install a hook that
    runs at each phase; a hook that raises simulates a crash or a
    transient I/O error at that exact point. Exceptions satisfying the
    installed transient predicate are retried with a bounded,
    deterministic backoff; anything else cleans up the temporary file
    and propagates (the destination is untouched — that is the
    crash-safety contract the kill-point test pins down). *)

type phase =
  | Write  (** after opening, before/while writing the temp file *)
  | Fsync  (** after the temp file's content is complete *)
  | Rename  (** immediately before the atomic rename *)

val phase_name : phase -> string

val set_fault_hook : (phase -> string -> unit) option -> unit
(** Install (or clear) the hook, called as [hook phase dest_path] at
    every phase of every atomic write. The hook may raise. *)

val set_transient_pred : (exn -> bool) -> unit
(** Which hook exceptions count as transient (retried, up to
    {!max_attempts} total tries). Default: none. *)

val max_attempts : int
(** Total tries per write when transient faults keep firing (3). *)

val write_atomic : path:string -> string -> unit
(** [write_atomic ~path content] publishes [content] at [path]
    atomically. Raises [Sys_error] on real I/O failure and re-raises
    non-transient hook exceptions after deleting the temp file. *)

val retries : unit -> int
(** Process-wide count of transient-fault retries performed (for
    tests and fault-injection reports). *)
