type t = { headers : string list; mutable rows : string list list }

let create ~headers = { headers; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let needs_quote s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if not (needs_quote s) then s
  else
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf

let render t =
  let buf = Buffer.create 1024 in
  let emit row =
    Buffer.add_string buf (String.concat "," (List.map escape row));
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  List.iter emit (List.rev t.rows);
  Buffer.contents buf

exception Parse_error of int * string

(* Single-pass RFC 4180 state machine. [line] tracks physical lines so
   errors inside multi-line quoted fields point at the opening line. *)
let parse s =
  let n = String.length s in
  let rows = ref [] and row = ref [] in
  let field = Buffer.create 32 in
  let line = ref 1 in
  let flush_field () =
    row := Buffer.contents field :: !row;
    Buffer.clear field
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !row :: !rows;
    row := []
  in
  let rec unquoted i =
    if i >= n then begin
      (* no trailing newline: the dangling fragment is the last record,
         unless the file is empty or ended exactly at a row boundary *)
      if Buffer.length field > 0 || !row <> [] then flush_row ()
    end
    else
      match s.[i] with
      | ',' ->
        flush_field ();
        unquoted (i + 1)
      | '\n' ->
        incr line;
        flush_row ();
        unquoted (i + 1)
      | '\r' when i + 1 < n && s.[i + 1] = '\n' ->
        incr line;
        flush_row ();
        unquoted (i + 2)
      | '"' when Buffer.length field = 0 -> quoted !line (i + 1)
      | c ->
        Buffer.add_char field c;
        unquoted (i + 1)
  and quoted start i =
    if i >= n then raise (Parse_error (start, "unterminated quoted field"))
    else
      match s.[i] with
      | '"' when i + 1 < n && s.[i + 1] = '"' ->
        Buffer.add_char field '"';
        quoted start (i + 2)
      | '"' -> begin
        (* the closing quote must end the field *)
        if i + 1 >= n then begin
          flush_row ();
          ()
        end
        else
          match s.[i + 1] with
          | ',' | '\n' | '\r' -> unquoted (i + 1)
          | _ -> raise (Parse_error (!line, "data after closing quote"))
      end
      | '\n' ->
        incr line;
        Buffer.add_char field '\n';
        quoted start (i + 1)
      | c ->
        Buffer.add_char field c;
        quoted start (i + 1)
  in
  unquoted 0;
  List.rev !rows

let save t ~path = Atomic_io.write_atomic ~path (render t)
