type t = { headers : string list; mutable rows : string list list }

let create ~headers = { headers; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let needs_quote s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if not (needs_quote s) then s
  else
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf

let render t =
  let buf = Buffer.create 1024 in
  let emit row =
    Buffer.add_string buf (String.concat "," (List.map escape row));
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  List.iter emit (List.rev t.rows);
  Buffer.contents buf

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render t))
