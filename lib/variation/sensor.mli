(** Post-silicon timing sensing (paper section 3.1).

    Two sensing styles from the literature the paper cites:
    - critical-path replica [5]: a copy of the nominal critical path is
      timed; it sees only the slowdown of that one path, so spatially
      non-uniform degradation can escape it;
    - in-situ flip-flop monitors [3]: every endpoint flags a "timing
      alarm" when data arrives later than the nominal critical delay; the
      measured slowdown is the worst over all monitored paths. *)

type reading = {
  slowdown : float;
      (** measured beta: fractional delay increase vs nominal, >= 0 *)
  alarms : int;  (** endpoints arriving after the nominal critical delay *)
}

val critical_path_replica :
  nominal:Fbb_sta.Timing.t -> degraded:Fbb_sta.Timing.t -> reading

val in_situ_monitors :
  nominal:Fbb_sta.Timing.t -> degraded:Fbb_sta.Timing.t -> reading

val quantize : resolution:float -> reading -> reading
(** Round the measured slowdown up to a control-loop resolution (sensors
    report discrete alarm thresholds, not exact delays). *)
