module Timing = Fbb_sta.Timing
module P = Fbb_place.Placement
module N = Fbb_netlist.Netlist

type strategy_stats = {
  yield_pct : float;
  mean_leakage_nw : float;
  p95_leakage_nw : float;
}

type t = {
  samples : int;
  no_tuning : strategy_stats;
  single_bb : strategy_stats;
  clustered : strategy_stats;
  mean_measured_slowdown_pct : float;
}

let samples_c = Fbb_obs.Counter.make "mc.samples"
let shipped_c = Fbb_obs.Counter.make "mc.shipped_clustered"

let stats_of shipped total =
  match shipped with
  | [] -> { yield_pct = 0.0; mean_leakage_nw = 0.0; p95_leakage_nw = 0.0 }
  | leaks ->
    let a = Array.of_list leaks in
    {
      yield_pct = 100.0 *. float_of_int (Array.length a) /. float_of_int total;
      mean_leakage_nw = Fbb_util.Stats.mean a;
      p95_leakage_nw = Fbb_util.Stats.percentile a 95.0;
    }

let run ?(seed = 2009) ?(samples = 50) ?(sigma = 0.05) ?(max_clusters = 2)
    ?(guardband = 0.15) placement =
  Fbb_obs.Span.with_ ~name:"mc.run" @@ fun () ->
  let nl = P.netlist placement in
  let rng = Fbb_util.Rng.create ~seed in
  let nominal = Timing.analyze nl in
  let budget = Timing.dcrit nominal +. 1e-6 in
  let leakage ~bias = Tuning.design_leakage nl ~bias in
  let no_tuning = ref [] in
  let single_bb = ref [] in
  let clustered = ref [] in
  let slowdowns = ref [] in
  for _ = 1 to samples do
    Fbb_obs.Counter.incr samples_c;
    let die_rng = Fbb_util.Rng.split rng in
    let corner = Models.die_to_die die_rng ~sigma:(sigma /. 2.0) in
    let within = Models.spatially_correlated die_rng ~sigma placement in
    let derate g = corner *. within g in
    let degraded = Timing.analyze ~derate nl in
    let reading = Sensor.in_situ_monitors ~nominal ~degraded in
    slowdowns := reading.Sensor.slowdown :: !slowdowns;
    (* Strategy 1: ship as fabricated. *)
    if Timing.dcrit degraded <= budget then
      no_tuning := leakage ~bias:(fun _ -> 0.0) :: !no_tuning;
    (* Strategy 2: one die-wide voltage. Uses the same sensing, guardband
       and PassOne selection the clustered loop gets (an exact
       signoff-search baseline would smuggle in information no real tuning
       controller has); the level is bumped until signoff closes. *)
    let measured =
      Float.max 0.0 (reading.Sensor.slowdown *. (1.0 +. guardband))
    in
    let jopt =
      if measured <= 0.0 then Some 0
      else
        Fbb_core.Problem.max_single_level
          (Fbb_core.Problem.build ~beta:measured placement)
    in
    (match jopt with
    | None -> ()
    | Some j0 ->
      let rec close j =
        if j >= Fbb_tech.Bias.count then None
        else begin
          let bias _ = Fbb_tech.Bias.voltage j in
          if Timing.dcrit (Timing.analyze ~derate ~bias nl) <= budget then
            Some (leakage ~bias)
          else close (j + 1)
        end
      in
      match close j0 with
      | Some leak -> single_bb := leak :: !single_bb
      | None -> ());
    (* Strategy 3: the clustering optimizer in its closed loop. *)
    let o = Tuning.compensate ~max_clusters ~guardband placement ~derate in
    if o.Tuning.timing_closed then begin
      Fbb_obs.Counter.incr shipped_c;
      clustered := o.Tuning.leakage_nw :: !clustered
    end
  done;
  {
    samples;
    no_tuning = stats_of !no_tuning samples;
    single_bb = stats_of !single_bb samples;
    clustered = stats_of !clustered samples;
    mean_measured_slowdown_pct =
      100.0 *. Fbb_util.Stats.mean (Array.of_list !slowdowns);
  }
