module Timing = Fbb_sta.Timing
module P = Fbb_place.Placement
module N = Fbb_netlist.Netlist

type strategy_stats = {
  yield_pct : float;
  mean_leakage_nw : float;
  p95_leakage_nw : float;
}

type t = {
  samples : int;
  no_tuning : strategy_stats;
  single_bb : strategy_stats;
  clustered : strategy_stats;
  mean_measured_slowdown_pct : float;
  complete : bool;
}

let samples_c = Fbb_obs.Counter.make "mc.samples"
let shipped_c = Fbb_obs.Counter.make "mc.shipped_clustered"

let stats_of shipped total =
  match shipped with
  | [] -> { yield_pct = 0.0; mean_leakage_nw = 0.0; p95_leakage_nw = 0.0 }
  | leaks ->
    let a = Array.of_list leaks in
    {
      yield_pct = 100.0 *. float_of_int (Array.length a) /. float_of_int total;
      mean_leakage_nw = Fbb_util.Stats.mean a;
      p95_leakage_nw = Fbb_util.Stats.percentile a 95.0;
    }

(* One fabricated die. Pure given its own RNG stream, so dies can be
   evaluated in any order on the pool. *)
type die = {
  slowdown : float;
  ship_as_is : float option;  (* leakage if the strategy ships the die *)
  ship_single : float option;
  ship_clustered : float option;
}

let run ?(seed = 2009) ?(samples = 50) ?(sigma = 0.05) ?(max_clusters = 2)
    ?(guardband = 0.15) ?(budget = Fbb_util.Budget.unlimited) placement =
  Fbb_obs.Span.with_ ~name:"mc.run" @@ fun () ->
  let nl = P.netlist placement in
  let rng = Fbb_util.Rng.create ~seed in
  (* Shared per-run state, all immutable: the flat delay tables, the
     nominal analysis and its path set (so per-die problem builds skip
     STA and extraction), and the NBB leakage every die would otherwise
     recompute. Safe across pool domains. *)
  let cache = Fbb_sta.Delay_cache.create nl in
  let nominal = Timing.analyze ~cache nl in
  let through = Fbb_sta.Paths.through_cell nominal in
  let row_leak =
    Fbb_core.Problem.leak_tables placement ~levels:(Fbb_tech.Bias.levels ())
  in
  let timing_budget = Timing.dcrit nominal +. 1e-6 in
  let leakage ~bias = Fbb_sta.Delay_cache.design_leakage cache ~bias in
  let nbb_leakage = leakage ~bias:(fun _ -> 0.0) in
  (* Seed-splitting: die [i]'s generator is the [i]-th split of the run
     seed, derived sequentially up front. Each die then draws only from
     its own stream, so the sampled corners are a function of
     [(seed, i)] alone - identical at any job count, and identical to
     what the historical sequential loop (which split once per
     iteration) produced. *)
  let die_rngs = Array.init samples (fun _ -> Fbb_util.Rng.split rng) in
  let sample die_rng =
    Fbb_obs.Counter.incr samples_c;
    let corner = Models.die_to_die die_rng ~sigma:(sigma /. 2.0) in
    let within = Models.spatially_correlated die_rng ~sigma placement in
    let derate g = corner *. within g in
    (* One incremental context per die (contexts are single-domain;
       this one lives and dies on whichever pool worker runs the die):
       base analysis is the degraded-at-NBB timing, and both the
       single-level search and the clustered closed loop drive its bias
       instead of re-analyzing from scratch. *)
    let ctx = Timing.Incremental.create ~cache ~derate nl in
    let degraded = Timing.Incremental.analysis ctx in
    let reading = Sensor.in_situ_monitors ~nominal ~degraded in
    let dcrit_degraded = Timing.dcrit degraded in
    (* Strategy 1: ship as fabricated. *)
    let ship_as_is =
      if dcrit_degraded <= timing_budget then Some nbb_leakage else None
    in
    (* Strategy 2: one die-wide voltage. Uses the same sensing, guardband
       and PassOne selection the clustered loop gets (an exact
       signoff-search baseline would smuggle in information no real tuning
       controller has); the level is bumped until signoff closes. *)
    let measured =
      Float.max 0.0 (reading.Sensor.slowdown *. (1.0 +. guardband))
    in
    let jopt =
      if measured <= 0.0 then Some 0
      else
        Fbb_core.Problem.max_single_level
          (Fbb_core.Problem.build ~cache ~analysis:nominal ~paths:through
             ~row_leak ~beta:measured placement)
    in
    let ship_single =
      Option.bind jopt (fun j0 ->
          let rec close j =
            if j >= Fbb_tech.Bias.count then None
            else begin
              let v = Fbb_tech.Bias.voltage j in
              if
                Timing.dcrit (Timing.Incremental.set_uniform ctx v)
                <= timing_budget
              then Some (leakage ~bias:(fun _ -> v))
              else close (j + 1)
            end
          in
          close j0)
    in
    (* Strategy 3: the clustering optimizer in its closed loop. *)
    let o =
      Tuning.compensate ~max_clusters ~guardband ~nominal ~paths:through
        ~row_leak ~ctx placement ~derate
    in
    let ship_clustered =
      if o.Tuning.timing_closed then begin
        Fbb_obs.Counter.incr shipped_c;
        Some o.Tuning.leakage_nw
      end
      else None
    in
    { slowdown = reading.Sensor.slowdown; ship_as_is; ship_single;
      ship_clustered }
  in
  (* One die per task: dies are expensive (three STA runs plus the
     optimizer) and [samples] is small. Results come back positionally,
     so every downstream list and sum is in die order regardless of
     which domain evaluated what.

     Dies go through the pool in fixed batches of [batch_size], with
     one budget tick per batch between the (sequential) batch launches:
     a truncated run evaluates exactly the first [k * batch_size] dies
     - a prefix of the full run's die sequence, since the RNG streams
     were split up front - so its statistics are a deterministic
     function of the budget, not of scheduling. *)
  let batch_size = 8 in
  let batches = ref [] in
  let processed = ref 0 in
  let complete = ref true in
  while !complete && !processed < samples do
    if not (Fbb_util.Budget.tick budget) then complete := false
    else begin
      let n = min batch_size (samples - !processed) in
      let batch = Array.sub die_rngs !processed n in
      batches := Fbb_par.Pool.parallel_map ~chunk:1 batch ~f:sample :: !batches;
      processed := !processed + n
    end
  done;
  let dies = Array.concat (List.rev !batches) in
  let evaluated = Array.length dies in
  let shipped select =
    Array.fold_left
      (fun acc d -> match select d with Some leak -> leak :: acc | None -> acc)
      [] dies
  in
  let slowdowns = Array.map (fun d -> d.slowdown) dies in
  {
    samples = evaluated;
    no_tuning = stats_of (shipped (fun d -> d.ship_as_is)) evaluated;
    single_bb = stats_of (shipped (fun d -> d.ship_single)) evaluated;
    clustered = stats_of (shipped (fun d -> d.ship_clustered)) evaluated;
    mean_measured_slowdown_pct =
      100.0
      *. Fbb_util.Stats.mean
           (Array.of_list (Array.fold_left (fun acc s -> s :: acc) [] slowdowns));
    complete = !complete;
  }
