(** Sources of post-fabrication slowdown (paper section 1 and 3.1).

    All models produce per-gate multiplicative delay derates (1.0 =
    nominal), composable with {!combine}. Stochastic models take an
    explicit RNG; results are reproducible from the seed. *)

open Fbb_netlist

val die_to_die : Fbb_util.Rng.t -> sigma:float -> float
(** One global process corner for the die: a factor drawn from a normal
    around 1.0 with the given relative sigma, clamped to [0.7, 1.5]. *)

val within_die :
  Fbb_util.Rng.t -> sigma:float -> Netlist.t -> Netlist.id -> float
(** Independent per-gate random variation (the uncorrelated component). *)

val spatially_correlated :
  Fbb_util.Rng.t ->
  sigma:float ->
  ?correlation_rows:int ->
  Fbb_place.Placement.t ->
  Netlist.id ->
  float
(** Within-die variation with spatial correlation: a smooth random profile
    over rows (random walk low-pass filtered over [correlation_rows],
    default 4) plus a small independent term. This is the component that
    makes *physically clustered* compensation effective: slow gates sit in
    slow regions. *)

val temperature_derate : ?ref_celsius:float -> float -> float
(** [temperature_derate c]: delay derate at die temperature [c] (ref default
    25C); about +0.12 %/K, the usual positive temperature coefficient at
    low supply. *)

val nbti_aging_derate : ?device:Fbb_tech.Device.params -> float -> float
(** [nbti_aging_derate years]: NBTI-induced slowdown: threshold shift [dVth = A * t^n] with
    [A = 30 mV/decade-year-ish, n = 0.16], translated to a delay factor
    through the alpha-power model. Zero years = 1.0. *)

val combine : (Netlist.id -> float) list -> Netlist.id -> float
(** Product of derates. *)

val uniform : float -> Netlist.id -> float
(** The paper's slowdown coefficient: [fun _ -> 1 + beta]. *)
