module Rng = Fbb_util.Rng
module Device = Fbb_tech.Device

let clamp lo hi x = Float.max lo (Float.min hi x)

let die_to_die rng ~sigma =
  clamp 0.7 1.5 (Rng.gaussian rng ~mu:1.0 ~sigma)

let within_die rng ~sigma nl =
  let n = Fbb_netlist.Netlist.size nl in
  let derates =
    Array.init n (fun _ -> clamp 0.7 1.5 (Rng.gaussian rng ~mu:1.0 ~sigma))
  in
  fun g -> derates.(g)

let spatially_correlated rng ~sigma ?(correlation_rows = 4) placement =
  let nrows = Fbb_place.Placement.num_rows placement in
  (* Random walk over rows, then a box low-pass of the correlation width;
     two thirds of the variance is regional, one third independent. *)
  let walk = Array.make nrows 0.0 in
  let step = sigma /. sqrt (float_of_int (max 1 correlation_rows)) in
  for r = 1 to nrows - 1 do
    walk.(r) <- walk.(r - 1) +. Rng.gaussian rng ~mu:0.0 ~sigma:step
  done;
  let smooth = Array.make nrows 0.0 in
  for r = 0 to nrows - 1 do
    let lo = max 0 (r - correlation_rows) in
    let hi = min (nrows - 1) (r + correlation_rows) in
    let acc = ref 0.0 in
    for k = lo to hi do
      acc := !acc +. walk.(k)
    done;
    smooth.(r) <- !acc /. float_of_int (hi - lo + 1)
  done;
  (* Re-center so the mean regional derate is 1.0. *)
  let mean = Array.fold_left ( +. ) 0.0 smooth /. float_of_int nrows in
  let regional = Array.map (fun v -> (v -. mean) *. 0.8) smooth in
  let nl = Fbb_place.Placement.netlist placement in
  let independent =
    within_die rng ~sigma:(sigma /. 3.0) nl
  in
  fun g ->
    let r = Fbb_place.Placement.row_of placement g in
    let base = if r >= 0 then 1.0 +. regional.(r) else 1.0 in
    clamp 0.7 1.6 (base *. independent g)

let temperature_derate ?(ref_celsius = 25.0) celsius =
  1.0 +. (0.0012 *. (celsius -. ref_celsius))

let nbti_aging_derate ?(device = Device.default) years =
  if years <= 0.0 then 1.0
  else begin
    (* dVth = 30 mV * (t/1y)^0.16: ~30 mV after a year, ~43 mV after 10. *)
    let dvth = 0.030 *. (years ** 0.16) in
    let overdrive0 = device.Device.vdd -. device.Device.vth0 in
    let overdrive = overdrive0 -. dvth in
    (overdrive0 /. overdrive) ** device.Device.alpha
  end

let combine fs g = List.fold_left (fun acc f -> acc *. f g) 1.0 fs

let uniform beta _ = 1.0 +. beta
