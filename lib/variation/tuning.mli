(** Closed-loop post-silicon tuning (the methodology of the paper's
    Figure 2): sense the slowdown, run the clustering optimizer for the
    measured coefficient, drive the bias generator, and verify the result
    with signoff STA under the true (per-gate) degradation and the applied
    per-row bias voltages.

    This is also the repository's strongest end-to-end validation of the
    optimizer: the verification step re-times the placed netlist
    independently of the optimizer's path abstraction. *)

type sensor_kind = Replica | In_situ

val design_leakage :
  Fbb_netlist.Netlist.t -> bias:(Fbb_netlist.Netlist.id -> float) -> float
(** Total gate leakage (nW) under a per-gate bias assignment. *)

type outcome = {
  measured_beta : float;  (** after quantization and guardband *)
  raw_beta : float;  (** sensor reading before adjustment *)
  alarms_before : int;
  levels : int array option;  (** None when compensation was impossible *)
  clusters : int;
  leakage_nw : float;  (** design leakage with the bias applied *)
  nominal_leakage_nw : float;  (** leakage with no bias anywhere *)
  dcrit_nominal : float;
  dcrit_degraded : float;
  dcrit_compensated : float;
  timing_closed : bool;
      (** signoff: degraded-and-biased critical delay within the nominal
          budget *)
}

val compensate :
  ?max_clusters:int ->
  ?sensor:sensor_kind ->
  ?guardband:float ->
  ?resolution:float ->
  ?nominal:Fbb_sta.Timing.t ->
  ?paths:Fbb_sta.Paths.path array ->
  ?row_leak:float array array ->
  ?ctx:Fbb_sta.Timing.Incremental.ctx ->
  Fbb_place.Placement.t ->
  derate:(Fbb_netlist.Netlist.id -> float) ->
  outcome
(** One tuning shot. [guardband] (default 0.1) inflates the measured
    slowdown to cover sensing error and non-uniformity; [resolution]
    (default 0.01) quantizes the sensor reading; [sensor] defaults to
    [In_situ].

    Repeated-shot loops (Monte-Carlo runs one shot per sampled die on
    one design) can share work across shots: [nominal] is the
    precomputed NBB analysis, [paths] its [Paths.through_cell] set (for
    the per-shot problem build), [row_leak] the placement's
    {!Fbb_core.Problem.leak_tables} at the default generator levels, and
    [ctx] an incremental STA context created with this shot's [derate] —
    its bias is driven here (reset to NBB first), replacing the two
    from-scratch degraded/compensated analyses. Outcomes are
    bit-identical with or without them. *)
