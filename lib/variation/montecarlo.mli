(** Monte-Carlo yield analysis — the paper's motivation made measurable.

    Samples fabricated dies (die-to-die corner plus spatially correlated
    within-die variation), and for each die compares three strategies:

    - no tuning: ship only if the die meets timing as fabricated;
    - block-level FBB (Single BB): one voltage for the whole die, picked
      by the same sensing/guardband loop the clustered strategy uses;
    - clustered FBB: the row-clustering optimizer with a cluster budget.

    Yield is the fraction of dies that close timing (signoff STA under the
    die's true per-gate derates); leakage statistics are over the shipped
    dies of each strategy. This experiment extends the paper (which
    reports per-beta leakage, not sampled yield) and is documented as such
    in EXPERIMENTS.md. *)

type strategy_stats = {
  yield_pct : float;
  mean_leakage_nw : float;  (** over dies the strategy ships *)
  p95_leakage_nw : float;
}

type t = {
  samples : int;  (** dies actually evaluated (= requested unless a
                      budget truncated the run) *)
  no_tuning : strategy_stats;
  single_bb : strategy_stats;
  clustered : strategy_stats;
  mean_measured_slowdown_pct : float;
  complete : bool;
      (** [false] when [?budget] stopped the run early; statistics then
          cover a deterministic prefix of the die sequence *)
}

val run :
  ?seed:int ->
  ?samples:int ->
  ?sigma:float ->
  ?max_clusters:int ->
  ?guardband:float ->
  ?budget:Fbb_util.Budget.t ->
  Fbb_place.Placement.t ->
  t
(** Defaults: 50 samples, sigma = 0.05 (relative delay variation),
    C = 2, guardband 0.15, unlimited budget.

    [budget] is ticked once per batch of 8 dies, between the sequential
    batch launches (never inside the parallel map), so a work budget
    truncates after the same whole batch at any job count; die RNG
    streams are split up front, so a truncated run's dies are a strict
    prefix of the full run's. *)
