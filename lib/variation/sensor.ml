module Timing = Fbb_sta.Timing
module N = Fbb_netlist.Netlist

type reading = { slowdown : float; alarms : int }

let endpoint_arrivals t =
  let nl = Timing.netlist t in
  let acc = ref [] in
  Array.iter
    (fun o -> acc := (o, Timing.arrival t o) :: !acc)
    (N.outputs nl);
  Array.iter
    (fun g ->
      if N.is_sequential nl g then
        acc := (g, Timing.arrival t (N.fanins nl g).(0)) :: !acc)
    (N.gates nl);
  !acc

let alarms_against ~dcrit readings =
  List.length (List.filter (fun (_, a) -> a > dcrit +. 1e-9) readings)

let critical_path_replica ~nominal ~degraded =
  (* The replica copies the nominal critical path; its degradation is the
     ratio of that path's delay under the two analyses. *)
  let path = Array.of_list (Timing.critical_path nominal) in
  let d0 = Fbb_sta.Paths.delay_of nominal path in
  let d1 = Fbb_sta.Paths.delay_of degraded path in
  let slowdown = Float.max 0.0 ((d1 /. d0) -. 1.0) in
  let alarms =
    alarms_against ~dcrit:(Timing.dcrit nominal) (endpoint_arrivals degraded)
  in
  { slowdown; alarms }

let in_situ_monitors ~nominal ~degraded =
  let dcrit0 = Timing.dcrit nominal in
  let readings = endpoint_arrivals degraded in
  (* Each monitored endpoint compares its degraded arrival to the same
     nominal budget; the worst ratio is the die's measured slowdown. *)
  let nominal_arrival =
    let tbl = Hashtbl.create 64 in
    List.iter (fun (e, a) -> Hashtbl.replace tbl e a) (endpoint_arrivals nominal);
    fun e -> Option.value ~default:dcrit0 (Hashtbl.find_opt tbl e)
  in
  let worst =
    List.fold_left
      (fun acc (e, a) ->
        let a0 = nominal_arrival e in
        if a0 > 1e-9 then Float.max acc ((a /. a0) -. 1.0) else acc)
      0.0 readings
  in
  { slowdown = worst; alarms = alarms_against ~dcrit:dcrit0 readings }

let quantize ~resolution r =
  if resolution <= 0.0 then r
  else
    {
      r with
      slowdown = resolution *. Float.ceil (r.slowdown /. resolution);
    }
