module Timing = Fbb_sta.Timing
module P = Fbb_place.Placement
module N = Fbb_netlist.Netlist

type sensor_kind = Replica | In_situ

type outcome = {
  measured_beta : float;
  raw_beta : float;
  alarms_before : int;
  levels : int array option;
  clusters : int;
  leakage_nw : float;
  nominal_leakage_nw : float;
  dcrit_nominal : float;
  dcrit_degraded : float;
  dcrit_compensated : float;
  timing_closed : bool;
}

let design_leakage nl ~bias =
  let lib = N.library nl in
  Array.fold_left
    (fun acc g ->
      acc +. Fbb_tech.Cell_library.leakage_nw lib (N.cell nl g) ~vbs:(bias g))
    0.0 (N.gates nl)

let compensations_c = Fbb_obs.Counter.make "tuning.compensations"

let compensate ?(max_clusters = 2) ?(sensor = In_situ) ?(guardband = 0.1)
    ?(resolution = 0.01) ?nominal ?paths ?row_leak ?ctx placement ~derate =
  Fbb_obs.Span.with_ ~name:"tuning.compensate" @@ fun () ->
  Fbb_obs.Counter.incr compensations_c;
  let nl = P.netlist placement in
  let ctx =
    match ctx with
    | Some c ->
      if not (Timing.Incremental.netlist c == nl) then
        invalid_arg "Tuning.compensate: context is for a different netlist";
      c
    | None -> Timing.Incremental.create ~derate nl
  in
  let cache = Timing.Incremental.cache ctx in
  let nominal =
    match nominal with Some a -> a | None -> Timing.analyze ~cache nl
  in
  (* The context may arrive with bias applied (e.g. the Monte-Carlo
     single-level search just drove it); reset to NBB to read the
     uncompensated degradation. *)
  let degraded = Timing.Incremental.set_uniform ctx 0.0 in
  let reading =
    match sensor with
    | Replica -> Sensor.critical_path_replica ~nominal ~degraded
    | In_situ -> Sensor.in_situ_monitors ~nominal ~degraded
  in
  let reading = Sensor.quantize ~resolution reading in
  let raw_beta = reading.Sensor.slowdown in
  let measured_beta = raw_beta *. (1.0 +. guardband) in
  let dcrit_nominal = Timing.dcrit nominal in
  let dcrit_degraded = Timing.dcrit degraded in
  let nominal_leakage_nw =
    Fbb_sta.Delay_cache.design_leakage cache ~bias:(fun _ -> 0.0)
  in
  let no_compensation () =
    {
      measured_beta;
      raw_beta;
      alarms_before = reading.Sensor.alarms;
      levels = Some (Array.make (P.num_rows placement) 0);
      clusters = 1;
      leakage_nw = nominal_leakage_nw;
      nominal_leakage_nw;
      dcrit_nominal;
      dcrit_degraded;
      dcrit_compensated = dcrit_degraded;
      timing_closed = dcrit_degraded <= dcrit_nominal +. 1e-6;
    }
  in
  if measured_beta <= 0.0 then no_compensation ()
  else begin
    let problem =
      Fbb_core.Problem.build ~cache ~analysis:nominal ?paths ?row_leak
        ~beta:measured_beta placement
    in
    match Fbb_core.Refine.heuristic ~max_clusters problem with
    | None ->
      (* Compensation impossible even at full bias. *)
      { (no_compensation ()) with levels = None; timing_closed = false }
    | Some r ->
      let levels = r.Fbb_core.Refine.levels in
      let bias g =
        let row = P.row_of placement g in
        if row < 0 then 0.0 else Fbb_tech.Bias.voltage levels.(row)
      in
      let compensated = Timing.Incremental.set_bias ctx bias in
      let dcrit_compensated = Timing.dcrit compensated in
      {
        measured_beta;
        raw_beta;
        alarms_before = reading.Sensor.alarms;
        levels = Some levels;
        clusters = Fbb_core.Solution.cluster_count levels;
        leakage_nw = Fbb_sta.Delay_cache.design_leakage cache ~bias;
        nominal_leakage_nw;
        dcrit_nominal;
        dcrit_degraded;
        dcrit_compensated;
        timing_closed = dcrit_compensated <= dcrit_nominal +. 1e-6;
      }
  end
