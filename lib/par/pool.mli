(** Fixed domain pool with deterministic parallel combinators.

    The pool is lazily started on first use and sized by, in order of
    precedence: {!set_jobs} (the [--jobs] CLI flag), the [FBB_JOBS]
    environment variable, and [Domain.recommended_domain_count ()].
    At [jobs = 1] nothing is ever spawned and every combinator runs on
    the calling domain — a clean sequential fallback through the same
    code path.

    {b Determinism guarantee.} Results are bit-identical at any job
    count. [parallel_map] and [parallel_for] assemble results
    positionally, so scheduling cannot reorder them; [parallel_reduce]
    folds each chunk sequentially and then combines the chunk results
    in chunk-index order, and chunk boundaries depend only on [n] and
    [?chunk] — never on the job count — so even non-associative
    floating-point reductions give the same bits at [jobs = 1] and
    [jobs = 64]. Callers that need randomness shard it the same way:
    derive one RNG stream per work item by seed-splitting {i before}
    entering the pool (see [Fbb_variation.Montecarlo]).

    Combinators may be nested (a task may itself call into the pool):
    a caller waiting on a batch helps drain the shared queue, so no
    domain ever idles while work is pending and nesting cannot
    deadlock.

    {b Failure containment.} Exceptions raised by the mapped function
    are caught per chunk, the chunk is quarantined (its slot never
    merges; the [par.poisoned] counter ticks) while every other chunk
    completes, and after the whole batch has drained the caller
    receives — deterministically — the lowest-indexed failure wrapped
    in {!Worker_error} carrying the failing task (= chunk) index and
    the original exception, with the original backtrace. The pool
    stays reusable after a failed batch.

    Transient failures ({!Fbb_fault.Fault.Transient}, whether injected
    at the ["pool.transient"] site or raised by the task itself) are
    retried in place up to 3 attempts with a bounded deterministic
    backoff before they poison the chunk; the ["pool.worker"] site
    injects hard faults for resilience testing. Retried chunk bodies
    re-run from the top, so tasks must stay idempotent — which the
    disjoint-slot determinism contract already requires.

    {b Trace propagation.} The submitting domain's
    {!Fbb_obs.Context.t} (if any) is captured at batch submission and
    re-established around every task, whichever domain executes it —
    spans opened inside a parallel section carry the originating
    request's trace id. Context is observability-only state, so this
    does not affect the determinism guarantee. *)

exception Worker_error of { task : int; exn : exn }
(** Raised at the join point of a batch whose [task]-th chunk failed;
    [exn] is the original exception. The lowest failing index wins,
    independent of scheduling. *)

val set_jobs : int -> unit
(** Override the pool size (clamped to [>= 1]). Takes effect at the
    next combinator call; a running pool of a different size is shut
    down and respawned. Call between parallel sections, not from
    inside a task. *)

val jobs : unit -> int
(** The job count the next parallel section will use. *)

val shutdown : unit -> unit
(** Join all worker domains (idempotent). Also installed as an
    [at_exit] handler when the pool first starts, so programs never
    exit with live domains. *)

val utilization : unit -> (string * float * float * int) list
(** [(label, busy_s, idle_s, tasks)] per execution context: one
    ["w<i>"] row per worker slot (accumulated across respawns) and one
    ["caller"] row summing every non-worker domain that executed tasks
    — the submitter draining the queue while its batch was
    outstanding, or everything at [jobs = 1]. [busy_s] is time inside
    tasks, [idle_s] time blocked waiting for work (always 0 for
    ["caller"]); values are read without stopping the pool, so a
    concurrent reader sees a slightly stale but self-consistent
    snapshot. *)

val publish_utilization : unit -> unit
(** Set [par.<label>.busy_s] / [.idle_s] / [.tasks] gauges from
    {!utilization}, emitting [Gauge_set] events if a sink is
    installed. Call at the end of a session (profile reports, bench
    records), not per batch. *)

val parallel_map : ?chunk:int -> 'a array -> f:('a -> 'b) -> 'b array
(** [parallel_map a ~f] is [Array.map f a] with the elements sharded
    across the pool in contiguous chunks ([?chunk] elements each;
    default scales with the input size). Results are positional, so
    the output is independent of scheduling. *)

val parallel_for : ?chunk:int -> n:int -> (int -> unit) -> unit
(** [parallel_for ~n f] runs [f 0 .. f (n-1)], sharded in contiguous
    chunks. The body must only write to disjoint, per-index state. *)

val parallel_reduce :
  ?chunk:int -> n:int -> map:(int -> 'a) -> combine:('a -> 'a -> 'a) ->
  'a -> 'a
(** [parallel_reduce ~n ~map ~combine init] folds [map 0 .. map (n-1)]
    into [init]. Each chunk is folded left-to-right sequentially and
    chunk results are combined left-to-right in chunk order, so the
    reduction tree — hence the result, even for floating point — is a
    function of [n] and [?chunk] only, never of the job count. *)
