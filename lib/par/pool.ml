(* Lazily-started fixed domain pool.

   One global task queue under one mutex: batches enqueue closures,
   worker domains drain them, and - crucially - the submitter drains
   the queue too while its batch is outstanding. That "help" rule is
   what makes nesting safe: a worker whose task submits a sub-batch
   makes progress executing queued tasks (its own sub-batch's or
   anyone else's) instead of blocking a pool slot, so the dependency
   graph of waiting batches is a forest and never cycles.

   Determinism is the combinators' contract, not the scheduler's:
   tasks write to disjoint per-chunk slots and all combination happens
   on the caller in chunk-index order, so the values computed are
   independent of which domain ran what and when. *)

let tasks_c = Fbb_obs.Counter.make "par.tasks"
let batches_c = Fbb_obs.Counter.make "par.batches"
let poisoned_c = Fbb_obs.Counter.make "par.poisoned"
let retried_c = Fbb_obs.Counter.make "par.retried"

exception Worker_error of { task : int; exn : exn }

let () =
  Printexc.register_printer (function
    | Worker_error { task; exn } ->
      Some
        (Printf.sprintf "Fbb_par.Pool.Worker_error(task %d: %s)" task
           (Printexc.to_string exn))
    | _ -> None)

(* ----- utilization accounting ------------------------------------------ *)

(* One record per worker slot (persisting across pool respawns, so a
   session total survives set_jobs) plus one per non-worker domain that
   ever executes tasks - the submitter draining the queue while its
   batch is outstanding, or the whole batch at jobs = 1. Each record is
   only ever written by the domain that owns it; readers may see a
   value mid-update, which is fine for a utilization report. Idle time
   is what a worker spends blocked on the condition variable waiting
   for work - queue-empty wall time, the pool's "wasted" seconds. *)
type wutil = {
  mutable busy_s : float;
  mutable idle_s : float;
  mutable tasks : int;
}

let fresh_wutil () = { busy_s = 0.0; idle_s = 0.0; tasks = 0 }

let util_mutex = Mutex.create ()
let worker_utils : wutil array ref = ref [||]
let ext_utils : wutil list ref = ref []

let worker_util slot =
  Mutex.protect util_mutex (fun () ->
      let n = Array.length !worker_utils in
      if slot >= n then
        worker_utils :=
          Array.append !worker_utils
            (Array.init (slot + 1 - n) (fun _ -> fresh_wutil ()));
      !worker_utils.(slot))

(* The calling domain's bucket, registered on first use. *)
let ext_key =
  Domain.DLS.new_key (fun () ->
      let u = fresh_wutil () in
      Mutex.protect util_mutex (fun () -> ext_utils := u :: !ext_utils);
      u)

let timed_task u task =
  let t0 = Fbb_obs.Clock.now_s () in
  task ();
  u.busy_s <- u.busy_s +. (Fbb_obs.Clock.now_s () -. t0);
  u.tasks <- u.tasks + 1

let utilization () =
  Mutex.protect util_mutex (fun () ->
      let workers =
        Array.to_list
          (Array.mapi
             (fun i u ->
               (Printf.sprintf "w%d" i, u.busy_s, u.idle_s, u.tasks))
             !worker_utils)
      in
      let busy, idle, tasks =
        List.fold_left
          (fun (b, i, t) u -> (b +. u.busy_s, i +. u.idle_s, t + u.tasks))
          (0.0, 0.0, 0) !ext_utils
      in
      if tasks = 0 && busy = 0.0 then workers
      else workers @ [ ("caller", busy, idle, tasks) ])

let publish_utilization () =
  List.iter
    (fun (label, busy_s, idle_s, tasks) ->
      let g suffix = Fbb_obs.Counter.Gauge.make ("par." ^ label ^ suffix) in
      Fbb_obs.Counter.Gauge.set (g ".busy_s") busy_s;
      Fbb_obs.Counter.Gauge.set (g ".idle_s") idle_s;
      Fbb_obs.Counter.Gauge.set (g ".tasks") (float_of_int tasks))
    (utilization ())

type state = {
  mutex : Mutex.t;
  work : Condition.t;  (* queue became non-empty, or shutdown *)
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  mutable size : int;  (* jobs the running pool was sized for *)
}

let st =
  {
    mutex = Mutex.create ();
    work = Condition.create ();
    queue = Queue.create ();
    stop = false;
    domains = [];
    size = 1;
  }

let override = ref None

let set_jobs n = override := Some (max 1 n)

let env_jobs () =
  match Sys.getenv_opt "FBB_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let jobs () =
  match !override with
  | Some n -> n
  | None -> (
    match env_jobs () with
    | Some n -> n
    | None -> max 1 (Domain.recommended_domain_count ()))

let worker slot () =
  let u = worker_util slot in
  let rec loop () =
    Mutex.lock st.mutex;
    let rec next () =
      if st.stop then Mutex.unlock st.mutex
      else
        match Queue.take_opt st.queue with
        | Some task ->
          Mutex.unlock st.mutex;
          timed_task u task;
          loop ()
        | None ->
          let t0 = Fbb_obs.Clock.now_s () in
          Condition.wait st.work st.mutex;
          u.idle_s <- u.idle_s +. (Fbb_obs.Clock.now_s () -. t0);
          next ()
    in
    next ()
  in
  loop ()

let shutdown () =
  Mutex.lock st.mutex;
  st.stop <- true;
  Condition.broadcast st.work;
  Mutex.unlock st.mutex;
  List.iter Domain.join st.domains;
  st.domains <- [];
  st.stop <- false;
  st.size <- 1

let at_exit_installed = ref false

(* (Re)spawn so that the running pool matches the requested size.
   Workers are [size - 1] domains; the caller is the remaining job. *)
let ensure_started size =
  if size <> st.size || (size > 1 && st.domains = []) then begin
    if st.domains <> [] then shutdown ();
    st.size <- size;
    if size > 1 then begin
      if not !at_exit_installed then begin
        at_exit_installed := true;
        at_exit shutdown
      end;
      st.domains <- List.init (size - 1) (fun i -> Domain.spawn (worker i))
    end
  end

(* Run every task (each must be exception-free: combinators catch into
   per-chunk slots) and return when all have completed, executing
   queued tasks on the calling domain while waiting.

   The submitter's trace context is captured here and re-established
   around each task, so spans opened inside a parallel section carry
   the originating request's trace id no matter which domain — a
   worker, the helping submitter, or another batch's submitter
   draining the shared queue — actually runs the chunk. *)
let run_batch tasks =
  let n = Array.length tasks in
  if n > 0 then begin
    Fbb_obs.Counter.incr batches_c;
    Fbb_obs.Counter.add tasks_c n;
    let tasks =
      match Fbb_obs.Context.current () with
      | None -> tasks
      | Some _ as ctx ->
        Array.map (fun t () -> Fbb_obs.Context.with_opt ctx t) tasks
    in
    let size = jobs () in
    ensure_started size;
    if size = 1 then begin
      let u = Domain.DLS.get ext_key in
      Array.iter (fun t -> timed_task u t) tasks
    end
    else begin
      let remaining = Atomic.make n in
      let batch_done = Condition.create () in
      let wrap t () =
        (try t () with _ -> ());
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          Mutex.lock st.mutex;
          Condition.broadcast batch_done;
          Mutex.unlock st.mutex
        end
      in
      Mutex.lock st.mutex;
      Array.iter (fun t -> Queue.add (wrap t) st.queue) tasks;
      Condition.broadcast st.work;
      let u = Domain.DLS.get ext_key in
      let rec help () =
        if Atomic.get remaining = 0 then Mutex.unlock st.mutex
        else
          match Queue.take_opt st.queue with
          | Some task ->
            Mutex.unlock st.mutex;
            timed_task u task;
            Mutex.lock st.mutex;
            help ()
          | None ->
            (* All our tasks are in flight on workers; their finisher
               broadcasts [batch_done] under the mutex, so this wait
               cannot miss the wakeup. *)
            if Atomic.get remaining = 0 then Mutex.unlock st.mutex
            else begin
              Condition.wait batch_done st.mutex;
              help ()
            end
      in
      help ()
    end
  end

(* Chunk geometry depends only on [n] and [?chunk] - job-count
   independent, which is what makes chunked reductions deterministic. *)
let chunk_size ?chunk n =
  match chunk with Some c -> max 1 c | None -> max 1 (n / 64)

(* Chunk bodies run under the fault-injection sites and a bounded
   transient-retry loop. A chunk that still fails is quarantined: its
   error (with the chunk = task index) lands in the per-chunk slot,
   every other chunk completes normally, and the join point re-raises
   the lowest-indexed failure as [Worker_error] — so the caller learns
   {e which} task died instead of losing the index, and the pool stays
   serviceable. *)
let max_task_attempts = 3

let guarded errors k body =
  let rec go attempt =
    match
      Fbb_fault.Fault.inject_transient "pool.transient";
      Fbb_fault.Fault.inject "pool.worker";
      body ()
    with
    | () -> ()
    | exception e when Fbb_fault.Fault.is_transient e && attempt < max_task_attempts ->
      Fbb_obs.Counter.incr retried_c;
      (* Bounded deterministic backoff: a fixed spin growing with the
         attempt ordinal - no clock, no scheduler dependence. *)
      for _ = 0 to 100 * attempt do
        Domain.cpu_relax ()
      done;
      go (attempt + 1)
    | exception e ->
      Fbb_obs.Counter.incr poisoned_c;
      errors.(k) <- Some (e, Printexc.get_raw_backtrace ())
  in
  go 1

let raise_first_error errors =
  Array.iteri
    (fun k slot ->
      match slot with
      | Some (e, bt) ->
        Printexc.raise_with_backtrace (Worker_error { task = k; exn = e }) bt
      | None -> ())
    errors

let parallel_map ?chunk a ~f =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let c = chunk_size ?chunk n in
    let nchunks = (n + c - 1) / c in
    let out = Array.make nchunks None in
    let errors = Array.make nchunks None in
    let task k () =
      guarded errors k (fun () ->
          let lo = k * c in
          let len = min c (n - lo) in
          out.(k) <- Some (Array.init len (fun i -> f a.(lo + i))))
    in
    run_batch (Array.init nchunks task);
    raise_first_error errors;
    Array.concat
      (List.init nchunks (fun k ->
           match out.(k) with Some r -> r | None -> assert false))
  end

let parallel_for ?chunk ~n f =
  if n > 0 then begin
    let c = chunk_size ?chunk n in
    let nchunks = (n + c - 1) / c in
    let errors = Array.make nchunks None in
    let task k () =
      guarded errors k (fun () ->
          let lo = k * c in
          let hi = min n (lo + c) - 1 in
          for i = lo to hi do
            f i
          done)
    in
    run_batch (Array.init nchunks task);
    raise_first_error errors
  end

let parallel_reduce ?chunk ~n ~map ~combine init =
  if n <= 0 then init
  else begin
    let c = chunk_size ?chunk n in
    let nchunks = (n + c - 1) / c in
    let out = Array.make nchunks None in
    let errors = Array.make nchunks None in
    let task k () =
      guarded errors k (fun () ->
          let lo = k * c in
          let hi = min n (lo + c) - 1 in
          let acc = ref (map lo) in
          for i = lo + 1 to hi do
            acc := combine !acc (map i)
          done;
          out.(k) <- Some !acc)
    in
    run_batch (Array.init nchunks task);
    raise_first_error errors;
    Array.fold_left
      (fun acc slot ->
        match slot with Some v -> combine acc v | None -> assert false)
      init out
  end
