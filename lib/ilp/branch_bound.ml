module S = Fbb_lp.Simplex

(* Observability. Totals accumulate with or without a sink; [nodes] in
   the result stays authoritative for compatibility, and the counters
   mirror it (delta over a solve equals [result.nodes]). *)
let nodes_c = Fbb_obs.Counter.make "bb.nodes"
let pruned_c = Fbb_obs.Counter.make "bb.pruned"
let incumbents_c = Fbb_obs.Counter.make "bb.incumbents"
let lp_infeasible_c = Fbb_obs.Counter.make "bb.lp_infeasible"
let lp_pivot_limit_c = Fbb_obs.Counter.make "bb.lp_pivot_limit"
let waves_c = Fbb_obs.Counter.make "bb.waves"

type problem = {
  num_vars : int;
  minimize : float array;
  constraints : S.constr list;
}

type limits = { max_nodes : int; max_seconds : float }

let default_limits = { max_nodes = 200_000; max_seconds = 60.0 }

type status = Proved_optimal | Feasible | Proved_infeasible | Limit_reached

type result = {
  status : status;
  best : (float array * float) option;
  nodes : int;
  elapsed_s : float;
}

let objective_of p x =
  let acc = ref 0.0 in
  Array.iteri (fun i c -> acc := !acc +. (c *. x.(i))) p.minimize;
  !acc

let int_eps = 1e-6

(* Build the LP over free variables only; fixed variables are substituted
   into the right-hand sides. [fixed.(i)] is -1 (free), 0 or 1. *)
let reduced_lp p fixed =
  let map = Array.make p.num_vars (-1) in
  let free = ref [] in
  let nfree = ref 0 in
  for i = 0 to p.num_vars - 1 do
    if fixed.(i) < 0 then begin
      map.(i) <- !nfree;
      free := i :: !free;
      incr nfree
    end
  done;
  let free = Array.of_list (List.rev !free) in
  let constraints =
    List.filter_map
      (fun (c : S.constr) ->
        let rhs = ref c.S.rhs in
        let terms =
          List.filter_map
            (fun (v, a) ->
              if fixed.(v) >= 0 then begin
                rhs := !rhs -. (a *. float_of_int fixed.(v));
                None
              end
              else Some (map.(v), a))
            c.S.terms
        in
        match terms with
        | [] ->
          (* Fully substituted: keep an infeasibility marker if violated. *)
          let violated =
            match c.S.relation with
            | S.Le -> 0.0 > !rhs +. 1e-9
            | S.Ge -> 0.0 < !rhs -. 1e-9
            | S.Eq -> Float.abs !rhs > 1e-9
          in
          if violated then
            Some { S.terms = [ (0, 0.0) ]; relation = c.S.relation; rhs = !rhs }
          else None
        | _ -> Some { S.terms; relation = c.S.relation; rhs = !rhs })
      p.constraints
  in
  let minimize = Array.map (fun i -> p.minimize.(i)) free in
  let fixed_cost = ref 0.0 in
  for i = 0 to p.num_vars - 1 do
    if fixed.(i) = 1 then fixed_cost := !fixed_cost +. p.minimize.(i)
  done;
  ( {
      S.num_vars = Array.length free;
      minimize;
      constraints;
      upper = Some (Array.make (Array.length free) 1.0);
    },
    free,
    !fixed_cost )

let feasible p x =
  S.check
    { S.num_vars = p.num_vars; minimize = p.minimize; constraints = p.constraints; upper = Some (Array.make p.num_vars 1.0) }
    x ~eps:1e-6

(* Subproblem awaiting exploration. [lower] is the parent's LP bound -
   a valid lower bound on anything beneath this node, used to discard
   it without an LP solve once the incumbent has moved past it. *)
type node = { fixed : int array; lower : float }

(* What exploring one node produced. Computed in parallel on the pool;
   pure in the shared search state, so a wave's outcomes depend only on
   (problem, node, threshold) and never on scheduling. *)
type outcome =
  | Pre_pruned
  | Bound_pruned
  | Lp_infeasible
  | Lp_pivot_limit
  | Integral of float array * float
  | Branched of node * node

(* The threshold a wave prunes against: anything whose lower bound
   cannot beat it (within 1e-9) is abandoned. It folds together the
   incumbent and the caller's cutoff, and is frozen at the start of a
   wave so every node of the wave - wherever it runs - prunes against
   the same value. That freeze is what makes the parallel search
   deterministic: incumbents found mid-wave only tighten the *next*
   wave, identically at any job count, instead of racing into sibling
   subtrees at scheduler-dependent moments. *)
let explore p threshold node =
  if node.lower >= threshold -. 1e-9 then Pre_pruned
  else begin
    let lp, free, fixed_cost = reduced_lp p node.fixed in
    match Fbb_obs.Span.with_ ~name:"bb.lp_bound" (fun () -> S.solve lp) with
    | S.Infeasible | S.Unbounded -> Lp_infeasible
    (* No budget is passed into these parallel LP solves (a shared
       budget ticked from the pool would trip at scheduler-dependent
       points), so [Budget_exhausted] cannot occur here; treat it like
       a pivot limit - the subtree lost its bound - if it ever does. *)
    | S.Pivot_limit | S.Budget_exhausted -> Lp_pivot_limit
    | S.Optimal { objective; solution } ->
      let total = objective +. fixed_cost in
      if total >= threshold -. 1e-9 then Bound_pruned
      else begin
        (* Most fractional free variable. *)
        let frac = ref (-1) in
        let dist = ref 0.0 in
        Array.iteri
          (fun k _ ->
            let v = solution.(k) in
            let d = Float.min (Float.abs v) (Float.abs (1.0 -. v)) in
            if d > int_eps && d > !dist then begin
              dist := d;
              frac := k
            end)
          free;
        if !frac < 0 then begin
          (* Integral: candidate incumbent. *)
          let x = Array.make p.num_vars 0.0 in
          for i = 0 to p.num_vars - 1 do
            if node.fixed.(i) >= 0 then x.(i) <- float_of_int node.fixed.(i)
          done;
          Array.iteri (fun k i -> x.(i) <- Float.round solution.(k)) free;
          Integral (x, objective_of p x)
        end
        else begin
          let var = free.(!frac) in
          let first = if solution.(!frac) >= 0.5 then 1 else 0 in
          let child v =
            let fixed = Array.copy node.fixed in
            fixed.(var) <- v;
            { fixed; lower = total }
          in
          Branched (child first, child (1 - first))
        end
      end
  end

let rec take_batch n frontier =
  if n = 0 then ([], frontier)
  else
    match frontier with
    | [] -> ([], [])
    | node :: rest ->
      let batch, remaining = take_batch (n - 1) rest in
      (node :: batch, remaining)

(* Nodes explored per synchronization wave. Fixed (never derived from
   the job count) so the wave structure, and therefore the entire
   search, is identical at any parallelism level. *)
let wave_width = 32

let solve ?(limits = default_limits) ?(budget = Fbb_util.Budget.unlimited)
    ?incumbent ?cutoff p =
  Fbb_obs.Span.with_ ~name:"bb.solve" @@ fun () ->
  let start = Fbb_obs.Clock.now_s () in
  let best = ref None in
  (match incumbent with
  | Some x ->
    if not (feasible p x) then
      invalid_arg "Branch_bound.solve: infeasible incumbent";
    best := Some (Array.copy x, objective_of p x)
  | None -> ());
  let nodes = ref 0 in
  let hit_limit = ref false in
  let threshold () =
    let b = match !best with Some (_, b) -> b | None -> Float.infinity in
    match cutoff with Some c -> Float.min b c | None -> b
  in
  let root = { fixed = Array.make p.num_vars (-1); lower = Float.neg_infinity } in
  let frontier = ref [ root ] in
  let running = ref true in
  while !running && !frontier <> [] do
    if
      !nodes >= limits.max_nodes
      || Fbb_obs.Clock.now_s () -. start > limits.max_seconds
      || Fbb_util.Budget.exhausted budget
    then begin
      hit_limit := true;
      running := false
    end
    else begin
      Fbb_obs.Counter.incr waves_c;
      let width = min wave_width (limits.max_nodes - !nodes) in
      let batch, rest = take_batch width !frontier in
      let t = threshold () in
      let outcomes =
        Fbb_par.Pool.parallel_map ~chunk:1 (Array.of_list batch)
          ~f:(explore p t)
      in
      let batch_n = Array.length outcomes in
      (* Budget is ticked here, in the sequential wave fold - one unit
         per node expanded - never from inside the parallel LP solves,
         so the wave at which a work budget trips is a pure function of
         the search, identical at any job count. *)
      if not (Fbb_util.Budget.tick ~cost:batch_n budget) then
        hit_limit := true;
      nodes := !nodes + batch_n;
      Fbb_obs.Counter.add nodes_c batch_n;
      (* Fold the wave sequentially in node order: incumbent updates and
         child ordering are then functions of the outcomes alone. *)
      let children = ref [] in
      Array.iter
        (fun outcome ->
          match outcome with
          | Pre_pruned | Bound_pruned -> Fbb_obs.Counter.incr pruned_c
          | Lp_infeasible -> Fbb_obs.Counter.incr lp_infeasible_c
          | Lp_pivot_limit ->
            (* The LP could not bound this subtree; abandoning it without
               a proof forfeits optimality, exactly like a node/time
               budget. *)
            Fbb_obs.Counter.incr lp_pivot_limit_c;
            hit_limit := true
          | Integral (x, obj) -> begin
            match !best with
            | Some (_, b) when obj >= b -. 1e-12 -> ()
            | Some _ | None ->
              Fbb_obs.Counter.incr incumbents_c;
              best := Some (x, obj)
          end
          | Branched (a, b) -> children := b :: a :: !children)
        outcomes;
      (* Children go to the front (depth-first flavour keeps the frontier
         small); [children] is reversed, restoring node order. *)
      frontier := List.rev_append !children rest
    end
  done;
  if !frontier <> [] then hit_limit := true;
  let elapsed_s = Fbb_obs.Clock.now_s () -. start in
  let status =
    match (!best, !hit_limit) with
    | Some _, false -> Proved_optimal
    | Some _, true -> Feasible
    | None, false -> Proved_infeasible
    | None, true -> Limit_reached
  in
  { status; best = !best; nodes = !nodes; elapsed_s }
