module S = Fbb_lp.Simplex

(* Observability. Totals accumulate with or without a sink; [nodes] in
   the result stays authoritative for compatibility, and the counters
   mirror it (delta over a solve equals [result.nodes]). *)
let nodes_c = Fbb_obs.Counter.make "bb.nodes"
let pruned_c = Fbb_obs.Counter.make "bb.pruned"
let incumbents_c = Fbb_obs.Counter.make "bb.incumbents"
let lp_infeasible_c = Fbb_obs.Counter.make "bb.lp_infeasible"
let lp_pivot_limit_c = Fbb_obs.Counter.make "bb.lp_pivot_limit"

type problem = {
  num_vars : int;
  minimize : float array;
  constraints : S.constr list;
}

type limits = { max_nodes : int; max_seconds : float }

let default_limits = { max_nodes = 200_000; max_seconds = 60.0 }

type status = Proved_optimal | Feasible | Proved_infeasible | Limit_reached

type result = {
  status : status;
  best : (float array * float) option;
  nodes : int;
  elapsed_s : float;
}

let objective_of p x =
  let acc = ref 0.0 in
  Array.iteri (fun i c -> acc := !acc +. (c *. x.(i))) p.minimize;
  !acc

let int_eps = 1e-6

(* Build the LP over free variables only; fixed variables are substituted
   into the right-hand sides. [fixed.(i)] is -1 (free), 0 or 1. *)
let reduced_lp p fixed =
  let map = Array.make p.num_vars (-1) in
  let free = ref [] in
  let nfree = ref 0 in
  for i = 0 to p.num_vars - 1 do
    if fixed.(i) < 0 then begin
      map.(i) <- !nfree;
      free := i :: !free;
      incr nfree
    end
  done;
  let free = Array.of_list (List.rev !free) in
  let constraints =
    List.filter_map
      (fun (c : S.constr) ->
        let rhs = ref c.S.rhs in
        let terms =
          List.filter_map
            (fun (v, a) ->
              if fixed.(v) >= 0 then begin
                rhs := !rhs -. (a *. float_of_int fixed.(v));
                None
              end
              else Some (map.(v), a))
            c.S.terms
        in
        match terms with
        | [] ->
          (* Fully substituted: keep an infeasibility marker if violated. *)
          let violated =
            match c.S.relation with
            | S.Le -> 0.0 > !rhs +. 1e-9
            | S.Ge -> 0.0 < !rhs -. 1e-9
            | S.Eq -> Float.abs !rhs > 1e-9
          in
          if violated then
            Some { S.terms = [ (0, 0.0) ]; relation = c.S.relation; rhs = !rhs }
          else None
        | _ -> Some { S.terms; relation = c.S.relation; rhs = !rhs })
      p.constraints
  in
  let minimize = Array.map (fun i -> p.minimize.(i)) free in
  let fixed_cost = ref 0.0 in
  for i = 0 to p.num_vars - 1 do
    if fixed.(i) = 1 then fixed_cost := !fixed_cost +. p.minimize.(i)
  done;
  ( {
      S.num_vars = Array.length free;
      minimize;
      constraints;
      upper = Some (Array.make (Array.length free) 1.0);
    },
    free,
    !fixed_cost )

let feasible p x =
  S.check
    { S.num_vars = p.num_vars; minimize = p.minimize; constraints = p.constraints; upper = Some (Array.make p.num_vars 1.0) }
    x ~eps:1e-6

let solve ?(limits = default_limits) ?incumbent ?cutoff p =
  Fbb_obs.Span.with_ ~name:"bb.solve" @@ fun () ->
  let start = Fbb_obs.Clock.now_s () in
  let best = ref None in
  (match incumbent with
  | Some x ->
    if not (feasible p x) then
      invalid_arg "Branch_bound.solve: infeasible incumbent";
    best := Some (Array.copy x, objective_of p x)
  | None -> ());
  let nodes = ref 0 in
  let hit_limit = ref false in
  let fixed = Array.make p.num_vars (-1) in
  let rec branch () =
    if
      !nodes >= limits.max_nodes
      || Fbb_obs.Clock.now_s () -. start > limits.max_seconds
    then hit_limit := true
    else begin
      incr nodes;
      Fbb_obs.Counter.incr nodes_c;
      let lp, free, fixed_cost = reduced_lp p fixed in
      match Fbb_obs.Span.with_ ~name:"bb.lp_bound" (fun () -> S.solve lp) with
      | S.Infeasible | S.Unbounded ->
        Fbb_obs.Counter.incr lp_infeasible_c
      | S.Pivot_limit ->
        (* The LP could not bound this subtree; abandoning it without a
           proof forfeits optimality, exactly like a node/time budget. *)
        Fbb_obs.Counter.incr lp_pivot_limit_c;
        hit_limit := true
      | S.Optimal { objective; solution } ->
        let total = objective +. fixed_cost in
        let pruned =
          (match !best with Some (_, b) -> total >= b -. 1e-9 | None -> false)
          || match cutoff with Some c -> total >= c -. 1e-9 | None -> false
        in
        if pruned then Fbb_obs.Counter.incr pruned_c
        else begin
          (* Most fractional free variable. *)
          let frac = ref (-1) in
          let dist = ref 0.0 in
          Array.iteri
            (fun k _ ->
              let v = solution.(k) in
              let d = Float.min (Float.abs v) (Float.abs (1.0 -. v)) in
              if d > int_eps && d > !dist then begin
                dist := d;
                frac := k
              end)
            free;
          if !frac < 0 then begin
            (* Integral: new incumbent. *)
            let x = Array.make p.num_vars 0.0 in
            for i = 0 to p.num_vars - 1 do
              if fixed.(i) >= 0 then x.(i) <- float_of_int fixed.(i)
            done;
            Array.iteri
              (fun k i -> x.(i) <- Float.round solution.(k))
              free;
            let obj = objective_of p x in
            match !best with
            | Some (_, b) when obj >= b -. 1e-12 -> ()
            | Some _ | None ->
              Fbb_obs.Counter.incr incumbents_c;
              best := Some (x, obj)
          end
          else begin
            let var = free.(!frac) in
            let first = if solution.(!frac) >= 0.5 then 1 else 0 in
            fixed.(var) <- first;
            branch ();
            fixed.(var) <- 1 - first;
            branch ();
            fixed.(var) <- -1
          end
        end
    end
  in
  branch ();
  let elapsed_s = Fbb_obs.Clock.now_s () -. start in
  let status =
    match (!best, !hit_limit) with
    | Some _, false -> Proved_optimal
    | Some _, true -> Feasible
    | None, false -> Proved_infeasible
    | None, true -> Limit_reached
  in
  { status; best = !best; nodes = !nodes; elapsed_s }
