(** 0-1 integer linear programming by branch and bound.

    LP-relaxation bounds come from {!Fbb_lp.Simplex}; branching is on the
    most fractional variable, depth-first flavoured, exploring the nearest
    rounding first. A warm-start incumbent (e.g. from the paper's
    heuristic) makes pruning effective immediately. Node and wall-clock
    limits reproduce the paper's "ILP did not converge" behaviour on the
    largest designs.

    The search runs in fixed-width waves: up to 32 open nodes have their
    LP relaxations solved in parallel on the {!Fbb_par.Pool} domain pool,
    then the wave is folded sequentially in node order — incumbent
    updates, pruning bookkeeping, child ordering. The pruning threshold
    (incumbent best folded with [?cutoff]) is frozen at the start of each
    wave, so the set of explored nodes, the node count, the winning
    solution and its deterministic tie-breaking (first node in wave order
    wins among equal objectives) are all bit-identical at any job count;
    only wall-clock time and time-budget truncation depend on the
    machine. *)

type problem = {
  num_vars : int;  (** all variables are binary *)
  minimize : float array;
  constraints : Fbb_lp.Simplex.constr list;
}

type limits = {
  max_nodes : int;
  max_seconds : float;
}

val default_limits : limits
(** 200_000 nodes, 60 s. *)

type status =
  | Proved_optimal  (** search exhausted; [best] is the optimum *)
  | Feasible  (** limits hit; [best] is the best incumbent found *)
  | Proved_infeasible
  | Limit_reached  (** limits hit before any feasible point was found *)

type result = {
  status : status;
  best : (float array * float) option;  (** (solution, objective) *)
  nodes : int;
  elapsed_s : float;
}

val solve :
  ?limits:limits -> ?budget:Fbb_util.Budget.t -> ?incumbent:float array ->
  ?cutoff:float -> problem -> result
(** [incumbent], when given, must be a feasible 0/1 vector; it seeds the
    upper bound. Raises [Invalid_argument] if it is infeasible.

    [budget] bounds the search cooperatively: it is consulted before
    each wave and ticked once per expanded node {e in the sequential
    wave fold} (never inside the parallel LP solves), so with a pure
    work budget the set of explored nodes — and hence the incumbent —
    is bit-identical at any job count. When the budget trips, the
    search stops at the wave boundary and reports
    [Feasible]/[Limit_reached] with the best incumbent found so far
    (anytime semantics), exactly like the node or time limits.

    [cutoff] prunes any subtree whose LP bound is not strictly below it —
    useful when an external search already holds a solution of that
    objective; solutions at or above the cutoff are not reported.

    The whole solve runs inside a [bb.solve] observability span, each
    LP relaxation inside [bb.lp_bound]; node, prune, incumbent and
    LP-failure events accumulate on the [bb.*] counters (the delta of
    [bb.nodes] over a call equals [result.nodes]). An LP relaxation
    ending in {!Fbb_lp.Simplex.Pivot_limit} abandons that subtree and
    downgrades the result to [Feasible]/[Limit_reached], like a node or
    time budget. *)

val objective_of : problem -> float array -> float
