(* Tests for the Fbb_par domain pool: combinator semantics, exception
   propagation, pool lifecycle and reuse. *)

module Pool = Fbb_par.Pool

(* Pin the pool width for one test and restore the previous width after,
   so suites stay independent of execution order (and of FBB_JOBS). *)
let at_jobs n f =
  let prev = Pool.jobs () in
  Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Pool.set_jobs prev) f

let widths = [ 1; 2; 4 ]

(* ----- parallel_map ----------------------------------------------------- *)

let test_map_matches_sequential () =
  List.iter
    (fun jobs ->
      at_jobs jobs @@ fun () ->
      List.iter
        (fun n ->
          let input = Array.init n (fun i -> i) in
          let expect = Array.map (fun i -> (i * i) + 1) input in
          let got = Pool.parallel_map input ~f:(fun i -> (i * i) + 1) in
          Alcotest.(check (array int))
            (Printf.sprintf "map n=%d jobs=%d" n jobs)
            expect got)
        [ 0; 1; 7; 64; 257 ])
    widths

let test_map_chunk_sizes () =
  at_jobs 4 @@ fun () ->
  let input = Array.init 100 (fun i -> i) in
  let expect = Array.map succ input in
  List.iter
    (fun chunk ->
      Alcotest.(check (array int))
        (Printf.sprintf "chunk=%d" chunk)
        expect
        (Pool.parallel_map ~chunk input ~f:succ))
    [ 1; 3; 100; 1000 ]

let test_empty_inputs () =
  List.iter
    (fun jobs ->
      at_jobs jobs @@ fun () ->
      Alcotest.(check (array int))
        "empty map" [||]
        (Pool.parallel_map [||] ~f:(fun i -> i));
      Pool.parallel_for ~n:0 (fun _ -> Alcotest.fail "body ran for n=0");
      Alcotest.(check int) "empty reduce is init" 42
        (Pool.parallel_reduce ~n:0 ~map:(fun i -> i) ~combine:( + ) 42))
    widths

(* ----- exceptions ------------------------------------------------------- *)

exception Boom of int

let test_exception_propagates_and_pool_survives () =
  List.iter
    (fun jobs ->
      at_jobs jobs @@ fun () ->
      let input = Array.init 50 (fun i -> i) in
      (* Two failing chunks; the one with the smallest task index wins,
         independent of which domain hit it first, and the join point
         wraps the original exception in Worker_error carrying that
         index. *)
      (match
         Pool.parallel_map ~chunk:1 input ~f:(fun i ->
             if i = 10 || i = 37 then raise (Boom i) else i)
       with
      | _ -> Alcotest.fail "expected Worker_error"
      | exception Pool.Worker_error { task; exn = Boom i } ->
        Alcotest.(check int)
          (Printf.sprintf "lowest failing task index wins (jobs=%d)" jobs)
          10 task;
        Alcotest.(check int)
          (Printf.sprintf "original exception preserved (jobs=%d)" jobs)
          10 i);
      (* The pool must stay serviceable after a failed batch. *)
      Alcotest.(check (array int))
        "pool reusable after exception"
        (Array.map succ input)
        (Pool.parallel_map input ~f:succ))
    widths

let test_worker_error_in_for_and_reduce () =
  (* Every combinator funnels through the same containment: reduce and
     for report Worker_error too, with the failing task index. *)
  List.iter
    (fun jobs ->
      at_jobs jobs @@ fun () ->
      (match
         Pool.parallel_for ~chunk:1 ~n:20 (fun i ->
             if i = 7 then raise (Boom i))
       with
      | () -> Alcotest.fail "expected Worker_error"
      | exception Pool.Worker_error { task; exn = Boom 7 } ->
        Alcotest.(check int)
          (Printf.sprintf "for reports task (jobs=%d)" jobs)
          7 task);
      match
        Pool.parallel_reduce ~chunk:1 ~n:20
          ~map:(fun i -> if i = 13 then raise (Boom i) else i)
          ~combine:( + ) 0
      with
      | _ -> Alcotest.fail "expected Worker_error"
      | exception Pool.Worker_error { task; exn = Boom 13 } ->
        Alcotest.(check int)
          (Printf.sprintf "reduce reports task (jobs=%d)" jobs)
          13 task)
    [ 1; 4 ]

(* ----- parallel_for ----------------------------------------------------- *)

let test_for_covers_every_index_once () =
  List.iter
    (fun jobs ->
      at_jobs jobs @@ fun () ->
      let n = 200 in
      (* Distinct indices never race: each cell is written by exactly the
         task that owns its index. *)
      let hits = Array.make n 0 in
      Pool.parallel_for ~chunk:7 ~n (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool)
        (Printf.sprintf "every index exactly once (jobs=%d)" jobs)
        true
        (Array.for_all (fun h -> h = 1) hits))
    widths

(* ----- parallel_reduce -------------------------------------------------- *)

let test_reduce_sum () =
  let sum jobs =
    at_jobs jobs @@ fun () ->
    Pool.parallel_reduce ~n:1000
      ~map:(fun i -> float_of_int i *. 0.1)
      ~combine:( +. ) 0.0
  in
  let expected = sum 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "float sum bit-identical jobs=1 vs %d" jobs)
        true
        (sum jobs = expected))
    widths

let test_reduce_geometry_independent_of_jobs () =
  (* Subtraction is not associative, so the result encodes the exact
     combination tree; it must depend on (n, chunk) only, never on the
     pool width. *)
  let run jobs =
    at_jobs jobs @@ fun () ->
    Pool.parallel_reduce ~chunk:5 ~n:83 ~map:float_of_int ~combine:( -. ) 0.0
  in
  let expected = run 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "combination tree fixed (jobs=%d)" jobs)
        true
        (run jobs = expected))
    widths

(* ----- nesting and lifecycle -------------------------------------------- *)

let test_nested_batches () =
  at_jobs 4 @@ fun () ->
  let outer = Array.init 6 (fun i -> i) in
  let got =
    Pool.parallel_map ~chunk:1 outer ~f:(fun i ->
        Pool.parallel_reduce ~chunk:2 ~n:10
          ~map:(fun j -> (i * 10) + j)
          ~combine:( + ) 0)
  in
  let expect = Array.init 6 (fun i -> (i * 100) + 45) in
  Alcotest.(check (array int)) "batch inside batch" expect got

let test_set_jobs_switches_pool () =
  let input = Array.init 33 (fun i -> i * 3) in
  let expect = Array.map succ input in
  List.iter
    (fun jobs ->
      at_jobs jobs @@ fun () ->
      Alcotest.(check int) "width taken" jobs (Pool.jobs ());
      Alcotest.(check (array int))
        (Printf.sprintf "map after resize to %d" jobs)
        expect
        (Pool.parallel_map input ~f:succ))
    [ 2; 1; 4; 1; 2 ]

let suite =
  [
    Alcotest.test_case "map matches sequential" `Quick
      test_map_matches_sequential;
    Alcotest.test_case "map chunk sizes" `Quick test_map_chunk_sizes;
    Alcotest.test_case "empty inputs" `Quick test_empty_inputs;
    Alcotest.test_case "exception propagation and reuse" `Quick
      test_exception_propagates_and_pool_survives;
    Alcotest.test_case "worker error in for and reduce" `Quick
      test_worker_error_in_for_and_reduce;
    Alcotest.test_case "for covers every index once" `Quick
      test_for_covers_every_index_once;
    Alcotest.test_case "reduce sum" `Quick test_reduce_sum;
    Alcotest.test_case "reduce geometry fixed" `Quick
      test_reduce_geometry_independent_of_jobs;
    Alcotest.test_case "nested batches" `Quick test_nested_batches;
    Alcotest.test_case "set_jobs switches pool" `Quick
      test_set_jobs_switches_pool;
  ]
