(* Equivalence of Timing.Incremental with from-scratch analysis.

   The incremental engine's contract is *bit* identity, not epsilon
   closeness: after any sequence of bias edits, every view (arrivals,
   requireds, slacks, gate delays, dcrit) must carry exactly the bits a
   fresh [Timing.analyze] under the same assignment would produce. These
   properties drive random edit sequences — single-gate nudges (sparse
   heap drain), wide batches and uniform sweeps (dense fallback), port
   edits and revert-to-same no-ops — over generated netlists, with and
   without a derate, and compare against scratch runs field by field
   with [=] on floats. *)

module N = Fbb_netlist.Netlist
module T = Fbb_sta.Timing

(* Exact comparison of every public view over every node. *)
let bit_identical nl incr scratch =
  let n = N.size nl in
  let ok = ref (T.dcrit incr = T.dcrit scratch) in
  let i = ref 0 in
  while !ok && !i < n do
    let id = !i in
    if
      T.arrival incr id <> T.arrival scratch id
      || T.gate_delay incr id <> T.gate_delay scratch id
      || T.required incr id <> T.required scratch id
      || T.slack incr id <> T.slack scratch id
      || T.is_endpoint incr id <> T.is_endpoint scratch id
    then ok := false;
    i := !i + 1
  done;
  !ok

(* One randomized edit step against a mutable bias assignment. Steps are
   chosen to exercise both propagation regimes: small batches stay on
   the heap path, [Uniform] and [Wide] trip the dense full-sweep
   fallback, [Noop] re-sends current voltages (must touch nothing). *)
let apply_step rng nl bias ctx =
  let levels = Fbb_tech.Bias.levels () in
  let pick_level () = levels.(Fbb_util.Rng.int rng (Array.length levels)) in
  let gates = N.gates nl in
  let pick_gate () = gates.(Fbb_util.Rng.int rng (Array.length gates)) in
  match Fbb_util.Rng.int rng 5 with
  | 0 ->
    (* single-gate edit: the sparse cone case *)
    let g = pick_gate () in
    let v = pick_level () in
    bias.(g) <- v;
    T.Incremental.update ctx [ (g, v) ]
  | 1 ->
    (* small batch, possibly with overlapping cones *)
    let k = 1 + Fbb_util.Rng.int rng 4 in
    let edits =
      List.init k (fun _ ->
          let g = pick_gate () in
          let v = pick_level () in
          bias.(g) <- v;
          (g, v))
    in
    T.Incremental.update ctx edits
  | 2 ->
    (* wide batch over ~half the gates: dense fallback territory *)
    let edits =
      Array.to_list gates
      |> List.filter_map (fun g ->
             if Fbb_util.Rng.int rng 2 = 0 then begin
               let v = pick_level () in
               bias.(g) <- v;
               Some (g, v)
             end
             else None)
    in
    T.Incremental.update ctx edits
  | 3 ->
    (* uniform sweep: every gate changes at once *)
    let v = pick_level () in
    Array.iter (fun g -> bias.(g) <- v) gates;
    T.Incremental.set_uniform ctx v
  | _ ->
    (* no-ops: current voltages re-sent, plus an edit aimed at a port *)
    let g = pick_gate () in
    let port = (N.inputs nl).(0) in
    T.Incremental.update ctx [ (g, bias.(g)); (port, 0.4) ]

let run_equivalence ~derate ~gates (seed, steps) =
  let nl = Fbb_netlist.Generators.random_module ~seed ~gates () in
  let cache = Fbb_sta.Delay_cache.create nl in
  let bias = Array.make (N.size nl) 0.0 in
  let ctx = T.Incremental.create ~cache ?derate nl in
  let rng = Fbb_util.Rng.create ~seed:(seed lxor 0x5ca1ab1e) in
  let all_ok = ref true in
  for _ = 1 to steps do
    let view = apply_step rng nl bias ctx in
    let scratch =
      T.analyze ~cache ?derate ~bias:(fun id -> bias.(id)) nl
    in
    if not (bit_identical nl view scratch) then all_ok := false
  done;
  !all_ok

let qcheck_tests =
  let open QCheck in
  let seeded = pair (int_range 1 1_000_000) (int_range 1 6) in
  [
    Test.make ~name:"incremental bit-identical to scratch (no derate)"
      ~count:8 seeded
      (run_equivalence ~derate:None ~gates:200);
    Test.make ~name:"incremental bit-identical to scratch (derated)" ~count:6
      seeded
      (run_equivalence
         ~derate:(Some (fun g -> 1.0 +. (0.001 *. float_of_int (g mod 7))))
         ~gates:150);
    Test.make ~name:"set_bias diff equals explicit batch" ~count:6
      (int_range 1 1_000_000)
      (fun seed ->
        let nl = Fbb_netlist.Generators.random_module ~seed ~gates:180 () in
        let cache = Fbb_sta.Delay_cache.create nl in
        let levels = Fbb_tech.Bias.levels () in
        let assign id = levels.(id mod Array.length levels) in
        let a = T.Incremental.create ~cache nl in
        let va = T.Incremental.set_bias a assign in
        let scratch = T.analyze ~cache ~bias:assign nl in
        bit_identical nl va scratch);
  ]

let suite =
  List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
