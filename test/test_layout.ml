(* Tests for Fbb_layout: contact insertion, area accounting, rendering. *)

module BR = Fbb_layout.Bias_rails
module Area = Fbb_layout.Area
module Render = Fbb_layout.Render
module Pl = Fbb_place.Placement

let placement () = Lazy.force Tsupport.small_placement

let test_insert_unbiased () =
  let pl = placement () in
  let levels = Array.make (Pl.num_rows pl) 0 in
  let t = BR.insert pl ~levels in
  Alcotest.(check int) "no rail pairs" 0 t.BR.bias_pairs;
  Alcotest.(check (float 1e-9)) "no increase" 0.0 t.BR.max_utilization_increase;
  Alcotest.(check bool) "feasible" true t.BR.feasible

let test_insert_biased () =
  let pl = placement () in
  let levels = Array.init (Pl.num_rows pl) (fun r -> if r < 3 then 4 else 0) in
  let t = BR.insert pl ~levels in
  Alcotest.(check int) "one pair" 1 t.BR.bias_pairs;
  Alcotest.(check bool) "some increase" true (t.BR.max_utilization_increase > 0.0);
  Alcotest.(check bool) "the paper's <= 6% claim" true
    (t.BR.max_utilization_increase <= 0.06 +. 1e-9);
  Alcotest.(check bool) "feasible" true t.BR.feasible;
  Array.iter
    (fun rc ->
      if rc.BR.level = 0 then
        Alcotest.(check int) "unbiased rows add nothing" 0 rc.BR.added_sites
      else
        Alcotest.(check int) "biased rows swap taps for contact pairs"
          (rc.BR.windows * ((2 * BR.contact_width_sites) - BR.tap_width_sites))
          rc.BR.added_sites)
    t.BR.rows

let test_insert_two_pairs () =
  let pl = placement () in
  let levels =
    Array.init (Pl.num_rows pl) (fun r -> if r < 2 then 6 else if r < 4 then 3 else 0)
  in
  let t = BR.insert pl ~levels in
  Alcotest.(check int) "two pairs" 2 t.BR.bias_pairs

let test_insert_length_mismatch () =
  let pl = placement () in
  Alcotest.(check bool) "rejected" true
    (match BR.insert pl ~levels:[| 0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_max_supported_pairs () =
  let pl = placement () in
  let pairs = BR.max_supported_pairs pl ~utilization_cap:1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "supports >= 2 pairs (got %d)" pairs)
    true (pairs >= 2)

let test_pairs_monotone_in_cap () =
  let pl = placement () in
  let a = BR.max_supported_pairs pl ~utilization_cap:0.8 in
  let b = BR.max_supported_pairs pl ~utilization_cap:1.0 in
  Alcotest.(check bool) "monotone" true (b >= a)

let test_area_uniform () =
  let pl = placement () in
  let a = Area.of_assignment pl ~levels:(Array.make (Pl.num_rows pl) 3) in
  Alcotest.(check int) "no boundaries" 0 a.Area.boundaries;
  Alcotest.(check (float 1e-9)) "no overhead" 0.0 a.Area.overhead_pct

let test_area_boundaries () =
  let pl = placement () in
  let levels = Array.init (Pl.num_rows pl) (fun r -> r mod 2) in
  let a = Area.of_assignment pl ~levels in
  Alcotest.(check int) "alternating = rows-1 boundaries"
    (Pl.num_rows pl - 1) a.Area.boundaries;
  Alcotest.(check bool) "positive overhead" true (a.Area.overhead_pct > 0.0);
  (* Worst case is bounded by sep/row_height. *)
  Alcotest.(check bool) "bounded by 10%" true (a.Area.overhead_pct <= 10.0)

let test_area_scaling () =
  let pl = placement () in
  let two =
    Area.of_assignment pl
      ~levels:(Array.init (Pl.num_rows pl) (fun r -> if r = 0 then 1 else 0))
  in
  let four =
    Area.of_assignment pl
      ~levels:(Array.init (Pl.num_rows pl) (fun r -> if r < 2 then 1 else 0))
  in
  Alcotest.(check bool) "fewer boundaries, less overhead" true
    (two.Area.overhead_pct <= four.Area.overhead_pct +. 1e-12)

let test_ascii () =
  let pl = placement () in
  let levels = Array.init (Pl.num_rows pl) (fun r -> r mod 3) in
  let s = Render.ascii pl ~levels in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' s) in
  Alcotest.(check int) "one line per row" (Pl.num_rows pl) (List.length lines);
  Alcotest.(check bool) "shows voltages" true (Tsupport.contains s "vbs=0.10V")

let test_svg_well_formed () =
  let pl = placement () in
  let levels = Array.init (Pl.num_rows pl) (fun r -> if r < 2 then 4 else 0) in
  let s = Render.svg pl ~levels in
  Alcotest.(check bool) "svg root" true (Tsupport.contains s "<svg");
  Alcotest.(check bool) "closed" true (Tsupport.contains s "</svg>");
  Alcotest.(check bool) "has rail label" true (Tsupport.contains s "vbs0=0.20V");
  (* one <rect per cell at least *)
  let count_rects =
    List.length (String.split_on_char '<' s)
  in
  Alcotest.(check bool) "substantial drawing" true (count_rects > 100)

let test_svg_save () =
  let pl = placement () in
  let path = Filename.temp_file "fbb" ".svg" in
  Render.save_svg ~path pl ~levels:(Array.make (Pl.num_rows pl) 0);
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "non-empty file" true (len > 100)

let test_row_order_minimizes_boundaries () =
  let pl = placement () in
  let levels = Array.init (Pl.num_rows pl) (fun r -> r mod 3) in
  let report, pl' = Fbb_layout.Row_order.apply pl ~levels in
  let open Fbb_layout.Row_order in
  Alcotest.(check int) "minimum boundaries = clusters - 1" 2
    report.boundaries_after;
  Alcotest.(check bool) "fewer boundaries" true
    (report.boundaries_after <= report.boundaries_before);
  Alcotest.(check bool) "less overhead" true
    (report.overhead_after_pct <= report.overhead_before_pct +. 1e-9);
  (* the permuted placement is still structurally sound *)
  let nl = Pl.netlist pl' in
  let total =
    List.init (Pl.num_rows pl') (fun r -> Array.length (Pl.row_gates pl' r))
    |> List.fold_left ( + ) 0
  in
  Alcotest.(check int) "gates preserved"
    (Fbb_netlist.Netlist.gate_count nl)
    total;
  for pos = 0 to Pl.num_rows pl' - 1 do
    Array.iter
      (fun g -> Alcotest.(check int) "row_of consistent" pos (Pl.row_of pl' g))
      (Pl.row_gates pl' pos)
  done

let test_row_order_stable () =
  let pl = placement () in
  let levels = Array.make (Pl.num_rows pl) 0 in
  let perm = Fbb_layout.Row_order.order_by_level pl ~levels in
  Alcotest.(check (array int)) "identity when uniform"
    (Array.init (Pl.num_rows pl) (fun i -> i))
    perm

let test_permute_rows_validation () =
  let pl = placement () in
  Alcotest.(check bool) "bad length rejected" true
    (match Pl.permute_rows pl [| 0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "duplicate rejected" true
    (match Pl.permute_rows pl (Array.make (Pl.num_rows pl) 0) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    ("insert unbiased", `Quick, test_insert_unbiased);
    ("insert biased", `Quick, test_insert_biased);
    ("insert two pairs", `Quick, test_insert_two_pairs);
    ("insert length mismatch", `Quick, test_insert_length_mismatch);
    ("max supported pairs", `Quick, test_max_supported_pairs);
    ("pairs monotone in cap", `Quick, test_pairs_monotone_in_cap);
    ("area uniform", `Quick, test_area_uniform);
    ("area boundaries", `Quick, test_area_boundaries);
    ("area scaling", `Quick, test_area_scaling);
    ("ascii rendering", `Quick, test_ascii);
    ("svg well-formed", `Quick, test_svg_well_formed);
    ("svg save", `Quick, test_svg_save);
    ("row order minimizes boundaries", `Quick, test_row_order_minimizes_boundaries);
    ("row order stable on uniform", `Quick, test_row_order_stable);
    ("permute rows validation", `Quick, test_permute_rows_validation);
  ]
