(* Tests for the offline trace converters (Fbb_obs.Trace_export), the
   minimal JSON codec they ride on (Fbb_util.Json) and the bench-record
   comparison (Fbb_obs.Benchfile). *)

module Obs = Fbb_obs
module Json = Fbb_util.Json

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ----- Json codec ------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a \"quoted\"\n\t string");
        ("i", Json.Num 42.0);
        ("f", Json.Num 0.609842027);
        ("neg", Json.Num (-1.5e-7));
        ("b", Json.Bool true);
        ("nil", Json.Null);
        ("arr", Json.Arr [ Json.Num 1.0; Json.Str "x"; Json.Obj [] ]);
      ]
  in
  let roundtrip indent =
    match Json.parse (Json.to_string ~indent v) with
    | Json.Obj _ as v' -> Alcotest.(check bool) "round-trips" true (v = v')
    | _ -> Alcotest.fail "round-trip lost the object"
  in
  roundtrip false;
  roundtrip true

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %S" s)
        true
        (Json.parse_opt s = None))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "{\"a\":1}x"; "nul"; "\"open" ]

let test_json_nonfinite_becomes_null () =
  (* NaN/inf have no JSON representation; the writer must emit null,
     never a token the parser cannot read back. *)
  let s = Json.to_string (Json.Obj [ ("x", Json.Num Float.nan) ]) in
  match Json.parse s with
  | v -> Alcotest.(check bool) "nan serialized as null" true
           (Json.member "x" v = Some Json.Null)
  | exception Json.Parse_error _ ->
    Alcotest.failf "writer emitted unparseable text: %s" s

(* ----- trace recording + conversion ------------------------------------- *)

(* Record a real two-domain-free trace through the Jsonl sink. *)
let record_trace () =
  let path = Filename.temp_file "fbb_trace" ".jsonl" in
  let c = Obs.Counter.make "t.trace.work" in
  let writer = Obs.Jsonl.create path in
  Obs.Sink.with_installed (Obs.Jsonl.sink writer) (fun () ->
      Obs.Span.with_ ~name:"root" (fun () ->
          Obs.Span.with_ ~name:"child" (fun () -> Obs.Counter.add c 5);
          Obs.Span.with_ ~name:"child" (fun () -> Obs.Counter.add c 2)));
  Obs.Jsonl.close writer;
  path

let test_trace_load () =
  let path = record_trace () in
  let events = Obs.Trace_export.load path in
  Sys.remove path;
  let begins =
    List.length
      (List.filter
         (function Obs.Event.Span_begin _ -> true | _ -> false)
         events)
  in
  let ends =
    List.length
      (List.filter
         (function Obs.Event.Span_end _ -> true | _ -> false)
         events)
  in
  Alcotest.(check (pair int int)) "three spans round-trip" (3, 3)
    (begins, ends);
  Alcotest.(check bool) "counter deltas round-trip" true
    (List.exists
       (function
         | Obs.Event.Counter_add { name = "t.trace.work"; delta; _ } ->
           delta = 5 || delta = 2
         | _ -> false)
       events)

let test_parse_line_errors () =
  let is_err = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "garbage" true
    (is_err (Obs.Trace_export.parse_line "not json"));
  Alcotest.(check bool) "missing ph" true
    (is_err (Obs.Trace_export.parse_line "{\"name\":\"x\"}"));
  Alcotest.(check bool) "unknown phase" true
    (is_err (Obs.Trace_export.parse_line "{\"ph\":\"Z\",\"name\":\"x\"}"));
  (* Old traces have no dom/depth: still parse, defaulting to 0. *)
  match
    Obs.Trace_export.parse_line "{\"ph\":\"B\",\"name\":\"x\",\"ts\":1.5}"
  with
  | Ok (Obs.Event.Span_begin { name = "x"; depth = 0; dom = 0; trace = ""; ts })
    ->
    Alcotest.(check (float 0.0)) "ts kept" 1.5 ts
  | _ -> Alcotest.fail "pre-dom trace line did not parse"

let test_chrome_output_is_valid_json () =
  let path = record_trace () in
  let events = Obs.Trace_export.load path in
  Sys.remove path;
  let doc = Json.to_string (Obs.Trace_export.to_chrome events) in
  (* The acceptance bar: the converted document must be valid JSON in
     trace_event shape - an object with a traceEvents array whose every
     element carries name/ph/ts/pid/tid. *)
  let v =
    match Json.parse_opt doc with
    | Some v -> v
    | None -> Alcotest.failf "chrome output is not valid JSON: %s" doc
  in
  match Json.member_arr "traceEvents" v with
  | None -> Alcotest.fail "no traceEvents array"
  | Some items ->
    Alcotest.(check bool) "at least the six span events" true
      (List.length items >= 6);
    List.iter
      (fun item ->
        let has k = Json.member k item <> None in
        Alcotest.(check bool) "name/ph/ts/pid/tid present" true
          (has "name" && has "ph" && has "ts" && has "pid" && has "tid"))
      items

let test_chrome_integrates_counters () =
  let events =
    [
      Obs.Event.Counter_add { name = "c"; delta = 3; ts = 0.0 };
      Obs.Event.Counter_add { name = "c"; delta = 4; ts = 1.0 };
    ]
  in
  let v = Obs.Trace_export.to_chrome events in
  let values =
    match Json.member_arr "traceEvents" v with
    | Some items ->
      List.filter_map
        (fun item ->
          Option.bind (Json.member "args" item) (Json.member_num "value"))
        items
    | None -> []
  in
  Alcotest.(check bool) "deltas integrated to running totals" true
    (values = [ 3.0; 7.0 ])

let span_events =
  (* outer [0,1.0] containing child [0.1,0.5]: self times 0.6 / 0.4. *)
  [
    Obs.Event.Span_begin
      { name = "outer"; ts = 0.0; depth = 0; dom = 0; trace = "" };
    Obs.Event.Span_begin
      { name = "child"; ts = 0.1; depth = 1; dom = 0; trace = "" };
    Obs.Event.Span_end
      { name = "child"; ts = 0.5; dur_s = 0.4; depth = 1; dom = 0; trace = "" };
    Obs.Event.Span_end
      { name = "outer"; ts = 1.0; dur_s = 1.0; depth = 0; dom = 0; trace = "" };
  ]

let test_folded_self_times () =
  let folded = Obs.Trace_export.to_folded span_events in
  Alcotest.(check int) "two stacks" 2 (List.length folded);
  let self stack =
    match List.assoc_opt stack folded with
    | Some s -> s
    | None -> Alcotest.failf "missing stack %s" stack
  in
  Alcotest.(check (float 1e-9)) "parent self excludes child" 0.6
    (self "outer");
  Alcotest.(check (float 1e-9)) "child self" 0.4 (self "outer;child");
  Alcotest.(check string) "rendered as integer microseconds"
    "outer 600000\nouter;child 400000\n"
    (Obs.Trace_export.folded_to_string folded)

let test_folded_drops_unclosed () =
  let truncated =
    [
      Obs.Event.Span_begin
        { name = "outer"; ts = 0.0; depth = 0; dom = 0; trace = "" };
      Obs.Event.Span_begin
        { name = "child"; ts = 0.1; depth = 1; dom = 0; trace = "" };
      Obs.Event.Span_end
        {
          name = "child"; ts = 0.5; dur_s = 0.4; depth = 1; dom = 0;
          trace = "";
        };
      (* outer never ends: trace cut short *)
    ]
  in
  Alcotest.(check bool) "only the closed span appears" true
    (Obs.Trace_export.to_folded truncated = [ ("outer;child", 0.4) ])

let test_stats_balance () =
  let ok = Obs.Trace_export.stats span_events in
  Alcotest.(check bool) "balanced trace reported balanced" true
    (contains ~needle:"span stream balanced" ok);
  let bad =
    Obs.Trace_export.stats
      [
        Obs.Event.Span_begin
          { name = "x"; ts = 0.0; depth = 0; dom = 0; trace = "" };
      ]
  in
  Alcotest.(check bool) "truncated trace reported unbalanced" true
    (contains ~needle:"never closed" bad)

let test_trace_truncated_final_line_salvaged () =
  let path = record_trace () in
  let intact = Obs.Trace_export.load path in
  (* Simulate a writer killed mid-append: a half-written final line. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"ph\":\"C\",\"na";
  close_out oc;
  let told = ref None in
  let events =
    Obs.Trace_export.load ~on_truncated:(fun m -> told := Some m) path
  in
  Sys.remove path;
  Alcotest.(check bool) "intact prefix salvaged" true (events = intact);
  match !told with
  | Some m ->
    Alcotest.(check bool) "loss reported" true (contains ~needle:"truncated" m)
  | None -> Alcotest.fail "on_truncated was not called"

let test_trace_midfile_corruption_still_fails () =
  (* A malformed line with valid lines after it is real corruption, not
     a truncated tail - the lenient path must not forgive it. *)
  let path = Filename.temp_file "fbb_trace" ".jsonl" in
  let oc = open_out path in
  output_string oc "{\"ph\":\"B\",\"name\":\"x\",\"ts\":0}\n";
  output_string oc "garbage\n";
  output_string oc "{\"ph\":\"E\",\"name\":\"x\",\"ts\":1,\"dur_s\":1}\n";
  close_out oc;
  (match Obs.Trace_export.load path with
  | _ -> Alcotest.fail "mid-file corruption must fail"
  | exception Failure m ->
    Alcotest.(check bool) "error names the line" true (contains ~needle:":2:" m));
  Sys.remove path

(* ----- trace ids -------------------------------------------------------- *)

let test_trace_id_roundtrip () =
  (* A span recorded inside a Context carries its trace id through the
     JSONL writer and back; untraced events keep the exact pre-trace
     wire format (no "trace" key at all). *)
  let path = Filename.temp_file "fbb_trace" ".jsonl" in
  let writer = Obs.Jsonl.create path in
  let ctx = Obs.Context.make ~trace:"t-test-1" () in
  Obs.Sink.with_installed (Obs.Jsonl.sink writer) (fun () ->
      Obs.Context.with_ ctx (fun () ->
          Obs.Span.with_ ~name:"traced" (fun () -> ()));
      Obs.Span.with_ ~name:"untraced" (fun () -> ()));
  Obs.Jsonl.close writer;
  let events = Obs.Trace_export.load path in
  let raw = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  let trace_of name =
    List.find_map
      (function
        | Obs.Event.Span_begin { name = n; trace; _ } when n = name ->
          Some trace
        | _ -> None)
      events
  in
  Alcotest.(check (option string)) "traced span kept its id"
    (Some "t-test-1") (trace_of "traced");
  Alcotest.(check (option string)) "untraced span has empty id" (Some "")
    (trace_of "untraced");
  List.iter
    (fun line ->
      if contains ~needle:"untraced" line then
        Alcotest.(check bool) "untraced line has no trace key" false
          (contains ~needle:"\"trace\"" line))
    (String.split_on_char '\n' raw)

let test_filter_trace () =
  let span ?(trace = "") name =
    Obs.Event.Span_begin { name; ts = 0.0; depth = 0; dom = 0; trace }
  in
  let events =
    [
      span ~trace:"a" "x";
      span ~trace:"b" "y";
      span "z";
      Obs.Event.Counter_add { name = "c"; delta = 1; ts = 0.0 };
      Obs.Event.Span_end
        { name = "x"; ts = 1.0; dur_s = 1.0; depth = 0; dom = 0; trace = "a" };
    ]
  in
  let names evs =
    List.filter_map
      (function
        | Obs.Event.Span_begin { name; _ } -> Some ("B" ^ name)
        | Obs.Event.Span_end { name; _ } -> Some ("E" ^ name)
        | _ -> Some "other")
      evs
  in
  Alcotest.(check (list string)) "only trace a survives" [ "Bx"; "Ex" ]
    (names (Obs.Trace_export.filter_trace ~trace:"a" events));
  Alcotest.(check (list string)) "unknown trace filters everything" []
    (names (Obs.Trace_export.filter_trace ~trace:"nope" events))

(* ----- bench records ----------------------------------------------------- *)

let gc0 =
  {
    Obs.Gcprof.minor_words = 0.0;
    major_words = 0.0;
    minor_collections = 0;
    major_collections = 0;
    top_heap_words = 0;
  }

let bench ?(gc = gc0) ?(gauges = []) experiments counters =
  {
    Obs.Benchfile.jobs = 2;
    experiments;
    counters;
    gauges;
    spans = [];
    gc;
    pool = [];
  }

let test_benchfile_roundtrip () =
  let t =
    bench
      ~gc:
        {
          Obs.Gcprof.minor_words = 7.5e7;
          major_words = 5.1e6;
          minor_collections = 283;
          major_collections = 29;
          top_heap_words = 1_284_685;
        }
      [ ("yield", 0.61); ("table1", 12.5) ]
      [ ("mc.samples", 30) ]
  in
  match Obs.Benchfile.of_json (Obs.Benchfile.to_json t) with
  | Ok t' -> Alcotest.(check bool) "record round-trips" true (t = t')
  | Error m -> Alcotest.failf "round-trip failed: %s" m

let compare_codes ~old_exp ~new_exp =
  let c =
    Obs.Benchfile.compare ~max_regress_pct:25.0 (bench old_exp [])
      (bench new_exp [])
  in
  (* The exit-code contract of `fbbopt bench-compare`: 2 on missing
     keys, 1 on regression, 0 otherwise. *)
  if c.Obs.Benchfile.missing <> [] then 2
  else if Obs.Benchfile.regressed c then 1
  else 0

let test_compare_ok_and_improve () =
  Alcotest.(check int) "identical -> 0" 0
    (compare_codes ~old_exp:[ ("yield", 1.0) ] ~new_exp:[ ("yield", 1.0) ]);
  Alcotest.(check int) "improvement -> 0" 0
    (compare_codes ~old_exp:[ ("yield", 1.0) ] ~new_exp:[ ("yield", 0.5) ]);
  Alcotest.(check int) "within threshold -> 0" 0
    (compare_codes ~old_exp:[ ("yield", 1.0) ] ~new_exp:[ ("yield", 1.2) ])

let test_compare_regression () =
  Alcotest.(check int) "2x slower -> 1" 1
    (compare_codes ~old_exp:[ ("yield", 1.0) ] ~new_exp:[ ("yield", 2.0) ]);
  (* Relative blow-up below the absolute floor is noise, not a
     regression: 1ms -> 2ms is +100% but only +1ms. *)
  Alcotest.(check int) "sub-floor jitter -> 0" 0
    (compare_codes ~old_exp:[ ("yield", 0.001) ] ~new_exp:[ ("yield", 0.002) ])

let test_compare_missing_key () =
  Alcotest.(check int) "missing experiment -> 2" 2
    (compare_codes
       ~old_exp:[ ("yield", 1.0); ("gone", 2.0) ]
       ~new_exp:[ ("yield", 1.0) ]);
  (* Extra experiments in the fresh record are fine. *)
  Alcotest.(check int) "extra experiment -> 0" 0
    (compare_codes ~old_exp:[ ("yield", 1.0) ]
       ~new_exp:[ ("yield", 1.0); ("new", 9.0) ])

let test_compare_gc_gate () =
  let gc words =
    { gc0 with Obs.Gcprof.minor_words = words; major_words = 1e6 }
  in
  let cmp old_w new_w =
    Obs.Benchfile.compare ~max_regress_pct:25.0
      (bench ~gc:(gc old_w) [] [])
      (bench ~gc:(gc new_w) [] [])
  in
  Alcotest.(check bool) "2x allocation regresses" true
    (Obs.Benchfile.regressed (cmp 1e8 2e8));
  Alcotest.(check bool) "equal allocation passes" false
    (Obs.Benchfile.regressed (cmp 1e8 1e8));
  (* fbb-bench-1 records carry zero GC totals; the gate must skip, not
     read them as infinite regressions. *)
  Alcotest.(check bool) "zero-gc baseline skips the gate" false
    (Obs.Benchfile.regressed
       (Obs.Benchfile.compare ~max_regress_pct:25.0 (bench [] [])
          (bench ~gc:(gc 1e8) [] [])))

let test_benchfile_gauges () =
  (* fbb-bench-2 records carry telemetry self-cost gauges; they
     round-trip, old records without them load with [], and compare
     reports them informationally — never as a gated regression. *)
  let t =
    bench
      ~gauges:[ ("obs.telemetry.overhead_pct", 0.8) ]
      [ ("yield", 1.0) ] []
  in
  (match Obs.Benchfile.of_json (Obs.Benchfile.to_json t) with
  | Ok t' -> Alcotest.(check bool) "gauges round-trip" true (t = t')
  | Error m -> Alcotest.failf "round-trip failed: %s" m);
  let t_nog = bench [ ("yield", 1.0) ] [] in
  (match Obs.Benchfile.of_json (Obs.Benchfile.to_json t_nog) with
  | Ok t' -> Alcotest.(check bool) "no-gauge record loads" true (t' = t_nog)
  | Error m -> Alcotest.failf "no-gauge load failed: %s" m);
  let worse =
    bench
      ~gauges:[ ("obs.telemetry.overhead_pct", 1.9) ]
      [ ("yield", 1.0) ] []
  in
  let c = Obs.Benchfile.compare ~max_regress_pct:25.0 t worse in
  Alcotest.(check bool) "gauge blow-up is informational, not a regression"
    false (Obs.Benchfile.regressed c);
  Alcotest.(check bool) "gauge verdict is reported" true
    (List.exists
       (fun v -> v.Obs.Benchfile.key = "gauge:obs.telemetry.overhead_pct")
       c.Obs.Benchfile.verdicts)

let test_benchfile_load_errors () =
  let is_err = function Error _ -> true | Ok _ -> false in
  let tmp content =
    let path = Filename.temp_file "fbb_bench" ".json" in
    let oc = open_out path in
    output_string oc content;
    close_out oc;
    let r = Obs.Benchfile.load path in
    Sys.remove path;
    r
  in
  Alcotest.(check bool) "parse error -> Error" true (is_err (tmp "{oops"));
  Alcotest.(check bool) "wrong schema -> Error" true
    (is_err (tmp "{\"schema\":\"nope\"}"));
  Alcotest.(check bool) "missing file -> Error" true
    (is_err (Obs.Benchfile.load "/nonexistent/bench.json"))

let suite =
  [
    ("json round-trip", `Quick, test_json_roundtrip);
    ("json rejects garbage", `Quick, test_json_rejects_garbage);
    ("json non-finite becomes null", `Quick, test_json_nonfinite_becomes_null);
    ("trace load round-trip", `Quick, test_trace_load);
    ("trace parse_line errors", `Quick, test_parse_line_errors);
    ("chrome output is valid trace_event JSON", `Quick,
     test_chrome_output_is_valid_json);
    ("chrome integrates counter deltas", `Quick,
     test_chrome_integrates_counters);
    ("folded self times", `Quick, test_folded_self_times);
    ("folded drops unclosed spans", `Quick, test_folded_drops_unclosed);
    ("stats balance check", `Quick, test_stats_balance);
    ("truncated final line salvaged", `Quick,
     test_trace_truncated_final_line_salvaged);
    ("mid-file corruption still fails", `Quick,
     test_trace_midfile_corruption_still_fails);
    ("trace id round-trip", `Quick, test_trace_id_roundtrip);
    ("filter by trace id", `Quick, test_filter_trace);
    ("benchfile round-trip", `Quick, test_benchfile_roundtrip);
    ("benchfile gauges informational", `Quick, test_benchfile_gauges);
    ("bench-compare ok/improve", `Quick, test_compare_ok_and_improve);
    ("bench-compare regression", `Quick, test_compare_regression);
    ("bench-compare missing key", `Quick, test_compare_missing_key);
    ("bench-compare gc gate", `Quick, test_compare_gc_gate);
    ("benchfile load errors", `Quick, test_benchfile_load_errors);
  ]
