(* The fbbd protocol/load test battery: QCheck codec round-trips,
   adversarial frames (junk, truncated, oversized — always typed
   errors, never escaping exceptions), live-server protocol round-trips,
   admission control and load shedding, past-deadline anytime
   degradation, and the scripted replay helper the determinism suite
   runs at jobs 1 vs 4. *)

module P = Fbb_serve.Protocol
module Server = Fbb_serve.Server
module Client = Fbb_serve.Client

let at_jobs n f =
  let prev = Fbb_par.Pool.jobs () in
  Fbb_par.Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Fbb_par.Pool.set_jobs prev) f

let ok = function
  | Ok v -> v
  | Error m -> Alcotest.failf "unexpected error: %s" m

let with_server ?config f =
  let config =
    match config with
    | Some c -> c
    | None -> { Server.default_config with port = 0 }
  in
  match Server.start ~config () with
  | Error m -> Alcotest.failf "server start: %s" m
  | Ok srv -> Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let with_client srv f =
  let c = ok (Client.connect ~port:(Server.port srv) ()) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

(* Small generated workloads keep every live-server test fast; two
   distinct keys exercise the batcher's same-netlist grouping. *)
let wl_a = P.Generated { seed = 5; gates = 80; rows = 3 }
let wl_b = P.Generated { seed = 6; gates = 64; rows = 3 }

let solve ?(beta = 0.05) ?(clusters = 3) ?deadline_ms ?work ?client id
    workload =
  P.Solve
    {
      id;
      client;
      workload;
      beta;
      max_clusters = clusters;
      deadline_ms;
      work_budget = work;
    }

(* ----- QCheck codec round-trips ----------------------------------------- *)

(* JSON has no inf/nan, so round-trip floats are finite by
   construction: dyadic rationals n/16 survive both directions bit
   for bit. *)
let gen_finite =
  QCheck.Gen.map
    (fun n -> float_of_int n /. 16.0)
    (QCheck.Gen.int_range (-1_000_000_000) 1_000_000_000)

let gen_id =
  QCheck.Gen.oneof
    [
      QCheck.Gen.map (Printf.sprintf "req-%d") QCheck.Gen.nat;
      QCheck.Gen.oneofl [ ""; "a b"; "quote\"back\\slash"; "tab\there" ];
    ]

let gen_workload =
  QCheck.Gen.oneof
    [
      QCheck.Gen.map (Printf.sprintf "c%d") QCheck.Gen.nat
      |> QCheck.Gen.map (fun n -> P.Benchmark n);
      QCheck.Gen.map3
        (fun seed gates rows -> P.Generated { seed; gates; rows })
        QCheck.Gen.nat QCheck.Gen.nat QCheck.Gen.nat;
    ]

let gen_request =
  let open QCheck.Gen in
  let gen_solve =
    gen_id >>= fun id ->
    option gen_id >>= fun client ->
    gen_workload >>= fun workload ->
    gen_finite >>= fun beta ->
    nat >>= fun max_clusters ->
    option gen_finite >>= fun deadline_ms ->
    option nat >>= fun work_budget ->
    return
      (P.Solve
         { id; client; workload; beta; max_clusters; deadline_ms; work_budget })
  in
  oneof
    [
      gen_solve;
      map (fun id -> P.Ping { id }) gen_id;
      map (fun id -> P.Stats { id }) gen_id;
    ]

let gen_attempt =
  let open QCheck.Gen in
  oneofl [ "ilp"; "bb"; "heuristic"; "single_bb" ] >>= fun stage ->
  oneofl [ "accepted"; "rejected"; "exhausted"; "crashed: boom" ]
  >>= fun status ->
  option gen_finite >>= fun leakage_nw ->
  nat >>= fun work -> return { P.stage; status; leakage_nw; work }

let gen_reject =
  let open QCheck.Gen in
  oneof
    [
      map (fun retry_after_ms -> P.Overload { retry_after_ms }) gen_finite;
      return P.Shutting_down;
      map (fun m -> P.Bad_request m) gen_id;
      map (fun m -> P.Faulted m) gen_id;
    ]

let gen_response =
  let open QCheck.Gen in
  let gen_solved =
    gen_id >>= fun id ->
    oneofl [ "ilp"; "bb"; "heuristic"; "single_bb" ] >>= fun stage ->
    array_size (0 -- 8) (0 -- 10) >>= fun levels ->
    gen_finite >>= fun leakage_nw ->
    option gen_finite >>= fun gap_pct ->
    bool >>= fun optimal ->
    bool >>= fun exhausted ->
    list_size (0 -- 3) gen_attempt >>= fun attempts ->
    gen_finite >>= fun elapsed_ms ->
    return
      (P.Solved
         {
           id;
           stage;
           levels;
           leakage_nw;
           gap_pct;
           optimal;
           exhausted;
           attempts;
           elapsed_ms;
         })
  in
  oneof
    [
      gen_solved;
      map2
        (fun id elapsed_ms -> P.Infeasible { id; elapsed_ms })
        gen_id gen_finite;
      map2 (fun id reject -> P.Rejected { id; reject }) gen_id gen_reject;
      map (fun id -> P.Pong { id }) gen_id;
      (gen_id >>= fun id ->
       nat >>= fun queue_depth ->
       nat >>= fun in_flight ->
       nat >>= fun served ->
       nat >>= fun shed ->
       bool >>= fun draining ->
       option gen_finite >>= fun queue_p50_ms ->
       option gen_finite >>= fun queue_p90_ms ->
       option gen_finite >>= fun queue_p99_ms ->
       return
         (P.Stats_reply
            {
              id;
              stats =
                {
                  queue_depth;
                  in_flight;
                  served;
                  shed;
                  draining;
                  queue_p50_ms;
                  queue_p90_ms;
                  queue_p99_ms;
                };
            }));
    ]

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"request round-trip is exact" ~count:300
      (make ~print:P.encode_request gen_request)
      (fun r -> P.decode_request (P.encode_request r) = Ok r);
    Test.make ~name:"response round-trip is exact" ~count:300
      (make ~print:P.encode_response gen_response)
      (fun r -> P.decode_response (P.encode_response r) = Ok r);
    Test.make ~name:"junk never escapes as an exception" ~count:500
      (string_of_size (Gen.int_range 0 200))
      (fun s ->
        (match P.decode_request s with Ok _ | Error _ -> true)
        && match P.decode_response s with Ok _ | Error _ -> true);
  ]

(* ----- adversarial parses ----------------------------------------------- *)

let test_adversarial_parses () =
  let cases =
    [
      "";
      "{";
      "[";
      "null";
      "42";
      "\"solve\"";
      "{\"op\":}";
      "{\"id\":\"x\"}";
      "{\"op\":\"zap\",\"id\":\"x\"}";
      "{\"op\":\"solve\",\"id\":\"x\"}";
      "{\"op\":\"solve\",\"id\":\"x\",\"design\":7,\"beta\":0.05,\"clusters\":2}";
      "{\"op\":\"solve\",\"id\":\"x\",\"design\":\"c17\",\"beta\":\"hot\",\
       \"clusters\":2}";
      "{\"op\":\"solve\",\"id\":\"x\",\"design\":\"c17\",\"beta\":0.05,\
       \"clusters\":2.5}";
      "{\"op\":\"solve\",\"id\":\"x\",\"design\":\"c17\",\"beta\":0.05,\
       \"clusters\":1e30}";
      "{\"op\":\"solve\",\"id\":\"x\",\"design\":\"c17\",\"gen\":{\"seed\":1,\
       \"gates\":9,\"rows\":2},\"beta\":0.05,\"clusters\":2}";
      "{\"op\":\"solve\",\"id\":\"x\",\"gen\":{\"seed\":1},\"beta\":0.05,\
       \"clusters\":2}";
      "{\"op\":\"solve\",\"id\":\"x\",\"client\":7,\"design\":\"c17\",\
       \"beta\":0.05,\"clusters\":2}";
      "{\"op\":\"solve\",\"id\":\"x\",\"client\":null,\"design\":\"c17\",\
       \"beta\":0.05,\"clusters\":2}";
      String.make 4096 '{';
    ]
  in
  List.iter
    (fun s ->
      match P.decode_request s with
      | Ok r ->
        Alcotest.failf "junk decoded as a request: %s" (P.encode_request r)
      | Error _ -> ()
      | exception e ->
        Alcotest.failf "decode raised %s on %S" (Printexc.to_string e) s)
    cases;
  (* Response-side statuses are a distinct keyspace. *)
  (match P.decode_response "{\"id\":\"x\",\"status\":\"victory\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown status decoded");
  match P.decode_response "{\"id\":\"x\",\"status\":\"rejected\",\"reason\":\"??\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown reject reason decoded"

(* ----- bounded frame reading -------------------------------------------- *)

let with_pipe f =
  let rfd, wfd = Unix.pipe () in
  let closed = ref false in
  let close_w () =
    if not !closed then begin
      closed := true;
      Unix.close wfd
    end
  in
  Fun.protect
    ~finally:(fun () ->
      close_w ();
      Unix.close rfd)
    (fun () -> f rfd wfd close_w)

let write_all fd s =
  ignore (Unix.write_substring fd s 0 (String.length s))

let test_frame_reading () =
  (* Split frames reassemble; a clean close is Closed. *)
  with_pipe (fun rfd wfd close_w ->
      let r = P.reader rfd in
      write_all wfd "ab";
      write_all wfd "cd\nef\n";
      Alcotest.(check bool) "split frame reassembled" true
        (P.read_frame r = Ok "abcd");
      Alcotest.(check bool) "second frame" true (P.read_frame r = Ok "ef");
      close_w ();
      Alcotest.(check bool) "clean close" true (P.read_frame r = Error P.Closed));
  (* EOF mid-line is Truncated, and sticks. *)
  with_pipe (fun rfd wfd close_w ->
      let r = P.reader rfd in
      write_all wfd "dangling";
      close_w ();
      Alcotest.(check bool) "truncated" true (P.read_frame r = Error P.Truncated);
      Alcotest.(check bool) "truncated sticks" true
        (P.read_frame r = Error P.Truncated));
  (* An over-long line is Oversized whether or not the newline ever
     arrives. *)
  with_pipe (fun rfd wfd _ ->
      let r = P.reader ~max_frame:16 rfd in
      write_all wfd (String.make 64 'a');
      Alcotest.(check bool) "oversized without newline" true
        (P.read_frame r = Error (P.Oversized 16)));
  with_pipe (fun rfd wfd _ ->
      let r = P.reader ~max_frame:16 rfd in
      write_all wfd (String.make 32 'a' ^ "\nok\n");
      Alcotest.(check bool) "oversized with newline" true
        (P.read_frame r = Error (P.Oversized 16)))

(* ----- live server: protocol round-trip --------------------------------- *)

let test_server_roundtrip () =
  with_server @@ fun srv ->
  with_client srv @@ fun c ->
  (match ok (Client.rpc c (P.Ping { id = "p1" })) with
  | P.Pong { id } -> Alcotest.(check string) "pong id" "p1" id
  | r -> Alcotest.failf "expected pong, got %s" (P.encode_response r));
  (match ok (Client.rpc c (solve "s1" wl_a ~work:5_000)) with
  | P.Solved { id; levels; attempts; _ } ->
    Alcotest.(check string) "solved id" "s1" id;
    Alcotest.(check bool) "levels cover the rows" true
      (Array.length levels > 0);
    Alcotest.(check bool) "attempt trace present" true (attempts <> [])
  | r -> Alcotest.failf "expected solved, got %s" (P.encode_response r));
  match ok (Client.rpc c (P.Stats { id = "st" })) with
  | P.Stats_reply { stats; _ } ->
    Alcotest.(check int) "one solve served" 1 stats.P.served;
    Alcotest.(check bool) "not draining" false stats.P.draining
  | r -> Alcotest.failf "expected stats, got %s" (P.encode_response r)

let test_server_junk_degrades () =
  with_server @@ fun srv ->
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close sock with _ -> ())
  @@ fun () ->
  Unix.connect sock
    (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port srv));
  let r = P.reader sock in
  ok (P.write_frame sock "this is not json");
  (match P.read_frame r with
  | Ok line -> (
    match P.decode_response line with
    | Ok (P.Rejected { reject = P.Bad_request _; _ }) -> ()
    | Ok resp ->
      Alcotest.failf "expected bad_request, got %s" (P.encode_response resp)
    | Error m -> Alcotest.failf "undecodable response: %s" m)
  | Error e -> Alcotest.failf "read: %s" (P.read_error_to_string e));
  (* The connection survives junk: a well-formed ping still answers. *)
  ok (P.write_frame sock (P.encode_request (P.Ping { id = "after" })));
  (match P.read_frame r with
  | Ok line ->
    Alcotest.(check bool) "pong after junk" true
      (P.decode_response line = Ok (P.Pong { id = "after" }))
  | Error e -> Alcotest.failf "read: %s" (P.read_error_to_string e))

let test_server_oversized_closes () =
  let config =
    { Server.default_config with port = 0; max_frame = 1024 }
  in
  with_server ~config @@ fun srv ->
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close sock with _ -> ())
  @@ fun () ->
  Unix.connect sock
    (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port srv));
  let r = P.reader sock in
  ok (P.write_frame sock (String.make 2048 'x'));
  (match P.read_frame r with
  | Ok line -> (
    match P.decode_response line with
    | Ok (P.Rejected { reject = P.Bad_request _; _ }) -> ()
    | Ok resp ->
      Alcotest.failf "expected bad_request, got %s" (P.encode_response resp)
    | Error m -> Alcotest.failf "undecodable response: %s" m)
  | Error e -> Alcotest.failf "read: %s" (P.read_error_to_string e));
  (* Line framing cannot resynchronize after an oversized frame, so the
     server closes: the next read is EOF, never a hang or a crash. *)
  match P.read_frame r with
  | Error (P.Closed | P.Truncated) -> ()
  | Ok line -> Alcotest.failf "expected close, got frame %S" line
  | Error e -> Alcotest.failf "expected close, got %s" (P.read_error_to_string e)

let test_server_truncated_answered () =
  with_server @@ fun srv ->
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close sock with _ -> ())
  @@ fun () ->
  Unix.connect sock
    (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port srv));
  (* Half a frame, then EOF on the write side: the server answers the
     truncation with a typed reject before hanging up. *)
  write_all sock "{\"op\":\"ping\",\"id\":";
  Unix.shutdown sock Unix.SHUTDOWN_SEND;
  let r = P.reader sock in
  match P.read_frame r with
  | Ok line -> (
    match P.decode_response line with
    | Ok (P.Rejected { reject = P.Bad_request _; _ }) -> ()
    | Ok resp ->
      Alcotest.failf "expected bad_request, got %s" (P.encode_response resp)
    | Error m -> Alcotest.failf "undecodable response: %s" m)
  | Error e -> Alcotest.failf "read: %s" (P.read_error_to_string e)

(* ----- admission control ------------------------------------------------ *)

let test_capacity_zero_sheds_everything () =
  let config = { Server.default_config with port = 0; queue_capacity = 0 } in
  with_server ~config @@ fun srv ->
  with_client srv @@ fun c ->
  (match ok (Client.rpc c (solve "z1" wl_a ~work:100)) with
  | P.Rejected { id; reject = P.Overload { retry_after_ms } } ->
    Alcotest.(check string) "shed id echoed" "z1" id;
    Alcotest.(check bool) "retry-after positive" true (retry_after_ms > 0.0)
  | r -> Alcotest.failf "expected overload, got %s" (P.encode_response r));
  (* Ping and stats bypass admission entirely. *)
  (match ok (Client.rpc c (P.Ping { id = "p" })) with
  | P.Pong _ -> ()
  | r -> Alcotest.failf "expected pong, got %s" (P.encode_response r));
  match ok (Client.rpc c (P.Stats { id = "st" })) with
  | P.Stats_reply { stats; _ } ->
    Alcotest.(check int) "one shed counted" 1 stats.P.shed
  | r -> Alcotest.failf "expected stats, got %s" (P.encode_response r)

let test_flood_sheds_and_recovers () =
  (* Queue of 2 + one in-flight batch against a pipelined burst of 12:
     some requests must shed with a typed overload, every request gets
     exactly one response, and the server serves normally afterwards. *)
  let config =
    {
      Server.default_config with
      port = 0;
      queue_capacity = 2;
      batch_max = 1;
    }
  in
  with_server ~config @@ fun srv ->
  with_client srv @@ fun c ->
  let n = 12 in
  for i = 1 to n do
    ok
      (Client.send c (solve (Printf.sprintf "f%d" i) wl_a ~work:20_000))
  done;
  let solved = ref 0 and overload = ref 0 and other = ref 0 in
  for _ = 1 to n do
    match ok (Client.recv c) with
    | P.Solved _ -> incr solved
    | P.Rejected { reject = P.Overload { retry_after_ms }; _ } ->
      Alcotest.(check bool) "retry-after positive" true (retry_after_ms > 0.0);
      incr overload
    | r -> Alcotest.failf "unexpected response %s" (P.encode_response r)
  done;
  Alcotest.(check int) "every request answered" n (!solved + !overload + !other);
  Alcotest.(check bool) "burst overflowed the queue" true (!overload > 0);
  (* At least the queue's capacity worth of requests was admitted;
     how many more depends on how fast the solver drains. *)
  Alcotest.(check bool) "queue depth still served" true (!solved >= 2);
  (* Recovered: a fresh request sails through. *)
  match ok (Client.rpc c (solve "after" wl_a ~work:5_000)) with
  | P.Solved _ -> ()
  | r -> Alcotest.failf "expected solved after flood, got %s"
           (P.encode_response r)

let test_drain_sheds_with_shutting_down () =
  with_server @@ fun srv ->
  with_client srv @@ fun c ->
  (match ok (Client.rpc c (solve "pre" wl_a ~work:2_000)) with
  | P.Solved _ -> ()
  | r -> Alcotest.failf "expected solved, got %s" (P.encode_response r));
  Server.drain srv;
  (match ok (Client.rpc c (solve "post" wl_a ~work:2_000)) with
  | P.Rejected { id = "post"; reject = P.Shutting_down } -> ()
  | r -> Alcotest.failf "expected shutting_down, got %s" (P.encode_response r));
  (* Ping/stats still answer on a draining server. *)
  match ok (Client.rpc c (P.Stats { id = "st" })) with
  | P.Stats_reply { stats; _ } ->
    Alcotest.(check bool) "draining reported" true stats.P.draining
  | r -> Alcotest.failf "expected stats, got %s" (P.encode_response r)

let test_bad_parameters_rejected () =
  with_server @@ fun srv ->
  with_client srv @@ fun c ->
  let expect_bad id req =
    match ok (Client.rpc c req) with
    | P.Rejected { id = rid; reject = P.Bad_request _ } ->
      Alcotest.(check string) "id echoed" id rid
    | r -> Alcotest.failf "expected bad_request, got %s" (P.encode_response r)
  in
  expect_bad "b1" (solve "b1" wl_a ~beta:0.0 ~work:100);
  expect_bad "b2" (solve "b2" wl_a ~clusters:0 ~work:100);
  expect_bad "b3" (solve "b3" (P.Benchmark "no-such-design") ~work:100);
  expect_bad "b4"
    (solve "b4" (P.Generated { seed = 1; gates = 2; rows = 2 }) ~work:100);
  expect_bad "b5" (solve "b5" wl_a ~deadline_ms:(-5.0) ~work:100)

(* ----- connection hygiene ----------------------------------------------- *)

let test_idle_timeout_read_error () =
  (* A reader on a socket with a receive deadline surfaces SO_RCVTIMEO
     expiry as the typed Idle_timeout — and the reader stays usable:
     buffered partial input completes once the peer resumes. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.setsockopt_float a Unix.SO_RCVTIMEO 0.05;
  let r = P.reader a in
  Alcotest.(check bool) "silence is idle_timeout" true
    (P.read_frame r = Error P.Idle_timeout);
  write_all b "partial";
  Alcotest.(check bool) "half a frame is still idle_timeout" true
    (P.read_frame r = Error P.Idle_timeout);
  write_all b " frame\n";
  Alcotest.(check bool) "resumed peer completes the buffered frame" true
    (P.read_frame r = Ok "partial frame")

let test_idle_eviction () =
  (* A slow-loris peer — half a frame, then silence — is evicted with a
     typed reject and a close; a prompt peer on the same server is
     untouched. *)
  let config =
    { Server.default_config with port = 0; idle_timeout_s = Some 0.2 }
  in
  with_server ~config @@ fun srv ->
  with_client srv (fun c ->
      match ok (Client.rpc c (P.Ping { id = "fast" })) with
      | P.Pong _ -> ()
      | r -> Alcotest.failf "expected pong, got %s" (P.encode_response r));
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close sock with _ -> ())
  @@ fun () ->
  Unix.connect sock
    (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port srv));
  write_all sock "{\"op\":\"ping\",\"id\":";
  let r = P.reader sock in
  (match P.read_frame r with
  | Ok line -> (
    match P.decode_response line with
    | Ok (P.Rejected { reject = P.Bad_request reason; _ }) ->
      Alcotest.(check bool) "eviction names the idle timeout" true
        (String.length reason >= 4 && String.sub reason 0 4 = "idle")
    | Ok resp ->
      Alcotest.failf "expected bad_request, got %s" (P.encode_response resp)
    | Error m -> Alcotest.failf "undecodable response: %s" m)
  | Error e -> Alcotest.failf "read: %s" (P.read_error_to_string e));
  match P.read_frame r with
  | Error (P.Closed | P.Truncated) -> ()
  | Ok line -> Alcotest.failf "expected close after eviction, got %S" line
  | Error e ->
    Alcotest.failf "expected close, got %s" (P.read_error_to_string e)

(* ----- per-tenant fair admission ---------------------------------------- *)

let counter name = Fbb_obs.Counter.read (Fbb_obs.Counter.make name)

let test_tenant_starvation () =
  (* The 10:1 starvation mix: one tenant floods 40 pipelined requests,
     a quiet tenant issues a handful sequentially. The hot tenant's
     lane cap sheds its excess with typed overloads; the quiet tenant
     is never shed and every request is solved — the global queue is
     never monopolized. *)
  let config =
    {
      Server.default_config with
      port = 0;
      queue_capacity = 64;
      tenant_queue_cap = 4;
      batch_max = 2;
    }
  in
  with_server ~config @@ fun srv ->
  let tenant_shed0 = counter "serve.tenant.shed" in
  let hot = ok (Client.connect ~port:(Server.port srv) ()) in
  Fun.protect ~finally:(fun () -> Client.close hot) @@ fun () ->
  let n_hot = 40 in
  for i = 1 to n_hot do
    ok
      (Client.send hot
         (solve ~client:"hot" (Printf.sprintf "h%d" i) wl_a ~work:20_000))
  done;
  (* The quiet tenant runs while the flood is queued and being shed. *)
  with_client srv (fun quiet ->
      for i = 1 to 3 do
        match
          ok
            (Client.rpc quiet
               (solve ~client:"quiet" (Printf.sprintf "q%d" i) wl_b
                  ~work:20_000))
        with
        | P.Solved { id; _ } ->
          Alcotest.(check string) "quiet id echoed"
            (Printf.sprintf "q%d" i) id
        | r ->
          Alcotest.failf "quiet tenant starved or shed: %s"
            (P.encode_response r)
      done);
  let solved = ref 0 and overload = ref 0 in
  for _ = 1 to n_hot do
    match ok (Client.recv hot) with
    | P.Solved _ -> incr solved
    | P.Rejected { reject = P.Overload { retry_after_ms }; _ } ->
      Alcotest.(check bool) "retry-after positive" true (retry_after_ms > 0.0);
      incr overload
    | r -> Alcotest.failf "unexpected hot response %s" (P.encode_response r)
  done;
  Alcotest.(check int) "every hot request answered" n_hot
    (!solved + !overload);
  Alcotest.(check bool) "hot tenant absorbed the overloads" true
    (!overload > 0);
  Alcotest.(check bool) "hot lane cap (not the global queue) shed" true
    (counter "serve.tenant.shed" > tenant_shed0)

(* ----- client-side bounded retry ---------------------------------------- *)

let test_rpc_retry_bounded () =
  (* Against a capacity-0 server every attempt is shed: rpc_retry must
     make exactly retries+1 attempts, return the final typed overload,
     and respect a tiny budget by giving up instead of sleeping. *)
  let config = { Server.default_config with port = 0; queue_capacity = 0 } in
  with_server ~config @@ fun srv ->
  with_client srv @@ fun c ->
  let result, attempts =
    Client.rpc_retry ~retries:2 ~retry_budget_ms:10_000.0 ~seed:7 c
      (solve "rt" wl_a ~work:100)
  in
  (match ok result with
  | P.Rejected { reject = P.Overload _; _ } -> ()
  | r -> Alcotest.failf "expected overload, got %s" (P.encode_response r));
  Alcotest.(check int) "retries exhausted" 3 attempts;
  (* A zero budget refuses to sleep at all: one attempt. *)
  let _, attempts0 =
    Client.rpc_retry ~retries:5 ~retry_budget_ms:0.0 ~seed:7 c
      (solve "rt0" wl_a ~work:100)
  in
  Alcotest.(check int) "zero budget, one attempt" 1 attempts0;
  (* A server with room answers on the first attempt. *)
  with_server @@ fun srv2 ->
  with_client srv2 @@ fun c2 ->
  let result2, attempts2 =
    Client.rpc_retry ~retries:3 c2 (solve "ok1" wl_a ~work:2_000)
  in
  (match ok result2 with
  | P.Solved _ -> ()
  | r -> Alcotest.failf "expected solved, got %s" (P.encode_response r));
  Alcotest.(check int) "no retry needed" 1 attempts2

(* ----- past-deadline requests degrade to the anytime floor -------------- *)

let test_past_deadline_returns_incumbent () =
  with_server @@ fun srv ->
  with_client srv @@ fun c ->
  (* deadline_ms 0 is already expired at admission: the budget arrives
     at the solver exhausted, and the cascade's single-BB floor still
     returns a signed-off solution — never a timeout error, never a
     crash. *)
  match ok (Client.rpc c (solve "dl" wl_a ~deadline_ms:0.0)) with
  | P.Solved { id; exhausted; attempts; _ } ->
    Alcotest.(check string) "id echoed" "dl" id;
    Alcotest.(check bool) "budget reported exhausted" true exhausted;
    Alcotest.(check bool) "degradation trace present" true (attempts <> [])
  | r ->
    Alcotest.failf "expected anytime incumbent, got %s" (P.encode_response r)

(* ----- batching is an amortization, not a semantic ---------------------- *)

(* A fixed request script over two interleaved netlist keys with mixed
   work budgets (including an exhausted one). Payloads are canonicalized
   by zeroing the wall-clock [elapsed_ms] — everything else must be bit
   identical across batching regimes and pool widths. *)
let script =
  [
    solve "r01" wl_a ~work:5_000;
    solve "r02" wl_b ~work:5_000;
    solve "r03" wl_a ~work:800;
    solve "r04" wl_a ~work:5_000;
    solve "r05" wl_b ~work:0;
    solve "r06" wl_b ~work:5_000;
    solve "r07" wl_a ~work:800;
    solve "r08" wl_b ~work:5_000;
  ]

let canon = function
  | P.Solved r -> P.Solved { r with elapsed_ms = 0.0 }
  | P.Infeasible { id; _ } -> P.Infeasible { id; elapsed_ms = 0.0 }
  | r -> r

let run_script ~batch_max () =
  let config =
    {
      Server.default_config with
      port = 0;
      queue_capacity = 64;
      batch_max;
    }
  in
  with_server ~config @@ fun srv ->
  with_client srv @@ fun c ->
  List.iter (fun req -> ok (Client.send c req)) script;
  let responses =
    List.map (fun _ -> canon (ok (Client.recv c))) script
  in
  (* Batching reorders responses across keys; payloads are keyed by id. *)
  List.sort compare
    (List.map (fun r -> (P.response_id r, P.encode_response r)) responses)

let script_replay ~jobs () = at_jobs jobs (run_script ~batch_max:4)

let test_batching_preserves_payloads () =
  let solo = run_script ~batch_max:1 () in
  let batched = run_script ~batch_max:8 () in
  Alcotest.(check bool) "all requests answered" true
    (List.length solo = List.length script);
  Alcotest.(check bool) "every script id present" true
    (List.map fst solo
    = List.sort compare
        (List.filter_map
           (function P.Solve { id; _ } -> Some id | _ -> None)
           script));
  Alcotest.(check bool) "payloads identical batched vs solo" true
    (solo = batched)

let test_jobs_determinism () =
  let a = script_replay ~jobs:1 () in
  let b = script_replay ~jobs:4 () in
  Alcotest.(check bool) "payloads bit-identical jobs=1 vs 4" true (a = b)

let suite =
  [
    Alcotest.test_case "adversarial parses" `Quick test_adversarial_parses;
    Alcotest.test_case "bounded frame reading" `Quick test_frame_reading;
    Alcotest.test_case "server round-trip" `Quick test_server_roundtrip;
    Alcotest.test_case "junk frame degrades, connection survives" `Quick
      test_server_junk_degrades;
    Alcotest.test_case "oversized frame closes connection" `Quick
      test_server_oversized_closes;
    Alcotest.test_case "truncated frame answered" `Quick
      test_server_truncated_answered;
    Alcotest.test_case "capacity 0 sheds everything" `Quick
      test_capacity_zero_sheds_everything;
    Alcotest.test_case "flood sheds and recovers" `Quick
      test_flood_sheds_and_recovers;
    Alcotest.test_case "drain sheds with shutting_down" `Quick
      test_drain_sheds_with_shutting_down;
    Alcotest.test_case "bad parameters rejected" `Quick
      test_bad_parameters_rejected;
    Alcotest.test_case "idle timeout read error" `Quick
      test_idle_timeout_read_error;
    Alcotest.test_case "slow-loris peer evicted" `Quick test_idle_eviction;
    Alcotest.test_case "hot tenant cannot starve a quiet one" `Quick
      test_tenant_starvation;
    Alcotest.test_case "rpc_retry bounded" `Quick test_rpc_retry_bounded;
    Alcotest.test_case "past deadline returns incumbent" `Quick
      test_past_deadline_returns_incumbent;
    Alcotest.test_case "batching preserves payloads" `Quick
      test_batching_preserves_payloads;
    Alcotest.test_case "script replay jobs=1 vs 4" `Quick test_jobs_determinism;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
