(* Tests for Fbb_tech: device model, bias generator, cell library,
   characterization, transient cross-check. *)

module Device = Fbb_tech.Device
module Bias = Fbb_tech.Bias
module CL = Fbb_tech.Cell_library
module Char_ = Fbb_tech.Characterize

let d = Device.default

let test_figure1_anchors () =
  (* The paper's Figure 1: 21 % speed-up and 12.74x subthreshold leakage at
     vbs = 0.5 V. *)
  Alcotest.(check (float 0.05)) "speed-up" 21.0 (Device.speedup_pct d ~vbs:0.5);
  Alcotest.(check (float 0.05)) "leakage" 12.74
    (Device.subthreshold_factor d ~vbs:0.5)

let test_nbb_identity () =
  Alcotest.(check (float 1e-12)) "delay" 1.0 (Device.delay_factor d ~vbs:0.0);
  Alcotest.(check (float 1e-6)) "leak" 1.0 (Device.leakage_factor d ~vbs:0.0)

let test_vth_linear () =
  Alcotest.(check (float 1e-12)) "vth at 0.3" (0.45 -. (0.2 *. 0.3))
    (Device.vth d ~vbs:0.3)

let test_monotonic () =
  let prev_d = ref 2.0 and prev_l = ref 0.0 in
  for i = 0 to 50 do
    let vbs = float_of_int i /. 50.0 *. 0.95 in
    let df = Device.delay_factor d ~vbs in
    let lf = Device.leakage_factor d ~vbs in
    Alcotest.(check bool) "delay decreases" true (df < !prev_d);
    Alcotest.(check bool) "leak increases" true (lf > !prev_l);
    prev_d := df;
    prev_l := lf
  done

let test_usable_limit () =
  let lim = Device.usable_vbs_limit d in
  Alcotest.(check bool) "limit near 0.5V" true (lim > 0.45 && lim < 0.65);
  Alcotest.(check bool) "junction small below limit" true
    (Device.junction_factor d ~vbs:0.4
    < 0.1 *. Device.subthreshold_factor d ~vbs:0.4);
  Alcotest.(check bool) "junction dominates at 0.95" true
    (Device.junction_factor d ~vbs:0.95
    > Device.subthreshold_factor d ~vbs:0.95)

let test_bias_levels () =
  Alcotest.(check int) "P = 11" 11 Bias.count;
  Alcotest.(check (float 1e-12)) "level 0" 0.0 (Bias.voltage 0);
  Alcotest.(check (float 1e-12)) "level 10" 0.5 (Bias.voltage 10);
  Alcotest.(check (float 1e-12)) "resolution" 0.05
    (Bias.voltage 4 -. Bias.voltage 3);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Bias.voltage: level out of range") (fun () ->
      ignore (Bias.voltage 11))

let test_bias_nearest () =
  Alcotest.(check int) "0.12 -> 2" 2 (Bias.nearest_level 0.12);
  Alcotest.(check int) "0.13 -> 3" 3 (Bias.nearest_level 0.13);
  Alcotest.(check int) "clamps high" 10 (Bias.nearest_level 0.9);
  Alcotest.(check int) "clamps low" 0 (Bias.nearest_level (-0.3))

let test_bias_pmos () =
  Alcotest.(check (float 1e-12)) "pmos" 0.8 (Bias.pmos_bias ~vdd:1.0 4)

let lib = CL.default

let test_library_lookup () =
  let c = CL.find lib CL.Nand2 CL.X2 in
  Alcotest.(check string) "name" "NAND2_X2" c.CL.name;
  Alcotest.(check int) "fanin" 2 c.CL.fanin;
  let c' = CL.find_name lib "NAND2_X2" in
  Alcotest.(check string) "by name" c.CL.name c'.CL.name;
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (CL.find_name lib "XOR9_X9"))

let test_library_complete () =
  List.iter
    (fun kind ->
      List.iter
        (fun drive -> ignore (CL.find lib kind drive))
        CL.all_drives)
    CL.all_kinds;
  Alcotest.(check int) "cell count" (12 * 3) (Array.length (CL.cells lib))

let test_drive_scaling () =
  let x1 = CL.find lib CL.Inv CL.X1 in
  let x4 = CL.find lib CL.Inv CL.X4 in
  Alcotest.(check bool) "x4 drives load faster" true
    (CL.delay_ps lib x4 ~load:8 ~vbs:0.0 < CL.delay_ps lib x1 ~load:8 ~vbs:0.0);
  Alcotest.(check bool) "x4 leaks more" true (x4.CL.leak_nw > x1.CL.leak_nw);
  Alcotest.(check bool) "x4 wider" true (x4.CL.width_sites > x1.CL.width_sites)

let test_delay_load_monotone () =
  let c = CL.find lib CL.Nor2 CL.X1 in
  let d1 = CL.delay_ps lib c ~load:1 ~vbs:0.0 in
  let d4 = CL.delay_ps lib c ~load:4 ~vbs:0.0 in
  Alcotest.(check bool) "more load, more delay" true (d4 > d1)

let test_fbb_speeds_up_cells () =
  Array.iter
    (fun c ->
      let d0 = CL.delay_ps lib c ~load:2 ~vbs:0.0 in
      let d5 = CL.delay_ps lib c ~load:2 ~vbs:0.5 in
      Alcotest.(check (float 1e-9)) ("21% speedup " ^ c.CL.name)
        (d0 *. Device.delay_factor d ~vbs:0.5)
        d5;
      let l0 = CL.leakage_nw lib c ~vbs:0.0 in
      let l5 = CL.leakage_nw lib c ~vbs:0.5 in
      Alcotest.(check bool) ("leak up " ^ c.CL.name) true (l5 > 12.0 *. l0))
    (CL.cells lib)

let test_sequential_flag () =
  Alcotest.(check bool) "dff" true (CL.is_sequential CL.Dff);
  List.iter
    (fun k ->
      if k <> CL.Dff then
        Alcotest.(check bool) (CL.kind_name k) false (CL.is_sequential k))
    CL.all_kinds

let test_characterize_sweep () =
  let pts = Char_.figure1 () in
  Alcotest.(check int) "20 points" 20 (Array.length pts);
  Alcotest.(check (float 1e-9)) "starts at 0" 0.0 pts.(0).Char_.vbs;
  Alcotest.(check (float 1e-9)) "ends at 0.95" 0.95
    pts.(Array.length pts - 1).Char_.vbs;
  let lv = Char_.generator_levels () in
  Alcotest.(check int) "11 levels" 11 (Array.length lv)

let test_cell_table () =
  let c = CL.find lib CL.Inv CL.X1 in
  let table = Char_.cell_table lib c ~load:2 in
  Alcotest.(check int) "one row per level" Bias.count (Array.length table);
  let d0, l0 = table.(0) and d10, l10 = table.(10) in
  Alcotest.(check bool) "faster at max bias" true (d10 < d0);
  Alcotest.(check bool) "leakier at max bias" true (l10 > l0)

let test_transient_agrees_with_analytic () =
  List.iter
    (fun vbs ->
      let sim = Fbb_tech.Transient.delay_factor ~vbs () in
      let ana = Device.delay_factor d ~vbs in
      Alcotest.(check bool)
        (Printf.sprintf "within 2%% at %.2fV" vbs)
        true
        (Float.abs (sim -. ana) /. ana < 0.02))
    [ 0.05; 0.15; 0.25; 0.35; 0.45; 0.5 ]

let test_transient_waveform () =
  let wf = Fbb_tech.Transient.waveform ~vbs:0.2 () in
  Alcotest.(check bool) "non-empty" true (Array.length wf > 10);
  let monotone = ref true in
  for i = 1 to Array.length wf - 1 do
    if snd wf.(i) > snd wf.(i - 1) +. 1e-12 then monotone := false
  done;
  Alcotest.(check bool) "output falls monotonically" true !monotone

let test_sweep_invalid () =
  Alcotest.(check bool) "steps >= 1" true
    (match Char_.sweep ~lo:0.0 ~hi:0.5 ~steps:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_transient_cap_scaling () =
  (* Twice the load capacitance must double the propagation delay. *)
  let d1 = Fbb_tech.Transient.propagation_delay ~cap_ff:1.0 ~vbs:0.2 () in
  let d2 = Fbb_tech.Transient.propagation_delay ~cap_ff:2.0 ~vbs:0.2 () in
  Alcotest.(check bool) "linear in C" true (Float.abs ((d2 /. d1) -. 2.0) < 0.01)

let test_rbb_region () =
  (* Reverse bias slows gates and cuts leakage down to the BTBT floor. *)
  Alcotest.(check bool) "slower" true (Device.delay_factor d ~vbs:(-0.2) > 1.0);
  Alcotest.(check bool) "less leaky" true
    (Device.leakage_factor d ~vbs:(-0.2) < 1.0);
  Alcotest.(check (float 1e-9)) "no btbt at NBB" 0.0 (Device.btbt_factor d ~vbs:0.0);
  Alcotest.(check bool) "btbt grows with reverse bias" true
    (Device.btbt_factor d ~vbs:(-0.5) > Device.btbt_factor d ~vbs:(-0.2));
  let opt = Device.optimal_rbb d in
  Alcotest.(check bool)
    (Printf.sprintf "optimal rbb %.2f in (-0.6, 0)" opt)
    true
    (opt > -0.6 && opt < 0.0);
  (* Deeper than optimal is counter-productive. *)
  Alcotest.(check bool) "minimum is a minimum" true
    (Device.leakage_factor d ~vbs:(opt -. 0.15)
     > Device.leakage_factor d ~vbs:opt
    && Device.leakage_factor d ~vbs:(opt +. 0.15)
       > Device.leakage_factor d ~vbs:opt)

let test_rbb_levels () =
  let lv = Bias.rbb_levels () in
  Alcotest.(check int) "count" Bias.rbb_count (Array.length lv);
  Alcotest.(check (float 1e-12)) "level 0 shared" 0.0 lv.(0);
  Alcotest.(check bool) "descending" true (lv.(Bias.rbb_count - 1) < -0.3);
  Alcotest.check_raises "range" (Invalid_argument "Bias.rbb_voltage: level out of range")
    (fun () -> ignore (Bias.rbb_voltage Bias.rbb_count))

let test_liberty_dump () =
  let s = Fbb_tech.Liberty.to_string lib in
  Alcotest.(check bool) "library group" true (Tsupport.contains s "library (fbb45)");
  Alcotest.(check bool) "all cells present" true
    (Array.for_all
       (fun c -> Tsupport.contains s ("cell (" ^ c.CL.name ^ ")"))
       (CL.cells lib));
  Alcotest.(check bool) "one opcond per level" true
    (Tsupport.contains s "vbs_10");
  Alcotest.(check bool) "ff group for dffs" true (Tsupport.contains s "ff (IQ)");
  let path = Filename.temp_file "fbb" ".lib" in
  Fbb_tech.Liberty.save lib ~path;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "file written" true (len > 1000)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"delay factor in (0,1] over bias range" ~count:200
      (float_range 0.0 0.5)
      (fun vbs ->
        let f = Device.delay_factor d ~vbs in
        f > 0.0 && f <= 1.0 +. 1e-12);
    Test.make ~name:"leakage factor >= 1 over bias range" ~count:200
      (float_range 0.0 0.5)
      (fun vbs -> Device.leakage_factor d ~vbs >= 1.0 -. 1e-9);
    Test.make ~name:"nearest_level inverts voltage" ~count:100
      (int_range 0 10)
      (fun j -> Bias.nearest_level (Bias.voltage j) = j);
  ]

let suite =
  [
    ("figure 1 anchors", `Quick, test_figure1_anchors);
    ("NBB identity", `Quick, test_nbb_identity);
    ("vth linear in vbs", `Quick, test_vth_linear);
    ("delay/leak monotone in vbs", `Quick, test_monotonic);
    ("usable bias limit", `Quick, test_usable_limit);
    ("bias generator levels", `Quick, test_bias_levels);
    ("bias nearest level", `Quick, test_bias_nearest);
    ("pmos bias", `Quick, test_bias_pmos);
    ("library lookup", `Quick, test_library_lookup);
    ("library complete", `Quick, test_library_complete);
    ("drive scaling", `Quick, test_drive_scaling);
    ("delay load monotone", `Quick, test_delay_load_monotone);
    ("FBB speeds up every cell", `Quick, test_fbb_speeds_up_cells);
    ("sequential flag", `Quick, test_sequential_flag);
    ("characterize sweep", `Quick, test_characterize_sweep);
    ("cell table", `Quick, test_cell_table);
    ("transient agrees with analytic", `Quick, test_transient_agrees_with_analytic);
    ("transient waveform monotone", `Quick, test_transient_waveform);
    ("characterize sweep invalid", `Quick, test_sweep_invalid);
    ("transient cap scaling", `Quick, test_transient_cap_scaling);
    ("rbb device region", `Quick, test_rbb_region);
    ("rbb generator levels", `Quick, test_rbb_levels);
    ("liberty dump", `Quick, test_liberty_dump);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
