(* Aggregated alcotest runner for every library. *)
let () =
  Alcotest.run "fbb"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("par", Test_par.suite);
      ("fault", Test_fault.suite);
      ("tech", Test_tech.suite);
      ("netlist", Test_netlist.suite);
      ("generators", Test_generators.suite);
      ("verilog", Test_verilog.suite);
      ("sta", Test_sta.suite);
      ("incremental", Test_incremental.suite);
      ("place", Test_place.suite);
      ("solvers", Test_solvers.suite);
      ("layout", Test_layout.suite);
      ("core", Test_core.suite);
      ("cascade", Test_cascade.suite);
      ("variation", Test_variation.suite);
      ("integration", Test_integration.suite);
      ("oracle", Test_oracle.suite);
      ("determinism", Test_determinism.suite);
      ("serve", Test_serve.suite);
      ("store", Test_store.suite);
      ("properties", Test_properties.suite);
      ("trace", Test_trace.suite);
    ]
