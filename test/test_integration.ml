(* Cross-module integration tests: exact-vs-brute-force on tiny clustering
   instances, signoff verification of optimizer output, and bias-rail /
   area consistency over optimizer solutions. *)

module Problem = Fbb_core.Problem
module Solution = Fbb_core.Solution
module Heuristic = Fbb_core.Heuristic
module Ilp = Fbb_core.Ilp_opt
module BB = Fbb_ilp.Branch_bound

(* A tiny placed design: 3 rows, so 11^3 assignments are enumerable. *)
let tiny_placement =
  lazy
    (let nl = Fbb_netlist.Generators.alu ~bits:4 () in
     Fbb_place.Placement.place ~target_rows:3 nl)

let brute_force p ~max_clusters =
  let nlev = Problem.num_levels p in
  let nrows = Problem.num_rows p in
  assert (nrows = 3);
  let best = ref None in
  for a = 0 to nlev - 1 do
    for b = 0 to nlev - 1 do
      for c = 0 to nlev - 1 do
        let levels = [| a; b; c |] in
        if
          Solution.cluster_count levels <= max_clusters
          && Solution.meets_timing p levels
        then begin
          let leak = Solution.leakage_nw p levels in
          match !best with
          | Some b when b <= leak -> ()
          | Some _ | None -> best := Some leak
        end
      done
    done
  done;
  !best

let test_ilp_matches_brute_force () =
  List.iter
    (fun beta ->
      let p = Problem.build ~beta (Lazy.force tiny_placement) in
      List.iter
        (fun max_clusters ->
          let expected = brute_force p ~max_clusters in
          let config =
            {
              Ilp.default_config with
              max_clusters;
              limits = { BB.max_nodes = 200_000; max_seconds = 30.0 };
            }
          in
          let r = Ilp.optimize ~config p in
          match (expected, r.Ilp.leakage_nw) with
          | None, None -> ()
          | Some e, Some got ->
            Alcotest.(check bool) "proved" true r.Ilp.proved_optimal;
            Alcotest.(check (float 1e-6))
              (Printf.sprintf "beta=%.2f C=%d" beta max_clusters)
              e got
          | None, Some _ -> Alcotest.fail "ilp found infeasible solution"
          | Some _, None -> Alcotest.fail "ilp missed the optimum")
        [ 1; 2; 3 ])
    [ 0.04; 0.08; 0.12 ]

let test_heuristic_never_beats_brute_force () =
  List.iter
    (fun beta ->
      let p = Problem.build ~beta (Lazy.force tiny_placement) in
      List.iter
        (fun max_clusters ->
          match
            (brute_force p ~max_clusters, Heuristic.optimize ~max_clusters p)
          with
          | Some optimum, Some r ->
            Alcotest.(check bool) "heuristic >= optimum" true
              (r.Heuristic.leakage_nw >= optimum -. 1e-6)
          | None, None -> ()
          | None, Some _ -> Alcotest.fail "heuristic solved infeasible"
          | Some _, None -> Alcotest.fail "heuristic missed feasible")
        [ 2; 3 ])
    [ 0.04; 0.08 ]

(* Apply an optimizer solution as per-gate bias and re-run signoff STA
   under the degraded conditions: the abstraction (paths + per-row sums)
   must agree with the independent full-netlist analysis. *)
let signoff_closes placement levels ~beta =
  let nl = Fbb_place.Placement.netlist placement in
  let bias g =
    let r = Fbb_place.Placement.row_of placement g in
    if r < 0 then 0.0 else Fbb_tech.Bias.voltage levels.(r)
  in
  let nominal = Fbb_sta.Timing.analyze nl in
  let compensated =
    Fbb_sta.Timing.analyze ~derate:(fun _ -> 1.0 +. beta) ~bias nl
  in
  Fbb_sta.Timing.dcrit compensated <= Fbb_sta.Timing.dcrit nominal +. 1e-6

let test_signoff_verifies_refined_heuristic () =
  List.iter
    (fun name ->
      let prep = Fbb_core.Flow.prepare (Fbb_netlist.Benchmarks.find name) in
      List.iter
        (fun beta ->
          let p = Fbb_core.Flow.problem prep ~beta in
          match Fbb_core.Refine.heuristic ~max_clusters:3 p with
          | None -> Alcotest.fail "expected solution"
          | Some o ->
            Alcotest.(check bool)
              (Printf.sprintf "%s beta=%.2f refinement converges" name beta)
              true o.Fbb_core.Refine.signoff_clean;
            Alcotest.(check bool)
              (Printf.sprintf "%s beta=%.2f independent signoff" name beta)
              true
              (signoff_closes prep.Fbb_core.Flow.placement
                 o.Fbb_core.Refine.levels ~beta))
        [ 0.05; 0.10 ])
    [ "c1355"; "c3540"; "c7552" ]

let test_refinement_catches_hidden_paths () =
  (* c1355's reconvergent XOR trees are exactly the case where the
     per-cell longest-path set is insufficient: the raw heuristic solution
     fails full-netlist signoff and the refinement loop must add
     constraints to fix it. *)
  let prep = Fbb_core.Flow.prepare (Fbb_netlist.Benchmarks.find "c1355") in
  let p = Fbb_core.Flow.problem prep ~beta:0.05 in
  let raw = Option.get (Heuristic.optimize ~max_clusters:2 p) in
  let raw_clean, offenders =
    Fbb_core.Refine.signoff p ~levels:raw.Heuristic.levels
  in
  let refined = Option.get (Fbb_core.Refine.heuristic ~max_clusters:2 p) in
  Alcotest.(check bool) "refined is clean" true
    refined.Fbb_core.Refine.signoff_clean;
  if not raw_clean then begin
    Alcotest.(check bool) "offending paths reported" true
      (Array.length offenders > 0);
    Alcotest.(check bool) "constraints were added" true
      (refined.Fbb_core.Refine.added_constraints > 0)
  end

let test_extend_dedups () =
  let p = Tsupport.small_problem () in
  let same = Fbb_core.Problem.extend p p.Fbb_core.Problem.paths in
  Alcotest.(check int) "no duplicates added"
    (Fbb_core.Problem.num_paths p)
    (Fbb_core.Problem.num_paths same)

let test_layout_of_optimizer_solutions () =
  let prep = Fbb_core.Flow.prepare (Fbb_netlist.Benchmarks.find "c5315") in
  let pl = prep.Fbb_core.Flow.placement in
  let p = Fbb_core.Flow.problem prep ~beta:0.05 in
  match Heuristic.optimize ~max_clusters:3 p with
  | None -> Alcotest.fail "expected solution"
  | Some r ->
    let levels = r.Heuristic.levels in
    let rails = Fbb_layout.Bias_rails.insert pl ~levels in
    Alcotest.(check bool) "at most two rail pairs at C=3" true
      (rails.Fbb_layout.Bias_rails.bias_pairs <= 2);
    Alcotest.(check bool) "rows still fit" true
      rails.Fbb_layout.Bias_rails.feasible;
    Alcotest.(check bool) "utilization increase within the paper bound" true
      (rails.Fbb_layout.Bias_rails.max_utilization_increase <= 0.06);
    let area = Fbb_layout.Area.of_assignment pl ~levels in
    Alcotest.(check bool) "area overhead sane" true
      (area.Fbb_layout.Area.overhead_pct >= 0.0
      && area.Fbb_layout.Area.overhead_pct < 10.0)

let test_savings_grow_with_beta_band () =
  (* The paper's strongest quantitative shape: beta=10% saves at least as
     much as beta=5% (more slowdown -> more expensive baseline -> bigger
     clustering win) on most designs. Check it for one design per class. *)
  List.iter
    (fun name ->
      let prep = Fbb_core.Flow.prepare (Fbb_netlist.Benchmarks.find name) in
      let saving beta =
        let p = Fbb_core.Flow.problem prep ~beta in
        match Heuristic.optimize ~max_clusters:3 p with
        | Some r -> r.Heuristic.savings_pct
        | None -> Alcotest.fail "expected solution"
      in
      Alcotest.(check bool)
        (name ^ ": beta=10 saves at least half of beta=5")
        true
        (saving 0.10 >= 0.5 *. saving 0.05))
    [ "c6288"; "adder_128bits" ]

let suite =
  [
    ("ilp matches brute force", `Slow, test_ilp_matches_brute_force);
    ( "heuristic never beats brute force",
      `Slow,
      test_heuristic_never_beats_brute_force );
    ( "signoff verifies refined heuristic",
      `Slow,
      test_signoff_verifies_refined_heuristic );
    ( "refinement catches hidden paths",
      `Quick,
      test_refinement_catches_hidden_paths );
    ("extend dedups", `Quick, test_extend_dedups);
    ("layout of optimizer solutions", `Quick, test_layout_of_optimizer_solutions);
    ("savings grow with beta", `Slow, test_savings_grow_with_beta_band);
  ]
