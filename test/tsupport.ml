(* Shared helpers for the test suite. *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  if n = 0 then true
  else begin
    let rec go i =
      if i + n > h then false
      else if String.sub haystack i n = needle then true
      else go (i + 1)
    in
    go 0
  end

(* A small placed design shared by several suites: fast to build, has
   flip-flops, multiple rows, and a non-trivial critical path. *)
let small_placement =
  lazy
    (let nl =
       Fbb_netlist.Generators.prefix_adder ~bits:16 ~registered_inputs:true ()
     in
     Fbb_place.Placement.place ~target_rows:6 nl)

let small_problem ?(beta = 0.08) () =
  Fbb_core.Problem.build ~beta (Lazy.force small_placement)
