(* Tests for Fbb_netlist.Generators and Benchmarks: structural validity,
   exact Table-1 gate counts, and functional correctness of the arithmetic
   generators proved by simulation. *)

module N = Fbb_netlist.Netlist
module G = Fbb_netlist.Generators
module B = Fbb_netlist.Benchmarks
module Sim = Fbb_netlist.Simulate

let test_benchmark_gate_counts () =
  List.iter
    (fun (s : B.spec) ->
      let nl = s.B.generate () in
      Alcotest.(check int) (s.B.name ^ " gate count") s.B.gates
        (N.gate_count nl))
    (List.filter (fun s -> s.B.gates <= 5000) B.all)

let test_benchmark_validity () =
  List.iter
    (fun (s : B.spec) ->
      let nl = s.B.generate () in
      match N.validate nl with
      | Ok () -> ()
      | Error es ->
        Alcotest.failf "%s invalid: %s" s.B.name (String.concat "; " es))
    (List.filter (fun s -> s.B.gates <= 5000) B.all)

let test_benchmark_determinism () =
  let s = B.find "c3540" in
  let a = s.B.generate () in
  let b = s.B.generate () in
  Alcotest.(check int) "same size" (N.size a) (N.size b);
  Array.iter
    (fun g ->
      Alcotest.(check string) "same cells"
        (N.cell a g).Fbb_tech.Cell_library.name
        (N.cell b g).Fbb_tech.Cell_library.name)
    (N.gates a)

let test_find () =
  Alcotest.(check string) "case insensitive" "Industrial1"
    (B.find "industrial1").B.name;
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (B.find "c9999"))

let step2 nl inputs =
  (* Registered-in, registered-out pipelines need two clock edges before
     the outputs hold the result. *)
  let s = Sim.eval nl ~inputs in
  Sim.step nl (Sim.step nl s)

let test_prefix_adder_adds () =
  let bits = 16 in
  let nl = G.prefix_adder ~bits ~registered_inputs:true () in
  let rng = Fbb_util.Rng.create ~seed:42 in
  for _ = 1 to 25 do
    let x = Fbb_util.Rng.int rng (1 lsl bits) in
    let y = Fbb_util.Rng.int rng (1 lsl bits) in
    let cin = Fbb_util.Rng.bool rng in
    let inputs =
      Sim.input_bus ~prefix:"a" ~width:bits x
      @ Sim.input_bus ~prefix:"b" ~width:bits y
      @ [ ("cin", cin) ]
    in
    let s = step2 nl inputs in
    let total = x + y + if cin then 1 else 0 in
    Alcotest.(check int)
      (Printf.sprintf "%d+%d+%b" x y cin)
      (total land ((1 lsl bits) - 1))
      (Sim.bus_value nl s ~prefix:"sum");
    Alcotest.(check bool) "cout" (total >= 1 lsl bits)
      (Sim.output nl s "cout")
  done

let test_ripple_adder_adds () =
  let bits = 12 in
  let nl = G.ripple_adder ~bits ~registered:false () in
  let rng = Fbb_util.Rng.create ~seed:43 in
  for _ = 1 to 25 do
    let x = Fbb_util.Rng.int rng (1 lsl bits) in
    let y = Fbb_util.Rng.int rng (1 lsl bits) in
    let inputs =
      Sim.input_bus ~prefix:"a" ~width:bits x
      @ Sim.input_bus ~prefix:"b" ~width:bits y
      @ [ ("cin", false) ]
    in
    let s = Sim.eval nl ~inputs in
    Alcotest.(check int)
      (Printf.sprintf "%d+%d" x y)
      ((x + y) land ((1 lsl bits) - 1))
      (Sim.bus_value nl s ~prefix:"sum")
  done

let test_multiplier_multiplies () =
  let bits = 5 in
  let nl = G.array_multiplier ~bits () in
  let rng = Fbb_util.Rng.create ~seed:44 in
  for _ = 1 to 25 do
    let x = Fbb_util.Rng.int rng (1 lsl bits) in
    let y = Fbb_util.Rng.int rng (1 lsl bits) in
    let inputs =
      Sim.input_bus ~prefix:"a" ~width:bits x
      @ Sim.input_bus ~prefix:"b" ~width:bits y
    in
    let s = Sim.eval nl ~inputs in
    Alcotest.(check int)
      (Printf.sprintf "%d*%d" x y)
      (x * y)
      (Sim.bus_value nl s ~prefix:"p")
  done

let test_adder_comparator_functions () =
  let bits = 8 in
  let nl = G.adder_comparator ~bits () in
  let rng = Fbb_util.Rng.create ~seed:45 in
  for _ = 1 to 25 do
    let x = Fbb_util.Rng.int rng (1 lsl bits) in
    let y = Fbb_util.Rng.int rng (1 lsl bits) in
    let inputs =
      Sim.input_bus ~prefix:"a" ~width:bits x
      @ Sim.input_bus ~prefix:"b" ~width:bits y
      @ [ ("cin", false) ]
    in
    let s = Sim.eval nl ~inputs in
    Alcotest.(check int) "sum" ((x + y) land ((1 lsl bits) - 1))
      (Sim.bus_value nl s ~prefix:"sum");
    Alcotest.(check int) "rounded sum" ((x + y + 1) land ((1 lsl bits) - 1))
      (Sim.bus_value nl s ~prefix:"rsum");
    Alcotest.(check bool) "a<b" (x < y) (Sim.output nl s "a_lt_b");
    Alcotest.(check bool) "a=b" (x = y) (Sim.output nl s "a_eq_b");
    let parity v =
      let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc <> (v land 1 = 1)) in
      go v false
    in
    Alcotest.(check bool) "par_a" (parity x) (Sim.output nl s "par_a")
  done

let test_ecc_checker_accepts_codewords () =
  let data_bits = 16 and check_bits = 8 and coverage = 3 in
  let nl = G.ecc_checker ~data_bits ~check_bits ~coverage ~stride:1 () in
  let rng = Fbb_util.Rng.create ~seed:46 in
  for _ = 1 to 20 do
    let data = Fbb_util.Rng.int rng (1 lsl data_bits) in
    (* Recompute the rotating-cover parities the generator implements. *)
    let check_bit j =
      let acc = ref false in
      for i = 0 to data_bits - 1 do
        if (i + (5 * j)) mod data_bits < coverage + j && data land (1 lsl i) <> 0
        then acc := not !acc
      done;
      !acc
    in
    let inputs =
      Sim.input_bus ~prefix:"d" ~width:data_bits data
      @ List.init check_bits (fun j -> (Printf.sprintf "c%d" j, check_bit j))
    in
    let s = Sim.eval nl ~inputs in
    Alcotest.(check bool) "no error flagged" false (Sim.output nl s "err");
    Alcotest.(check int) "data passes through unchanged" data
      (Sim.bus_value nl s ~prefix:"q")
  done

let test_ecc_checker_flags_errors () =
  let data_bits = 16 and check_bits = 8 and coverage = 3 in
  let nl = G.ecc_checker ~data_bits ~check_bits ~coverage ~stride:1 () in
  (* All-zero data has all-zero checks; flipping one check bit must raise
     the error flag. *)
  let inputs flip =
    Sim.input_bus ~prefix:"d" ~width:data_bits 0
    @ List.init check_bits (fun j -> (Printf.sprintf "c%d" j, j = flip))
  in
  for flip = 0 to check_bits - 1 do
    let s = Sim.eval nl (* broken codeword *) ~inputs:(inputs flip) in
    Alcotest.(check bool) "error flagged" true (Sim.output nl s "err")
  done

let test_alu_add_operation () =
  let bits = 8 in
  let nl = G.alu ~bits () in
  let rng = Fbb_util.Rng.create ~seed:47 in
  for _ = 1 to 20 do
    let x = Fbb_util.Rng.int rng (1 lsl bits) in
    let y = Fbb_util.Rng.int rng (1 lsl bits) in
    (* op = 0 0 0 with op2 selecting the arithmetic mux half: in our slice
       encoding, op2=0 picks arithmetic, op1=0,op0=0 picks the adder. *)
    let inputs =
      Sim.input_bus ~prefix:"a" ~width:bits x
      @ Sim.input_bus ~prefix:"b" ~width:bits y
      @ [ ("cin", false); ("op0", false); ("op1", false); ("op2", false) ]
    in
    let s = Sim.eval nl ~inputs in
    Alcotest.(check int) "alu add" ((x + y) land ((1 lsl bits) - 1))
      (Sim.bus_value nl s ~prefix:"r")
  done

let test_alu_logic_operation () =
  let bits = 8 in
  let nl = G.alu ~bits () in
  let x = 0b10110100 and y = 0b11010010 in
  let run op0 op1 =
    let inputs =
      Sim.input_bus ~prefix:"a" ~width:bits x
      @ Sim.input_bus ~prefix:"b" ~width:bits y
      @ [ ("cin", false); ("op0", op0); ("op1", op1); ("op2", true) ]
    in
    Sim.bus_value nl (Sim.eval nl ~inputs) ~prefix:"r"
  in
  Alcotest.(check int) "and" (x land y) (run false false);
  Alcotest.(check int) "or" (x lor y) (run true false);
  Alcotest.(check int) "xor" (x lxor y) (run false true)

let test_random_module_shapes () =
  List.iter
    (fun gates ->
      let nl = G.random_module ~seed:5 ~gates () in
      Alcotest.(check int) "exact count" gates (N.gate_count nl);
      Alcotest.(check bool) "has outputs" true
        (Array.length (N.outputs nl) > 0);
      Alcotest.(check bool) "has flip-flops" true
        (Array.exists (N.is_sequential nl) (N.gates nl));
      match N.validate nl with
      | Ok () -> ()
      | Error es -> Alcotest.failf "invalid: %s" (String.concat ";" es))
    [ 100; 500; 2000 ]

let test_pad_to_rejects_small_target () =
  Alcotest.(check bool) "core larger than target rejected" true
    (match G.array_multiplier ~bits:16 ~target_gates:100 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_padding_off_critical_path () =
  (* Glue gates feed dedicated outputs; the design's critical path must be
     identical with and without padding. *)
  let bare = G.prefix_adder ~bits:64 () in
  let padded = G.prefix_adder ~bits:64 ~target_gates:1200 () in
  let d0 = Fbb_sta.Timing.dcrit (Fbb_sta.Timing.analyze bare) in
  let d1 = Fbb_sta.Timing.dcrit (Fbb_sta.Timing.analyze padded) in
  (* Sizing differs slightly because fanouts change; allow 5%. *)
  Alcotest.(check bool)
    (Printf.sprintf "dcrit %.1f vs %.1f" d0 d1)
    true
    (Float.abs (d1 -. d0) /. d0 < 0.05)

let test_bench_roundtrip_benchmark () =
  let nl = (B.find "c1355").B.generate () in
  let text = Fbb_netlist.Bench_io.to_string nl in
  let nl' = Fbb_netlist.Bench_io.parse text in
  Alcotest.(check int) "gates preserved" (N.gate_count nl) (N.gate_count nl');
  (* Same simulation behaviour on random vectors. *)
  let rng = Fbb_util.Rng.create ~seed:48 in
  for _ = 1 to 5 do
    let inputs =
      Array.to_list (N.inputs nl)
      |> List.map (fun i -> (N.name nl i, Fbb_util.Rng.bool rng))
    in
    let s = Sim.eval nl ~inputs in
    let s' = Sim.eval nl' ~inputs in
    Array.iter
      (fun o ->
        let driver = (N.fanins nl o).(0) in
        let v = Sim.value s driver in
        let v' = Sim.value s' (N.find nl' (N.name nl driver)) in
        Alcotest.(check bool) "same output" v v')
      (N.outputs nl)
  done

let suite =
  [
    ("benchmark gate counts exact", `Quick, test_benchmark_gate_counts);
    ("benchmarks structurally valid", `Quick, test_benchmark_validity);
    ("benchmark generation deterministic", `Quick, test_benchmark_determinism);
    ("benchmark lookup", `Quick, test_find);
    ("prefix adder adds", `Quick, test_prefix_adder_adds);
    ("ripple adder adds", `Quick, test_ripple_adder_adds);
    ("array multiplier multiplies", `Quick, test_multiplier_multiplies);
    ("adder-comparator functions", `Quick, test_adder_comparator_functions);
    ("ecc accepts valid codewords", `Quick, test_ecc_checker_accepts_codewords);
    ("ecc flags corrupted checks", `Quick, test_ecc_checker_flags_errors);
    ("alu adds", `Quick, test_alu_add_operation);
    ("alu logic ops", `Quick, test_alu_logic_operation);
    ("random module shapes", `Quick, test_random_module_shapes);
    ("padding target too small rejected", `Quick, test_pad_to_rejects_small_target);
    ("padding stays off the critical path", `Quick, test_padding_off_critical_path);
    ("bench roundtrip on c1355 w/ simulation", `Quick, test_bench_roundtrip_benchmark);
  ]
